#pragma once

/// \file thread_pool.hpp
/// Fixed-size worker pool with a parallel_for helper.  Used by the tensor
/// ops for intra-op parallelism and by the data loader for prefetch
/// workers.  On a single-core host the pool still provides the concurrency
/// structure (overlapping simulated I/O with compute) even though it cannot
/// provide speedup.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace coastal::par {

/// Thread-count override from the `COASTAL_NUM_THREADS` env var; 0 when
/// unset or unparsable.  Shared by ThreadPool::global() sizing and the
/// tensor kernels' chunking decisions so the two never drift.
int env_thread_override();

class ThreadPool {
 public:
  /// `num_threads == 0` selects hardware_concurrency (min 1).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const;

  /// Re-size the worker pool in place: drains the queue, joins the old
  /// workers, and spawns `num_threads` fresh ones (0 re-reads
  /// `COASTAL_NUM_THREADS`, falling back to hardware_concurrency) — so a
  /// long-lived server can re-size kernel parallelism per deployment
  /// without a process restart.  Tasks already queued complete under the
  /// old workers before the swap; tasks submitted concurrently with the
  /// resize land on whichever generation's queue is open and are never
  /// lost.  Must not be called from inside a worker (the joining thread
  /// would deadlock on itself); concurrent resize() calls serialize.
  void resize(size_t num_threads);

  /// Enqueue a task; returns a future for its completion.
  std::future<void> submit(std::function<void()> fn);

  /// Run fn(begin..end) split into contiguous chunks and wait.  fn
  /// receives (chunk_begin, chunk_end).
  ///
  /// `nchunks == 0` picks ~4× the worker count — oversubscription smooths
  /// load imbalance on ragged iterations.  Exception-safe: if a chunk
  /// throws, the remaining futures are still drained (no leaked work, no
  /// deadlocked callers) and the first exception is rethrown.  When called
  /// from inside a pool worker the range runs inline — blocking a worker
  /// on its own pool could deadlock.
  void parallel_for(size_t begin, size_t end,
                    const std::function<void(size_t, size_t)>& fn,
                    size_t nchunks = 0);

  /// True while the calling thread is one of *any* ThreadPool's workers.
  /// Compute kernels use this to refuse nested parallelism.
  static bool in_worker();

  /// Process-wide shared pool (lazily constructed).  Sized by the
  /// `COASTAL_NUM_THREADS` env var when set, else hardware concurrency.
  static ThreadPool& global();

 private:
  void worker_loop();
  void spawn_locked(size_t num_threads);

  mutable std::mutex mutex_;
  std::mutex resize_mutex_;  ///< serializes resize(); never held by workers
  std::vector<std::thread> workers_;
  std::deque<std::packaged_task<void()>> queue_;
  std::condition_variable cv_;
  bool stop_ = false;
  /// Queued-but-unclaimed task count, readable without the mutex: idle
  /// workers spin on it briefly before parking on the condition variable,
  /// so back-to-back parallel_for batches (the serving steady state) reach
  /// warm workers without paying a futex wake per dispatch.
  std::atomic<int64_t> pending_{0};
  std::atomic<size_t> size_{0};  ///< == workers_.size(); lock-free for size()
};

}  // namespace coastal::par
