#pragma once

/// \file thread_pool.hpp
/// Fixed-size worker pool with a parallel_for helper.  Used by the tensor
/// ops for intra-op parallelism and by the data loader for prefetch
/// workers.  On a single-core host the pool still provides the concurrency
/// structure (overlapping simulated I/O with compute) even though it cannot
/// provide speedup.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace coastal::par {

class ThreadPool {
 public:
  /// `num_threads == 0` selects hardware_concurrency (min 1).
  explicit ThreadPool(size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t size() const { return workers_.size(); }

  /// Enqueue a task; returns a future for its completion.
  std::future<void> submit(std::function<void()> fn);

  /// Run fn(begin..end) split into `size()` contiguous chunks and wait.
  /// fn receives (chunk_begin, chunk_end).
  void parallel_for(size_t begin, size_t end,
                    const std::function<void(size_t, size_t)>& fn);

  /// Process-wide shared pool (lazily constructed).
  static ThreadPool& global();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::packaged_task<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace coastal::par
