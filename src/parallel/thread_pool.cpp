#include "parallel/thread_pool.hpp"

#include <algorithm>

namespace coastal::par {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  auto fut = task.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::parallel_for(size_t begin, size_t end,
                              const std::function<void(size_t, size_t)>& fn) {
  if (begin >= end) return;
  const size_t n = end - begin;
  const size_t nchunks = std::min(n, size());
  if (nchunks <= 1) {
    fn(begin, end);
    return;
  }
  const size_t chunk = (n + nchunks - 1) / nchunks;
  std::vector<std::future<void>> futs;
  futs.reserve(nchunks);
  for (size_t c = 0; c < nchunks; ++c) {
    const size_t lo = begin + c * chunk;
    const size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    futs.push_back(submit([&fn, lo, hi] { fn(lo, hi); }));
  }
  for (auto& f : futs) f.get();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

}  // namespace coastal::par
