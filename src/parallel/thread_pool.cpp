#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <exception>

#include "util/check.hpp"

namespace coastal::par {

namespace {
thread_local bool t_in_worker = false;

/// Bounded idle spin before a worker parks on the condition variable.
/// Sized to cover the gap between consecutive parallel_for dispatches of a
/// steady-state serving loop (tens of microseconds) without burning a core
/// when the pool is genuinely idle.
constexpr int kIdleSpinIters = 4096;

inline void cpu_relax() {
#if defined(__x86_64__) || defined(__i386__)
  __builtin_ia32_pause();
#else
  std::this_thread::yield();
#endif
}
}  // namespace

int env_thread_override() {
  const char* e = std::getenv("COASTAL_NUM_THREADS");
  if (!e || !*e) return 0;
  const long v = std::strtol(e, nullptr, 10);
  return v > 0 ? static_cast<int>(v) : 0;
}

ThreadPool::ThreadPool(size_t num_threads) {
  std::lock_guard<std::mutex> lock(mutex_);
  spawn_locked(num_threads);
}

void ThreadPool::spawn_locked(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
  size_.store(workers_.size(), std::memory_order_relaxed);
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

size_t ThreadPool::size() const {
  return size_.load(std::memory_order_relaxed);
}

void ThreadPool::resize(size_t num_threads) {
  COASTAL_CHECK_MSG(!in_worker(),
                    "ThreadPool::resize() called from a pool worker");
  std::lock_guard<std::mutex> resize_lock(resize_mutex_);
  // 0 re-reads the env override *now* (unlike the constructor, which is
  // also reached at static-init time before a deployment could set it),
  // falling back to hardware concurrency via spawn_locked.
  if (num_threads == 0) {
    num_threads = static_cast<size_t>(env_thread_override());
  }
  // Retire the current generation: workers drain the queue (stop_ only
  // exits a worker once the queue is empty), then join.
  std::vector<std::thread> old;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
    old.swap(workers_);
  }
  cv_.notify_all();
  for (auto& w : old) w.join();
  // Spawn the new generation.  A submit() racing this window simply lands
  // on the queue and is picked up by the fresh workers.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = false;
    spawn_locked(num_threads);
  }
}

std::future<void> ThreadPool::submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  auto fut = task.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  pending_.fetch_add(1, std::memory_order_release);
  cv_.notify_one();
  return fut;
}

void ThreadPool::parallel_for(size_t begin, size_t end,
                              const std::function<void(size_t, size_t)>& fn,
                              size_t nchunks) {
  if (begin >= end) return;
  const size_t n = end - begin;
  if (in_worker()) {
    // A worker waiting on its own pool's queue can deadlock (all workers
    // blocked on chunks nobody is left to run); degrade to inline.
    fn(begin, end);
    return;
  }
  if (nchunks == 0) nchunks = 4 * size();
  nchunks = std::min(n, nchunks);
  if (nchunks <= 1 || size() == 0) {
    fn(begin, end);
    return;
  }
  const size_t chunk = (n + nchunks - 1) / nchunks;
  std::vector<std::future<void>> futs;
  futs.reserve(nchunks);
  for (size_t c = 0; c < nchunks; ++c) {
    const size_t lo = begin + c * chunk;
    const size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    futs.push_back(submit([&fn, lo, hi] { fn(lo, hi); }));
  }
  // Drain every future even if one throws; otherwise chunks still
  // referencing `fn` (and the caller's captures) would outlive this frame.
  std::exception_ptr first_error;
  for (auto& f : futs) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::worker_loop() {
  t_in_worker = true;
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      if (!stop_ && queue_.empty()) {
        // Warm path: spin briefly off-lock watching the pending counter
        // before parking, so the next batch's chunks start without a futex
        // wake.  stop_ is checked again under the lock below.
        lock.unlock();
        for (int i = 0; i < kIdleSpinIters &&
                        pending_.load(std::memory_order_acquire) == 0;
             ++i) {
          cpu_relax();
        }
        lock.lock();
      }
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
      pending_.fetch_sub(1, std::memory_order_relaxed);
    }
    task();
  }
}

bool ThreadPool::in_worker() { return t_in_worker; }

ThreadPool& ThreadPool::global() {
  // 0 (no override) → hardware concurrency, per the constructor contract.
  static ThreadPool pool(static_cast<size_t>(env_thread_override()));
  return pool;
}

}  // namespace coastal::par
