#include "parallel/thread_pool.hpp"

#include <algorithm>
#include <cstdlib>
#include <exception>

namespace coastal::par {

namespace {
thread_local bool t_in_worker = false;
}  // namespace

int env_thread_override() {
  const char* e = std::getenv("COASTAL_NUM_THREADS");
  if (!e || !*e) return 0;
  const long v = std::strtol(e, nullptr, 10);
  return v > 0 ? static_cast<int>(v) : 0;
}

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::future<void> ThreadPool::submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  auto fut = task.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return fut;
}

void ThreadPool::parallel_for(size_t begin, size_t end,
                              const std::function<void(size_t, size_t)>& fn,
                              size_t nchunks) {
  if (begin >= end) return;
  const size_t n = end - begin;
  if (in_worker()) {
    // A worker waiting on its own pool's queue can deadlock (all workers
    // blocked on chunks nobody is left to run); degrade to inline.
    fn(begin, end);
    return;
  }
  if (nchunks == 0) nchunks = 4 * size();
  nchunks = std::min(n, nchunks);
  if (nchunks <= 1 || size() == 0) {
    fn(begin, end);
    return;
  }
  const size_t chunk = (n + nchunks - 1) / nchunks;
  std::vector<std::future<void>> futs;
  futs.reserve(nchunks);
  for (size_t c = 0; c < nchunks; ++c) {
    const size_t lo = begin + c * chunk;
    const size_t hi = std::min(end, lo + chunk);
    if (lo >= hi) break;
    futs.push_back(submit([&fn, lo, hi] { fn(lo, hi); }));
  }
  // Drain every future even if one throws; otherwise chunks still
  // referencing `fn` (and the caller's captures) would outlive this frame.
  std::exception_ptr first_error;
  for (auto& f : futs) {
    try {
      f.get();
    } catch (...) {
      if (!first_error) first_error = std::current_exception();
    }
  }
  if (first_error) std::rethrow_exception(first_error);
}

void ThreadPool::worker_loop() {
  t_in_worker = true;
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

bool ThreadPool::in_worker() { return t_in_worker; }

ThreadPool& ThreadPool::global() {
  // 0 (no override) → hardware concurrency, per the constructor contract.
  static ThreadPool pool(static_cast<size_t>(env_thread_override()));
  return pool;
}

}  // namespace coastal::par
