#pragma once

/// \file communicator.hpp
/// MPI-style message passing over in-process threads.
///
/// The paper's ROMS substrate is parallelized with MPI: the horizontal
/// domain is decomposed into rectangular tiles, each owned by one rank,
/// with halo (ghost-cell) exchange between neighbours each time step.  We
/// reproduce the *programming model* — explicit ranks, two-sided send/recv
/// with tags, collectives — with threads standing in for processes, so the
/// same communication structure (and its costs, measured in messages and
/// bytes) is exercised without a real cluster.
///
/// Failure semantics: a rank that throws aborts the world, which wakes
/// every sibling blocked in a recv or collective with `CommAborted` —
/// no rank is ever left deadlocked because a peer died.  `recv_for`
/// additionally bounds a single receive with a timeout, the building
/// block for the serving layer's exchange deadline.
///
/// Usage:
///   par::World world(4);
///   world.run([](par::Comm& comm) {
///     ...comm.rank(), comm.send(...), comm.allreduce_sum(...)...
///   });

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <span>
#include <stdexcept>
#include <vector>

#include "obs/trace.hpp"
#include "util/check.hpp"

namespace coastal::par {

class World;

/// Base for communication failures (timeouts, aborted worlds).
class CommError : public std::runtime_error {
 public:
  explicit CommError(const std::string& what) : std::runtime_error(what) {}
};

/// Raised on ranks woken out of a blocking call because a sibling rank
/// failed (World::abort).  Distinguished from the *originating* error so
/// World::run can report the root cause, not the collateral unwinding.
class CommAborted : public CommError {
 public:
  CommAborted() : CommError("communicator aborted: a sibling rank failed") {}
};

/// Per-rank handle passed to the user function.  All methods are callable
/// only from the owning rank's thread.
class Comm {
 public:
  int rank() const { return rank_; }
  int size() const;

  /// Blocking two-sided send/recv of a float buffer, matched by
  /// (source, tag) like MPI_Send/MPI_Recv with explicit tags.
  /// Fault site `comm.send`: throw raises before delivery, drop
  /// suppresses the message, nan poisons the payload, delay stalls it.
  void send(int dest, int tag, std::span<const float> data);
  /// Receives into `out`; the matched message must have exactly
  /// `out.size()` elements.
  void recv(int source, int tag, std::span<float> out);
  /// recv with a timeout: returns false if no matching message arrived
  /// within `timeout_us` (buffer untouched).  0 means wait forever.
  bool recv_for(int source, int tag, std::span<float> out,
                int64_t timeout_us);

  /// Collectives (all block until every rank participates).
  void barrier();
  /// In-place sum-allreduce over all ranks.
  void allreduce_sum(std::span<float> data);
  /// In-place max-allreduce.
  void allreduce_max(std::span<float> data);
  /// Double-precision variants (MPI_DOUBLE reductions): verification
  /// verdicts accumulate residuals in double per rank, and truncating
  /// the partials to float could flip a near-threshold pass/fail
  /// between sharded and serial runs.
  void allreduce_sum(std::span<double> data);
  void allreduce_max(std::span<double> data);
  /// Broadcast from `root` into `data` on every rank.
  void broadcast(int root, std::span<float> data);
  /// Gather each rank's buffer (equal sizes) to `root`; out is resized
  /// rank-major on root, untouched elsewhere.
  void gather(int root, std::span<const float> local, std::vector<float>& out);

  /// Message accounting for the halo-cost model (bytes sent by this rank).
  uint64_t bytes_sent() const { return bytes_sent_; }
  uint64_t messages_sent() const { return messages_sent_; }

 private:
  friend class World;
  Comm(World* world, int rank) : world_(world), rank_(rank) {}

  World* world_;
  int rank_;
  uint64_t bytes_sent_ = 0;
  uint64_t messages_sent_ = 0;
};

/// Owns the mailboxes and collective state for `size` ranks.
class World {
 public:
  explicit World(int size);

  int size() const { return size_; }

  /// Spawn one thread per rank, run `fn(comm)` on each, join all.
  /// If any rank throws, the world is aborted — every sibling blocked in
  /// a recv or collective unwinds with CommAborted — and the originating
  /// exception (never the collateral CommAborted) is rethrown.
  void run(const std::function<void(Comm&)>& fn);

  /// Sticky until the next run(): wakes all blocked ranks with
  /// CommAborted.  Called automatically when a rank throws.
  void abort();
  bool aborted() const;

 private:
  friend class Comm;

  struct Message {
    std::vector<float> payload;
    /// Trace envelope: the sender's ambient trace id (0 = untraced).
    /// Receivers adopt it if they have no trace bound, so a traced
    /// request's halo exchanges land in one span tree across ranks.
    uint64_t trace = 0;
  };
  struct Mailbox {
    std::mutex mutex;
    std::condition_variable cv;
    // keyed by (source, tag)
    std::map<std::pair<int, int>, std::queue<Message>> slots;
  };

  void push_message(int dest, int source, int tag, std::span<const float> data);
  void pop_message(int self, int source, int tag, std::span<float> out);
  bool pop_message_for(int self, int source, int tag, std::span<float> out,
                       int64_t timeout_us);
  void barrier_wait();

  int size_;
  std::vector<std::unique_ptr<Mailbox>> mailboxes_;

  // Abortable barrier: a plain generation-counted rendezvous instead of
  // std::barrier so abort() can wake waiters mid-phase.
  std::mutex barrier_mutex_;
  std::condition_variable barrier_cv_;
  int barrier_count_ = 0;
  uint64_t barrier_generation_ = 0;
  std::atomic<bool> aborted_{false};

  // Collective scratch: double-buffered reduction area guarded by a
  // barrier on each side.  Float and double collectives keep separate
  // buffers (a rank sequence may interleave them).
  std::mutex reduce_mutex_;
  std::vector<float> reduce_buf_;
  size_t reduce_len_ = 0;
  std::vector<double> reduce_buf64_;
  size_t reduce_len64_ = 0;
};

}  // namespace coastal::par
