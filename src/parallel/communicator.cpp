#include "parallel/communicator.hpp"

#include <algorithm>
#include <exception>
#include <limits>
#include <thread>

namespace coastal::par {

int Comm::size() const { return world_->size(); }

void Comm::send(int dest, int tag, std::span<const float> data) {
  COASTAL_CHECK_MSG(dest >= 0 && dest < world_->size(),
                    "send: bad destination rank " << dest);
  bytes_sent_ += data.size() * sizeof(float);
  ++messages_sent_;
  world_->push_message(dest, rank_, tag, data);
}

void Comm::recv(int source, int tag, std::span<float> out) {
  COASTAL_CHECK_MSG(source >= 0 && source < world_->size(),
                    "recv: bad source rank " << source);
  world_->pop_message(rank_, source, tag, out);
}

void Comm::barrier() { world_->barrier_.arrive_and_wait(); }

void Comm::allreduce_sum(std::span<float> data) {
  // Rank 0 resets the shared accumulator, everyone adds, everyone copies
  // back.  Three barriers — simple and correct; fine at in-process scale.
  // Accounting models ring-allreduce traffic: ~2 x payload per rank.
  bytes_sent_ += 2 * data.size() * sizeof(float);
  ++messages_sent_;
  if (rank_ == 0) {
    world_->reduce_buf_.assign(data.size(), 0.0f);
    world_->reduce_len_ = data.size();
  }
  barrier();
  COASTAL_CHECK_MSG(world_->reduce_len_ == data.size(),
                    "allreduce size mismatch across ranks");
  {
    std::lock_guard<std::mutex> lock(world_->reduce_mutex_);
    for (size_t i = 0; i < data.size(); ++i) world_->reduce_buf_[i] += data[i];
  }
  barrier();
  std::copy(world_->reduce_buf_.begin(), world_->reduce_buf_.end(),
            data.begin());
  barrier();
}

void Comm::allreduce_max(std::span<float> data) {
  bytes_sent_ += 2 * data.size() * sizeof(float);
  ++messages_sent_;
  if (rank_ == 0) {
    world_->reduce_buf_.assign(data.size(),
                               -std::numeric_limits<float>::infinity());
    world_->reduce_len_ = data.size();
  }
  barrier();
  COASTAL_CHECK_MSG(world_->reduce_len_ == data.size(),
                    "allreduce size mismatch across ranks");
  {
    std::lock_guard<std::mutex> lock(world_->reduce_mutex_);
    for (size_t i = 0; i < data.size(); ++i)
      world_->reduce_buf_[i] = std::max(world_->reduce_buf_[i], data[i]);
  }
  barrier();
  std::copy(world_->reduce_buf_.begin(), world_->reduce_buf_.end(),
            data.begin());
  barrier();
}

void Comm::allreduce_sum(std::span<double> data) {
  bytes_sent_ += 2 * data.size() * sizeof(double);
  ++messages_sent_;
  if (rank_ == 0) {
    world_->reduce_buf64_.assign(data.size(), 0.0);
    world_->reduce_len64_ = data.size();
  }
  barrier();
  COASTAL_CHECK_MSG(world_->reduce_len64_ == data.size(),
                    "allreduce size mismatch across ranks");
  {
    std::lock_guard<std::mutex> lock(world_->reduce_mutex_);
    for (size_t i = 0; i < data.size(); ++i)
      world_->reduce_buf64_[i] += data[i];
  }
  barrier();
  std::copy(world_->reduce_buf64_.begin(), world_->reduce_buf64_.end(),
            data.begin());
  barrier();
}

void Comm::allreduce_max(std::span<double> data) {
  bytes_sent_ += 2 * data.size() * sizeof(double);
  ++messages_sent_;
  if (rank_ == 0) {
    world_->reduce_buf64_.assign(data.size(),
                                 -std::numeric_limits<double>::infinity());
    world_->reduce_len64_ = data.size();
  }
  barrier();
  COASTAL_CHECK_MSG(world_->reduce_len64_ == data.size(),
                    "allreduce size mismatch across ranks");
  {
    std::lock_guard<std::mutex> lock(world_->reduce_mutex_);
    for (size_t i = 0; i < data.size(); ++i)
      world_->reduce_buf64_[i] = std::max(world_->reduce_buf64_[i], data[i]);
  }
  barrier();
  std::copy(world_->reduce_buf64_.begin(), world_->reduce_buf64_.end(),
            data.begin());
  barrier();
}

void Comm::broadcast(int root, std::span<float> data) {
  if (rank_ == root) {
    world_->reduce_buf_.assign(data.begin(), data.end());
    world_->reduce_len_ = data.size();
  }
  barrier();
  COASTAL_CHECK_MSG(world_->reduce_len_ == data.size(),
                    "broadcast size mismatch across ranks");
  if (rank_ != root) {
    std::copy(world_->reduce_buf_.begin(), world_->reduce_buf_.end(),
              data.begin());
  }
  barrier();
}

void Comm::gather(int root, std::span<const float> local,
                  std::vector<float>& out) {
  if (rank_ == root) {
    world_->reduce_buf_.assign(local.size() * world_->size(), 0.0f);
    world_->reduce_len_ = local.size();
  }
  barrier();
  COASTAL_CHECK_MSG(world_->reduce_len_ == local.size(),
                    "gather size mismatch across ranks");
  std::copy(local.begin(), local.end(),
            world_->reduce_buf_.begin() +
                static_cast<ptrdiff_t>(rank_ * local.size()));
  barrier();
  if (rank_ == root) {
    out.assign(world_->reduce_buf_.begin(), world_->reduce_buf_.end());
  }
  barrier();
}

World::World(int size) : size_(size), barrier_(size) {
  COASTAL_CHECK_MSG(size >= 1, "World needs at least one rank");
  mailboxes_.reserve(static_cast<size_t>(size));
  for (int i = 0; i < size; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
}

void World::run(const std::function<void(Comm&)>& fn) {
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(size_));
  std::mutex err_mutex;
  std::exception_ptr first_error;
  for (int r = 0; r < size_; ++r) {
    threads.emplace_back([&, r] {
      Comm comm(this, r);
      try {
        fn(comm);
      } catch (...) {
        std::lock_guard<std::mutex> lock(err_mutex);
        if (!first_error) first_error = std::current_exception();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

void World::push_message(int dest, int source, int tag,
                         std::span<const float> data) {
  Mailbox& box = *mailboxes_[static_cast<size_t>(dest)];
  {
    std::lock_guard<std::mutex> lock(box.mutex);
    box.slots[{source, tag}].push(
        Message{std::vector<float>(data.begin(), data.end())});
  }
  box.cv.notify_all();
}

void World::pop_message(int self, int source, int tag, std::span<float> out) {
  Mailbox& box = *mailboxes_[static_cast<size_t>(self)];
  std::unique_lock<std::mutex> lock(box.mutex);
  auto key = std::make_pair(source, tag);
  box.cv.wait(lock, [&] {
    auto it = box.slots.find(key);
    return it != box.slots.end() && !it->second.empty();
  });
  auto& q = box.slots[key];
  Message msg = std::move(q.front());
  q.pop();
  COASTAL_CHECK_MSG(msg.payload.size() == out.size(),
                    "recv: message length " << msg.payload.size()
                                            << " != buffer " << out.size());
  std::copy(msg.payload.begin(), msg.payload.end(), out.begin());
}

}  // namespace coastal::par
