#include "parallel/communicator.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <exception>
#include <limits>
#include <thread>

#include "util/fault.hpp"

namespace coastal::par {

int Comm::size() const { return world_->size(); }

void Comm::send(int dest, int tag, std::span<const float> data) {
  COASTAL_CHECK_MSG(dest >= 0 && dest < world_->size(),
                    "send: bad destination rank " << dest);
  const util::FaultAction fa = COASTAL_FAULT_POINT("comm.send");
  if (fa == util::FaultAction::kDrop) {
    // Message lost in flight: accounting still sees the attempt so the
    // cost model matches what the sender believed it did.
    bytes_sent_ += data.size() * sizeof(float);
    ++messages_sent_;
    return;
  }
  bytes_sent_ += data.size() * sizeof(float);
  ++messages_sent_;
  if (fa == util::FaultAction::kNan) {
    std::vector<float> poisoned(data.size(),
                                std::numeric_limits<float>::quiet_NaN());
    world_->push_message(dest, rank_, tag, poisoned);
    return;
  }
  world_->push_message(dest, rank_, tag, data);
}

void Comm::recv(int source, int tag, std::span<float> out) {
  COASTAL_CHECK_MSG(source >= 0 && source < world_->size(),
                    "recv: bad source rank " << source);
  world_->pop_message(rank_, source, tag, out);
}

bool Comm::recv_for(int source, int tag, std::span<float> out,
                    int64_t timeout_us) {
  COASTAL_CHECK_MSG(source >= 0 && source < world_->size(),
                    "recv: bad source rank " << source);
  return world_->pop_message_for(rank_, source, tag, out, timeout_us);
}

void Comm::barrier() { world_->barrier_wait(); }

void Comm::allreduce_sum(std::span<float> data) {
  // Rank 0 resets the shared accumulator, everyone adds, everyone copies
  // back.  Three barriers — simple and correct; fine at in-process scale.
  // Accounting models ring-allreduce traffic: ~2 x payload per rank.
  bytes_sent_ += 2 * data.size() * sizeof(float);
  ++messages_sent_;
  if (rank_ == 0) {
    world_->reduce_buf_.assign(data.size(), 0.0f);
    world_->reduce_len_ = data.size();
  }
  barrier();
  COASTAL_CHECK_MSG(world_->reduce_len_ == data.size(),
                    "allreduce size mismatch across ranks");
  {
    std::lock_guard<std::mutex> lock(world_->reduce_mutex_);
    for (size_t i = 0; i < data.size(); ++i) world_->reduce_buf_[i] += data[i];
  }
  barrier();
  std::copy(world_->reduce_buf_.begin(), world_->reduce_buf_.end(),
            data.begin());
  barrier();
}

void Comm::allreduce_max(std::span<float> data) {
  bytes_sent_ += 2 * data.size() * sizeof(float);
  ++messages_sent_;
  if (rank_ == 0) {
    world_->reduce_buf_.assign(data.size(),
                               -std::numeric_limits<float>::infinity());
    world_->reduce_len_ = data.size();
  }
  barrier();
  COASTAL_CHECK_MSG(world_->reduce_len_ == data.size(),
                    "allreduce size mismatch across ranks");
  {
    std::lock_guard<std::mutex> lock(world_->reduce_mutex_);
    for (size_t i = 0; i < data.size(); ++i)
      world_->reduce_buf_[i] = std::max(world_->reduce_buf_[i], data[i]);
  }
  barrier();
  std::copy(world_->reduce_buf_.begin(), world_->reduce_buf_.end(),
            data.begin());
  barrier();
}

void Comm::allreduce_sum(std::span<double> data) {
  bytes_sent_ += 2 * data.size() * sizeof(double);
  ++messages_sent_;
  if (rank_ == 0) {
    world_->reduce_buf64_.assign(data.size(), 0.0);
    world_->reduce_len64_ = data.size();
  }
  barrier();
  COASTAL_CHECK_MSG(world_->reduce_len64_ == data.size(),
                    "allreduce size mismatch across ranks");
  {
    std::lock_guard<std::mutex> lock(world_->reduce_mutex_);
    for (size_t i = 0; i < data.size(); ++i)
      world_->reduce_buf64_[i] += data[i];
  }
  barrier();
  std::copy(world_->reduce_buf64_.begin(), world_->reduce_buf64_.end(),
            data.begin());
  barrier();
}

void Comm::allreduce_max(std::span<double> data) {
  bytes_sent_ += 2 * data.size() * sizeof(double);
  ++messages_sent_;
  if (rank_ == 0) {
    world_->reduce_buf64_.assign(data.size(),
                                 -std::numeric_limits<double>::infinity());
    world_->reduce_len64_ = data.size();
  }
  barrier();
  COASTAL_CHECK_MSG(world_->reduce_len64_ == data.size(),
                    "allreduce size mismatch across ranks");
  {
    std::lock_guard<std::mutex> lock(world_->reduce_mutex_);
    for (size_t i = 0; i < data.size(); ++i)
      world_->reduce_buf64_[i] = std::max(world_->reduce_buf64_[i], data[i]);
  }
  barrier();
  std::copy(world_->reduce_buf64_.begin(), world_->reduce_buf64_.end(),
            data.begin());
  barrier();
}

void Comm::broadcast(int root, std::span<float> data) {
  if (rank_ == root) {
    world_->reduce_buf_.assign(data.begin(), data.end());
    world_->reduce_len_ = data.size();
  }
  barrier();
  COASTAL_CHECK_MSG(world_->reduce_len_ == data.size(),
                    "broadcast size mismatch across ranks");
  if (rank_ != root) {
    std::copy(world_->reduce_buf_.begin(), world_->reduce_buf_.end(),
              data.begin());
  }
  barrier();
}

void Comm::gather(int root, std::span<const float> local,
                  std::vector<float>& out) {
  if (rank_ == root) {
    world_->reduce_buf_.assign(local.size() * world_->size(), 0.0f);
    world_->reduce_len_ = local.size();
  }
  barrier();
  COASTAL_CHECK_MSG(world_->reduce_len_ == local.size(),
                    "gather size mismatch across ranks");
  std::copy(local.begin(), local.end(),
            world_->reduce_buf_.begin() +
                static_cast<ptrdiff_t>(rank_ * local.size()));
  barrier();
  if (rank_ == root) {
    out.assign(world_->reduce_buf_.begin(), world_->reduce_buf_.end());
  }
  barrier();
}

World::World(int size) : size_(size) {
  COASTAL_CHECK_MSG(size >= 1, "World needs at least one rank");
  mailboxes_.reserve(static_cast<size_t>(size));
  for (int i = 0; i < size; ++i) {
    mailboxes_.push_back(std::make_unique<Mailbox>());
  }
}

void World::run(const std::function<void(Comm&)>& fn) {
  // Fresh epoch: clear any abort left by a previous failed run so the
  // World object is reusable (the failover path reruns on it).
  {
    std::lock_guard<std::mutex> lock(barrier_mutex_);
    aborted_.store(false, std::memory_order_release);
    barrier_count_ = 0;
  }
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(size_));
  std::mutex err_mutex;
  std::exception_ptr first_error;
  bool first_error_is_abort = false;
  for (int r = 0; r < size_; ++r) {
    threads.emplace_back([&, r] {
      Comm comm(this, r);
      try {
        fn(comm);
      } catch (const CommAborted&) {
        // Collateral unwinding of a sibling's failure: only report it if
        // no root cause ever surfaces (e.g. an external abort()).
        std::lock_guard<std::mutex> lock(err_mutex);
        if (!first_error) {
          first_error = std::current_exception();
          first_error_is_abort = true;
        }
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(err_mutex);
          if (!first_error || first_error_is_abort) {
            first_error = std::current_exception();
            first_error_is_abort = false;
          }
        }
        abort();
      }
    });
  }
  for (auto& t : threads) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

void World::abort() {
  {
    std::lock_guard<std::mutex> lock(barrier_mutex_);
    aborted_.store(true, std::memory_order_release);
  }
  barrier_cv_.notify_all();
  // Lock each mailbox while notifying so a rank between its predicate
  // check and its wait cannot miss the wakeup.
  for (auto& box : mailboxes_) {
    std::lock_guard<std::mutex> lock(box->mutex);
    box->cv.notify_all();
  }
}

bool World::aborted() const {
  return aborted_.load(std::memory_order_acquire);
}

void World::barrier_wait() {
  std::unique_lock<std::mutex> lock(barrier_mutex_);
  if (aborted_) throw CommAborted();
  const uint64_t gen = barrier_generation_;
  if (++barrier_count_ == size_) {
    barrier_count_ = 0;
    ++barrier_generation_;
    lock.unlock();
    barrier_cv_.notify_all();
    return;
  }
  barrier_cv_.wait(lock,
                   [&] { return barrier_generation_ != gen || aborted_; });
  if (barrier_generation_ == gen) throw CommAborted();
}

void World::push_message(int dest, int source, int tag,
                         std::span<const float> data) {
  Mailbox& box = *mailboxes_[static_cast<size_t>(dest)];
  // Stamp the sender's ambient trace id on the envelope; push_message
  // runs on the sending rank's thread, so this reads the right binding.
  const uint64_t trace = obs::current_trace();
  {
    std::lock_guard<std::mutex> lock(box.mutex);
    box.slots[{source, tag}].push(
        Message{std::vector<float>(data.begin(), data.end()), trace});
  }
  box.cv.notify_all();
}

void World::pop_message(int self, int source, int tag, std::span<float> out) {
  const bool ok = pop_message_for(self, source, tag, out, 0);
  COASTAL_CHECK_MSG(ok, "recv: untimed pop returned without a message");
}

bool World::pop_message_for(int self, int source, int tag,
                            std::span<float> out, int64_t timeout_us) {
  Mailbox& box = *mailboxes_[static_cast<size_t>(self)];
  std::unique_lock<std::mutex> lock(box.mutex);
  const auto key = std::make_pair(source, tag);
  const auto ready = [&] {
    auto it = box.slots.find(key);
    return it != box.slots.end() && !it->second.empty();
  };
  const auto wake = [&] { return ready() || aborted(); };
  if (timeout_us <= 0) {
    box.cv.wait(lock, wake);
  } else {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::microseconds(timeout_us);
    if (!box.cv.wait_until(lock, deadline, wake)) return false;
  }
  if (!ready()) throw CommAborted();
  auto& q = box.slots[key];
  Message msg = std::move(q.front());
  q.pop();
  // First traced envelope binds this rank's thread to the sender's trace
  // (no-op if already bound or the envelope is untraced).
  obs::adopt_trace(msg.trace);
  COASTAL_CHECK_MSG(msg.payload.size() == out.size(),
                    "recv: message length " << msg.payload.size()
                                            << " != buffer " << out.size());
  std::copy(msg.payload.begin(), msg.payload.end(), out.begin());
  return true;
}

}  // namespace coastal::par
