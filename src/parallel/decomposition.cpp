#include "parallel/decomposition.hpp"

#include <cmath>
#include <limits>

namespace coastal::par {

std::array<int, 2> choose_grid(int nranks, int nx, int ny) {
  COASTAL_CHECK(nranks >= 1);
  int best_px = 1, best_py = nranks;
  double best_score = std::numeric_limits<double>::infinity();
  for (int px = 1; px <= nranks; ++px) {
    if (nranks % px != 0) continue;
    const int py = nranks / px;
    // Perimeter-to-area proxy: halo traffic per tile.
    const double tx = static_cast<double>(nx) / px;
    const double ty = static_cast<double>(ny) / py;
    const double score = 2.0 * (tx + ty) / (tx * ty);
    if (score < best_score) {
      best_score = score;
      best_px = px;
      best_py = py;
    }
  }
  return {best_px, best_py};
}

Tile make_tile(int rank, int px, int py, int nx, int ny, int halo) {
  COASTAL_CHECK(px >= 1 && py >= 1 && halo >= 0);
  COASTAL_CHECK_MSG(rank >= 0 && rank < px * py, "rank outside process grid");
  COASTAL_CHECK_MSG(nx >= px && ny >= py, "grid smaller than process grid");
  Tile t;
  t.px = px;
  t.py = py;
  t.cx = rank % px;
  t.cy = rank / px;
  t.halo = halo;
  const auto split = [](int n, int parts, int idx) {
    const int base = n / parts;
    const int rem = n % parts;
    const int lo = idx * base + std::min(idx, rem);
    const int len = base + (idx < rem ? 1 : 0);
    return std::array<int, 2>{lo, lo + len};
  };
  auto xr = split(nx, px, t.cx);
  auto yr = split(ny, py, t.cy);
  t.x0 = xr[0];
  t.x1 = xr[1];
  t.y0 = yr[0];
  t.y1 = yr[1];
  return t;
}

int Tile::neighbor(int dcx, int dcy) const {
  const int nx_ = cx + dcx;
  const int ny_ = cy + dcy;
  if (nx_ < 0 || nx_ >= px || ny_ < 0 || ny_ >= py) return -1;
  return ny_ * px + nx_;
}

namespace {

// Tags: 4 directions.  Messages between a fixed (src, dest) pair are
// ordered by the mailbox queue, so one tag per direction suffices.
enum Direction : int { kWest = 100, kEast = 101, kSouth = 102, kNorth = 103 };

}  // namespace

void exchange_halo(Comm& comm, const Tile& tile, std::span<float> field) {
  const int h = tile.halo;
  if (h == 0) return;
  const int nxp = tile.nx_padded();
  COASTAL_CHECK(field.size() ==
                static_cast<size_t>(nxp) * static_cast<size_t>(tile.ny_padded()));

  const int nxl = tile.nx_local();
  const int nyl = tile.ny_local();

  auto pack_column = [&](int ix_start, std::vector<float>& buf) {
    buf.resize(static_cast<size_t>(h) * static_cast<size_t>(nyl));
    size_t k = 0;
    for (int iy = 0; iy < nyl; ++iy)
      for (int dx = 0; dx < h; ++dx)
        buf[k++] = field[tile.padded_index(ix_start + dx, iy)];
  };
  auto unpack_column = [&](int ix_start, std::span<const float> buf) {
    size_t k = 0;
    for (int iy = 0; iy < nyl; ++iy)
      for (int dx = 0; dx < h; ++dx)
        field[tile.padded_index(ix_start + dx, iy)] = buf[k++];
  };
  auto pack_row = [&](int iy_start, std::vector<float>& buf) {
    buf.resize(static_cast<size_t>(h) * static_cast<size_t>(nxl));
    size_t k = 0;
    for (int dy = 0; dy < h; ++dy)
      for (int ix = 0; ix < nxl; ++ix)
        buf[k++] = field[tile.padded_index(ix, iy_start + dy)];
  };
  auto unpack_row = [&](int iy_start, std::span<const float> buf) {
    size_t k = 0;
    for (int dy = 0; dy < h; ++dy)
      for (int ix = 0; ix < nxl; ++ix)
        field[tile.padded_index(ix, iy_start + dy)] = buf[k++];
  };

  const int west = tile.neighbor(-1, 0);
  const int east = tile.neighbor(+1, 0);
  const int south = tile.neighbor(0, -1);
  const int north = tile.neighbor(0, +1);

  std::vector<float> sendbuf, recvbuf;

  // East-west exchange.  Send own edge cells; receive into ghost cells.
  if (west >= 0) {
    pack_column(0, sendbuf);
    comm.send(west, kEast, sendbuf);  // arrives as neighbour's east halo
  }
  if (east >= 0) {
    pack_column(nxl - h, sendbuf);
    comm.send(east, kWest, sendbuf);
  }
  if (west >= 0) {
    recvbuf.resize(static_cast<size_t>(h) * static_cast<size_t>(nyl));
    comm.recv(west, kWest, recvbuf);
    unpack_column(-h, recvbuf);
  }
  if (east >= 0) {
    recvbuf.resize(static_cast<size_t>(h) * static_cast<size_t>(nyl));
    comm.recv(east, kEast, recvbuf);
    unpack_column(nxl, recvbuf);
  }

  // North-south exchange.
  if (south >= 0) {
    pack_row(0, sendbuf);
    comm.send(south, kNorth, sendbuf);
  }
  if (north >= 0) {
    pack_row(nyl - h, sendbuf);
    comm.send(north, kSouth, sendbuf);
  }
  if (south >= 0) {
    recvbuf.resize(static_cast<size_t>(h) * static_cast<size_t>(nxl));
    comm.recv(south, kSouth, recvbuf);
    unpack_row(-h, recvbuf);
  }
  if (north >= 0) {
    recvbuf.resize(static_cast<size_t>(h) * static_cast<size_t>(nxl));
    comm.recv(north, kNorth, recvbuf);
    unpack_row(nyl, recvbuf);
  }
}

}  // namespace coastal::par
