#pragma once

/// \file decomposition.hpp
/// 2-D Cartesian domain decomposition with halo exchange — the
/// communication pattern of MPI ROMS.  The global (nx, ny) horizontal grid
/// is split into px * py rectangular tiles; each tile carries a halo ring
/// of ghost cells refreshed from its four neighbours every time step.

#include <array>
#include <cstddef>
#include <span>
#include <vector>

#include "parallel/communicator.hpp"
#include "util/check.hpp"

namespace coastal::par {

/// Factor `nranks` into (px, py) as close to the aspect ratio nx:ny as
/// possible, so tiles stay near-square (minimizing halo perimeter).
std::array<int, 2> choose_grid(int nranks, int nx, int ny);

/// A rank's tile of the global domain.
struct Tile {
  int px, py;        ///< process-grid dimensions
  int cx, cy;        ///< this rank's coordinates in the process grid
  int x0, x1;        ///< global x-range [x0, x1) owned by this rank
  int y0, y1;        ///< global y-range [y0, y1)
  int halo;          ///< ghost ring width

  int nx_local() const { return x1 - x0; }
  int ny_local() const { return y1 - y0; }
  /// Padded extents including halos.
  int nx_padded() const { return nx_local() + 2 * halo; }
  int ny_padded() const { return ny_local() + 2 * halo; }

  /// Neighbour rank in the process grid, or -1 at the physical boundary.
  int neighbor(int dcx, int dcy) const;

  /// Flat index into a padded local array for local coordinates
  /// (ix in [-halo, nx_local+halo), iy likewise).
  size_t padded_index(int ix, int iy) const {
    return static_cast<size_t>(iy + halo) * static_cast<size_t>(nx_padded()) +
           static_cast<size_t>(ix + halo);
  }
};

/// Build the tile for `rank` in a (px, py) decomposition of (nx, ny).
/// Remainder cells are distributed to the low-index tiles, as MPI codes
/// conventionally do for near-balanced loads.
Tile make_tile(int rank, int px, int py, int nx, int ny, int halo);

/// Exchange the halo ring of a padded local field with the four
/// edge-neighbours (no corner exchange; the solver's stencils are 5-point).
/// `field` has tile.nx_padded() * tile.ny_padded() elements, row-major
/// with y as the slow dimension.
void exchange_halo(Comm& comm, const Tile& tile, std::span<float> field);

}  // namespace coastal::par
