#pragma once

/// \file half.hpp
/// IEEE-754 binary16 conversion.
///
/// The paper converts the FP64 ROMS output to FP16 for surrogate training
/// ("the data is converted to FP16 ... to enable faster computation and
/// reduced memory usage").  We mirror that: the sample store keeps fields
/// as uint16 half floats (halving dataset bytes and simulated SSD time);
/// compute promotes to FP32.  Round-to-nearest-even, with proper
/// subnormal, infinity, and NaN handling.

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

namespace coastal::tensor {

using half_t = uint16_t;

inline half_t float_to_half(float f) {
  uint32_t x;
  std::memcpy(&x, &f, sizeof(x));
  const uint32_t sign = (x >> 16) & 0x8000u;
  const int32_t exp = static_cast<int32_t>((x >> 23) & 0xFFu) - 127 + 15;
  uint32_t mant = x & 0x7FFFFFu;

  if (((x >> 23) & 0xFFu) == 0xFFu) {  // inf / NaN
    return static_cast<half_t>(sign | 0x7C00u | (mant ? 0x200u : 0u));
  }
  if (exp >= 0x1F) {  // overflow -> inf
    return static_cast<half_t>(sign | 0x7C00u);
  }
  if (exp <= 0) {  // subnormal or zero
    if (exp < -10) return static_cast<half_t>(sign);
    mant |= 0x800000u;  // implicit leading 1
    const int shift = 14 - exp;
    uint32_t sub = mant >> shift;
    // round to nearest even
    const uint32_t rem = mant & ((1u << shift) - 1);
    const uint32_t halfway = 1u << (shift - 1);
    if (rem > halfway || (rem == halfway && (sub & 1u))) ++sub;
    return static_cast<half_t>(sign | sub);
  }
  // normal: round mantissa from 23 to 10 bits, nearest even
  uint32_t out = sign | (static_cast<uint32_t>(exp) << 10) | (mant >> 13);
  const uint32_t rem = mant & 0x1FFFu;
  if (rem > 0x1000u || (rem == 0x1000u && (out & 1u))) ++out;  // may carry into exp — that is correct rounding
  return static_cast<half_t>(out);
}

inline float half_to_float(half_t h) {
  const uint32_t sign = (static_cast<uint32_t>(h) & 0x8000u) << 16;
  const uint32_t exp = (h >> 10) & 0x1Fu;
  const uint32_t mant = h & 0x3FFu;
  uint32_t x;
  if (exp == 0) {
    if (mant == 0) {
      x = sign;  // signed zero
    } else {
      // subnormal: normalize
      int e = -1;
      uint32_t m = mant;
      do {
        ++e;
        m <<= 1;
      } while ((m & 0x400u) == 0);
      x = sign | (static_cast<uint32_t>(127 - 15 - e) << 23) |
          ((m & 0x3FFu) << 13);
    }
  } else if (exp == 0x1F) {
    x = sign | 0x7F800000u | (mant << 13);
  } else {
    x = sign | ((exp - 15 + 127) << 23) | (mant << 13);
  }
  float f;
  std::memcpy(&f, &x, sizeof(f));
  return f;
}

inline std::vector<half_t> to_half(std::span<const float> xs) {
  std::vector<half_t> out(xs.size());
  for (size_t i = 0; i < xs.size(); ++i) out[i] = float_to_half(xs[i]);
  return out;
}

inline std::vector<float> to_float(std::span<const half_t> xs) {
  std::vector<float> out(xs.size());
  for (size_t i = 0; i < xs.size(); ++i) out[i] = half_to_float(xs[i]);
  return out;
}

}  // namespace coastal::tensor
