#pragma once

/// \file tensor.hpp
/// Dense row-major float tensor with tape-based reverse-mode autograd.
///
/// This stands in for libtorch in the reproduction: it provides exactly the
/// operator set the paper's 4-D Swin Transformer surrogate needs (broadcast
/// elementwise ops, batched matmul, softmax, layer/batch norm building
/// blocks, shape ops including roll for shifted windows) plus gradient
/// checkpointing hooks.  Tensors are always contiguous; shape ops
/// materialize.  Compute is FP32; FP16 is a storage format (see half.hpp),
/// mirroring mixed-precision training where master math stays in higher
/// precision.
///
/// Autograd model: a Tensor is a shared handle to a TensorImpl.  Ops on
/// tensors that require grad record a Node holding the parents and a
/// backward function; Tensor::backward() runs a reverse topological sweep
/// accumulating gradients into leaf tensors' .grad().

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "tensor/shape.hpp"
#include "tensor/storage.hpp"
#include "util/rng.hpp"

namespace coastal::tensor {

class Tensor;
struct TensorImpl;

/// Autograd graph node: produced by one op application.
struct Node {
  std::string name;
  std::vector<std::shared_ptr<TensorImpl>> parents;
  /// Maps the gradient w.r.t. this node's output to gradients w.r.t. each
  /// parent (same order; entries may be empty Tensors for non-diff inputs).
  std::function<std::vector<Tensor>(const Tensor& grad_out)> backward;
};

// AllocStats / alloc_stats() / reset_peak_bytes() live in storage.hpp with
// the pool they now account for; included above for source compatibility.

struct TensorImpl {
  Shape shape;
  Storage data;  ///< pooled / arena-backed float buffer (see storage.hpp)
  bool requires_grad = false;            ///< leaf flag
  std::shared_ptr<Node> grad_fn;         ///< non-null for op outputs
  std::shared_ptr<TensorImpl> grad;      ///< accumulated gradient (leaves)

  TensorImpl(Shape s, Storage d);
  /// Convenience: adopts the vector's buffer (heap-backed, never pooled).
  TensorImpl(Shape s, std::vector<float> d);
  ~TensorImpl();
  TensorImpl(const TensorImpl&) = delete;
  TensorImpl& operator=(const TensorImpl&) = delete;
};

/// Thread-local autograd mode; NoGradGuard disables graph recording in a
/// scope (used for inference and inside backward functions).
bool grad_enabled();
class NoGradGuard {
 public:
  NoGradGuard();
  ~NoGradGuard();

 private:
  bool prev_;
};

/// Scoped override of the autograd mode in either direction; activation
/// checkpointing re-enables recording inside a backward pass with this.
class GradModeGuard {
 public:
  explicit GradModeGuard(bool enable);
  ~GradModeGuard();

 private:
  bool prev_;
};

class Tensor {
 public:
  /// Empty (null) tensor; defined() is false.
  Tensor() = default;
  explicit Tensor(std::shared_ptr<TensorImpl> impl) : impl_(std::move(impl)) {}

  bool defined() const { return impl_ != nullptr; }

  // ---- creation -------------------------------------------------------
  static Tensor zeros(const Shape& shape);
  static Tensor ones(const Shape& shape);
  static Tensor full(const Shape& shape, float value);
  static Tensor from_vector(const Shape& shape, std::vector<float> values);
  /// Takes ownership of a Storage buffer (the pooled-allocation path the
  /// op implementations use; result is a leaf with no grad history).
  static Tensor from_storage(const Shape& shape, Storage data);
  /// Gaussian init, N(0, stddev^2).
  static Tensor randn(const Shape& shape, util::Rng& rng, float stddev = 1.0f);
  static Tensor uniform(const Shape& shape, util::Rng& rng, float lo, float hi);
  static Tensor arange(int64_t n);

  // ---- metadata -------------------------------------------------------
  const Shape& shape() const { return impl_->shape; }
  int64_t dim(size_t i) const { return impl_->shape[i]; }
  size_t ndim() const { return impl_->shape.size(); }
  int64_t numel() const { return tensor::numel(impl_->shape); }

  std::span<float> data() {
    return {impl_->data.data(), static_cast<size_t>(impl_->data.size())};
  }
  std::span<const float> data() const {
    return {impl_->data.data(), static_cast<size_t>(impl_->data.size())};
  }
  float* raw() { return impl_->data.data(); }
  const float* raw() const { return impl_->data.data(); }

  /// Value of a scalar (1-element) tensor.
  float item() const;
  /// Element access by full coordinates (slow; for tests and field I/O).
  float at(const std::vector<int64_t>& coords) const;
  void set(const std::vector<int64_t>& coords, float v);

  // ---- autograd -------------------------------------------------------
  /// Marks a leaf tensor as a trainable parameter.
  Tensor& set_requires_grad(bool rg);
  bool requires_grad() const { return impl_->requires_grad; }
  bool has_grad_fn() const { return impl_->grad_fn != nullptr; }
  std::shared_ptr<TensorImpl> impl() const { return impl_; }

  /// Gradient accumulated by backward(); undefined Tensor if none.
  Tensor grad() const;
  void zero_grad();
  /// Adds `g` into this tensor's grad buffer (creating it if absent).
  void accumulate_grad(const Tensor& g);

  /// Reverse-mode sweep from this (typically scalar loss) tensor.
  /// `seed` defaults to ones(shape()).
  void backward(const Tensor& seed = Tensor()) const;

  /// Copy that shares no storage and is detached from the graph.
  Tensor detach() const;
  Tensor clone() const;

  // ---- elementwise ----------------------------------------------------
  Tensor add(const Tensor& o) const;
  Tensor sub(const Tensor& o) const;
  Tensor mul(const Tensor& o) const;
  Tensor div(const Tensor& o) const;
  Tensor neg() const;
  Tensor add_scalar(float s) const;
  Tensor mul_scalar(float s) const;
  Tensor pow_scalar(float p) const;
  Tensor exp() const;
  Tensor log() const;
  Tensor sqrt() const;
  Tensor tanh() const;
  Tensor sigmoid() const;
  Tensor relu() const;
  /// Exact GELU, 0.5 x (1 + erf(x / sqrt(2))) — the paper's decoder
  /// activation.
  Tensor gelu() const;
  Tensor abs() const;

  // ---- reductions -----------------------------------------------------
  Tensor sum() const;
  Tensor mean() const;
  Tensor sum_axis(int axis, bool keepdim = false) const;
  Tensor mean_axis(int axis, bool keepdim = false) const;
  Tensor max_axis(int axis, bool keepdim = false) const;
  /// Reduce-by-summation to a broadcast-compatible smaller shape (the
  /// adjoint of broadcasting).  Non-differentiable helper.
  Tensor sum_to(const Shape& target) const;

  // ---- linear algebra -------------------------------------------------
  /// Batched matmul: [..., m, k] x [..., k, n] -> [..., m, n]; leading
  /// batch dims broadcast.
  Tensor matmul(const Tensor& o) const;
  /// Swap the last two axes (materializing).
  Tensor transpose_last() const;

  // ---- shape ops ------------------------------------------------------
  Tensor reshape(const Shape& new_shape) const;
  Tensor permute(const std::vector<size_t>& perm) const;
  /// Slice along `axis`: elements [start, start + len).
  Tensor slice(int axis, int64_t start, int64_t len) const;
  /// Zero-pad along `axis`: `before` elements in front, `after` behind.
  Tensor pad_axis(int axis, int64_t before, int64_t after) const;
  /// Circular shift along `axis` (positive = toward higher indices); the
  /// cyclic-shift primitive of SW-MSA.
  Tensor roll(int axis, int64_t shift) const;

  // ---- fused NN ops ---------------------------------------------------
  /// Softmax over the last axis.
  Tensor softmax_lastdim() const;
  /// Layer normalization over the last axis with affine params
  /// gamma/beta of shape [last_dim].
  Tensor layer_norm(const Tensor& gamma, const Tensor& beta,
                    float eps = 1e-5f) const;

  // ---- operators ------------------------------------------------------
  Tensor operator+(const Tensor& o) const { return add(o); }
  Tensor operator-(const Tensor& o) const { return sub(o); }
  Tensor operator*(const Tensor& o) const { return mul(o); }
  Tensor operator/(const Tensor& o) const { return div(o); }
  Tensor operator-() const { return neg(); }

 private:
  std::shared_ptr<TensorImpl> impl_;
};

/// Concatenate along `axis`.
Tensor concat(const std::vector<Tensor>& parts, int axis);

/// Build a tensor that participates in autograd with a caller-supplied
/// backward function — the extension point used by activation
/// checkpointing.  `backward` maps grad-wrt-output to grads-wrt-parents
/// (same order as `parents`; undefined Tensors mark non-diff inputs).
/// The Storage overload is the allocation-free hot path; the vector
/// overload adopts the buffer (heap-backed).
Tensor custom_op(Shape shape, Storage data, const char* name,
                 std::vector<Tensor> parents,
                 std::function<std::vector<Tensor>(const Tensor&)> backward);
Tensor custom_op(Shape shape, std::vector<float> data, const char* name,
                 std::vector<Tensor> parents,
                 std::function<std::vector<Tensor>(const Tensor&)> backward);

/// Mean squared error between prediction and target (scalar output).
Tensor mse_loss(const Tensor& pred, const Tensor& target);
/// Mean absolute (L1) error.
Tensor l1_loss(const Tensor& pred, const Tensor& target);

}  // namespace coastal::tensor
