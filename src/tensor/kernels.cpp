#include "tensor/kernels.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <thread>
#include <unordered_map>

#include "obs/profile.hpp"
#include "parallel/thread_pool.hpp"
#include "tensor/storage.hpp"

namespace coastal::tensor::kernels {

namespace {

int64_t ceil_div(int64_t a, int64_t b) { return (a + b - 1) / b; }

}  // namespace

KernelConfig& config() {
  static KernelConfig cfg = [] {
    KernelConfig c;
    c.num_threads = par::env_thread_override();
    return c;
  }();
  return cfg;
}

int resolved_threads() {
  const int n = config().num_threads;
  if (n > 0) return n;
  // hardware_concurrency() is a syscall on glibc; parallel_for consults
  // this on every kernel invocation, so resolve it once.
  static const int hw = std::max(1u, std::thread::hardware_concurrency());
  return hw;
}

int64_t fused_attention_min_n(int64_t head_dim) {
  const int64_t v = config().attn_fused_min_n;
  if (v > 0) return v;
  // Measured on the 1-CPU reference host (PR 4), module-level
  // MultiHeadSelfAttention forward and forward+backward, fused vs
  // unfused, sweeping N per head dim (B=8, 4 heads).  The storage pool
  // moved these crossovers *up* dramatically: the unfused path used to be
  // allocation-bound (PR 3 notes called it bimodal), and with its [N, N]
  // tensors now recycled it beats the streaming kernel on raw speed until
  // the materialized nbatch·N² score working set falls out of cache
  // (observed as a 4-6x unfused collapse between N=512 and N=768).
  // Per-dim structure: d=16 pays for a weak register tiling in the
  // templated task (ROADMAP follow-up), and d=64's unfused GEMMs run near
  // peak (k=64 inner dim) so its crossover is far higher.  Above the
  // threshold the fused path also wins on memory by construction — it
  // never materializes the score tensor.
  if (head_dim >= 64) return 1280;
  if (head_dim >= 32) return 576;
  if (head_dim >= 16) return 768;
  return 640;
}

bool fused_attention_wins(int64_t nbatch, int64_t n, int64_t head_dim) {
  const int64_t v = config().attn_fused_min_n;
  if (v > 0) return n >= v;
  // Auto: the table entry N_ref marks where the unfused path's
  // materialized [ref_batch, N, N] score working set collapses out of
  // cache.  The collapse tracks total score bytes, not N, so compare
  // nbatch·n² with ref_batch·N_ref² (in double — both products overflow
  // int64 at servable shapes).  Equality at nbatch == ref_batch reduces
  // this to the historic `n >= N_ref` gate exactly.
  const int64_t n_ref = fused_attention_min_n(head_dim);
  const int64_t ref_b = std::max<int64_t>(1, config().attn_fused_ref_batch);
  return static_cast<double>(nbatch) * static_cast<double>(n) * n >=
         static_cast<double>(ref_b) * static_cast<double>(n_ref) * n_ref;
}

void parallel_for(int64_t total, int64_t cost_per_item,
                  const std::function<void(int64_t, int64_t)>& fn) {
  if (total <= 0) return;
  const KernelConfig& cfg = config();
  const int threads = resolved_threads();
  // Serial when: single thread, nested inside a pool worker (waiting there
  // would starve the pool), or not enough work to amortize dispatch.
  if (threads <= 1 || par::ThreadPool::in_worker()) {
    fn(0, total);
    return;
  }
  const int64_t grain = std::max<int64_t>(1, cfg.parallel_grain);
  const int64_t by_grain =
      std::max<int64_t>(1, total * std::max<int64_t>(1, cost_per_item) / grain);
  const int64_t nchunks = std::min<int64_t>(
      {total, static_cast<int64_t>(cfg.oversubscribe) * threads, by_grain});
  if (nchunks <= 1) {
    fn(0, total);
    return;
  }
  par::ThreadPool::global().parallel_for(
      0, static_cast<size_t>(total),
      [&fn](size_t lo, size_t hi) {
        fn(static_cast<int64_t>(lo), static_cast<int64_t>(hi));
      },
      static_cast<size_t>(nchunks));
}

// ---------------------------------------------------------------------------
// GEMM
// ---------------------------------------------------------------------------

namespace {

// Register micro-tile.  Sized so the MR×NR accumulator block fits the
// architecture's vector register file (GCC/Clang fully unroll the fixed
// loops below and keep `acc` in registers).
#if defined(__AVX512F__)
constexpr int64_t kMR = 8, kNR = 32;
#elif defined(__AVX2__) || defined(__AVX__)
constexpr int64_t kMR = 6, kNR = 16;
#else
constexpr int64_t kMR = 4, kNR = 8;
#endif

/// Naive ikj kernel for problems too small to pack.  Unlike the historic
/// version this has no `a == 0.0f` skip: NaN/Inf in B always propagates.
void gemm_naive(const float* A, const float* B, float* C, int64_t m,
                int64_t k, int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    float* crow = C + i * n;
    const float* arow = A + i * k;
    for (int64_t kk = 0; kk < k; ++kk) {
      const float a = arow[kk];
      const float* brow = B + kk * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += a * brow[j];
    }
  }
}

/// Pack an mb×kc block of A (leading dimension lda) into MR-row panels:
/// layout [panel][p][MR], zero-padded so the micro-kernel never branches.
void pack_a(const float* A, int64_t lda, int64_t mb, int64_t kc, float* out) {
  for (int64_t ir = 0; ir < mb; ir += kMR) {
    const int64_t m_eff = std::min(kMR, mb - ir);
    for (int64_t p = 0; p < kc; ++p) {
      int64_t i = 0;
      for (; i < m_eff; ++i) *out++ = A[(ir + i) * lda + p];
      for (; i < kMR; ++i) *out++ = 0.0f;
    }
  }
}

/// Pack a kc×nb block of B (leading dimension ldb) into NR-column panels:
/// layout [panel][p][NR], zero-padded.
void pack_b(const float* B, int64_t ldb, int64_t kc, int64_t nb, float* out) {
  for (int64_t jr = 0; jr < nb; jr += kNR) {
    const int64_t n_eff = std::min(kNR, nb - jr);
    for (int64_t p = 0; p < kc; ++p) {
      const float* row = B + p * ldb + jr;
      int64_t j = 0;
      for (; j < n_eff; ++j) *out++ = row[j];
      for (; j < kNR; ++j) *out++ = 0.0f;
    }
  }
}

/// C[0:mr, 0:nr] += Apanel · Bpanel over kc.  The accumulation order for a
/// given output element is p ascending — identical regardless of how the
/// surrounding macro loops are scheduled across threads.
void micro_kernel(int64_t kc, const float* __restrict Ap,
                  const float* __restrict Bp, float* __restrict C,
                  int64_t ldc, int64_t mr, int64_t nr) {
  float acc[kMR][kNR] = {};
  for (int64_t p = 0; p < kc; ++p, Ap += kMR, Bp += kNR) {
    for (int64_t i = 0; i < kMR; ++i) {
      const float a = Ap[i];
      for (int64_t j = 0; j < kNR; ++j) acc[i][j] += a * Bp[j];
    }
  }
  if (mr == kMR && nr == kNR) {
    for (int64_t i = 0; i < kMR; ++i) {
      float* crow = C + i * ldc;
      for (int64_t j = 0; j < kNR; ++j) crow[j] += acc[i][j];
    }
  } else {
    for (int64_t i = 0; i < mr; ++i) {
      float* crow = C + i * ldc;
      for (int64_t j = 0; j < nr; ++j) crow[j] += acc[i][j];
    }
  }
}

/// B-pack scratch is retained in the warm per-thread Workspace buffer
/// below this cap (a fresh allocation per call costs mmap + page faults,
/// measurable at microsecond GEMM sizes) and allocated per call above it,
/// so no thread permanently holds more than the cap.  A-panel scratch
/// (Workspace::gemm_apack) is Mc×Kc-bounded and always retained.
constexpr int64_t kBpackKeepFloats = int64_t{1} << 20;  // 4 MB

/// Selects the packing destination per the policy above — the single
/// definition both gemm_batched paths share, so their retention behavior
/// can never drift apart.  `warm` must be Workspace::gemm_bpack of the
/// packing thread: it is never resized while another buffer from the same
/// workspace (gemm_apack) is in flight, so pointers stay stable.
float* pack_scratch(int64_t need, std::vector<float>& warm,
                    std::vector<float>& local) {
  if (need <= kBpackKeepFloats) {
    warm.resize(static_cast<size_t>(need));
    return warm.data();
  }
  local.resize(static_cast<size_t>(need));
  return local.data();
}

/// Shared packed-B layout.  pack_b over the *full* row extent n lays NR
/// panels out in ascending column order, so for one kc-deep slice the
/// panel starting at column j0 (always an NR multiple) sits at offset
/// j0·kc; stacking the kc slices in ascending pc order puts slice pc0 at
/// offset pc0·npad with npad = ceil(n / NR)·NR.  One full B image is
/// k·npad floats.
///
/// Blocked GEMM over one row block: C[0:mb, :] += A[0:mb, :] · B, with
/// `Bp` the shared packed image of this entry's B.  Loop order pc → jc
/// keeps accumulation over k strictly ascending per output element (kc
/// panels are added in order), so splitting m across tasks never perturbs
/// results — and the panels themselves are byte-identical to the historic
/// per-task packing, so sharing them cannot either.
void gemm_rowblock(const float* A, const float* Bp, float* C, int64_t mb,
                   int64_t k, int64_t n, const KernelConfig& cfg) {
  const int64_t kc_max = std::max<int64_t>(kMR, cfg.gemm_kc);
  const int64_t nc_max =
      std::max<int64_t>(kNR, (cfg.gemm_nc / kNR) * kNR);
  const int64_t npad = ceil_div(n, kNR) * kNR;
  std::vector<float>& apack = workspace().gemm_apack;
  apack.resize(static_cast<size_t>(ceil_div(mb, kMR) * kMR * kc_max));
  for (int64_t pc = 0; pc < k; pc += kc_max) {
    const int64_t kc = std::min(kc_max, k - pc);
    pack_a(A + pc, k, mb, kc, apack.data());
    const float* bpc = Bp + pc * npad;
    for (int64_t jc = 0; jc < n; jc += nc_max) {
      const int64_t nc = std::min(nc_max, n - jc);
      for (int64_t jr = 0; jr < nc; jr += kNR) {
        const float* bp = bpc + (jc + jr) * kc;
        for (int64_t ir = 0; ir < mb; ir += kMR) {
          const float* ap = apack.data() + (ir / kMR) * kc * kMR;
          micro_kernel(kc, ap, bp, C + ir * n + jc + jr, n,
                       std::min(kMR, mb - ir), std::min(kNR, nc - jr));
        }
      }
    }
  }
}

}  // namespace

void gemm(const float* A, const float* B, float* C, int64_t m, int64_t k,
          int64_t n) {
  gemm_batched(A, B, C, m, k, n, 1, {0}, {0});
}

void gemm_batched(const float* A, const float* B, float* C, int64_t m,
                  int64_t k, int64_t n, int64_t nbatch,
                  const std::vector<int64_t>& a_off,
                  const std::vector<int64_t>& b_off) {
  if (m <= 0 || n <= 0 || nbatch <= 0) return;
  obs::ScopedStage obs_stage(obs::Stage::kGemm);
  const KernelConfig& cfg = config();
  // Path choice depends only on problem size and config — never on thread
  // count — so serial and parallel runs agree bitwise.
  if (k <= 0) return;  // C += A·B with empty inner dim is a no-op
  if (m * k * n <= cfg.gemm_small_madds) {
    parallel_for(nbatch, m * k * n, [&](int64_t lo, int64_t hi) {
      for (int64_t b = lo; b < hi; ++b) {
        gemm_naive(A + a_off[static_cast<size_t>(b)],
                   B + b_off[static_cast<size_t>(b)], C + b * m * n, m, k, n);
      }
    });
    return;
  }
  const int64_t mc = std::max<int64_t>(kMR, cfg.gemm_mc);
  const int64_t nblocks = ceil_div(m, mc);

  // Pack each *distinct* B operand once into a shared buffer before the
  // row-block sweep (previously every task repacked its own panels — for a
  // wide-N projection matmul split over many row blocks that repacking
  // dominated).  Packing is a pure strided copy with disjoint destinations,
  // so parallelizing it never reorders arithmetic, and the packed bytes are
  // identical to what each task used to produce locally.  The buffer is a
  // caller-thread thread_local so repeated GEMMs reuse warm pages (a fresh
  // heap allocation per call costs mmap + page faults at these sizes);
  // pool workers only read it, and it outlives the parallel_for below.
  const int64_t kc_max = std::max<int64_t>(kMR, cfg.gemm_kc);
  const int64_t npad = ceil_div(n, kNR) * kNR;
  // Distinct b_off values (first-seen order) and each entry's image index.
  // Fast paths cover the two dominant shapes — a single batch entry and a
  // fully broadcast B — before falling back to hashing.
  std::vector<int64_t> uniq;
  std::vector<int32_t> u_of;
  bool all_same = true;
  for (int64_t b = 1; b < nbatch && all_same; ++b)
    all_same = b_off[static_cast<size_t>(b)] == b_off[0];
  if (all_same) {
    uniq.push_back(b_off[0]);
  } else {
    u_of.resize(static_cast<size_t>(nbatch));
    std::unordered_map<int64_t, int32_t> seen;
    seen.reserve(static_cast<size_t>(nbatch));
    for (int64_t b = 0; b < nbatch; ++b) {
      auto [it, inserted] = seen.emplace(b_off[static_cast<size_t>(b)],
                                         static_cast<int32_t>(uniq.size()));
      if (inserted) uniq.push_back(b_off[static_cast<size_t>(b)]);
      u_of[static_cast<size_t>(b)] = it->second;
    }
  }
  const int64_t bstride = k * npad;  // one packed B image
  const int64_t kcblocks = ceil_div(k, kc_max);
  const int64_t need = static_cast<int64_t>(uniq.size()) * bstride;

  // Share the pre-packed images only when (a) some image is actually
  // consumed by more than one task and (b) the transient buffer — a padded
  // copy of every distinct B — stays within a sane bound.  Everything else
  // packs inside the task, one image at a time: the no-reuse case (every
  // entry distinct, one row block each — the unfused-attention shape at
  // small windows) would pay the full copy for zero saved repacks, and an
  // oversized pack would spike peak RSS by O(total B bytes) per call,
  // undoing the memory wins this engine exists for.
  constexpr int64_t kBpackSharedMaxFloats = int64_t{1} << 23;  // 32 MB
  const bool share = need <= kBpackSharedMaxFloats &&
                     nbatch * nblocks > static_cast<int64_t>(uniq.size());
  if (!share) {
    parallel_for(nbatch * nblocks, mc * k * n, [&](int64_t lo, int64_t hi) {
      std::vector<float> local;
      float* img = pack_scratch(bstride, workspace().gemm_bpack, local);
      int64_t packed_off = -1;  // b_off currently packed into img
      for (int64_t t = lo; t < hi; ++t) {
        const int64_t b = t / nblocks;
        const int64_t i0 = (t % nblocks) * mc;
        const int64_t mb = std::min(mc, m - i0);
        const int64_t off = b_off[static_cast<size_t>(b)];
        if (off != packed_off) {
          // Tasks are consecutive within a chunk, so same-entry row
          // blocks repack at most once per chunk.
          for (int64_t pc0 = 0; pc0 < k; pc0 += kc_max) {
            const int64_t kc = std::min(kc_max, k - pc0);
            pack_b(B + off + pc0 * n, n, kc, n, img + pc0 * npad);
          }
          packed_off = off;
        }
        gemm_rowblock(A + a_off[static_cast<size_t>(b)] + i0 * k, img,
                      C + b * m * n + i0 * n, mb, k, n, cfg);
      }
    });
    return;
  }

  // Caller-thread warm buffer: the row-block tasks below only read it
  // (and only resize their own gemm_apack), so the pointer stays stable
  // across the parallel_for.
  std::vector<float> bpack_local;
  float* bpack = pack_scratch(need, workspace().gemm_bpack, bpack_local);
  const int64_t pack_tasks = static_cast<int64_t>(uniq.size()) * kcblocks;
  if (pack_tasks == 1) {
    // Single image, single k-panel: skip the dispatch (tiny GEMMs sit in
    // the microsecond range where a std::function round-trip shows up).
    pack_b(B + uniq[0], n, k, n, bpack);
  } else {
    parallel_for(pack_tasks, kc_max * npad, [&](int64_t lo, int64_t hi) {
      for (int64_t t = lo; t < hi; ++t) {
        const int64_t u = t / kcblocks;
        const int64_t pc0 = (t % kcblocks) * kc_max;
        const int64_t kc = std::min(kc_max, k - pc0);
        pack_b(B + uniq[static_cast<size_t>(u)] + pc0 * n, n, kc, n,
               bpack + u * bstride + pc0 * npad);
      }
    });
  }

  parallel_for(nbatch * nblocks, mc * k * n, [&](int64_t lo, int64_t hi) {
    for (int64_t t = lo; t < hi; ++t) {
      const int64_t b = t / nblocks;
      const int64_t i0 = (t % nblocks) * mc;
      const int64_t mb = std::min(mc, m - i0);
      const int64_t u = all_same ? 0 : u_of[static_cast<size_t>(b)];
      gemm_rowblock(A + a_off[static_cast<size_t>(b)] + i0 * k,
                    bpack + u * bstride, C + b * m * n + i0 * n, mb, k, n,
                    cfg);
    }
  });
}

// ---------------------------------------------------------------------------
// Fused attention
// ---------------------------------------------------------------------------

namespace {

/// Branch-free expf shared by the fused attention forward/backward and
/// softmax_rows: exp(x) = 2^k · e^t
/// with k = rint(x·log2 e) and t = (x·log2 e − k)·ln 2 ∈ [−½ln 2, ½ln 2],
/// e^t by a degree-7 Taylor polynomial (relative error ≲ 2e−7).  Unlike
/// libm's expf this contains no call and no branch, so GCC/Clang
/// vectorize the epilogue loop it sits in — and expf is the single
/// hottest instruction stream in attention at Swin window sizes.
///
/// Semantics the online softmax relies on (arguments are ≤ 0 or NaN,
/// since the running row max has been subtracted):
///  * NaN in → NaN out (restored by the final select), so a poisoned
///    score row still poisons the row sum exactly like std::exp.
///  * x < −104 (where real expf is subnormal-or-zero) → exactly 0, so
///    −inf and −1e9 window-mask scores contribute zero weight; a fully
///    −inf row then finishes with sum 0 and 0/0 = NaN like the unfused
///    softmax, instead of renormalizing the clamp floor into a spurious
///    uniform distribution.
inline float fast_expf(float x) {
  constexpr float kLog2e = 1.44269504088896341f;
  constexpr float kLn2 = 0.6931471805599453f;
  const float z = std::min(std::max(x * kLog2e, -126.0f), 126.0f);
  const float kf = std::nearbyint(z);
  const float t = (z - kf) * kLn2;
  // e^t, Horner degree 7.
  float p = 1.0f / 5040.0f;
  p = p * t + 1.0f / 720.0f;
  p = p * t + 1.0f / 120.0f;
  p = p * t + 1.0f / 24.0f;
  p = p * t + 1.0f / 6.0f;
  p = p * t + 0.5f;
  p = p * t + 1.0f;
  p = p * t + 1.0f;
  // 2^k via exponent bits; kf ∈ [-126, 126] so the shift never overflows.
  // NaN input survives the clamp (std::max/min keep a NaN first operand),
  // and casting NaN to int is UB — route it through 0; the final select
  // restores NaN regardless, and this stays a branchless blend.
  const int32_t ki = static_cast<int32_t>(kf == kf ? kf : 0.0f);
  float two_k;
  const int32_t bits = (ki + 127) << 23;
  std::memcpy(&two_k, &bits, sizeof(two_k));
  float r = p * two_k;
  r = x < -104.0f ? 0.0f : r;  // flush the clamp floor to a true zero
  return x != x ? x : r;       // preserve NaN
}

/// Reduction lane count for the block max / row sum below — one AVX-512
/// vector of floats.  Lane decomposition is fixed at compile time, so the
/// (re)association pattern is identical on every host and thread count.
constexpr int kAttnLanes = 16;

/// Lane-strided max of x[0, n) folded into `init`.  This association
/// pattern is a determinism-critical invariant shared by the fused
/// attention forward and softmax_rows — one definition so the reduction
/// trees can never drift apart.  NaN falls out of std::max (comparisons
/// with NaN are false), so callers relying on NaN poisoning must route it
/// through a later arithmetic step, as both users do via exp(NaN - mx).
inline float lane_max(const float* __restrict x, int64_t n, float init) {
  float part[kAttnLanes];
  for (int u = 0; u < kAttnLanes; ++u)
    part[u] = -std::numeric_limits<float>::infinity();
  int64_t i = 0;
  for (; i + kAttnLanes <= n; i += kAttnLanes)
    for (int u = 0; u < kAttnLanes; ++u)
      part[u] = std::max(part[u], x[i + u]);
  for (int u = 0; u < kAttnLanes; ++u) init = std::max(init, part[u]);
  for (; i < n; ++i) init = std::max(init, x[i]);
  return init;
}

/// Lane-strided sum of x[0, n): partial lanes fold in ascending lane
/// order, then the tail adds serially — same fixed association everywhere.
inline float lane_sum(const float* __restrict x, int64_t n) {
  float part[kAttnLanes] = {};
  int64_t i = 0;
  for (; i + kAttnLanes <= n; i += kAttnLanes)
    for (int u = 0; u < kAttnLanes; ++u) part[u] += x[i + u];
  float sum = 0.0f;
  for (int u = 0; u < kAttnLanes; ++u) sum += part[u];
  for (; i < n; ++i) sum += x[i];
  return sum;
}

/// Lane-strided dot product of a[0, n)·b[0, n) — same fixed association
/// family as lane_sum; the softmax backward's per-row Σ g·y reduction
/// (a serial fma chain before) vectorizes through this.
inline float lane_dot(const float* __restrict a, const float* __restrict b,
                      int64_t n) {
  float part[kAttnLanes] = {};
  int64_t i = 0;
  for (; i + kAttnLanes <= n; i += kAttnLanes)
    for (int u = 0; u < kAttnLanes; ++u) part[u] += a[i + u] * b[i + u];
  float sum = 0.0f;
  for (int u = 0; u < kAttnLanes; ++u) sum += part[u];
  for (; i < n; ++i) sum += a[i] * b[i];
  return sum;
}

/// One (batch entry, query row block) of flash attention.  KV blocks are
/// consumed in ascending order and every reduction (over d in the score
/// dot, over lanes in the max/sum scans, over blocks in the recurrence)
/// has a fixed order, so the result is independent of how tasks are
/// scheduled across threads.
///
/// `D` is the compile-time head dim for the hot instantiations (the
/// d-loops fully unroll and the output accumulator row lives in vector
/// registers across the V sweep); `D == 0` is the runtime-d fallback.
/// `stats_out` (optional) receives the final (m, l) pair per query row —
/// the contract attention_fused_backward rebuilds probabilities from.
template <int D>
void attention_task(const float* Qb, const float* Kb, const float* Vb,
                    float* Ob, const float* mrow, int64_t rows, int64_t nkv,
                    int64_t rt_d, float scale, int64_t bc_max,
                    float* stats_out) {
  const int64_t d = D > 0 ? D : rt_d;
  // Per-thread Workspace scratch: packed K^T block, score block, and the
  // online-softmax state (row max, row sum, output accumulator).
  Workspace& ws = workspace();
  ws.attn_kt.resize(static_cast<size_t>(d * bc_max));
  ws.attn_scores.resize(static_cast<size_t>(rows * bc_max));
  ws.attn_stat.resize(static_cast<size_t>(rows * (d + 2)));
  float* kt = ws.attn_kt.data();
  float* s = ws.attn_scores.data();
  float* m = ws.attn_stat.data();         // running row max
  float* l = m + rows;                    // running row sum of exp
  float* acc = l + rows;                  // [rows, d] output accumulator
  constexpr float kNegInf = -std::numeric_limits<float>::infinity();
  std::fill(m, m + rows, kNegInf);
  std::fill(l, l + rows, 0.0f);
  std::fill(acc, acc + rows * d, 0.0f);

  for (int64_t kv0 = 0; kv0 < nkv; kv0 += bc_max) {
    const int64_t bc = std::min(bc_max, nkv - kv0);
    // Pack the K block transposed so the score micro-kernel's inner loop
    // runs contiguously over j lanes (no reassociated reductions).
    for (int64_t j = 0; j < bc; ++j) {
      const float* krow = Kb + (kv0 + j) * d;
      for (int64_t dd = 0; dd < d; ++dd) kt[dd * bc + j] = krow[dd];
    }
    for (int64_t i = 0; i < rows; ++i) {
      float* __restrict srow = s + i * bc_max;
      std::fill(srow, srow + bc, 0.0f);
      const float* qrow = Qb + i * d;
      for (int64_t dd = 0; dd < d; ++dd) {
        const float qv = qrow[dd];
        const float* __restrict krow = kt + dd * bc;
        for (int64_t j = 0; j < bc; ++j) srow[j] += qv * krow[j];
      }
      if (mrow != nullptr) {
        const float* mk = mrow + i * nkv + kv0;
        for (int64_t j = 0; j < bc; ++j) srow[j] = srow[j] * scale + mk[j];
      } else {
        for (int64_t j = 0; j < bc; ++j) srow[j] *= scale;
      }
      // Online softmax: new block max, rescale old stats by
      // alpha = exp(m_old - m_new), fold in the fresh exponentials.
      // NaN scores fall out of std::max (as in softmax_rows) but poison
      // the row sum through exp(NaN), matching unfused semantics.  Max is
      // exact under any association, so the lane split never changes the
      // result on NaN-free rows (a NaN row is wholly poisoned anyway).
      const float bm = lane_max(srow, bc, m[i]);
      // While the running max is still -inf (every key so far masked with
      // -inf), subtract 0 instead: exp(-inf - -inf) would manufacture NaN
      // where the reference softmax — whose max spans the whole row —
      // yields weight 0.  A NaN score still reaches the exp (NaN - 0 is
      // NaN), so NaN rows stay poisoned; an all -inf row ends with
      // l = 0 and finishes as 0/0 = NaN, exactly like the reference.
      const float bm_eff = bm == kNegInf ? 0.0f : bm;
      const float alpha = fast_expf(m[i] - bm_eff);
      m[i] = bm;
      // Elementwise exp first (vectorizes: fast_expf is branch-free), then
      // the lane-strided row sum — a single serial chain would bottleneck
      // on add latency, and fusing the sum into the exp loop would
      // serialize that loop too.
      for (int64_t j = 0; j < bc; ++j) srow[j] = fast_expf(srow[j] - bm_eff);
      const float rowsum = lane_sum(srow, bc);
      l[i] = alpha * l[i] + rowsum;
      // acc[i, :] = alpha · acc[i, :] + P · V_block, with two independent
      // fma chains over j to hide the accumulator latency.  Chain results
      // combine in a fixed order, so this too is schedule-independent.
      float* __restrict arow = acc + i * d;
      const float* __restrict vblock = Vb + kv0 * d;
      if constexpr (D > 0) {
        float a0[D] = {}, a1[D] = {};
        int64_t j = 0;
        for (; j + 2 <= bc; j += 2) {
          const float p0 = srow[j], p1 = srow[j + 1];
          const float* v0 = vblock + j * D;
          const float* v1 = v0 + D;
          for (int dd = 0; dd < D; ++dd) a0[dd] += p0 * v0[dd];
          for (int dd = 0; dd < D; ++dd) a1[dd] += p1 * v1[dd];
        }
        if (j < bc) {
          const float p0 = srow[j];
          const float* v0 = vblock + j * D;
          for (int dd = 0; dd < D; ++dd) a0[dd] += p0 * v0[dd];
        }
        for (int dd = 0; dd < D; ++dd)
          arow[dd] = arow[dd] * alpha + (a0[dd] + a1[dd]);
      } else {
        for (int64_t dd = 0; dd < d; ++dd) arow[dd] *= alpha;
        for (int64_t j = 0; j < bc; ++j) {
          const float p = srow[j];
          const float* vrow = vblock + j * d;
          for (int64_t dd = 0; dd < d; ++dd) arow[dd] += p * vrow[dd];
        }
      }
    }
  }
  for (int64_t i = 0; i < rows; ++i) {
    const float inv = 1.0f / l[i];
    const float* arow = acc + i * d;
    float* orow = Ob + i * d;
    for (int64_t dd = 0; dd < d; ++dd) orow[dd] = arow[dd] * inv;
  }
  if (stats_out != nullptr) {
    // The raw running max (possibly -inf on a fully masked row) and the
    // exponential sum, exactly as the recurrence left them — the backward
    // reconstructs P[i, j] = fast_expf(S[i, j] - m) / l from these.
    for (int64_t i = 0; i < rows; ++i) {
      stats_out[i * 2] = m[i];
      stats_out[i * 2 + 1] = l[i];
    }
  }
}

}  // namespace

void attention_fused(const float* Q, const float* K, const float* V, float* O,
                     int64_t nbatch, int64_t nq, int64_t nkv, int64_t d,
                     float scale, const float* mask,
                     const std::vector<int64_t>& mask_off, float* stats) {
  if (nbatch <= 0 || nq <= 0 || nkv <= 0 || d <= 0) return;
  obs::ScopedStage obs_stage(obs::Stage::kAttention);
  const KernelConfig& cfg = config();
  const int64_t bq = std::max<int64_t>(1, cfg.attn_bq);
  const int64_t bc_max = std::min(std::max<int64_t>(1, cfg.attn_bkv), nkv);
  const int64_t qblocks = ceil_div(nq, bq);
  // Head-dim specialization: path choice depends only on d, never on
  // thread count, so serial and parallel runs stay bitwise identical.
  auto task = attention_task<0>;
  switch (d) {
    case 4: task = attention_task<4>; break;
    case 8: task = attention_task<8>; break;
    case 16: task = attention_task<16>; break;
    case 32: task = attention_task<32>; break;
    case 64: task = attention_task<64>; break;
    default: break;
  }
  parallel_for(nbatch * qblocks, 2 * bq * nkv * d, [&](int64_t lo, int64_t hi) {
    for (int64_t t = lo; t < hi; ++t) {
      const int64_t b = t / qblocks;
      const int64_t q0 = (t % qblocks) * bq;
      const int64_t rows = std::min(bq, nq - q0);
      const float* mrow =
          mask ? mask + mask_off[static_cast<size_t>(b)] + q0 * nkv : nullptr;
      task(Q + (b * nq + q0) * d, K + b * nkv * d, V + b * nkv * d,
           O + (b * nq + q0) * d, mrow, rows, nkv, d, scale, bc_max,
           stats ? stats + (b * nq + q0) * 2 : nullptr);
    }
  });
}

namespace {

/// One (batch × head) entry of the recompute-based flash backward.  KV
/// blocks stream in ascending order and query rows are visited in
/// ascending order inside each block, so every accumulation into
/// dQ/dK/dV has a fixed, thread-count-independent order.  The probability
/// block is rebuilt from the saved (m, l) with the same fast_expf the
/// forward used; P equals the forward's weights exactly when the row's
/// sweep fit one KV block, and to within float rounding otherwise (the
/// forward reaches a rescaled block's weight as exp(S − m_blk)·alpha, two
/// expf results multiplied, where this takes one call) — see the stats
/// contract in kernels.hpp.
template <int D>
void attention_bwd_task(const float* Qb, const float* Kb, const float* Vb,
                        const float* Ob, const float* dOb,
                        const float* statsb, const float* mrow, float* dQb,
                        float* dKb, float* dVb, int64_t nq, int64_t nkv,
                        int64_t rt_d, float scale, int64_t bc_max) {
  const int64_t d = D > 0 ? D : rt_d;
  // Per-thread Workspace scratch: packed Kᵀ/Vᵀ blocks, the rebuilt
  // probability row, the dO·Vᵀ row, and Δ_i = Σ_d dO∘O per query row.
  Workspace& ws = workspace();
  ws.attn_bwd_kt.resize(static_cast<size_t>(d * bc_max));
  ws.attn_bwd_vt.resize(static_cast<size_t>(d * bc_max));
  ws.attn_bwd_p.resize(static_cast<size_t>(bc_max));
  ws.attn_bwd_dp.resize(static_cast<size_t>(bc_max));
  ws.attn_bwd_delta.resize(static_cast<size_t>(nq));
  float* kt = ws.attn_bwd_kt.data();
  float* vt = ws.attn_bwd_vt.data();
  float* p = ws.attn_bwd_p.data();
  float* dp = ws.attn_bwd_dp.data();
  float* delta = ws.attn_bwd_delta.data();
  std::fill(dQb, dQb + nq * d, 0.0f);
  std::fill(dKb, dKb + nkv * d, 0.0f);
  std::fill(dVb, dVb + nkv * d, 0.0f);

  // Δ_i = Σ_d dO[i,:]·O[i,:] — the softmax-backward row dot (Σ_j P·dP) in
  // flash form, computable without P because O = P·V is already normalized.
  for (int64_t i = 0; i < nq; ++i) {
    const float* orow = Ob + i * d;
    const float* grow = dOb + i * d;
    float acc = 0.0f;
    for (int64_t dd = 0; dd < d; ++dd) acc += grow[dd] * orow[dd];
    delta[i] = acc;
  }

  for (int64_t kv0 = 0; kv0 < nkv; kv0 += bc_max) {
    const int64_t bc = std::min(bc_max, nkv - kv0);
    // Pack K and V transposed, exactly like the forward packs K: the score
    // and dO·Vᵀ micro-kernels then run contiguously over j lanes with
    // reductions over d in fixed ascending order.
    for (int64_t j = 0; j < bc; ++j) {
      const float* krow = Kb + (kv0 + j) * d;
      const float* vrow = Vb + (kv0 + j) * d;
      for (int64_t dd = 0; dd < d; ++dd) {
        kt[dd * bc + j] = krow[dd];
        vt[dd * bc + j] = vrow[dd];
      }
    }
    for (int64_t i = 0; i < nq; ++i) {
      const float* qrow = Qb + i * d;
      const float* grow = dOb + i * d;
      // Recompute the score row for this block (same arithmetic as the
      // forward), then rebuild probabilities from the saved statistics:
      // P = exp(S - m) / l.  A masked key (-inf or -1e9 bias) yields an
      // exact 0; a fully masked row carries m = -inf, l = 0 and poisons
      // its gradients with NaN exactly like the reference backward.
      std::fill(p, p + bc, 0.0f);
      for (int64_t dd = 0; dd < d; ++dd) {
        const float qv = qrow[dd];
        const float* __restrict krow = kt + dd * bc;
        float* __restrict prow = p;
        for (int64_t j = 0; j < bc; ++j) prow[j] += qv * krow[j];
      }
      if (mrow != nullptr) {
        const float* mk = mrow + i * nkv + kv0;
        for (int64_t j = 0; j < bc; ++j) p[j] = p[j] * scale + mk[j];
      } else {
        for (int64_t j = 0; j < bc; ++j) p[j] *= scale;
      }
      const float mi = statsb[i * 2];
      const float inv_l = 1.0f / statsb[i * 2 + 1];
      for (int64_t j = 0; j < bc; ++j)
        p[j] = fast_expf(p[j] - mi) * inv_l;
      // dP = dO · Vᵀ over this block.
      std::fill(dp, dp + bc, 0.0f);
      for (int64_t dd = 0; dd < d; ++dd) {
        const float gv = grow[dd];
        const float* __restrict vrow = vt + dd * bc;
        float* __restrict dprow = dp;
        for (int64_t j = 0; j < bc; ++j) dprow[j] += gv * vrow[j];
      }
      // dS = P ∘ (dP - Δ_i) · scale, folded straight into the three
      // gradient accumulations — dS itself never exists as a row.
      const float di = delta[i];
      if constexpr (D > 0) {
        float dq[D] = {};
        for (int64_t j = 0; j < bc; ++j) {
          const float pj = p[j];
          const float ds = pj * (dp[j] - di) * scale;
          const float* krow = Kb + (kv0 + j) * D;
          float* dkrow = dKb + (kv0 + j) * D;
          float* dvrow = dVb + (kv0 + j) * D;
          for (int dd = 0; dd < D; ++dd) dq[dd] += ds * krow[dd];
          for (int dd = 0; dd < D; ++dd) dkrow[dd] += ds * qrow[dd];
          for (int dd = 0; dd < D; ++dd) dvrow[dd] += pj * grow[dd];
        }
        float* dqrow = dQb + i * D;
        for (int dd = 0; dd < D; ++dd) dqrow[dd] += dq[dd];
      } else {
        float* dqrow = dQb + i * d;
        for (int64_t j = 0; j < bc; ++j) {
          const float pj = p[j];
          const float ds = pj * (dp[j] - di) * scale;
          const float* krow = Kb + (kv0 + j) * d;
          float* dkrow = dKb + (kv0 + j) * d;
          float* dvrow = dVb + (kv0 + j) * d;
          for (int64_t dd = 0; dd < d; ++dd) dqrow[dd] += ds * krow[dd];
          for (int64_t dd = 0; dd < d; ++dd) dkrow[dd] += ds * qrow[dd];
          for (int64_t dd = 0; dd < d; ++dd) dvrow[dd] += pj * grow[dd];
        }
      }
    }
  }
}

}  // namespace

void attention_fused_backward(const float* Q, const float* K, const float* V,
                              const float* O, const float* dO,
                              const float* stats, float* dQ, float* dK,
                              float* dV, int64_t nbatch, int64_t nq,
                              int64_t nkv, int64_t d, float scale,
                              const float* mask,
                              const std::vector<int64_t>& mask_off) {
  if (nbatch <= 0 || nq <= 0 || nkv <= 0 || d <= 0) return;
  obs::ScopedStage obs_stage(obs::Stage::kAttention);
  const KernelConfig& cfg = config();
  const int64_t bc_max = std::min(std::max<int64_t>(1, cfg.attn_bkv), nkv);
  // Head-dim specialization mirrors the forward (path depends only on d).
  auto task = attention_bwd_task<0>;
  switch (d) {
    case 4: task = attention_bwd_task<4>; break;
    case 8: task = attention_bwd_task<8>; break;
    case 16: task = attention_bwd_task<16>; break;
    case 32: task = attention_bwd_task<32>; break;
    case 64: task = attention_bwd_task<64>; break;
    default: break;
  }
  // One task per (batch × head) entry: dK/dV rows accumulate over *query*
  // rows, so splitting queries across tasks would either race or need a
  // deterministic reduction tree.  Batch × heads is the natural grain for
  // training workloads (B · nW · heads entries) and keeps every gradient
  // element owned by exactly one task.
  parallel_for(nbatch, 5 * nq * nkv * d, [&](int64_t lo, int64_t hi) {
    for (int64_t b = lo; b < hi; ++b) {
      const float* mrow =
          mask ? mask + mask_off[static_cast<size_t>(b)] : nullptr;
      task(Q + b * nq * d, K + b * nkv * d, V + b * nkv * d, O + b * nq * d,
           dO + b * nq * d, stats + b * nq * 2, mrow, dQ + b * nq * d,
           dK + b * nkv * d, dV + b * nkv * d, nq, nkv, d, scale, bc_max);
    }
  });
}

// ---------------------------------------------------------------------------
// Softmax / layer norm
// ---------------------------------------------------------------------------

void softmax_rows(const float* x, float* y, int64_t rows, int64_t cols) {
  constexpr float kNegInf = -std::numeric_limits<float>::infinity();
  parallel_for(rows, cols * 8, [&](int64_t lo, int64_t hi) {
    for (int64_t r = lo; r < hi; ++r) {
      const float* row = x + r * cols;
      float* orow = y + r * cols;
      // Same structure as the fused-attention epilogue: lane-strided max,
      // a branch-free expf pass the compiler vectorizes (libm expf kept
      // this loop scalar and was the kernel's entire cost), lane-strided
      // sum — all via the shared lane_max/lane_sum helpers so the
      // association can never drift from the fused path.  Rows stay
      // bitwise identical across thread counts.  A NaN score falls out of
      // the max but poisons the row through exp(NaN); an all -inf row
      // yields exp(-inf - -inf) = NaN like libm.
      const float mx = lane_max(row, cols, kNegInf);
      for (int64_t c = 0; c < cols; ++c) orow[c] = fast_expf(row[c] - mx);
      const float denom = lane_sum(orow, cols);
      const float inv = 1.0f / denom;
      for (int64_t c = 0; c < cols; ++c) orow[c] *= inv;
    }
  });
}

void softmax_backward_rows(const float* g, const float* y, float* gx,
                           int64_t rows, int64_t cols) {
  parallel_for(rows, cols * 4, [&](int64_t lo, int64_t hi) {
    for (int64_t r = lo; r < hi; ++r) {
      const float* grow = g + r * cols;
      const float* orow = y + r * cols;
      // Lane-strided Σ g·y (the serial fma chain bottlenecked on add
      // latency and kept the whole kernel scalar), then an elementwise
      // pass the compiler vectorizes.  Association fixed at compile time
      // — rows stay bitwise identical across thread counts.
      const float dot = lane_dot(grow, orow, cols);
      float* __restrict gxr = gx + r * cols;
      for (int64_t c = 0; c < cols; ++c) gxr[c] = orow[c] * (grow[c] - dot);
    }
  });
}

void layer_norm_rows(const float* x, const float* gamma, const float* beta,
                     float* y, float* xhat, float* invstd, int64_t rows,
                     int64_t cols, float eps) {
  const double inv_n = 1.0 / static_cast<double>(cols);
  parallel_for(rows, cols * 4, [&](int64_t lo, int64_t hi) {
    // No-stash callers (inference / checkpoint initial passes) still run
    // the exact inner loop the training forward runs — a second,
    // store-free loop could be compiled with different FMA contraction
    // and break the bitwise checkpoint-recompute contract.  Their stash
    // stores land in one reused L1-resident workspace row instead of a
    // streamed numel-sized buffer.
    std::vector<float>& stash_row = workspace().ln_stash_row;
    if (xhat == nullptr) stash_row.resize(static_cast<size_t>(cols));
    for (int64_t r = lo; r < hi; ++r) {
      const float* row = x + r * cols;
      // Single pass: sum and sum-of-squares in double, then
      // var = E[x^2] - E[x]^2 (clamped against cancellation).
      double s = 0.0, sq = 0.0;
      for (int64_t c = 0; c < cols; ++c) {
        const double v = row[c];
        s += v;
        sq += v * v;
      }
      const double mu = s * inv_n;
      const double var = std::max(0.0, sq * inv_n - mu * mu);
      const float is = 1.0f / std::sqrt(static_cast<float>(var) + eps);
      if (invstd != nullptr) invstd[r] = is;
      const float muf = static_cast<float>(mu);
      float* orow = y + r * cols;
      float* xh = xhat != nullptr ? xhat + r * cols : stash_row.data();
      for (int64_t c = 0; c < cols; ++c) {
        const float h = (row[c] - muf) * is;
        xh[c] = h;
        orow[c] = gamma[c] * h + beta[c];
      }
    }
  });
}

void layer_norm_backward_rows(const float* g, const float* gamma,
                              const float* xhat, const float* invstd,
                              float* gx, float* ggamma, float* gbeta,
                              int64_t rows, int64_t cols) {
  // gx is row-parallel; the gamma/beta column reductions must stay in a
  // fixed row order for determinism, so they run serially afterwards.
  // The two per-row means accumulate in double over fixed lane strides
  // (8 doubles = one AVX-512 vector): the serial double chains dominated
  // the row cost, and the association is compile-time fixed so rows stay
  // bitwise identical everywhere.
  constexpr int kDLanes = 8;
  parallel_for(rows, cols * 6, [&](int64_t lo, int64_t hi) {
    for (int64_t r = lo; r < hi; ++r) {
      const float* __restrict grow = g + r * cols;
      const float* __restrict xh = xhat + r * cols;
      const float is = invstd[r];
      double p0[kDLanes] = {}, p1[kDLanes] = {};
      int64_t c = 0;
      for (; c + kDLanes <= cols; c += kDLanes) {
        for (int u = 0; u < kDLanes; ++u) {
          const float dxh = grow[c + u] * gamma[c + u];
          p0[u] += dxh;
          p1[u] += static_cast<double>(dxh) * xh[c + u];
        }
      }
      double mean_dxhat = 0.0, mean_dxhat_xhat = 0.0;
      for (int u = 0; u < kDLanes; ++u) {
        mean_dxhat += p0[u];
        mean_dxhat_xhat += p1[u];
      }
      for (; c < cols; ++c) {
        const float dxh = grow[c] * gamma[c];
        mean_dxhat += dxh;
        mean_dxhat_xhat += static_cast<double>(dxh) * xh[c];
      }
      mean_dxhat /= static_cast<double>(cols);
      mean_dxhat_xhat /= static_cast<double>(cols);
      const float m0 = static_cast<float>(mean_dxhat);
      const float m1 = static_cast<float>(mean_dxhat_xhat);
      float* __restrict gxr = gx + r * cols;
      for (int64_t j = 0; j < cols; ++j) {
        const float dxh = grow[j] * gamma[j];
        gxr[j] = is * (dxh - m0 - xh[j] * m1);
      }
    }
  });
  for (int64_t r = 0; r < rows; ++r) {
    const float* grow = g + r * cols;
    const float* xh = xhat + r * cols;
    for (int64_t c = 0; c < cols; ++c) {
      ggamma[c] += grow[c] * xh[c];
      gbeta[c] += grow[c];
    }
  }
}

// ---------------------------------------------------------------------------
// Data movement
// ---------------------------------------------------------------------------

void transpose_last2(const float* src, float* dst, int64_t nbatch,
                     int64_t rows, int64_t cols) {
  constexpr int64_t kTile = 32;
  const int64_t rtiles = ceil_div(rows, kTile);
  parallel_for(nbatch * rtiles, kTile * cols, [&](int64_t lo, int64_t hi) {
    for (int64_t t = lo; t < hi; ++t) {
      const int64_t b = t / rtiles;
      const int64_t i0 = (t % rtiles) * kTile;
      const int64_t i1 = std::min(rows, i0 + kTile);
      const float* s = src + b * rows * cols;
      float* d = dst + b * rows * cols;
      for (int64_t j0 = 0; j0 < cols; j0 += kTile) {
        const int64_t j1 = std::min(cols, j0 + kTile);
        for (int64_t i = i0; i < i1; ++i)
          for (int64_t j = j0; j < j1; ++j) d[j * rows + i] = s[i * cols + j];
      }
    }
  });
}

namespace {

/// Incremental odometer over `shape` tracking a strided offset; O(1)
/// amortized per step with no per-element stride dot product.
struct StridedCursor {
  const Shape& shape;
  const Shape& strides;
  std::vector<int64_t> coords;
  int64_t offset = 0;

  StridedCursor(const Shape& s, const Shape& st, int64_t linear)
      : shape(s), strides(st), coords(s.size(), 0) {
    for (size_t i = s.size(); i-- > 0;) {
      if (linear == 0) break;
      coords[i] = linear % s[i];
      linear /= s[i];
      offset += coords[i] * st[i];
    }
  }

  /// Advance by one position over the axes [0, naxes) — callers that
  /// handle the last axis with an inner loop pass naxes = ndim-1.
  void next(size_t naxes) {
    for (size_t i = naxes; i-- > 0;) {
      offset += strides[i];
      if (++coords[i] < shape[i]) return;
      offset -= strides[i] * shape[i];
      coords[i] = 0;
    }
  }
};

}  // namespace

void permute_gather(const float* src, float* dst, const Shape& out_shape,
                    const Shape& gather_strides) {
  const int64_t total = tensor::numel(out_shape);
  if (total == 0) return;
  if (out_shape.empty()) {
    dst[0] = src[0];
    return;
  }
  const size_t nd = out_shape.size();
  const int64_t inner = out_shape[nd - 1];
  const int64_t s_last = gather_strides[nd - 1];
  const int64_t outer = total / std::max<int64_t>(1, inner);
  parallel_for(outer, inner, [&](int64_t lo, int64_t hi) {
    StridedCursor cur(out_shape, gather_strides, lo * inner);
    float* out = dst + lo * inner;
    for (int64_t o = lo; o < hi; ++o) {
      const float* base = src + cur.offset;
      if (s_last == 1) {
        std::memcpy(out, base, static_cast<size_t>(inner) * sizeof(float));
      } else {
        for (int64_t c = 0; c < inner; ++c) out[c] = base[c * s_last];
      }
      out += inner;
      cur.next(nd - 1);
    }
  });
}

// ---------------------------------------------------------------------------
// Elementwise
// ---------------------------------------------------------------------------

namespace {

template <typename Fn>
void binary_same_apply(const float* a, const float* b, float* out, int64_t n,
                       Fn fn) {
  parallel_for(n, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) out[i] = fn(a[i], b[i]);
  });
}

template <typename Fn>
void binary_broadcast_apply(const float* a, const float* b, float* out,
                            const Shape& out_shape, const Shape& sa,
                            const Shape& sb, Fn fn) {
  const int64_t total = tensor::numel(out_shape);
  if (total == 0) return;
  const size_t nd = out_shape.size();
  const int64_t inner = nd ? out_shape[nd - 1] : 1;
  const int64_t sa_last = nd ? sa[nd - 1] : 0;
  const int64_t sb_last = nd ? sb[nd - 1] : 0;
  const int64_t outer = total / std::max<int64_t>(1, inner);
  parallel_for(outer, inner, [&](int64_t lo, int64_t hi) {
    StridedCursor ca(out_shape, sa, lo * inner);
    StridedCursor cb(out_shape, sb, lo * inner);
    float* o = out + lo * inner;
    for (int64_t r = lo; r < hi; ++r) {
      const float* pa = a + ca.offset;
      const float* pb = b + cb.offset;
      if (sa_last == 1 && sb_last == 1) {
        for (int64_t c = 0; c < inner; ++c) o[c] = fn(pa[c], pb[c]);
      } else if (sa_last == 1 && sb_last == 0) {
        const float bv = pb[0];
        for (int64_t c = 0; c < inner; ++c) o[c] = fn(pa[c], bv);
      } else if (sa_last == 0 && sb_last == 1) {
        const float av = pa[0];
        for (int64_t c = 0; c < inner; ++c) o[c] = fn(av, pb[c]);
      } else {
        for (int64_t c = 0; c < inner; ++c)
          o[c] = fn(pa[c * sa_last], pb[c * sb_last]);
      }
      o += inner;
      if (nd) {
        ca.next(nd - 1);
        cb.next(nd - 1);
      }
    }
  });
}

}  // namespace

void binary_same(BinOp op, const float* a, const float* b, float* out,
                 int64_t n) {
  switch (op) {
    case BinOp::kAdd:
      binary_same_apply(a, b, out, n, [](float x, float y) { return x + y; });
      break;
    case BinOp::kSub:
      binary_same_apply(a, b, out, n, [](float x, float y) { return x - y; });
      break;
    case BinOp::kMul:
      binary_same_apply(a, b, out, n, [](float x, float y) { return x * y; });
      break;
    case BinOp::kDiv:
      binary_same_apply(a, b, out, n, [](float x, float y) { return x / y; });
      break;
  }
}

void binary_broadcast(BinOp op, const float* a, const float* b, float* out,
                      const Shape& out_shape, const Shape& sa,
                      const Shape& sb) {
  switch (op) {
    case BinOp::kAdd:
      binary_broadcast_apply(a, b, out, out_shape, sa, sb,
                             [](float x, float y) { return x + y; });
      break;
    case BinOp::kSub:
      binary_broadcast_apply(a, b, out, out_shape, sa, sb,
                             [](float x, float y) { return x - y; });
      break;
    case BinOp::kMul:
      binary_broadcast_apply(a, b, out, out_shape, sa, sb,
                             [](float x, float y) { return x * y; });
      break;
    case BinOp::kDiv:
      binary_broadcast_apply(a, b, out, out_shape, sa, sb,
                             [](float x, float y) { return x / y; });
      break;
  }
}

void map(const float* x, float* out, int64_t n, int64_t cost,
         const std::function<void(const float*, float*, int64_t)>& fn) {
  parallel_for(n, cost, [&](int64_t lo, int64_t hi) {
    fn(x + lo, out + lo, hi - lo);
  });
}

}  // namespace coastal::tensor::kernels
