#include "tensor/kernels.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <thread>

#include "parallel/thread_pool.hpp"

namespace coastal::tensor::kernels {

namespace {

int64_t ceil_div(int64_t a, int64_t b) { return (a + b - 1) / b; }

}  // namespace

KernelConfig& config() {
  static KernelConfig cfg = [] {
    KernelConfig c;
    c.num_threads = par::env_thread_override();
    return c;
  }();
  return cfg;
}

int resolved_threads() {
  const int n = config().num_threads;
  if (n > 0) return n;
  return std::max(1u, std::thread::hardware_concurrency());
}

void parallel_for(int64_t total, int64_t cost_per_item,
                  const std::function<void(int64_t, int64_t)>& fn) {
  if (total <= 0) return;
  const KernelConfig& cfg = config();
  const int threads = resolved_threads();
  // Serial when: single thread, nested inside a pool worker (waiting there
  // would starve the pool), or not enough work to amortize dispatch.
  if (threads <= 1 || par::ThreadPool::in_worker()) {
    fn(0, total);
    return;
  }
  const int64_t grain = std::max<int64_t>(1, cfg.parallel_grain);
  const int64_t by_grain =
      std::max<int64_t>(1, total * std::max<int64_t>(1, cost_per_item) / grain);
  const int64_t nchunks = std::min<int64_t>(
      {total, static_cast<int64_t>(cfg.oversubscribe) * threads, by_grain});
  if (nchunks <= 1) {
    fn(0, total);
    return;
  }
  par::ThreadPool::global().parallel_for(
      0, static_cast<size_t>(total),
      [&fn](size_t lo, size_t hi) {
        fn(static_cast<int64_t>(lo), static_cast<int64_t>(hi));
      },
      static_cast<size_t>(nchunks));
}

// ---------------------------------------------------------------------------
// GEMM
// ---------------------------------------------------------------------------

namespace {

// Register micro-tile.  Sized so the MR×NR accumulator block fits the
// architecture's vector register file (GCC/Clang fully unroll the fixed
// loops below and keep `acc` in registers).
#if defined(__AVX512F__)
constexpr int64_t kMR = 8, kNR = 32;
#elif defined(__AVX2__) || defined(__AVX__)
constexpr int64_t kMR = 6, kNR = 16;
#else
constexpr int64_t kMR = 4, kNR = 8;
#endif

/// Naive ikj kernel for problems too small to pack.  Unlike the historic
/// version this has no `a == 0.0f` skip: NaN/Inf in B always propagates.
void gemm_naive(const float* A, const float* B, float* C, int64_t m,
                int64_t k, int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    float* crow = C + i * n;
    const float* arow = A + i * k;
    for (int64_t kk = 0; kk < k; ++kk) {
      const float a = arow[kk];
      const float* brow = B + kk * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += a * brow[j];
    }
  }
}

/// Pack an mb×kc block of A (leading dimension lda) into MR-row panels:
/// layout [panel][p][MR], zero-padded so the micro-kernel never branches.
void pack_a(const float* A, int64_t lda, int64_t mb, int64_t kc, float* out) {
  for (int64_t ir = 0; ir < mb; ir += kMR) {
    const int64_t m_eff = std::min(kMR, mb - ir);
    for (int64_t p = 0; p < kc; ++p) {
      int64_t i = 0;
      for (; i < m_eff; ++i) *out++ = A[(ir + i) * lda + p];
      for (; i < kMR; ++i) *out++ = 0.0f;
    }
  }
}

/// Pack a kc×nb block of B (leading dimension ldb) into NR-column panels:
/// layout [panel][p][NR], zero-padded.
void pack_b(const float* B, int64_t ldb, int64_t kc, int64_t nb, float* out) {
  for (int64_t jr = 0; jr < nb; jr += kNR) {
    const int64_t n_eff = std::min(kNR, nb - jr);
    for (int64_t p = 0; p < kc; ++p) {
      const float* row = B + p * ldb + jr;
      int64_t j = 0;
      for (; j < n_eff; ++j) *out++ = row[j];
      for (; j < kNR; ++j) *out++ = 0.0f;
    }
  }
}

/// C[0:mr, 0:nr] += Apanel · Bpanel over kc.  The accumulation order for a
/// given output element is p ascending — identical regardless of how the
/// surrounding macro loops are scheduled across threads.
void micro_kernel(int64_t kc, const float* __restrict Ap,
                  const float* __restrict Bp, float* __restrict C,
                  int64_t ldc, int64_t mr, int64_t nr) {
  float acc[kMR][kNR] = {};
  for (int64_t p = 0; p < kc; ++p, Ap += kMR, Bp += kNR) {
    for (int64_t i = 0; i < kMR; ++i) {
      const float a = Ap[i];
      for (int64_t j = 0; j < kNR; ++j) acc[i][j] += a * Bp[j];
    }
  }
  if (mr == kMR && nr == kNR) {
    for (int64_t i = 0; i < kMR; ++i) {
      float* crow = C + i * ldc;
      for (int64_t j = 0; j < kNR; ++j) crow[j] += acc[i][j];
    }
  } else {
    for (int64_t i = 0; i < mr; ++i) {
      float* crow = C + i * ldc;
      for (int64_t j = 0; j < nr; ++j) crow[j] += acc[i][j];
    }
  }
}

/// Per-thread packing scratch; pool workers are long-lived so these
/// allocations amortize to zero.
thread_local std::vector<float> t_apack;
thread_local std::vector<float> t_bpack;

/// Blocked GEMM over one row block: C[0:mb, :] += A[0:mb, :] · B.
/// Loop order pc → jc keeps accumulation over k strictly ascending per
/// output element (kc panels are added in order), so splitting m across
/// tasks never perturbs results.
void gemm_rowblock(const float* A, const float* B, float* C, int64_t mb,
                   int64_t k, int64_t n, const KernelConfig& cfg) {
  const int64_t kc_max = std::max<int64_t>(kMR, cfg.gemm_kc);
  const int64_t nc_max =
      std::max<int64_t>(kNR, (cfg.gemm_nc / kNR) * kNR);
  t_apack.resize(static_cast<size_t>(ceil_div(mb, kMR) * kMR * kc_max));
  t_bpack.resize(static_cast<size_t>(ceil_div(nc_max, kNR) * kNR * kc_max));
  for (int64_t pc = 0; pc < k; pc += kc_max) {
    const int64_t kc = std::min(kc_max, k - pc);
    pack_a(A + pc, k, mb, kc, t_apack.data());
    for (int64_t jc = 0; jc < n; jc += nc_max) {
      const int64_t nc = std::min(nc_max, n - jc);
      pack_b(B + pc * n + jc, n, kc, nc, t_bpack.data());
      for (int64_t jr = 0; jr < nc; jr += kNR) {
        const float* bp = t_bpack.data() + (jr / kNR) * kc * kNR;
        for (int64_t ir = 0; ir < mb; ir += kMR) {
          const float* ap = t_apack.data() + (ir / kMR) * kc * kMR;
          micro_kernel(kc, ap, bp, C + ir * n + jc + jr, n,
                       std::min(kMR, mb - ir), std::min(kNR, nc - jr));
        }
      }
    }
  }
}

}  // namespace

void gemm(const float* A, const float* B, float* C, int64_t m, int64_t k,
          int64_t n) {
  gemm_batched(A, B, C, m, k, n, 1, {0}, {0});
}

void gemm_batched(const float* A, const float* B, float* C, int64_t m,
                  int64_t k, int64_t n, int64_t nbatch,
                  const std::vector<int64_t>& a_off,
                  const std::vector<int64_t>& b_off) {
  if (m <= 0 || n <= 0 || nbatch <= 0) return;
  const KernelConfig& cfg = config();
  // Path choice depends only on problem size and config — never on thread
  // count — so serial and parallel runs agree bitwise.
  if (k <= 0) return;  // C += A·B with empty inner dim is a no-op
  if (m * k * n <= cfg.gemm_small_madds) {
    parallel_for(nbatch, m * k * n, [&](int64_t lo, int64_t hi) {
      for (int64_t b = lo; b < hi; ++b) {
        gemm_naive(A + a_off[static_cast<size_t>(b)],
                   B + b_off[static_cast<size_t>(b)], C + b * m * n, m, k, n);
      }
    });
    return;
  }
  const int64_t mc = std::max<int64_t>(kMR, cfg.gemm_mc);
  const int64_t nblocks = ceil_div(m, mc);
  parallel_for(nbatch * nblocks, mc * k * n, [&](int64_t lo, int64_t hi) {
    for (int64_t t = lo; t < hi; ++t) {
      const int64_t b = t / nblocks;
      const int64_t i0 = (t % nblocks) * mc;
      const int64_t mb = std::min(mc, m - i0);
      gemm_rowblock(A + a_off[static_cast<size_t>(b)] + i0 * k,
                    B + b_off[static_cast<size_t>(b)], C + b * m * n + i0 * n,
                    mb, k, n, cfg);
    }
  });
}

// ---------------------------------------------------------------------------
// Softmax / layer norm
// ---------------------------------------------------------------------------

void softmax_rows(const float* x, float* y, int64_t rows, int64_t cols) {
  parallel_for(rows, cols * 8, [&](int64_t lo, int64_t hi) {
    for (int64_t r = lo; r < hi; ++r) {
      const float* row = x + r * cols;
      float* orow = y + r * cols;
      float mx = row[0];
      for (int64_t c = 1; c < cols; ++c) mx = std::max(mx, row[c]);
      float denom = 0.0f;
      for (int64_t c = 0; c < cols; ++c) {
        orow[c] = std::exp(row[c] - mx);
        denom += orow[c];
      }
      const float inv = 1.0f / denom;
      for (int64_t c = 0; c < cols; ++c) orow[c] *= inv;
    }
  });
}

void softmax_backward_rows(const float* g, const float* y, float* gx,
                           int64_t rows, int64_t cols) {
  parallel_for(rows, cols * 4, [&](int64_t lo, int64_t hi) {
    for (int64_t r = lo; r < hi; ++r) {
      const float* grow = g + r * cols;
      const float* orow = y + r * cols;
      float dot = 0.0f;
      for (int64_t c = 0; c < cols; ++c) dot += grow[c] * orow[c];
      float* gxr = gx + r * cols;
      for (int64_t c = 0; c < cols; ++c) gxr[c] = orow[c] * (grow[c] - dot);
    }
  });
}

void layer_norm_rows(const float* x, const float* gamma, const float* beta,
                     float* y, float* xhat, float* invstd, int64_t rows,
                     int64_t cols, float eps) {
  const double inv_n = 1.0 / static_cast<double>(cols);
  parallel_for(rows, cols * 4, [&](int64_t lo, int64_t hi) {
    for (int64_t r = lo; r < hi; ++r) {
      const float* row = x + r * cols;
      // Single pass: sum and sum-of-squares in double, then
      // var = E[x^2] - E[x]^2 (clamped against cancellation).
      double s = 0.0, sq = 0.0;
      for (int64_t c = 0; c < cols; ++c) {
        const double v = row[c];
        s += v;
        sq += v * v;
      }
      const double mu = s * inv_n;
      const double var = std::max(0.0, sq * inv_n - mu * mu);
      const float is = 1.0f / std::sqrt(static_cast<float>(var) + eps);
      invstd[r] = is;
      const float muf = static_cast<float>(mu);
      float* xh = xhat + r * cols;
      float* orow = y + r * cols;
      for (int64_t c = 0; c < cols; ++c) {
        const float h = (row[c] - muf) * is;
        xh[c] = h;
        orow[c] = gamma[c] * h + beta[c];
      }
    }
  });
}

void layer_norm_backward_rows(const float* g, const float* gamma,
                              const float* xhat, const float* invstd,
                              float* gx, float* ggamma, float* gbeta,
                              int64_t rows, int64_t cols) {
  // gx is row-parallel; the gamma/beta column reductions must stay in a
  // fixed row order for determinism, so they run serially afterwards.
  parallel_for(rows, cols * 6, [&](int64_t lo, int64_t hi) {
    for (int64_t r = lo; r < hi; ++r) {
      const float* grow = g + r * cols;
      const float* xh = xhat + r * cols;
      const float is = invstd[r];
      double mean_dxhat = 0.0, mean_dxhat_xhat = 0.0;
      for (int64_t c = 0; c < cols; ++c) {
        const float dxh = grow[c] * gamma[c];
        mean_dxhat += dxh;
        mean_dxhat_xhat += static_cast<double>(dxh) * xh[c];
      }
      mean_dxhat /= static_cast<double>(cols);
      mean_dxhat_xhat /= static_cast<double>(cols);
      float* gxr = gx + r * cols;
      for (int64_t c = 0; c < cols; ++c) {
        const float dxh = grow[c] * gamma[c];
        gxr[c] = is * (dxh - static_cast<float>(mean_dxhat) -
                       xh[c] * static_cast<float>(mean_dxhat_xhat));
      }
    }
  });
  for (int64_t r = 0; r < rows; ++r) {
    const float* grow = g + r * cols;
    const float* xh = xhat + r * cols;
    for (int64_t c = 0; c < cols; ++c) {
      ggamma[c] += grow[c] * xh[c];
      gbeta[c] += grow[c];
    }
  }
}

// ---------------------------------------------------------------------------
// Data movement
// ---------------------------------------------------------------------------

void transpose_last2(const float* src, float* dst, int64_t nbatch,
                     int64_t rows, int64_t cols) {
  constexpr int64_t kTile = 32;
  const int64_t rtiles = ceil_div(rows, kTile);
  parallel_for(nbatch * rtiles, kTile * cols, [&](int64_t lo, int64_t hi) {
    for (int64_t t = lo; t < hi; ++t) {
      const int64_t b = t / rtiles;
      const int64_t i0 = (t % rtiles) * kTile;
      const int64_t i1 = std::min(rows, i0 + kTile);
      const float* s = src + b * rows * cols;
      float* d = dst + b * rows * cols;
      for (int64_t j0 = 0; j0 < cols; j0 += kTile) {
        const int64_t j1 = std::min(cols, j0 + kTile);
        for (int64_t i = i0; i < i1; ++i)
          for (int64_t j = j0; j < j1; ++j) d[j * rows + i] = s[i * cols + j];
      }
    }
  });
}

namespace {

/// Incremental odometer over `shape` tracking a strided offset; O(1)
/// amortized per step with no per-element stride dot product.
struct StridedCursor {
  const Shape& shape;
  const Shape& strides;
  std::vector<int64_t> coords;
  int64_t offset = 0;

  StridedCursor(const Shape& s, const Shape& st, int64_t linear)
      : shape(s), strides(st), coords(s.size(), 0) {
    for (size_t i = s.size(); i-- > 0;) {
      if (linear == 0) break;
      coords[i] = linear % s[i];
      linear /= s[i];
      offset += coords[i] * st[i];
    }
  }

  /// Advance by one position over the axes [0, naxes) — callers that
  /// handle the last axis with an inner loop pass naxes = ndim-1.
  void next(size_t naxes) {
    for (size_t i = naxes; i-- > 0;) {
      offset += strides[i];
      if (++coords[i] < shape[i]) return;
      offset -= strides[i] * shape[i];
      coords[i] = 0;
    }
  }
};

}  // namespace

void permute_gather(const float* src, float* dst, const Shape& out_shape,
                    const Shape& gather_strides) {
  const int64_t total = tensor::numel(out_shape);
  if (total == 0) return;
  if (out_shape.empty()) {
    dst[0] = src[0];
    return;
  }
  const size_t nd = out_shape.size();
  const int64_t inner = out_shape[nd - 1];
  const int64_t s_last = gather_strides[nd - 1];
  const int64_t outer = total / std::max<int64_t>(1, inner);
  parallel_for(outer, inner, [&](int64_t lo, int64_t hi) {
    StridedCursor cur(out_shape, gather_strides, lo * inner);
    float* out = dst + lo * inner;
    for (int64_t o = lo; o < hi; ++o) {
      const float* base = src + cur.offset;
      if (s_last == 1) {
        std::memcpy(out, base, static_cast<size_t>(inner) * sizeof(float));
      } else {
        for (int64_t c = 0; c < inner; ++c) out[c] = base[c * s_last];
      }
      out += inner;
      cur.next(nd - 1);
    }
  });
}

// ---------------------------------------------------------------------------
// Elementwise
// ---------------------------------------------------------------------------

namespace {

template <typename Fn>
void binary_same_apply(const float* a, const float* b, float* out, int64_t n,
                       Fn fn) {
  parallel_for(n, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) out[i] = fn(a[i], b[i]);
  });
}

template <typename Fn>
void binary_broadcast_apply(const float* a, const float* b, float* out,
                            const Shape& out_shape, const Shape& sa,
                            const Shape& sb, Fn fn) {
  const int64_t total = tensor::numel(out_shape);
  if (total == 0) return;
  const size_t nd = out_shape.size();
  const int64_t inner = nd ? out_shape[nd - 1] : 1;
  const int64_t sa_last = nd ? sa[nd - 1] : 0;
  const int64_t sb_last = nd ? sb[nd - 1] : 0;
  const int64_t outer = total / std::max<int64_t>(1, inner);
  parallel_for(outer, inner, [&](int64_t lo, int64_t hi) {
    StridedCursor ca(out_shape, sa, lo * inner);
    StridedCursor cb(out_shape, sb, lo * inner);
    float* o = out + lo * inner;
    for (int64_t r = lo; r < hi; ++r) {
      const float* pa = a + ca.offset;
      const float* pb = b + cb.offset;
      if (sa_last == 1 && sb_last == 1) {
        for (int64_t c = 0; c < inner; ++c) o[c] = fn(pa[c], pb[c]);
      } else if (sa_last == 1 && sb_last == 0) {
        const float bv = pb[0];
        for (int64_t c = 0; c < inner; ++c) o[c] = fn(pa[c], bv);
      } else if (sa_last == 0 && sb_last == 1) {
        const float av = pa[0];
        for (int64_t c = 0; c < inner; ++c) o[c] = fn(av, pb[c]);
      } else {
        for (int64_t c = 0; c < inner; ++c)
          o[c] = fn(pa[c * sa_last], pb[c * sb_last]);
      }
      o += inner;
      if (nd) {
        ca.next(nd - 1);
        cb.next(nd - 1);
      }
    }
  });
}

}  // namespace

void binary_same(BinOp op, const float* a, const float* b, float* out,
                 int64_t n) {
  switch (op) {
    case BinOp::kAdd:
      binary_same_apply(a, b, out, n, [](float x, float y) { return x + y; });
      break;
    case BinOp::kSub:
      binary_same_apply(a, b, out, n, [](float x, float y) { return x - y; });
      break;
    case BinOp::kMul:
      binary_same_apply(a, b, out, n, [](float x, float y) { return x * y; });
      break;
    case BinOp::kDiv:
      binary_same_apply(a, b, out, n, [](float x, float y) { return x / y; });
      break;
  }
}

void binary_broadcast(BinOp op, const float* a, const float* b, float* out,
                      const Shape& out_shape, const Shape& sa,
                      const Shape& sb) {
  switch (op) {
    case BinOp::kAdd:
      binary_broadcast_apply(a, b, out, out_shape, sa, sb,
                             [](float x, float y) { return x + y; });
      break;
    case BinOp::kSub:
      binary_broadcast_apply(a, b, out, out_shape, sa, sb,
                             [](float x, float y) { return x - y; });
      break;
    case BinOp::kMul:
      binary_broadcast_apply(a, b, out, out_shape, sa, sb,
                             [](float x, float y) { return x * y; });
      break;
    case BinOp::kDiv:
      binary_broadcast_apply(a, b, out, out_shape, sa, sb,
                             [](float x, float y) { return x / y; });
      break;
  }
}

void map(const float* x, float* out, int64_t n, int64_t cost,
         const std::function<void(const float*, float*, int64_t)>& fn) {
  parallel_for(n, cost, [&](int64_t lo, int64_t hi) {
    fn(x + lo, out + lo, hi - lo);
  });
}

}  // namespace coastal::tensor::kernels
