#pragma once

/// \file storage.hpp
/// Pooled tensor storage, per-thread kernel workspaces, and episode arenas.
///
/// PR 1–3 made the kernels fast enough that the benches became
/// allocator-bound: every TensorImpl owned a fresh std::vector<float>, so
/// a forecast step performed thousands of mallocs (bimodal at the sizes
/// where glibc flips between brk and mmap).  This layer takes the
/// allocator out of every hot path, Marian-style:
///
///  * **Storage** — the single owner of every tensor's float buffer.
///    Allocation goes to (in priority order) the active thread-local
///    arena, the global size-bucketed free-list pool, or the heap.
///    `COASTAL_DISABLE_POOL=1` routes everything straight to the heap
///    (one real allocation per tensor — the debugging escape hatch that
///    keeps ASan/valgrind byte-precise).
///  * **Workspace** — named, grow-only per-thread scratch reused across
///    kernel calls (GEMM packing panels, fused-attention blocks and
///    statistics, batched-offset tables), so steady-state kernels never
///    allocate inside parallel_for tasks.
///  * **ArenaScope** — RAII bump allocator for activation tensors.  While
///    a scope is active on a thread, every Storage created on that thread
///    is carved out of large pooled chunks and the whole episode's
///    activations are released in bulk at scope exit.  `core::rollout`
///    and `core::workflow` wrap each no-grad forecast episode in one, so
///    steady-state inference performs **zero** per-op heap allocations
///    (pinned by tests via `alloc_stats().total_allocs`).
///
/// Tensor-lifetime rules:
///  * A tensor allocated inside an ArenaScope must not outlive the scope;
///    the scope destructor raises a loud CheckError if any arena-backed
///    storage is still alive (the escaped tensor's memory stays valid
///    until it dies — the error is diagnosable, not a use-after-free).
///  * `Tensor::from_vector` / `Storage::adopt` wrap the caller's
///    std::vector buffer and are **never** arena-backed — long-lived
///    caches (e.g. the Swin shifted-window mask cache) built inside an
///    episode are therefore always safe to retain.
///  * Accounting is liveness-based: `current_bytes`/`peak_bytes` track
///    requested bytes of *live* storages exactly as before the pool
///    (Table II benches read these); pool free lists and arena chunk
///    slack are backing capacity and are not charged.  `total_allocs`
///    counts only real heap acquisitions — pool hits and arena bumps
///    leave it untouched, which is what the zero-alloc tests pin.

#include <cstdint>
#include <memory>
#include <vector>

namespace coastal::tensor {

/// Allocation accounting (Table II / memory benches read these).
/// current/peak/total keep their historic meaning; the pool counters were
/// added with the storage layer.
struct AllocStats {
  uint64_t current_bytes;  ///< requested bytes of live storages
  uint64_t peak_bytes;     ///< high-water mark of current_bytes
  uint64_t total_allocs;   ///< real heap acquisitions (pool miss/heap/adopt)
  uint64_t pool_hits;      ///< storages served from a pool free list
  uint64_t pool_misses;    ///< pool requests that had to hit the heap
  uint64_t arena_allocs;   ///< storages bump-allocated from an ArenaScope
};
AllocStats alloc_stats();
void reset_peak_bytes();

/// Pool control (tests and debugging; normal code never calls these).
/// The pool starts enabled unless the COASTAL_DISABLE_POOL environment
/// variable is set to anything but "" or "0".
bool pool_enabled();
void set_pool_enabled(bool enabled);
/// Frees every cached free-list block back to the heap.
void pool_trim();
/// Bytes currently parked in pool free lists (excludes live storages).
uint64_t pool_cached_bytes();

namespace detail {
struct ArenaState;
}

/// Owner of one tensor's float buffer.  Move-only; the backing (arena,
/// pool bucket, raw heap, or an adopted std::vector) is an internal
/// detail — consumers only see data()/size().
class Storage {
 public:
  Storage() = default;
  ~Storage() { release(); }
  Storage(Storage&& o) noexcept { move_from(o); }
  Storage& operator=(Storage&& o) noexcept {
    if (this != &o) {
      release();
      move_from(o);
    }
    return *this;
  }
  Storage(const Storage&) = delete;
  Storage& operator=(const Storage&) = delete;

  /// Uninitialized buffer of `n` floats: arena if one is active on this
  /// thread, else pooled, else heap.  Contents are unspecified (possibly
  /// recycled) — callers must fully initialize every element they read.
  static Storage uninit(int64_t n);
  static Storage zeros(int64_t n);
  static Storage full(int64_t n, float value);
  /// Pooled/arena copy of `src[0, n)`.
  static Storage copy_of(const float* src, int64_t n);
  /// Wraps an existing vector (no copy).  Heap-backed by definition, so
  /// the result may safely outlive any ArenaScope.
  static Storage adopt(std::vector<float> v);

  float* data() { return ptr_; }
  const float* data() const { return ptr_; }
  int64_t size() const { return size_; }
  float& operator[](int64_t i) { return ptr_[i]; }
  float operator[](int64_t i) const { return ptr_[i]; }
  float* begin() { return ptr_; }
  float* end() { return ptr_ + size_; }
  const float* begin() const { return ptr_; }
  const float* end() const { return ptr_ + size_; }

 private:
  enum class Backing : uint8_t { kNull, kPool, kHeap, kArena, kVector };

  void release();
  void move_from(Storage& o) noexcept;

  float* ptr_ = nullptr;
  int64_t size_ = 0;
  Backing backing_ = Backing::kNull;
  int32_t bucket_ = -1;                        ///< pool bucket (kPool)
  std::vector<float> vec_;                     ///< kVector backing
  std::shared_ptr<detail::ArenaState> arena_;  ///< kArena backing
};

/// RAII bump arena for activation tensors (thread-local; nests).  While
/// active, every Storage created on this thread is carved from pooled
/// chunks (`chunk_bytes` each, default 8 MB or COASTAL_ARENA_CHUNK_MB)
/// and freed in bulk when the scope exits — the pattern core::rollout /
/// core::workflow use per forecast episode.  The tradeoff is explicit:
/// arena memory is not reclaimed until scope exit, so an arena's
/// footprint is the episode's *total* allocation, not its liveness peak.
/// Inert when the pool is disabled (COASTAL_DISABLE_POOL debugging mode).
///
/// A storage still alive when the scope exits is a lifetime bug: the
/// destructor throws util::CheckError (or, mid-unwind, prints to stderr)
/// and keeps the chunks alive until the escapee dies so the error is
/// diagnosable rather than a use-after-free.
class ArenaScope {
 public:
  /// `chunk_bytes` == 0 picks the default chunk size.
  explicit ArenaScope(int64_t chunk_bytes = 0);
  ~ArenaScope() noexcept(false);
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

  /// True when any arena is active on the calling thread.
  static bool active();
  /// Total bytes bump-served by this scope so far.
  int64_t allocated_bytes() const;

 private:
  std::shared_ptr<detail::ArenaState> state_;
};

/// Named per-thread scratch reused across kernel calls.  Buffers only
/// ever grow (std::vector resize keeps capacity), so steady-state kernel
/// execution performs no allocation at all.  One struct instead of
/// scattered function-local thread_locals so the retained footprint is
/// inspectable (bytes()) and releasable (release()) as a unit.
struct Workspace {
  // GEMM packing panels (gemm_rowblock / gemm_batched).
  std::vector<float> gemm_apack;
  std::vector<float> gemm_bpack;
  // Fused attention forward (attention_task).
  std::vector<float> attn_kt;
  std::vector<float> attn_scores;
  std::vector<float> attn_stat;
  // Fused attention backward (attention_bwd_task).
  std::vector<float> attn_bwd_kt;
  std::vector<float> attn_bwd_vt;
  std::vector<float> attn_bwd_p;
  std::vector<float> attn_bwd_dp;
  std::vector<float> attn_bwd_delta;
  // Layer-norm no-stash store target: one cols-sized row, overwritten per
  // row, so the stash-free forward runs the *same* inner loop as the
  // training forward (bitwise checkpoint-recompute consistency) while its
  // stash stores stay L1-resident instead of streaming a numel-sized
  // buffer.
  std::vector<float> ln_stash_row;
  // Batched-op offset tables (matmul broadcast offsets, attention mask
  // offsets) rebuilt per call into retained capacity.
  std::vector<int64_t> off_a;
  std::vector<int64_t> off_b;
  std::vector<int64_t> mask_off;

  /// Bytes currently retained by this thread's workspace.
  size_t bytes() const;
  /// Releases all retained buffers (tests / memory pressure).
  void release();
};

/// The calling thread's workspace.
Workspace& workspace();

}  // namespace coastal::tensor
