#include "tensor/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <unordered_map>
#include <unordered_set>

#include "tensor/kernels.hpp"

namespace coastal::tensor {

// ---------------------------------------------------------------------------
// Impl construction (allocation accounting lives in storage.cpp now)
// ---------------------------------------------------------------------------

TensorImpl::TensorImpl(Shape s, Storage d)
    : shape(std::move(s)), data(std::move(d)) {
  COASTAL_CHECK_MSG(data.size() == tensor::numel(shape),
                    "data size " << data.size() << " != numel of "
                                 << shape_str(shape));
}

TensorImpl::TensorImpl(Shape s, std::vector<float> d)
    : TensorImpl(std::move(s), Storage::adopt(std::move(d))) {}

TensorImpl::~TensorImpl() = default;

namespace {
thread_local bool t_grad_enabled = true;
}  // namespace

bool grad_enabled() { return t_grad_enabled; }

NoGradGuard::NoGradGuard() : prev_(t_grad_enabled) { t_grad_enabled = false; }
NoGradGuard::~NoGradGuard() { t_grad_enabled = prev_; }

GradModeGuard::GradModeGuard(bool enable) : prev_(t_grad_enabled) {
  t_grad_enabled = enable;
}
GradModeGuard::~GradModeGuard() { t_grad_enabled = prev_; }

// ---------------------------------------------------------------------------
// Op-result construction
// ---------------------------------------------------------------------------

namespace {

bool needs_graph(const std::vector<Tensor>& parents) {
  if (!t_grad_enabled) return false;
  for (const auto& p : parents) {
    if (p.defined() && (p.requires_grad() || p.has_grad_fn())) return true;
  }
  return false;
}

Tensor make_result(
    Shape shape, Storage data, const char* name, std::vector<Tensor> parents,
    std::function<std::vector<Tensor>(const Tensor&)> backward) {
  auto impl = std::make_shared<TensorImpl>(std::move(shape), std::move(data));
  if (needs_graph(parents)) {
    auto node = std::make_shared<Node>();
    node->name = name;
    node->parents.reserve(parents.size());
    for (const auto& p : parents) node->parents.push_back(p.impl());
    node->backward = std::move(backward);
    impl->grad_fn = std::move(node);
  }
  return Tensor(std::move(impl));
}

/// Accumulate `g` into `acc` (clone on first write so the source graph's
/// buffers are never aliased).
void add_into(Tensor& acc, const Tensor& g) {
  if (!acc.defined()) {
    acc = g.clone();
    return;
  }
  COASTAL_CHECK(acc.shape() == g.shape());
  kernels::binary_same(kernels::BinOp::kAdd, acc.raw(), g.raw(), acc.raw(),
                       acc.numel());
}

/// Non-differentiable broadcast materialization (backward helper).
Tensor broadcast_to(const Tensor& t, const Shape& target) {
  if (t.shape() == target) return t;
  const Shape bstr = broadcast_strides(t.shape(), target);
  Storage out = Storage::uninit(tensor::numel(target));
  CoordIter it(target);
  const float* src = t.raw();
  int64_t k = 0;
  do {
    out[k++] = src[dot_strides(it.coords(), bstr)];
  } while (it.next());
  return Tensor::from_storage(target, std::move(out));
}

int normalize_axis(int axis, size_t ndim) {
  int a = axis < 0 ? axis + static_cast<int>(ndim) : axis;
  COASTAL_CHECK_MSG(a >= 0 && a < static_cast<int>(ndim),
                    "axis " << axis << " out of range for ndim " << ndim);
  return a;
}

}  // namespace

// ---------------------------------------------------------------------------
// Creation
// ---------------------------------------------------------------------------

Tensor Tensor::zeros(const Shape& shape) {
  return from_storage(shape, Storage::zeros(tensor::numel(shape)));
}

Tensor Tensor::ones(const Shape& shape) { return full(shape, 1.0f); }

Tensor Tensor::full(const Shape& shape, float value) {
  return from_storage(shape, Storage::full(tensor::numel(shape), value));
}

Tensor Tensor::from_vector(const Shape& shape, std::vector<float> values) {
  return from_storage(shape, Storage::adopt(std::move(values)));
}

Tensor Tensor::from_storage(const Shape& shape, Storage data) {
  return Tensor(std::make_shared<TensorImpl>(shape, std::move(data)));
}

Tensor Tensor::randn(const Shape& shape, util::Rng& rng, float stddev) {
  Storage v = Storage::uninit(tensor::numel(shape));
  for (auto& x : v) x = static_cast<float>(rng.normal(0.0, stddev));
  return from_storage(shape, std::move(v));
}

Tensor Tensor::uniform(const Shape& shape, util::Rng& rng, float lo, float hi) {
  Storage v = Storage::uninit(tensor::numel(shape));
  for (auto& x : v) x = static_cast<float>(rng.uniform(lo, hi));
  return from_storage(shape, std::move(v));
}

Tensor Tensor::arange(int64_t n) {
  Storage v = Storage::uninit(n);
  for (int64_t i = 0; i < n; ++i) v[i] = static_cast<float>(i);
  return from_storage({n}, std::move(v));
}

// ---------------------------------------------------------------------------
// Accessors
// ---------------------------------------------------------------------------

float Tensor::item() const {
  COASTAL_CHECK_MSG(numel() == 1, "item() on tensor of " << numel() << " elems");
  return impl_->data[0];
}

float Tensor::at(const std::vector<int64_t>& coords) const {
  COASTAL_CHECK(coords.size() == ndim());
  const Shape st = strides_of(shape());
  return impl_->data[dot_strides(coords, st)];
}

void Tensor::set(const std::vector<int64_t>& coords, float v) {
  COASTAL_CHECK(coords.size() == ndim());
  const Shape st = strides_of(shape());
  impl_->data[dot_strides(coords, st)] = v;
}

// ---------------------------------------------------------------------------
// Autograd plumbing
// ---------------------------------------------------------------------------

Tensor& Tensor::set_requires_grad(bool rg) {
  COASTAL_CHECK_MSG(!impl_->grad_fn,
                    "requires_grad can only be set on leaf tensors");
  impl_->requires_grad = rg;
  return *this;
}

Tensor Tensor::grad() const {
  return impl_->grad ? Tensor(impl_->grad) : Tensor();
}

void Tensor::zero_grad() { impl_->grad.reset(); }

void Tensor::accumulate_grad(const Tensor& g) {
  COASTAL_CHECK(g.shape() == shape());
  if (!impl_->grad) {
    impl_->grad = g.clone().impl();
    return;
  }
  kernels::binary_same(kernels::BinOp::kAdd, impl_->grad->data.data(),
                       g.raw(), impl_->grad->data.data(), numel());
}

void Tensor::backward(const Tensor& seed) const {
  COASTAL_CHECK_MSG(impl_ != nullptr, "backward() on undefined tensor");
  // Topological order of impls reachable through grad_fn edges.
  std::vector<TensorImpl*> order;
  {
    std::unordered_set<TensorImpl*> visited;
    // Iterative DFS with explicit post-order.
    struct Frame {
      TensorImpl* impl;
      size_t next_child;
    };
    std::vector<Frame> stack;
    stack.push_back({impl_.get(), 0});
    visited.insert(impl_.get());
    while (!stack.empty()) {
      Frame& f = stack.back();
      Node* node = f.impl->grad_fn.get();
      const size_t nchildren = node ? node->parents.size() : 0;
      if (f.next_child < nchildren) {
        TensorImpl* child = node->parents[f.next_child++].get();
        if (child && !visited.count(child) && child->grad_fn) {
          visited.insert(child);
          stack.push_back({child, 0});
        }
      } else {
        order.push_back(f.impl);
        stack.pop_back();
      }
    }
  }

  std::unordered_map<TensorImpl*, Tensor> gradmap;
  {
    Tensor s = seed.defined() ? seed : Tensor::ones(shape());
    COASTAL_CHECK_MSG(s.shape() == shape(), "backward seed shape mismatch");
    if (!impl_->grad_fn) {
      // Root is itself a leaf; nothing to traverse.
      if (impl_->requires_grad) const_cast<Tensor*>(this)->accumulate_grad(s);
      return;
    }
    gradmap[impl_.get()] = s.clone();
  }

  NoGradGuard no_grad;
  // `order` is post-order (children before parents-of-graph == producers
  // before consumers? no: DFS from root descends to producers, so root is
  // last).  Reverse iteration visits the root first, then upstream.
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    TensorImpl* impl = *it;
    if (!impl->grad_fn) continue;
    auto found = gradmap.find(impl);
    if (found == gradmap.end()) continue;  // unused branch
    const Tensor g = found->second;
    std::vector<Tensor> pgrads = impl->grad_fn->backward(g);
    COASTAL_CHECK(pgrads.size() == impl->grad_fn->parents.size());
    for (size_t i = 0; i < pgrads.size(); ++i) {
      if (!pgrads[i].defined()) continue;
      TensorImpl* parent = impl->grad_fn->parents[i].get();
      if (parent->grad_fn) {
        add_into(gradmap[parent], pgrads[i]);
      } else if (parent->requires_grad) {
        Tensor(impl->grad_fn->parents[i]).accumulate_grad(pgrads[i]);
      }
    }
    gradmap.erase(found);  // free as we go
  }
}

Tensor Tensor::detach() const {
  return from_storage(shape(), Storage::copy_of(raw(), numel()));
}

Tensor Tensor::clone() const { return detach(); }

// ---------------------------------------------------------------------------
// Elementwise binary ops with broadcasting
// ---------------------------------------------------------------------------

namespace {

Storage broadcast_apply(const Tensor& a, const Tensor& b,
                        const Shape& out_shape, kernels::BinOp op) {
  Storage out = Storage::uninit(tensor::numel(out_shape));
  if (a.shape() == b.shape()) {
    kernels::binary_same(op, a.raw(), b.raw(), out.data(), out.size());
    return out;
  }
  const Shape sa = broadcast_strides(a.shape(), out_shape);
  const Shape sb = broadcast_strides(b.shape(), out_shape);
  kernels::binary_broadcast(op, a.raw(), b.raw(), out.data(), out_shape, sa,
                            sb);
  return out;
}

}  // namespace

Tensor Tensor::add(const Tensor& o) const {
  const Shape out_shape = broadcast_shapes(shape(), o.shape());
  auto out = broadcast_apply(*this, o, out_shape, kernels::BinOp::kAdd);
  const Shape sa = shape(), sb = o.shape();
  return make_result(out_shape, std::move(out), "add", {*this, o},
                     [sa, sb](const Tensor& g) -> std::vector<Tensor> {
                       return {g.sum_to(sa), g.sum_to(sb)};
                     });
}

Tensor Tensor::sub(const Tensor& o) const {
  const Shape out_shape = broadcast_shapes(shape(), o.shape());
  auto out = broadcast_apply(*this, o, out_shape, kernels::BinOp::kSub);
  const Shape sa = shape(), sb = o.shape();
  return make_result(out_shape, std::move(out), "sub", {*this, o},
                     [sa, sb](const Tensor& g) -> std::vector<Tensor> {
                       return {g.sum_to(sa), g.neg().sum_to(sb)};
                     });
}

Tensor Tensor::mul(const Tensor& o) const {
  const Shape out_shape = broadcast_shapes(shape(), o.shape());
  auto out = broadcast_apply(*this, o, out_shape, kernels::BinOp::kMul);
  Tensor a = *this, b = o;
  return make_result(out_shape, std::move(out), "mul", {a, b},
                     [a, b](const Tensor& g) -> std::vector<Tensor> {
                       Tensor ga = g.mul(b).sum_to(a.shape());
                       Tensor gb = g.mul(a).sum_to(b.shape());
                       return {ga, gb};
                     });
}

Tensor Tensor::div(const Tensor& o) const {
  const Shape out_shape = broadcast_shapes(shape(), o.shape());
  auto out = broadcast_apply(*this, o, out_shape, kernels::BinOp::kDiv);
  Tensor a = *this, b = o;
  return make_result(
      out_shape, std::move(out), "div", {a, b},
      [a, b](const Tensor& g) -> std::vector<Tensor> {
        Tensor ga = g.div(b).sum_to(a.shape());
        Tensor gb = g.mul(a).div(b.mul(b)).neg().sum_to(b.shape());
        return {ga, gb};
      });
}

// ---------------------------------------------------------------------------
// Elementwise unary ops
// ---------------------------------------------------------------------------

namespace {

/// Relative per-element cost hint for parallel chunking: transcendental
/// unary ops are worth parallelizing at smaller sizes than plain
/// arithmetic.
constexpr int64_t kUnaryCost = 8;

template <typename FwdFn, typename BwdFn>
Tensor unary_op(const Tensor& x, const char* name, FwdFn fwd, BwdFn bwd) {
  Storage out = Storage::uninit(x.numel());
  kernels::map(x.raw(), out.data(), x.numel(), kUnaryCost,
               [fwd](const float* in, float* o, int64_t n) {
                 for (int64_t i = 0; i < n; ++i) o[i] = fwd(in[i]);
               });
  Tensor saved_x = x;
  Tensor result = make_result(
      x.shape(), std::move(out), name, {x},
      [saved_x, bwd](const Tensor& g) -> std::vector<Tensor> {
        Storage gx = Storage::uninit(g.numel());
        const float* pg = g.raw();
        const float* px = saved_x.raw();
        kernels::map(px, gx.data(), g.numel(), kUnaryCost,
                     [bwd, pg, px](const float* in, float* o, int64_t n) {
                       const int64_t base = in - px;
                       for (int64_t i = 0; i < n; ++i)
                         o[i] = bwd(pg[base + i], in[i]);
                     });
        return {Tensor::from_storage(saved_x.shape(), std::move(gx))};
      });
  return result;
}

}  // namespace

Tensor Tensor::neg() const {
  return unary_op(*this, "neg", [](float x) { return -x; },
                  [](float g, float) { return -g; });
}

Tensor Tensor::add_scalar(float s) const {
  return unary_op(*this, "add_scalar", [s](float x) { return x + s; },
                  [](float g, float) { return g; });
}

Tensor Tensor::mul_scalar(float s) const {
  return unary_op(*this, "mul_scalar", [s](float x) { return x * s; },
                  [s](float g, float) { return g * s; });
}

Tensor Tensor::pow_scalar(float p) const {
  return unary_op(*this, "pow_scalar",
                  [p](float x) { return std::pow(x, p); },
                  [p](float g, float x) {
                    return g * p * std::pow(x, p - 1.0f);
                  });
}

Tensor Tensor::exp() const {
  return unary_op(*this, "exp", [](float x) { return std::exp(x); },
                  [](float g, float x) { return g * std::exp(x); });
}

Tensor Tensor::log() const {
  return unary_op(*this, "log", [](float x) { return std::log(x); },
                  [](float g, float x) { return g / x; });
}

Tensor Tensor::sqrt() const {
  return unary_op(*this, "sqrt", [](float x) { return std::sqrt(x); },
                  [](float g, float x) {
                    return g * 0.5f / std::sqrt(x);
                  });
}

Tensor Tensor::tanh() const {
  return unary_op(*this, "tanh", [](float x) { return std::tanh(x); },
                  [](float g, float x) {
                    const float t = std::tanh(x);
                    return g * (1.0f - t * t);
                  });
}

Tensor Tensor::sigmoid() const {
  return unary_op(*this, "sigmoid",
                  [](float x) { return 1.0f / (1.0f + std::exp(-x)); },
                  [](float g, float x) {
                    const float s = 1.0f / (1.0f + std::exp(-x));
                    return g * s * (1.0f - s);
                  });
}

Tensor Tensor::relu() const {
  return unary_op(*this, "relu", [](float x) { return x > 0 ? x : 0.0f; },
                  [](float g, float x) { return x > 0 ? g : 0.0f; });
}

Tensor Tensor::gelu() const {
  constexpr float kInvSqrt2 = 0.7071067811865475f;
  constexpr float kInvSqrt2Pi = 0.3989422804014327f;
  return unary_op(
      *this, "gelu",
      [](float x) {
        return 0.5f * x * (1.0f + std::erf(x * kInvSqrt2));
      },
      [](float g, float x) {
        const float cdf = 0.5f * (1.0f + std::erf(x * kInvSqrt2));
        const float pdf = kInvSqrt2Pi * std::exp(-0.5f * x * x);
        return g * (cdf + x * pdf);
      });
}

Tensor Tensor::abs() const {
  return unary_op(*this, "abs", [](float x) { return std::abs(x); },
                  [](float g, float x) {
                    return x >= 0 ? g : -g;
                  });
}

// ---------------------------------------------------------------------------
// Reductions
// ---------------------------------------------------------------------------

Tensor Tensor::sum() const {
  double acc = 0.0;
  for (float v : impl_->data) acc += v;
  const Shape in_shape = shape();
  return make_result({1}, Storage::full(1, static_cast<float>(acc)), "sum",
                     {*this},
                     [in_shape](const Tensor& g) -> std::vector<Tensor> {
                       return {broadcast_to(
                           g.reshape(Shape(in_shape.size(), 1)), in_shape)};
                     });
}

Tensor Tensor::mean() const { return sum().mul_scalar(1.0f / static_cast<float>(numel())); }

Tensor Tensor::sum_axis(int axis, bool keepdim) const {
  const int a = normalize_axis(axis, ndim());
  const Shape in = shape();
  Shape keep = in;
  keep[static_cast<size_t>(a)] = 1;
  // Iterate as [outer, axis, inner].
  int64_t outer = 1, inner = 1;
  for (int i = 0; i < a; ++i) outer *= in[static_cast<size_t>(i)];
  for (size_t i = static_cast<size_t>(a) + 1; i < in.size(); ++i) inner *= in[i];
  const int64_t len = in[static_cast<size_t>(a)];
  Storage out = Storage::zeros(outer * inner);
  const float* p = raw();
  for (int64_t o = 0; o < outer; ++o)
    for (int64_t l = 0; l < len; ++l)
      for (int64_t i = 0; i < inner; ++i)
        out[o * inner + i] += p[static_cast<size_t>((o * len + l) * inner + i)];

  Shape out_shape = keep;
  if (!keepdim) out_shape.erase(out_shape.begin() + a);
  if (out_shape.empty()) out_shape = {1};
  return make_result(out_shape, std::move(out), "sum_axis", {*this},
                     [in, keep](const Tensor& g) -> std::vector<Tensor> {
                       return {broadcast_to(g.reshape(keep), in)};
                     });
}

Tensor Tensor::mean_axis(int axis, bool keepdim) const {
  const int a = normalize_axis(axis, ndim());
  const float inv = 1.0f / static_cast<float>(shape()[static_cast<size_t>(a)]);
  return sum_axis(axis, keepdim).mul_scalar(inv);
}

Tensor Tensor::max_axis(int axis, bool keepdim) const {
  const int a = normalize_axis(axis, ndim());
  const Shape in = shape();
  Shape keep = in;
  keep[static_cast<size_t>(a)] = 1;
  int64_t outer = 1, inner = 1;
  for (int i = 0; i < a; ++i) outer *= in[static_cast<size_t>(i)];
  for (size_t i = static_cast<size_t>(a) + 1; i < in.size(); ++i) inner *= in[i];
  const int64_t len = in[static_cast<size_t>(a)];
  Storage out =
      Storage::full(outer * inner, -std::numeric_limits<float>::infinity());
  auto argmax = std::make_shared<std::vector<int64_t>>(
      static_cast<size_t>(outer * inner), 0);
  const float* p = raw();
  for (int64_t o = 0; o < outer; ++o)
    for (int64_t l = 0; l < len; ++l)
      for (int64_t i = 0; i < inner; ++i) {
        const float v = p[static_cast<size_t>((o * len + l) * inner + i)];
        const int64_t oi = o * inner + i;
        if (v > out[oi]) {
          out[oi] = v;
          (*argmax)[static_cast<size_t>(oi)] = l;
        }
      }
  Shape out_shape = keep;
  if (!keepdim) out_shape.erase(out_shape.begin() + a);
  if (out_shape.empty()) out_shape = {1};
  return make_result(
      out_shape, std::move(out), "max_axis", {*this},
      [in, outer, inner, len, argmax](const Tensor& g) -> std::vector<Tensor> {
        Storage gx = Storage::zeros(tensor::numel(in));
        const float* pg = g.raw();
        for (int64_t o = 0; o < outer; ++o)
          for (int64_t i = 0; i < inner; ++i) {
            const size_t oi = static_cast<size_t>(o * inner + i);
            const int64_t l = (*argmax)[oi];
            gx[(o * len + l) * inner + i] = pg[oi];
          }
        return {Tensor::from_storage(in, std::move(gx))};
      });
}

Tensor Tensor::sum_to(const Shape& target) const {
  if (shape() == target) return *this;
  // Sum over leading extra axes and over broadcast axes.
  Storage out = Storage::zeros(tensor::numel(target));
  const Shape tstr = broadcast_strides(target, shape());
  CoordIter it(shape());
  const float* p = raw();
  size_t k = 0;
  do {
    out[dot_strides(it.coords(), tstr)] += p[k++];
  } while (it.next());
  return Tensor::from_storage(target, std::move(out));
}

// ---------------------------------------------------------------------------
// Matmul
// ---------------------------------------------------------------------------

namespace {

Shape batch_dims(const Shape& s) {
  return Shape(s.begin(), s.end() - 2);
}

}  // namespace

Tensor Tensor::matmul(const Tensor& o) const {
  COASTAL_CHECK_MSG(ndim() >= 2 && o.ndim() >= 2,
                    "matmul needs >=2-d operands");
  const int64_t m = shape()[ndim() - 2];
  const int64_t k = shape()[ndim() - 1];
  const int64_t k2 = o.shape()[o.ndim() - 2];
  const int64_t n = o.shape()[o.ndim() - 1];
  COASTAL_CHECK_MSG(k == k2, "matmul inner dims " << k << " vs " << k2);

  const Shape batch = broadcast_shapes(batch_dims(shape()), batch_dims(o.shape()));
  Shape out_shape = batch;
  out_shape.push_back(m);
  out_shape.push_back(n);

  const int64_t nbatch = tensor::numel(batch);
  Storage out = Storage::zeros(nbatch * m * n);

  // Per-batch offsets honoring broadcast (stride 0 on broadcast axes).
  const Shape abatch = batch_dims(shape());
  const Shape bbatch = batch_dims(o.shape());
  const Shape astr = broadcast_strides(abatch, batch);
  const Shape bstr = broadcast_strides(bbatch, batch);
  // Flatten broadcast batch coordinates to per-entry operand offsets, then
  // hand the whole problem to the blocked batched kernel (parallel over
  // batch entries and row blocks).  The offset tables are per-thread
  // workspace scratch — rebuilt each call into retained capacity, done
  // with before this function returns (gemm_batched keeps no reference).
  Workspace& ws = workspace();
  std::vector<int64_t>& a_off = ws.off_a;
  std::vector<int64_t>& b_off = ws.off_b;
  a_off.assign(static_cast<size_t>(nbatch), 0);
  b_off.assign(static_cast<size_t>(nbatch), 0);
  if (!batch.empty()) {
    CoordIter it(batch);
    size_t bi = 0;
    do {
      a_off[bi] = dot_strides(it.coords(), astr) * m * k;
      b_off[bi] = dot_strides(it.coords(), bstr) * k * n;
      ++bi;
    } while (it.next());
  }
  kernels::gemm_batched(raw(), o.raw(), out.data(), m, k, n, nbatch, a_off,
                        b_off);

  Tensor a = *this, b = o;
  return make_result(out_shape, std::move(out), "matmul", {a, b},
                     [a, b](const Tensor& g) -> std::vector<Tensor> {
                       Tensor ga = g.matmul(b.transpose_last()).sum_to(a.shape());
                       Tensor gb = a.transpose_last().matmul(g).sum_to(b.shape());
                       return {ga, gb};
                     });
}

Tensor Tensor::transpose_last() const {
  COASTAL_CHECK(ndim() >= 2);
  std::vector<size_t> perm(ndim());
  for (size_t i = 0; i < ndim(); ++i) perm[i] = i;
  std::swap(perm[ndim() - 2], perm[ndim() - 1]);
  return permute(perm);
}

// ---------------------------------------------------------------------------
// Shape ops
// ---------------------------------------------------------------------------

Tensor Tensor::reshape(const Shape& new_shape) const {
  Shape resolved = new_shape;
  int64_t known = 1;
  int infer = -1;
  for (size_t i = 0; i < resolved.size(); ++i) {
    if (resolved[i] == -1) {
      COASTAL_CHECK_MSG(infer < 0, "reshape: more than one -1");
      infer = static_cast<int>(i);
    } else {
      known *= resolved[i];
    }
  }
  if (infer >= 0) resolved[static_cast<size_t>(infer)] = numel() / known;
  COASTAL_CHECK_MSG(tensor::numel(resolved) == numel(),
                    "reshape " << shape_str(shape()) << " -> "
                               << shape_str(resolved));
  const Shape in = shape();
  Storage out = Storage::copy_of(raw(), numel());
  return make_result(resolved, std::move(out), "reshape", {*this},
                     [in](const Tensor& g) -> std::vector<Tensor> {
                       return {g.reshape(in)};
                     });
}

Tensor Tensor::permute(const std::vector<size_t>& perm) const {
  COASTAL_CHECK(perm.size() == ndim());
  Shape out_shape(ndim());
  for (size_t i = 0; i < ndim(); ++i) out_shape[i] = shape()[perm[i]];
  const Shape in_str = strides_of(shape());
  Shape gather_str(ndim());
  for (size_t i = 0; i < ndim(); ++i) gather_str[i] = in_str[perm[i]];

  // Last-two-axes swap (the transpose_last pattern dominating attention)
  // gets a blocked tile transpose; anything else takes the generic
  // incremental gather.
  bool last_two_swap = ndim() >= 2;
  for (size_t i = 0; last_two_swap && i + 2 < ndim(); ++i)
    last_two_swap = perm[i] == i;
  last_two_swap = last_two_swap && ndim() >= 2 &&
                  perm[ndim() - 2] == ndim() - 1 &&
                  perm[ndim() - 1] == ndim() - 2;

  Storage out = Storage::uninit(numel());
  if (last_two_swap && numel() > 0) {
    const int64_t rows = shape()[ndim() - 2];
    const int64_t cols = shape()[ndim() - 1];
    kernels::transpose_last2(raw(), out.data(), numel() / (rows * cols),
                             rows, cols);
  } else {
    kernels::permute_gather(raw(), out.data(), out_shape, gather_str);
  }

  std::vector<size_t> inv(ndim());
  for (size_t i = 0; i < ndim(); ++i) inv[perm[i]] = i;
  return make_result(out_shape, std::move(out), "permute", {*this},
                     [inv](const Tensor& g) -> std::vector<Tensor> {
                       return {g.permute(inv)};
                     });
}

Tensor Tensor::slice(int axis, int64_t start, int64_t len) const {
  const int a = normalize_axis(axis, ndim());
  const Shape in = shape();
  COASTAL_CHECK_MSG(start >= 0 && start + len <= in[static_cast<size_t>(a)],
                    "slice [" << start << "," << start + len << ") out of dim "
                              << in[static_cast<size_t>(a)]);
  Shape out_shape = in;
  out_shape[static_cast<size_t>(a)] = len;
  int64_t outer = 1, inner = 1;
  for (int i = 0; i < a; ++i) outer *= in[static_cast<size_t>(i)];
  for (size_t i = static_cast<size_t>(a) + 1; i < in.size(); ++i) inner *= in[i];
  const int64_t dlen = in[static_cast<size_t>(a)];

  Storage out = Storage::uninit(outer * len * inner);
  const float* p = raw();
  for (int64_t o = 0; o < outer; ++o)
    std::memcpy(out.data() + o * len * inner,
                p + (o * dlen + start) * inner,
                static_cast<size_t>(len * inner) * sizeof(float));

  const int64_t before = start;
  const int64_t after = dlen - start - len;
  return make_result(out_shape, std::move(out), "slice", {*this},
                     [a, before, after](const Tensor& g) -> std::vector<Tensor> {
                       return {g.pad_axis(a, before, after)};
                     });
}

Tensor Tensor::pad_axis(int axis, int64_t before, int64_t after) const {
  const int a = normalize_axis(axis, ndim());
  const Shape in = shape();
  Shape out_shape = in;
  out_shape[static_cast<size_t>(a)] += before + after;
  int64_t outer = 1, inner = 1;
  for (int i = 0; i < a; ++i) outer *= in[static_cast<size_t>(i)];
  for (size_t i = static_cast<size_t>(a) + 1; i < in.size(); ++i) inner *= in[i];
  const int64_t dlen = in[static_cast<size_t>(a)];
  const int64_t olen = out_shape[static_cast<size_t>(a)];

  Storage out = Storage::zeros(outer * olen * inner);
  const float* p = raw();
  for (int64_t o = 0; o < outer; ++o)
    std::memcpy(out.data() + (o * olen + before) * inner,
                p + o * dlen * inner,
                static_cast<size_t>(dlen * inner) * sizeof(float));

  const int64_t start = before, len = dlen;
  return make_result(out_shape, std::move(out), "pad_axis", {*this},
                     [a, start, len](const Tensor& g) -> std::vector<Tensor> {
                       return {g.slice(a, start, len)};
                     });
}

Tensor Tensor::roll(int axis, int64_t shift) const {
  const int a = normalize_axis(axis, ndim());
  const Shape in = shape();
  const int64_t dlen = in[static_cast<size_t>(a)];
  int64_t s = ((shift % dlen) + dlen) % dlen;
  int64_t outer = 1, inner = 1;
  for (int i = 0; i < a; ++i) outer *= in[static_cast<size_t>(i)];
  for (size_t i = static_cast<size_t>(a) + 1; i < in.size(); ++i) inner *= in[i];

  Storage out = Storage::uninit(numel());
  const float* p = raw();
  for (int64_t o = 0; o < outer; ++o)
    for (int64_t l = 0; l < dlen; ++l) {
      const int64_t dst = (l + s) % dlen;
      std::memcpy(out.data() + (o * dlen + dst) * inner,
                  p + (o * dlen + l) * inner,
                  static_cast<size_t>(inner) * sizeof(float));
    }

  return make_result(in, std::move(out), "roll", {*this},
                     [a, shift](const Tensor& g) -> std::vector<Tensor> {
                       return {g.roll(a, -shift)};
                     });
}

Tensor concat(const std::vector<Tensor>& parts, int axis) {
  COASTAL_CHECK(!parts.empty());
  const int a = normalize_axis(axis, parts[0].ndim());
  Shape out_shape = parts[0].shape();
  int64_t total = 0;
  for (const auto& t : parts) {
    COASTAL_CHECK(t.ndim() == parts[0].ndim());
    for (size_t i = 0; i < out_shape.size(); ++i) {
      if (static_cast<int>(i) != a)
        COASTAL_CHECK_MSG(t.shape()[i] == out_shape[i],
                          "concat shape mismatch on axis " << i);
    }
    total += t.shape()[static_cast<size_t>(a)];
  }
  out_shape[static_cast<size_t>(a)] = total;

  int64_t outer = 1, inner = 1;
  for (int i = 0; i < a; ++i) outer *= out_shape[static_cast<size_t>(i)];
  for (size_t i = static_cast<size_t>(a) + 1; i < out_shape.size(); ++i)
    inner *= out_shape[i];

  Storage out = Storage::uninit(tensor::numel(out_shape));
  int64_t offset = 0;
  for (const auto& t : parts) {
    const int64_t dlen = t.shape()[static_cast<size_t>(a)];
    const float* p = t.raw();
    for (int64_t o = 0; o < outer; ++o)
      std::memcpy(out.data() + (o * total + offset) * inner,
                  p + o * dlen * inner,
                  static_cast<size_t>(dlen * inner) * sizeof(float));
    offset += dlen;
  }

  // Backward: slice the gradient back apart.
  std::vector<int64_t> lens;
  lens.reserve(parts.size());
  for (const auto& t : parts) lens.push_back(t.shape()[static_cast<size_t>(a)]);
  return make_result(out_shape, std::move(out), "concat", parts,
                     [a, lens](const Tensor& g) -> std::vector<Tensor> {
                       std::vector<Tensor> grads;
                       grads.reserve(lens.size());
                       int64_t off = 0;
                       for (int64_t len : lens) {
                         grads.push_back(g.slice(a, off, len));
                         off += len;
                       }
                       return grads;
                     });
}

// ---------------------------------------------------------------------------
// Fused NN ops
// ---------------------------------------------------------------------------

Tensor Tensor::softmax_lastdim() const {
  const int64_t cols = shape()[ndim() - 1];
  const int64_t rows = numel() / cols;
  Storage out = Storage::uninit(numel());
  kernels::softmax_rows(raw(), out.data(), rows, cols);

  if (!needs_graph({*this})) {
    // Inference: no backward stash — skip the output copy the training
    // path keeps (this used to double the op's allocation traffic).
    return from_storage(shape(), std::move(out));
  }
  Tensor saved_out =
      from_storage(shape(), Storage::copy_of(out.data(), numel()));
  return make_result(
      shape(), std::move(out), "softmax", {*this},
      [saved_out, rows, cols](const Tensor& g) -> std::vector<Tensor> {
        Storage gx = Storage::uninit(g.numel());
        kernels::softmax_backward_rows(g.raw(), saved_out.raw(), gx.data(),
                                       rows, cols);
        return {Tensor::from_storage(saved_out.shape(), std::move(gx))};
      });
}

Tensor Tensor::layer_norm(const Tensor& gamma, const Tensor& beta,
                          float eps) const {
  const int64_t cols = shape()[ndim() - 1];
  COASTAL_CHECK(gamma.numel() == cols && beta.numel() == cols);
  const int64_t rows = numel() / cols;

  Storage out = Storage::uninit(numel());
  if (!needs_graph({*this, gamma, beta})) {
    // Inference: xhat/invstd are pure autograd state — skip the stash
    // (no allocation and no stash stores at all).
    kernels::layer_norm_rows(raw(), gamma.raw(), beta.raw(), out.data(),
                             nullptr, nullptr, rows, cols, eps);
    return from_storage(shape(), std::move(out));
  }

  auto xhat = std::make_shared<std::vector<float>>(
      static_cast<size_t>(numel()));
  auto invstd = std::make_shared<std::vector<float>>(
      static_cast<size_t>(rows));
  kernels::layer_norm_rows(raw(), gamma.raw(), beta.raw(), out.data(),
                           xhat->data(), invstd->data(), rows, cols, eps);

  Tensor x = *this, gm = gamma;
  const Shape in_shape = shape();
  const Shape gshape = gamma.shape();
  return make_result(
      shape(), std::move(out), "layer_norm", {x, gamma, beta},
      [xhat, invstd, rows, cols, in_shape, gshape,
       gm](const Tensor& g) -> std::vector<Tensor> {
        Storage gx = Storage::uninit(rows * cols);
        Storage ggamma = Storage::zeros(cols);
        Storage gbeta = Storage::zeros(cols);
        kernels::layer_norm_backward_rows(g.raw(), gm.raw(), xhat->data(),
                                          invstd->data(), gx.data(),
                                          ggamma.data(), gbeta.data(), rows,
                                          cols);
        return {Tensor::from_storage(in_shape, std::move(gx)),
                Tensor::from_storage(gshape, std::move(ggamma)),
                Tensor::from_storage(gshape, std::move(gbeta))};
      });
}

// ---------------------------------------------------------------------------
// Losses
// ---------------------------------------------------------------------------

Tensor custom_op(Shape shape, Storage data, const char* name,
                 std::vector<Tensor> parents,
                 std::function<std::vector<Tensor>(const Tensor&)> backward) {
  return make_result(std::move(shape), std::move(data), name,
                     std::move(parents), std::move(backward));
}

Tensor custom_op(Shape shape, std::vector<float> data, const char* name,
                 std::vector<Tensor> parents,
                 std::function<std::vector<Tensor>(const Tensor&)> backward) {
  return make_result(std::move(shape), Storage::adopt(std::move(data)), name,
                     std::move(parents), std::move(backward));
}

Tensor mse_loss(const Tensor& pred, const Tensor& target) {
  COASTAL_CHECK(pred.shape() == target.shape());
  Tensor diff = pred.sub(target);
  return diff.mul(diff).mean();
}

Tensor l1_loss(const Tensor& pred, const Tensor& target) {
  COASTAL_CHECK(pred.shape() == target.shape());
  return pred.sub(target).abs().mean();
}

}  // namespace coastal::tensor
