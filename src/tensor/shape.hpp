#pragma once

/// \file shape.hpp
/// Shape arithmetic shared by all tensor ops: row-major strides, numpy
/// broadcasting rules, and linear-index <-> coordinate conversion.

#include <cstdint>
#include <numeric>
#include <sstream>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace coastal::tensor {

using Shape = std::vector<int64_t>;

inline int64_t numel(const Shape& s) {
  int64_t n = 1;
  for (int64_t d : s) n *= d;
  return n;
}

inline std::string shape_str(const Shape& s) {
  std::ostringstream os;
  os << "[";
  for (size_t i = 0; i < s.size(); ++i) os << (i ? "," : "") << s[i];
  os << "]";
  return os.str();
}

/// Row-major (C-order) strides, in elements.
inline Shape strides_of(const Shape& s) {
  Shape st(s.size());
  int64_t acc = 1;
  for (size_t i = s.size(); i-- > 0;) {
    st[i] = acc;
    acc *= s[i];
  }
  return st;
}

/// Numpy broadcast of two shapes; throws on incompatibility.
inline Shape broadcast_shapes(const Shape& a, const Shape& b) {
  const size_t n = std::max(a.size(), b.size());
  Shape out(n);
  for (size_t i = 0; i < n; ++i) {
    const int64_t da = i < n - a.size() ? 1 : a[i - (n - a.size())];
    const int64_t db = i < n - b.size() ? 1 : b[i - (n - b.size())];
    COASTAL_CHECK_MSG(da == db || da == 1 || db == 1,
                      "cannot broadcast " << shape_str(a) << " with "
                                          << shape_str(b));
    out[i] = std::max(da, db);
  }
  return out;
}

/// Strides usable to read a tensor of shape `from` at coordinates of the
/// broadcast shape `to` (stride 0 on broadcast axes).
inline Shape broadcast_strides(const Shape& from, const Shape& to) {
  const Shape st = strides_of(from);
  Shape out(to.size(), 0);
  const size_t offset = to.size() - from.size();
  for (size_t i = 0; i < from.size(); ++i) {
    const size_t j = i + offset;
    COASTAL_CHECK(from[i] == to[j] || from[i] == 1);
    out[j] = (from[i] == 1) ? 0 : st[i];
  }
  return out;
}

/// Coordinate iterator over a shape (odometer order).  Amortized O(1) per
/// step; used by the generic strided kernels.
class CoordIter {
 public:
  explicit CoordIter(const Shape& shape)
      : shape_(shape), coords_(shape.size(), 0) {}

  const std::vector<int64_t>& coords() const { return coords_; }

  /// Advance; returns false after the last coordinate.
  bool next() {
    for (size_t i = coords_.size(); i-- > 0;) {
      if (++coords_[i] < shape_[i]) return true;
      coords_[i] = 0;
    }
    return false;
  }

 private:
  Shape shape_;
  std::vector<int64_t> coords_;
};

inline int64_t dot_strides(const std::vector<int64_t>& coords,
                           const Shape& strides) {
  int64_t off = 0;
  for (size_t i = 0; i < coords.size(); ++i) off += coords[i] * strides[i];
  return off;
}

}  // namespace coastal::tensor
