#pragma once

/// \file kernels.hpp
/// Parallel, cache-blocked compute kernels backing the hot tensor ops.
///
/// Design rules shared by every kernel here:
///  * **Determinism across thread counts.**  Work is partitioned so that
///    each output element (and each reduction feeding it) is computed by
///    exactly one task with a thread-count-independent operation order.
///    Results are bitwise identical under `COASTAL_NUM_THREADS=1` and `=N`.
///  * **IEEE semantics.**  No value-dependent skips: NaN/Inf in either
///    operand propagates exactly as in the reference triple loop (the old
///    `if (a == 0.0f) continue;` shortcut is deliberately gone).
///  * **Cache blocking.**  GEMM runs Mc×Kc×Nc panels with a
///    register-blocked micro-kernel over packed A/B panels so the inner
///    loop streams contiguous memory; `transpose_last` uses a blocked
///    tile copy.
///
/// Threading is provided by `par::ThreadPool::global()`; kernels fall back
/// to serial execution for small problems (see KernelConfig thresholds) and
/// when already running inside a pool worker (no nested parallelism).
///
/// All transient kernel scratch (GEMM packing panels, fused-attention
/// blocks and statistics) lives in the per-thread `tensor::Workspace`
/// (storage.hpp): grow-only buffers reused across calls, so steady-state
/// kernel execution allocates nothing inside parallel_for tasks.

#include <cstdint>
#include <functional>
#include <vector>

#include "tensor/shape.hpp"

namespace coastal::tensor::kernels {

/// Tuning knobs for the kernel layer.  `config()` is initialized once from
/// the environment and may be mutated by tests/benchmarks; kernels read it
/// at call time.
struct KernelConfig {
  /// Worker count used for chunking decisions. 0 = auto (env
  /// `COASTAL_NUM_THREADS`, else hardware concurrency). 1 = force serial.
  int num_threads = 0;

  // GEMM cache-block panel sizes (elements).  Mc×Kc A-panels target L2,
  // Kc×Nc B-panels target L3/L2; the register micro-kernel is fixed at
  // compile time (see kernels.cpp).
  int64_t gemm_mc = 64;
  int64_t gemm_kc = 256;
  int64_t gemm_nc = 1024;

  /// Below this many multiply-adds a GEMM stays on the naive serial path
  /// (packing overhead dominates).  Path choice depends only on problem
  /// size, never on thread count, preserving determinism.
  int64_t gemm_small_madds = 4096;

  /// Minimum elements a data-parallel loop must have per chunk before it
  /// is worth shipping to the pool.
  int64_t parallel_grain = 16384;

  /// Chunk oversubscription factor (chunks ≈ factor × threads) for load
  /// balance on ragged loops.
  int oversubscribe = 4;

  // Fused (flash-style) attention blocking.  One task owns a Bq-row block
  // of queries for one (batch × head) entry and streams Bkv-row blocks of
  // K/V through the online-softmax recurrence — the [N, N] score matrix is
  // never materialized.
  int64_t attn_bq = 64;    ///< query rows per task block
  int64_t attn_bkv = 128;  ///< K/V rows streamed per inner block

  /// `nn::MultiHeadSelfAttention` routes forwards — inference *and*
  /// training — through the fused kernels only when the token count N is
  /// at least `fused_attention_min_n(head_dim)`; below it the unfused
  /// reference path wins.  0 = auto: a head-dim-aware default table
  /// measured against the pooled-storage unfused baseline — the PR 4
  /// pool made the unfused path so much faster (it was allocator-bound)
  /// that the speed crossover now sits where the materialized [N, N]
  /// score working set falls out of cache.  Any positive value overrides
  /// the table for every head dim (tests pin paths this way; deployments
  /// that care about peak activation memory more than latency can set a
  /// small value to force streaming attention).  The same gate governs
  /// the forward and the recompute-based backward so a checkpointed
  /// region's initial pass and its backward-time recompute always pick
  /// the same path.
  int64_t attn_fused_min_n = 0;

  /// nbatch (batch × heads) at which the fused_attention_min_n() auto
  /// table was measured.  The auto gate (attn_fused_min_n == 0) is
  /// memory-aware: the unfused path collapses when its *materialized*
  /// [nbatch, N, N] score working set falls out of cache, so the routing
  /// decision compares nbatch·N² against ref_batch·N_ref² rather than N
  /// against N_ref alone — a serving micro-batch 8× the measured one
  /// reaches the collapse at N/√8, which a pure-N gate would mispredict.
  /// At nbatch == attn_fused_ref_batch the two gates are identical.
  int64_t attn_fused_ref_batch = 32;
};

KernelConfig& config();

/// Resolved fused-attention gate for a given head dim: the explicit
/// `config().attn_fused_min_n` when positive, else the measured
/// head-dim-aware default (see KernelConfig::attn_fused_min_n).
int64_t fused_attention_min_n(int64_t head_dim);

/// Memory-aware routing decision for a concrete attention problem: true
/// when the fused streaming kernel should handle an [nbatch, n, n] score
/// shape at this head dim.  With an explicit `attn_fused_min_n` override
/// the decision is `n >= attn_fused_min_n` (head-dim- and batch-blind, as
/// tests that pin a path expect); in auto mode it scales the measured
/// per-head-dim crossover by the materialized score bytes — see
/// KernelConfig::attn_fused_ref_batch.  Depends only on shapes and config
/// (never on recording state or thread count), so checkpoint recompute
/// and serial/parallel runs always route identically.
bool fused_attention_wins(int64_t nbatch, int64_t n, int64_t head_dim);

/// Threads the kernels will actually chunk for: `config().num_threads`, or
/// the `COASTAL_NUM_THREADS` env var, or hardware concurrency.
int resolved_threads();

/// Run `fn(lo, hi)` over [0, total), in parallel when the problem is big
/// enough (`total * cost_per_item >= parallel_grain` and more than one
/// thread is available), serially otherwise.  Chunk boundaries are
/// independent of thread count only in so far as each index is processed
/// exactly once — callers must keep any reduction confined to a single
/// index for determinism.
void parallel_for(int64_t total, int64_t cost_per_item,
                  const std::function<void(int64_t, int64_t)>& fn);

// ---------------------------------------------------------------------------
// GEMM
// ---------------------------------------------------------------------------

/// C[m,n] += A[m,k] · B[k,n], row-major, serial.  Cache-blocked with packed
/// panels; falls back to a naive loop below `gemm_small_madds`.
void gemm(const float* A, const float* B, float* C, int64_t m, int64_t k,
          int64_t n);

/// Batched GEMM: for each batch entry i, C + i·m·n += (A + a_off[i]) ·
/// (B + b_off[i]).  Parallelized over (batch × row-block) tasks; each
/// output row is produced by exactly one task, so results are bitwise
/// independent of thread count.  Offsets encode broadcast (repeated
/// entries are fine).  Each *distinct* B operand is packed into panels
/// exactly once per call, in a shared buffer all row-block tasks consume —
/// repacking per task used to dominate wide-N problems split over many row
/// blocks.  The packed layout (and thus every accumulation order) is
/// byte-identical to the historic per-task packing.
void gemm_batched(const float* A, const float* B, float* C, int64_t m,
                  int64_t k, int64_t n, int64_t nbatch,
                  const std::vector<int64_t>& a_off,
                  const std::vector<int64_t>& b_off);

// ---------------------------------------------------------------------------
// Fused attention
// ---------------------------------------------------------------------------

/// Flash-style fused attention forward:
///
///   O[b, i, :] = softmax_j(scale · Q[b, i, :]·K[b, j, :] + M[b, i, j]) · V[b, j, :]
///
/// Q: [nbatch, nq, d], K/V: [nbatch, nkv, d], O: [nbatch, nq, d], all
/// contiguous row-major (nbatch is typically batch × heads).  `mask` is an
/// optional additive bias: when non-null, row i of batch entry b reads
/// `mask + mask_off[b] + i·nkv`, so broadcast over batch entries is encoded
/// by repeated offsets (the Swin [groups, N, N] window mask).
///
/// K/V are streamed in `attn_bkv`-row blocks through a packed-K^T
/// micro-kernel; the online row-max / row-sum recurrence rescales the
/// output accumulator per block, so the [nq, nkv] score matrix is never
/// materialized.  Each output row is produced by exactly one task and KV
/// blocks are consumed in a fixed ascending order, so results are bitwise
/// identical across thread counts.  NaN/Inf anywhere in a score row
/// poisons that output row exactly as the unfused softmax does.
///
/// `stats` (optional, [nbatch, nq, 2]) receives the final online-softmax
/// row statistics: stats[(b·nq + i)·2] = the row score max m_i and
/// stats[(b·nq + i)·2 + 1] = the row exponential sum l_i, both *after* the
/// full KV sweep, so `P[i, j] = exp(S[i, j] − m_i) / l_i` reconstructs the
/// forward's normalized weights (same `fast_expf`, same m; exact when the
/// sweep fits one KV block, and within float rounding otherwise — the
/// forward reaches a rescaled block's weight through exp(S − m_blk)·alpha,
/// two expf results multiplied, where the reconstruction is one call).
/// This is the contract `attention_fused_backward` consumes; a fully
/// masked row saves m = −inf, l = 0 (its output is NaN on every path).
void attention_fused(const float* Q, const float* K, const float* V, float* O,
                     int64_t nbatch, int64_t nq, int64_t nkv, int64_t d,
                     float scale, const float* mask,
                     const std::vector<int64_t>& mask_off,
                     float* stats = nullptr);

/// Recompute-based (flash-style) attention backward.  Given the forward's
/// inputs, its output O, the upstream gradient dO, and the saved per-row
/// statistics from `attention_fused` (see above), produces
///
///   dV = Pᵀ·dO,   dS = P ∘ (dO·Vᵀ − Δ)·scale,   dQ = dS·K,   dK = dSᵀ·Q,
///
/// where Δ_i = Σ_d dO[i,d]·O[i,d], WITHOUT ever materializing P or dS:
/// K/V blocks are re-streamed through the same packed-Kᵀ/Vᵀ micro-kernels
/// as the forward and each probability block is rebuilt from (m, l).
/// Scratch is O(attn_bkv · d) per task.
///
/// dQ is [nbatch, nq, d]; dK/dV are [nbatch, nkv, d]; all three are fully
/// overwritten.  One task owns one (batch × head) entry and consumes KV
/// blocks and query rows in fixed ascending order, so results are bitwise
/// identical across thread counts.  NaN/Inf poison exactly the gradient
/// entries the unfused reference backward (softmax_backward + matmuls)
/// poisons: a masked-out key (weight exactly 0) contributes nothing, while
/// a NaN Δ/P row poisons every gradient row it touches.
void attention_fused_backward(const float* Q, const float* K, const float* V,
                              const float* O, const float* dO,
                              const float* stats, float* dQ, float* dK,
                              float* dV, int64_t nbatch, int64_t nq,
                              int64_t nkv, int64_t d, float scale,
                              const float* mask,
                              const std::vector<int64_t>& mask_off);

// ---------------------------------------------------------------------------
// Row-wise fused ops (softmax / layer norm); parallel over rows.
// ---------------------------------------------------------------------------

/// y[r,:] = softmax(x[r,:]).  Lane-strided max/sum reductions and the same
/// branch-free polynomial expf as the fused attention path (the exp loop
/// vectorizes; libm expf kept this kernel scalar).  Reduction association
/// is fixed at compile time, so rows are bitwise identical across hosts
/// and thread counts; NaN/±inf rows poison exactly as with libm expf.
void softmax_rows(const float* x, float* y, int64_t rows, int64_t cols);

/// gx = softmax backward from output y and upstream g.  The per-row
/// g·y dot uses the same fixed lane-strided association as softmax_rows
/// (the serial dependence chain kept this kernel scalar), so rows are
/// bitwise identical across hosts and thread counts.
void softmax_backward_rows(const float* g, const float* y, float* gx,
                           int64_t rows, int64_t cols);

/// Layer norm over rows; writes normalized activations to `y`, and the
/// backward stash `xhat` (normalized pre-affine) and `invstd` per row —
/// both optional: pass nullptr (inference does) and the stash stores are
/// redirected into one L1-resident workspace row, eliminating a
/// numel-sized stream while keeping the *same* inner loop as the stashed
/// path (so a checkpoint region's no-grad initial pass stays bitwise
/// identical to its recompute under any FMA-contraction choice).
/// Single pass over x per row (sum + sum-of-squares in double).
void layer_norm_rows(const float* x, const float* gamma, const float* beta,
                     float* y, float* xhat, float* invstd, int64_t rows,
                     int64_t cols, float eps);

/// Layer norm backward.  `gx` is [rows, cols]; `ggamma`/`gbeta` are [cols]
/// and must be zero-initialized (column reductions are accumulated rowwise
/// in a fixed order).  The per-row mean(dxhat) / mean(dxhat·xhat)
/// reductions accumulate in double over fixed lane strides (serial
/// dependence chains kept them scalar), so rows stay bitwise identical
/// across hosts and thread counts.
void layer_norm_backward_rows(const float* g, const float* gamma,
                              const float* xhat, const float* invstd,
                              float* gx, float* ggamma, float* gbeta,
                              int64_t rows, int64_t cols);

// ---------------------------------------------------------------------------
// Data movement
// ---------------------------------------------------------------------------

/// dst[b][j][i] = src[b][i][j] for each of `nbatch` row-major [rows, cols]
/// matrices — the dominant `transpose_last`/`permute` case.  Blocked tile
/// copy, parallel over batches and row tiles.
void transpose_last2(const float* src, float* dst, int64_t nbatch,
                     int64_t rows, int64_t cols);

/// Generic permute gather: out[k] = src[offset(coords_of(k))] where
/// offsets follow `gather_strides` over `out_shape`.  Incremental odometer
/// (no per-element stride dot product), parallel over leading chunks.
void permute_gather(const float* src, float* dst, const Shape& out_shape,
                    const Shape& gather_strides);

// ---------------------------------------------------------------------------
// Elementwise
// ---------------------------------------------------------------------------

enum class BinOp { kAdd, kSub, kMul, kDiv };

/// out[i] = a[i] op b[i] over `n` contiguous elements, parallel.
void binary_same(BinOp op, const float* a, const float* b, float* out,
                 int64_t n);

/// Broadcast binary op: `sa`/`sb` are broadcast strides of a/b over
/// `out_shape` (0 on broadcast axes).  Incremental offsets; the inner
/// (last-axis) loop is specialized for contiguous/broadcast operands.
void binary_broadcast(BinOp op, const float* a, const float* b, float* out,
                      const Shape& out_shape, const Shape& sa,
                      const Shape& sb);

/// out[i] = fn(x[i]) in parallel chunks; `cost` is a relative per-element
/// cost hint (1 = cheap arithmetic, larger for transcendentals).
void map(const float* x, float* out, int64_t n, int64_t cost,
         const std::function<void(const float*, float*, int64_t)>& fn);

}  // namespace coastal::tensor::kernels
