#include "tensor/storage.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <mutex>

#include "util/check.hpp"

namespace coastal::tensor {

// ---------------------------------------------------------------------------
// Accounting
// ---------------------------------------------------------------------------

namespace {

std::atomic<uint64_t> g_current_bytes{0};
std::atomic<uint64_t> g_peak_bytes{0};
std::atomic<uint64_t> g_total_allocs{0};
std::atomic<uint64_t> g_pool_hits{0};
std::atomic<uint64_t> g_pool_misses{0};
std::atomic<uint64_t> g_arena_allocs{0};

/// Charges `bytes` of *live* storage (liveness accounting — independent of
/// which backing served it, so Table II peak numbers mean what they always
/// meant).
void note_live(uint64_t bytes) {
  const uint64_t cur = g_current_bytes.fetch_add(bytes) + bytes;
  uint64_t peak = g_peak_bytes.load();
  while (cur > peak && !g_peak_bytes.compare_exchange_weak(peak, cur)) {
  }
}

void note_dead(uint64_t bytes) { g_current_bytes.fetch_sub(bytes); }

}  // namespace

AllocStats alloc_stats() {
  return {g_current_bytes.load(), g_peak_bytes.load(),  g_total_allocs.load(),
          g_pool_hits.load(),     g_pool_misses.load(), g_arena_allocs.load()};
}

void reset_peak_bytes() { g_peak_bytes.store(g_current_bytes.load()); }

// ---------------------------------------------------------------------------
// Size-bucketed free-list pool
// ---------------------------------------------------------------------------

namespace {

/// Buckets are powers of two from 64 floats (256 B — below that the
/// bucket header overhead of a general allocator is comparable anyway) up
/// to 16 Mi floats (64 MB).  Requests above the cap go straight to the
/// heap per call: at that size mmap/munmap is the right tool and caching
/// one-off giants would pin arbitrary RSS.
constexpr int64_t kMinBucketFloats = 64;
constexpr int kNumBuckets = 19;  // 64 << 18 = 16 Mi floats = 64 MB
constexpr int64_t kMaxPooledFloats = kMinBucketFloats << (kNumBuckets - 1);

int bucket_for(int64_t n) {
  int64_t cap = kMinBucketFloats;
  int b = 0;
  while (cap < n) {
    cap <<= 1;
    ++b;
  }
  return b;
}

int64_t bucket_floats(int bucket) { return kMinBucketFloats << bucket; }

/// All pool/heap blocks are 64-byte (cache-line) aligned: plain
/// `new float[]` only guarantees 16 bytes, which would quietly break the
/// arena's 64-byte bump padding and pessimize vectorized kernels that
/// straddle lines.  Frees must go through free_block (aligned delete).
float* alloc_block(int64_t nfloats) {
  return static_cast<float*>(::operator new(
      static_cast<size_t>(nfloats) * sizeof(float), std::align_val_t{64}));
}

void free_block(float* ptr) {
  ::operator delete(ptr, std::align_val_t{64});
}

struct Pool {
  std::mutex mu;
  std::vector<float*> free_lists[kNumBuckets];
  uint64_t cached_bytes = 0;
  std::atomic<bool> enabled;

  Pool() {
    const char* env = std::getenv("COASTAL_DISABLE_POOL");
    enabled = env == nullptr || env[0] == '\0' ||
              (env[0] == '0' && env[1] == '\0');
  }
};

Pool& pool() {
  static Pool* p = new Pool();  // leaked: storages may outlive main()
  return *p;
}

/// Acquires a block of at least `n` floats.  Returns the block and its
/// bucket index (-1 for a direct heap block above the pool cap).
float* pool_acquire(int64_t n, int32_t* bucket_out) {
  Pool& p = pool();
  if (n <= kMaxPooledFloats) {
    const int b = bucket_for(n);
    {
      std::lock_guard<std::mutex> lock(p.mu);
      auto& list = p.free_lists[b];
      if (!list.empty()) {
        float* ptr = list.back();
        list.pop_back();
        p.cached_bytes -=
            static_cast<uint64_t>(bucket_floats(b)) * sizeof(float);
        g_pool_hits.fetch_add(1, std::memory_order_relaxed);
        *bucket_out = b;
        return ptr;
      }
    }
    g_pool_misses.fetch_add(1, std::memory_order_relaxed);
    g_total_allocs.fetch_add(1, std::memory_order_relaxed);
    *bucket_out = b;
    return alloc_block(bucket_floats(b));
  }
  g_pool_misses.fetch_add(1, std::memory_order_relaxed);
  g_total_allocs.fetch_add(1, std::memory_order_relaxed);
  *bucket_out = -1;
  return alloc_block(n);
}

void pool_release(float* ptr, int32_t bucket) {
  if (bucket < 0) {
    free_block(ptr);
    return;
  }
  Pool& p = pool();
  if (p.enabled.load(std::memory_order_relaxed)) {
    std::lock_guard<std::mutex> lock(p.mu);
    p.free_lists[bucket].push_back(ptr);
    p.cached_bytes +=
        static_cast<uint64_t>(bucket_floats(bucket)) * sizeof(float);
    return;
  }
  free_block(ptr);
}

}  // namespace

bool pool_enabled() {
  return pool().enabled.load(std::memory_order_relaxed);
}

void set_pool_enabled(bool enabled) {
  pool().enabled.store(enabled, std::memory_order_relaxed);
}

void pool_trim() {
  Pool& p = pool();
  std::lock_guard<std::mutex> lock(p.mu);
  for (auto& list : p.free_lists) {
    for (float* ptr : list) free_block(ptr);
    list.clear();
  }
  p.cached_bytes = 0;
}

uint64_t pool_cached_bytes() {
  Pool& p = pool();
  std::lock_guard<std::mutex> lock(p.mu);
  return p.cached_bytes;
}

// ---------------------------------------------------------------------------
// Arena
// ---------------------------------------------------------------------------

namespace detail {

struct ArenaState {
  struct Chunk {
    float* ptr;
    int32_t bucket;  ///< pool bucket, or -1 for a direct heap chunk
    int64_t cap;     ///< usable floats
  };
  std::vector<Chunk> chunks;
  int64_t used = 0;           ///< floats consumed in the active (last) chunk
  int64_t chunk_floats = 0;   ///< default chunk size
  int64_t served_floats = 0;  ///< total floats bump-served (diagnostics)
  std::atomic<int64_t> live{0};  ///< arena-backed storages still alive

  ~ArenaState() {
    for (const Chunk& c : chunks) pool_release(c.ptr, c.bucket);
  }

  /// Bump-allocates `n` floats, 64-byte aligned, opening a new pooled
  /// chunk when the active one is exhausted.
  float* bump(int64_t n) {
    constexpr int64_t kAlignFloats = 16;  // 64-byte lines
    const int64_t need = (n + kAlignFloats - 1) / kAlignFloats * kAlignFloats;
    if (chunks.empty() || used + need > chunks.back().cap) {
      const int64_t want = std::max(chunk_floats, need);
      Chunk c;
      c.ptr = pool_acquire(want, &c.bucket);
      c.cap = c.bucket >= 0 ? bucket_floats(c.bucket) : want;
      chunks.push_back(c);
      used = 0;
    }
    float* ptr = chunks.back().ptr + used;
    used += need;
    served_floats += need;
    return ptr;
  }
};

}  // namespace detail

namespace {

/// Active-arena stack of the calling thread (innermost scope last).
thread_local std::vector<std::shared_ptr<detail::ArenaState>> t_arena_stack;

int64_t default_arena_chunk_floats() {
  static const int64_t v = [] {
    constexpr int64_t kDefault = int64_t{8} << 20;  // 8 MB
    const char* env = std::getenv("COASTAL_ARENA_CHUNK_MB");
    if (env != nullptr && env[0] != '\0') {
      const long long mb = std::atoll(env);
      if (mb > 0) return (static_cast<int64_t>(mb) << 20) / 4;
    }
    return kDefault / 4;
  }();
  return v;
}

}  // namespace

ArenaScope::ArenaScope(int64_t chunk_bytes) {
  if (!pool_enabled()) return;  // debugging mode: every alloc is real
  state_ = std::make_shared<detail::ArenaState>();
  state_->chunk_floats = chunk_bytes > 0
                             ? std::max<int64_t>(1, chunk_bytes / 4)
                             : default_arena_chunk_floats();
  t_arena_stack.push_back(state_);
}

ArenaScope::~ArenaScope() noexcept(false) {
  if (!state_) return;
  // Unregister from the thread's stack FIRST — even on the error paths
  // below — so the stack can never point at a destroyed scope and one
  // misuse cannot cascade into failures in unrelated, correctly nested
  // scopes (or into bump allocations landing in a dead arena).
  const std::shared_ptr<detail::ArenaState> state = std::move(state_);
  const bool lifo = !t_arena_stack.empty() && t_arena_stack.back() == state;
  if (lifo) {
    t_arena_stack.pop_back();
  } else {
    const auto it =
        std::find(t_arena_stack.begin(), t_arena_stack.end(), state);
    if (it != t_arena_stack.end()) t_arena_stack.erase(it);
  }
  const int64_t live = state->live.load();
  // Escaped tensors keep the state (and thus the chunks — their memory
  // stays valid until they die) alive through their own references; our
  // `state` copy dies on every path out of here.  Throwing during
  // another exception's unwind would terminate, so degrade to stderr.
  const bool can_throw = std::uncaught_exceptions() == 0;
  if (!lifo) {
    COASTAL_CHECK_MSG(!can_throw,
                      "ArenaScope destroyed out of LIFO order (scopes "
                      "must nest on one thread)");
    std::fprintf(stderr,
                 "coastal: ArenaScope destroyed out of LIFO order "
                 "(suppressed during unwind)\n");
    return;
  }
  if (live != 0) {
    COASTAL_CHECK_MSG(!can_throw, live << " tensor(s) outlived their "
                                          "ArenaScope — arena-backed "
                                          "activations must die before "
                                          "the scope exits");
    std::fprintf(stderr,
                 "coastal: %lld tensor(s) outlived their ArenaScope "
                 "(suppressed during unwind)\n",
                 static_cast<long long>(live));
  }
}

bool ArenaScope::active() { return !t_arena_stack.empty(); }

int64_t ArenaScope::allocated_bytes() const {
  return state_ ? state_->served_floats * 4 : 0;
}

// ---------------------------------------------------------------------------
// Storage
// ---------------------------------------------------------------------------

void Storage::move_from(Storage& o) noexcept {
  ptr_ = o.ptr_;
  size_ = o.size_;
  backing_ = o.backing_;
  bucket_ = o.bucket_;
  vec_ = std::move(o.vec_);
  arena_ = std::move(o.arena_);
  o.ptr_ = nullptr;
  o.size_ = 0;
  o.backing_ = Backing::kNull;
  o.bucket_ = -1;
}

void Storage::release() {
  if (backing_ == Backing::kNull) return;
  note_dead(static_cast<uint64_t>(size_) * sizeof(float));
  switch (backing_) {
    case Backing::kPool:
      pool_release(ptr_, bucket_);
      break;
    case Backing::kHeap:
      free_block(ptr_);
      break;
    case Backing::kArena:
      arena_->live.fetch_sub(1);
      arena_.reset();
      break;
    case Backing::kVector:
      vec_ = std::vector<float>();
      break;
    case Backing::kNull:
      break;
  }
  ptr_ = nullptr;
  size_ = 0;
  backing_ = Backing::kNull;
  bucket_ = -1;
}

Storage Storage::uninit(int64_t n) {
  Storage s;
  if (n <= 0) return s;
  s.size_ = n;
  if (!pool_enabled()) {
    s.ptr_ = alloc_block(n);
    s.backing_ = Backing::kHeap;
    g_total_allocs.fetch_add(1, std::memory_order_relaxed);
  } else if (!t_arena_stack.empty()) {
    auto& state = t_arena_stack.back();
    s.ptr_ = state->bump(n);
    s.backing_ = Backing::kArena;
    s.arena_ = state;
    state->live.fetch_add(1);
    g_arena_allocs.fetch_add(1, std::memory_order_relaxed);
  } else {
    s.ptr_ = pool_acquire(n, &s.bucket_);
    s.backing_ = Backing::kPool;
  }
  note_live(static_cast<uint64_t>(n) * sizeof(float));
  return s;
}

Storage Storage::zeros(int64_t n) {
  Storage s = uninit(n);
  if (s.ptr_ != nullptr)
    std::memset(s.ptr_, 0, static_cast<size_t>(n) * sizeof(float));
  return s;
}

Storage Storage::full(int64_t n, float value) {
  Storage s = uninit(n);
  std::fill(s.begin(), s.end(), value);
  return s;
}

Storage Storage::copy_of(const float* src, int64_t n) {
  Storage s = uninit(n);
  if (n > 0)
    std::memcpy(s.ptr_, src, static_cast<size_t>(n) * sizeof(float));
  return s;
}

Storage Storage::adopt(std::vector<float> v) {
  Storage s;
  s.vec_ = std::move(v);
  s.ptr_ = s.vec_.data();
  s.size_ = static_cast<int64_t>(s.vec_.size());
  s.backing_ = s.size_ > 0 ? Backing::kVector : Backing::kNull;
  if (s.size_ > 0) {
    // The vector's buffer was a real heap allocation entering the tensor
    // system — count it like the pre-pool accounting did.
    g_total_allocs.fetch_add(1, std::memory_order_relaxed);
    note_live(static_cast<uint64_t>(s.size_) * sizeof(float));
  }
  return s;
}

// ---------------------------------------------------------------------------
// Workspace
// ---------------------------------------------------------------------------

size_t Workspace::bytes() const {
  const size_t f =
      gemm_apack.capacity() + gemm_bpack.capacity() + attn_kt.capacity() +
      attn_scores.capacity() + attn_stat.capacity() + attn_bwd_kt.capacity() +
      attn_bwd_vt.capacity() + attn_bwd_p.capacity() + attn_bwd_dp.capacity() +
      attn_bwd_delta.capacity() + ln_stash_row.capacity();
  const size_t i =
      off_a.capacity() + off_b.capacity() + mask_off.capacity();
  return f * sizeof(float) + i * sizeof(int64_t);
}

void Workspace::release() { *this = Workspace(); }

Workspace& workspace() {
  thread_local Workspace ws;
  return ws;
}

}  // namespace coastal::tensor
