#include "core/rollout.hpp"

#include <algorithm>
#include <limits>

#include "core/decode.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/fault.hpp"

namespace coastal::core {

namespace {
void poison_fields(data::CenterFields& f) {
  const float nan = std::numeric_limits<float>::quiet_NaN();
  // Poison every element (not a sample) so wet cells are guaranteed hit
  // regardless of the grid's land mask.
  std::fill(f.u.begin(), f.u.end(), nan);
  std::fill(f.v.begin(), f.v.end(), nan);
  std::fill(f.w.begin(), f.w.end(), nan);
  std::fill(f.zeta.begin(), f.zeta.end(), nan);
}
}  // namespace

std::vector<data::CenterFields> forecast_episode(
    SurrogateModel& model, const data::SampleSpec& spec,
    const data::Normalizer& norm,
    std::span<const data::CenterFields> window,
    const data::CenterFields* ic_normalized,
    const CancelHook* cancel) {
  COASTAL_CHECK_MSG(window.size() == static_cast<size_t>(spec.T) + 1,
                    "forecast_episode needs T+1 = " << spec.T + 1
                                                    << " frames, got "
                                                    << window.size());
  if (cancel && *cancel) (*cancel)();
  // Capture the action before the forward: a `throw` aborts the episode
  // here (the cheap point), a `nan` poisons the decoded output below —
  // modeling a surrogate that silently produced garbage.
  const util::FaultAction fa = COASTAL_FAULT_POINT("rollout.step");
  data::Sample sample = [&] {
    obs::ScopedStage stage(obs::Stage::kPack);
    obs::ScopedSpan span("pack");
    data::Sample s = make_sample(spec, window);
    if (ic_normalized) overwrite_initial_condition(spec, s, *ic_normalized);
    return s;
  }();
  SurrogateOutput out = [&] {
    obs::ScopedStage stage(obs::Stage::kForward);
    obs::ScopedSpan span("model.forward");
    return model.forward_sample(sample, false);
  }();
  auto frames = [&] {
    obs::ScopedStage stage(obs::Stage::kDecode);
    return decode_prediction(spec, out, norm);
  }();
  if (fa == util::FaultAction::kNan && !frames.empty()) {
    poison_fields(frames.front());
  }
  return frames;
}

std::vector<data::CenterFields> rollout(
    SurrogateModel& model, const data::SampleSpec& spec,
    const data::Normalizer& norm,
    std::span<const data::CenterFields> truth, int episodes) {
  const int T = spec.T;
  COASTAL_CHECK_MSG(
      truth.size() >= static_cast<size_t>(episodes * T + 1),
      "rollout needs " << episodes * T + 1 << " frames, got " << truth.size());
  model.set_training(false);
  tensor::NoGradGuard ng;
  auto predictions = resume_rollout(
      model, spec, norm, truth.first(static_cast<size_t>(episodes * T) + 1),
      episodes, /*start_episode=*/0, /*resume_ic=*/nullptr);
  model.set_training(true);
  return predictions;
}

std::vector<data::CenterFields> resume_rollout(
    SurrogateModel& model, const data::SampleSpec& spec,
    const data::Normalizer& norm,
    std::span<const data::CenterFields> window_normalized, int episodes,
    int start_episode, const data::CenterFields* resume_ic,
    const CancelHook* cancel) {
  const int T = spec.T;
  COASTAL_CHECK_MSG(
      window_normalized.size() >= static_cast<size_t>(episodes * T + 1),
      "resume_rollout needs " << episodes * T + 1 << " frames, got "
                              << window_normalized.size());
  COASTAL_CHECK_MSG(start_episode >= 0 && start_episode < episodes,
                    "start_episode " << start_episode << " outside [0, "
                                     << episodes << ")");
  COASTAL_CHECK_MSG((start_episode == 0) == (resume_ic == nullptr),
                    "resume_ic seeds exactly the start_episode > 0 resumes");

  std::vector<data::CenterFields> predictions;
  predictions.reserve(static_cast<size_t>((episodes - start_episode) * T));
  data::CenterFields ic_normalized;  // replaces the window IC after episode 0
  if (resume_ic) ic_normalized = data::normalized_copy(*resume_ic, norm);

  for (int e = start_episode; e < episodes; ++e) {
    // All episode activations (sample tensors, the forward graph-free
    // intermediates, the decoded output tensors) bump-allocate from one
    // arena and release in bulk here — steady-state episodes perform zero
    // per-op heap allocations.  Everything that outlives the episode
    // (CenterFields frames) is plain vector data, not tensors.
    tensor::ArenaScope arena;
    std::span<const data::CenterFields> window = window_normalized.subspan(
        static_cast<size_t>(e * T), static_cast<size_t>(T) + 1);
    auto frames = forecast_episode(model, spec, norm, window,
                                   e > 0 ? &ic_normalized : nullptr, cancel);
    ic_normalized = data::normalized_copy(frames.back(), norm);
    for (auto& f : frames) predictions.push_back(std::move(f));
  }
  return predictions;
}

std::vector<data::CenterFields> dual_rollout(
    SurrogateModel& coarse_model, SurrogateModel& fine_model,
    const data::SampleSpec& coarse_spec, const data::SampleSpec& fine_spec,
    const data::Normalizer& norm,
    std::span<const data::CenterFields> coarse_truth,
    std::span<const data::CenterFields> fine_truth, int coarse_episodes) {
  const int Tc = coarse_spec.T;
  const int Tf = fine_spec.T;
  const int coarse_steps = coarse_episodes * Tc;
  COASTAL_CHECK(fine_truth.size() >=
                static_cast<size_t>(coarse_steps * Tf + 1));

  // Stage 1: coarse horizon.
  auto coarse_frames =
      rollout(coarse_model, coarse_spec, norm, coarse_truth, coarse_episodes);

  fine_model.set_training(false);
  tensor::NoGradGuard ng;

  // Stage 2: each coarse frame (or the true IC for the first segment)
  // seeds one fine episode.
  std::vector<data::CenterFields> out;
  out.reserve(static_cast<size_t>(coarse_steps * Tf));
  for (int c = 0; c < coarse_steps; ++c) {
    tensor::ArenaScope arena;  // bulk-release this fine episode's tensors
    std::span<const data::CenterFields> window = fine_truth.subspan(
        static_cast<size_t>(c * Tf), static_cast<size_t>(Tf) + 1);
    data::CenterFields ic;
    if (c > 0) {
      ic = coarse_frames[static_cast<size_t>(c - 1)];
      norm.normalize_fields(ic);
    }
    for (auto& f : forecast_episode(fine_model, fine_spec, norm, window,
                                    c > 0 ? &ic : nullptr))
      out.push_back(std::move(f));
  }
  fine_model.set_training(true);
  return out;
}

}  // namespace coastal::core
