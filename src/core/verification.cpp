#include "core/verification.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace coastal::core {

namespace {

/// Depth-average a layered field at one cell with the grid's sigma
/// thicknesses.
double depth_average(const ocean::Grid& grid, const data::CenterFields& f,
                     const std::vector<float>& layered, int iy, int ix) {
  double avg = 0.0;
  for (int k = 0; k < f.nz; ++k)
    avg += layered[f.cell3(k, iy, ix)] *
           grid.sigma_thickness()[static_cast<size_t>(k)];
  return avg;
}

}  // namespace

VerificationResult MassVerifier::check_pair(const data::CenterFields& a,
                                            const data::CenterFields& b,
                                            double dt_seconds) const {
  COASTAL_CHECK(a.nx == grid_.nx() && a.ny == grid_.ny());
  COASTAL_CHECK(b.nx == grid_.nx() && b.ny == grid_.ny());
  COASTAL_CHECK(dt_seconds > 0);

  double sum = 0.0, worst = 0.0;
  size_t count = 0;
  const int nx = grid_.nx(), ny = grid_.ny();

  // Face transport from cell-centered values: average the two adjacent
  // centers (both depth and velocity), zero across land and domain edges
  // except the open west boundary where the one-sided value is used.
  auto ucell = [&](int ix, int iy) {
    return depth_average(grid_, b, b.u, iy, ix);
  };
  auto vcell = [&](int ix, int iy) {
    return depth_average(grid_, b, b.v, iy, ix);
  };
  auto depth = [&](int ix, int iy) {
    return grid_.h(ix, iy) + b.zeta[b.cell2(iy, ix)];
  };

  for (int iy = 0; iy < ny; ++iy) {
    for (int ix = 0; ix < nx; ++ix) {
      if (!grid_.wet(ix, iy)) continue;

      auto flux_x = [&](int face) -> double {  // positive eastward
        if (face == 0) {
          // Open boundary: one-sided.
          return grid_.wet(0, iy) ? depth(0, iy) * ucell(0, iy) : 0.0;
        }
        if (face == nx) return 0.0;
        if (!grid_.wet(face - 1, iy) || !grid_.wet(face, iy)) return 0.0;
        return 0.5 * (depth(face - 1, iy) + depth(face, iy)) * 0.5 *
               (ucell(face - 1, iy) + ucell(face, iy));
      };
      auto flux_y = [&](int face) -> double {
        if (face == 0 || face == ny) return 0.0;
        if (!grid_.wet(ix, face - 1) || !grid_.wet(ix, face)) return 0.0;
        return 0.5 * (depth(ix, face - 1) + depth(ix, face)) * 0.5 *
               (vcell(ix, face - 1) + vcell(ix, face));
      };

      const double div = (flux_x(ix + 1) - flux_x(ix)) / grid_.dx(ix) +
                         (flux_y(iy + 1) - flux_y(iy)) / grid_.dy(iy);
      const double dzdt =
          (b.zeta[b.cell2(iy, ix)] - a.zeta[a.cell2(iy, ix)]) / dt_seconds;
      const double residual = std::abs(dzdt + div);
      sum += residual;
      worst = std::max(worst, residual);
      ++count;
    }
  }

  VerificationResult r;
  r.mean_residual = count ? sum / static_cast<double>(count) : 0.0;
  r.max_residual = worst;
  r.pass = r.mean_residual < threshold_;
  return r;
}

VerificationResult MassVerifier::check_sequence(
    std::span<const data::CenterFields> frames, double dt_seconds) const {
  COASTAL_CHECK_MSG(frames.size() >= 2, "need at least two frames");
  VerificationResult agg;
  agg.pass = true;
  double sum = 0.0;
  for (size_t i = 0; i + 1 < frames.size(); ++i) {
    const auto r = check_pair(frames[i], frames[i + 1], dt_seconds);
    sum += r.mean_residual;
    agg.max_residual = std::max(agg.max_residual, r.max_residual);
    agg.pass = agg.pass && r.pass;
  }
  agg.mean_residual = sum / static_cast<double>(frames.size() - 1);
  return agg;
}

}  // namespace coastal::core
