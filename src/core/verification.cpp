#include "core/verification.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace coastal::core {

namespace {

/// cell_residual accessor over whole-domain frames (global == local
/// indexing).
struct FrameAccessor {
  const data::CenterFields& a;
  const data::CenterFields& b;
  int nz() const { return b.nz; }
  float u(int k, int ix, int iy) const { return b.u[b.cell3(k, iy, ix)]; }
  float v(int k, int ix, int iy) const { return b.v[b.cell3(k, iy, ix)]; }
  float zeta(int ix, int iy) const { return b.zeta[b.cell2(iy, ix)]; }
  float zeta_prev(int ix, int iy) const { return a.zeta[a.cell2(iy, ix)]; }
};

}  // namespace

VerificationResult MassVerifier::check_pair(const data::CenterFields& a,
                                            const data::CenterFields& b,
                                            double dt_seconds) const {
  COASTAL_CHECK(a.nx == grid_.nx() && a.ny == grid_.ny());
  COASTAL_CHECK(b.nx == grid_.nx() && b.ny == grid_.ny());
  COASTAL_CHECK(dt_seconds > 0);

  double sum = 0.0, worst = 0.0;
  size_t count = 0;
  const FrameAccessor f{a, b};
  for (int iy = 0; iy < grid_.ny(); ++iy) {
    for (int ix = 0; ix < grid_.nx(); ++ix) {
      if (!grid_.wet(ix, iy)) continue;
      const double residual = cell_residual(grid_, f, ix, iy, dt_seconds);
      sum += residual;
      worst = std::max(worst, residual);
      ++count;
    }
  }

  VerificationResult r;
  r.mean_residual = count ? sum / static_cast<double>(count) : 0.0;
  r.max_residual = worst;
  r.pass = r.mean_residual < threshold_;
  r.pair_sum = r.mean_residual;
  r.pairs = 1;
  return r;
}

VerificationResult MassVerifier::check_sequence(
    std::span<const data::CenterFields> frames, double dt_seconds) const {
  COASTAL_CHECK_MSG(frames.size() >= 2, "need at least two frames");
  VerificationResult empty;
  empty.pass = true;
  return extend_sequence(empty, frames.front(), frames.subspan(1),
                         dt_seconds);
}

VerificationResult MassVerifier::extend_sequence(
    const VerificationResult& base, const data::CenterFields& seed,
    std::span<const data::CenterFields> frames, double dt_seconds) const {
  VerificationResult agg = base;
  const data::CenterFields* prev = &seed;
  for (const auto& f : frames) {
    const auto r = check_pair(*prev, f, dt_seconds);
    agg.pair_sum += r.mean_residual;
    agg.max_residual = std::max(agg.max_residual, r.max_residual);
    agg.pass = agg.pass && r.pass;
    ++agg.pairs;
    prev = &f;
  }
  agg.mean_residual =
      agg.pairs ? agg.pair_sum / static_cast<double>(agg.pairs) : 0.0;
  return agg;
}

}  // namespace coastal::core
