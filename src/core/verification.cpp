#include "core/verification.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace coastal::core {

namespace {

/// cell_residual accessor over whole-domain frames (global == local
/// indexing).
struct FrameAccessor {
  const data::CenterFields& a;
  const data::CenterFields& b;
  int nz() const { return b.nz; }
  float u(int k, int ix, int iy) const { return b.u[b.cell3(k, iy, ix)]; }
  float v(int k, int ix, int iy) const { return b.v[b.cell3(k, iy, ix)]; }
  float zeta(int ix, int iy) const { return b.zeta[b.cell2(iy, ix)]; }
  float zeta_prev(int ix, int iy) const { return a.zeta[a.cell2(iy, ix)]; }
};

}  // namespace

VerificationResult MassVerifier::check_pair(const data::CenterFields& a,
                                            const data::CenterFields& b,
                                            double dt_seconds) const {
  COASTAL_CHECK(a.nx == grid_.nx() && a.ny == grid_.ny());
  COASTAL_CHECK(b.nx == grid_.nx() && b.ny == grid_.ny());
  COASTAL_CHECK(dt_seconds > 0);

  double sum = 0.0, worst = 0.0;
  size_t count = 0;
  const FrameAccessor f{a, b};
  for (int iy = 0; iy < grid_.ny(); ++iy) {
    for (int ix = 0; ix < grid_.nx(); ++ix) {
      if (!grid_.wet(ix, iy)) continue;
      const double residual = cell_residual(grid_, f, ix, iy, dt_seconds);
      sum += residual;
      worst = std::max(worst, residual);
      ++count;
    }
  }

  VerificationResult r;
  r.mean_residual = count ? sum / static_cast<double>(count) : 0.0;
  r.max_residual = worst;
  r.pass = r.mean_residual < threshold_;
  return r;
}

VerificationResult MassVerifier::check_sequence(
    std::span<const data::CenterFields> frames, double dt_seconds) const {
  COASTAL_CHECK_MSG(frames.size() >= 2, "need at least two frames");
  VerificationResult agg;
  agg.pass = true;
  double sum = 0.0;
  for (size_t i = 0; i + 1 < frames.size(); ++i) {
    const auto r = check_pair(frames[i], frames[i + 1], dt_seconds);
    sum += r.mean_residual;
    agg.max_residual = std::max(agg.max_residual, r.max_residual);
    agg.pass = agg.pass && r.pass;
  }
  agg.mean_residual = sum / static_cast<double>(frames.size() - 1);
  return agg;
}

}  // namespace coastal::core
