#pragma once

/// \file verification.hpp
/// Physics-based result verification (Sec. III-E).
///
/// The conservation of water mass (Eq. 4) requires the rate of change of
/// column volume to equal the net flux through the column walls:
///   d/dt [ (h + zeta) * A ] = sum_faces (h + zeta)_face * u_face . n * L
/// The residual (Eq. 5), normalized per unit area so its unit is m/s, is
/// computed per wet cell from two consecutive snapshots; a forecast passes
/// when the mean residual is below the threshold.  Oceanographers accept
/// residuals below ~5e-4 m/s at the paper's scale; thresholds here are in
/// the same unit and swept by the Fig. 7/8 benches.

#include <span>

#include "data/center_fields.hpp"
#include "data/normalization.hpp"
#include "ocean/grid.hpp"

namespace coastal::core {

struct VerificationResult {
  double mean_residual = 0.0;  ///< m/s, averaged over wet cells
  double max_residual = 0.0;
  bool pass = false;
};

class MassVerifier {
 public:
  MassVerifier(const ocean::Grid& grid, double threshold_ms)
      : grid_(grid), threshold_(threshold_ms) {}

  double threshold() const { return threshold_; }

  /// Residual between consecutive cell-centered snapshots `a` (t) and `b`
  /// (t + dt).  Velocities are depth-averaged from the sigma layers of `b`.
  VerificationResult check_pair(const data::CenterFields& a,
                                const data::CenterFields& b,
                                double dt_seconds) const;

  /// Verify a whole forecast episode: first frame is the initial
  /// condition.  Mean/max aggregate over all consecutive pairs; `pass`
  /// requires every pair's mean to beat the threshold.
  VerificationResult check_sequence(std::span<const data::CenterFields> frames,
                                    double dt_seconds) const;

 private:
  const ocean::Grid& grid_;
  double threshold_;
};

}  // namespace coastal::core
