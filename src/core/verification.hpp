#pragma once

/// \file verification.hpp
/// Physics-based result verification (Sec. III-E).
///
/// The conservation of water mass (Eq. 4) requires the rate of change of
/// column volume to equal the net flux through the column walls:
///   d/dt [ (h + zeta) * A ] = sum_faces (h + zeta)_face * u_face . n * L
/// The residual (Eq. 5), normalized per unit area so its unit is m/s, is
/// computed per wet cell from two consecutive snapshots; a forecast passes
/// when the mean residual is below the threshold.  Oceanographers accept
/// residuals below ~5e-4 m/s at the paper's scale; thresholds here are in
/// the same unit and swept by the Fig. 7/8 benches.

#include <cmath>
#include <span>

#include "data/center_fields.hpp"
#include "data/normalization.hpp"
#include "ocean/grid.hpp"

namespace coastal::core {

/// The per-cell water-mass residual |dζ/dt + ∇·(H ū)| of Eq. 5 at wet
/// cell (ix, iy), with field access indirected through `F`:
///   float u(int k, int ix, int iy), v(k, ix, iy)  — layered velocities
///   float zeta(int ix, int iy), zeta_prev(int ix, int iy)
///   int nz()
/// all by *global* grid indices.  The one stencil implementation is
/// shared by MassVerifier::check_pair (whole-domain frames) and the
/// sharded per-rank partials (halo-padded tiles, serve/shard.cpp), so
/// the serial and the allreduce-reduced verdicts can never drift.
/// Accessors return float on purpose: ζ differences and depth sums
/// promote exactly where the historic inline code promoted, keeping
/// results bit-for-bit.
template <class F>
double cell_residual(const ocean::Grid& grid, const F& f, int ix, int iy,
                     double dt_seconds) {
  const int nx = grid.nx(), ny = grid.ny();
  auto davg_u = [&](int cx, int cy) {
    double avg = 0.0;
    for (int k = 0; k < f.nz(); ++k)
      avg += f.u(k, cx, cy) * grid.sigma_thickness()[static_cast<size_t>(k)];
    return avg;
  };
  auto davg_v = [&](int cx, int cy) {
    double avg = 0.0;
    for (int k = 0; k < f.nz(); ++k)
      avg += f.v(k, cx, cy) * grid.sigma_thickness()[static_cast<size_t>(k)];
    return avg;
  };
  auto depth = [&](int cx, int cy) { return grid.h(cx, cy) + f.zeta(cx, cy); };

  // Face transport from cell-centered values: average the two adjacent
  // centers (both depth and velocity), zero across land and domain edges
  // except the open west boundary where the one-sided value is used.
  auto flux_x = [&](int face) -> double {  // positive eastward
    if (face == 0) {
      return grid.wet(0, iy) ? depth(0, iy) * davg_u(0, iy) : 0.0;
    }
    if (face == nx) return 0.0;
    if (!grid.wet(face - 1, iy) || !grid.wet(face, iy)) return 0.0;
    return 0.5 * (depth(face - 1, iy) + depth(face, iy)) * 0.5 *
           (davg_u(face - 1, iy) + davg_u(face, iy));
  };
  auto flux_y = [&](int face) -> double {
    if (face == 0 || face == ny) return 0.0;
    if (!grid.wet(ix, face - 1) || !grid.wet(ix, face)) return 0.0;
    return 0.5 * (depth(ix, face - 1) + depth(ix, face)) * 0.5 *
           (davg_v(ix, face - 1) + davg_v(ix, face));
  };

  const double div = (flux_x(ix + 1) - flux_x(ix)) / grid.dx(ix) +
                     (flux_y(iy + 1) - flux_y(iy)) / grid.dy(iy);
  const double dzdt = (f.zeta(ix, iy) - f.zeta_prev(ix, iy)) / dt_seconds;
  return std::abs(dzdt + div);
}

struct VerificationResult {
  double mean_residual = 0.0;  ///< m/s, averaged over wet cells
  double max_residual = 0.0;
  bool pass = false;
  /// The raw left-to-right accumulation behind mean_residual: the sum of
  /// per-pair mean residuals and the pair count.  Kept so a sequence
  /// verdict over frames [0, k] can later be *extended* over appended
  /// frames (extend_sequence) bitwise-identically to one longer pass —
  /// reconstructing the sum from the divided mean would reintroduce a
  /// rounding the single-pass fold never performs.
  double pair_sum = 0.0;
  int pairs = 0;
};

class MassVerifier {
 public:
  MassVerifier(const ocean::Grid& grid, double threshold_ms)
      : grid_(grid), threshold_(threshold_ms) {}

  double threshold() const { return threshold_; }

  /// Residual between consecutive cell-centered snapshots `a` (t) and `b`
  /// (t + dt).  Velocities are depth-averaged from the sigma layers of `b`.
  VerificationResult check_pair(const data::CenterFields& a,
                                const data::CenterFields& b,
                                double dt_seconds) const;

  /// Verify a whole forecast episode: first frame is the initial
  /// condition.  Mean/max aggregate over all consecutive pairs; `pass`
  /// requires every pair's mean to beat the threshold.
  VerificationResult check_sequence(std::span<const data::CenterFields> frames,
                                    double dt_seconds) const;

  /// Extend a sequence verdict across appended frames: fold the
  /// consecutive pairs of [seed, frames...] into `base` exactly as one
  /// longer check_sequence pass would — same left-to-right double sum,
  /// same max, same pass conjunction — so a cached prefix verdict plus a
  /// freshly computed suffix reproduces the full-chain verdict bitwise
  /// (the serve cache's prefix-resume verification).  `seed` is the last
  /// frame `base` covered; `base` must carry its pair_sum/pairs.
  VerificationResult extend_sequence(const VerificationResult& base,
                                     const data::CenterFields& seed,
                                     std::span<const data::CenterFields> frames,
                                     double dt_seconds) const;

 private:
  const ocean::Grid& grid_;
  double threshold_;
};

}  // namespace coastal::core
