#include "core/swin_block.hpp"

#include <sstream>

namespace coastal::core {

SwinBlock4d::SwinBlock4d(int64_t dim, int64_t heads, Window4d window,
                         bool shifted, util::Rng& rng, int64_t mlp_ratio)
    : dim_(dim), heads_(heads), window_(window), shifted_(shifted) {
  norm1_ = register_module<nn::LayerNorm>("norm1", dim);
  norm2_ = register_module<nn::LayerNorm>("norm2", dim);
  attn_ = register_module<nn::MultiHeadSelfAttention>("attn", dim, heads, rng);
  mlp_ = register_module<nn::Mlp>("mlp", dim, dim * mlp_ratio, rng);
}

Window4d SwinBlock4d::shift_for(const FeatureDims& d) const {
  if (!shifted_) return {0, 0, 0, 0};
  const std::array<int64_t, 4> sizes{d.H, d.W, d.D, d.T};
  Window4d s{};
  for (size_t a = 0; a < 4; ++a) {
    // Shifting is only meaningful when there are at least two windows on
    // the axis; otherwise the roll is an identity on window content.
    s[a] = (sizes[a] > window_[a]) ? window_[a] / 2 : 0;
  }
  return s;
}

const Tensor& SwinBlock4d::mask_for(const FeatureDims& d,
                                    const Window4d& shift) {
  const MaskKey key{d.H, d.W, d.D, d.T, shift[0], shift[1], shift[2],
                    shift[3]};
  auto it = mask_cache_.find(key);
  if (it == mask_cache_.end()) {
    it = mask_cache_.emplace(key, shifted_window_mask(d, window_, shift))
             .first;
  }
  return it->second;
}

Tensor SwinBlock4d::forward_impl(const Tensor& x) {
  const FeatureDims d = FeatureDims::of(x);
  check_window_divides(d, window_);
  const Window4d shift = shift_for(d);
  const bool any_shift =
      shift[0] != 0 || shift[1] != 0 || shift[2] != 0 || shift[3] != 0;

  // ---- attention branch: z_hat = (S)W-MSA(LN(z)) + z -------------------
  // LayerNorm acts on channels-last tokens; windowing produces that layout.
  // The window attention below streams through the fused flash-style
  // kernels in inference *and* training (N = window volume >= the fused
  // threshold) — the cached [groups, N, N] shifted-window mask feeds it as
  // a per-(batch × head) additive bias, the training graph holds only
  // [B·nW, heads, N] row statistics, and the [B·nW, heads, N, N] score /
  // dScore tensors are never materialized on either pass.  Checkpointed
  // training recomputes through the same fused path, so the saved block
  // output matches the recompute bitwise.
  Tensor shifted_x = any_shift ? cyclic_shift(x, shift) : x;
  Tensor tokens = window_partition(shifted_x, window_);  // [B*nW, N, C]
  Tensor normed = norm1_->forward(tokens);
  Tensor attended;
  if (any_shift) {
    attended = attn_->forward(normed, mask_for(d, shift));
  } else {
    attended = attn_->forward(normed);
  }
  Tensor attn_map = window_reverse(attended, d, window_);
  if (any_shift) attn_map = cyclic_unshift(attn_map, shift);
  Tensor z = x.add(attn_map);

  // ---- MLP branch: z = MLP(LN(z_hat)) + z_hat ---------------------------
  // Token layout again (windowing is unnecessary for a pointwise MLP; a
  // plain channels-last view suffices).
  Tensor zt = z.permute({0, 2, 3, 4, 5, 1});  // [B, H, W, D, T, C]
  Tensor mlp_out = mlp_->forward(norm2_->forward(zt));
  Tensor out = zt.add(mlp_out).permute({0, 5, 1, 2, 3, 4});
  return out;
}

Tensor SwinBlock4d::forward(const Tensor& x, bool use_checkpoint) {
  // Checkpointing only pays during training; nn::checkpoint itself no-ops
  // with autograd off, so this early-out only skips assembling the lambda
  // and the parameters() list for a wrapper that would do nothing.
  if (!use_checkpoint || !tensor::grad_enabled()) return forward_impl(x);
  return nn::checkpoint(
      [this](const std::vector<Tensor>& inputs) {
        return forward_impl(inputs[0]);
      },
      {x}, parameters());
}

SwinBlockPair4d::SwinBlockPair4d(int64_t dim, int64_t heads, Window4d window,
                                 util::Rng& rng) {
  wmsa_ = register_module<SwinBlock4d>("wmsa", dim, heads, window,
                                       /*shifted=*/false, rng);
  swmsa_ = register_module<SwinBlock4d>("swmsa", dim, heads, window,
                                        /*shifted=*/true, rng);
}

Tensor SwinBlockPair4d::forward(const Tensor& x, bool use_checkpoint) {
  return swmsa_->forward(wmsa_->forward(x, use_checkpoint), use_checkpoint);
}

}  // namespace coastal::core
