#include "core/window4d.hpp"

#include "util/check.hpp"

namespace coastal::core {

FeatureDims FeatureDims::of(const Tensor& x) {
  COASTAL_CHECK_MSG(x.ndim() == 6,
                    "expected [B,C,H,W,D,T], got " << tensor::shape_str(x.shape()));
  return {x.shape()[0], x.shape()[1], x.shape()[2],
          x.shape()[3], x.shape()[4], x.shape()[5]};
}

void check_window_divides(const FeatureDims& d, const Window4d& w) {
  COASTAL_CHECK_MSG(d.H % w[0] == 0 && d.W % w[1] == 0 && d.D % w[2] == 0 &&
                        d.T % w[3] == 0,
                    "window (" << w[0] << "," << w[1] << "," << w[2] << ","
                               << w[3] << ") does not divide feature dims ("
                               << d.H << "," << d.W << "," << d.D << ","
                               << d.T << ")");
}

Tensor window_partition(const Tensor& x, const Window4d& w) {
  const FeatureDims d = FeatureDims::of(x);
  check_window_divides(d, w);
  const int64_t nh = d.H / w[0], nw = d.W / w[1], nd = d.D / w[2],
                nt = d.T / w[3];
  // [B, C, nh, mh, nw, mw, nd, md, nt, mt]
  Tensor r = x.reshape({d.B, d.C, nh, w[0], nw, w[1], nd, w[2], nt, w[3]});
  // -> [B, nh, nw, nd, nt, mh, mw, md, mt, C]
  Tensor p = r.permute({0, 2, 4, 6, 8, 3, 5, 7, 9, 1});
  const int64_t nwin = nh * nw * nd * nt;
  const int64_t N = w[0] * w[1] * w[2] * w[3];
  return p.reshape({d.B * nwin, N, d.C});
}

Tensor window_reverse(const Tensor& tokens, const FeatureDims& d,
                      const Window4d& w) {
  const int64_t nh = d.H / w[0], nw = d.W / w[1], nd = d.D / w[2],
                nt = d.T / w[3];
  Tensor r = tokens.reshape({d.B, nh, nw, nd, nt, w[0], w[1], w[2], w[3], d.C});
  // inverse of {0, 2, 4, 6, 8, 3, 5, 7, 9, 1}: position of axis i of the
  // original layout in the permuted layout.
  Tensor p = r.permute({0, 9, 1, 5, 2, 6, 3, 7, 4, 8});
  return p.reshape({d.B, d.C, d.H, d.W, d.D, d.T});
}

Tensor cyclic_shift(const Tensor& x, const Window4d& shift) {
  Tensor out = x;
  for (int axis = 0; axis < 4; ++axis) {
    if (shift[static_cast<size_t>(axis)] != 0)
      out = out.roll(axis + 2, -shift[static_cast<size_t>(axis)]);
  }
  return out;
}

Tensor cyclic_unshift(const Tensor& x, const Window4d& shift) {
  Tensor out = x;
  for (int axis = 0; axis < 4; ++axis) {
    if (shift[static_cast<size_t>(axis)] != 0)
      out = out.roll(axis + 2, shift[static_cast<size_t>(axis)]);
  }
  return out;
}

Tensor shifted_window_mask(const FeatureDims& dims, const Window4d& w,
                           const Window4d& shift) {
  check_window_divides(dims, w);
  // Label every position of the (rolled) grid with its pre-shift region.
  // Along one axis with window m and shift s, the standard Swin regions
  // are [0, size-m), [size-m, size-s), [size-s, size): after rolling by
  // -s these land so that a window may straddle at most one region
  // boundary per axis.
  const std::array<int64_t, 4> sizes{dims.H, dims.W, dims.D, dims.T};
  std::array<std::vector<int>, 4> axis_label;
  for (size_t a = 0; a < 4; ++a) {
    axis_label[a].resize(static_cast<size_t>(sizes[a]));
    const int64_t m = w[a], s = shift[a];
    for (int64_t i = 0; i < sizes[a]; ++i) {
      // Standard Swin labelling, applied to *rolled* positions: the last
      // window mixes the rolled-in tail ([size-m, size-s)) with the
      // wrapped-around head ([size-s, size)); everything before it is one
      // contiguous region.
      int label = 0;
      if (s > 0) {
        if (i >= sizes[a] - m && i < sizes[a] - s) label = 1;
        else if (i >= sizes[a] - s) label = 2;
      }
      axis_label[a][static_cast<size_t>(i)] = label;
    }
  }

  const int64_t nh = dims.H / w[0], nw = dims.W / w[1], nd = dims.D / w[2],
                nt = dims.T / w[3];
  const int64_t nwin = nh * nw * nd * nt;
  const int64_t N = w[0] * w[1] * w[2] * w[3];

  // Region id per token of each window.
  std::vector<int> region(static_cast<size_t>(nwin * N));
  int64_t widx = 0;
  for (int64_t wh = 0; wh < nh; ++wh)
    for (int64_t ww = 0; ww < nw; ++ww)
      for (int64_t wd = 0; wd < nd; ++wd)
        for (int64_t wt = 0; wt < nt; ++wt, ++widx) {
          int64_t tok = 0;
          for (int64_t ih = 0; ih < w[0]; ++ih)
            for (int64_t iw = 0; iw < w[1]; ++iw)
              for (int64_t id = 0; id < w[2]; ++id)
                for (int64_t it = 0; it < w[3]; ++it, ++tok) {
                  const int lh = axis_label[0][static_cast<size_t>(wh * w[0] + ih)];
                  const int lw = axis_label[1][static_cast<size_t>(ww * w[1] + iw)];
                  const int ld = axis_label[2][static_cast<size_t>(wd * w[2] + id)];
                  const int lt = axis_label[3][static_cast<size_t>(wt * w[3] + it)];
                  region[static_cast<size_t>(widx * N + tok)] =
                      ((lh * 3 + lw) * 3 + ld) * 3 + lt;
                }
        }

  std::vector<float> mask(static_cast<size_t>(nwin * N * N), 0.0f);
  for (int64_t b = 0; b < nwin; ++b)
    for (int64_t i = 0; i < N; ++i)
      for (int64_t j = 0; j < N; ++j) {
        if (region[static_cast<size_t>(b * N + i)] !=
            region[static_cast<size_t>(b * N + j)])
          mask[static_cast<size_t>((b * N + i) * N + j)] = -1e9f;
      }
  return Tensor::from_vector({nwin, N, N}, std::move(mask));
}

}  // namespace coastal::core
