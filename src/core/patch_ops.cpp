#include "core/patch_ops.hpp"

namespace coastal::core {

Tensor fold_time(const Tensor& x) {
  const size_t nd = x.ndim();
  COASTAL_CHECK(nd >= 3);
  // [B, C, s..., T] -> [B, T, C, s...]
  std::vector<size_t> perm(nd);
  perm[0] = 0;
  perm[1] = nd - 1;
  for (size_t i = 2; i < nd; ++i) perm[i] = i - 1;
  Tensor p = x.permute(perm);
  tensor::Shape s = p.shape();
  tensor::Shape folded;
  folded.push_back(s[0] * s[1]);
  for (size_t i = 2; i < nd; ++i) folded.push_back(s[i]);
  return p.reshape(folded);
}

Tensor unfold_time(const Tensor& x, int64_t batch, int64_t time) {
  const size_t nd = x.ndim();
  tensor::Shape s = x.shape();
  COASTAL_CHECK(s[0] == batch * time);
  tensor::Shape expanded;
  expanded.push_back(batch);
  expanded.push_back(time);
  for (size_t i = 1; i < nd; ++i) expanded.push_back(s[i]);
  Tensor r = x.reshape(expanded);
  // [B, T, C, s...] -> [B, C, s..., T]
  std::vector<size_t> perm(nd + 1);
  perm[0] = 0;
  for (size_t i = 1; i < nd; ++i) perm[i] = i + 1;
  perm[nd] = 1;
  return r.permute(perm);
}

PatchEmbed4d::PatchEmbed4d(int64_t embed_dim, int64_t patch_h, int64_t patch_w,
                           int64_t patch_d, util::Rng& rng)
    : dim_(embed_dim), ph_(patch_h), pw_(patch_w), pd_(patch_d) {
  embed3d_ = register_module<nn::PatchConvNd>(
      "embed3d", 3, embed_dim,
      std::vector<int64_t>{patch_h, patch_w, patch_d}, rng);
  embed2d_ = register_module<nn::PatchConvNd>(
      "embed2d", 1, embed_dim, std::vector<int64_t>{patch_h, patch_w}, rng);
}

Tensor PatchEmbed4d::forward(const Tensor& volume,
                             const Tensor& surface) const {
  COASTAL_CHECK(volume.ndim() == 6 && surface.ndim() == 5);
  const int64_t B = volume.shape()[0];
  const int64_t Tn = volume.shape()[5];
  COASTAL_CHECK(surface.shape()[4] == Tn);

  // 3-D branch: [B*Tn, 3, H, W, D] -> [B*Tn, C, H', W', D'].
  Tensor vol_tokens = embed3d_->forward(fold_time(volume));
  Tensor vol_embed = unfold_time(vol_tokens, B, Tn);  // [B, C, H', W', D', Tn]

  // 2-D branch: [B*Tn, 1, H, W] -> [B*Tn, C, H', W'] -> depth slice.
  Tensor surf_tokens = embed2d_->forward(fold_time(surface));
  Tensor surf_embed = unfold_time(surf_tokens, B, Tn);  // [B, C, H', W', Tn]
  tensor::Shape s = surf_embed.shape();
  Tensor surf_slice =
      surf_embed.reshape({s[0], s[1], s[2], s[3], 1, s[4]});

  // Concatenate along depth (axis 4): the surface rides on top of the
  // water column.
  return tensor::concat({vol_embed, surf_slice}, 4);
}

PositionalEmbedding4d::PositionalEmbedding4d(int64_t dim, int64_t H, int64_t W,
                                             int64_t D, int64_t T,
                                             util::Rng& rng) {
  spatial_ = register_parameter(
      "spatial", Tensor::randn({1, dim, H, W, D, 1}, rng, 0.02f));
  temporal_ = register_parameter(
      "temporal", Tensor::randn({1, dim, 1, 1, 1, T}, rng, 0.02f));
}

Tensor PositionalEmbedding4d::forward(const Tensor& x) const {
  return x.add(spatial_).add(temporal_);
}

PatchMerging4d::PatchMerging4d(int64_t dim, util::Rng& rng) {
  merge_ = register_module<nn::PatchConvNd>(
      "merge", dim, 2 * dim, std::vector<int64_t>{2, 2, 2}, rng);
}

Tensor PatchMerging4d::forward(const Tensor& x) const {
  const FeatureDims d = FeatureDims::of(x);
  Tensor folded = fold_time(x);
  Tensor merged = merge_->forward(folded);
  return unfold_time(merged, d.B, d.T);
}

}  // namespace coastal::core
