#pragma once

/// \file window4d.hpp
/// 4-D window partitioning for (shifted) window attention — the Swin
/// mechanics of Sec. III-C / Fig. 3.
///
/// Feature maps are [B, C, H, W, D, T].  Partitioning with window
/// (mh, mw, md, mt) produces tokens [B * nW, N, C] with N = mh*mw*md*mt and
/// the window index varying fastest within the batch — the layout
/// nn::MultiHeadSelfAttention's grouped mask expects.  Shifted windows use
/// the cyclic-shift trick: roll every axis by -shift, partition as usual,
/// and add an attention mask that forbids pairs of positions that were not
/// neighbours before the roll.

#include <array>

#include "tensor/tensor.hpp"

namespace coastal::core {

using tensor::Tensor;

using Window4d = std::array<int64_t, 4>;  ///< (mh, mw, md, mt)

/// Feature dims of a [B, C, H, W, D, T] tensor.
struct FeatureDims {
  int64_t B, C, H, W, D, T;
  static FeatureDims of(const Tensor& x);
  int64_t windows(const Window4d& w) const {
    return (H / w[0]) * (W / w[1]) * (D / w[2]) * (T / w[3]);
  }
};

/// Checks divisibility loudly (models must pad up front).
void check_window_divides(const FeatureDims& d, const Window4d& w);

/// [B, C, H, W, D, T] -> [B * nW, N, C].
Tensor window_partition(const Tensor& x, const Window4d& w);

/// Inverse of window_partition.
Tensor window_reverse(const Tensor& tokens, const FeatureDims& dims,
                      const Window4d& w);

/// Cyclic shift of all four spatio-temporal axes by -shift[i] (apply
/// before partitioning for SW-MSA); `unshift` rolls back.
Tensor cyclic_shift(const Tensor& x, const Window4d& shift);
Tensor cyclic_unshift(const Tensor& x, const Window4d& shift);

/// Additive attention mask [nW, N, N] for shifted windows: 0 where the two
/// positions belonged to the same pre-shift region, -1e9 otherwise.
/// Constant for given (dims, window, shift) — callers should cache it.
Tensor shifted_window_mask(const FeatureDims& dims, const Window4d& w,
                           const Window4d& shift);

}  // namespace coastal::core
