#include "core/workflow.hpp"

#include "core/decode.hpp"
#include "core/rollout.hpp"
#include "data/dataset.hpp"
#include "util/timer.hpp"

namespace coastal::core {

EpisodeOutcome verify_or_fallback(std::vector<data::CenterFields>& frames,
                                  const data::CenterFields& current,
                                  const MassVerifier& verifier,
                                  const ocean::Grid& grid,
                                  const ocean::TidalForcing& tides,
                                  const ocean::PhysicsParams& params,
                                  double start_time, double snapshot_dt) {
  EpisodeOutcome outcome;
  const int T = static_cast<int>(frames.size());

  // Verify the episode including the transition from the current state.
  util::Timer verify_timer;
  std::vector<data::CenterFields> seq;
  seq.reserve(frames.size() + 1);
  seq.push_back(current);
  for (auto& f : frames) seq.push_back(f);
  outcome.verdict = verifier.check_sequence(seq, snapshot_dt);
  outcome.verify_seconds = verify_timer.seconds();

  if (!outcome.verdict.pass) {
    // Fall back: recompute the episode with the numerical model from the
    // current verified state.
    outcome.fallback = true;
    util::Timer roms_timer;
    frames =
        numerical_episode(grid, tides, params, current, start_time, snapshot_dt, T);
    outcome.roms_seconds = roms_timer.seconds();
  }
  return outcome;
}

std::vector<data::CenterFields> numerical_episode(
    const ocean::Grid& grid, const ocean::TidalForcing& tides,
    const ocean::PhysicsParams& params, const data::CenterFields& current,
    double start_time, double snapshot_dt, int T) {
  ocean::TidalModel model =
      restart_from_fields(grid, tides, params, current, start_time);
  std::vector<data::CenterFields> frames;
  frames.reserve(static_cast<size_t>(T));
  for (int step = 0; step < T; ++step) {
    model.run_seconds(snapshot_dt);
    auto snap = ocean::reconstruct_3d(grid, model.time(), model.zeta(),
                                      model.ubar(), model.vbar());
    frames.push_back(data::center_from_snapshot(grid, snap));
  }
  return frames;
}

ocean::TidalModel restart_from_fields(const ocean::Grid& grid,
                                      const ocean::TidalForcing& tides,
                                      const ocean::PhysicsParams& params,
                                      const data::CenterFields& state,
                                      double start_time) {
  COASTAL_CHECK(state.nx == grid.nx() && state.ny == grid.ny() &&
                state.nz == grid.nz());
  ocean::TidalModel model(grid, tides, params);
  auto& slab = model.slab();
  slab.set_time(start_time);

  auto depth_avg = [&](const std::vector<float>& layered, int iy, int ix) {
    double a = 0.0;
    for (int k = 0; k < state.nz; ++k)
      a += layered[state.cell3(k, iy, ix)] *
           grid.sigma_thickness()[static_cast<size_t>(k)];
    return a;
  };

  for (int iy = 0; iy < grid.ny(); ++iy) {
    auto zrow = slab.zeta_row(iy);
    auto urow = slab.u_row(iy);
    for (int ix = 0; ix < grid.nx(); ++ix) {
      if (grid.wet(ix, iy))
        zrow[static_cast<size_t>(ix)] = state.zeta[state.cell2(iy, ix)];
    }
    // u faces: interior faces from the two adjacent cells; open-boundary
    // and edge faces one-sided.
    for (int ix = 0; ix <= grid.nx(); ++ix) {
      double u;
      if (ix == 0) {
        u = grid.wet(0, iy) ? depth_avg(state.u, iy, 0) : 0.0;
      } else if (ix == grid.nx()) {
        u = 0.0;
      } else if (grid.u_face_interior_open(ix, iy)) {
        u = 0.5 * (depth_avg(state.u, iy, ix - 1) + depth_avg(state.u, iy, ix));
      } else {
        u = 0.0;
      }
      urow[static_cast<size_t>(ix)] = static_cast<float>(u);
    }
  }
  for (int jf = 0; jf <= grid.ny(); ++jf) {
    auto vrow = slab.v_row(jf);
    for (int ix = 0; ix < grid.nx(); ++ix) {
      double v = 0.0;
      if (jf > 0 && jf < grid.ny() && grid.v_face_interior_open(ix, jf)) {
        v = 0.5 * (depth_avg(state.v, jf - 1, ix) + depth_avg(state.v, jf, ix));
      }
      vrow[static_cast<size_t>(ix)] = static_cast<float>(v);
    }
  }
  return model;
}

WorkflowResult run_workflow(SurrogateModel& model,
                            const data::SampleSpec& spec,
                            const data::Normalizer& norm,
                            const ocean::Grid& grid,
                            const ocean::TidalForcing& tides,
                            const ocean::PhysicsParams& params,
                            std::span<const data::CenterFields> truth,
                            int episodes, double start_time,
                            const WorkflowConfig& config) {
  const int T = spec.T;
  COASTAL_CHECK(truth.size() >= static_cast<size_t>(episodes * T + 1));
  MassVerifier verifier(grid, config.threshold);
  model.set_training(false);
  tensor::NoGradGuard ng;

  WorkflowResult result;
  // Current state, denormalized (seeds verification pairs and fallbacks).
  data::CenterFields current = data::denormalized_copy(truth[0], norm);
  data::CenterFields current_normalized = truth[0];
  double t = start_time;

  for (int e = 0; e < episodes; ++e) {
    // One arena per episode: the surrogate forward, decode, and
    // verification tensors all bump-allocate and release in bulk at the
    // end of the iteration (declared first so every tensor in the body
    // dies before the scope does).  Escaping frames are CenterFields —
    // plain vectors — so nothing tensor-backed leaves the episode.
    tensor::ArenaScope arena;
    ++result.episodes;
    std::span<const data::CenterFields> window =
        truth.subspan(static_cast<size_t>(e * T), static_cast<size_t>(T) + 1);

    util::Timer ai_timer;
    auto frames =
        forecast_episode(model, spec, norm, window, &current_normalized);
    result.ai_seconds += ai_timer.seconds();

    const EpisodeOutcome outcome = verify_or_fallback(
        frames, current, verifier, grid, tides, params, t, config.snapshot_dt);
    result.verify_seconds += outcome.verify_seconds;
    result.roms_seconds += outcome.roms_seconds;
    if (outcome.fallback) {
      ++result.fallbacks;
    } else {
      ++result.accepted;
    }

    current = frames.back();
    current_normalized = current;
    norm.normalize_fields(current_normalized);
    t += T * config.snapshot_dt;
    for (auto& f : frames) result.frames.push_back(std::move(f));
  }
  model.set_training(true);
  return result;
}

}  // namespace coastal::core
