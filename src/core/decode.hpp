#pragma once

/// \file decode.hpp
/// Conversions between the model's packed tensors and physical
/// (denormalized) cell-centered fields — the bridge from the surrogate's
/// output back to oceanographic quantities for verification, evaluation,
/// and visualization.

#include <vector>

#include "core/surrogate.hpp"
#include "data/normalization.hpp"
#include "data/sample.hpp"

namespace coastal::core {

/// Unpack the T predicted frames of a SurrogateOutput (batch size 1) into
/// denormalized CenterFields on the original (un-padded) mesh.
std::vector<data::CenterFields> decode_prediction(
    const data::SampleSpec& spec, const SurrogateOutput& output,
    const data::Normalizer& norm);

/// Unpack one batch entry of a *batched* SurrogateOutput ([B, ...]) — the
/// serving scheduler's demultiplex step.  Reads the entry in place via its
/// batch offset (no per-entry slice copy), so fanning a coalesced forward
/// back out to its requests allocates no tensors.  Entry `b` decodes to
/// exactly what decode_prediction produces for a standalone B == 1 forward
/// of the same sample.
std::vector<data::CenterFields> decode_prediction_entry(
    const data::SampleSpec& spec, const SurrogateOutput& output, int64_t b,
    const data::Normalizer& norm);

/// Same unpacking for a sample's ground-truth target tensors.
std::vector<data::CenterFields> decode_target(const data::SampleSpec& spec,
                                              const data::Sample& sample,
                                              const data::Normalizer& norm);

/// Pack a (normalized) frame into the t=0 slot of an existing sample's
/// input tensors — used by the autoregressive rollout to replace the
/// initial condition with the previous episode's prediction.
void overwrite_initial_condition(const data::SampleSpec& spec,
                                 data::Sample& sample,
                                 const data::CenterFields& frame_normalized);

}  // namespace coastal::core
