#pragma once

/// \file trainer.hpp
/// Offline surrogate training (Sec. III-D): MSE on the normalized fields,
/// Adam, optional activation checkpointing, samples streamed through the
/// prefetching loader and charged against the simulated device hierarchy.
/// Data-parallel training over MPI-style ranks reproduces the paper's
/// multi-GPU scaling study (Fig. 10): each rank holds a model replica and
/// gradients are summed with an allreduce before every step.

#include <cstdint>

#include "core/surrogate.hpp"
#include "data/dataset.hpp"

namespace coastal::core {

struct TrainConfig {
  int epochs = 1;
  float lr = 1e-3f;
  float clip_norm = 5.0f;
  bool use_checkpoint = false;
  /// Per-step batch size.  Without checkpointing the (simulated) 80 GB
  /// GPU fits 1 sample; with it, 2 — the trainer enforces this coupling
  /// when `enforce_memory_limit` is on, mirroring the paper's setup.
  int batch_size = 1;
  bool enforce_memory_limit = false;
  data::LoaderConfig loader;
  uint64_t seed = 99;
};

struct TrainStats {
  double final_train_loss = 0.0;
  double val_loss = 0.0;
  double wall_seconds = 0.0;
  double throughput = 0.0;  ///< samples / second
  size_t samples_seen = 0;
  uint64_t peak_activation_bytes = 0;
};

/// Train in place; returns loss/throughput statistics.
TrainStats train(SurrogateModel& model, const data::Dataset& dataset,
                 const TrainConfig& config,
                 data::DeviceSim* device = nullptr);

/// Mean validation loss without touching weights.
double validation_loss(SurrogateModel& model, const data::Dataset& dataset);

struct ParallelTrainStats {
  double throughput = 0.0;        ///< aggregate samples / second
  double wall_seconds = 0.0;
  size_t samples_seen = 0;
  uint64_t allreduce_bytes = 0;   ///< gradient traffic per rank
};

/// Weak-scaling data-parallel training: `nranks` replicas (same init),
/// each processing `steps_per_rank` samples from its shard with gradient
/// allreduce.  Replica weights stay bit-identical across ranks (tested).
ParallelTrainStats train_data_parallel(const SurrogateConfig& model_config,
                                       const data::Dataset& dataset,
                                       const TrainConfig& config, int nranks,
                                       int steps_per_rank);

/// Per-variable MAE/RMSE on denormalized fields over the original mesh —
/// the Table III metrics.
struct EvalMetrics {
  double mae[data::kNumVariables] = {};
  double rmse[data::kNumVariables] = {};
};
EvalMetrics evaluate(SurrogateModel& model, const data::Dataset& dataset,
                     const std::vector<size_t>& indices);

}  // namespace coastal::core
