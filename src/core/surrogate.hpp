#pragma once

/// \file surrogate.hpp
/// The paper's AI surrogate (Fig. 2): encoder-decoder 4-D Swin Transformer
/// that maps (initial condition at t=0, boundary conditions at t=1..T) to
/// the interior fields at t=1..T.
///
/// Encoder: joint 3-D/2-D patch embedding, positional encoding, then
/// `stages` levels of [SwinBlockPair -> PatchMerging], keeping each
/// level's features for U-Net skip connections.
/// Decoder: per level, kernel==stride transposed conv + BatchNorm + GELU,
/// concat with the encoder skip, 1x1 conv; finally the merged features
/// split into the 3-D and 2-D heads (transposed conv + BN + GELU + 1x1
/// conv) recovering the original resolution.

#include <memory>
#include <vector>

#include "core/patch_ops.hpp"
#include "core/swin_block.hpp"
#include "data/sample.hpp"
#include "nn/layers.hpp"

namespace coastal::core {

struct SurrogateConfig {
  // Mesh / sample geometry (must match the data::SampleSpec).
  int64_t H = 0, W = 0, D = 0;  ///< padded mesh dims
  int64_t T = 0;                ///< forecast steps; input carries T+1 frames

  // Architecture (defaults mirror Sec. IV-B at miniature scale).
  int64_t patch_h = 5, patch_w = 5, patch_d = 2;
  int64_t embed_dim = 24;
  int stages = 3;
  std::vector<int64_t> heads = {3, 6, 12};
  Window4d window_first = {4, 4, 2, 2};
  Window4d window_rest = {2, 2, 2, 2};
  int64_t mlp_ratio = 2;

  /// Embedded grid dims (before the +1 surface slice is appended).
  int64_t h1() const { return H / patch_h; }
  int64_t w1() const { return W / patch_w; }
  int64_t d1() const { return D / patch_d + 1; }  // +1: surface slice
  int64_t tn() const { return T + 1; }

  void validate() const;
};

struct SurrogateOutput {
  Tensor volume;   ///< [B, 3, H, W, D, T]
  Tensor surface;  ///< [B, 1, H, W, T]
};

class SurrogateModel : public nn::Module {
 public:
  SurrogateModel(const SurrogateConfig& config, util::Rng& rng);

  /// volume [B, 3, H, W, D, T+1], surface [B, 1, H, W, T+1].
  SurrogateOutput forward(const Tensor& volume, const Tensor& surface,
                          bool use_checkpoint = false);

  /// Convenience wrapper for an unbatched data::Sample.
  SurrogateOutput forward_sample(const data::Sample& sample,
                                 bool use_checkpoint = false);

  const SurrogateConfig& config() const { return cfg_; }

 private:
  SurrogateConfig cfg_;

  std::shared_ptr<PatchEmbed4d> embed_;
  std::shared_ptr<PositionalEmbedding4d> pos_;
  std::vector<std::shared_ptr<SwinBlockPair4d>> stages_;
  std::vector<std::shared_ptr<PatchMerging4d>> merges_;

  struct UpStage {
    std::shared_ptr<nn::PatchConvTransposeNd> up;
    std::shared_ptr<nn::BatchNorm> bn;
    std::shared_ptr<nn::PointwiseConvNd> fuse;  ///< after skip concat
  };
  std::vector<UpStage> ups_;

  // Patch-recovery heads.
  std::shared_ptr<nn::PatchConvTransposeNd> recover3d_;
  std::shared_ptr<nn::BatchNorm> bn3d_;
  std::shared_ptr<nn::PointwiseConvNd> head3d_;
  std::shared_ptr<nn::PatchConvTransposeNd> recover2d_;
  std::shared_ptr<nn::BatchNorm> bn2d_;
  std::shared_ptr<nn::PointwiseConvNd> head2d_;
};

}  // namespace coastal::core
