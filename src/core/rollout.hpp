#pragma once

/// \file rollout.hpp
/// Autoregressive forecasting (Sec. III-A).
///
/// One surrogate call covers T snapshots.  Longer horizons chain episodes:
/// the last predicted frame becomes the next episode's initial condition,
/// while boundary conditions always come from the provided (future)
/// boundary data — the regional-model contract.  The dual-model scheme
/// composes a coarse-interval model (12-hour steps in the paper) with a
/// fine-interval model (30-minute steps): the coarse rollout spans the
/// horizon, and each coarse frame seeds a fine episode that fills in the
/// high-resolution snapshots.

#include <functional>
#include <span>
#include <vector>

#include "core/surrogate.hpp"
#include "data/normalization.hpp"

namespace coastal::core {

/// Cooperative cancellation: invoked at episode-step granularity (before
/// the forward, the expensive part).  Implementations abort by throwing —
/// the serving layer throws its deadline error here.
using CancelHook = std::function<void()>;

/// One surrogate episode — the building block rollout(), dual_rollout(),
/// run_workflow(), and the serving layer all share: pack `window` (T+1
/// normalized frames: IC + per-step boundary conditions) into a sample,
/// overwrite the initial condition with `ic_normalized` when non-null
/// (autoregressive chaining), run the surrogate, and decode the T
/// predicted frames (denormalized).  Grad/eval state is the caller's
/// contract: wrap in NoGradGuard + set_training(false) (and an ArenaScope
/// if episode tensors should bump-allocate) exactly as the callers here
/// do.
/// Fault site `rollout.step` fires once per episode (throw aborts it, nan
/// poisons the first decoded frame); `cancel`, when non-null, is invoked
/// before the forward so callers can abort past-deadline work cheaply.
std::vector<data::CenterFields> forecast_episode(
    SurrogateModel& model, const data::SampleSpec& spec,
    const data::Normalizer& norm,
    std::span<const data::CenterFields> window,
    const data::CenterFields* ic_normalized,
    const CancelHook* cancel = nullptr);

/// Chain `episodes` surrogate calls.  `truth_normalized` must hold
/// episodes*T + 1 normalized frames; frame 0 is the initial condition and
/// the lateral boundary ring of every later frame provides the boundary
/// conditions.  Returns episodes*T denormalized predicted frames.
std::vector<data::CenterFields> rollout(
    SurrogateModel& model, const data::SampleSpec& spec,
    const data::Normalizer& norm,
    std::span<const data::CenterFields> truth_normalized, int episodes);

/// Resume (or start) a chained rollout at an episode boundary — the
/// serve cache's prefix-reuse entry point.  `window_normalized` holds the
/// full chain's episodes*T + 1 normalized frames; episodes before
/// `start_episode` are assumed already computed, and `resume_ic` — the
/// *denormalized* final frame of episode start_episode-1 (required iff
/// start_episode > 0) — seeds the chain exactly as rollout()'s
/// autoregressive hand-off would, so the returned
/// (episodes - start_episode)*T frames are bitwise identical to the tail
/// of a full rollout over the same window.  Unlike rollout(), grad/eval
/// state is the caller's contract (forecast_episode rules): wrap in
/// NoGradGuard + set_training(false); each episode still gets its own
/// ArenaScope internally.
std::vector<data::CenterFields> resume_rollout(
    SurrogateModel& model, const data::SampleSpec& spec,
    const data::Normalizer& norm,
    std::span<const data::CenterFields> window_normalized, int episodes,
    int start_episode, const data::CenterFields* resume_ic,
    const CancelHook* cancel = nullptr);

/// Dual-model long-horizon forecast.  The coarse model advances
/// `coarse_episodes * T_c` coarse steps; each coarse frame (and the
/// initial condition) seeds the fine model, which predicts `T_f` fine
/// steps whose boundary data come from `fine_truth_normalized` (length
/// coarse_steps * T_f + 1 where coarse_steps = coarse_episodes * T_c).
/// Returns coarse_steps * T_f denormalized fine-resolution frames.
std::vector<data::CenterFields> dual_rollout(
    SurrogateModel& coarse_model, SurrogateModel& fine_model,
    const data::SampleSpec& coarse_spec, const data::SampleSpec& fine_spec,
    const data::Normalizer& norm,
    std::span<const data::CenterFields> coarse_truth_normalized,
    std::span<const data::CenterFields> fine_truth_normalized,
    int coarse_episodes);

}  // namespace coastal::core
