#include "core/decode.hpp"

#include "util/check.hpp"

namespace coastal::core {

namespace {

/// Read one variable frame out of a packed target/prediction volume tensor
/// [B, 3, H, W, D, T] at batch entry b, channel c, time t.
void unpack_volume(const tensor::Tensor& vol, const data::SampleSpec& s,
                   int64_t b, int c, int t, std::vector<float>& dst) {
  const auto& shape = vol.shape();
  const int64_t T = shape[5];
  const float* p = vol.raw() + b * 3 * s.H * s.W * s.D * T;
  for (int k = 0; k < s.src_nz; ++k)
    for (int iy = 0; iy < s.src_ny; ++iy)
      for (int ix = 0; ix < s.src_nx; ++ix) {
        const int64_t idx =
            ((((static_cast<int64_t>(c) * s.H + iy) * s.W + ix) * s.D + k) *
             T) + t;
        dst[(static_cast<size_t>(k) * s.src_ny + iy) * s.src_nx + ix] =
            p[idx];
      }
}

void unpack_surface(const tensor::Tensor& surf, const data::SampleSpec& s,
                    int64_t b, int t, std::vector<float>& dst) {
  const auto& shape = surf.shape();
  const int64_t T = shape[4];
  const float* p = surf.raw() + b * s.H * s.W * T;
  for (int iy = 0; iy < s.src_ny; ++iy)
    for (int ix = 0; ix < s.src_nx; ++ix)
      dst[static_cast<size_t>(iy) * s.src_nx + ix] =
          p[((static_cast<int64_t>(iy) * s.W + ix) * T) + t];
}

std::vector<data::CenterFields> decode_tensors(const data::SampleSpec& spec,
                                               const tensor::Tensor& volume,
                                               const tensor::Tensor& surface,
                                               int64_t b,
                                               const data::Normalizer& norm) {
  COASTAL_CHECK(volume.ndim() == 6 && surface.ndim() == 5);
  COASTAL_CHECK(b >= 0 && b < volume.shape()[0] &&
                volume.shape()[0] == surface.shape()[0]);
  const auto T = static_cast<int>(volume.shape()[5]);

  std::vector<data::CenterFields> frames(static_cast<size_t>(T));
  const size_t n3 =
      static_cast<size_t>(spec.src_nz) * spec.src_ny * spec.src_nx;
  const size_t n2 = static_cast<size_t>(spec.src_ny) * spec.src_nx;
  for (int t = 0; t < T; ++t) {
    auto& f = frames[static_cast<size_t>(t)];
    f.nx = spec.src_nx;
    f.ny = spec.src_ny;
    f.nz = spec.src_nz;
    f.u.assign(n3, 0.0f);
    f.v.assign(n3, 0.0f);
    f.w.assign(n3, 0.0f);
    f.zeta.assign(n2, 0.0f);
    unpack_volume(volume, spec, b, 0, t, f.u);
    unpack_volume(volume, spec, b, 1, t, f.v);
    unpack_volume(volume, spec, b, 2, t, f.w);
    unpack_surface(surface, spec, b, t, f.zeta);
    norm.denormalize(f.u, data::kU);
    norm.denormalize(f.v, data::kV);
    norm.denormalize(f.w, data::kW);
    norm.denormalize(f.zeta, data::kZeta);
  }
  return frames;
}

}  // namespace

std::vector<data::CenterFields> decode_prediction(
    const data::SampleSpec& spec, const SurrogateOutput& output,
    const data::Normalizer& norm) {
  COASTAL_CHECK(output.volume.shape()[0] == 1);
  return decode_tensors(spec, output.volume, output.surface, 0, norm);
}

std::vector<data::CenterFields> decode_prediction_entry(
    const data::SampleSpec& spec, const SurrogateOutput& output, int64_t b,
    const data::Normalizer& norm) {
  return decode_tensors(spec, output.volume, output.surface, b, norm);
}

std::vector<data::CenterFields> decode_target(const data::SampleSpec& spec,
                                              const data::Sample& sample,
                                              const data::Normalizer& norm) {
  tensor::Shape vs = sample.target_volume.shape();
  tensor::Shape ss = sample.target_surface.shape();
  tensor::Shape bvs{1};
  bvs.insert(bvs.end(), vs.begin(), vs.end());
  tensor::Shape bss{1};
  bss.insert(bss.end(), ss.begin(), ss.end());
  return decode_tensors(spec, sample.target_volume.reshape(bvs),
                        sample.target_surface.reshape(bss), 0, norm);
}

void overwrite_initial_condition(const data::SampleSpec& spec,
                                 data::Sample& sample,
                                 const data::CenterFields& frame) {
  COASTAL_CHECK(frame.nx == spec.src_nx && frame.ny == spec.src_ny &&
                frame.nz == spec.src_nz);
  const int64_t Tn = spec.T + 1;
  float* vol = sample.volume.raw();
  float* surf = sample.surface.raw();
  auto vol_at = [&](int c, int iy, int ix, int k) -> float& {
    return vol[((((static_cast<int64_t>(c) * spec.H + iy) * spec.W + ix) *
                 spec.D + k) * Tn) + 0];
  };
  for (int k = 0; k < spec.src_nz; ++k)
    for (int iy = 0; iy < spec.src_ny; ++iy)
      for (int ix = 0; ix < spec.src_nx; ++ix) {
        const size_t src =
            (static_cast<size_t>(k) * spec.src_ny + iy) * spec.src_nx + ix;
        vol_at(0, iy, ix, k) = frame.u[src];
        vol_at(1, iy, ix, k) = frame.v[src];
        vol_at(2, iy, ix, k) = frame.w[src];
      }
  for (int iy = 0; iy < spec.src_ny; ++iy)
    for (int ix = 0; ix < spec.src_nx; ++ix)
      surf[((static_cast<int64_t>(iy) * spec.W + ix) * Tn) + 0] =
          frame.zeta[static_cast<size_t>(iy) * spec.src_nx + ix];
}

}  // namespace coastal::core
