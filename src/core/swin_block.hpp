#pragma once

/// \file swin_block.hpp
/// The 4-D Swin Transformer block pair of Eq. 3:
///   z_hat = W-MSA(LN(z)) + z;      z = MLP(LN(z_hat)) + z_hat
///   z_hat = SW-MSA(LN(z)) + z;     z = MLP(LN(z_hat)) + z_hat
/// operating on feature maps [B, C, H, W, D, T].

#include <array>
#include <map>
#include <memory>

#include "core/window4d.hpp"
#include "nn/attention.hpp"
#include "nn/checkpoint.hpp"

namespace coastal::core {

/// One (shifted or not) windowed-attention block.
class SwinBlock4d : public nn::Module {
 public:
  SwinBlock4d(int64_t dim, int64_t heads, Window4d window, bool shifted,
              util::Rng& rng, int64_t mlp_ratio = 2);

  /// x: [B, C, H, W, D, T].  When `use_checkpoint` is true the whole block
  /// runs under activation checkpointing (Sec. III-D's memory
  /// optimization at block granularity).
  Tensor forward(const Tensor& x, bool use_checkpoint = false);

  const Window4d& window() const { return window_; }
  bool shifted() const { return shifted_; }

 private:
  Tensor forward_impl(const Tensor& x);
  /// Shift for SW-MSA: half the window on each axis (0 when the axis has
  /// a single window, where shifting is a no-op).
  Window4d shift_for(const FeatureDims& d) const;
  const Tensor& mask_for(const FeatureDims& d, const Window4d& shift);

  int64_t dim_, heads_;
  Window4d window_;
  bool shifted_;
  std::shared_ptr<nn::LayerNorm> norm1_, norm2_;
  std::shared_ptr<nn::MultiHeadSelfAttention> attn_;
  std::shared_ptr<nn::Mlp> mlp_;
  /// Mask cache keyed by feature dims + shift (masks depend only on
  /// those).  A packed value key avoids the per-forward string build this
  /// hot path used to pay.
  using MaskKey = std::array<int64_t, 8>;
  std::map<MaskKey, Tensor> mask_cache_;
};

/// W-MSA block followed by SW-MSA block — "two successive 4D Swin
/// Transformer blocks" of Fig. 3(b).
class SwinBlockPair4d : public nn::Module {
 public:
  SwinBlockPair4d(int64_t dim, int64_t heads, Window4d window, util::Rng& rng);

  Tensor forward(const Tensor& x, bool use_checkpoint = false);

 private:
  std::shared_ptr<SwinBlock4d> wmsa_, swmsa_;
};

}  // namespace coastal::core
