#pragma once

/// \file perfmodel.hpp
/// Calibrated analytic performance model for paper-scale projections.
///
/// This environment has one CPU core and no GPU, so the absolute seconds
/// of Table I / Fig. 8 / Fig. 10 cannot be measured here.  What *can* be
/// held fixed are the scaling laws — work per cell-step for the fluid
/// solver, work per token for the transformer, ring-allreduce traffic for
/// data parallelism — so the model below is calibrated once against the
/// paper's published anchor points and then used to project any mesh,
/// core count, threshold, or GPU count.  Every bench prints measured
/// miniature numbers alongside these projections and labels them clearly.
///
/// Anchor points (from the paper):
///  - MPI ROMS, 898x598x12 mesh, 12-day horizon, 512 cores: 9,908 s.
///  - Surrogate inference, same mesh, patch 5: 0.888 s / instance (12-h),
///    22.2 s for the dual-model 12-day forecast (1 coarse + 24 fine).
///  - Training throughput, 1 GPU: 1.36 inst/s (with checkpointing),
///    0.81 inst/s without; 32 GPUs reach ~25 inst/s (Fig. 10).

#include <cstdint>

#include "core/surrogate.hpp"

namespace coastal::core {

class PerfModel {
 public:
  // --- ROMS (MPI, CPU) ---------------------------------------------------
  /// Wall seconds to simulate `sim_seconds` of ocean time on an
  /// nx*ny*nz mesh with `cores` ranks: cost = K * cells * sim_seconds /
  /// (cores * eff(cores)), with parallel efficiency decaying as halo
  /// surface-to-volume grows.
  static double roms_seconds(int64_t nx, int64_t ny, int64_t nz,
                             double sim_seconds, int cores);

  // --- surrogate (GPU) ---------------------------------------------------
  /// Attention+MLP FLOPs of one forward pass (used for relative scaling).
  static double surrogate_flops(const SurrogateConfig& config);
  /// Seconds for one inference on an A100, scaled from the paper's
  /// 0.888 s anchor by relative FLOPs.
  static double surrogate_inference_seconds(const SurrogateConfig& config);
  /// The paper's full-mesh configuration (patch 5), for anchoring.
  static SurrogateConfig paper_config();

  /// Dual-model 12-day forecast cost: 1 coarse + 24 fine inferences.
  static double forecast_12day_seconds();

  // --- integrated workflow (Fig. 8) ---------------------------------------
  /// End-to-end 12-day forecast time when a fraction `fail_rate` of the 24
  /// fine episodes fails verification and is recomputed by MPI ROMS (each
  /// episode covers 12 h of ocean time on 512 cores).
  static double workflow_12day_seconds(double fail_rate);

  // --- training scaling (Fig. 10) -----------------------------------------
  /// Aggregate training throughput (instances/s) on `ngpus` A100s with or
  /// without activation checkpointing, using a ring-allreduce comm model.
  static double training_throughput(int ngpus, bool checkpoint);

  // --- Table II memory ----------------------------------------------------
  /// Host->device bytes of one full-scale sample (FP32 on device).
  static uint64_t sample_device_bytes_fullscale();
  /// Activation working set of one full-scale forward pass.
  static uint64_t activation_bytes_fullscale();
  /// Parameter + optimizer-state bytes at full scale.
  static uint64_t parameter_state_bytes_fullscale();
};

}  // namespace coastal::core
