#pragma once

/// \file workflow.hpp
/// The integrated forecasting workflow of Fig. 1: the surrogate produces
/// each episode, the mass-conservation verifier checks it, and episodes
/// that fail are recomputed by the numerical model (ROMS stand-in)
/// restarted from the current state.  The verified output then seeds the
/// next episode, so errors cannot compound silently.

#include <span>
#include <vector>

#include "core/surrogate.hpp"
#include "core/verification.hpp"
#include "ocean/solver.hpp"

namespace coastal::core {

struct WorkflowConfig {
  double threshold = 4.0e-4;    ///< mean water-mass residual bound, m/s
  double snapshot_dt = 1800.0;  ///< seconds between forecast snapshots
};

struct WorkflowResult {
  size_t episodes = 0;
  size_t accepted = 0;    ///< episodes that passed verification
  size_t fallbacks = 0;   ///< episodes recomputed by the numerical model
  double ai_seconds = 0.0;
  double verify_seconds = 0.0;
  double roms_seconds = 0.0;
  std::vector<data::CenterFields> frames;  ///< denormalized forecast

  double total_seconds() const {
    return ai_seconds + verify_seconds + roms_seconds;
  }
  double pass_rate() const {
    return episodes ? static_cast<double>(accepted) / episodes : 1.0;
  }
};

/// Outcome of verifying one forecast episode (and recomputing it with the
/// numerical model when the physics check failed).
struct EpisodeOutcome {
  VerificationResult verdict;   ///< physics check of the surrogate episode
  bool fallback = false;        ///< frames were replaced by the ROMS rerun
  double verify_seconds = 0.0;
  double roms_seconds = 0.0;
};

/// The per-episode verification half of the Fig. 1 loop, shared by
/// run_workflow and the serving layer: check `frames` (T denormalized
/// surrogate predictions) as a continuation of the verified state
/// `current` (denormalized); when the mean water-mass residual breaches
/// the verifier's threshold, recompute the episode with the numerical
/// model restarted from `current` at `start_time` and replace `frames` in
/// place.  The returned verdict always describes the *surrogate* episode
/// (the fallback frames satisfy conservation by construction).
/// Compute one episode (T frames at snapshot_dt) purely with the
/// numerical model restarted from `current` at `start_time` — the
/// fallback path of verify_or_fallback, exposed so degraded serving can
/// skip the surrogate entirely.  Frames satisfy conservation by
/// construction.
std::vector<data::CenterFields> numerical_episode(
    const ocean::Grid& grid, const ocean::TidalForcing& tides,
    const ocean::PhysicsParams& params, const data::CenterFields& current,
    double start_time, double snapshot_dt, int T);

EpisodeOutcome verify_or_fallback(std::vector<data::CenterFields>& frames,
                                  const data::CenterFields& current,
                                  const MassVerifier& verifier,
                                  const ocean::Grid& grid,
                                  const ocean::TidalForcing& tides,
                                  const ocean::PhysicsParams& params,
                                  double start_time, double snapshot_dt);

/// Restart the numerical model from a (denormalized) cell-centered state:
/// zeta copied directly, face velocities interpolated from the
/// depth-averaged centered velocities.
ocean::TidalModel restart_from_fields(const ocean::Grid& grid,
                                      const ocean::TidalForcing& tides,
                                      const ocean::PhysicsParams& params,
                                      const data::CenterFields& state,
                                      double start_time);

/// Run `episodes` episodes of T snapshots each.  `truth_normalized`
/// supplies the initial condition and the per-episode boundary conditions
/// (episodes*T + 1 frames); `start_time` anchors the tidal phase for
/// fallback runs.
WorkflowResult run_workflow(SurrogateModel& model,
                            const data::SampleSpec& spec,
                            const data::Normalizer& norm,
                            const ocean::Grid& grid,
                            const ocean::TidalForcing& tides,
                            const ocean::PhysicsParams& params,
                            std::span<const data::CenterFields> truth_normalized,
                            int episodes, double start_time,
                            const WorkflowConfig& config);

}  // namespace coastal::core
