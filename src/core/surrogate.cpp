#include "core/surrogate.hpp"

#include "util/check.hpp"

namespace coastal::core {

namespace {

/// Largest window <= `base` that divides `dim` (window attention needs
/// exact tiling; deeper stages have small grids, so windows shrink).
int64_t fit_window(int64_t base, int64_t dim) {
  int64_t w = std::min(base, dim);
  while (w > 1 && dim % w != 0) --w;
  return std::max<int64_t>(1, w);
}

Window4d effective_window(const Window4d& base, int64_t h, int64_t w,
                          int64_t d, int64_t t) {
  return {fit_window(base[0], h), fit_window(base[1], w),
          fit_window(base[2], d), fit_window(base[3], t)};
}

}  // namespace

void SurrogateConfig::validate() const {
  COASTAL_CHECK_MSG(H > 0 && W > 0 && D > 0 && T > 0, "dims not set");
  COASTAL_CHECK_MSG(H % patch_h == 0 && W % patch_w == 0 && D % patch_d == 0,
                    "patch (" << patch_h << "," << patch_w << "," << patch_d
                              << ") must divide mesh (" << H << "," << W
                              << "," << D << ")");
  COASTAL_CHECK_MSG(static_cast<int>(heads.size()) == stages,
                    "need one head count per stage");
  const int64_t down = 1LL << (stages - 1);
  COASTAL_CHECK_MSG(h1() % down == 0 && w1() % down == 0 && d1() % down == 0,
                    "embedded grid (" << h1() << "," << w1() << "," << d1()
                                      << ") not divisible by 2^(stages-1)="
                                      << down);
  for (int i = 0; i < stages; ++i) {
    COASTAL_CHECK_MSG(embed_dim * (1LL << i) % heads[static_cast<size_t>(i)] == 0,
                      "stage " << i << " dim not divisible by heads");
  }
}

SurrogateModel::SurrogateModel(const SurrogateConfig& config, util::Rng& rng)
    : cfg_(config) {
  cfg_.validate();
  embed_ = register_module<PatchEmbed4d>("embed", cfg_.embed_dim, cfg_.patch_h,
                                         cfg_.patch_w, cfg_.patch_d, rng);
  pos_ = register_module<PositionalEmbedding4d>(
      "pos", cfg_.embed_dim, cfg_.h1(), cfg_.w1(), cfg_.d1(), cfg_.tn(), rng);

  int64_t h = cfg_.h1(), w = cfg_.w1(), d = cfg_.d1();
  for (int i = 0; i < cfg_.stages; ++i) {
    const int64_t dim = cfg_.embed_dim * (1LL << i);
    const Window4d base = (i == 0) ? cfg_.window_first : cfg_.window_rest;
    const Window4d win = effective_window(base, h, w, d, cfg_.tn());
    stages_.push_back(register_module<SwinBlockPair4d>(
        "stage" + std::to_string(i), dim, cfg_.heads[static_cast<size_t>(i)],
        win, rng));
    if (i + 1 < cfg_.stages) {
      merges_.push_back(register_module<PatchMerging4d>(
          "merge" + std::to_string(i), dim, rng));
      h /= 2;
      w /= 2;
      d /= 2;
    }
  }

  // Decoder mirror: stages-1 upsampling steps.
  for (int i = cfg_.stages - 2; i >= 0; --i) {
    const int64_t dim_in = cfg_.embed_dim * (1LL << (i + 1));
    const int64_t dim_out = cfg_.embed_dim * (1LL << i);
    UpStage up;
    up.up = register_module<nn::PatchConvTransposeNd>(
        "up" + std::to_string(i), dim_in, dim_out,
        std::vector<int64_t>{2, 2, 2}, rng);
    up.bn = register_module<nn::BatchNorm>("up_bn" + std::to_string(i),
                                           dim_out, 1e-5f, 0.1f,
                                           /*use_batch_stats_in_eval=*/true);
    up.fuse = register_module<nn::PointwiseConvNd>(
        "up_fuse" + std::to_string(i), 2 * dim_out, dim_out, rng);
    ups_.push_back(std::move(up));
  }

  // Patch-recovery heads (transposed conv + BN + GELU + 1x1 conv).
  recover3d_ = register_module<nn::PatchConvTransposeNd>(
      "recover3d", cfg_.embed_dim, cfg_.embed_dim,
      std::vector<int64_t>{cfg_.patch_h, cfg_.patch_w, cfg_.patch_d}, rng);
  bn3d_ = register_module<nn::BatchNorm>("bn3d", cfg_.embed_dim, 1e-5f,
                                         0.1f, true);
  head3d_ = register_module<nn::PointwiseConvNd>("head3d", cfg_.embed_dim, 3,
                                                 rng);
  recover2d_ = register_module<nn::PatchConvTransposeNd>(
      "recover2d", cfg_.embed_dim, cfg_.embed_dim,
      std::vector<int64_t>{cfg_.patch_h, cfg_.patch_w}, rng);
  bn2d_ = register_module<nn::BatchNorm>("bn2d", cfg_.embed_dim, 1e-5f,
                                         0.1f, true);
  head2d_ = register_module<nn::PointwiseConvNd>("head2d", cfg_.embed_dim, 1,
                                                 rng);
}

SurrogateOutput SurrogateModel::forward(const Tensor& volume,
                                        const Tensor& surface,
                                        bool use_checkpoint) {
  COASTAL_CHECK_MSG(volume.ndim() == 6 && surface.ndim() == 5,
                    "expected batched volume [B,3,H,W,D,T+1] and surface "
                    "[B,1,H,W,T+1]");
  COASTAL_CHECK_MSG(volume.shape()[5] == cfg_.tn(),
                    "input time steps " << volume.shape()[5] << " != T+1 = "
                                        << cfg_.tn());
  const int64_t B = volume.shape()[0];

  // ---- encoder ----------------------------------------------------------
  Tensor x = pos_->forward(embed_->forward(volume, surface));
  std::vector<Tensor> skips;
  for (int i = 0; i < cfg_.stages; ++i) {
    x = stages_[static_cast<size_t>(i)]->forward(x, use_checkpoint);
    if (i + 1 < cfg_.stages) {
      skips.push_back(x);
      x = merges_[static_cast<size_t>(i)]->forward(x);
    }
  }

  // ---- decoder ----------------------------------------------------------
  for (size_t u = 0; u < ups_.size(); ++u) {
    const auto& up = ups_[u];
    Tensor folded = fold_time(x);
    Tensor upsampled = up.up->forward(folded);
    Tensor activated = up.bn->forward(upsampled).gelu();
    x = unfold_time(activated, B, cfg_.tn());
    // U-Net skip: concat on channels with the matching encoder level.
    const Tensor& skip = skips[skips.size() - 1 - u];
    x = up.fuse->forward(tensor::concat({x, skip}, 1));
  }

  // ---- split depth and recover ------------------------------------------
  const int64_t dv = cfg_.D / cfg_.patch_d;        // volume depth slices
  Tensor vol_part = x.slice(4, 0, dv);             // [B, C, h1, w1, dv, Tn]
  Tensor surf_part = x.slice(4, dv, 1);            // [B, C, h1, w1, 1, Tn]
  tensor::Shape ss = surf_part.shape();
  Tensor surf_sq = surf_part.reshape({ss[0], ss[1], ss[2], ss[3], ss[5]});

  Tensor vol_rec = unfold_time(
      head3d_->forward(
          bn3d_->forward(recover3d_->forward(fold_time(vol_part))).gelu()),
      B, cfg_.tn());                               // [B, 3, H, W, D, Tn]
  Tensor surf_rec = unfold_time(
      head2d_->forward(
          bn2d_->forward(recover2d_->forward(fold_time(surf_sq))).gelu()),
      B, cfg_.tn());                               // [B, 1, H, W, Tn]

  // Predictions are the T forecast frames (drop the initial-condition
  // frame).
  SurrogateOutput out;
  out.volume = vol_rec.slice(5, 1, cfg_.T);
  out.surface = surf_rec.slice(4, 1, cfg_.T);
  return out;
}

SurrogateOutput SurrogateModel::forward_sample(const data::Sample& sample,
                                               bool use_checkpoint) {
  tensor::Shape vs = sample.volume.shape();
  tensor::Shape ss = sample.surface.shape();
  tensor::Shape bvs{1};
  bvs.insert(bvs.end(), vs.begin(), vs.end());
  tensor::Shape bss{1};
  bss.insert(bss.end(), ss.begin(), ss.end());
  return forward(sample.volume.reshape(bvs), sample.surface.reshape(bss),
                 use_checkpoint);
}

}  // namespace coastal::core
