#pragma once

/// \file patch_ops.hpp
/// Patch embedding / merging / positional encoding for the 4-D encoder
/// (Sec. III-C).  All ops treat time as a separate axis: patches and
/// merges are purely spatial, exactly as the paper specifies ("patch
/// merging performs on the three spatial dimensions but not the temporal
/// dimension").

#include <memory>

#include "core/window4d.hpp"
#include "nn/conv.hpp"

namespace coastal::core {

/// [B, C, s1..sk, T] -> [B*T, C, s1..sk]: folds time into the batch so
/// spatial convolutions can run per frame.
Tensor fold_time(const Tensor& x);
/// Inverse of fold_time.
Tensor unfold_time(const Tensor& x, int64_t batch, int64_t time);

/// Joint 3-D + 2-D patch embedding: the 3-D variables (u, v, w) are
/// patched with (ph, pw, pd) and the 2-D variable (zeta) with (ph, pw);
/// both are projected to the same C-dim latent space and concatenated
/// along depth (the surface embedding becomes one extra depth slice).
class PatchEmbed4d : public nn::Module {
 public:
  PatchEmbed4d(int64_t embed_dim, int64_t patch_h, int64_t patch_w,
               int64_t patch_d, util::Rng& rng);

  /// volume [B, 3, H, W, D, Tn], surface [B, 1, H, W, Tn]
  /// -> [B, C, H/ph, W/pw, D/pd + 1, Tn].
  Tensor forward(const Tensor& volume, const Tensor& surface) const;

  int64_t embed_dim() const { return dim_; }

 private:
  int64_t dim_, ph_, pw_, pd_;
  std::shared_ptr<nn::PatchConvNd> embed3d_;
  std::shared_ptr<nn::PatchConvNd> embed2d_;
};

/// Absolute positional encoding: separate learnable spatial
/// [C, H', W', D'] and temporal [C, T] embeddings added by broadcasting.
class PositionalEmbedding4d : public nn::Module {
 public:
  PositionalEmbedding4d(int64_t dim, int64_t H, int64_t W, int64_t D,
                        int64_t T, util::Rng& rng);

  Tensor forward(const Tensor& x) const;

 private:
  Tensor spatial_;   ///< [1, C, H, W, D, 1]
  Tensor temporal_;  ///< [1, C, 1, 1, 1, T]
};

/// Patch merging (Fig. 4): 2x2x2 spatial neighbours concatenated along
/// channels (8C) then projected to 2C.  Equivalent to a kernel==stride
/// convolution, which is how it is implemented.
class PatchMerging4d : public nn::Module {
 public:
  PatchMerging4d(int64_t dim, util::Rng& rng);

  /// [B, C, H, W, D, T] -> [B, 2C, H/2, W/2, D/2, T].
  Tensor forward(const Tensor& x) const;

 private:
  std::shared_ptr<nn::PatchConvNd> merge_;
};

}  // namespace coastal::core
