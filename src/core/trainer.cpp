#include "core/trainer.hpp"

#include <cmath>

#include "core/decode.hpp"
#include "nn/optimizer.hpp"
#include "parallel/communicator.hpp"
#include "util/logging.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace coastal::core {

namespace {

/// Bytes of one sample's input+target tensors in FP32 (what moves host to
/// device each step).
uint64_t sample_device_bytes(const data::SampleSpec& spec) {
  return static_cast<uint64_t>(spec.total_numel()) * sizeof(float);
}

Tensor sample_loss(SurrogateModel& model, const data::Sample& sample,
                   bool use_checkpoint) {
  SurrogateOutput out = model.forward_sample(sample, use_checkpoint);
  tensor::Shape vs = sample.target_volume.shape();
  tensor::Shape ss = sample.target_surface.shape();
  tensor::Shape bvs{1};
  bvs.insert(bvs.end(), vs.begin(), vs.end());
  tensor::Shape bss{1};
  bss.insert(bss.end(), ss.begin(), ss.end());
  Tensor lv = tensor::mse_loss(out.volume, sample.target_volume.reshape(bvs));
  Tensor ls = tensor::mse_loss(out.surface, sample.target_surface.reshape(bss));
  return lv.add(ls);
}

}  // namespace

TrainStats train(SurrogateModel& model, const data::Dataset& dataset,
                 const TrainConfig& config, data::DeviceSim* device) {
  if (config.enforce_memory_limit) {
    // The paper's A100 fits batch 1 without activation checkpointing and
    // batch 2 with it; honour that memory-capacity coupling.
    const int max_batch = config.use_checkpoint ? 2 : 1;
    COASTAL_CHECK_MSG(config.batch_size <= max_batch,
                      "batch " << config.batch_size
                               << " exceeds simulated GPU memory (max "
                               << max_batch << (config.use_checkpoint
                                                    ? " with" : " without")
                               << " checkpointing)");
  }

  auto store = dataset.store();
  nn::Adam opt(model.parameters(), config.lr);
  model.set_training(true);

  TrainStats stats;
  util::Timer timer;
  tensor::reset_peak_bytes();

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    data::DataLoader loader(store, dataset.train_indices, config.loader,
                            device);
    double epoch_loss = 0.0;
    size_t epoch_samples = 0;
    int in_batch = 0;
    while (auto sample = loader.next()) {
      if (device)
        device->h2d_copy(sample_device_bytes(dataset.spec), sample->pinned);
      Tensor loss = sample_loss(model, *sample, config.use_checkpoint);
      // Scale so accumulated gradients average over the batch.
      loss.mul_scalar(1.0f / static_cast<float>(config.batch_size))
          .backward();
      epoch_loss += loss.item();
      ++epoch_samples;
      ++stats.samples_seen;
      if (++in_batch == config.batch_size) {
        nn::clip_grad_norm(opt.params(), config.clip_norm);
        opt.step();
        opt.zero_grad();
        in_batch = 0;
      }
    }
    if (in_batch > 0) {  // trailing partial batch
      nn::clip_grad_norm(opt.params(), config.clip_norm);
      opt.step();
      opt.zero_grad();
    }
    stats.final_train_loss =
        epoch_samples ? epoch_loss / static_cast<double>(epoch_samples) : 0.0;
    LOG_INFO << "epoch " << epoch << " train loss " << stats.final_train_loss;
  }

  stats.wall_seconds = timer.seconds();
  stats.throughput = stats.samples_seen / std::max(1e-9, stats.wall_seconds);
  stats.peak_activation_bytes = tensor::alloc_stats().peak_bytes;
  if (!dataset.val_indices.empty())
    stats.val_loss = validation_loss(model, dataset);
  return stats;
}

double validation_loss(SurrogateModel& model, const data::Dataset& dataset) {
  auto store = dataset.store();
  model.set_training(false);
  tensor::NoGradGuard ng;
  double total = 0.0;
  for (size_t idx : dataset.val_indices) {
    data::Sample s = store.read(idx);
    total += sample_loss(model, s, false).item();
  }
  model.set_training(true);
  return dataset.val_indices.empty()
             ? 0.0
             : total / static_cast<double>(dataset.val_indices.size());
}

ParallelTrainStats train_data_parallel(const SurrogateConfig& model_config,
                                       const data::Dataset& dataset,
                                       const TrainConfig& config, int nranks,
                                       int steps_per_rank) {
  COASTAL_CHECK(nranks >= 1 && steps_per_rank >= 1);
  ParallelTrainStats stats;
  std::mutex stats_mutex;

  util::Timer timer;
  par::World world(nranks);
  world.run([&](par::Comm& comm) {
    // Identical init on every rank: same seed -> bit-identical replicas.
    util::Rng rng(config.seed);
    SurrogateModel model(model_config, rng);
    nn::Adam opt(model.parameters(), config.lr);
    auto store = dataset.store();

    const size_t shard = dataset.train_indices.size();
    size_t seen = 0;
    std::vector<float> flat;
    for (int step = 0; step < steps_per_rank; ++step) {
      // Round-robin sharding: rank r takes indices r, r+nranks, ...
      const size_t pos =
          (static_cast<size_t>(step) * static_cast<size_t>(nranks) +
           static_cast<size_t>(comm.rank())) % shard;
      data::Sample sample = store.read(dataset.train_indices[pos]);
      Tensor loss = sample_loss(model, sample, config.use_checkpoint);
      loss.backward();
      ++seen;

      // Gradient allreduce: flatten, sum, average, scatter back.
      size_t total = 0;
      for (auto& p : opt.params()) total += static_cast<size_t>(p.numel());
      flat.assign(total, 0.0f);
      size_t off = 0;
      for (auto& p : opt.params()) {
        Tensor g = p.grad();
        if (g.defined())
          std::copy(g.data().begin(), g.data().end(), flat.begin() + off);
        off += static_cast<size_t>(p.numel());
      }
      comm.allreduce_sum(flat);
      const float inv = 1.0f / static_cast<float>(nranks);
      off = 0;
      for (const auto& pc : opt.params()) {
        Tensor p = pc;  // Tensor is a shared handle; copy is cheap
        p.zero_grad();
        const auto n = static_cast<size_t>(p.numel());
        std::vector<float> g(flat.begin() + off, flat.begin() + off + n);
        for (auto& x : g) x *= inv;
        p.accumulate_grad(Tensor::from_vector(p.shape(), std::move(g)));
        off += n;
      }
      nn::clip_grad_norm(opt.params(), config.clip_norm);
      opt.step();
      opt.zero_grad();
    }

    std::lock_guard<std::mutex> lock(stats_mutex);
    stats.samples_seen += seen;
    stats.allreduce_bytes = comm.bytes_sent();
  });
  stats.wall_seconds = timer.seconds();
  stats.throughput =
      static_cast<double>(stats.samples_seen) / std::max(1e-9, stats.wall_seconds);
  return stats;
}

EvalMetrics evaluate(SurrogateModel& model, const data::Dataset& dataset,
                     const std::vector<size_t>& indices) {
  auto store = dataset.store();
  model.set_training(false);
  tensor::NoGradGuard ng;
  util::ErrorStats err[data::kNumVariables];

  for (size_t idx : indices) {
    data::Sample s = store.read(idx);
    SurrogateOutput out = model.forward_sample(s, false);
    auto pred = decode_prediction(dataset.spec, out, dataset.normalizer);
    auto truth = decode_target(dataset.spec, s, dataset.normalizer);
    COASTAL_CHECK(pred.size() == truth.size());
    for (size_t t = 0; t < pred.size(); ++t) {
      err[data::kU].add(pred[t].u, truth[t].u);
      err[data::kV].add(pred[t].v, truth[t].v);
      err[data::kW].add(pred[t].w, truth[t].w);
      err[data::kZeta].add(pred[t].zeta, truth[t].zeta);
    }
  }
  model.set_training(true);

  EvalMetrics m;
  for (int v = 0; v < data::kNumVariables; ++v) {
    m.mae[v] = err[v].mae();
    m.rmse[v] = err[v].rmse();
  }
  return m;
}

}  // namespace coastal::core
