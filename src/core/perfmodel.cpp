#include "core/perfmodel.hpp"

#include <algorithm>
#include <cmath>

namespace coastal::core {

namespace {

// Calibration constants (see header for the anchor points).

/// Core-seconds per (cell * simulated second), from
/// 9908 s * 512 cores / (898*598*12 cells * 12*86400 s) at eff(512).
constexpr double kRomsWorkPerCellSecond = 6.46e-7;

/// Parallel efficiency of the MPI halo pattern: eff = 1/(1 + a*sqrt(p)).
/// a chosen so eff(512) ~ 0.85 (the paper's own 512-core run sits on the
/// flattening part of published ROMS scaling curves).
constexpr double kRomsHaloFactor = 0.0078;

/// Paper anchors for the surrogate.
constexpr double kPaperInferenceSeconds = 0.888;
constexpr double kFineEpisodesPer12Day = 24.0;
constexpr double kCoarseEpisodesPer12Day = 1.0;

/// Training anchors (Fig. 9): single-GPU instances/s.
constexpr double kTrainThroughput1Ckpt = 1.36;
constexpr double kTrainThroughput1NoCkpt = 0.81;
/// Ring-allreduce: comm fraction per step grows as 2(n-1)/n; the constant
/// is set so 32 GPUs land near the paper's ~25 inst/s (eff ~ 0.57).
constexpr double kAllreduceFraction = 0.39;
/// Crossing the node boundary (8 GPUs/node -> InfiniBand) costs extra.
constexpr double kInterNodePenalty = 0.12;

}  // namespace

double PerfModel::roms_seconds(int64_t nx, int64_t ny, int64_t nz,
                               double sim_seconds, int cores) {
  const double cells = static_cast<double>(nx) * ny * nz;
  const double eff =
      1.0 / (1.0 + kRomsHaloFactor * std::sqrt(static_cast<double>(cores)));
  return kRomsWorkPerCellSecond * cells * sim_seconds /
         (static_cast<double>(cores) * eff);
}

SurrogateConfig PerfModel::paper_config() {
  SurrogateConfig cfg;
  cfg.H = 900;
  cfg.W = 600;
  cfg.D = 12;
  cfg.T = 24;
  cfg.patch_h = 5;
  cfg.patch_w = 5;
  cfg.patch_d = 4;
  cfg.embed_dim = 24;
  cfg.stages = 3;
  cfg.heads = {3, 6, 12};
  return cfg;
}

double PerfModel::surrogate_flops(const SurrogateConfig& cfg) {
  // Per stage: tokens * (qkv + proj + mlp) + windowed attention.
  double flops = 0.0;
  double h = static_cast<double>(cfg.h1());
  double w = static_cast<double>(cfg.w1());
  double d = static_cast<double>(cfg.d1());
  const double t = static_cast<double>(cfg.tn());
  double c = static_cast<double>(cfg.embed_dim);
  for (int s = 0; s < cfg.stages; ++s) {
    const double tokens = h * w * d * t;
    const Window4d& win = (s == 0) ? cfg.window_first : cfg.window_rest;
    const double n = static_cast<double>(win[0] * win[1] * win[2] * win[3]);
    // Two blocks per stage: 2 * (4 c^2 projections + 2 n c attention +
    // 2 * mlp_ratio c^2 MLP) per token.
    flops += 2.0 * tokens *
             (4.0 * c * c + 2.0 * n * c +
              2.0 * static_cast<double>(cfg.mlp_ratio) * c * c);
    if (s + 1 < cfg.stages) {
      h /= 2;
      w /= 2;
      d /= 2;
      c *= 2;
    }
  }
  // Embedding + decoder are a small constant fraction; fold in 20%.
  return flops * 1.2;
}

double PerfModel::surrogate_inference_seconds(const SurrogateConfig& cfg) {
  static const double paper_flops = surrogate_flops(paper_config());
  return kPaperInferenceSeconds * surrogate_flops(cfg) / paper_flops;
}

double PerfModel::forecast_12day_seconds() {
  return (kCoarseEpisodesPer12Day + kFineEpisodesPer12Day) *
         kPaperInferenceSeconds;
}

double PerfModel::workflow_12day_seconds(double fail_rate) {
  fail_rate = std::clamp(fail_rate, 0.0, 1.0);
  // Each failed fine episode recomputes 12 hours of ocean time on 512
  // cores of MPI ROMS.
  const double roms_per_episode =
      roms_seconds(898, 598, 12, 12.0 * 3600.0, 512);
  return forecast_12day_seconds() +
         fail_rate * kFineEpisodesPer12Day * roms_per_episode;
}

double PerfModel::training_throughput(int ngpus, bool checkpoint) {
  const double single =
      checkpoint ? kTrainThroughput1Ckpt : kTrainThroughput1NoCkpt;
  if (ngpus <= 1) return single;
  const double n = static_cast<double>(ngpus);
  double comm = kAllreduceFraction * 2.0 * (n - 1.0) / n;
  if (ngpus > 8) comm += kInterNodePenalty;  // multi-node InfiniBand hop
  const double eff = 1.0 / (1.0 + comm);
  return n * single * eff;
}

uint64_t PerfModel::sample_device_bytes_fullscale() {
  // 900x600x12 mesh, T = 24: inputs (T+1 frames) + targets, FP32 on device.
  const auto cfg = paper_config();
  const uint64_t vol_in = 3ULL * 900 * 600 * 12 * (cfg.T + 1);
  const uint64_t surf_in = 900ULL * 600 * (cfg.T + 1);
  const uint64_t vol_out = 3ULL * 900 * 600 * 12 * cfg.T;
  const uint64_t surf_out = 900ULL * 600 * cfg.T;
  return (vol_in + surf_in + vol_out + surf_out) * sizeof(float);
}

uint64_t PerfModel::activation_bytes_fullscale() {
  // Dominant term: token activations kept for backward across all blocks.
  // tokens_stage0 * C * (activations per block) * blocks, FP16 compute
  // with FP32 master copies ~ 6 bytes/elem effective; calibrated to the
  // paper's measured 42 GB.
  const auto cfg = paper_config();
  const double tokens = static_cast<double>(cfg.h1()) * cfg.w1() * cfg.d1() *
                        cfg.tn();
  const double per_block = 14.0;  // LN/QKV/attn/softmax/MLP intermediates
  // Trailing factor calibrated so the paper config lands on its measured
  // 42 GB (covers attention score matrices and allocator slack).
  const double bytes =
      tokens * static_cast<double>(cfg.embed_dim) * per_block * 6.0 * 9.65;
  return static_cast<uint64_t>(bytes);
}

uint64_t PerfModel::parameter_state_bytes_fullscale() {
  // 3.39 M parameters (Table IV, patch 5): weights + grads (FP32) + Adam
  // m/v + FP16 working copies, plus allocator overhead — the paper
  // reports 12 GB for the whole "model parameter updating" stage, which
  // includes framework workspace; we report the strict state bytes.
  const double params = 3.39e6;
  return static_cast<uint64_t>(params * (4 + 4 + 8 + 2));
}

}  // namespace coastal::core
