#include "io/field_io.hpp"

#include <algorithm>
#include <fstream>

#include "util/check.hpp"

namespace coastal::io {

void write_field_csv(const std::string& path, const std::vector<float>& field,
                     int nx, int ny, const ocean::Grid* grid) {
  COASTAL_CHECK(field.size() == static_cast<size_t>(nx) * ny);
  std::ofstream out(path);
  COASTAL_CHECK_MSG(out.good(), "cannot open " << path);
  out << "iy,ix,value\n";
  for (int iy = 0; iy < ny; ++iy)
    for (int ix = 0; ix < nx; ++ix) {
      if (grid && !grid->wet(ix, iy)) continue;
      out << iy << "," << ix << ","
          << field[static_cast<size_t>(iy) * nx + ix] << "\n";
    }
}

void write_series_csv(const std::string& path,
                      const std::vector<std::string>& names,
                      const std::vector<std::vector<float>>& series) {
  COASTAL_CHECK(names.size() == series.size() && !series.empty());
  const size_t len = series[0].size();
  for (const auto& s : series) COASTAL_CHECK(s.size() == len);
  std::ofstream out(path);
  COASTAL_CHECK_MSG(out.good(), "cannot open " << path);
  out << "step";
  for (const auto& n : names) out << "," << n;
  out << "\n";
  for (size_t i = 0; i < len; ++i) {
    out << i;
    for (const auto& s : series) out << "," << s[i];
    out << "\n";
  }
}

std::string ascii_field(const std::vector<float>& field, int nx, int ny,
                        float lo, float hi, const ocean::Grid* grid) {
  static const char ramp[] = " .:-=+*%@$";
  std::string out;
  out.reserve(static_cast<size_t>((nx + 1) * ny));
  for (int iy = ny - 1; iy >= 0; --iy) {  // north up
    for (int ix = 0; ix < nx; ++ix) {
      if (grid && !grid->wet(ix, iy)) {
        out += '#';
        continue;
      }
      const float v = field[static_cast<size_t>(iy) * nx + ix];
      const float t = std::clamp((v - lo) / (hi - lo + 1e-12f), 0.0f, 1.0f);
      out += ramp[static_cast<size_t>(t * 9.0f)];
    }
    out += '\n';
  }
  return out;
}

}  // namespace coastal::io
