#pragma once

/// \file field_io.hpp
/// Field export for the visualization benches (Fig. 5 maps, Fig. 6 time
/// series): CSV dumps of 2-D fields and per-station series, plus a crude
/// ASCII rendering for quick terminal inspection.

#include <string>
#include <vector>

#include "data/center_fields.hpp"
#include "ocean/grid.hpp"

namespace coastal::io {

/// Write a (ny x nx) field as CSV rows "iy,ix,value" (land cells skipped
/// when `grid` is given).
void write_field_csv(const std::string& path, const std::vector<float>& field,
                     int nx, int ny, const ocean::Grid* grid = nullptr);

/// Write several aligned time series: header "step,<name0>,<name1>,...".
void write_series_csv(const std::string& path,
                      const std::vector<std::string>& names,
                      const std::vector<std::vector<float>>& series);

/// Terminal rendering of a field with '#' for land and a 10-level ramp
/// for values in [lo, hi] — used by examples for a quick look.
std::string ascii_field(const std::vector<float>& field, int nx, int ny,
                        float lo, float hi, const ocean::Grid* grid = nullptr);

}  // namespace coastal::io
