#include "data/sample.hpp"

#include "util/check.hpp"

namespace coastal::data {

SampleSpec make_spec(int src_ny, int src_nx, int src_nz, int T,
                     int multiple_hw, int multiple_d) {
  auto round_up = [](int n, int m) { return ((n + m - 1) / m) * m; };
  SampleSpec spec;
  spec.src_ny = src_ny;
  spec.src_nx = src_nx;
  spec.src_nz = src_nz;
  spec.T = T;
  spec.H = round_up(src_ny, multiple_hw);
  spec.W = round_up(src_nx, multiple_hw);
  spec.D = round_up(src_nz, multiple_d);
  return spec;
}

namespace {

/// Writes variable `src` (layer-major (k, iy, ix)) into the volume tensor
/// at channel c and time t; `boundary_only` keeps just the lateral ring of
/// the source mesh.
void pack_volume(float* vol, const SampleSpec& s, int c, int t,
                 std::span<const float> src, bool boundary_only) {
  const int64_t Tn = s.T + 1;
  for (int k = 0; k < s.src_nz; ++k) {
    for (int iy = 0; iy < s.src_ny; ++iy) {
      const bool edge_row = (iy == 0 || iy == s.src_ny - 1);
      for (int ix = 0; ix < s.src_nx; ++ix) {
        if (boundary_only && !edge_row && ix != 0 && ix != s.src_nx - 1)
          continue;
        const float x =
            src[(static_cast<size_t>(k) * s.src_ny + iy) * s.src_nx + ix];
        const int64_t idx =
            ((((static_cast<int64_t>(c) * s.H + iy) * s.W + ix) * s.D + k) *
             Tn) + t;
        vol[idx] = x;
      }
    }
  }
}

void pack_surface(float* surf, const SampleSpec& s, int t,
                  std::span<const float> src, bool boundary_only) {
  const int64_t Tn = s.T + 1;
  for (int iy = 0; iy < s.src_ny; ++iy) {
    const bool edge_row = (iy == 0 || iy == s.src_ny - 1);
    for (int ix = 0; ix < s.src_nx; ++ix) {
      if (boundary_only && !edge_row && ix != 0 && ix != s.src_nx - 1)
        continue;
      surf[((static_cast<int64_t>(iy) * s.W + ix) * Tn) + t] =
          src[static_cast<size_t>(iy) * s.src_nx + ix];
    }
  }
}

/// Target layout has T time steps.
void pack_target_volume(float* vol, const SampleSpec& s, int c, int t,
                        std::span<const float> src) {
  for (int k = 0; k < s.src_nz; ++k)
    for (int iy = 0; iy < s.src_ny; ++iy)
      for (int ix = 0; ix < s.src_nx; ++ix) {
        const float x =
            src[(static_cast<size_t>(k) * s.src_ny + iy) * s.src_nx + ix];
        const int64_t idx =
            ((((static_cast<int64_t>(c) * s.H + iy) * s.W + ix) * s.D + k) *
             s.T) + t;
        vol[idx] = x;
      }
}

void pack_target_surface(float* surf, const SampleSpec& s, int t,
                         std::span<const float> src) {
  for (int iy = 0; iy < s.src_ny; ++iy)
    for (int ix = 0; ix < s.src_nx; ++ix)
      surf[((static_cast<int64_t>(iy) * s.W + ix) * s.T) + t] =
          src[static_cast<size_t>(iy) * s.src_nx + ix];
}

}  // namespace

Sample make_sample(const SampleSpec& spec,
                   std::span<const CenterFields> window) {
  COASTAL_CHECK_MSG(static_cast<int>(window.size()) == spec.T + 1,
                    "window needs T+1 = " << spec.T + 1 << " snapshots, got "
                                          << window.size());
  for (const auto& f : window) {
    COASTAL_CHECK(f.nx == spec.src_nx && f.ny == spec.src_ny &&
                  f.nz == spec.src_nz);
  }

  Sample s;
  s.volume = tensor::Tensor::zeros({3, spec.H, spec.W, spec.D, spec.T + 1});
  s.surface = tensor::Tensor::zeros({1, spec.H, spec.W, spec.T + 1});
  s.target_volume = tensor::Tensor::zeros({3, spec.H, spec.W, spec.D, spec.T});
  s.target_surface = tensor::Tensor::zeros({1, spec.H, spec.W, spec.T});

  for (int t = 0; t <= spec.T; ++t) {
    const auto& f = window[static_cast<size_t>(t)];
    const bool bc_only = (t > 0);
    pack_volume(s.volume.raw(), spec, 0, t, f.u, bc_only);
    pack_volume(s.volume.raw(), spec, 1, t, f.v, bc_only);
    pack_volume(s.volume.raw(), spec, 2, t, f.w, bc_only);
    pack_surface(s.surface.raw(), spec, t, f.zeta, bc_only);
    if (t > 0) {
      pack_target_volume(s.target_volume.raw(), spec, 0, t - 1, f.u);
      pack_target_volume(s.target_volume.raw(), spec, 1, t - 1, f.v);
      pack_target_volume(s.target_volume.raw(), spec, 2, t - 1, f.w);
      pack_target_surface(s.target_surface.raw(), spec, t - 1, f.zeta);
    }
  }
  return s;
}

BatchedInput make_batched_input(
    const SampleSpec& spec,
    std::span<const std::span<const CenterFields>> windows) {
  const int B = static_cast<int>(windows.size());
  COASTAL_CHECK_MSG(B > 0, "batched input needs at least one window");

  BatchedInput batch;
  batch.volume =
      tensor::Tensor::zeros({B, 3, spec.H, spec.W, spec.D, spec.T + 1});
  batch.surface = tensor::Tensor::zeros({B, 1, spec.H, spec.W, spec.T + 1});

  for (int b = 0; b < B; ++b) {
    const auto window = windows[static_cast<size_t>(b)];
    COASTAL_CHECK_MSG(static_cast<int>(window.size()) == spec.T + 1,
                      "window needs T+1 = " << spec.T + 1
                                            << " snapshots, got "
                                            << window.size());
    float* vol = batch.volume.raw() + b * spec.volume_numel();
    float* surf = batch.surface.raw() + b * spec.surface_numel();
    for (int t = 0; t <= spec.T; ++t) {
      const auto& f = window[static_cast<size_t>(t)];
      COASTAL_CHECK(f.nx == spec.src_nx && f.ny == spec.src_ny &&
                    f.nz == spec.src_nz);
      const bool bc_only = (t > 0);
      pack_volume(vol, spec, 0, t, f.u, bc_only);
      pack_volume(vol, spec, 1, t, f.v, bc_only);
      pack_volume(vol, spec, 2, t, f.w, bc_only);
      pack_surface(surf, spec, t, f.zeta, bc_only);
    }
  }
  return batch;
}

tensor::Tensor valid_mask(const SampleSpec& spec) {
  tensor::Tensor m = tensor::Tensor::zeros({spec.H, spec.W});
  for (int iy = 0; iy < spec.src_ny; ++iy)
    for (int ix = 0; ix < spec.src_nx; ++ix)
      m.raw()[static_cast<size_t>(iy) * spec.W + ix] = 1.0f;
  return m;
}

}  // namespace coastal::data
