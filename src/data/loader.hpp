#pragma once

/// \file loader.hpp
/// Multi-worker prefetching data loader (Sec. III-D).
///
/// Reproduces the three training-pipeline optimizations the paper ablates
/// in Fig. 9:
///  - *prefetch*: `num_workers` threads pull samples from the (simulated)
///    SSD ahead of the consumer into a bounded queue of depth
///    num_workers * prefetch_factor, hiding I/O behind compute;
///  - *pinned memory*: loaded samples are flagged pinned, which routes the
///    trainer's host-to-device copy onto the fast DMA path of DeviceSim;
///  - (activation checkpointing lives in the trainer, not here.)
/// With num_workers == 0 the loader degrades to synchronous reads, which
/// is exactly the "w/o prefetch" ablation.

#include <condition_variable>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "data/store.hpp"

namespace coastal::data {

struct LoaderConfig {
  int num_workers = 2;
  int prefetch_factor = 2;
  bool pin_memory = true;
  bool shuffle = false;
  uint64_t shuffle_seed = 1234;
};

class DataLoader {
 public:
  /// Iterates over `indices` into `store` once (one epoch).
  DataLoader(const SampleStore& store, std::vector<size_t> indices,
             const LoaderConfig& config, DeviceSim* device);
  ~DataLoader();

  DataLoader(const DataLoader&) = delete;
  DataLoader& operator=(const DataLoader&) = delete;

  /// Next sample in epoch order, or nullopt when exhausted.
  std::optional<Sample> next();

  size_t size() const { return indices_.size(); }

 private:
  void worker_loop();

  const SampleStore& store_;
  std::vector<size_t> indices_;
  LoaderConfig config_;
  DeviceSim* device_;

  // Ordered hand-off: workers claim input positions atomically, but
  // deliver into per-position slots so the consumer sees epoch order.
  std::mutex mutex_;
  std::condition_variable cv_full_, cv_space_;
  std::deque<std::pair<size_t, Sample>> ready_;  ///< (position, sample)
  size_t next_claim_ = 0;    ///< next position a worker will take
  size_t next_deliver_ = 0;  ///< next position the consumer expects
  size_t queue_capacity_ = 1;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace coastal::data
