#include "data/loader.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace coastal::data {

DataLoader::DataLoader(const SampleStore& store, std::vector<size_t> indices,
                       const LoaderConfig& config, DeviceSim* device)
    : store_(store),
      indices_(std::move(indices)),
      config_(config),
      device_(device) {
  if (config_.shuffle) {
    util::Rng rng(config_.shuffle_seed);
    // Fisher-Yates.
    for (size_t i = indices_.size(); i > 1; --i) {
      const size_t j = rng.uniform_index(i);
      std::swap(indices_[i - 1], indices_[j]);
    }
  }
  if (config_.num_workers > 0) {
    queue_capacity_ = static_cast<size_t>(config_.num_workers) *
                      std::max(1, config_.prefetch_factor);
    for (int i = 0; i < config_.num_workers; ++i)
      workers_.emplace_back([this] { worker_loop(); });
  }
}

DataLoader::~DataLoader() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_space_.notify_all();
  cv_full_.notify_all();
  for (auto& w : workers_) w.join();
}

void DataLoader::worker_loop() {
  for (;;) {
    size_t pos;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      // Claim the next position once there is queue headroom: positions
      // in flight = claimed - delivered.
      cv_space_.wait(lock, [this] {
        return stop_ || (next_claim_ < indices_.size() &&
                         next_claim_ - next_deliver_ < queue_capacity_);
      });
      if (stop_ || next_claim_ >= indices_.size()) return;
      pos = next_claim_++;
    }
    Sample s = store_.read(indices_[pos], device_);
    s.pinned = config_.pin_memory;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      ready_.emplace_back(pos, std::move(s));
    }
    cv_full_.notify_all();
  }
}

std::optional<Sample> DataLoader::next() {
  if (config_.num_workers == 0) {
    // Synchronous path ("w/o prefetch" ablation).
    if (next_deliver_ >= indices_.size()) return std::nullopt;
    Sample s = store_.read(indices_[next_deliver_++], device_);
    s.pinned = config_.pin_memory;
    return s;
  }

  std::unique_lock<std::mutex> lock(mutex_);
  if (next_deliver_ >= indices_.size()) return std::nullopt;
  const size_t want = next_deliver_;
  cv_full_.wait(lock, [this, want] {
    return std::any_of(ready_.begin(), ready_.end(),
                       [want](const auto& p) { return p.first == want; });
  });
  auto it = std::find_if(ready_.begin(), ready_.end(),
                         [want](const auto& p) { return p.first == want; });
  Sample s = std::move(it->second);
  ready_.erase(it);
  ++next_deliver_;
  lock.unlock();
  cv_space_.notify_all();
  return s;
}

}  // namespace coastal::data
