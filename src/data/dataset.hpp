#pragma once

/// \file dataset.hpp
/// End-to-end dataset construction from a simulation archive, mirroring
/// Sec. III-B: interpolate to centers, fit z-score statistics on the
/// training span, slide a window of T+1 snapshots with a stride, pad the
/// mesh, and persist samples in FP16.

#include <string>
#include <vector>

#include "data/loader.hpp"
#include "data/normalization.hpp"
#include "data/sample.hpp"
#include "data/store.hpp"
#include "ocean/archive.hpp"

namespace coastal::data {

struct DatasetConfig {
  int T = 4;           ///< forecast steps per sample (paper: 24)
  int stride = 2;      ///< window stride in snapshots (paper: 6)
  int multiple_hw = 4; ///< pad H/W to a multiple (patch * window product)
  int multiple_d = 2;  ///< pad D likewise
  std::string dir;     ///< sample store directory
};

struct Dataset {
  SampleSpec spec;
  Normalizer normalizer;
  std::vector<size_t> train_indices;
  std::vector<size_t> val_indices;
  std::string dir;

  SampleStore store() const { return SampleStore(dir, spec); }
};

/// Convert snapshots to centered fields (the stagger->center resampling).
std::vector<CenterFields> center_archive(const ocean::Grid& grid,
                                         const std::vector<ocean::Snapshot>& snaps);

/// Build a dataset from already-centered fields.  The normalizer is fitted
/// on all of `fields` unless `reuse_normalizer` is provided (test datasets
/// must reuse the training statistics, as the paper does for 2012).
/// Windows are split train/val 9:1 (paper's split) unless `val_fraction`
/// overrides it.
Dataset build_dataset(const std::vector<CenterFields>& fields,
                      const DatasetConfig& config,
                      const Normalizer* reuse_normalizer = nullptr,
                      double val_fraction = 0.1);

}  // namespace coastal::data
