#pragma once

/// \file center_fields.hpp
/// Cell-centered views of a simulation snapshot.
///
/// ROMS keeps velocities on cell faces (C-grid); the paper's data prep
/// linearly interpolates all variables to cell centers before training.
/// This module performs that resampling and holds the result in the
/// (k, iy, ix) layout the tensor packing expects.

#include <vector>

#include "ocean/sigma.hpp"

namespace coastal::data {

struct CenterFields {
  int nx = 0, ny = 0, nz = 0;
  double time = 0.0;
  /// Layer-major: index (k, iy, ix) -> k*ny*nx + iy*nx + ix.
  std::vector<float> u, v, w;
  /// (iy, ix).
  std::vector<float> zeta;

  size_t cell3(int k, int iy, int ix) const {
    return (static_cast<size_t>(k) * ny + iy) * nx + ix;
  }
  size_t cell2(int iy, int ix) const {
    return static_cast<size_t>(iy) * nx + ix;
  }
};

/// Linear face->center interpolation of one snapshot.
CenterFields center_from_snapshot(const ocean::Grid& grid,
                                  const ocean::Snapshot& snap);

}  // namespace coastal::data
