#pragma once

/// \file device_sim.hpp
/// Bandwidth model of the DGX memory hierarchy (Table II of the paper):
///
///   SSD --750 MB/s--> CPU RAM --PCIe (paged ~6 GB/s, pinned ~12 GB/s)-->
///   GPU HBM (2 TB/s).
///
/// There is no GPU here, so the hierarchy is *simulated*: transfers sleep
/// for bytes/bandwidth (scaled so a miniature sample takes a few hundred
/// milliseconds, matching the paper's 5.5 s per full-size sample in
/// proportion to compute).  This is what lets the I/O ablations (Fig. 9)
/// reproduce their shape — prefetch hides the SSD latency, pinned memory
/// doubles H2D throughput — without the physical disk and bus.
/// Setting any bandwidth to 0 disables that stage's sleep.

#include <atomic>
#include <cstdint>

namespace coastal::data {

struct DeviceSimConfig {
  /// Effective bandwidths in bytes/second.  Defaults keep the paper's
  /// *ratios* (750 MB/s : 6 GB/s : 12 GB/s) scaled down 100x so miniature
  /// samples produce measurable stage times.
  double ssd_bandwidth = 7.5e6;
  double h2d_paged_bandwidth = 60e6;
  double h2d_pinned_bandwidth = 120e6;

  static DeviceSimConfig instantaneous() {
    return {0.0, 0.0, 0.0};
  }
};

/// Thread-safe; transfer methods sleep the calling thread (so prefetch
/// workers genuinely overlap simulated I/O with compute).
class DeviceSim {
 public:
  explicit DeviceSim(const DeviceSimConfig& cfg = {}) : cfg_(cfg) {}

  /// SSD -> CPU read of `bytes`.
  void ssd_read(uint64_t bytes);
  /// CPU -> "GPU" copy; pinned memory rides the fast path.
  void h2d_copy(uint64_t bytes, bool pinned);

  /// Cumulative accounting (benches report these).
  uint64_t ssd_bytes() const { return ssd_bytes_.load(); }
  uint64_t h2d_bytes() const { return h2d_bytes_.load(); }
  double ssd_seconds() const { return ssd_seconds_.load(); }
  double h2d_seconds() const { return h2d_seconds_.load(); }

  const DeviceSimConfig& config() const { return cfg_; }

 private:
  void sleep_for_transfer(uint64_t bytes, double bandwidth,
                          std::atomic<double>& counter);

  DeviceSimConfig cfg_;
  std::atomic<uint64_t> ssd_bytes_{0};
  std::atomic<uint64_t> h2d_bytes_{0};
  std::atomic<double> ssd_seconds_{0.0};
  std::atomic<double> h2d_seconds_{0.0};
};

}  // namespace coastal::data
