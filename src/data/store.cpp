#include "data/store.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "tensor/half.hpp"
#include "util/check.hpp"

namespace coastal::data {

namespace {

constexpr uint32_t kMagic = 0x5A3DCA57u;

void write_tensor_fp16(std::ofstream& out, const tensor::Tensor& t) {
  const auto halves = tensor::to_half(t.data());
  out.write(reinterpret_cast<const char*>(halves.data()),
            static_cast<std::streamsize>(halves.size() * sizeof(uint16_t)));
}

tensor::Tensor read_tensor_fp16(std::ifstream& in, const tensor::Shape& shape) {
  const auto n = static_cast<size_t>(tensor::numel(shape));
  std::vector<uint16_t> halves(n);
  in.read(reinterpret_cast<char*>(halves.data()),
          static_cast<std::streamsize>(n * sizeof(uint16_t)));
  return tensor::Tensor::from_vector(shape, tensor::to_float(halves));
}

}  // namespace

SampleStore::SampleStore(std::string dir, const SampleSpec& spec)
    : dir_(std::move(dir)), spec_(spec) {
  std::filesystem::create_directories(dir_);
}

std::string SampleStore::path_for(size_t index) const {
  char name[64];
  std::snprintf(name, sizeof(name), "sample_%06zu.bin", index);
  return dir_ + "/" + name;
}

uint64_t SampleStore::sample_bytes() const {
  return 4 + 7 * 4 +
         static_cast<uint64_t>(spec_.total_numel()) * sizeof(uint16_t);
}

std::string SampleStore::write(size_t index, const Sample& sample) const {
  const std::string path = path_for(index);
  std::ofstream out(path, std::ios::binary);
  COASTAL_CHECK_MSG(out.good(), "cannot write " << path);
  out.write(reinterpret_cast<const char*>(&kMagic), sizeof(kMagic));
  const int32_t hdr[7] = {spec_.H, spec_.W, spec_.D, spec_.T,
                          spec_.src_ny, spec_.src_nx, spec_.src_nz};
  out.write(reinterpret_cast<const char*>(hdr), sizeof(hdr));
  write_tensor_fp16(out, sample.volume);
  write_tensor_fp16(out, sample.surface);
  write_tensor_fp16(out, sample.target_volume);
  write_tensor_fp16(out, sample.target_surface);
  COASTAL_CHECK_MSG(out.good(), "write failed for " << path);
  return path;
}

Sample SampleStore::read(size_t index, DeviceSim* device) const {
  const std::string path = path_for(index);
  std::ifstream in(path, std::ios::binary);
  COASTAL_CHECK_MSG(in.good(), "cannot read " << path);
  uint32_t magic = 0;
  in.read(reinterpret_cast<char*>(&magic), sizeof(magic));
  COASTAL_CHECK_MSG(magic == kMagic, path << " is not a sample file");
  int32_t hdr[7];
  in.read(reinterpret_cast<char*>(hdr), sizeof(hdr));
  COASTAL_CHECK_MSG(hdr[0] == spec_.H && hdr[1] == spec_.W &&
                        hdr[2] == spec_.D && hdr[3] == spec_.T,
                    "sample spec mismatch in " << path);

  if (device) device->ssd_read(sample_bytes());

  Sample s;
  s.volume = read_tensor_fp16(in, {3, spec_.H, spec_.W, spec_.D, spec_.T + 1});
  s.surface = read_tensor_fp16(in, {1, spec_.H, spec_.W, spec_.T + 1});
  s.target_volume =
      read_tensor_fp16(in, {3, spec_.H, spec_.W, spec_.D, spec_.T});
  s.target_surface = read_tensor_fp16(in, {1, spec_.H, spec_.W, spec_.T});
  COASTAL_CHECK_MSG(in.good(), "truncated sample file " << path);
  return s;
}

size_t SampleStore::count() const {
  size_t n = 0;
  while (std::filesystem::exists(path_for(n))) ++n;
  return n;
}

}  // namespace coastal::data
