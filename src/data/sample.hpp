#pragma once

/// \file sample.hpp
/// Training-sample construction: the regional-model contract.
///
/// Unlike global forecasting surrogates, the paper's model takes the
/// *initial condition* of the whole mesh at t = 0 plus the *boundary
/// conditions* (the lateral ring of the mesh) at t = 1..T, and predicts
/// the interior at t = 1..T.  A sample therefore packs:
///   volume  [3, H, W, D, T+1] : u, v, w — full field at time 0, boundary
///                               ring only (interior zero) at times 1..T;
///   surface [1, H, W, T+1]    : zeta, same scheme;
///   target_volume  [3, H, W, D, T] and target_surface [1, H, W, T]:
///                               the true fields at times 1..T.
/// H/W are the zero-padded mesh dims (paper pads 898x598 -> 900x600 so the
/// patching divides evenly); `valid` marks the un-padded region evaluation
/// should count.

#include <span>

#include "data/center_fields.hpp"
#include "tensor/tensor.hpp"

namespace coastal::data {

struct SampleSpec {
  int H = 0;      ///< padded rows (ny)
  int W = 0;      ///< padded cols (nx)
  int D = 0;      ///< sigma layers (padded if needed)
  int T = 0;      ///< forecast steps
  int src_ny = 0, src_nx = 0, src_nz = 0;

  int64_t volume_numel() const {
    return 3LL * H * W * D * (T + 1);
  }
  int64_t surface_numel() const { return 1LL * H * W * (T + 1); }
  int64_t target_volume_numel() const { return 3LL * H * W * D * T; }
  int64_t target_surface_numel() const { return 1LL * H * W * T; }
  int64_t total_numel() const {
    return volume_numel() + surface_numel() + target_volume_numel() +
           target_surface_numel();
  }
  bool operator==(const SampleSpec&) const = default;
};

/// Round dims of the source mesh up to multiples of `multiple_hw` (for H
/// and W) and `multiple_d` (for D).
SampleSpec make_spec(int src_ny, int src_nx, int src_nz, int T,
                     int multiple_hw, int multiple_d);

struct Sample {
  tensor::Tensor volume;          ///< [3, H, W, D, T+1]
  tensor::Tensor surface;         ///< [1, H, W, T+1]
  tensor::Tensor target_volume;   ///< [3, H, W, D, T]
  tensor::Tensor target_surface;  ///< [1, H, W, T]
  bool pinned = false;            ///< staged in pinned host memory
};

/// Build one sample from T+1 consecutive *normalized* snapshots.
Sample make_sample(const SampleSpec& spec,
                   std::span<const CenterFields> window);

/// Inference-only batched input: the stacked volume/surface tensors for a
/// batch of windows, without the target tensors a Sample would carry
/// (serving never reads them — zeroing and concatenating them per request
/// was pure waste).
struct BatchedInput {
  tensor::Tensor volume;   ///< [B, 3, H, W, D, T+1]
  tensor::Tensor surface;  ///< [B, 1, H, W, T+1]
};

/// Pack `windows` (each T+1 normalized snapshots) directly into one
/// stacked batch: request b lands at offset b*volume_numel() /
/// b*surface_numel(), written by the same packers make_sample uses, so
/// the bytes are bitwise identical to concatenating per-window samples.
BatchedInput make_batched_input(
    const SampleSpec& spec,
    std::span<const std::span<const CenterFields>> windows);

/// [H, W] mask: 1 inside the original mesh, 0 in the zero-padding.
tensor::Tensor valid_mask(const SampleSpec& spec);

}  // namespace coastal::data
