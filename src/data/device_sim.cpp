#include "data/device_sim.hpp"

#include <chrono>
#include <thread>

namespace coastal::data {

void DeviceSim::sleep_for_transfer(uint64_t bytes, double bandwidth,
                                   std::atomic<double>& counter) {
  if (bandwidth <= 0.0 || bytes == 0) return;
  const double seconds = static_cast<double>(bytes) / bandwidth;
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  // Relaxed accumulate (no std::atomic<double>::fetch_add pre-C++20 on
  // all toolchains; CAS loop is portable).
  double cur = counter.load();
  while (!counter.compare_exchange_weak(cur, cur + seconds)) {
  }
}

void DeviceSim::ssd_read(uint64_t bytes) {
  ssd_bytes_.fetch_add(bytes);
  sleep_for_transfer(bytes, cfg_.ssd_bandwidth, ssd_seconds_);
}

void DeviceSim::h2d_copy(uint64_t bytes, bool pinned) {
  h2d_bytes_.fetch_add(bytes);
  sleep_for_transfer(bytes,
                     pinned ? cfg_.h2d_pinned_bandwidth
                            : cfg_.h2d_paged_bandwidth,
                     h2d_seconds_);
}

}  // namespace coastal::data
