#pragma once

/// \file store.hpp
/// On-disk sample store.  Samples are serialized in FP16 — the paper
/// converts the FP64 ROMS archive to FP16 for training, halving bytes
/// moved through the SSD bottleneck.  Reads are routed through DeviceSim
/// so the loader experiences realistic (simulated) SSD latency.

#include <string>
#include <vector>

#include "data/device_sim.hpp"
#include "data/sample.hpp"

namespace coastal::data {

class SampleStore {
 public:
  /// `dir` is created if missing.
  SampleStore(std::string dir, const SampleSpec& spec);

  const SampleSpec& spec() const { return spec_; }
  const std::string& dir() const { return dir_; }

  /// Serialize one sample as FP16; returns its file path.
  std::string write(size_t index, const Sample& sample) const;

  /// Read sample `index`; if `device` is given, simulated SSD time is
  /// charged for the file's bytes.
  Sample read(size_t index, DeviceSim* device = nullptr) const;

  /// Number of sample files present.
  size_t count() const;

  /// Bytes of one serialized sample (all four tensors, FP16).
  uint64_t sample_bytes() const;

  std::string path_for(size_t index) const;

 private:
  std::string dir_;
  SampleSpec spec_;
};

}  // namespace coastal::data
