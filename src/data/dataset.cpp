#include "data/dataset.hpp"

#include "util/check.hpp"
#include "util/logging.hpp"

namespace coastal::data {

std::vector<CenterFields> center_archive(
    const ocean::Grid& grid, const std::vector<ocean::Snapshot>& snaps) {
  std::vector<CenterFields> fields;
  fields.reserve(snaps.size());
  for (const auto& s : snaps) fields.push_back(center_from_snapshot(grid, s));
  return fields;
}

Dataset build_dataset(const std::vector<CenterFields>& fields,
                      const DatasetConfig& config,
                      const Normalizer* reuse_normalizer,
                      double val_fraction) {
  COASTAL_CHECK_MSG(!fields.empty(), "empty archive");
  COASTAL_CHECK_MSG(static_cast<int>(fields.size()) > config.T,
                    "archive shorter than one window");
  COASTAL_CHECK_MSG(!config.dir.empty(), "DatasetConfig.dir not set");

  Dataset ds;
  ds.dir = config.dir;
  ds.spec = make_spec(fields[0].ny, fields[0].nx, fields[0].nz, config.T,
                      config.multiple_hw, config.multiple_d);

  if (reuse_normalizer) {
    COASTAL_CHECK_MSG(reuse_normalizer->frozen(),
                      "reused normalizer must be frozen");
    ds.normalizer = *reuse_normalizer;
  } else {
    for (const auto& f : fields) ds.normalizer.accumulate(f);
    ds.normalizer.freeze();
  }

  // Normalize a working copy once; windows share snapshots.
  std::vector<CenterFields> norm = fields;
  for (auto& f : norm) ds.normalizer.normalize_fields(f);

  SampleStore store(ds.dir, ds.spec);
  size_t count = 0;
  for (size_t start = 0;
       start + static_cast<size_t>(config.T) < norm.size();
       start += static_cast<size_t>(config.stride)) {
    std::span<const CenterFields> window(norm.data() + start,
                                         static_cast<size_t>(config.T) + 1);
    store.write(count++, make_sample(ds.spec, window));
  }
  COASTAL_CHECK_MSG(count > 0, "no windows produced");

  // Chronological 9:1 split: the tail becomes validation, avoiding
  // train/val windows that overlap in time.
  const auto n_val = static_cast<size_t>(
      static_cast<double>(count) * val_fraction + 0.5);
  const size_t n_train = count - n_val;
  for (size_t i = 0; i < n_train; ++i) ds.train_indices.push_back(i);
  for (size_t i = n_train; i < count; ++i) ds.val_indices.push_back(i);

  LOG_INFO << "dataset at " << ds.dir << ": " << n_train << " train + "
           << n_val << " val samples, spec " << ds.spec.H << "x" << ds.spec.W
           << "x" << ds.spec.D << " T=" << ds.spec.T;
  return ds;
}

}  // namespace coastal::data
