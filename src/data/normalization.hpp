#pragma once

/// \file normalization.hpp
/// Per-variable z-score normalization, fitted on the training year only
/// (the paper normalizes with 2011 statistics and applies them to 2012).

#include <array>
#include <span>
#include <string>
#include <vector>

#include "data/center_fields.hpp"
#include "util/stats.hpp"

namespace coastal::data {

class Normalizer;

/// Value-returning frame conversions — the episode-chaining idiom shared
/// by rollout, the workflow, the serving layer, and the sharded path:
/// a prediction is denormalized for verification/output, and
/// renormalized when it seeds the next episode's initial condition.
CenterFields normalized_copy(const CenterFields& denormalized,
                             const Normalizer& norm);
CenterFields denormalized_copy(const CenterFields& normalized,
                               const Normalizer& norm);

/// Variable order used throughout the pipeline.
enum Variable : int { kU = 0, kV = 1, kW = 2, kZeta = 3 };
inline const char* variable_name(int v) {
  constexpr const char* names[] = {"u", "v", "w", "zeta"};
  return names[v];
}
constexpr int kNumVariables = 4;

class Normalizer {
 public:
  /// Accumulate statistics from snapshots (call repeatedly, then freeze).
  void accumulate(const CenterFields& f);
  void freeze();
  bool frozen() const { return frozen_; }

  double mean(int var) const { return mean_[static_cast<size_t>(var)]; }
  double stddev(int var) const { return std_[static_cast<size_t>(var)]; }

  float normalize_value(int var, float x) const {
    return static_cast<float>((x - mean_[static_cast<size_t>(var)]) /
                              std_[static_cast<size_t>(var)]);
  }
  float denormalize_value(int var, float x) const {
    return static_cast<float>(x * std_[static_cast<size_t>(var)] +
                              mean_[static_cast<size_t>(var)]);
  }
  void normalize(std::span<float> xs, int var) const;
  void denormalize(std::span<float> xs, int var) const;

  /// Normalize all four fields of a snapshot in place.
  void normalize_fields(CenterFields& f) const;

 private:
  std::array<util::RunningStats, kNumVariables> stats_;
  std::array<double, kNumVariables> mean_{};
  std::array<double, kNumVariables> std_{};
  bool frozen_ = false;
};

}  // namespace coastal::data
