#include "data/center_fields.hpp"

namespace coastal::data {

CenterFields center_from_snapshot(const ocean::Grid& grid,
                                  const ocean::Snapshot& snap) {
  const int nx = grid.nx(), ny = grid.ny(), nz = grid.nz();
  CenterFields f;
  f.nx = nx;
  f.ny = ny;
  f.nz = nz;
  f.time = snap.time;
  const size_t n3 = static_cast<size_t>(nz) * ny * nx;
  f.u.assign(n3, 0.0f);
  f.v.assign(n3, 0.0f);
  f.w.assign(n3, 0.0f);
  f.zeta = snap.zeta;

  for (int k = 0; k < nz; ++k) {
    const auto& uk = snap.u3d[static_cast<size_t>(k)];
    const auto& vk = snap.v3d[static_cast<size_t>(k)];
    const auto& wk = snap.w3d[static_cast<size_t>(k)];
    for (int iy = 0; iy < ny; ++iy) {
      for (int ix = 0; ix < nx; ++ix) {
        const size_t c = f.cell3(k, iy, ix);
        f.u[c] = 0.5f * (uk[grid.u_index(ix, iy)] +
                         uk[grid.u_index(ix + 1, iy)]);
        f.v[c] = 0.5f * (vk[grid.v_index(ix, iy)] +
                         vk[grid.v_index(ix, iy + 1)]);
        f.w[c] = wk[grid.rho_index(ix, iy)];  // already cell-centered
      }
    }
  }
  return f;
}

}  // namespace coastal::data
