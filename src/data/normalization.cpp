#include "data/normalization.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace coastal::data {

void Normalizer::accumulate(const CenterFields& f) {
  COASTAL_CHECK_MSG(!frozen_, "Normalizer already frozen");
  stats_[kU].add(std::span<const float>(f.u));
  stats_[kV].add(std::span<const float>(f.v));
  stats_[kW].add(std::span<const float>(f.w));
  stats_[kZeta].add(std::span<const float>(f.zeta));
}

void Normalizer::freeze() {
  COASTAL_CHECK_MSG(stats_[0].count() > 0, "no data accumulated");
  for (int v = 0; v < kNumVariables; ++v) {
    mean_[static_cast<size_t>(v)] = stats_[static_cast<size_t>(v)].mean();
    // Floor the scale: w is tiny and a zero-variance var must not divide
    // by zero.
    std_[static_cast<size_t>(v)] =
        std::max(stats_[static_cast<size_t>(v)].stddev(), 1e-8);
  }
  frozen_ = true;
}

void Normalizer::normalize(std::span<float> xs, int var) const {
  const auto m = static_cast<float>(mean_[static_cast<size_t>(var)]);
  const auto inv = static_cast<float>(1.0 / std_[static_cast<size_t>(var)]);
  for (auto& x : xs) x = (x - m) * inv;
}

void Normalizer::denormalize(std::span<float> xs, int var) const {
  const auto m = static_cast<float>(mean_[static_cast<size_t>(var)]);
  const auto s = static_cast<float>(std_[static_cast<size_t>(var)]);
  for (auto& x : xs) x = x * s + m;
}

void Normalizer::normalize_fields(CenterFields& f) const {
  COASTAL_CHECK_MSG(frozen_, "freeze() the Normalizer before use");
  normalize(f.u, kU);
  normalize(f.v, kV);
  normalize(f.w, kW);
  normalize(f.zeta, kZeta);
}

CenterFields normalized_copy(const CenterFields& denormalized,
                             const Normalizer& norm) {
  CenterFields f = denormalized;
  norm.normalize_fields(f);
  return f;
}

CenterFields denormalized_copy(const CenterFields& normalized,
                               const Normalizer& norm) {
  CenterFields f = normalized;
  norm.denormalize(f.u, kU);
  norm.denormalize(f.v, kV);
  norm.denormalize(f.w, kW);
  norm.denormalize(f.zeta, kZeta);
  return f;
}

}  // namespace coastal::data
