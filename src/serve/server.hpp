#pragma once

/// \file server.hpp
/// ForecastServer — the serving front end that turns the paper's
/// one-forecast-at-a-time workflow (Fig. 1) into a concurrent service.
///
/// Architecture (pacs_bridge-style service layer around the domain core):
///
///   clients ──submit()──▶ RequestQueue (bounded; block-or-reject)
///                             │ pop_batch (max-batch / max-wait)
///                        worker pool ──▶ identical-episode collapse
///                             │        ──▶ coalesced surrogate forward
///                             │            (one batch in flight per model)
///                             ├─▶ per-entry decode + verification
///                             ├─▶ numerical-model fallback on failure
///                             └─▶ promise fan-out + ServerStats
///
/// Concurrency contract: each model slot's forward runs under a per-model
/// mutex — the surrogate's Swin blocks keep a lazily grown window-mask
/// cache, and on a shared-memory host the kernels already parallelize one
/// forward across every core, so overlapping forwards of the *same* model
/// would race the cache for no throughput.  Workers instead overlap the
/// serial per-request stages (sample packing, decode, verification, ROMS
/// fallback) with the next batch's forward.  Throughput comes from the
/// micro-batching itself: see scheduler.hpp.
///
/// Results are bitwise identical to serial execution: every request's
/// frames match a one-request-at-a-time run of the same episode exactly,
/// for any arrival interleaving and any max_batch (grouped BatchNorm
/// statistics + batch-invariant kernels; pinned in tests/test_serve.cpp).
///
/// Steady-state serving performs zero heap allocations per episode: each
/// worker wraps a served batch in a tensor::ArenaScope, so all episode
/// tensors bump-allocate from recycled pooled chunks (also pinned in
/// test_serve.cpp via alloc_stats().total_allocs).

#include <array>
#include <cstdint>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "core/surrogate.hpp"
#include "core/workflow.hpp"
#include "serve/scheduler.hpp"

namespace coastal::serve {

/// One servable (model, sample geometry) pair.  The model pointer is
/// non-owning and must outlive the server; the server flips it to eval
/// mode and serializes its forwards internally.
struct ModelSlot {
  core::SurrogateModel* model = nullptr;
  data::SampleSpec spec;
};

/// Optional numerical-model fallback context (run_workflow's ROMS rerun).
/// The restart's tidal phase is anchored per request by the episode's own
/// initial-condition frame time (CenterFields::time), so traffic whose
/// windows advance through the forecast horizon falls back consistently.
struct FallbackContext {
  ocean::TidalForcing tides;
  ocean::PhysicsParams params;
};

struct ServerConfig {
  int workers = 1;             ///< episode pipeline workers
  size_t queue_capacity = 64;  ///< backpressure bound

  /// Full-queue policy: block the submitter until a slot frees, or reject
  /// immediately (submit() returns nullopt and the rejection is counted).
  enum class Overflow { kBlock, kReject };
  Overflow overflow = Overflow::kBlock;

  BatchPolicy batch;  ///< micro-batch coalescing knobs

  double threshold = 4.0e-4;    ///< mass-residual bound, m/s
  double snapshot_dt = 1800.0;  ///< seconds between forecast snapshots
  bool verify = true;  ///< run the physics check (needs a grid)

  /// When > 0: resize the global kernel thread pool (and the kernel
  /// config's chunking decisions) to this many workers at server
  /// construction — deployment-time sizing without a process restart.
  int kernel_threads = 0;

  std::optional<FallbackContext> fallback;  ///< enable the ROMS rerun
};

/// Aggregated serving metrics; `snapshot()` is safe to call while serving.
struct ServerStatsSnapshot {
  uint64_t submitted = 0;
  uint64_t served = 0;
  uint64_t rejected = 0;
  uint64_t fallbacks = 0;
  uint64_t batches = 0;    ///< coalesced forwards executed
  uint64_t coalesced = 0;  ///< requests served by sharing an identical entry
  double p50_ms = 0.0;       ///< end-to-end request latency percentiles
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double throughput_rps = 0.0;  ///< served / wall time of the serving span
  /// Requests per coalesced forward (served / batches) — counts sharers
  /// of collapsed identical episodes, unlike batch_hist below.
  double mean_batch = 0.0;
  /// batch_hist[i] counts forwards with i+1 *distinct* episodes (last
  /// bucket: >= kBatchHistBuckets).
  static constexpr int kBatchHistBuckets = 16;
  std::array<uint64_t, kBatchHistBuckets> batch_hist{};
  size_t queue_depth = 0;  ///< instantaneous
  double fallback_rate() const {
    return served ? static_cast<double>(fallbacks) / served : 0.0;
  }
};

class ForecastServer {
 public:
  /// `grid` (non-owning, may be null) enables verification and the ROMS
  /// fallback; without it episodes are served unverified.
  ForecastServer(std::vector<ModelSlot> models, const data::Normalizer& norm,
                 const ocean::Grid* grid, const ServerConfig& config);
  ~ForecastServer();  ///< graceful: shutdown() if still running

  ForecastServer(const ForecastServer&) = delete;
  ForecastServer& operator=(const ForecastServer&) = delete;

  /// Enqueue one episode.  Returns the result future, or nullopt when the
  /// request was rejected (queue full under Overflow::kReject, or server
  /// shut down).  Validates the window against the slot's spec.
  std::optional<std::future<ForecastResult>> submit(ForecastRequest request);

  /// Stop accepting requests, drain every queued episode, join workers.
  /// Idempotent; the destructor calls it.
  void shutdown();

  ServerStatsSnapshot stats() const;
  const ServerConfig& config() const { return config_; }

 private:
  void worker_loop();
  void serve_batch(std::vector<PendingRequest>& batch);
  void record_latency(double seconds);

  std::vector<ModelSlot> models_;
  std::vector<std::unique_ptr<std::mutex>> model_mutexes_;
  const data::Normalizer& norm_;
  const ocean::Grid* grid_;
  ServerConfig config_;
  std::optional<core::MassVerifier> verifier_;  ///< engaged when grid_ set

  RequestQueue queue_;
  std::vector<std::thread> workers_;
  bool shut_down_ = false;
  std::mutex shutdown_mutex_;

  // Stats: one mutex guards the counters and the log-bucketed latency
  // histogram (64 geometric buckets, ratio 2^(1/4), from 1 µs).
  static constexpr int kLatencyBuckets = 64;
  mutable std::mutex stats_mutex_;
  uint64_t submitted_ = 0, served_ = 0, rejected_ = 0, fallbacks_ = 0,
           batches_ = 0, coalesced_ = 0;
  std::array<uint64_t, kLatencyBuckets> latency_hist_{};
  std::array<uint64_t, ServerStatsSnapshot::kBatchHistBuckets> batch_hist_{};
  std::chrono::steady_clock::time_point first_serve_{};
  std::chrono::steady_clock::time_point last_serve_{};
};

}  // namespace coastal::serve
