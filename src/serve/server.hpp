#pragma once

/// \file server.hpp
/// ForecastServer — the serving front end that turns the paper's
/// one-forecast-at-a-time workflow (Fig. 1) into a concurrent service.
///
/// Architecture (pacs_bridge-style service layer around the domain core):
///
///   clients ──submit()──▶ input screening ─▶ RequestQueue (bounded)
///                             │ pop_batch (max-batch / max-wait)
///                        worker pool ──▶ deadline triage
///                             │        ──▶ identical-episode collapse
///                             │        ──▶ circuit-breaker admit
///                             │        ──▶ forecast-cache probe (exact
///                             │            hits return with no forward;
///                             │            prefix hits resume the chain)
///                             │        ──▶ coalesced surrogate forward
///                             │            (retries; one batch in flight
///                             │             per model)
///                             ├─▶ per-entry decode + verification
///                             ├─▶ numerical-model fallback / degraded mode
///                             └─▶ promise fan-out + ServerStats
///        watchdog ── heartbeats ──▶ retire hung worker, fail its batch
///                                   with kWorkerLost, spawn replacement
///
/// Concurrency contract: each model slot's forward runs under a per-model
/// mutex — the surrogate's Swin blocks keep a lazily grown window-mask
/// cache, and on a shared-memory host the kernels already parallelize one
/// forward across every core, so overlapping forwards of the *same* model
/// would race the cache for no throughput.  Workers instead overlap the
/// serial per-request stages (sample packing, decode, verification, ROMS
/// fallback) with the next batch's forward.  Throughput comes from the
/// micro-batching itself: see scheduler.hpp.
///
/// Failure contract (see reliability.hpp): every accepted request's future
/// resolves — with a result, or with a typed ForecastError.  A failure in
/// one coalesced entry never fails sharers of other entries; a hung worker
/// is detected by the watchdog and replaced without losing queued work; a
/// slot whose failure rate trips its circuit breaker serves the verified
/// numerical answer (degraded mode) until a half-open probe recovers it.
///
/// Results are bitwise identical to serial execution: every request's
/// frames match a one-request-at-a-time run of the same episode exactly,
/// for any arrival interleaving and any max_batch (grouped BatchNorm
/// statistics + batch-invariant kernels; pinned in tests/test_serve.cpp).
/// The reliability machinery is pure control flow around the same episode
/// code, so a run where no fault fires stays bitwise identical too.
///
/// Steady-state serving performs zero heap allocations per episode: each
/// worker wraps a served batch in a tensor::ArenaScope, so all episode
/// tensors bump-allocate from recycled pooled chunks (also pinned in
/// test_serve.cpp via alloc_stats().total_allocs).

#include <array>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/surrogate.hpp"
#include "core/workflow.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "serve/cache.hpp"
#include "serve/reliability.hpp"
#include "serve/scheduler.hpp"

namespace coastal::serve {

/// One servable (model, sample geometry) pair.  The model pointer is
/// non-owning and must outlive the server; the server flips it to eval
/// mode and serializes its forwards internally.
struct ModelSlot {
  core::SurrogateModel* model = nullptr;
  data::SampleSpec spec;
  /// Weight generation; part of every cache key, so bumping it on a
  /// reload invalidates all of the slot's cached forecasts at once.
  int version = 0;
};

/// Optional numerical-model fallback context (run_workflow's ROMS rerun).
/// The restart's tidal phase is anchored per request by the episode's own
/// initial-condition frame time (CenterFields::time), so traffic whose
/// windows advance through the forecast horizon falls back consistently.
struct FallbackContext {
  ocean::TidalForcing tides;
  ocean::PhysicsParams params;
};

struct ServerConfig {
  int workers = 1;             ///< episode pipeline workers
  size_t queue_capacity = 64;  ///< backpressure bound

  /// Full-queue policy: block the submitter until a slot frees, or reject
  /// immediately (submit() returns nullopt and the rejection is counted).
  enum class Overflow { kBlock, kReject };
  Overflow overflow = Overflow::kBlock;

  BatchPolicy batch;  ///< micro-batch coalescing knobs

  double threshold = 4.0e-4;    ///< mass-residual bound, m/s
  double snapshot_dt = 1800.0;  ///< seconds between forecast snapshots
  bool verify = true;  ///< run the physics check (needs a grid)

  /// When > 0: resize the global kernel thread pool (and the kernel
  /// config's chunking decisions) to this many workers at server
  /// construction — deployment-time sizing without a process restart.
  int kernel_threads = 0;

  std::optional<FallbackContext> fallback;  ///< enable the ROMS rerun

  ReliabilityConfig reliability;  ///< retries, breaker, watchdog, screening

  /// Content-addressed forecast cache (docs/caching.md).  Environment
  /// overrides (COASTAL_CACHE*) are applied at server construction; the
  /// effective policy is visible via config().cache.
  CachePolicy cache;

  /// Observability knobs (docs/observability.md).  Environment overrides
  /// (COASTAL_PROFILE, COASTAL_TRACE, COASTAL_TRACE_RING) are applied at
  /// server construction on top of these.
  struct ObsConfig {
    /// Feed the global stage profiler's histograms (queue/pack/gemm/
    /// attention/verify/...) — cheap enough to leave on by default.
    bool profile_stages = true;
    /// Per-request span recording; disabled by default (begin_trace()
    /// then costs one relaxed load per submit).
    obs::TraceConfig trace;
  };
  ObsConfig obs;
};

/// Aggregated serving metrics; `snapshot()` is safe to call while serving.
struct ServerStatsSnapshot {
  uint64_t submitted = 0;
  uint64_t served = 0;
  uint64_t rejected = 0;
  uint64_t fallbacks = 0;
  uint64_t batches = 0;    ///< coalesced forwards executed
  uint64_t coalesced = 0;  ///< requests served by sharing an identical entry
  // Reliability counters.
  uint64_t failed = 0;   ///< queued requests resolved with a typed error
  uint64_t invalid = 0;  ///< NaN/Inf windows refused at submit()
  uint64_t deadline_expired = 0;  ///< requests failed kDeadlineExceeded
  uint64_t retries = 0;           ///< forward retry attempts performed
  uint64_t degraded = 0;     ///< requests served in breaker-degraded mode
  uint64_t worker_lost = 0;  ///< in-flight requests failed by the watchdog
  uint64_t worker_restarts = 0;  ///< replacement workers spawned
  uint64_t breaker_trips = 0;    ///< closed -> open transitions, all slots
  int breaker_open_slots = 0;    ///< slots currently open or half-open
  // Forecast-cache counters (see CacheStatsSnapshot).
  uint64_t cache_hits = 0;         ///< requests served without any forward
  uint64_t cache_prefix_hits = 0;  ///< chains resumed from a cached prefix
  uint64_t cache_misses = 0;
  uint64_t cache_inserts = 0;
  uint64_t cache_evictions = 0;
  uint64_t cache_expired = 0;
  uint64_t cache_bytes = 0;    ///< payload bytes currently cached
  uint64_t cache_entries = 0;  ///< entries currently cached
  double p50_ms = 0.0;       ///< end-to-end request latency percentiles
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double throughput_rps = 0.0;  ///< served / wall time of the serving span
  /// Requests per coalesced forward (served / batches) — counts sharers
  /// of collapsed identical episodes, unlike batch_hist below.
  double mean_batch = 0.0;
  /// batch_hist[i] counts forwards with i+1 *distinct* episodes (last
  /// bucket: >= kBatchHistBuckets).
  static constexpr int kBatchHistBuckets = 16;
  std::array<uint64_t, kBatchHistBuckets> batch_hist{};
  size_t queue_depth = 0;  ///< instantaneous
  double fallback_rate() const {
    return served ? static_cast<double>(fallbacks) / served : 0.0;
  }
};

class ForecastServer {
 public:
  /// `grid` (non-owning, may be null) enables verification and the ROMS
  /// fallback; without it episodes are served unverified.
  ForecastServer(std::vector<ModelSlot> models, const data::Normalizer& norm,
                 const ocean::Grid* grid, const ServerConfig& config);
  ~ForecastServer();  ///< graceful: shutdown() if still running

  ForecastServer(const ForecastServer&) = delete;
  ForecastServer& operator=(const ForecastServer&) = delete;

  /// Enqueue one episode.  Returns the result future, or nullopt when the
  /// request was rejected (queue full under Overflow::kReject, or server
  /// shut down).  Validates the window against the slot's spec; a window
  /// containing NaN/Inf resolves the returned future immediately with
  /// ForecastError::kInvalidInput (when screening is enabled).
  std::optional<std::future<ForecastResult>> submit(ForecastRequest request);

  /// Stop accepting requests, drain every queued episode, join workers.
  /// Releases fault-injected hangs so a chaos run always terminates.
  /// Idempotent; the destructor calls it.
  void shutdown();

  ServerStatsSnapshot stats() const;
  const ServerConfig& config() const { return config_; }

  /// The server's metrics registry: server counters/histograms, cache
  /// counters, breaker state, fault-site totals, and stage-profiler
  /// histograms all snapshot together.  Callers may register additional
  /// instruments; the registry outlives every component that feeds it.
  obs::Registry& metrics() { return registry_; }
  /// Prometheus text exposition of a full registry snapshot.
  std::string metrics_text() const { return registry_.snapshot().to_prometheus(); }
  /// JSON dump of the same snapshot.
  std::string metrics_json() const { return registry_.snapshot().to_json(); }

 private:
  /// A popped batch whose promises may be taken over by the watchdog.
  /// All promise resolution goes through deliver_* under `m`, so a hung
  /// worker that later resumes can never double-resolve a request the
  /// watchdog already failed.
  struct InFlightBatch {
    std::mutex m;
    bool abandoned = false;  ///< watchdog owns the unresolved promises now
    std::vector<PendingRequest> reqs;
    std::vector<char> resolved;  ///< per request, guarded by m
  };

  /// One serving worker: the thread plus its heartbeat telemetry.
  struct WorkerState {
    std::thread thread;
    std::atomic<uint64_t> beat{0};  ///< bumped at serving checkpoints
    std::atomic<bool> busy{false};  ///< inside serve_batch
    std::atomic<bool> retired{false};  ///< watchdog gave up on this worker
    std::atomic<bool> exited{false};   ///< worker_loop returned
    std::mutex m;
    std::shared_ptr<InFlightBatch> inflight;  ///< guarded by m
  };

  void worker_loop(WorkerState* state);
  void serve_batch(WorkerState* state,
                   const std::shared_ptr<InFlightBatch>& inflight);
  void watchdog_loop();
  /// Spawn a worker; caller holds workers_mutex_.
  WorkerState* spawn_worker_locked();
  /// Claim request `i` of `b` for resolution: marks it resolved and
  /// returns its promise, or nullptr when the batch was abandoned or the
  /// request already resolved (caller skips it entirely).  The caller
  /// records stats BEFORE resolving the claimed promise — a client that
  /// observes its outcome must also observe it in stats().
  std::promise<ForecastResult>* claim(InFlightBatch& b, size_t i);
  /// claim() + count into the failed counter (and optionally one more)
  /// before setting the exception — the typed-failure fan-out helper.
  bool deliver_error(InFlightBatch& b, size_t i, std::exception_ptr error,
                     obs::Counter* extra_counter = nullptr);

  std::vector<ModelSlot> models_;
  /// timed_mutex so a replacement worker can bound its wait on a slot a
  /// hung predecessor still holds (watchdog mode only; otherwise these
  /// are plain blocking locks).
  std::vector<std::unique_ptr<std::timed_mutex>> model_mutexes_;
  std::vector<std::unique_ptr<CircuitBreaker>> breakers_;
  const data::Normalizer& norm_;
  const ocean::Grid* grid_;
  ServerConfig config_;
  std::optional<core::MassVerifier> verifier_;  ///< engaged when grid_ set

  /// Metrics registry.  Declared BEFORE cache_: the cache registers its
  /// counters here, so the registry must outlive it.  Mutable because
  /// stats()/metrics_text() snapshot from const contexts.
  mutable obs::Registry registry_;
  // Server instrument handles (registered in the constructor; plain
  // pointers into registry_-owned storage, valid for the server's life).
  obs::Counter* c_submitted_ = nullptr;
  obs::Counter* c_served_ = nullptr;
  obs::Counter* c_rejected_ = nullptr;
  obs::Counter* c_fallbacks_ = nullptr;
  obs::Counter* c_batches_ = nullptr;
  obs::Counter* c_coalesced_ = nullptr;
  obs::Counter* c_failed_ = nullptr;
  obs::Counter* c_invalid_ = nullptr;
  obs::Counter* c_deadline_ = nullptr;
  obs::Counter* c_retries_ = nullptr;
  obs::Counter* c_degraded_ = nullptr;
  obs::Counter* c_worker_lost_ = nullptr;
  obs::Counter* c_worker_restarts_ = nullptr;
  obs::Histogram* h_latency_ = nullptr;  ///< end-to-end latency, µs
  obs::Histogram* h_batch_ = nullptr;    ///< distinct episodes per forward
  /// Serving span for throughput_rps, µs since the trace epoch; -1 until
  /// the first serve (to_us() of the first serve may legitimately be 0).
  std::atomic<int64_t> first_serve_us_{-1};
  std::atomic<int64_t> last_serve_us_{-1};

  std::unique_ptr<ForecastCache> cache_;  ///< cross-request result reuse

  RequestQueue queue_;
  mutable std::mutex workers_mutex_;
  std::vector<std::unique_ptr<WorkerState>> workers_;  ///< guarded above
  int restarts_left_ = 0;  ///< guarded by workers_mutex_
  bool shut_down_ = false;
  std::mutex shutdown_mutex_;

  std::thread watchdog_;
  std::mutex watchdog_mutex_;
  std::condition_variable watchdog_cv_;
  bool watchdog_stop_ = false;
};

}  // namespace coastal::serve
