#pragma once

/// \file shard.hpp
/// Domain-sharded episode execution over the in-process communicator —
/// the MPI-ROMS decomposition applied to the *surrogate* forecast.
///
/// The global horizontal mesh is split into px × py rectangular tiles
/// (parallel/decomposition's choose_grid / make_tile); each par::World
/// rank owns one tile, padded by a halo ring on every side that has a
/// neighbour, and runs its own tile-sized surrogate over it.  The padded
/// tile is itself a well-formed regional-model problem: make_sample packs
/// the tile's outermost ring as the boundary forcing, and with halo = 1
/// that ring IS the halo — interior tiles are forced by their neighbours'
/// state, boundary tiles by the true open-boundary data.
///
/// Episode chaining is where the ranks couple: after each predicted
/// frame, every rank exchanges its boundary ring with its four edge
/// neighbours over Comm::send/recv (corner halo cells keep the local
/// prediction — the stencils here are 5-point, matching
/// par::exchange_halo's convention), so the next episode's initial
/// condition sees the neighbours' predictions rather than stale truth.
/// The water-mass verdict is computed per rank over its owned cells only
/// and reduced with allreduce_sum / allreduce_max, so every rank (and the
/// caller) sees one global pass/fail.
///
/// Each rank wraps every episode in a tensor::ArenaScope, so steady-state
/// sharded serving performs zero per-episode heap allocations per rank,
/// exactly like the unsharded paths.
///
/// Fidelity contract: with ranks == 1 the tile is the whole domain, no
/// halo exists, and the result is bitwise identical to core::rollout on
/// the same model (pinned in tests/test_serve.cpp).  With ranks > 1 the
/// forecast is a tile-local approximation of the global surrogate — the
/// Swin attention field of view stops at the padded tile — which is the
/// standard regional-decomposition tradeoff; the verification reduction
/// is exact either way.

#include <array>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "core/surrogate.hpp"
#include "core/verification.hpp"
#include "data/normalization.hpp"
#include "data/sample.hpp"
#include "parallel/decomposition.hpp"

namespace coastal::serve {

struct ShardConfig {
  int ranks = 2;         ///< world size (px * py tiles)
  int halo = 1;          ///< ghost-ring width on neighbour sides (>= 1)
  int multiple_hw = 4;   ///< tile spec rounding, as data::make_spec
  int multiple_d = 2;
  double threshold = 4.0e-4;    ///< mass-residual bound, m/s
  double snapshot_dt = 1800.0;  ///< seconds between snapshots
  bool verify = true;           ///< needs a grid

  /// Per-recv bound on each halo-exchange message (0 = wait forever).  A
  /// rank whose neighbour never delivers (crash, dropped message) fails
  /// with par::CommError instead of blocking the world.
  int64_t exchange_timeout_us = 0;
  /// When a rank fails (exchange timeout, injected fault, model error),
  /// rerun the whole forecast single-rank on the caller-provided failover
  /// model instead of propagating the error.
  bool failover_single_rank = true;
};

struct ShardedForecast {
  /// Stitched global forecast, episodes*T denormalized frames (gathered
  /// from every rank's owned cells).
  std::vector<data::CenterFields> frames;
  core::VerificationResult verdict;  ///< globally reduced; set when verified
  bool verified = false;
  std::array<int, 2> process_grid{1, 1};  ///< (px, py)
  uint64_t halo_bytes = 0;     ///< ring-exchange traffic, all ranks
  uint64_t halo_messages = 0;
  bool failed_over = false;  ///< sharded run failed; served single-rank
  int attempted_ranks = 0;   ///< world size of the first attempt
};

/// The sample geometry of every rank's padded tile, in rank order — build
/// one tile-sized surrogate per entry before calling run_sharded_forecast
/// (the spec determines the model's H/W/D/T).
std::vector<data::SampleSpec> sharded_tile_specs(
    const data::SampleSpec& global_spec, const ShardConfig& config);

/// Run `episodes` chained episodes of the sharded forecast.  `tile_models`
/// holds one surrogate per rank, sized for sharded_tile_specs' entries
/// (checked); models are non-owning and must outlive the call.  `truth`
/// supplies episodes*T + 1 normalized global frames (IC + boundary data),
/// `grid` (nullable) enables verification.  Rank threads run concurrently;
/// each drives only its own model.
///
/// Robustness: a failing rank aborts the world (siblings unwind with
/// par::CommAborted rather than deadlocking), and when
/// `config.failover_single_rank` is set and `failover_model` is provided
/// (a *global*-spec surrogate — tile models are tile-sized and cannot
/// stand in), the forecast reruns single-rank on it; the result is then
/// marked `failed_over`.  With no failover route the originating error
/// propagates to the caller.
ShardedForecast run_sharded_forecast(
    std::span<core::SurrogateModel* const> tile_models,
    const data::SampleSpec& global_spec, const data::Normalizer& norm,
    const ocean::Grid* grid,
    std::span<const data::CenterFields> truth_normalized, int episodes,
    const ShardConfig& config,
    core::SurrogateModel* failover_model = nullptr);

}  // namespace coastal::serve
