#include "serve/cache.hpp"

#include <cmath>
#include <cstdlib>
#include <cstring>

#include "util/check.hpp"
#include "util/hash.hpp"

namespace coastal::serve {

namespace {

using clock = std::chrono::steady_clock;

size_t frame_floats(const data::SampleSpec& spec) {
  const size_t n3 = static_cast<size_t>(spec.src_nz) * spec.src_ny *
                    spec.src_nx;
  const size_t n2 = static_cast<size_t>(spec.src_ny) * spec.src_nx;
  return 3 * n3 + n2;
}

/// Pack a frame's fields (u|v|w|zeta) at `dst` — the entry's flat layout.
void pack_frame(float* dst, const data::CenterFields& f) {
  auto put = [&](const std::vector<float>& v) {
    std::memcpy(dst, v.data(), v.size() * sizeof(float));
    dst += v.size();
  };
  put(f.u);
  put(f.v);
  put(f.w);
  put(f.zeta);
}

/// Bitwise compare a frame against its packed form.
bool frame_equals(const float* packed, const data::CenterFields& f) {
  auto eq = [&](const std::vector<float>& v) {
    const bool same =
        std::memcmp(packed, v.data(), v.size() * sizeof(float)) == 0;
    packed += v.size();
    return same;
  };
  return eq(f.u) && eq(f.v) && eq(f.w) && eq(f.zeta);
}

bool frames_finite(const std::vector<data::CenterFields>& frames) {
  auto ok = [](const std::vector<float>& v) {
    for (float x : v) {
      if (!std::isfinite(x)) return false;
    }
    return true;
  };
  for (const auto& f : frames) {
    if (!ok(f.u) || !ok(f.v) || !ok(f.w) || !ok(f.zeta)) return false;
  }
  return true;
}

}  // namespace

struct ForecastCache::Entry {
  int model_id = 0;
  int version = 0;
  data::SampleSpec spec;
  int episodes = 0;
  int nx = 0, ny = 0, nz = 0;
  tensor::Storage window;  ///< (episodes*T + 1) packed key frames
  tensor::Storage frames;  ///< episodes*T packed result frames
  std::vector<double> frame_times;  ///< CenterFields::time fidelity
  core::VerificationResult verdict;
  bool verified = false;
  uint64_t bytes = 0;
  clock::time_point inserted{};
  std::list<uint64_t>::iterator lru_it;
};

ForecastCache::ForecastCache(const CachePolicy& policy,
                             obs::Registry* registry)
    : policy_(policy) {
  if (registry == nullptr) {
    owned_registry_ = std::make_unique<obs::Registry>();
    registry = owned_registry_.get();
  }
  hits_ = registry->counter("coastal_cache_hits_total",
                            "Exact cache hits (served with no forward)");
  prefix_hits_ =
      registry->counter("coastal_cache_prefix_hits_total",
                        "Chains resumed from a cached prefix entry");
  misses_ = registry->counter("coastal_cache_misses_total", "Cache misses");
  inserts_ =
      registry->counter("coastal_cache_inserts_total", "Entries admitted");
  evictions_ = registry->counter(
      "coastal_cache_evictions_total",
      "LRU and collision-displacement removals");
  expirations_ =
      registry->counter("coastal_cache_expired_total", "TTL removals");
  rejected_ = registry->counter(
      "coastal_cache_rejected_total",
      "Inserts refused (non-finite payload or oversized entry)");
  registry->gauge_fn("coastal_cache_bytes",
                     "Accounted payload bytes currently cached", [this] {
                       std::lock_guard<std::mutex> lock(mutex_);
                       return static_cast<double>(bytes_);
                     });
  registry->gauge_fn("coastal_cache_entries", "Entries currently cached",
                     [this] {
                       std::lock_guard<std::mutex> lock(mutex_);
                       return static_cast<double>(entries_.size());
                     });
}
ForecastCache::~ForecastCache() = default;

CachePolicy cache_policy_from_env(CachePolicy base) {
  auto get = [](const char* name) -> const char* {
    const char* v = std::getenv(name);
    return (v && *v) ? v : nullptr;
  };
  if (const char* v = get("COASTAL_CACHE")) {
    base.enabled = std::strcmp(v, "0") != 0;
  }
  if (const char* v = get("COASTAL_CACHE_BYTES")) {
    base.max_bytes = std::strtoull(v, nullptr, 10);
  }
  if (const char* v = get("COASTAL_CACHE_TTL_US")) {
    base.ttl_us = std::strtoll(v, nullptr, 10);
  }
  if (const char* v = get("COASTAL_CACHE_PREFIX")) {
    base.prefix_reuse = std::strcmp(v, "0") != 0;
  }
  return base;
}

std::vector<uint64_t> ForecastCache::boundary_digests(
    int model_id, int version, const data::SampleSpec& spec,
    std::span<const data::CenterFields> window) {
  const int T = spec.T;
  util::ContentHash h;
  h.update_i64(model_id);
  h.update_i64(version);
  h.update_i64(spec.H);
  h.update_i64(spec.W);
  h.update_i64(spec.D);
  h.update_i64(spec.T);
  h.update_i64(spec.src_ny);
  h.update_i64(spec.src_nx);
  h.update_i64(spec.src_nz);
  std::vector<uint64_t> digests;
  digests.reserve((window.size() - 1) / static_cast<size_t>(T));
  for (size_t i = 0; i < window.size(); ++i) {
    const auto& f = window[i];
    h.update_i64(f.nx);
    h.update_i64(f.ny);
    h.update_i64(f.nz);
    h.update_f32(f.u);
    h.update_f32(f.v);
    h.update_f32(f.w);
    h.update_f32(f.zeta);
    // One snapshot per episode boundary: after absorbing frame p*T the
    // stream has seen exactly the p-episode prefix window.
    if (i > 0 && i % static_cast<size_t>(T) == 0) digests.push_back(h.digest());
  }
  return digests;
}

bool ForecastCache::matches_locked(
    const Entry& entry, int model_id, int version,
    const data::SampleSpec& spec,
    std::span<const data::CenterFields> window) const {
  if (entry.model_id != model_id || entry.version != version ||
      !(entry.spec == spec)) {
    return false;
  }
  const size_t nframes =
      static_cast<size_t>(entry.episodes) * spec.T + 1;
  if (window.size() < nframes) return false;
  const size_t ff = frame_floats(spec);
  const float* packed = entry.window.data();
  for (size_t i = 0; i < nframes; ++i) {
    const auto& f = window[i];
    if (f.nx != entry.nx || f.ny != entry.ny || f.nz != entry.nz) return false;
    if (!frame_equals(packed, f)) return false;
    packed += ff;
  }
  return true;
}

void ForecastCache::touch_locked(uint64_t digest) {
  auto it = entries_.find(digest);
  lru_.erase(it->second->lru_it);
  lru_.push_front(digest);
  it->second->lru_it = lru_.begin();
}

void ForecastCache::erase_locked(uint64_t digest) {
  auto it = entries_.find(digest);
  bytes_ -= it->second->bytes;
  lru_.erase(it->second->lru_it);
  entries_.erase(it);
}

void ForecastCache::fill_probe_locked(const Entry& entry, Probe& out) const {
  const size_t n3 =
      static_cast<size_t>(entry.nz) * entry.ny * entry.nx;
  const size_t n2 = static_cast<size_t>(entry.ny) * entry.nx;
  const size_t count = static_cast<size_t>(entry.episodes) * entry.spec.T;
  out.episodes = entry.episodes;
  out.verdict = entry.verdict;
  out.verified = entry.verified;
  out.frames.resize(count);
  const float* p = entry.frames.data();
  for (size_t t = 0; t < count; ++t) {
    auto& f = out.frames[t];
    f.nx = entry.nx;
    f.ny = entry.ny;
    f.nz = entry.nz;
    f.time = entry.frame_times[t];
    f.u.assign(p, p + n3);
    p += n3;
    f.v.assign(p, p + n3);
    p += n3;
    f.w.assign(p, p + n3);
    p += n3;
    f.zeta.assign(p, p + n2);
    p += n2;
  }
}

ForecastCache::Probe ForecastCache::probe(
    int model_id, int version, const data::SampleSpec& spec,
    std::span<const data::CenterFields> window) {
  Probe out;
  if (!policy_.enabled || window.size() < static_cast<size_t>(spec.T) + 1) {
    return out;
  }
  const auto digests = boundary_digests(model_id, version, spec, window);
  const auto now = clock::now();
  std::lock_guard<std::mutex> lock(mutex_);
  auto expired = [&](const Entry& e) {
    return policy_.ttl_us > 0 &&
           now - e.inserted > std::chrono::microseconds(policy_.ttl_us);
  };
  // Exact key first, then every shorter episode-boundary prefix.
  for (size_t p = digests.size(); p >= 1; --p) {
    const bool exact = p == digests.size();
    if (!exact && !policy_.prefix_reuse) break;
    const uint64_t digest = digests[p - 1];
    auto it = entries_.find(digest);
    if (it == entries_.end()) continue;
    Entry& entry = *it->second;
    if (expired(entry)) {
      erase_locked(digest);
      expirations_->inc();
      continue;
    }
    if (static_cast<size_t>(entry.episodes) != p ||
        !matches_locked(entry, model_id, version, spec, window)) {
      continue;  // collision: a different window hashed here
    }
    touch_locked(digest);
    fill_probe_locked(entry, out);
    out.hit = exact;
    out.prefix = !exact;
    if (exact) {
      hits_->inc();
    } else {
      prefix_hits_->inc();
    }
    return out;
  }
  misses_->inc();
  return out;
}

void ForecastCache::insert(int model_id, int version,
                           const data::SampleSpec& spec,
                           std::span<const data::CenterFields> window,
                           const std::vector<data::CenterFields>& frames,
                           const core::VerificationResult& verdict,
                           bool verified) {
  if (!policy_.enabled) return;
  COASTAL_CHECK_MSG(!tensor::ArenaScope::active(),
                    "cache fills must happen outside episode arenas: "
                    "arena-backed entries die with the scope");
  COASTAL_CHECK_MSG(spec.T > 0 && !frames.empty() &&
                        frames.size() % static_cast<size_t>(spec.T) == 0 &&
                        window.size() == frames.size() + 1,
                    "cache insert needs e*T frames and an e*T+1 window");
  const int episodes = static_cast<int>(frames.size()) / spec.T;
  const int nx = window.front().nx, ny = window.front().ny,
            nz = window.front().nz;
  for (const auto& f : window) {
    COASTAL_CHECK(f.nx == nx && f.ny == ny && f.nz == nz);
  }
  for (const auto& f : frames) {
    COASTAL_CHECK(f.nx == nx && f.ny == ny && f.nz == nz);
  }
  // Last line of defense: an unverified payload is only admitted finite —
  // a poisoned (NaN'd) episode must never be servable from cache.  When
  // verified, the verdict's pass already certified finiteness upstream.
  if (!verified && !frames_finite(frames)) {
    std::lock_guard<std::mutex> lock(mutex_);
    rejected_->inc();
    return;
  }

  const size_t ff = frame_floats(spec);
  const uint64_t entry_bytes =
      static_cast<uint64_t>(window.size() + frames.size()) * ff *
      sizeof(float);
  const uint64_t digest =
      boundary_digests(model_id, version, spec, window).back();

  auto entry = std::make_unique<Entry>();
  entry->model_id = model_id;
  entry->version = version;
  entry->spec = spec;
  entry->episodes = episodes;
  entry->nx = nx;
  entry->ny = ny;
  entry->nz = nz;
  entry->window = tensor::Storage::uninit(
      static_cast<int64_t>(window.size() * ff));
  entry->frames =
      tensor::Storage::uninit(static_cast<int64_t>(frames.size() * ff));
  for (size_t i = 0; i < window.size(); ++i) {
    pack_frame(entry->window.data() + i * ff, window[i]);
  }
  entry->frame_times.reserve(frames.size());
  for (size_t i = 0; i < frames.size(); ++i) {
    pack_frame(entry->frames.data() + i * ff, frames[i]);
    entry->frame_times.push_back(frames[i].time);
  }
  entry->verdict = verdict;
  entry->verified = verified;
  entry->bytes = entry_bytes;
  entry->inserted = clock::now();

  std::lock_guard<std::mutex> lock(mutex_);
  if (entry_bytes > policy_.max_bytes) {
    rejected_->inc();  // would evict the whole cache and still not fit
    return;
  }
  if (auto it = entries_.find(digest); it != entries_.end()) {
    if (matches_locked(*it->second, model_id, version, spec, window)) {
      touch_locked(digest);  // identical content: refresh recency only
      return;
    }
    erase_locked(digest);  // collision displacement
    evictions_->inc();
  }
  lru_.push_front(digest);
  entry->lru_it = lru_.begin();
  bytes_ += entry_bytes;
  entries_.emplace(digest, std::move(entry));
  inserts_->inc();
  while (bytes_ > policy_.max_bytes) {
    erase_locked(lru_.back());
    evictions_->inc();
  }
}

void ForecastCache::clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  lru_.clear();
  bytes_ = 0;
}

CacheStatsSnapshot ForecastCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  CacheStatsSnapshot s;
  s.hits = static_cast<uint64_t>(hits_->value());
  s.prefix_hits = static_cast<uint64_t>(prefix_hits_->value());
  s.misses = static_cast<uint64_t>(misses_->value());
  s.inserts = static_cast<uint64_t>(inserts_->value());
  s.evictions = static_cast<uint64_t>(evictions_->value());
  s.expirations = static_cast<uint64_t>(expirations_->value());
  s.rejected = static_cast<uint64_t>(rejected_->value());
  s.bytes = bytes_;
  s.entries = entries_.size();
  return s;
}

}  // namespace coastal::serve
