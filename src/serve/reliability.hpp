#pragma once

/// \file reliability.hpp
/// The serving layer's failure vocabulary and policies: a typed error
/// taxonomy (so clients branch on codes, not string matching), bounded
/// deterministic retry, per-model-slot circuit breaking into degraded
/// mode, and the watchdog knobs.
///
/// Degraded mode is where this server differs from generic inference
/// serving: the workflow's verified-fallback design means the numerical
/// solver is always available as a bitwise-reference answer, so a tripped
/// breaker routes requests straight to `core::numerical_episode` instead
/// of shedding load.  Requests still complete — slower, but verified by
/// construction.

#include <chrono>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>

namespace coastal::serve {

/// Why a forecast request failed (or was refused).
enum class ForecastErrorCode {
  kInvalidInput,      ///< NaN/Inf in the IC window, rejected at submit
  kDeadlineExceeded,  ///< request's deadline passed before completion
  kWorkerLost,        ///< serving worker hung; watchdog failed the batch
  kModelFailure,      ///< forward failed after retries, no fallback route
  kCircuitOpen,       ///< slot degraded and no numerical fallback configured
  kCommFailure,       ///< sharded exchange failed and failover disabled
};

const char* forecast_error_name(ForecastErrorCode code);

/// The typed exception every server-originated failure resolves to.
class ForecastError : public std::runtime_error {
 public:
  ForecastError(ForecastErrorCode code, const std::string& detail)
      : std::runtime_error(std::string(forecast_error_name(code)) +
                           (detail.empty() ? "" : ": " + detail)),
        code_(code) {}
  ForecastErrorCode code() const { return code_; }

 private:
  ForecastErrorCode code_;
};

/// Bounded retry with deterministic exponential backoff for *transient*
/// forward failures (injected faults, resource hiccups).  ForecastError
/// and CheckError are never retried — they are contract violations, not
/// transients.
struct RetryPolicy {
  int max_attempts = 3;      ///< total tries, including the first
  int64_t backoff_us = 500;  ///< sleep before retry k is backoff*mult^(k-1)
  double backoff_mult = 2.0;
};

/// Per-model-slot circuit breaker.  Outcomes are per distinct episode:
/// success = forward completed and verification passed (or verification
/// is off); failure = forward failed after retries, or verification fell
/// back.  Counting fallbacks as failures is deliberate — a surrogate
/// producing chronic garbage should stop burning forwards and serve the
/// numerical answer directly.
struct BreakerPolicy {
  bool enabled = true;
  int window = 16;       ///< sliding outcome window (<= kMaxWindow)
  int min_samples = 8;   ///< don't judge before this many outcomes
  double trip_rate = 0.5;      ///< failure fraction that opens the circuit
  int64_t cooldown_us = 250000;  ///< open -> half-open probe delay
  static constexpr int kMaxWindow = 64;
};

/// Hung-worker detection.  Disabled by default (hang_timeout_ms = 0):
/// the watchdog thread, the timed model locks, and the worker-generation
/// swap only engage when a deployment opts in.
struct WatchdogPolicy {
  int64_t hang_timeout_ms = 0;  ///< 0 disables the watchdog entirely
  int64_t poll_ms = 50;         ///< heartbeat scan interval
  int max_restarts = 8;         ///< replacement-worker budget
};

/// Everything reliability-related in one ServerConfig field.
struct ReliabilityConfig {
  RetryPolicy retry;
  BreakerPolicy breaker;
  WatchdogPolicy watchdog;
  bool screen_inputs = true;  ///< reject NaN/Inf IC windows at submit()
};

/// Sliding-window failure-rate breaker for one model slot.
/// Thread-safe; all transitions happen inside admit()/record().
class CircuitBreaker {
 public:
  explicit CircuitBreaker(const BreakerPolicy& policy);

  /// How the next batch for this slot should run.
  enum class Mode {
    kNormal,    ///< closed: serve via the surrogate
    kDegraded,  ///< open: route straight to the numerical fallback
    kProbe,     ///< half-open: one surrogate batch decides recovery
  };

  /// Called once per batch before serving.  In the open state, after the
  /// cooldown has elapsed, exactly one caller receives kProbe (half-open);
  /// everyone else keeps kDegraded until the probe reports back.
  Mode admit();

  /// One outcome per distinct episode served normally.
  void record(bool success);

  /// The aggregate outcome of a kProbe batch: success closes the circuit,
  /// failure re-opens it (and restarts the cooldown).
  void probe_result(bool success);

  /// Report a non-probe failure burst (e.g. forward failed after retries
  /// for a whole batch); may trip the breaker like record(false) x n.
  void record_failures(int n);

  bool open() const;
  uint64_t trips() const;

 private:
  enum class State { kClosed, kOpen, kHalfOpen };

  void note_locked(bool success);
  void maybe_trip_locked();

  BreakerPolicy policy_;
  mutable std::mutex m_;
  State state_ = State::kClosed;
  bool outcomes_[BreakerPolicy::kMaxWindow] = {};
  int count_ = 0;  ///< valid outcomes in the ring (<= window)
  int head_ = 0;   ///< next write position
  uint64_t trips_ = 0;
  std::chrono::steady_clock::time_point opened_at_{};
};

}  // namespace coastal::serve
