#include "serve/scheduler.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace coastal::serve {

RequestQueue::RequestQueue(size_t capacity) : capacity_(capacity) {
  COASTAL_CHECK_MSG(capacity >= 1, "RequestQueue capacity must be >= 1");
}

bool RequestQueue::push(PendingRequest& p, bool block) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (block) {
    not_full_.wait(lock,
                   [this] { return closed_ || items_.size() < capacity_; });
  }
  if (closed_ || items_.size() >= capacity_) return false;
  items_.push_back(std::move(p));
  lock.unlock();
  not_empty_.notify_one();
  return true;
}

void RequestQueue::extract_locked(int model_id, size_t window_frames,
                                  size_t max,
                                  std::vector<PendingRequest>& out) {
  for (auto it = items_.begin(); it != items_.end() && out.size() < max;) {
    if (it->request.model_id == model_id &&
        it->request.window.size() == window_frames) {
      out.push_back(std::move(*it));
      it = items_.erase(it);
    } else {
      ++it;
    }
  }
}

std::vector<PendingRequest> RequestQueue::pop_batch(
    const BatchPolicy& policy) {
  const size_t max =
      static_cast<size_t>(std::max(1, policy.max_batch));
  std::vector<PendingRequest> batch;
  std::unique_lock<std::mutex> lock(mutex_);
  not_empty_.wait(lock, [this] { return closed_ || !items_.empty(); });
  if (items_.empty()) return batch;  // closed and drained

  // Batch key: model slot AND chain length.  Mixed-length windows cannot
  // share one stacked forward (different tensor shapes), so a chain
  // request never rides in a single-episode batch.
  const int key = items_.front().request.model_id;
  const size_t key_frames = items_.front().request.window.size();
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(policy.max_wait_us);
  // Every extraction immediately wakes blocked producers: under the
  // kBlock policy at saturation the *only* way new requests can arrive
  // during the collection window is a producer unblocking into the slots
  // this pop just freed — deferring the wake to the end of the pop would
  // make every saturated batch stall the full window for arrivals that
  // cannot happen.
  auto extract_and_wake = [&](int k) {
    const size_t before = batch.size();
    extract_locked(k, key_frames, max, batch);
    if (batch.size() != before) not_full_.notify_all();
  };
  extract_and_wake(key);
  // Collection window: wait for more same-key arrivals until the batch is
  // full or the window closes.  Other-key requests that arrive meanwhile
  // stay queued (and wake other workers via the notify in push()).
  while (batch.size() < max && !closed_ && policy.max_wait_us > 0) {
    if (not_empty_.wait_until(lock, deadline) == std::cv_status::timeout) {
      extract_and_wake(key);
      break;
    }
    extract_and_wake(key);
    // A push's notify_one may have landed here instead of on an idle
    // worker; if other-key work is queued, forward the wake so it is
    // served concurrently rather than after this window closes.
    if (!items_.empty()) not_empty_.notify_one();
  }
  if (batch.size() < max && closed_) extract_and_wake(key);
  return batch;
}

void RequestQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closed_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
}

bool RequestQueue::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

size_t RequestQueue::depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return items_.size();
}

}  // namespace coastal::serve
