#include "serve/shard.hpp"

#include <algorithm>
#include <cmath>

#include "core/rollout.hpp"
#include "core/workflow.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "parallel/communicator.hpp"
#include "tensor/storage.hpp"
#include "tensor/tensor.hpp"
#include "util/check.hpp"

namespace coastal::serve {

namespace {

/// A rank's tile plus per-side halo widths: a side only carries a halo
/// when a neighbour exists there, so a 1-rank decomposition is exactly
/// the unpadded global domain (the bitwise-equality contract).
struct TileExt {
  par::Tile tile;
  int hw = 0, he = 0, hs = 0, hn = 0;  ///< west/east/south/north halos
  int pnx = 0, pny = 0;                ///< padded local extents

  int gx0() const { return tile.x0 - hw; }  ///< global x of local ix = 0
  int gy0() const { return tile.y0 - hs; }
  size_t l2(int gx, int gy) const {
    return static_cast<size_t>(gy - gy0()) * static_cast<size_t>(pnx) +
           static_cast<size_t>(gx - gx0());
  }
  size_t l3(int k, int gx, int gy) const {
    return (static_cast<size_t>(k) * static_cast<size_t>(pny) +
            static_cast<size_t>(gy - gy0())) *
               static_cast<size_t>(pnx) +
           static_cast<size_t>(gx - gx0());
  }
};

TileExt make_tile_ext(int rank, int px, int py, int nx, int ny, int halo) {
  TileExt t;
  t.tile = par::make_tile(rank, px, py, nx, ny, halo);
  t.hw = t.tile.neighbor(-1, 0) >= 0 ? halo : 0;
  t.he = t.tile.neighbor(+1, 0) >= 0 ? halo : 0;
  t.hs = t.tile.neighbor(0, -1) >= 0 ? halo : 0;
  t.hn = t.tile.neighbor(0, +1) >= 0 ? halo : 0;
  t.pnx = t.tile.nx_local() + t.hw + t.he;
  t.pny = t.tile.ny_local() + t.hs + t.hn;
  return t;
}

/// Copy the tile's padded window out of a global frame.
data::CenterFields extract_tile(const data::CenterFields& g,
                                const TileExt& t) {
  data::CenterFields f;
  f.nx = t.pnx;
  f.ny = t.pny;
  f.nz = g.nz;
  f.time = g.time;
  const size_t n2 = static_cast<size_t>(t.pnx) * t.pny;
  f.u.resize(n2 * static_cast<size_t>(g.nz));
  f.v.resize(n2 * static_cast<size_t>(g.nz));
  f.w.resize(n2 * static_cast<size_t>(g.nz));
  f.zeta.resize(n2);
  for (int k = 0; k < g.nz; ++k) {
    for (int gy = t.gy0(); gy < t.tile.y1 + t.hn; ++gy) {
      for (int gx = t.gx0(); gx < t.tile.x1 + t.he; ++gx) {
        const size_t src = g.cell3(k, gy, gx);
        const size_t dst = t.l3(k, gx, gy);
        f.u[dst] = g.u[src];
        f.v[dst] = g.v[src];
        f.w[dst] = g.w[src];
        if (k == 0) f.zeta[t.l2(gx, gy)] = g.zeta[g.cell2(gy, gx)];
      }
    }
  }
  return f;
}

/// Write the tile's *owned* cells into a global frame.  Ranks own
/// disjoint regions, so concurrent writers never alias — result delivery
/// uses the shared-memory shortcut while the physical coupling (halos,
/// verdict) goes through the communicator, whose byte counters then
/// measure exactly the traffic a distributed run would pay.
void insert_owned(const data::CenterFields& f, const TileExt& t,
                  data::CenterFields& g) {
  for (int k = 0; k < g.nz; ++k) {
    for (int gy = t.tile.y0; gy < t.tile.y1; ++gy) {
      for (int gx = t.tile.x0; gx < t.tile.x1; ++gx) {
        const size_t src = t.l3(k, gx, gy);
        const size_t dst = g.cell3(k, gy, gx);
        g.u[dst] = f.u[src];
        g.v[dst] = f.v[src];
        g.w[dst] = f.w[src];
        if (k == 0) g.zeta[g.cell2(gy, gx)] = f.zeta[t.l2(gx, gy)];
      }
    }
  }
}

/// Direction encoding for ring tags: the tag names the *sender's* edge,
/// so a rank receives its west halo under its west neighbour's kEast tag.
enum Dir : int { kWest = 0, kEast = 1, kSouth = 2, kNorth = 3 };

struct Strip {
  int x0, x1, y0, y1;  ///< global cell range [x0,x1) x [y0,y1)
};

/// The owned strip this rank sends across `dir`, and the halo strip it
/// receives from that side.  Both span the owned extent along the edge
/// (no corners: 5-point coupling, like par::exchange_halo).
Strip send_strip(const TileExt& t, int dir, int halo) {
  const auto& tl = t.tile;
  switch (dir) {
    case kWest: return {tl.x0, tl.x0 + halo, tl.y0, tl.y1};
    case kEast: return {tl.x1 - halo, tl.x1, tl.y0, tl.y1};
    case kSouth: return {tl.x0, tl.x1, tl.y0, tl.y0 + halo};
    default: return {tl.x0, tl.x1, tl.y1 - halo, tl.y1};
  }
}

Strip recv_strip(const TileExt& t, int dir, int halo) {
  const auto& tl = t.tile;
  switch (dir) {
    case kWest: return {tl.x0 - halo, tl.x0, tl.y0, tl.y1};
    case kEast: return {tl.x1, tl.x1 + halo, tl.y0, tl.y1};
    case kSouth: return {tl.x0, tl.x1, tl.y0 - halo, tl.y0};
    default: return {tl.x0, tl.x1, tl.y1, tl.y1 + halo};
  }
}

int neighbor_of(const TileExt& t, int dir) {
  switch (dir) {
    case kWest: return t.tile.neighbor(-1, 0);
    case kEast: return t.tile.neighbor(+1, 0);
    case kSouth: return t.tile.neighbor(0, -1);
    default: return t.tile.neighbor(0, +1);
  }
}

int opposite(int dir) {
  switch (dir) {
    case kWest: return kEast;
    case kEast: return kWest;
    case kSouth: return kNorth;
    default: return kSouth;
  }
}

size_t strip_floats(const Strip& s, int nz) {
  return static_cast<size_t>(s.x1 - s.x0) * static_cast<size_t>(s.y1 - s.y0) *
         (3 * static_cast<size_t>(nz) + 1);
}

/// Pack/unpack a strip in a fixed (var, layer, y, x) global order — both
/// sides iterate ascending global coordinates, so the wire format needs
/// no header.
void pack_strip(const data::CenterFields& f, const TileExt& t,
                const Strip& s, std::vector<float>& buf) {
  buf.resize(strip_floats(s, f.nz));
  size_t i = 0;
  for (const auto* var : {&f.u, &f.v, &f.w}) {
    for (int k = 0; k < f.nz; ++k)
      for (int gy = s.y0; gy < s.y1; ++gy)
        for (int gx = s.x0; gx < s.x1; ++gx)
          buf[i++] = (*var)[t.l3(k, gx, gy)];
  }
  for (int gy = s.y0; gy < s.y1; ++gy)
    for (int gx = s.x0; gx < s.x1; ++gx) buf[i++] = f.zeta[t.l2(gx, gy)];
}

void unpack_strip(const std::vector<float>& buf, const TileExt& t,
                  const Strip& s, data::CenterFields& f) {
  size_t i = 0;
  for (auto* var : {&f.u, &f.v, &f.w}) {
    for (int k = 0; k < f.nz; ++k)
      for (int gy = s.y0; gy < s.y1; ++gy)
        for (int gx = s.x0; gx < s.x1; ++gx)
          (*var)[t.l3(k, gx, gy)] = buf[i++];
  }
  for (int gy = s.y0; gy < s.y1; ++gy)
    for (int gx = s.x0; gx < s.x1; ++gx) f.zeta[t.l2(gx, gy)] = buf[i++];
}

/// Refresh the halo ring of one frame from the four edge neighbours.
/// Sends are buffered (mailbox semantics), so everyone sends first and
/// receives second without deadlock-ordering concerns.  A positive
/// `timeout_us` bounds each receive: a neighbour that never delivers
/// (crashed rank, fault-dropped message) fails this rank with CommError
/// instead of wedging the world.
void exchange_ring(par::Comm& comm, const TileExt& t, int halo,
                   data::CenterFields& f, int frame_tag, int64_t timeout_us,
                   std::vector<float>& sendbuf, std::vector<float>& recvbuf) {
  obs::ScopedStage stage(obs::Stage::kHalo);
  obs::ScopedSpan span("halo.exchange");
  span.set_rank(comm.rank());
  for (int dir = 0; dir < 4; ++dir) {
    const int nb = neighbor_of(t, dir);
    if (nb < 0) continue;
    pack_strip(f, t, send_strip(t, dir, halo), sendbuf);
    comm.send(nb, frame_tag * 8 + dir, sendbuf);
  }
  for (int dir = 0; dir < 4; ++dir) {
    const int nb = neighbor_of(t, dir);
    if (nb < 0) continue;
    const Strip s = recv_strip(t, dir, halo);
    recvbuf.resize(strip_floats(s, f.nz));
    const int tag = frame_tag * 8 + opposite(dir);
    if (!comm.recv_for(nb, tag, recvbuf, timeout_us)) {
      throw par::CommError("halo exchange timed out waiting for rank " +
                           std::to_string(nb));
    }
    unpack_strip(recvbuf, t, s, f);
  }
}

/// core::cell_residual accessor over a halo-padded tile: global grid
/// indices map through TileExt into the local padded arrays, and a cell
/// at a tile edge reads its neighbour's state from the freshly exchanged
/// halo.  The stencil itself is the serial verifier's (one shared
/// implementation — see verification.hpp).
struct TileAccessor {
  const TileExt& t;
  const data::CenterFields& a;
  const data::CenterFields& b;
  int nz() const { return b.nz; }
  float u(int k, int gx, int gy) const { return b.u[t.l3(k, gx, gy)]; }
  float v(int k, int gx, int gy) const { return b.v[t.l3(k, gx, gy)]; }
  float zeta(int gx, int gy) const { return b.zeta[t.l2(gx, gy)]; }
  float zeta_prev(int gx, int gy) const { return a.zeta[t.l2(gx, gy)]; }
};

/// Per-rank partial of MassVerifier::check_pair over this rank's owned
/// cells; the global mean/max emerge from allreduce_sum / allreduce_max.
struct ResidualPartial {
  double sum = 0.0;
  double worst = 0.0;
  int64_t count = 0;
};

ResidualPartial tile_residual(const ocean::Grid& grid, const TileExt& t,
                              const data::CenterFields& a,
                              const data::CenterFields& b, double dt) {
  ResidualPartial r;
  const TileAccessor f{t, a, b};
  for (int gy = t.tile.y0; gy < t.tile.y1; ++gy) {
    for (int gx = t.tile.x0; gx < t.tile.x1; ++gx) {
      if (!grid.wet(gx, gy)) continue;
      const double residual = core::cell_residual(grid, f, gx, gy, dt);
      r.sum += residual;
      r.worst = std::max(r.worst, residual);
      ++r.count;
    }
  }
  return r;
}

}  // namespace

std::vector<data::SampleSpec> sharded_tile_specs(
    const data::SampleSpec& global_spec, const ShardConfig& config) {
  COASTAL_CHECK_MSG(config.ranks >= 1 && config.halo >= 1,
                    "ShardConfig: need ranks >= 1 and halo >= 1");
  const auto pg = par::choose_grid(config.ranks, global_spec.src_nx,
                                   global_spec.src_ny);
  std::vector<data::SampleSpec> specs;
  specs.reserve(static_cast<size_t>(config.ranks));
  for (int r = 0; r < config.ranks; ++r) {
    const TileExt t = make_tile_ext(r, pg[0], pg[1], global_spec.src_nx,
                                    global_spec.src_ny, config.halo);
    specs.push_back(data::make_spec(t.pny, t.pnx, global_spec.src_nz,
                                    global_spec.T, config.multiple_hw,
                                    config.multiple_d));
  }
  return specs;
}

ShardedForecast run_sharded_forecast(
    std::span<core::SurrogateModel* const> tile_models,
    const data::SampleSpec& global_spec, const data::Normalizer& norm,
    const ocean::Grid* grid,
    std::span<const data::CenterFields> truth, int episodes,
    const ShardConfig& config, core::SurrogateModel* failover_model) {
  const int T = global_spec.T;
  const int ranks = config.ranks;
  COASTAL_CHECK_MSG(static_cast<int>(tile_models.size()) == ranks,
                    "need one tile model per rank");
  COASTAL_CHECK_MSG(truth.size() >= static_cast<size_t>(episodes * T + 1),
                    "sharded forecast needs " << episodes * T + 1
                                              << " frames, got "
                                              << truth.size());
  const auto specs = sharded_tile_specs(global_spec, config);
  for (int r = 0; r < ranks; ++r) {
    const auto& mc = tile_models[static_cast<size_t>(r)]->config();
    COASTAL_CHECK_MSG(mc.H == specs[static_cast<size_t>(r)].H &&
                          mc.W == specs[static_cast<size_t>(r)].W &&
                          mc.D == specs[static_cast<size_t>(r)].D &&
                          mc.T == T,
                      "tile model " << r << " does not match its tile spec");
  }
  const auto pg =
      par::choose_grid(ranks, global_spec.src_nx, global_spec.src_ny);
  const bool verify = config.verify && grid != nullptr;

  ShardedForecast result;
  result.process_grid = pg;
  result.verified = verify;
  result.attempted_ranks = ranks;
  // Pre-size the stitched frames; ranks fill disjoint owned regions.
  {
    data::CenterFields proto;
    proto.nx = global_spec.src_nx;
    proto.ny = global_spec.src_ny;
    proto.nz = global_spec.src_nz;
    const size_t n2 = static_cast<size_t>(proto.nx) * proto.ny;
    proto.u.assign(n2 * static_cast<size_t>(proto.nz), 0.0f);
    proto.v = proto.u;
    proto.w = proto.u;
    proto.zeta.assign(n2, 0.0f);
    result.frames.assign(static_cast<size_t>(episodes * T), proto);
  }

  std::vector<uint64_t> rank_bytes(static_cast<size_t>(ranks), 0);
  std::vector<uint64_t> rank_msgs(static_cast<size_t>(ranks), 0);

  // The caller's ambient trace (if any) rides into the world: rank 0
  // binds it directly; ranks >= 1 start unbound and adopt the id from
  // the first traced halo envelope they receive (see communicator.cpp).
  const uint64_t caller_trace = obs::current_trace();
  par::World world(ranks);
  try {
    world.run([&](par::Comm& comm) {
    const int rank = comm.rank();
    obs::TraceBinding trace_bind(rank == 0 ? caller_trace : 0);
    const TileExt t = make_tile_ext(rank, pg[0], pg[1], global_spec.src_nx,
                                    global_spec.src_ny, config.halo);
    const data::SampleSpec& tspec = specs[static_cast<size_t>(rank)];
    core::SurrogateModel& model = *tile_models[static_cast<size_t>(rank)];
    model.set_training(false);
    tensor::NoGradGuard ng;

    data::CenterFields current_norm;  // next episode's IC (after e = 0)
    data::CenterFields prev_denorm;   // verification chain tail
    if (verify) prev_denorm = extract_tile(data::denormalized_copy(truth[0], norm), t);

    double verdict_mean_sum = 0.0, verdict_max = 0.0;
    bool verdict_pass = true;
    int64_t verdict_pairs = 0;
    uint64_t halo_bytes = 0, halo_msgs = 0;

    std::vector<float> sendbuf, recvbuf;
    std::vector<data::CenterFields> window(static_cast<size_t>(T) + 1);

    for (int e = 0; e < episodes; ++e) {
      // One arena per episode per rank: all tile sample/activation
      // tensors bump-allocate and release in bulk, so steady-state
      // sharded serving allocates nothing (frames are plain vectors).
      tensor::ArenaScope arena;
      for (int tt = 0; tt <= T; ++tt) {
        window[static_cast<size_t>(tt)] =
            extract_tile(truth[static_cast<size_t>(e * T + tt)], t);
      }
      auto frames = core::forecast_episode(model, tspec, norm, window,
                                           e > 0 ? &current_norm : nullptr);
      for (int tt = 0; tt < T; ++tt) {
        auto& frame = frames[static_cast<size_t>(tt)];
        // Couple the tiles: neighbours' predictions replace this rank's
        // extrapolation of the ring it does not own.  (Byte deltas isolate
        // ring traffic from the collectives' accounting below.)
        const uint64_t b0 = comm.bytes_sent(), m0 = comm.messages_sent();
        exchange_ring(comm, t, config.halo, frame, e * T + tt,
                      config.exchange_timeout_us, sendbuf, recvbuf);
        halo_bytes += comm.bytes_sent() - b0;
        halo_msgs += comm.messages_sent() - m0;
        if (verify) {
          const ResidualPartial p =
              tile_residual(*grid, t, prev_denorm, frame, config.snapshot_dt);
          // Double allreduce: the per-rank partials accumulate in double
          // exactly like the serial verifier, and the reduction must not
          // truncate them — a float round-off could flip a
          // near-threshold pass/fail between sharded and serial runs.
          double sums[2] = {p.sum, static_cast<double>(p.count)};
          comm.allreduce_sum(sums);
          double worst[1] = {p.worst};
          comm.allreduce_max(worst);
          const double pair_mean = sums[1] > 0 ? sums[0] / sums[1] : 0.0;
          verdict_mean_sum += pair_mean;
          verdict_max = std::max(verdict_max, worst[0]);
          verdict_pass = verdict_pass && pair_mean < config.threshold;
          ++verdict_pairs;
          prev_denorm = frame;
        }
        insert_owned(frame, t, result.frames[static_cast<size_t>(e * T + tt)]);
      }
      current_norm = data::normalized_copy(frames.back(), norm);
    }

    rank_bytes[static_cast<size_t>(rank)] = halo_bytes;
    rank_msgs[static_cast<size_t>(rank)] = halo_msgs;
    if (rank == 0 && verify) {
      result.verdict.mean_residual =
          verdict_pairs ? verdict_mean_sum / static_cast<double>(verdict_pairs)
                        : 0.0;
      result.verdict.max_residual = verdict_max;
      result.verdict.pass = verdict_pass;
    }
    });
  } catch (...) {
    // A rank failed; the abort machinery has already unwound its siblings
    // (no deadlocked world).  Fail over to a single-rank run on the
    // global-spec model when the caller provided one — a ranks = 1
    // decomposition is the whole unpadded domain, so the failover result
    // is exactly a serial forecast of the same episodes.
    if (!config.failover_single_rank || failover_model == nullptr ||
        ranks <= 1) {
      throw;
    }
    ShardConfig single = config;
    single.ranks = 1;
    core::SurrogateModel* solo[1] = {failover_model};
    ShardedForecast fo = run_sharded_forecast(
        std::span<core::SurrogateModel* const>(solo, 1), global_spec, norm,
        grid, truth, episodes, single, nullptr);
    fo.failed_over = true;
    fo.attempted_ranks = ranks;
    return fo;
  }

  for (int r = 0; r < ranks; ++r) {
    result.halo_bytes += rank_bytes[static_cast<size_t>(r)];
    result.halo_messages += rank_msgs[static_cast<size_t>(r)];
  }
  return result;
}

}  // namespace coastal::serve
