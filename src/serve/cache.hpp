#pragma once

/// \file cache.hpp
/// Content-addressed forecast result cache with prefix reuse.
///
/// Production forecast traffic is dominated by near-duplicates across
/// time: the same domain re-requested every tidal cycle, shifted lead
/// times, shared initial-condition prefixes.  PR 5's identical-episode
/// collapse only dedups *in-flight* windows; this cache extends the same
/// idea across requests.  It is *provably* safe because rollouts are
/// bitwise-deterministic (the invariant pinned since PR 1): a hit is, by
/// construction, the exact bytes a recompute would produce.
///
/// Keying.  An entry is addressed by a streaming content hash
/// (util::ContentHash) over (model slot id, model version, SampleSpec,
/// then every window frame's dims and u/v/w/zeta bytes).  The hash is an
/// index, never a proof: a probe only hits after a full byte compare of
/// the stored window, so a collision degrades to a miss, not a wrong
/// answer.  Frame `time` is deliberately excluded — it matches the
/// coalescing predicate (serve/server.cpp's same_window): the surrogate
/// and the verifier read only field bytes, time only anchors the
/// numerical fallback, and fallback results are never admitted.
///
/// Prefix reuse.  Requests may span e chained episodes (window of e*T+1
/// frames).  One pass over the window snapshots the hash at every episode
/// boundary, so digest p is exactly the key a p-episode request would
/// produce.  A probe first tries the exact key, then walks p = e-1..1:
/// a prefix hit returns the cached p*T frames plus their verdict, and the
/// server resumes the chain from the cached final frame
/// (core::resume_rollout) instead of step 0 — bitwise identical to the
/// full recompute by rollout determinism.
///
/// Verdicts.  Entries store the verification verdict (including the raw
/// pair-sum behind its mean, see VerificationResult::pair_sum) so an
/// exact hit skips re-verification entirely and a prefix hit re-verifies
/// only the fresh suffix (MassVerifier::extend_sequence), both bitwise
/// equal to a cold full pass.
///
/// Admission is the server's job (degraded / fallback / faulted results
/// never reach insert()); the cache adds one last line of defense — an
/// unverified payload is finite-scanned before admission, so a NaN'd
/// episode can never be served from cache.
///
/// Storage: frame payloads live in pooled tensor::Storage (PR 4), so a
/// warm hit performs zero tensor-layer heap allocations.  Eviction is LRU
/// under a byte budget; optional TTL expires stale entries at probe time.
/// All operations are thread-safe behind one mutex.

#include <chrono>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "core/verification.hpp"
#include "data/center_fields.hpp"
#include "data/sample.hpp"
#include "obs/registry.hpp"
#include "tensor/storage.hpp"

namespace coastal::serve {

/// Cache knobs (ServerConfig::cache).  Env overrides via
/// cache_policy_from_env: COASTAL_CACHE=0 disables, COASTAL_CACHE_BYTES,
/// COASTAL_CACHE_TTL_US, COASTAL_CACHE_PREFIX=0.
struct CachePolicy {
  bool enabled = true;
  /// Byte budget over cached payloads (stored window + result frames,
  /// 4 bytes per float).  LRU-evicts past this.
  uint64_t max_bytes = 256ull << 20;
  /// Entry lifetime in microseconds; 0 = no expiry.
  int64_t ttl_us = 0;
  /// Serve p-episode entries as resume points for e>p-episode requests.
  bool prefix_reuse = true;
};

/// Apply COASTAL_CACHE* environment overrides on top of `base`.
CachePolicy cache_policy_from_env(CachePolicy base);

/// Counters; all cumulative since construction except bytes/entries.
struct CacheStatsSnapshot {
  uint64_t hits = 0;         ///< exact probes served from cache
  uint64_t prefix_hits = 0;  ///< probes resumed from a shorter entry
  uint64_t misses = 0;
  uint64_t inserts = 0;
  uint64_t evictions = 0;    ///< LRU / collision-displacement removals
  uint64_t expirations = 0;  ///< TTL removals
  uint64_t rejected = 0;     ///< inserts refused (non-finite, oversized)
  uint64_t bytes = 0;        ///< accounted payload bytes currently held
  uint64_t entries = 0;
};

class ForecastCache {
 public:
  /// `registry` (non-owning, may be null) hosts the cache's counters and
  /// gauges — ForecastServer passes its own so one snapshot reports
  /// server and cache metrics together.  A standalone cache (tests,
  /// direct use) owns a private registry instead; either way the
  /// counters feed CacheStatsSnapshot identically.
  explicit ForecastCache(const CachePolicy& policy,
                         obs::Registry* registry = nullptr);
  ~ForecastCache();
  ForecastCache(const ForecastCache&) = delete;
  ForecastCache& operator=(const ForecastCache&) = delete;

  /// Probe outcome.  `hit` is an exact match: `frames` are the full
  /// result and `verdict`/`verified` apply as-is.  `prefix` means a
  /// p-episode ancestor matched: `frames` are its p*T frames (episodes
  /// tells p) and the verdict covers only that prefix — the caller
  /// resumes the chain and extends the verdict.  Both false: miss.
  struct Probe {
    bool hit = false;
    bool prefix = false;
    int episodes = 0;  ///< episodes covered by the returned frames
    std::vector<data::CenterFields> frames;
    core::VerificationResult verdict;
    bool verified = false;
  };

  /// Look up `window` (e*T+1 normalized frames) for (model_id, version,
  /// spec).  Refreshes LRU recency on hit.
  Probe probe(int model_id, int version, const data::SampleSpec& spec,
              std::span<const data::CenterFields> window);

  /// Admit a served result: `frames` are the episodes*T decoded frames
  /// for `window` (episodes*T+1 frames).  The caller guarantees the
  /// result is the healthy surrogate path (no fallback, no degraded mode,
  /// no entry error); unverified payloads are finite-scanned here.
  /// Re-inserting an existing key refreshes its recency.
  /// Must not be called inside a tensor::ArenaScope — cached storage
  /// must outlive any episode arena (enforced with a CheckError).
  void insert(int model_id, int version, const data::SampleSpec& spec,
              std::span<const data::CenterFields> window,
              const std::vector<data::CenterFields>& frames,
              const core::VerificationResult& verdict, bool verified);

  /// Drop every entry (model swap / reload invalidation).  Counters are
  /// cumulative and survive; bytes/entries drop to zero.
  void clear();

  CacheStatsSnapshot stats() const;
  const CachePolicy& policy() const { return policy_; }

 private:
  struct Entry;

  /// Hash snapshots at every episode boundary: result[p-1] is the key of
  /// the p-episode prefix of `window` (p = 1 .. (window.size()-1)/T).
  static std::vector<uint64_t> boundary_digests(
      int model_id, int version, const data::SampleSpec& spec,
      std::span<const data::CenterFields> window);

  /// True when `entry` stores exactly the first p*T+1 frames of `window`
  /// for the same (model, version, spec) — the byte compare that makes a
  /// hash collision a miss.  Caller holds mutex_.
  bool matches_locked(const Entry& entry, int model_id, int version,
                      const data::SampleSpec& spec,
                      std::span<const data::CenterFields> window) const;

  void touch_locked(uint64_t digest);
  void erase_locked(uint64_t digest);
  void fill_probe_locked(const Entry& entry, Probe& out) const;

  CachePolicy policy_;
  mutable std::mutex mutex_;
  std::unordered_map<uint64_t, std::unique_ptr<Entry>> entries_;
  std::list<uint64_t> lru_;  ///< front = most recently used
  uint64_t bytes_ = 0;
  /// Engaged only when no external registry was given; counters below
  /// point into it (or into the caller's registry) either way.  Every
  /// increment happens under mutex_, so stats() reads are exact.
  std::unique_ptr<obs::Registry> owned_registry_;
  obs::Counter* hits_ = nullptr;
  obs::Counter* prefix_hits_ = nullptr;
  obs::Counter* misses_ = nullptr;
  obs::Counter* inserts_ = nullptr;
  obs::Counter* evictions_ = nullptr;
  obs::Counter* expirations_ = nullptr;
  obs::Counter* rejected_ = nullptr;
};

}  // namespace coastal::serve
