#include "serve/reliability.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace coastal::serve {

const char* forecast_error_name(ForecastErrorCode code) {
  switch (code) {
    case ForecastErrorCode::kInvalidInput:
      return "invalid input";
    case ForecastErrorCode::kDeadlineExceeded:
      return "deadline exceeded";
    case ForecastErrorCode::kWorkerLost:
      return "worker lost";
    case ForecastErrorCode::kModelFailure:
      return "model failure";
    case ForecastErrorCode::kCircuitOpen:
      return "circuit open";
    case ForecastErrorCode::kCommFailure:
      return "communication failure";
  }
  return "unknown";
}

CircuitBreaker::CircuitBreaker(const BreakerPolicy& policy) : policy_(policy) {
  COASTAL_CHECK_MSG(policy_.window >= 1 &&
                        policy_.window <= BreakerPolicy::kMaxWindow,
                    "breaker window out of [1," << BreakerPolicy::kMaxWindow
                                               << "]");
  policy_.min_samples = std::max(1, policy_.min_samples);
}

CircuitBreaker::Mode CircuitBreaker::admit() {
  if (!policy_.enabled) return Mode::kNormal;
  std::lock_guard<std::mutex> lock(m_);
  switch (state_) {
    case State::kClosed:
      return Mode::kNormal;
    case State::kHalfOpen:
      // A probe is already in flight; keep degrading until it reports.
      return Mode::kDegraded;
    case State::kOpen: {
      const auto now = std::chrono::steady_clock::now();
      if (now - opened_at_ >= std::chrono::microseconds(policy_.cooldown_us)) {
        state_ = State::kHalfOpen;
        return Mode::kProbe;
      }
      return Mode::kDegraded;
    }
  }
  return Mode::kNormal;
}

void CircuitBreaker::record(bool success) {
  if (!policy_.enabled) return;
  std::lock_guard<std::mutex> lock(m_);
  if (state_ != State::kClosed) return;  // degraded outcomes don't count
  note_locked(success);
  maybe_trip_locked();
}

void CircuitBreaker::record_failures(int n) {
  if (!policy_.enabled) return;
  std::lock_guard<std::mutex> lock(m_);
  if (state_ != State::kClosed) return;
  for (int i = 0; i < n && state_ == State::kClosed; ++i) {
    note_locked(false);
    maybe_trip_locked();
  }
}

void CircuitBreaker::probe_result(bool success) {
  if (!policy_.enabled) return;
  std::lock_guard<std::mutex> lock(m_);
  if (state_ != State::kHalfOpen) return;
  if (success) {
    // Recovery: close with a clean window so one old burst cannot
    // immediately re-trip.
    state_ = State::kClosed;
    count_ = 0;
    head_ = 0;
  } else {
    state_ = State::kOpen;
    opened_at_ = std::chrono::steady_clock::now();
  }
}

bool CircuitBreaker::open() const {
  std::lock_guard<std::mutex> lock(m_);
  return state_ != State::kClosed;
}

uint64_t CircuitBreaker::trips() const {
  std::lock_guard<std::mutex> lock(m_);
  return trips_;
}

void CircuitBreaker::note_locked(bool success) {
  outcomes_[head_] = success;
  head_ = (head_ + 1) % policy_.window;
  count_ = std::min(count_ + 1, policy_.window);
}

void CircuitBreaker::maybe_trip_locked() {
  if (count_ < policy_.min_samples) return;
  int failures = 0;
  for (int i = 0; i < count_; ++i) {
    if (!outcomes_[i]) ++failures;
  }
  if (static_cast<double>(failures) >=
      policy_.trip_rate * static_cast<double>(count_)) {
    state_ = State::kOpen;
    opened_at_ = std::chrono::steady_clock::now();
    ++trips_;
    count_ = 0;
    head_ = 0;
  }
}

}  // namespace coastal::serve
