#include "serve/server.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <unordered_map>

#include "core/decode.hpp"
#include "core/rollout.hpp"
#include "data/sample.hpp"
#include "nn/layers.hpp"
#include "obs/profile.hpp"
#include "parallel/thread_pool.hpp"
#include "tensor/kernels.hpp"
#include "tensor/storage.hpp"
#include "tensor/tensor.hpp"
#include "util/check.hpp"
#include "util/fault.hpp"

namespace coastal::serve {

namespace {

using clock = std::chrono::steady_clock;

double seconds_between(clock::time_point a, clock::time_point b) {
  return std::chrono::duration_cast<std::chrono::duration<double>>(b - a)
      .count();
}

/// Record one span against trace `tid` — no-op when the request is
/// untraced (tid 0, the common case) or tracing is globally off.  Times
/// are µs on the obs::now_us() timeline.
void trace_span(uint64_t tid, const char* stage, int64_t t0, int64_t t1,
                uint32_t flags = 0, int code = -1, int64_t extra = 0) {
  if (tid == 0) return;
  obs::TraceRecorder& rec = obs::TraceRecorder::instance();
  if (!rec.enabled()) return;
  obs::TraceSpan s;
  s.trace_id = tid;
  s.start_us = t0;
  s.end_us = t1;
  s.stage = stage;
  s.flags = flags;
  s.code = code;
  s.extra = extra;
  rec.record(s);
}

/// ForecastErrorCode of a typed error, -1 for anything else — the span
/// `code` tag.
int error_code_of(const std::exception_ptr& e) {
  if (!e) return -1;
  try {
    std::rethrow_exception(e);
  } catch (const ForecastError& fe) {
    return static_cast<int>(fe.code());
  } catch (...) {
  }
  return -1;
}

/// Fold one served request into the throughput span (first assembled /
/// last resolved, µs): CAS-claim the first, fetch-max the last.
void note_serve_span(std::atomic<int64_t>& first_us,
                     std::atomic<int64_t>& last_us,
                     std::chrono::steady_clock::time_point assembled,
                     std::chrono::steady_clock::time_point done) {
  const int64_t a = obs::to_us(assembled);
  const int64_t d = obs::to_us(done);
  int64_t expect = -1;
  first_us.compare_exchange_strong(expect, a, std::memory_order_acq_rel);
  int64_t cur = last_us.load(std::memory_order_relaxed);
  while (cur < d &&
         !last_us.compare_exchange_weak(cur, d, std::memory_order_acq_rel)) {
  }
}

/// Bitwise window equality — the identical-request coalescing predicate.
/// memcmp (not float ==) so NaN payloads and signed zeros never merge
/// episodes that would decode differently.
bool same_window(const std::vector<data::CenterFields>& a,
                 const std::vector<data::CenterFields>& b) {
  if (a.size() != b.size()) return false;
  auto eq = [](const std::vector<float>& p, const std::vector<float>& q) {
    return p.size() == q.size() &&
           std::memcmp(p.data(), q.data(), p.size() * sizeof(float)) == 0;
  };
  for (size_t t = 0; t < a.size(); ++t) {
    const auto& x = a[t];
    const auto& y = b[t];
    if (x.nx != y.nx || x.ny != y.ny || x.nz != y.nz) return false;
    if (!eq(x.u, y.u) || !eq(x.v, y.v) || !eq(x.w, y.w) ||
        !eq(x.zeta, y.zeta)) {
      return false;
    }
  }
  return true;
}

bool fields_finite(const data::CenterFields& f) {
  auto ok = [](const std::vector<float>& v) {
    for (float x : v) {
      if (!std::isfinite(x)) return false;
    }
    return true;
  };
  return ok(f.u) && ok(f.v) && ok(f.w) && ok(f.zeta);
}

bool has_deadline(const PendingRequest& p) {
  return p.deadline != clock::time_point{};
}

std::exception_ptr typed_error(ForecastErrorCode code,
                               const std::string& detail) {
  return std::make_exception_ptr(ForecastError(code, detail));
}

std::string describe(const std::exception_ptr& e) {
  try {
    std::rethrow_exception(e);
  } catch (const std::exception& ex) {
    return ex.what();
  } catch (...) {
    return "unknown error";
  }
}

/// Errors delivered to clients are always ForecastError; anything else is
/// wrapped as kModelFailure with the cause preserved in the message.
std::exception_ptr as_model_failure(const std::exception_ptr& e) {
  try {
    std::rethrow_exception(e);
  } catch (const ForecastError&) {
    return e;
  } catch (...) {
  }
  return typed_error(ForecastErrorCode::kModelFailure, describe(e));
}

/// A forward failure worth retrying?  Contract violations (CheckError,
/// ForecastError) never are; injected faults and unknown runtime errors
/// are treated as transient.
bool is_transient(const std::exception_ptr& e) {
  try {
    std::rethrow_exception(e);
  } catch (const util::CheckError&) {
    return false;
  } catch (const ForecastError&) {
    return false;
  } catch (...) {
    return true;
  }
}

/// NaN-poison the first frame of a decoded episode (the `rollout.step`
/// nan action) — every element, so wet cells are hit regardless of mask.
void poison_first_frame(std::vector<data::CenterFields>& frames) {
  if (frames.empty()) return;
  const float nan = std::numeric_limits<float>::quiet_NaN();
  auto& f = frames.front();
  std::fill(f.u.begin(), f.u.end(), nan);
  std::fill(f.v.begin(), f.v.end(), nan);
  std::fill(f.w.begin(), f.w.end(), nan);
  std::fill(f.zeta.begin(), f.zeta.end(), nan);
}

}  // namespace

ForecastServer::ForecastServer(std::vector<ModelSlot> models,
                               const data::Normalizer& norm,
                               const ocean::Grid* grid,
                               const ServerConfig& config)
    : models_(std::move(models)),
      norm_(norm),
      grid_(grid),
      config_(config),
      queue_(config.queue_capacity) {
  COASTAL_CHECK_MSG(!models_.empty(), "ForecastServer needs >= 1 model slot");
  for (const auto& slot : models_) {
    COASTAL_CHECK_MSG(slot.model != nullptr, "null model in slot");
    slot.model->set_training(false);
  }
  if (grid_ && config_.verify) {
    verifier_.emplace(*grid_, config_.threshold);
  }
  // Deployment knobs (COASTAL_CACHE*) override the configured policy; the
  // effective policy is stored back so config().cache tells the truth.
  config_.cache = cache_policy_from_env(config_.cache);
  cache_ = std::make_unique<ForecastCache>(config_.cache, &registry_);
  COASTAL_CHECK_MSG(!config_.fallback || (grid_ && config_.verify),
                    "the ROMS fallback requires a grid and verify=true");
  for (size_t i = 0; i < models_.size(); ++i) {
    model_mutexes_.push_back(std::make_unique<std::timed_mutex>());
    breakers_.push_back(
        std::make_unique<CircuitBreaker>(config_.reliability.breaker));
  }
  // Observability wiring (docs/observability.md).  Env overrides apply
  // on top of the configured knobs, and the effective values are stored
  // back so config().obs tells the truth.
  config_.obs.trace = obs::trace_config_from_env(config_.obs.trace);
  obs::TraceRecorder::instance().configure(config_.obs.trace);
  obs::StageProfiler::instance().set_enabled(
      obs::profile_from_env(config_.obs.profile_stages));
  c_submitted_ = registry_.counter("coastal_serve_submitted_total",
                                   "Requests accepted by submit()");
  c_served_ = registry_.counter("coastal_serve_served_total",
                                "Requests resolved with a result");
  c_rejected_ = registry_.counter("coastal_serve_rejected_total",
                                  "Requests refused by queue backpressure");
  c_fallbacks_ = registry_.counter(
      "coastal_serve_fallbacks_total",
      "Requests whose frames came from the numerical fallback");
  c_batches_ = registry_.counter("coastal_serve_batches_total",
                                 "Coalesced forwards executed");
  c_coalesced_ = registry_.counter(
      "coastal_serve_coalesced_total",
      "Requests served by sharing an identical batch entry");
  c_failed_ = registry_.counter("coastal_serve_failed_total",
                                "Requests resolved with a typed error");
  c_invalid_ = registry_.counter("coastal_serve_invalid_total",
                                 "NaN/Inf windows refused at submit()");
  c_deadline_ = registry_.counter("coastal_serve_deadline_expired_total",
                                  "Requests failed kDeadlineExceeded");
  c_retries_ = registry_.counter("coastal_serve_retries_total",
                                 "Forward retry attempts performed");
  c_degraded_ = registry_.counter(
      "coastal_serve_degraded_total",
      "Requests served in breaker-degraded (numerical) mode");
  c_worker_lost_ = registry_.counter(
      "coastal_serve_worker_lost_total",
      "In-flight requests failed by the watchdog");
  c_worker_restarts_ = registry_.counter("coastal_serve_worker_restarts_total",
                                         "Replacement workers spawned");
  h_latency_ = registry_.histogram(
      "coastal_serve_latency_us",
      "End-to-end request latency in microseconds",
      obs::HistogramSpec::latency_us());
  h_batch_ = registry_.histogram(
      "coastal_serve_batch_size",
      "Distinct episodes per coalesced forward",
      obs::HistogramSpec::linear(ServerStatsSnapshot::kBatchHistBuckets, 1.0,
                                 1.0));
  registry_.gauge_fn("coastal_serve_queue_depth",
                     "Requests currently queued",
                     [this] { return static_cast<double>(queue_.depth()); });
  // Snapshot-time collectors: breaker state, fault-site totals, and the
  // stage profiler ride along in every snapshot without owning cells in
  // this registry.
  registry_.collector([this](obs::RegistrySnapshot& out) {
    uint64_t trips = 0;
    int open = 0;
    for (const auto& b : breakers_) {
      trips += b->trips();
      if (b->open()) ++open;
    }
    out.counters.push_back({"coastal_serve_breaker_trips_total",
                            "Closed->open breaker transitions, all slots",
                            "", "", static_cast<int64_t>(trips)});
    out.gauges.push_back({"coastal_serve_breaker_open_slots",
                          "Slots currently open or half-open", "", "",
                          static_cast<double>(open)});
    for (const auto& [site, st] :
         util::FaultInjector::instance().cumulative_stats()) {
      out.counters.push_back({"coastal_fault_hits_total",
                              "Armed fault-point evaluations since start",
                              "site", site, static_cast<int64_t>(st.hits)});
      out.counters.push_back({"coastal_fault_fires_total",
                              "Fault-point fires since start", "site", site,
                              static_cast<int64_t>(st.fires)});
      if (st.released > 0) {
        out.counters.push_back(
            {"coastal_fault_hang_releases_total",
             "Parked hang threads woken by release_hangs()/clear()", "site",
             site, static_cast<int64_t>(st.released)});
      }
    }
    obs::StageProfiler::instance().collect(out);
  });
  if (config_.kernel_threads > 0) {
    // Deployment-time kernel sizing: the pool and the kernel chunking
    // config move together so dispatch decisions never drift from the
    // workers actually available.
    par::ThreadPool::global().resize(
        static_cast<size_t>(config_.kernel_threads));
    tensor::kernels::config().num_threads = config_.kernel_threads;
  }
  const int nworkers = std::max(1, config_.workers);
  {
    std::lock_guard<std::mutex> lock(workers_mutex_);
    restarts_left_ = config_.reliability.watchdog.max_restarts;
    workers_.reserve(static_cast<size_t>(nworkers));
    for (int i = 0; i < nworkers; ++i) spawn_worker_locked();
  }
  if (config_.reliability.watchdog.hang_timeout_ms > 0) {
    watchdog_ = std::thread([this] { watchdog_loop(); });
  }
}

ForecastServer::~ForecastServer() { shutdown(); }

ForecastServer::WorkerState* ForecastServer::spawn_worker_locked() {
  workers_.push_back(std::make_unique<WorkerState>());
  WorkerState* state = workers_.back().get();
  state->thread = std::thread([this, state] { worker_loop(state); });
  return state;
}

void ForecastServer::shutdown() {
  {
    std::lock_guard<std::mutex> lock(shutdown_mutex_);
    if (shut_down_) return;
    shut_down_ = true;
  }
  queue_.close();
  {
    std::lock_guard<std::mutex> lock(watchdog_mutex_);
    watchdog_stop_ = true;
  }
  watchdog_cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
  // Workers parked by an injected hang only exit once released, so keep
  // releasing until every worker_loop returns — a chaos run (or a test
  // that forgot to clear its schedule) always terminates.
  for (;;) {
    bool all_exited = true;
    {
      std::lock_guard<std::mutex> lock(workers_mutex_);
      for (const auto& w : workers_) {
        if (!w->exited.load(std::memory_order_acquire)) {
          all_exited = false;
          break;
        }
      }
    }
    if (all_exited) break;
    util::FaultInjector::instance().release_hangs();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::lock_guard<std::mutex> lock(workers_mutex_);
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
}

std::optional<std::future<ForecastResult>> ForecastServer::submit(
    ForecastRequest request) {
  COASTAL_CHECK_MSG(request.model_id >= 0 &&
                        request.model_id < static_cast<int>(models_.size()),
                    "bad model_id " << request.model_id);
  const auto& spec = models_[static_cast<size_t>(request.model_id)].spec;
  COASTAL_CHECK_MSG(
      request.window.size() > static_cast<size_t>(spec.T) &&
          (request.window.size() - 1) % static_cast<size_t>(spec.T) == 0,
      "request needs e*T+1 frames (T = " << spec.T << "), got "
                                         << request.window.size());
  for (const auto& f : request.window) {
    COASTAL_CHECK_MSG(f.nx == spec.src_nx && f.ny == spec.src_ny &&
                          f.nz == spec.src_nz,
                      "request frame dims (" << f.nx << "," << f.ny << ","
                                             << f.nz
                                             << ") do not match the spec");
  }
  if (config_.reliability.screen_inputs) {
    // Admission-time screening: a NaN/Inf initial condition can only burn
    // a forward and fail verification later, so refuse it with a typed
    // error now.  Shape violations above stay hard CHECK failures — they
    // are caller bugs, not data quality.
    for (size_t t = 0; t < request.window.size(); ++t) {
      if (!fields_finite(request.window[t])) {
        c_invalid_->inc();
        std::promise<ForecastResult> p;
        p.set_exception(typed_error(
            ForecastErrorCode::kInvalidInput,
            "non-finite values in window frame " + std::to_string(t)));
        return p.get_future();
      }
    }
  }

  PendingRequest pending;
  pending.enqueued = clock::now();
  if (request.timeout_us > 0) {
    pending.deadline =
        pending.enqueued + std::chrono::microseconds(request.timeout_us);
  }
  // Trace admission: one relaxed load when tracing is off, a sampled id
  // draw when on.  The id rides the request through the pipeline.
  request.trace.id = obs::TraceRecorder::instance().begin_trace();
  pending.request = std::move(request);
  auto future = pending.promise.get_future();
  // Count the submission *before* the (potentially blocking) push: a fast
  // worker can pop and serve the request while this thread is still here,
  // and a stats() snapshot must never show served > submitted.
  {
    obs::Registry::Group g(registry_);
    c_submitted_->inc();
  }
  const bool accepted =
      queue_.push(pending, config_.overflow == ServerConfig::Overflow::kBlock);
  if (!accepted) {
    obs::Registry::Group g(registry_);
    c_submitted_->add(-1);
    c_rejected_->inc();
    return std::nullopt;
  }
  return future;
}

void ForecastServer::worker_loop(WorkerState* state) {
  for (;;) {
    if (state->retired.load(std::memory_order_acquire)) break;
    std::vector<PendingRequest> popped = queue_.pop_batch(config_.batch);
    if (popped.empty()) break;  // closed and drained
    auto inflight = std::make_shared<InFlightBatch>();
    inflight->reqs = std::move(popped);
    inflight->resolved.assign(inflight->reqs.size(), 0);
    {
      std::lock_guard<std::mutex> lock(state->m);
      state->inflight = inflight;
    }
    state->busy.store(true, std::memory_order_release);
    state->beat.fetch_add(1, std::memory_order_relaxed);
    try {
      serve_batch(state, inflight);
    } catch (...) {
      // A worker never dies with unresolved promises: anything that
      // escaped serve_batch fails the whole batch (typed).
      const std::exception_ptr e = as_model_failure(std::current_exception());
      for (size_t i = 0; i < inflight->reqs.size(); ++i) {
        deliver_error(*inflight, i, e);
      }
    }
    {
      // Defensive sweep: no request of a batch this worker still owns may
      // be left pending (clients would wait forever).
      std::lock_guard<std::mutex> lock(inflight->m);
      if (!inflight->abandoned) {
        for (size_t i = 0; i < inflight->reqs.size(); ++i) {
          if (!inflight->resolved[i]) {
            inflight->resolved[i] = 1;
            inflight->reqs[i].promise.set_exception(
                typed_error(ForecastErrorCode::kModelFailure,
                            "request left unresolved by serve_batch"));
          }
        }
      }
    }
    state->busy.store(false, std::memory_order_release);
    state->beat.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(state->m);
      state->inflight.reset();
    }
  }
  state->exited.store(true, std::memory_order_release);
}

void ForecastServer::serve_batch(
    WorkerState* state, const std::shared_ptr<InFlightBatch>& inflight) {
  auto& batch = inflight->reqs;
  // The canonical hung-worker injection point: before any lock is held,
  // so a parked worker wedges only itself (and its batch).
  COASTAL_FAULT_POINT("serve.worker");
  if (state->retired.load(std::memory_order_acquire)) return;

  const auto t_assembled = clock::now();
  const int64_t us_assembled = obs::to_us(t_assembled);
  const bool profiling = obs::StageProfiler::instance().enabled();
  // Queue-wait telemetry, per request: the span belongs to the request's
  // trace, the histogram sample to the global queue-stage profile.
  for (size_t i = 0; i < batch.size(); ++i) {
    const int64_t q_us = us_assembled - obs::to_us(batch[i].enqueued);
    if (profiling) {
      obs::StageProfiler::instance().record(
          obs::Stage::kQueue, static_cast<double>(std::max<int64_t>(q_us, 0)));
    }
    trace_span(batch[i].request.trace.id, "queue", us_assembled - q_us,
               us_assembled);
  }
  const int model_id = batch.front().request.model_id;
  auto& slot = models_[static_cast<size_t>(model_id)];
  const data::SampleSpec& spec = slot.spec;
  // pop_batch keys on (model_id, window length), so the chain length is
  // uniform across the batch: 1 episode takes the stacked-forward route,
  // e > 1 the sequential chain route below.
  const int episodes =
      static_cast<int>(batch.front().request.window.size() - 1) / spec.T;
  CircuitBreaker& breaker = *breakers_[static_cast<size_t>(model_id)];
  const bool can_degrade = config_.fallback.has_value();

  // Deadline triage: requests already expired at batch assembly fail now,
  // before any work is spent on them.
  std::vector<char> dead(batch.size(), 0);
  for (size_t i = 0; i < batch.size(); ++i) {
    if (has_deadline(batch[i]) && t_assembled >= batch[i].deadline) {
      dead[i] = 1;
      deliver_error(*inflight, i,
                    typed_error(ForecastErrorCode::kDeadlineExceeded,
                                "expired before service began"),
                    c_deadline_);
    }
  }

  // Identical-episode coalescing over the surviving requests: uniques[u]
  // is the exemplar request of batch entry u; owner[i] maps each request
  // to its entry.
  std::vector<size_t> uniques;
  std::vector<size_t> owner(batch.size(), SIZE_MAX);
  uniques.reserve(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    if (dead[i]) continue;
    size_t u = uniques.size();
    if (config_.batch.coalesce_identical) {
      for (size_t j = 0; j < uniques.size(); ++j) {
        if (same_window(batch[uniques[j]].request.window,
                        batch[i].request.window)) {
          u = j;
          break;
        }
      }
    }
    if (u == uniques.size()) uniques.push_back(i);
    owner[i] = u;
  }
  if (uniques.empty()) return;
  std::vector<int> sharers(uniques.size(), 0);
  for (size_t i = 0; i < batch.size(); ++i) {
    if (dead[i]) continue;
    ++sharers[owner[i]];
  }

  // Circuit-breaker admission: an open slot serves the verified numerical
  // answer directly (degraded mode); half-open lets one probe batch try
  // the surrogate again.
  const CircuitBreaker::Mode mode = breaker.admit();
  const bool probe = mode == CircuitBreaker::Mode::kProbe;
  bool breaker_degraded = mode == CircuitBreaker::Mode::kDegraded;
  if (breaker_degraded && !can_degrade) {
    const auto e = typed_error(ForecastErrorCode::kCircuitOpen,
                               "slot degraded and no fallback configured");
    for (size_t i = 0; i < batch.size(); ++i) {
      if (!dead[i]) deliver_error(*inflight, i, e);
    }
    return;
  }

  // Content-addressed cache probe (docs/caching.md), after breaker
  // admission so a non-normal slot bypasses the cache entirely: degraded
  // traffic must take the numerical route, and a half-open probe batch
  // exists precisely to exercise the surrogate.
  std::vector<ForecastCache::Probe> probes(uniques.size());
  std::vector<char> done(uniques.size(), 0);
  const bool use_cache = cache_->policy().enabled &&
                         mode == CircuitBreaker::Mode::kNormal;
  if (use_cache) {
    obs::ScopedStage stage(obs::Stage::kCacheProbe);
    for (size_t u = 0; u < uniques.size(); ++u) {
      probes[u] = cache_->probe(model_id, slot.version, spec,
                                batch[uniques[u]].request.window);
    }
  }
  // Triage spans close here: queue pop -> breaker admission -> cache
  // probe, tagged with what the probe found for this request's entry.
  const int64_t us_triaged = obs::now_us();
  for (size_t i = 0; i < batch.size(); ++i) {
    if (dead[i]) continue;
    uint32_t tflags = 0;
    if (probes[owner[i]].hit) tflags |= obs::kCacheHit;
    else if (probes[owner[i]].prefix) tflags |= obs::kPrefixResume;
    if (breaker_degraded) tflags |= obs::kDegraded;
    trace_span(batch[i].request.trace.id, "triage", us_assembled, us_triaged,
               tflags);
  }
  // Exact hits deliver immediately: no forward, no re-verification — by
  // bitwise rollout determinism the stored frames ARE what a recompute
  // would produce, and the stored verdict already certified them.
  for (size_t u = 0; u < uniques.size(); ++u) {
    if (!probes[u].hit) continue;
    done[u] = 1;
    {
      obs::Registry::Group g(registry_);
      c_coalesced_->add(sharers[u] - 1);
    }
    int remaining = sharers[u];
    for (size_t i = 0; i < batch.size(); ++i) {
      if (dead[i] || owner[i] != u) continue;
      dead[i] = 1;
      const auto t_done = clock::now();
      const bool last = --remaining == 0;
      if (has_deadline(batch[i]) && t_done >= batch[i].deadline) {
        deliver_error(*inflight, i,
                      typed_error(ForecastErrorCode::kDeadlineExceeded,
                                  "expired before delivery"),
                      c_deadline_);
        continue;
      }
      std::promise<ForecastResult>* p = claim(*inflight, i);
      if (p == nullptr) continue;
      ForecastResult result;
      result.frames = last ? std::move(probes[u].frames) : probes[u].frames;
      result.batch_size = 0;  // no forward ran for this request
      result.sharers = sharers[u];
      result.cache_hit = true;
      result.verdict = probes[u].verdict;
      result.verified = probes[u].verified;
      result.queue_seconds = seconds_between(batch[i].enqueued, t_assembled);
      result.service_seconds = seconds_between(t_assembled, t_done);
      note_serve_span(first_serve_us_, last_serve_us_, t_assembled, t_done);
      {
        obs::Registry::Group g(registry_);
        h_latency_->observe(seconds_between(batch[i].enqueued, t_done) * 1e6);
        c_served_->inc();
      }
      const uint64_t tid = batch[i].request.trace.id;
      if (tid != 0) {
        const int64_t td = obs::to_us(t_done);
        // No forward span, by construction: the cache served this one.
        trace_span(tid, "resolve", td, td, obs::kCacheHit);
        trace_span(tid, "request", obs::to_us(batch[i].enqueued), td,
                   obs::kCacheHit);
      }
      p->set_value(std::move(result));
    }
  }

  // The uniques that still need the surrogate (misses and prefix hits).
  std::vector<size_t> live;
  live.reserve(uniques.size());
  size_t live_sharers = 0;
  for (size_t u = 0; u < uniques.size(); ++u) {
    if (done[u]) continue;
    live.push_back(u);
    live_sharers += static_cast<size_t>(sharers[u]);
  }
  if (live.empty()) return;
  const int64_t B = static_cast<int64_t>(live.size());

  // The coalesced surrogate forward, with bounded deterministic retry for
  // transient failures.  Skipped entirely in degraded mode.
  std::vector<std::vector<data::CenterFields>> decoded(uniques.size());
  std::vector<std::exception_ptr> entry_error(uniques.size());
  std::vector<int> resumed(uniques.size(), 0);
  bool forward_ok = false;
  bool deadline_abort = false;
  std::exception_ptr forward_error;
  // Pack/forward intervals and retry count for the batch route's spans
  // (the chain route records per-entry spans via the ambient binding
  // inside core::resume_rollout instead).
  int64_t us_pack0 = 0, us_pack1 = 0, us_fwd0 = 0, us_fwd1 = 0;
  int fwd_retries = 0;
  if (!breaker_degraded && episodes == 1) {
    // Everything tensor-shaped in this block — the per-request samples,
    // the stacked batch, the forward activations, the batched output —
    // bump-allocates from the arena and is released in bulk at scope
    // exit, so a warmed-up server allocates nothing here.  Only the
    // decoded CenterFields (plain vectors) escape.
    tensor::ArenaScope arena;
    tensor::NoGradGuard ng;
    try {
      // Pack the batch *before* taking the model mutex: sample
      // construction touches only request data and this worker's arena,
      // so another worker's forward overlaps it (the pipeline overlap
      // promised in server.hpp).  The distinct episodes are written
      // straight into one stacked tensor pair — no per-request target
      // tensors, no intermediate concat (bitwise-pinned against the old
      // concat path in tests/test_serve.cpp).
      tensor::Tensor vol, surf;
      {
        obs::ScopedStage stage(obs::Stage::kPack);
        us_pack0 = obs::now_us();
        std::vector<std::span<const data::CenterFields>> windows;
        windows.reserve(live.size());
        for (size_t u : live) {
          windows.push_back(batch[uniques[u]].request.window);
        }
        data::BatchedInput in = data::make_batched_input(spec, windows);
        vol = std::move(in.volume);
        surf = std::move(in.surface);
        us_pack1 = obs::now_us();
      }
      state->beat.fetch_add(1, std::memory_order_relaxed);

      const RetryPolicy& retry = config_.reliability.retry;
      const int max_attempts = std::max(1, retry.max_attempts);
      int64_t backoff_us = std::max<int64_t>(0, retry.backoff_us);
      core::SurrogateOutput out;
      us_fwd0 = obs::now_us();
      for (int attempt = 1; !forward_ok; ++attempt) {
        try {
          // One batch in flight per model (see file comment in
          // server.hpp).  With the watchdog on, bound the wait so a
          // replacement worker cannot wedge forever behind a hung
          // predecessor still holding the slot.
          std::unique_lock<std::timed_mutex> model_lock(
              *model_mutexes_[static_cast<size_t>(model_id)],
              std::defer_lock);
          const int64_t hang_ms =
              config_.reliability.watchdog.hang_timeout_ms;
          if (hang_ms > 0) {
            if (!model_lock.try_lock_for(std::chrono::milliseconds(
                    std::max<int64_t>(1, hang_ms / 2)))) {
              throw ForecastError(ForecastErrorCode::kModelFailure,
                                  "model slot lock timed out");
            }
          } else {
            model_lock.lock();
          }
          COASTAL_FAULT_POINT("serve.forward");
          if (state->retired.load(std::memory_order_acquire)) return;
          // Grouped BatchNorm statistics (and per-request attention
          // routing): each coalesced episode is normalized exactly as it
          // would be served alone, which is what makes the demuxed
          // results bitwise-serial (see nn::BatchStatScope).
          nn::BatchStatScope stat_groups(B);
          out = slot.model->forward(vol, surf);
          forward_ok = true;
        } catch (...) {
          const std::exception_ptr e = std::current_exception();
          if (!is_transient(e) || attempt >= max_attempts) {
            forward_error = e;
            break;
          }
          // Abort the retry chain once every remaining request's
          // deadline has passed — nobody is left to receive the result.
          bool all_expired = true;
          const auto now = clock::now();
          for (size_t i = 0; i < batch.size(); ++i) {
            if (dead[i]) continue;
            if (!has_deadline(batch[i]) || now < batch[i].deadline) {
              all_expired = false;
              break;
            }
          }
          if (all_expired) {
            deadline_abort = true;
            break;
          }
          c_retries_->inc();
          ++fwd_retries;
          std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
          backoff_us = static_cast<int64_t>(
              static_cast<double>(backoff_us) * retry.backoff_mult);
          state->beat.fetch_add(1, std::memory_order_relaxed);
        }
      }
      us_fwd1 = obs::now_us();
      if (profiling) {
        obs::StageProfiler::instance().record(
            obs::Stage::kForward, static_cast<double>(us_fwd1 - us_fwd0));
      }
      if (forward_ok) {
        state->beat.fetch_add(1, std::memory_order_relaxed);
        // Per-entry decode: one entry's failure (or injected fault) must
        // not fail sharers of healthy entries — the blast radius stays
        // one episode.
        obs::ScopedStage decode_stage(obs::Stage::kDecode);
        for (size_t b = 0; b < live.size(); ++b) {
          const size_t u = live[b];
          try {
            const util::FaultAction fa = COASTAL_FAULT_POINT("rollout.step");
            decoded[u] = core::decode_prediction_entry(
                spec, out, static_cast<int64_t>(b), norm_);
            if (fa == util::FaultAction::kNan) poison_first_frame(decoded[u]);
          } catch (...) {
            entry_error[u] = std::current_exception();
          }
        }
      }
    } catch (...) {
      // Pack/stack failure: no forward ran; handled like a forward
      // failure below.
      forward_error = std::current_exception();
    }
  } else if (!breaker_degraded) {
    // Chain route (e > 1 episodes): a chain is inherently sequential —
    // episode e's initial condition is episode e-1's last frame — so
    // there is nothing for a stacked forward to amortize across a chain.
    // Each distinct window runs one resumed rollout; a prefix hit starts
    // it at the first uncached episode (core::resume_rollout), which is
    // where the cache pays off most.
    tensor::NoGradGuard ng;
    const RetryPolicy& retry = config_.reliability.retry;
    const int max_attempts = std::max(1, retry.max_attempts);
    for (size_t u : live) {
      const auto& window = batch[uniques[u]].request.window;
      // Ambient binding: the rollout's own "pack"/"model.forward" spans
      // attach to the entry's exemplar trace (sharers reuse its tree).
      obs::TraceBinding trace_bind(batch[uniques[u]].request.trace.id);
      const int start_episode = probes[u].prefix ? probes[u].episodes : 0;
      // Cooperative cancel between episode forwards: abort only once
      // every sharer's deadline has passed (nobody left to deliver to).
      const core::CancelHook cancel = [&, u] {
        const auto now = clock::now();
        for (size_t i = 0; i < batch.size(); ++i) {
          if (dead[i] || owner[i] != u) continue;
          if (!has_deadline(batch[i]) || now < batch[i].deadline) return;
        }
        throw ForecastError(ForecastErrorCode::kDeadlineExceeded,
                            "expired during chain rollout");
      };
      int64_t backoff_us = std::max<int64_t>(0, retry.backoff_us);
      for (int attempt = 1; !done[u] && entry_error[u] == nullptr;
           ++attempt) {
        try {
          std::unique_lock<std::timed_mutex> model_lock(
              *model_mutexes_[static_cast<size_t>(model_id)],
              std::defer_lock);
          const int64_t hang_ms =
              config_.reliability.watchdog.hang_timeout_ms;
          if (hang_ms > 0) {
            if (!model_lock.try_lock_for(std::chrono::milliseconds(
                    std::max<int64_t>(1, hang_ms / 2)))) {
              throw ForecastError(ForecastErrorCode::kModelFailure,
                                  "model slot lock timed out");
            }
          } else {
            model_lock.lock();
          }
          COASTAL_FAULT_POINT("serve.forward");
          if (state->retired.load(std::memory_order_acquire)) return;
          auto suffix = core::resume_rollout(
              *slot.model, spec, norm_, window, episodes, start_episode,
              start_episode > 0 ? &probes[u].frames.back() : nullptr,
              &cancel);
          if (start_episode > 0) {
            // Keep the cached prefix intact across retries: copy it, then
            // append the freshly computed suffix.
            decoded[u] = probes[u].frames;
            decoded[u].reserve(decoded[u].size() + suffix.size());
            for (auto& f : suffix) decoded[u].push_back(std::move(f));
            resumed[u] = static_cast<int>(probes[u].frames.size());
          } else {
            decoded[u] = std::move(suffix);
          }
          break;  // served by the epilogue below
        } catch (const ForecastError& fe) {
          if (fe.code() == ForecastErrorCode::kDeadlineExceeded) {
            // A mid-chain deadline is delivered directly — the request
            // expired, it did not fail; routing it into the numerical
            // fallback would burn a full ROMS chain for nobody.
            for (size_t i = 0; i < batch.size(); ++i) {
              if (dead[i] || owner[i] != u) continue;
              dead[i] = 1;
              deliver_error(*inflight, i, std::make_exception_ptr(fe),
                            c_deadline_);
            }
            done[u] = 1;
          } else {
            entry_error[u] = std::current_exception();  // never transient
          }
        } catch (...) {
          const std::exception_ptr e = std::current_exception();
          if (!is_transient(e) || attempt >= max_attempts) {
            entry_error[u] = e;
            break;
          }
          c_retries_->inc();
          {
            // Zero-length marker in the entry's trace: this chain needed
            // another forward attempt.
            const int64_t tr = obs::now_us();
            trace_span(batch[uniques[u]].request.trace.id, "retry", tr, tr,
                       obs::kFaultRetry);
          }
          std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
          backoff_us = static_cast<int64_t>(
              static_cast<double>(backoff_us) * retry.backoff_mult);
        }
      }
      state->beat.fetch_add(1, std::memory_order_relaxed);
    }
    // Chain outcomes are per-entry (entry_error / done), never a single
    // batch-wide forward failure.
    forward_ok = true;
  }

  // Batch-route spans: every traced request in the batch shares the one
  // pack + forward interval its episode rode in.
  if (us_fwd1 > 0 || us_pack1 > 0) {
    uint32_t fflags = fwd_retries > 0 ? obs::kFaultRetry : 0u;
    int fcode = -1;
    if (!forward_ok && !deadline_abort) {
      fflags |= obs::kError;
      fcode = error_code_of(forward_error);
    }
    for (size_t i = 0; i < batch.size(); ++i) {
      if (dead[i]) continue;
      const uint64_t tid = batch[i].request.trace.id;
      if (tid == 0) continue;
      if (us_pack1 > 0) trace_span(tid, "pack", us_pack0, us_pack1);
      if (us_fwd1 > 0) {
        trace_span(tid, "forward", us_fwd0, us_fwd1, fflags, fcode, B);
      }
    }
  }

  if (deadline_abort) {
    const auto e = typed_error(ForecastErrorCode::kDeadlineExceeded,
                               "expired during forward retries");
    for (size_t i = 0; i < batch.size(); ++i) {
      if (!dead[i]) deliver_error(*inflight, i, e, c_deadline_);
    }
    return;
  }

  // Forward failed after retries: report to the breaker, then route the
  // whole batch to the numerical fallback when one is configured, else
  // fail every surviving request (typed).
  bool salvage_numerical = false;
  if (!breaker_degraded && !forward_ok) {
    if (probe) {
      breaker.probe_result(false);
    } else {
      breaker.record_failures(static_cast<int>(uniques.size()));
    }
    if (can_degrade) {
      salvage_numerical = true;
    } else {
      const auto e = as_model_failure(forward_error);
      for (size_t i = 0; i < batch.size(); ++i) {
        if (!dead[i]) deliver_error(*inflight, i, e);
      }
      return;
    }
  }

  // Batch-composition stats land before any promise resolves, so a
  // client that observes its result also observes the batch that carried
  // it.  Only counted when a forward actually executed.
  if (forward_ok) {
    obs::Registry::Group g(registry_);
    c_batches_->inc();
    c_coalesced_->add(static_cast<int64_t>(live_sharers - live.size()));
    h_batch_->observe(static_cast<double>(B));
  }

  // Per-entry epilogue: verification, fallback, or the numerical route,
  // once per distinct episode; then fan the outcome out to every sharer.
  // Outside the arena and the model lock, so other workers' forwards
  // overlap it.
  int probe_failures = 0;
  for (size_t u = 0; u < uniques.size(); ++u) {
    if (done[u]) continue;  // served from cache or expired mid-chain
    state->beat.fetch_add(1, std::memory_order_relaxed);
    const auto& window = batch[uniques[u]].request.window;
    bool entry_fallback = false, entry_verified = false;
    bool entry_degraded = false;
    core::VerificationResult entry_verdict;
    const bool numerical_route =
        breaker_degraded || salvage_numerical || entry_error[u] != nullptr;
    if (numerical_route && !can_degrade) {
      // Per-entry decode failure with no fallback: isolate it.
      const auto e = as_model_failure(entry_error[u]);
      for (size_t i = 0; i < batch.size(); ++i) {
        if (!dead[i] && owner[i] == u) deliver_error(*inflight, i, e);
      }
      if (probe) ++probe_failures;
      else if (forward_ok) breaker.record(false);
      continue;
    }
    const int64_t us_entry0 = obs::now_us();
    try {
      if (numerical_route) {
        // Degraded / salvage: compute the episode with the numerical
        // model — verified by construction, and check_sequence confirms.
        obs::ScopedStage stage(obs::Stage::kFallback);
        const data::CenterFields current =
            data::denormalized_copy(window.front(), norm_);
        decoded[u] = core::numerical_episode(
            *grid_, config_.fallback->tides, config_.fallback->params,
            current, current.time, config_.snapshot_dt, spec.T * episodes);
        std::vector<data::CenterFields> seq;
        seq.reserve(decoded[u].size() + 1);
        seq.push_back(current);
        for (auto& f : decoded[u]) seq.push_back(f);
        entry_verdict = verifier_->check_sequence(seq, config_.snapshot_dt);
        entry_verified = true;
        entry_fallback = true;
        entry_degraded = breaker_degraded;
        if (entry_error[u]) {
          if (probe) ++probe_failures;
          else if (forward_ok) breaker.record(false);
        }
      } else if (verifier_) {
        obs::ScopedStage stage(obs::Stage::kVerify);
        const data::CenterFields current = data::denormalized_copy(
            window.front(), norm_);
        if (resumed[u] > 0) {
          // Prefix resume: the cached verdict already folded the prefix
          // pairs; extending it across the fresh suffix continues that
          // exact left-to-right fold (MassVerifier::extend_sequence), so
          // the combined verdict is bitwise what a cold full pass yields.
          const auto nres = static_cast<size_t>(resumed[u]);
          const std::span<const data::CenterFields> all(decoded[u]);
          if (probes[u].verified) {
            entry_verdict = verifier_->extend_sequence(
                probes[u].verdict, decoded[u][nres - 1], all.subspan(nres),
                config_.snapshot_dt);
          } else {
            std::vector<data::CenterFields> seq;
            seq.reserve(decoded[u].size() + 1);
            seq.push_back(current);
            for (auto& f : decoded[u]) seq.push_back(f);
            entry_verdict =
                verifier_->check_sequence(seq, config_.snapshot_dt);
          }
          if (!entry_verdict.pass && config_.fallback) {
            // Whole-chain numerical rerun, mirroring verify_or_fallback
            // (the verdict keeps describing the surrogate chain).
            decoded[u] = core::numerical_episode(
                *grid_, config_.fallback->tides, config_.fallback->params,
                current, current.time, config_.snapshot_dt,
                spec.T * episodes);
            entry_fallback = true;
            resumed[u] = 0;  // nothing of the cache survived
          }
        } else if (config_.fallback) {
          // current.time is the request's own episode start (copied from
          // the IC frame), anchoring the restart's tidal phase.
          const core::EpisodeOutcome outcome = core::verify_or_fallback(
              decoded[u], current, *verifier_, *grid_,
              config_.fallback->tides, config_.fallback->params,
              current.time, config_.snapshot_dt);
          entry_verdict = outcome.verdict;
          entry_fallback = outcome.fallback;
        } else {
          std::vector<data::CenterFields> seq;
          seq.reserve(decoded[u].size() + 1);
          seq.push_back(current);
          for (auto& f : decoded[u]) seq.push_back(f);
          entry_verdict = verifier_->check_sequence(seq, config_.snapshot_dt);
        }
        entry_verified = true;
      }
      if (!numerical_route) {
        if (probe) {
          if (entry_fallback) ++probe_failures;
        } else if (forward_ok) {
          // A verification fallback counts as a slot failure: a surrogate
          // producing chronic garbage should trip into degraded mode
          // rather than burn a forward per request.
          breaker.record(!entry_fallback);
        }
      }
    } catch (...) {
      const auto e = std::current_exception();
      for (size_t i = 0; i < batch.size(); ++i) {
        if (!dead[i] && owner[i] == u) deliver_error(*inflight, i, e);
      }
      continue;
    }
    // Post-verification cache fill: only the healthy surrogate route in
    // normal breaker mode is admitted — degraded, fallback, salvaged, and
    // errored results never enter the cache (and the cache finite-scans
    // unverified payloads as a last line of defense).  Outside any arena,
    // as insert() requires: the entry's storage must outlive this batch.
    if (use_cache && !numerical_route && !entry_fallback &&
        entry_error[u] == nullptr) {
      cache_->insert(model_id, slot.version, spec, window, decoded[u],
                     entry_verdict, entry_verified);
    }
    // Span tags for this entry's outcome; the verify/fallback interval
    // closed when the try block above finished.
    const int64_t us_entry1 = obs::now_us();
    const char* entry_stage =
        numerical_route ? "fallback" : (verifier_ ? "verify" : nullptr);
    uint32_t entry_flags = 0;
    if (entry_fallback) entry_flags |= obs::kFallback;
    if (entry_degraded) entry_flags |= obs::kDegraded;
    if (resumed[u] > 0) entry_flags |= obs::kPrefixResume;
    if (fwd_retries > 0) entry_flags |= obs::kFaultRetry;
    if (entry_verified && !entry_verdict.pass) {
      entry_flags |= obs::kVerifyFailed;
    }
    uint32_t verify_flags = entry_flags;
    if (!numerical_route && entry_fallback) {
      // The surrogate's verdict failed and the frames were recomputed —
      // tag the verify span even though the final verdict passed.
      verify_flags |= obs::kVerifyFailed;
    }
    int remaining = sharers[u];
    for (size_t i = 0; i < batch.size(); ++i) {
      if (dead[i] || owner[i] != u) continue;
      const auto t_done = clock::now();
      const bool last = --remaining == 0;
      if (has_deadline(batch[i]) && t_done >= batch[i].deadline) {
        // The result exists but the client stopped waiting: a deadline is
        // a promise about *delivery*, not computation.
        deliver_error(*inflight, i,
                      typed_error(ForecastErrorCode::kDeadlineExceeded,
                                  "expired before delivery"),
                      c_deadline_);
        continue;
      }
      std::promise<ForecastResult>* p = claim(*inflight, i);
      if (p == nullptr) continue;
      ForecastResult result;
      // The last sharer takes the frames by move; earlier ones copy.
      result.frames = last ? std::move(decoded[u]) : decoded[u];
      result.batch_size = static_cast<int>(B);
      result.sharers = sharers[u];
      result.resumed_frames = resumed[u];
      result.verdict = entry_verdict;
      result.verified = entry_verified;
      result.fallback = entry_fallback;
      result.degraded = entry_degraded;
      result.queue_seconds = seconds_between(batch[i].enqueued, t_assembled);
      result.service_seconds = seconds_between(t_assembled, t_done);
      note_serve_span(first_serve_us_, last_serve_us_, t_assembled, t_done);
      {
        obs::Registry::Group g(registry_);
        h_latency_->observe(seconds_between(batch[i].enqueued, t_done) * 1e6);
        c_served_->inc();
        if (entry_fallback) c_fallbacks_->inc();
        if (entry_degraded) c_degraded_->inc();
      }
      const uint64_t tid = batch[i].request.trace.id;
      if (tid != 0) {
        const int64_t td = obs::to_us(t_done);
        if (entry_stage != nullptr) {
          trace_span(tid, entry_stage, us_entry0, us_entry1, verify_flags);
        }
        trace_span(tid, "resolve", td, td, entry_flags);
        trace_span(tid, "request", obs::to_us(batch[i].enqueued), td,
                   entry_flags);
      }
      p->set_value(std::move(result));
    }
  }
  if (probe && forward_ok) breaker.probe_result(probe_failures == 0);
}

void ForecastServer::watchdog_loop() {
  struct Seen {
    uint64_t beat = 0;
    clock::time_point since{};
  };
  std::unordered_map<WorkerState*, Seen> seen;
  const auto timeout =
      std::chrono::milliseconds(config_.reliability.watchdog.hang_timeout_ms);
  const auto poll = std::chrono::milliseconds(
      std::max<int64_t>(1, config_.reliability.watchdog.poll_ms));
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(watchdog_mutex_);
      watchdog_cv_.wait_for(lock, poll, [this] { return watchdog_stop_; });
      if (watchdog_stop_) return;
    }
    std::vector<WorkerState*> active;
    {
      std::lock_guard<std::mutex> lock(workers_mutex_);
      for (const auto& w : workers_) {
        if (!w->retired.load(std::memory_order_acquire) &&
            !w->exited.load(std::memory_order_acquire)) {
          active.push_back(w.get());
        }
      }
    }
    const auto now = clock::now();
    for (WorkerState* w : active) {
      if (!w->busy.load(std::memory_order_acquire)) {
        seen.erase(w);
        continue;
      }
      const uint64_t beat = w->beat.load(std::memory_order_acquire);
      auto it = seen.find(w);
      if (it == seen.end() || it->second.beat != beat) {
        seen[w] = {beat, now};
        continue;
      }
      if (now - it->second.since < timeout) continue;
      // Hung: retire the worker, fail its unresolved in-flight promises,
      // and spawn a replacement (modeled on ThreadPool::resize's
      // generation swap — the queue and its pending work carry over; only
      // the wedged thread is written off).
      w->retired.store(true, std::memory_order_release);
      std::shared_ptr<InFlightBatch> inflight;
      {
        std::lock_guard<std::mutex> lock(w->m);
        inflight = w->inflight;
      }
      // Take over the unresolved promises first (abandoning the batch so
      // the hung worker, should it ever resume, cannot double-resolve),
      // then restart and count, and only then fail them: a client that
      // observes kWorkerLost also observes the restart and the stats.
      std::vector<std::promise<ForecastResult>*> orphans;
      if (inflight) {
        std::lock_guard<std::mutex> lock(inflight->m);
        inflight->abandoned = true;
        for (size_t i = 0; i < inflight->reqs.size(); ++i) {
          if (inflight->resolved[i]) continue;
          inflight->resolved[i] = 1;
          orphans.push_back(&inflight->reqs[i].promise);
          const uint64_t tid = inflight->reqs[i].request.trace.id;
          if (tid != 0) {
            const int64_t t1 = obs::now_us();
            const uint32_t f = obs::kError | obs::kWorkerLost;
            const int code =
                static_cast<int>(ForecastErrorCode::kWorkerLost);
            trace_span(tid, "resolve", t1, t1, f, code);
            trace_span(tid, "request",
                       obs::to_us(inflight->reqs[i].enqueued), t1, f, code);
          }
        }
      }
      bool restarted = false;
      {
        std::lock_guard<std::mutex> lock(workers_mutex_);
        if (restarts_left_ > 0) {
          --restarts_left_;
          spawn_worker_locked();
          restarted = true;
        }
      }
      {
        obs::Registry::Group g(registry_);
        c_worker_lost_->add(static_cast<int64_t>(orphans.size()));
        c_failed_->add(static_cast<int64_t>(orphans.size()));
        if (restarted) c_worker_restarts_->inc();
      }
      for (auto* p : orphans) {
        p->set_exception(typed_error(
            ForecastErrorCode::kWorkerLost,
            "serving worker hung past the heartbeat timeout"));
      }
      seen.erase(w);
    }
  }
}

std::promise<ForecastResult>* ForecastServer::claim(InFlightBatch& b,
                                                    size_t i) {
  std::lock_guard<std::mutex> lock(b.m);
  if (b.abandoned || b.resolved[i]) return nullptr;
  b.resolved[i] = 1;
  // Once claimed nobody else touches this promise (resolved[i] gates the
  // watchdog and every worker path), so the caller may resolve it after
  // dropping b.m.
  return &b.reqs[i].promise;
}

bool ForecastServer::deliver_error(InFlightBatch& b, size_t i,
                                   std::exception_ptr error,
                                   obs::Counter* extra_counter) {
  std::promise<ForecastResult>* p = claim(b, i);
  if (p == nullptr) return false;
  {
    obs::Registry::Group g(registry_);
    c_failed_->inc();
    if (extra_counter != nullptr) extra_counter->inc();
  }
  const uint64_t tid = b.reqs[i].request.trace.id;
  if (tid != 0 && obs::TraceRecorder::instance().enabled()) {
    const int64_t t1 = obs::now_us();
    const int code = error_code_of(error);
    uint32_t flags = obs::kError;
    if (code == static_cast<int>(ForecastErrorCode::kWorkerLost)) {
      flags |= obs::kWorkerLost;
    }
    trace_span(tid, "resolve", t1, t1, flags, code);
    trace_span(tid, "request", obs::to_us(b.reqs[i].enqueued), t1, flags,
               code);
  }
  p->set_exception(std::move(error));
  return true;
}

ServerStatsSnapshot ForecastServer::stats() const {
  ServerStatsSnapshot s;
  {
    // The exclusive side of every writer's Registry::Group: no stat
    // group (claim -> count -> resolve) is ever observed half-committed,
    // which also makes the claim/stats ordering atomic wrt this reader.
    const auto lock = registry_.exclusive();
    s.submitted = static_cast<uint64_t>(c_submitted_->value());
    s.served = static_cast<uint64_t>(c_served_->value());
    s.rejected = static_cast<uint64_t>(c_rejected_->value());
    s.fallbacks = static_cast<uint64_t>(c_fallbacks_->value());
    s.batches = static_cast<uint64_t>(c_batches_->value());
    s.coalesced = static_cast<uint64_t>(c_coalesced_->value());
    s.failed = static_cast<uint64_t>(c_failed_->value());
    s.invalid = static_cast<uint64_t>(c_invalid_->value());
    s.deadline_expired = static_cast<uint64_t>(c_deadline_->value());
    s.retries = static_cast<uint64_t>(c_retries_->value());
    s.degraded = static_cast<uint64_t>(c_degraded_->value());
    s.worker_lost = static_cast<uint64_t>(c_worker_lost_->value());
    s.worker_restarts = static_cast<uint64_t>(c_worker_restarts_->value());
    const obs::HistogramSnapshot bh = h_batch_->snapshot();
    for (int i = 0; i < ServerStatsSnapshot::kBatchHistBuckets; ++i) {
      s.batch_hist[static_cast<size_t>(i)] = bh.counts[static_cast<size_t>(i)];
    }
    s.queue_depth = queue_.depth();
    const obs::HistogramSnapshot lat = h_latency_->snapshot();
    s.p50_ms = lat.percentile(0.50) * 1e-3;
    s.p95_ms = lat.percentile(0.95) * 1e-3;
    s.p99_ms = lat.percentile(0.99) * 1e-3;
    if (s.batches > 0) {
      s.mean_batch =
          static_cast<double>(s.served) / static_cast<double>(s.batches);
    }
    const int64_t first = first_serve_us_.load(std::memory_order_acquire);
    const int64_t last = last_serve_us_.load(std::memory_order_acquire);
    if (s.served > 0 && first >= 0 && last > first) {
      s.throughput_rps = static_cast<double>(s.served) /
                         (static_cast<double>(last - first) * 1e-6);
    }
  }
  for (const auto& b : breakers_) {
    s.breaker_trips += b->trips();
    if (b->open()) ++s.breaker_open_slots;
  }
  const CacheStatsSnapshot c = cache_->stats();
  s.cache_hits = c.hits;
  s.cache_prefix_hits = c.prefix_hits;
  s.cache_misses = c.misses;
  s.cache_inserts = c.inserts;
  s.cache_evictions = c.evictions;
  s.cache_expired = c.expirations;
  s.cache_bytes = c.bytes;
  s.cache_entries = c.entries;
  return s;
}

}  // namespace coastal::serve
