#include "serve/server.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <unordered_map>

#include "core/decode.hpp"
#include "core/rollout.hpp"
#include "data/sample.hpp"
#include "nn/layers.hpp"
#include "parallel/thread_pool.hpp"
#include "tensor/kernels.hpp"
#include "tensor/storage.hpp"
#include "tensor/tensor.hpp"
#include "util/check.hpp"
#include "util/fault.hpp"

namespace coastal::serve {

namespace {

using clock = std::chrono::steady_clock;

double seconds_between(clock::time_point a, clock::time_point b) {
  return std::chrono::duration_cast<std::chrono::duration<double>>(b - a)
      .count();
}

/// Geometric latency bucket (ratio 2^(1/4), anchored at 1 µs).
int latency_bucket(double seconds, int nbuckets) {
  const double us = seconds * 1e6;
  if (us <= 1.0) return 0;
  const int idx = static_cast<int>(4.0 * std::log2(us));
  return std::min(std::max(idx, 0), nbuckets - 1);
}

/// Representative latency (ms) of a bucket's midpoint.
double bucket_ms(int idx) {
  return std::exp2((idx + 0.5) / 4.0) * 1e-3;
}

/// Bitwise window equality — the identical-request coalescing predicate.
/// memcmp (not float ==) so NaN payloads and signed zeros never merge
/// episodes that would decode differently.
bool same_window(const std::vector<data::CenterFields>& a,
                 const std::vector<data::CenterFields>& b) {
  if (a.size() != b.size()) return false;
  auto eq = [](const std::vector<float>& p, const std::vector<float>& q) {
    return p.size() == q.size() &&
           std::memcmp(p.data(), q.data(), p.size() * sizeof(float)) == 0;
  };
  for (size_t t = 0; t < a.size(); ++t) {
    const auto& x = a[t];
    const auto& y = b[t];
    if (x.nx != y.nx || x.ny != y.ny || x.nz != y.nz) return false;
    if (!eq(x.u, y.u) || !eq(x.v, y.v) || !eq(x.w, y.w) ||
        !eq(x.zeta, y.zeta)) {
      return false;
    }
  }
  return true;
}

double percentile_ms(const std::array<uint64_t, 64>& hist, uint64_t total,
                     double q) {
  if (total == 0) return 0.0;
  const double target = q * static_cast<double>(total);
  double cum = 0.0;
  for (int i = 0; i < 64; ++i) {
    cum += static_cast<double>(hist[static_cast<size_t>(i)]);
    if (cum >= target) return bucket_ms(i);
  }
  return bucket_ms(63);
}

bool fields_finite(const data::CenterFields& f) {
  auto ok = [](const std::vector<float>& v) {
    for (float x : v) {
      if (!std::isfinite(x)) return false;
    }
    return true;
  };
  return ok(f.u) && ok(f.v) && ok(f.w) && ok(f.zeta);
}

bool has_deadline(const PendingRequest& p) {
  return p.deadline != clock::time_point{};
}

std::exception_ptr typed_error(ForecastErrorCode code,
                               const std::string& detail) {
  return std::make_exception_ptr(ForecastError(code, detail));
}

std::string describe(const std::exception_ptr& e) {
  try {
    std::rethrow_exception(e);
  } catch (const std::exception& ex) {
    return ex.what();
  } catch (...) {
    return "unknown error";
  }
}

/// Errors delivered to clients are always ForecastError; anything else is
/// wrapped as kModelFailure with the cause preserved in the message.
std::exception_ptr as_model_failure(const std::exception_ptr& e) {
  try {
    std::rethrow_exception(e);
  } catch (const ForecastError&) {
    return e;
  } catch (...) {
  }
  return typed_error(ForecastErrorCode::kModelFailure, describe(e));
}

/// A forward failure worth retrying?  Contract violations (CheckError,
/// ForecastError) never are; injected faults and unknown runtime errors
/// are treated as transient.
bool is_transient(const std::exception_ptr& e) {
  try {
    std::rethrow_exception(e);
  } catch (const util::CheckError&) {
    return false;
  } catch (const ForecastError&) {
    return false;
  } catch (...) {
    return true;
  }
}

/// NaN-poison the first frame of a decoded episode (the `rollout.step`
/// nan action) — every element, so wet cells are hit regardless of mask.
void poison_first_frame(std::vector<data::CenterFields>& frames) {
  if (frames.empty()) return;
  const float nan = std::numeric_limits<float>::quiet_NaN();
  auto& f = frames.front();
  std::fill(f.u.begin(), f.u.end(), nan);
  std::fill(f.v.begin(), f.v.end(), nan);
  std::fill(f.w.begin(), f.w.end(), nan);
  std::fill(f.zeta.begin(), f.zeta.end(), nan);
}

}  // namespace

ForecastServer::ForecastServer(std::vector<ModelSlot> models,
                               const data::Normalizer& norm,
                               const ocean::Grid* grid,
                               const ServerConfig& config)
    : models_(std::move(models)),
      norm_(norm),
      grid_(grid),
      config_(config),
      queue_(config.queue_capacity) {
  COASTAL_CHECK_MSG(!models_.empty(), "ForecastServer needs >= 1 model slot");
  for (const auto& slot : models_) {
    COASTAL_CHECK_MSG(slot.model != nullptr, "null model in slot");
    slot.model->set_training(false);
  }
  if (grid_ && config_.verify) {
    verifier_.emplace(*grid_, config_.threshold);
  }
  // Deployment knobs (COASTAL_CACHE*) override the configured policy; the
  // effective policy is stored back so config().cache tells the truth.
  config_.cache = cache_policy_from_env(config_.cache);
  cache_ = std::make_unique<ForecastCache>(config_.cache);
  COASTAL_CHECK_MSG(!config_.fallback || (grid_ && config_.verify),
                    "the ROMS fallback requires a grid and verify=true");
  for (size_t i = 0; i < models_.size(); ++i) {
    model_mutexes_.push_back(std::make_unique<std::timed_mutex>());
    breakers_.push_back(
        std::make_unique<CircuitBreaker>(config_.reliability.breaker));
  }
  if (config_.kernel_threads > 0) {
    // Deployment-time kernel sizing: the pool and the kernel chunking
    // config move together so dispatch decisions never drift from the
    // workers actually available.
    par::ThreadPool::global().resize(
        static_cast<size_t>(config_.kernel_threads));
    tensor::kernels::config().num_threads = config_.kernel_threads;
  }
  const int nworkers = std::max(1, config_.workers);
  {
    std::lock_guard<std::mutex> lock(workers_mutex_);
    restarts_left_ = config_.reliability.watchdog.max_restarts;
    workers_.reserve(static_cast<size_t>(nworkers));
    for (int i = 0; i < nworkers; ++i) spawn_worker_locked();
  }
  if (config_.reliability.watchdog.hang_timeout_ms > 0) {
    watchdog_ = std::thread([this] { watchdog_loop(); });
  }
}

ForecastServer::~ForecastServer() { shutdown(); }

ForecastServer::WorkerState* ForecastServer::spawn_worker_locked() {
  workers_.push_back(std::make_unique<WorkerState>());
  WorkerState* state = workers_.back().get();
  state->thread = std::thread([this, state] { worker_loop(state); });
  return state;
}

void ForecastServer::shutdown() {
  {
    std::lock_guard<std::mutex> lock(shutdown_mutex_);
    if (shut_down_) return;
    shut_down_ = true;
  }
  queue_.close();
  {
    std::lock_guard<std::mutex> lock(watchdog_mutex_);
    watchdog_stop_ = true;
  }
  watchdog_cv_.notify_all();
  if (watchdog_.joinable()) watchdog_.join();
  // Workers parked by an injected hang only exit once released, so keep
  // releasing until every worker_loop returns — a chaos run (or a test
  // that forgot to clear its schedule) always terminates.
  for (;;) {
    bool all_exited = true;
    {
      std::lock_guard<std::mutex> lock(workers_mutex_);
      for (const auto& w : workers_) {
        if (!w->exited.load(std::memory_order_acquire)) {
          all_exited = false;
          break;
        }
      }
    }
    if (all_exited) break;
    util::FaultInjector::instance().release_hangs();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::lock_guard<std::mutex> lock(workers_mutex_);
  for (auto& w : workers_) {
    if (w->thread.joinable()) w->thread.join();
  }
}

std::optional<std::future<ForecastResult>> ForecastServer::submit(
    ForecastRequest request) {
  COASTAL_CHECK_MSG(request.model_id >= 0 &&
                        request.model_id < static_cast<int>(models_.size()),
                    "bad model_id " << request.model_id);
  const auto& spec = models_[static_cast<size_t>(request.model_id)].spec;
  COASTAL_CHECK_MSG(
      request.window.size() > static_cast<size_t>(spec.T) &&
          (request.window.size() - 1) % static_cast<size_t>(spec.T) == 0,
      "request needs e*T+1 frames (T = " << spec.T << "), got "
                                         << request.window.size());
  for (const auto& f : request.window) {
    COASTAL_CHECK_MSG(f.nx == spec.src_nx && f.ny == spec.src_ny &&
                          f.nz == spec.src_nz,
                      "request frame dims (" << f.nx << "," << f.ny << ","
                                             << f.nz
                                             << ") do not match the spec");
  }
  if (config_.reliability.screen_inputs) {
    // Admission-time screening: a NaN/Inf initial condition can only burn
    // a forward and fail verification later, so refuse it with a typed
    // error now.  Shape violations above stay hard CHECK failures — they
    // are caller bugs, not data quality.
    for (size_t t = 0; t < request.window.size(); ++t) {
      if (!fields_finite(request.window[t])) {
        {
          std::lock_guard<std::mutex> lock(stats_mutex_);
          ++invalid_;
        }
        std::promise<ForecastResult> p;
        p.set_exception(typed_error(
            ForecastErrorCode::kInvalidInput,
            "non-finite values in window frame " + std::to_string(t)));
        return p.get_future();
      }
    }
  }

  PendingRequest pending;
  pending.enqueued = clock::now();
  if (request.timeout_us > 0) {
    pending.deadline =
        pending.enqueued + std::chrono::microseconds(request.timeout_us);
  }
  pending.request = std::move(request);
  auto future = pending.promise.get_future();
  // Count the submission *before* the (potentially blocking) push: a fast
  // worker can pop and serve the request while this thread is still here,
  // and a stats() snapshot must never show served > submitted.
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++submitted_;
  }
  const bool accepted =
      queue_.push(pending, config_.overflow == ServerConfig::Overflow::kBlock);
  if (!accepted) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    --submitted_;
    ++rejected_;
    return std::nullopt;
  }
  return future;
}

void ForecastServer::worker_loop(WorkerState* state) {
  for (;;) {
    if (state->retired.load(std::memory_order_acquire)) break;
    std::vector<PendingRequest> popped = queue_.pop_batch(config_.batch);
    if (popped.empty()) break;  // closed and drained
    auto inflight = std::make_shared<InFlightBatch>();
    inflight->reqs = std::move(popped);
    inflight->resolved.assign(inflight->reqs.size(), 0);
    {
      std::lock_guard<std::mutex> lock(state->m);
      state->inflight = inflight;
    }
    state->busy.store(true, std::memory_order_release);
    state->beat.fetch_add(1, std::memory_order_relaxed);
    try {
      serve_batch(state, inflight);
    } catch (...) {
      // A worker never dies with unresolved promises: anything that
      // escaped serve_batch fails the whole batch (typed).
      const std::exception_ptr e = as_model_failure(std::current_exception());
      for (size_t i = 0; i < inflight->reqs.size(); ++i) {
        deliver_error(*inflight, i, e);
      }
    }
    {
      // Defensive sweep: no request of a batch this worker still owns may
      // be left pending (clients would wait forever).
      std::lock_guard<std::mutex> lock(inflight->m);
      if (!inflight->abandoned) {
        for (size_t i = 0; i < inflight->reqs.size(); ++i) {
          if (!inflight->resolved[i]) {
            inflight->resolved[i] = 1;
            inflight->reqs[i].promise.set_exception(
                typed_error(ForecastErrorCode::kModelFailure,
                            "request left unresolved by serve_batch"));
          }
        }
      }
    }
    state->busy.store(false, std::memory_order_release);
    state->beat.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(state->m);
      state->inflight.reset();
    }
  }
  state->exited.store(true, std::memory_order_release);
}

void ForecastServer::serve_batch(
    WorkerState* state, const std::shared_ptr<InFlightBatch>& inflight) {
  auto& batch = inflight->reqs;
  // The canonical hung-worker injection point: before any lock is held,
  // so a parked worker wedges only itself (and its batch).
  COASTAL_FAULT_POINT("serve.worker");
  if (state->retired.load(std::memory_order_acquire)) return;

  const auto t_assembled = clock::now();
  const int model_id = batch.front().request.model_id;
  auto& slot = models_[static_cast<size_t>(model_id)];
  const data::SampleSpec& spec = slot.spec;
  // pop_batch keys on (model_id, window length), so the chain length is
  // uniform across the batch: 1 episode takes the stacked-forward route,
  // e > 1 the sequential chain route below.
  const int episodes =
      static_cast<int>(batch.front().request.window.size() - 1) / spec.T;
  CircuitBreaker& breaker = *breakers_[static_cast<size_t>(model_id)];
  const bool can_degrade = config_.fallback.has_value();

  // Deadline triage: requests already expired at batch assembly fail now,
  // before any work is spent on them.
  std::vector<char> dead(batch.size(), 0);
  for (size_t i = 0; i < batch.size(); ++i) {
    if (has_deadline(batch[i]) && t_assembled >= batch[i].deadline) {
      dead[i] = 1;
      deliver_error(*inflight, i,
                    typed_error(ForecastErrorCode::kDeadlineExceeded,
                                "expired before service began"),
                    &deadline_expired_);
    }
  }

  // Identical-episode coalescing over the surviving requests: uniques[u]
  // is the exemplar request of batch entry u; owner[i] maps each request
  // to its entry.
  std::vector<size_t> uniques;
  std::vector<size_t> owner(batch.size(), SIZE_MAX);
  uniques.reserve(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    if (dead[i]) continue;
    size_t u = uniques.size();
    if (config_.batch.coalesce_identical) {
      for (size_t j = 0; j < uniques.size(); ++j) {
        if (same_window(batch[uniques[j]].request.window,
                        batch[i].request.window)) {
          u = j;
          break;
        }
      }
    }
    if (u == uniques.size()) uniques.push_back(i);
    owner[i] = u;
  }
  if (uniques.empty()) return;
  std::vector<int> sharers(uniques.size(), 0);
  for (size_t i = 0; i < batch.size(); ++i) {
    if (dead[i]) continue;
    ++sharers[owner[i]];
  }

  // Circuit-breaker admission: an open slot serves the verified numerical
  // answer directly (degraded mode); half-open lets one probe batch try
  // the surrogate again.
  const CircuitBreaker::Mode mode = breaker.admit();
  const bool probe = mode == CircuitBreaker::Mode::kProbe;
  bool breaker_degraded = mode == CircuitBreaker::Mode::kDegraded;
  if (breaker_degraded && !can_degrade) {
    const auto e = typed_error(ForecastErrorCode::kCircuitOpen,
                               "slot degraded and no fallback configured");
    for (size_t i = 0; i < batch.size(); ++i) {
      if (!dead[i]) deliver_error(*inflight, i, e);
    }
    return;
  }

  // Content-addressed cache probe (docs/caching.md), after breaker
  // admission so a non-normal slot bypasses the cache entirely: degraded
  // traffic must take the numerical route, and a half-open probe batch
  // exists precisely to exercise the surrogate.
  std::vector<ForecastCache::Probe> probes(uniques.size());
  std::vector<char> done(uniques.size(), 0);
  const bool use_cache = cache_->policy().enabled &&
                         mode == CircuitBreaker::Mode::kNormal;
  if (use_cache) {
    for (size_t u = 0; u < uniques.size(); ++u) {
      probes[u] = cache_->probe(model_id, slot.version, spec,
                                batch[uniques[u]].request.window);
    }
  }
  // Exact hits deliver immediately: no forward, no re-verification — by
  // bitwise rollout determinism the stored frames ARE what a recompute
  // would produce, and the stored verdict already certified them.
  for (size_t u = 0; u < uniques.size(); ++u) {
    if (!probes[u].hit) continue;
    done[u] = 1;
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      coalesced_ += static_cast<uint64_t>(sharers[u] - 1);
    }
    int remaining = sharers[u];
    for (size_t i = 0; i < batch.size(); ++i) {
      if (dead[i] || owner[i] != u) continue;
      dead[i] = 1;
      const auto t_done = clock::now();
      const bool last = --remaining == 0;
      if (has_deadline(batch[i]) && t_done >= batch[i].deadline) {
        deliver_error(*inflight, i,
                      typed_error(ForecastErrorCode::kDeadlineExceeded,
                                  "expired before delivery"),
                      &deadline_expired_);
        continue;
      }
      std::promise<ForecastResult>* p = claim(*inflight, i);
      if (p == nullptr) continue;
      ForecastResult result;
      result.frames = last ? std::move(probes[u].frames) : probes[u].frames;
      result.batch_size = 0;  // no forward ran for this request
      result.sharers = sharers[u];
      result.cache_hit = true;
      result.verdict = probes[u].verdict;
      result.verified = probes[u].verified;
      result.queue_seconds = seconds_between(batch[i].enqueued, t_assembled);
      result.service_seconds = seconds_between(t_assembled, t_done);
      record_latency(seconds_between(batch[i].enqueued, t_done));
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++served_;
        if (first_serve_ == clock::time_point{}) first_serve_ = t_assembled;
        last_serve_ = t_done;
      }
      p->set_value(std::move(result));
    }
  }

  // The uniques that still need the surrogate (misses and prefix hits).
  std::vector<size_t> live;
  live.reserve(uniques.size());
  size_t live_sharers = 0;
  for (size_t u = 0; u < uniques.size(); ++u) {
    if (done[u]) continue;
    live.push_back(u);
    live_sharers += static_cast<size_t>(sharers[u]);
  }
  if (live.empty()) return;
  const int64_t B = static_cast<int64_t>(live.size());

  // The coalesced surrogate forward, with bounded deterministic retry for
  // transient failures.  Skipped entirely in degraded mode.
  std::vector<std::vector<data::CenterFields>> decoded(uniques.size());
  std::vector<std::exception_ptr> entry_error(uniques.size());
  std::vector<int> resumed(uniques.size(), 0);
  bool forward_ok = false;
  bool deadline_abort = false;
  std::exception_ptr forward_error;
  if (!breaker_degraded && episodes == 1) {
    // Everything tensor-shaped in this block — the per-request samples,
    // the stacked batch, the forward activations, the batched output —
    // bump-allocates from the arena and is released in bulk at scope
    // exit, so a warmed-up server allocates nothing here.  Only the
    // decoded CenterFields (plain vectors) escape.
    tensor::ArenaScope arena;
    tensor::NoGradGuard ng;
    try {
      // Pack the batch *before* taking the model mutex: sample
      // construction touches only request data and this worker's arena,
      // so another worker's forward overlaps it (the pipeline overlap
      // promised in server.hpp).  The distinct episodes are written
      // straight into one stacked tensor pair — no per-request target
      // tensors, no intermediate concat (bitwise-pinned against the old
      // concat path in tests/test_serve.cpp).
      tensor::Tensor vol, surf;
      {
        std::vector<std::span<const data::CenterFields>> windows;
        windows.reserve(live.size());
        for (size_t u : live) {
          windows.push_back(batch[uniques[u]].request.window);
        }
        data::BatchedInput in = data::make_batched_input(spec, windows);
        vol = std::move(in.volume);
        surf = std::move(in.surface);
      }
      state->beat.fetch_add(1, std::memory_order_relaxed);

      const RetryPolicy& retry = config_.reliability.retry;
      const int max_attempts = std::max(1, retry.max_attempts);
      int64_t backoff_us = std::max<int64_t>(0, retry.backoff_us);
      core::SurrogateOutput out;
      for (int attempt = 1; !forward_ok; ++attempt) {
        try {
          // One batch in flight per model (see file comment in
          // server.hpp).  With the watchdog on, bound the wait so a
          // replacement worker cannot wedge forever behind a hung
          // predecessor still holding the slot.
          std::unique_lock<std::timed_mutex> model_lock(
              *model_mutexes_[static_cast<size_t>(model_id)],
              std::defer_lock);
          const int64_t hang_ms =
              config_.reliability.watchdog.hang_timeout_ms;
          if (hang_ms > 0) {
            if (!model_lock.try_lock_for(std::chrono::milliseconds(
                    std::max<int64_t>(1, hang_ms / 2)))) {
              throw ForecastError(ForecastErrorCode::kModelFailure,
                                  "model slot lock timed out");
            }
          } else {
            model_lock.lock();
          }
          COASTAL_FAULT_POINT("serve.forward");
          if (state->retired.load(std::memory_order_acquire)) return;
          // Grouped BatchNorm statistics (and per-request attention
          // routing): each coalesced episode is normalized exactly as it
          // would be served alone, which is what makes the demuxed
          // results bitwise-serial (see nn::BatchStatScope).
          nn::BatchStatScope stat_groups(B);
          out = slot.model->forward(vol, surf);
          forward_ok = true;
        } catch (...) {
          const std::exception_ptr e = std::current_exception();
          if (!is_transient(e) || attempt >= max_attempts) {
            forward_error = e;
            break;
          }
          // Abort the retry chain once every remaining request's
          // deadline has passed — nobody is left to receive the result.
          bool all_expired = true;
          const auto now = clock::now();
          for (size_t i = 0; i < batch.size(); ++i) {
            if (dead[i]) continue;
            if (!has_deadline(batch[i]) || now < batch[i].deadline) {
              all_expired = false;
              break;
            }
          }
          if (all_expired) {
            deadline_abort = true;
            break;
          }
          {
            std::lock_guard<std::mutex> lock(stats_mutex_);
            ++retries_;
          }
          std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
          backoff_us = static_cast<int64_t>(
              static_cast<double>(backoff_us) * retry.backoff_mult);
          state->beat.fetch_add(1, std::memory_order_relaxed);
        }
      }
      if (forward_ok) {
        state->beat.fetch_add(1, std::memory_order_relaxed);
        // Per-entry decode: one entry's failure (or injected fault) must
        // not fail sharers of healthy entries — the blast radius stays
        // one episode.
        for (size_t b = 0; b < live.size(); ++b) {
          const size_t u = live[b];
          try {
            const util::FaultAction fa = COASTAL_FAULT_POINT("rollout.step");
            decoded[u] = core::decode_prediction_entry(
                spec, out, static_cast<int64_t>(b), norm_);
            if (fa == util::FaultAction::kNan) poison_first_frame(decoded[u]);
          } catch (...) {
            entry_error[u] = std::current_exception();
          }
        }
      }
    } catch (...) {
      // Pack/stack failure: no forward ran; handled like a forward
      // failure below.
      forward_error = std::current_exception();
    }
  } else if (!breaker_degraded) {
    // Chain route (e > 1 episodes): a chain is inherently sequential —
    // episode e's initial condition is episode e-1's last frame — so
    // there is nothing for a stacked forward to amortize across a chain.
    // Each distinct window runs one resumed rollout; a prefix hit starts
    // it at the first uncached episode (core::resume_rollout), which is
    // where the cache pays off most.
    tensor::NoGradGuard ng;
    const RetryPolicy& retry = config_.reliability.retry;
    const int max_attempts = std::max(1, retry.max_attempts);
    for (size_t u : live) {
      const auto& window = batch[uniques[u]].request.window;
      const int start_episode = probes[u].prefix ? probes[u].episodes : 0;
      // Cooperative cancel between episode forwards: abort only once
      // every sharer's deadline has passed (nobody left to deliver to).
      const core::CancelHook cancel = [&, u] {
        const auto now = clock::now();
        for (size_t i = 0; i < batch.size(); ++i) {
          if (dead[i] || owner[i] != u) continue;
          if (!has_deadline(batch[i]) || now < batch[i].deadline) return;
        }
        throw ForecastError(ForecastErrorCode::kDeadlineExceeded,
                            "expired during chain rollout");
      };
      int64_t backoff_us = std::max<int64_t>(0, retry.backoff_us);
      for (int attempt = 1; !done[u] && entry_error[u] == nullptr;
           ++attempt) {
        try {
          std::unique_lock<std::timed_mutex> model_lock(
              *model_mutexes_[static_cast<size_t>(model_id)],
              std::defer_lock);
          const int64_t hang_ms =
              config_.reliability.watchdog.hang_timeout_ms;
          if (hang_ms > 0) {
            if (!model_lock.try_lock_for(std::chrono::milliseconds(
                    std::max<int64_t>(1, hang_ms / 2)))) {
              throw ForecastError(ForecastErrorCode::kModelFailure,
                                  "model slot lock timed out");
            }
          } else {
            model_lock.lock();
          }
          COASTAL_FAULT_POINT("serve.forward");
          if (state->retired.load(std::memory_order_acquire)) return;
          auto suffix = core::resume_rollout(
              *slot.model, spec, norm_, window, episodes, start_episode,
              start_episode > 0 ? &probes[u].frames.back() : nullptr,
              &cancel);
          if (start_episode > 0) {
            // Keep the cached prefix intact across retries: copy it, then
            // append the freshly computed suffix.
            decoded[u] = probes[u].frames;
            decoded[u].reserve(decoded[u].size() + suffix.size());
            for (auto& f : suffix) decoded[u].push_back(std::move(f));
            resumed[u] = static_cast<int>(probes[u].frames.size());
          } else {
            decoded[u] = std::move(suffix);
          }
          break;  // served by the epilogue below
        } catch (const ForecastError& fe) {
          if (fe.code() == ForecastErrorCode::kDeadlineExceeded) {
            // A mid-chain deadline is delivered directly — the request
            // expired, it did not fail; routing it into the numerical
            // fallback would burn a full ROMS chain for nobody.
            for (size_t i = 0; i < batch.size(); ++i) {
              if (dead[i] || owner[i] != u) continue;
              dead[i] = 1;
              deliver_error(*inflight, i, std::make_exception_ptr(fe),
                            &deadline_expired_);
            }
            done[u] = 1;
          } else {
            entry_error[u] = std::current_exception();  // never transient
          }
        } catch (...) {
          const std::exception_ptr e = std::current_exception();
          if (!is_transient(e) || attempt >= max_attempts) {
            entry_error[u] = e;
            break;
          }
          {
            std::lock_guard<std::mutex> lock(stats_mutex_);
            ++retries_;
          }
          std::this_thread::sleep_for(std::chrono::microseconds(backoff_us));
          backoff_us = static_cast<int64_t>(
              static_cast<double>(backoff_us) * retry.backoff_mult);
        }
      }
      state->beat.fetch_add(1, std::memory_order_relaxed);
    }
    // Chain outcomes are per-entry (entry_error / done), never a single
    // batch-wide forward failure.
    forward_ok = true;
  }

  if (deadline_abort) {
    const auto e = typed_error(ForecastErrorCode::kDeadlineExceeded,
                               "expired during forward retries");
    for (size_t i = 0; i < batch.size(); ++i) {
      if (!dead[i]) deliver_error(*inflight, i, e, &deadline_expired_);
    }
    return;
  }

  // Forward failed after retries: report to the breaker, then route the
  // whole batch to the numerical fallback when one is configured, else
  // fail every surviving request (typed).
  bool salvage_numerical = false;
  if (!breaker_degraded && !forward_ok) {
    if (probe) {
      breaker.probe_result(false);
    } else {
      breaker.record_failures(static_cast<int>(uniques.size()));
    }
    if (can_degrade) {
      salvage_numerical = true;
    } else {
      const auto e = as_model_failure(forward_error);
      for (size_t i = 0; i < batch.size(); ++i) {
        if (!dead[i]) deliver_error(*inflight, i, e);
      }
      return;
    }
  }

  // Batch-composition stats land before any promise resolves, so a
  // client that observes its result also observes the batch that carried
  // it.  Only counted when a forward actually executed.
  if (forward_ok) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++batches_;
    coalesced_ += live_sharers - live.size();
    const int bucket = std::min<int>(
        static_cast<int>(B), ServerStatsSnapshot::kBatchHistBuckets);
    ++batch_hist_[static_cast<size_t>(bucket - 1)];
  }

  // Per-entry epilogue: verification, fallback, or the numerical route,
  // once per distinct episode; then fan the outcome out to every sharer.
  // Outside the arena and the model lock, so other workers' forwards
  // overlap it.
  int probe_failures = 0;
  for (size_t u = 0; u < uniques.size(); ++u) {
    if (done[u]) continue;  // served from cache or expired mid-chain
    state->beat.fetch_add(1, std::memory_order_relaxed);
    const auto& window = batch[uniques[u]].request.window;
    bool entry_fallback = false, entry_verified = false;
    bool entry_degraded = false;
    core::VerificationResult entry_verdict;
    const bool numerical_route =
        breaker_degraded || salvage_numerical || entry_error[u] != nullptr;
    if (numerical_route && !can_degrade) {
      // Per-entry decode failure with no fallback: isolate it.
      const auto e = as_model_failure(entry_error[u]);
      for (size_t i = 0; i < batch.size(); ++i) {
        if (!dead[i] && owner[i] == u) deliver_error(*inflight, i, e);
      }
      if (probe) ++probe_failures;
      else if (forward_ok) breaker.record(false);
      continue;
    }
    try {
      if (numerical_route) {
        // Degraded / salvage: compute the episode with the numerical
        // model — verified by construction, and check_sequence confirms.
        const data::CenterFields current =
            data::denormalized_copy(window.front(), norm_);
        decoded[u] = core::numerical_episode(
            *grid_, config_.fallback->tides, config_.fallback->params,
            current, current.time, config_.snapshot_dt, spec.T * episodes);
        std::vector<data::CenterFields> seq;
        seq.reserve(decoded[u].size() + 1);
        seq.push_back(current);
        for (auto& f : decoded[u]) seq.push_back(f);
        entry_verdict = verifier_->check_sequence(seq, config_.snapshot_dt);
        entry_verified = true;
        entry_fallback = true;
        entry_degraded = breaker_degraded;
        if (entry_error[u]) {
          if (probe) ++probe_failures;
          else if (forward_ok) breaker.record(false);
        }
      } else if (verifier_) {
        const data::CenterFields current = data::denormalized_copy(
            window.front(), norm_);
        if (resumed[u] > 0) {
          // Prefix resume: the cached verdict already folded the prefix
          // pairs; extending it across the fresh suffix continues that
          // exact left-to-right fold (MassVerifier::extend_sequence), so
          // the combined verdict is bitwise what a cold full pass yields.
          const auto nres = static_cast<size_t>(resumed[u]);
          const std::span<const data::CenterFields> all(decoded[u]);
          if (probes[u].verified) {
            entry_verdict = verifier_->extend_sequence(
                probes[u].verdict, decoded[u][nres - 1], all.subspan(nres),
                config_.snapshot_dt);
          } else {
            std::vector<data::CenterFields> seq;
            seq.reserve(decoded[u].size() + 1);
            seq.push_back(current);
            for (auto& f : decoded[u]) seq.push_back(f);
            entry_verdict =
                verifier_->check_sequence(seq, config_.snapshot_dt);
          }
          if (!entry_verdict.pass && config_.fallback) {
            // Whole-chain numerical rerun, mirroring verify_or_fallback
            // (the verdict keeps describing the surrogate chain).
            decoded[u] = core::numerical_episode(
                *grid_, config_.fallback->tides, config_.fallback->params,
                current, current.time, config_.snapshot_dt,
                spec.T * episodes);
            entry_fallback = true;
            resumed[u] = 0;  // nothing of the cache survived
          }
        } else if (config_.fallback) {
          // current.time is the request's own episode start (copied from
          // the IC frame), anchoring the restart's tidal phase.
          const core::EpisodeOutcome outcome = core::verify_or_fallback(
              decoded[u], current, *verifier_, *grid_,
              config_.fallback->tides, config_.fallback->params,
              current.time, config_.snapshot_dt);
          entry_verdict = outcome.verdict;
          entry_fallback = outcome.fallback;
        } else {
          std::vector<data::CenterFields> seq;
          seq.reserve(decoded[u].size() + 1);
          seq.push_back(current);
          for (auto& f : decoded[u]) seq.push_back(f);
          entry_verdict = verifier_->check_sequence(seq, config_.snapshot_dt);
        }
        entry_verified = true;
      }
      if (!numerical_route) {
        if (probe) {
          if (entry_fallback) ++probe_failures;
        } else if (forward_ok) {
          // A verification fallback counts as a slot failure: a surrogate
          // producing chronic garbage should trip into degraded mode
          // rather than burn a forward per request.
          breaker.record(!entry_fallback);
        }
      }
    } catch (...) {
      const auto e = std::current_exception();
      for (size_t i = 0; i < batch.size(); ++i) {
        if (!dead[i] && owner[i] == u) deliver_error(*inflight, i, e);
      }
      continue;
    }
    // Post-verification cache fill: only the healthy surrogate route in
    // normal breaker mode is admitted — degraded, fallback, salvaged, and
    // errored results never enter the cache (and the cache finite-scans
    // unverified payloads as a last line of defense).  Outside any arena,
    // as insert() requires: the entry's storage must outlive this batch.
    if (use_cache && !numerical_route && !entry_fallback &&
        entry_error[u] == nullptr) {
      cache_->insert(model_id, slot.version, spec, window, decoded[u],
                     entry_verdict, entry_verified);
    }
    int remaining = sharers[u];
    for (size_t i = 0; i < batch.size(); ++i) {
      if (dead[i] || owner[i] != u) continue;
      const auto t_done = clock::now();
      const bool last = --remaining == 0;
      if (has_deadline(batch[i]) && t_done >= batch[i].deadline) {
        // The result exists but the client stopped waiting: a deadline is
        // a promise about *delivery*, not computation.
        deliver_error(*inflight, i,
                      typed_error(ForecastErrorCode::kDeadlineExceeded,
                                  "expired before delivery"),
                      &deadline_expired_);
        continue;
      }
      std::promise<ForecastResult>* p = claim(*inflight, i);
      if (p == nullptr) continue;
      ForecastResult result;
      // The last sharer takes the frames by move; earlier ones copy.
      result.frames = last ? std::move(decoded[u]) : decoded[u];
      result.batch_size = static_cast<int>(B);
      result.sharers = sharers[u];
      result.resumed_frames = resumed[u];
      result.verdict = entry_verdict;
      result.verified = entry_verified;
      result.fallback = entry_fallback;
      result.degraded = entry_degraded;
      result.queue_seconds = seconds_between(batch[i].enqueued, t_assembled);
      result.service_seconds = seconds_between(t_assembled, t_done);
      record_latency(seconds_between(batch[i].enqueued, t_done));
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++served_;
        if (entry_fallback) ++fallbacks_;
        if (entry_degraded) ++degraded_;
        if (first_serve_ == clock::time_point{}) first_serve_ = t_assembled;
        last_serve_ = t_done;
      }
      p->set_value(std::move(result));
    }
  }
  if (probe && forward_ok) breaker.probe_result(probe_failures == 0);
}

void ForecastServer::watchdog_loop() {
  struct Seen {
    uint64_t beat = 0;
    clock::time_point since{};
  };
  std::unordered_map<WorkerState*, Seen> seen;
  const auto timeout =
      std::chrono::milliseconds(config_.reliability.watchdog.hang_timeout_ms);
  const auto poll = std::chrono::milliseconds(
      std::max<int64_t>(1, config_.reliability.watchdog.poll_ms));
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(watchdog_mutex_);
      watchdog_cv_.wait_for(lock, poll, [this] { return watchdog_stop_; });
      if (watchdog_stop_) return;
    }
    std::vector<WorkerState*> active;
    {
      std::lock_guard<std::mutex> lock(workers_mutex_);
      for (const auto& w : workers_) {
        if (!w->retired.load(std::memory_order_acquire) &&
            !w->exited.load(std::memory_order_acquire)) {
          active.push_back(w.get());
        }
      }
    }
    const auto now = clock::now();
    for (WorkerState* w : active) {
      if (!w->busy.load(std::memory_order_acquire)) {
        seen.erase(w);
        continue;
      }
      const uint64_t beat = w->beat.load(std::memory_order_acquire);
      auto it = seen.find(w);
      if (it == seen.end() || it->second.beat != beat) {
        seen[w] = {beat, now};
        continue;
      }
      if (now - it->second.since < timeout) continue;
      // Hung: retire the worker, fail its unresolved in-flight promises,
      // and spawn a replacement (modeled on ThreadPool::resize's
      // generation swap — the queue and its pending work carry over; only
      // the wedged thread is written off).
      w->retired.store(true, std::memory_order_release);
      std::shared_ptr<InFlightBatch> inflight;
      {
        std::lock_guard<std::mutex> lock(w->m);
        inflight = w->inflight;
      }
      // Take over the unresolved promises first (abandoning the batch so
      // the hung worker, should it ever resume, cannot double-resolve),
      // then restart and count, and only then fail them: a client that
      // observes kWorkerLost also observes the restart and the stats.
      std::vector<std::promise<ForecastResult>*> orphans;
      if (inflight) {
        std::lock_guard<std::mutex> lock(inflight->m);
        inflight->abandoned = true;
        for (size_t i = 0; i < inflight->reqs.size(); ++i) {
          if (inflight->resolved[i]) continue;
          inflight->resolved[i] = 1;
          orphans.push_back(&inflight->reqs[i].promise);
        }
      }
      bool restarted = false;
      {
        std::lock_guard<std::mutex> lock(workers_mutex_);
        if (restarts_left_ > 0) {
          --restarts_left_;
          spawn_worker_locked();
          restarted = true;
        }
      }
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        worker_lost_ += orphans.size();
        failed_ += orphans.size();
        if (restarted) ++worker_restarts_;
      }
      for (auto* p : orphans) {
        p->set_exception(typed_error(
            ForecastErrorCode::kWorkerLost,
            "serving worker hung past the heartbeat timeout"));
      }
      seen.erase(w);
    }
  }
}

std::promise<ForecastResult>* ForecastServer::claim(InFlightBatch& b,
                                                    size_t i) {
  std::lock_guard<std::mutex> lock(b.m);
  if (b.abandoned || b.resolved[i]) return nullptr;
  b.resolved[i] = 1;
  // Once claimed nobody else touches this promise (resolved[i] gates the
  // watchdog and every worker path), so the caller may resolve it after
  // dropping b.m.
  return &b.reqs[i].promise;
}

bool ForecastServer::deliver_error(InFlightBatch& b, size_t i,
                                   std::exception_ptr error,
                                   uint64_t* extra_counter) {
  std::promise<ForecastResult>* p = claim(b, i);
  if (p == nullptr) return false;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++failed_;
    if (extra_counter != nullptr) ++*extra_counter;
  }
  p->set_exception(std::move(error));
  return true;
}

void ForecastServer::record_latency(double seconds) {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ++latency_hist_[static_cast<size_t>(
      latency_bucket(seconds, kLatencyBuckets))];
}

ServerStatsSnapshot ForecastServer::stats() const {
  ServerStatsSnapshot s;
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    s.submitted = submitted_;
    s.served = served_;
    s.rejected = rejected_;
    s.fallbacks = fallbacks_;
    s.batches = batches_;
    s.coalesced = coalesced_;
    s.failed = failed_;
    s.invalid = invalid_;
    s.deadline_expired = deadline_expired_;
    s.retries = retries_;
    s.degraded = degraded_;
    s.worker_lost = worker_lost_;
    s.worker_restarts = worker_restarts_;
    s.batch_hist = batch_hist_;
    s.queue_depth = queue_.depth();
    uint64_t total = 0;
    for (uint64_t c : latency_hist_) total += c;
    s.p50_ms = percentile_ms(latency_hist_, total, 0.50);
    s.p95_ms = percentile_ms(latency_hist_, total, 0.95);
    s.p99_ms = percentile_ms(latency_hist_, total, 0.99);
    if (batches_ > 0) {
      s.mean_batch =
          static_cast<double>(served_) / static_cast<double>(batches_);
    }
    if (served_ > 0 && last_serve_ > first_serve_) {
      s.throughput_rps = static_cast<double>(served_) /
                         seconds_between(first_serve_, last_serve_);
    }
  }
  for (const auto& b : breakers_) {
    s.breaker_trips += b->trips();
    if (b->open()) ++s.breaker_open_slots;
  }
  const CacheStatsSnapshot c = cache_->stats();
  s.cache_hits = c.hits;
  s.cache_prefix_hits = c.prefix_hits;
  s.cache_misses = c.misses;
  s.cache_inserts = c.inserts;
  s.cache_evictions = c.evictions;
  s.cache_expired = c.expirations;
  s.cache_bytes = c.bytes;
  s.cache_entries = c.entries;
  return s;
}

}  // namespace coastal::serve
