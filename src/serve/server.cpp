#include "serve/server.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "core/decode.hpp"
#include "core/rollout.hpp"
#include "nn/layers.hpp"
#include "parallel/thread_pool.hpp"
#include "tensor/kernels.hpp"
#include "tensor/storage.hpp"
#include "tensor/tensor.hpp"
#include "util/check.hpp"

namespace coastal::serve {

namespace {

using clock = std::chrono::steady_clock;

double seconds_between(clock::time_point a, clock::time_point b) {
  return std::chrono::duration_cast<std::chrono::duration<double>>(b - a)
      .count();
}

/// Geometric latency bucket (ratio 2^(1/4), anchored at 1 µs).
int latency_bucket(double seconds, int nbuckets) {
  const double us = seconds * 1e6;
  if (us <= 1.0) return 0;
  const int idx = static_cast<int>(4.0 * std::log2(us));
  return std::min(std::max(idx, 0), nbuckets - 1);
}

/// Representative latency (ms) of a bucket's midpoint.
double bucket_ms(int idx) {
  return std::exp2((idx + 0.5) / 4.0) * 1e-3;
}

/// Bitwise window equality — the identical-request coalescing predicate.
/// memcmp (not float ==) so NaN payloads and signed zeros never merge
/// episodes that would decode differently.
bool same_window(const std::vector<data::CenterFields>& a,
                 const std::vector<data::CenterFields>& b) {
  if (a.size() != b.size()) return false;
  auto eq = [](const std::vector<float>& p, const std::vector<float>& q) {
    return p.size() == q.size() &&
           std::memcmp(p.data(), q.data(), p.size() * sizeof(float)) == 0;
  };
  for (size_t t = 0; t < a.size(); ++t) {
    const auto& x = a[t];
    const auto& y = b[t];
    if (x.nx != y.nx || x.ny != y.ny || x.nz != y.nz) return false;
    if (!eq(x.u, y.u) || !eq(x.v, y.v) || !eq(x.w, y.w) ||
        !eq(x.zeta, y.zeta)) {
      return false;
    }
  }
  return true;
}

double percentile_ms(const std::array<uint64_t, 64>& hist, uint64_t total,
                     double q) {
  if (total == 0) return 0.0;
  const double target = q * static_cast<double>(total);
  double cum = 0.0;
  for (int i = 0; i < 64; ++i) {
    cum += static_cast<double>(hist[static_cast<size_t>(i)]);
    if (cum >= target) return bucket_ms(i);
  }
  return bucket_ms(63);
}

}  // namespace

ForecastServer::ForecastServer(std::vector<ModelSlot> models,
                               const data::Normalizer& norm,
                               const ocean::Grid* grid,
                               const ServerConfig& config)
    : models_(std::move(models)),
      norm_(norm),
      grid_(grid),
      config_(config),
      queue_(config.queue_capacity) {
  COASTAL_CHECK_MSG(!models_.empty(), "ForecastServer needs >= 1 model slot");
  for (const auto& slot : models_) {
    COASTAL_CHECK_MSG(slot.model != nullptr, "null model in slot");
    slot.model->set_training(false);
  }
  if (grid_ && config_.verify) {
    verifier_.emplace(*grid_, config_.threshold);
  }
  COASTAL_CHECK_MSG(!config_.fallback || (grid_ && config_.verify),
                    "the ROMS fallback requires a grid and verify=true");
  for (size_t i = 0; i < models_.size(); ++i) {
    model_mutexes_.push_back(std::make_unique<std::mutex>());
  }
  if (config_.kernel_threads > 0) {
    // Deployment-time kernel sizing: the pool and the kernel chunking
    // config move together so dispatch decisions never drift from the
    // workers actually available.
    par::ThreadPool::global().resize(
        static_cast<size_t>(config_.kernel_threads));
    tensor::kernels::config().num_threads = config_.kernel_threads;
  }
  const int nworkers = std::max(1, config_.workers);
  workers_.reserve(static_cast<size_t>(nworkers));
  for (int i = 0; i < nworkers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ForecastServer::~ForecastServer() { shutdown(); }

void ForecastServer::shutdown() {
  {
    std::lock_guard<std::mutex> lock(shutdown_mutex_);
    if (shut_down_) return;
    shut_down_ = true;
  }
  queue_.close();
  for (auto& w : workers_) w.join();
}

std::optional<std::future<ForecastResult>> ForecastServer::submit(
    ForecastRequest request) {
  COASTAL_CHECK_MSG(request.model_id >= 0 &&
                        request.model_id < static_cast<int>(models_.size()),
                    "bad model_id " << request.model_id);
  const auto& spec = models_[static_cast<size_t>(request.model_id)].spec;
  COASTAL_CHECK_MSG(
      request.window.size() == static_cast<size_t>(spec.T) + 1,
      "request needs T+1 = " << spec.T + 1 << " frames, got "
                             << request.window.size());
  for (const auto& f : request.window) {
    COASTAL_CHECK_MSG(f.nx == spec.src_nx && f.ny == spec.src_ny &&
                          f.nz == spec.src_nz,
                      "request frame dims (" << f.nx << "," << f.ny << ","
                                             << f.nz
                                             << ") do not match the spec");
  }

  PendingRequest pending;
  pending.request = std::move(request);
  pending.enqueued = clock::now();
  auto future = pending.promise.get_future();
  // Count the submission *before* the (potentially blocking) push: a fast
  // worker can pop and serve the request while this thread is still here,
  // and a stats() snapshot must never show served > submitted.
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++submitted_;
  }
  const bool accepted =
      queue_.push(pending, config_.overflow == ServerConfig::Overflow::kBlock);
  if (!accepted) {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    --submitted_;
    ++rejected_;
    return std::nullopt;
  }
  return future;
}

void ForecastServer::worker_loop() {
  for (;;) {
    std::vector<PendingRequest> batch = queue_.pop_batch(config_.batch);
    if (batch.empty()) return;  // closed and drained
    serve_batch(batch);
  }
}

void ForecastServer::serve_batch(std::vector<PendingRequest>& batch) {
  const auto t_assembled = clock::now();
  const int model_id = batch.front().request.model_id;
  auto& slot = models_[static_cast<size_t>(model_id)];
  const data::SampleSpec& spec = slot.spec;

  // Identical-episode coalescing: uniques[u] is the exemplar request of
  // batch entry u; owner[i] maps each request to its entry.
  std::vector<size_t> uniques;
  std::vector<size_t> owner(batch.size());
  uniques.reserve(batch.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    size_t u = uniques.size();
    if (config_.batch.coalesce_identical) {
      for (size_t j = 0; j < uniques.size(); ++j) {
        if (same_window(batch[uniques[j]].request.window,
                        batch[i].request.window)) {
          u = j;
          break;
        }
      }
    }
    if (u == uniques.size()) uniques.push_back(i);
    owner[i] = u;
  }
  const int64_t B = static_cast<int64_t>(uniques.size());
  std::vector<int> sharers(uniques.size(), 0);
  for (size_t o : owner) ++sharers[o];

  std::vector<std::vector<data::CenterFields>> decoded(uniques.size());
  try {
    // Everything tensor-shaped in this block — the per-request samples,
    // the stacked batch, the forward activations, the batched output —
    // bump-allocates from the arena and is released in bulk at scope
    // exit, so a warmed-up server allocates nothing here.  Only the
    // decoded CenterFields (plain vectors) escape.
    tensor::ArenaScope arena;
    tensor::NoGradGuard ng;

    // Pack the batch *before* taking the model mutex: sample construction
    // and stacking touch only request data and this worker's arena, so
    // another worker's forward overlaps them (the pipeline overlap
    // promised in server.hpp).
    tensor::Tensor vol, surf;
    {
      // Coalesce: stack the distinct episodes along the batch dimension.
      std::vector<tensor::Tensor> vols, surfs;
      vols.reserve(uniques.size());
      surfs.reserve(uniques.size());
      for (size_t u : uniques) {
        data::Sample sample = data::make_sample(spec, batch[u].request.window);
        tensor::Shape vs = sample.volume.shape();
        tensor::Shape ss = sample.surface.shape();
        tensor::Shape bvs{1}, bss{1};
        bvs.insert(bvs.end(), vs.begin(), vs.end());
        bss.insert(bss.end(), ss.begin(), ss.end());
        vols.push_back(sample.volume.reshape(bvs));
        surfs.push_back(sample.surface.reshape(bss));
      }
      vol = B == 1 ? std::move(vols[0]) : tensor::concat(vols, 0);
      surf = B == 1 ? std::move(surfs[0]) : tensor::concat(surfs, 0);
    }
    core::SurrogateOutput out;
    {
      // One batch in flight per model (see file comment in server.hpp).
      std::lock_guard<std::mutex> model_lock(
          *model_mutexes_[static_cast<size_t>(model_id)]);
      // Grouped BatchNorm statistics (and per-request attention routing):
      // each coalesced episode is normalized exactly as it would be
      // served alone, which is what makes the demuxed results
      // bitwise-serial (see nn::BatchStatScope).
      nn::BatchStatScope stat_groups(B);
      out = slot.model->forward(vol, surf);
    }
    for (size_t u = 0; u < uniques.size(); ++u) {
      decoded[u] = core::decode_prediction_entry(
          spec, out, static_cast<int64_t>(u), norm_);
    }
  } catch (...) {
    for (auto& p : batch) p.promise.set_exception(std::current_exception());
    return;
  }

  // Batch-composition stats land before any promise resolves, so a
  // client that observes its result also observes the batch that carried
  // it.
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++batches_;
    coalesced_ += batch.size() - uniques.size();
    const int bucket = std::min<int>(
        static_cast<int>(B), ServerStatsSnapshot::kBatchHistBuckets);
    ++batch_hist_[static_cast<size_t>(bucket - 1)];
  }

  // Per-entry epilogue: verification and fallback once per distinct
  // episode, then fan the outcome out to every sharer.  Outside the arena
  // and the model lock, so other workers' forwards overlap it.
  for (size_t u = 0; u < uniques.size(); ++u) {
    bool entry_fallback = false, entry_verified = false;
    core::VerificationResult entry_verdict;
    try {
      if (verifier_) {
        const data::CenterFields current = data::denormalized_copy(
            batch[uniques[u]].request.window.front(), norm_);
        if (config_.fallback) {
          // current.time is the request's own episode start (copied from
          // the IC frame), anchoring the restart's tidal phase.
          const core::EpisodeOutcome outcome = core::verify_or_fallback(
              decoded[u], current, *verifier_, *grid_,
              config_.fallback->tides, config_.fallback->params,
              current.time, config_.snapshot_dt);
          entry_verdict = outcome.verdict;
          entry_fallback = outcome.fallback;
        } else {
          std::vector<data::CenterFields> seq;
          seq.reserve(decoded[u].size() + 1);
          seq.push_back(current);
          for (auto& f : decoded[u]) seq.push_back(f);
          entry_verdict = verifier_->check_sequence(seq, config_.snapshot_dt);
        }
        entry_verified = true;
      }
    } catch (...) {
      for (size_t i = 0; i < batch.size(); ++i) {
        if (owner[i] == u) {
          batch[i].promise.set_exception(std::current_exception());
        }
      }
      continue;
    }
    int remaining = sharers[u];
    for (size_t i = 0; i < batch.size(); ++i) {
      if (owner[i] != u) continue;
      ForecastResult result;
      // The last sharer takes the frames by move; earlier ones copy.
      result.frames = (--remaining == 0) ? std::move(decoded[u]) : decoded[u];
      result.batch_size = static_cast<int>(B);
      result.sharers = sharers[u];
      result.verdict = entry_verdict;
      result.verified = entry_verified;
      result.fallback = entry_fallback;
      const auto t_done = clock::now();
      result.queue_seconds = seconds_between(batch[i].enqueued, t_assembled);
      result.service_seconds = seconds_between(t_assembled, t_done);
      record_latency(seconds_between(batch[i].enqueued, t_done));
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        ++served_;
        if (result.fallback) ++fallbacks_;
        if (first_serve_ == clock::time_point{}) first_serve_ = t_assembled;
        last_serve_ = t_done;
      }
      batch[i].promise.set_value(std::move(result));
    }
  }
}

void ForecastServer::record_latency(double seconds) {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  ++latency_hist_[static_cast<size_t>(
      latency_bucket(seconds, kLatencyBuckets))];
}

ServerStatsSnapshot ForecastServer::stats() const {
  ServerStatsSnapshot s;
  std::lock_guard<std::mutex> lock(stats_mutex_);
  s.submitted = submitted_;
  s.served = served_;
  s.rejected = rejected_;
  s.fallbacks = fallbacks_;
  s.batches = batches_;
  s.coalesced = coalesced_;
  s.batch_hist = batch_hist_;
  s.queue_depth = queue_.depth();
  uint64_t total = 0;
  for (uint64_t c : latency_hist_) total += c;
  s.p50_ms = percentile_ms(latency_hist_, total, 0.50);
  s.p95_ms = percentile_ms(latency_hist_, total, 0.95);
  s.p99_ms = percentile_ms(latency_hist_, total, 0.99);
  if (batches_ > 0) {
    s.mean_batch = static_cast<double>(served_) / static_cast<double>(batches_);
  }
  if (served_ > 0 && last_serve_ > first_serve_) {
    s.throughput_rps = static_cast<double>(served_) /
                       seconds_between(first_serve_, last_serve_);
  }
  return s;
}

}  // namespace coastal::serve
