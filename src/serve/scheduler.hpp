#pragma once

/// \file scheduler.hpp
/// Request queue + micro-batching scheduler for the forecast server.
///
/// The serving hot path wins throughput the way batched inference engines
/// do (Marian-style): concurrent episode requests that target the same
/// (model, SampleSpec) are coalesced into ONE surrogate call along the
/// tensor batch dimension B.  The kernels are already batch-parallel, so
/// B > 1 amortizes per-op dispatch, operand packing, and workspace reuse
/// that dominate a B = 1 forward at small mesh scale — while grouped
/// BatchNorm statistics (nn::BatchStatScope) keep every coalesced
/// request's result bitwise identical to a standalone forward.
///
/// The batching policy is the classic max-batch / max-wait pair: a worker
/// popping the queue takes the front request, then keeps collecting
/// compatible requests (same model_id and window length; FIFO order
/// preserved within the key) until it holds `max_batch` of them or
/// `max_wait_us` has elapsed
/// since the pop began.  Requests for other models are left queued for
/// the next worker, so one slow model cannot starve another's traffic.
///
/// Backpressure is the queue's bounded capacity: push() either blocks
/// until a slot frees or rejects immediately (ServerConfig::Overflow).

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <vector>

#include "core/verification.hpp"
#include "data/center_fields.hpp"
#include "obs/trace.hpp"

namespace coastal::serve {

/// One forecast chain to serve: e*T+1 normalized frames for e >= 1
/// episodes — the initial condition at t = 0 and the lateral boundary
/// conditions for every later step (the regional-model contract; e = 1 is
/// the single-episode case, e > 1 chains autoregressively exactly like
/// core::rollout).  `model_id` selects the server's model slot; requests
/// are only ever batched with others of the same slot *and* chain length.
struct ForecastRequest {
  int model_id = 0;
  std::vector<data::CenterFields> window;
  /// Per-request deadline, measured from submit().  0 = no deadline.
  /// Expired requests fail with ForecastError::kDeadlineExceeded; the
  /// deadline is checked at queue pop, between retry attempts, and at
  /// fan-out (a computed result past its deadline is still an error —
  /// the client stopped waiting).
  int64_t timeout_us = 0;
  /// Per-request trace context; stamped by ForecastServer::submit() when
  /// tracing is enabled and the request is sampled (id 0 = untraced).
  obs::TraceContext trace;
};

/// What the client's future resolves to.
struct ForecastResult {
  std::vector<data::CenterFields> frames;  ///< T denormalized predictions
  core::VerificationResult verdict;        ///< meaningful when `verified`
  bool verified = false;   ///< physics check ran (server had a grid)
  bool fallback = false;   ///< frames recomputed by the numerical model
  /// Served while the slot's circuit breaker was open: the surrogate was
  /// bypassed entirely and `frames` are the numerical reference
  /// (implies `fallback`).
  bool degraded = false;
  int batch_size = 1;  ///< distinct episodes in the coalesced forward
  int sharers = 1;     ///< requests served by this request's batch entry
  /// Served from the content-addressed forecast cache (docs/caching.md):
  /// no surrogate forward ran for this request at all (batch_size 0).
  bool cache_hit = false;
  /// Frames reused from a cached prefix of this window; only the
  /// remaining frames.size() - resumed_frames were freshly computed.
  int resumed_frames = 0;
  double queue_seconds = 0.0;    ///< submit -> batch assembly
  double service_seconds = 0.0;  ///< batch assembly -> completion
};

/// A queued request awaiting service.
struct PendingRequest {
  ForecastRequest request;
  std::promise<ForecastResult> promise;
  std::chrono::steady_clock::time_point enqueued{};
  /// Absolute deadline derived from ForecastRequest::timeout_us at
  /// submit(); time_point{} (epoch) means no deadline.
  std::chrono::steady_clock::time_point deadline{};
};

/// Micro-batch coalescing knobs.
struct BatchPolicy {
  int max_batch = 8;         ///< hard cap on coalesced episodes per forward
  int64_t max_wait_us = 2000;  ///< collection window after the first pop

  /// Collapse *identical* in-flight episodes (same model, bitwise-equal
  /// window) into one batch entry whose result fans out to every
  /// requester — the request-collapsing idiom of serving systems.  Public
  /// forecast traffic is dominated by clients asking for the *current*
  /// forecast of the same region, so at k-fold duplication this
  /// multiplies throughput by k on any host (it removes whole forwards,
  /// where plain micro-batching only amortizes their fan-out).  Results
  /// are bitwise identical to serving each duplicate separately, by
  /// construction.
  bool coalesce_identical = true;
};

/// Thread-safe bounded MPMC queue with keyed micro-batch pops.
class RequestQueue {
 public:
  explicit RequestQueue(size_t capacity);

  /// Enqueue.  With `block`, waits for a free slot (backpressure stalls
  /// the producer); without, returns false immediately when full.  Always
  /// returns false once closed — the caller still owns `p` (and its
  /// promise) on rejection.
  bool push(PendingRequest& p, bool block);

  /// Pop one micro-batch per the policy (see file comment).  Blocks until
  /// at least one request is available; returns an empty vector only when
  /// the queue is closed *and* drained — the worker-loop exit signal.
  std::vector<PendingRequest> pop_batch(const BatchPolicy& policy);

  /// Stop accepting pushes and wake every waiter.  Queued requests remain
  /// poppable so shutdown can drain.
  void close();

  bool closed() const;
  size_t depth() const;

 private:
  /// Move every queued request with `model_id` AND `window_frames` window
  /// length into `out` (FIFO order), up to `max` total in `out`.  Caller
  /// holds the mutex.
  void extract_locked(int model_id, size_t window_frames, size_t max,
                      std::vector<PendingRequest>& out);

  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<PendingRequest> items_;
  size_t capacity_;
  bool closed_ = false;
};

}  // namespace coastal::serve
