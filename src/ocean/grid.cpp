#include "ocean/grid.hpp"

namespace coastal::ocean {

Grid::Grid(int nx, int ny, int nz, double dx_m, double dy_m)
    : nx_(nx), ny_(ny), nz_(nz) {
  COASTAL_CHECK_MSG(nx >= 4 && ny >= 4, "grid too small: " << nx << "x" << ny);
  COASTAL_CHECK_MSG(nz >= 1, "need at least one vertical layer");
  dx_.assign(static_cast<size_t>(nx), dx_m);
  dy_.assign(static_cast<size_t>(ny), dy_m);
  h_.assign(cells(), 10.0f);
  mask_.assign(cells(), 1);

  // Evenly spaced sigma layers: midpoints of nz slabs of [-1, 0].
  sigma_.resize(static_cast<size_t>(nz));
  dsigma_.assign(static_cast<size_t>(nz), 1.0 / nz);
  for (int k = 0; k < nz; ++k)
    sigma_[static_cast<size_t>(k)] = -1.0 + (k + 0.5) / nz;
}

void Grid::set_spacing(std::vector<double> dx, std::vector<double> dy) {
  COASTAL_CHECK(dx.size() == static_cast<size_t>(nx_));
  COASTAL_CHECK(dy.size() == static_cast<size_t>(ny_));
  for (double d : dx) COASTAL_CHECK_MSG(d > 0, "dx must be positive");
  for (double d : dy) COASTAL_CHECK_MSG(d > 0, "dy must be positive");
  dx_ = std::move(dx);
  dy_ = std::move(dy);
}

size_t Grid::wet_count() const {
  size_t n = 0;
  for (uint8_t m : mask_)
    if (m) ++n;
  return n;
}

}  // namespace coastal::ocean
