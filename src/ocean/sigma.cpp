#include "ocean/sigma.hpp"

#include <cmath>

namespace coastal::ocean {

std::vector<double> log_profile_weights(const Grid& grid, double depth,
                                        double z0) {
  const int nz = grid.nz();
  std::vector<double> w(static_cast<size_t>(nz));
  double norm = 0.0;
  for (int k = 0; k < nz; ++k) {
    // Height above bottom of the layer midpoint.
    const double zab = (grid.sigma()[static_cast<size_t>(k)] + 1.0) * depth;
    w[static_cast<size_t>(k)] = std::log(1.0 + zab / z0);
    norm += w[static_cast<size_t>(k)] * grid.sigma_thickness()[static_cast<size_t>(k)];
  }
  for (auto& x : w) x /= norm;
  return w;
}

Snapshot reconstruct_3d(const Grid& grid, double time,
                        const std::vector<float>& zeta,
                        const std::vector<float>& ubar,
                        const std::vector<float>& vbar) {
  const int nx = grid.nx();
  const int ny = grid.ny();
  const int nz = grid.nz();
  COASTAL_CHECK(zeta.size() == grid.cells());
  COASTAL_CHECK(ubar.size() == static_cast<size_t>(nx + 1) * ny);
  COASTAL_CHECK(vbar.size() == static_cast<size_t>(nx) * (ny + 1));

  Snapshot snap;
  snap.time = time;
  snap.zeta = zeta;
  snap.u3d.assign(static_cast<size_t>(nz),
                  std::vector<float>(ubar.size(), 0.0f));
  snap.v3d.assign(static_cast<size_t>(nz),
                  std::vector<float>(vbar.size(), 0.0f));
  snap.w3d.assign(static_cast<size_t>(nz),
                  std::vector<float>(grid.cells(), 0.0f));

  // --- horizontal velocities: log profile scaled by the barotropic value
  for (int iy = 0; iy < ny; ++iy) {
    for (int ix = 0; ix <= nx; ++ix) {
      const float ub = ubar[grid.u_index(ix, iy)];
      if (ub == 0.0f) continue;
      // Face depth = average of adjacent wet columns.
      const int il = std::max(0, ix - 1);
      const int ir = std::min(nx - 1, ix);
      const double D =
          0.5 * (grid.h(il, iy) + zeta[grid.rho_index(il, iy)] +
                 grid.h(ir, iy) + zeta[grid.rho_index(ir, iy)]);
      const auto w = log_profile_weights(grid, std::max(D, 0.5));
      for (int k = 0; k < nz; ++k)
        snap.u3d[static_cast<size_t>(k)][grid.u_index(ix, iy)] =
            static_cast<float>(ub * w[static_cast<size_t>(k)]);
    }
  }
  for (int iy = 0; iy <= ny; ++iy) {
    for (int ix = 0; ix < nx; ++ix) {
      const float vb = vbar[grid.v_index(ix, iy)];
      if (vb == 0.0f) continue;
      const int js = std::max(0, iy - 1);
      const int jn = std::min(ny - 1, iy);
      const double D =
          0.5 * (grid.h(ix, js) + zeta[grid.rho_index(ix, js)] +
                 grid.h(ix, jn) + zeta[grid.rho_index(ix, jn)]);
      const auto w = log_profile_weights(grid, std::max(D, 0.5));
      for (int k = 0; k < nz; ++k)
        snap.v3d[static_cast<size_t>(k)][grid.v_index(ix, iy)] =
            static_cast<float>(vb * w[static_cast<size_t>(k)]);
    }
  }

  // --- w from continuity: integrate the layer divergence upward from the
  // seabed (w = 0 at sigma = -1).  w at the midpoint of layer k is the
  // interface value below plus half this layer's contribution.
  for (int iy = 0; iy < ny; ++iy) {
    for (int ix = 0; ix < nx; ++ix) {
      if (!grid.wet(ix, iy)) continue;
      const double D = grid.h(ix, iy) + zeta[grid.rho_index(ix, iy)];
      double w_below = 0.0;  // at the bottom interface of the current layer
      for (int k = 0; k < nz; ++k) {
        const double dz =
            grid.sigma_thickness()[static_cast<size_t>(k)] * D;
        const double dudx =
            (snap.u3d[static_cast<size_t>(k)][grid.u_index(ix + 1, iy)] -
             snap.u3d[static_cast<size_t>(k)][grid.u_index(ix, iy)]) /
            grid.dx(ix);
        const double dvdy =
            (snap.v3d[static_cast<size_t>(k)][grid.v_index(ix, iy + 1)] -
             snap.v3d[static_cast<size_t>(k)][grid.v_index(ix, iy)]) /
            grid.dy(iy);
        const double dw = -(dudx + dvdy) * dz;
        snap.w3d[static_cast<size_t>(k)][grid.rho_index(ix, iy)] =
            static_cast<float>(w_below + 0.5 * dw);
        w_below += dw;
      }
    }
  }

  return snap;
}

}  // namespace coastal::ocean
