#pragma once

/// \file tides.hpp
/// Astronomic tidal forcing as a sum of harmonic constituents, imposed at
/// the open (western) boundary.  The constituents carry realistic periods;
/// Gulf-coast estuaries like Charlotte Harbor are mixed (diurnal+semi-
/// diurnal), which the default set reflects.

#include <cmath>
#include <string>
#include <vector>

namespace coastal::ocean {

struct Constituent {
  std::string name;
  double amplitude_m;
  double period_hours;
  double phase_rad;
};

class TidalForcing {
 public:
  explicit TidalForcing(std::vector<Constituent> constituents)
      : constituents_(std::move(constituents)) {}

  /// Boundary surface elevation at time t (seconds since start).
  double elevation(double t_seconds) const {
    double z = 0.0;
    for (const auto& c : constituents_) {
      const double omega = 2.0 * M_PI / (c.period_hours * 3600.0);
      z += c.amplitude_m * std::cos(omega * t_seconds + c.phase_rad);
    }
    return z;
  }

  const std::vector<Constituent>& constituents() const { return constituents_; }

  /// Mixed semidiurnal/diurnal set typical of the Florida Gulf coast.
  static TidalForcing gulf_coast_default() {
    return TidalForcing({
        {"M2", 0.24, 12.4206, 0.00},
        {"S2", 0.08, 12.0000, 0.85},
        {"N2", 0.05, 12.6583, 1.90},
        {"K1", 0.16, 23.9345, 0.40},
        {"O1", 0.15, 25.8193, 2.30},
    });
  }

 private:
  std::vector<Constituent> constituents_;
};

}  // namespace coastal::ocean
