#include "ocean/bathymetry.hpp"

#include <algorithm>
#include <cmath>

namespace coastal::ocean {

namespace {

/// Smoothstep between 0 and 1 on [a, b].
double smoothstep(double x, double a, double b) {
  const double t = std::clamp((x - a) / (b - a), 0.0, 1.0);
  return t * t * (3.0 - 2.0 * t);
}

}  // namespace

void generate_estuary(Grid& grid, const EstuaryParams& p, uint64_t seed) {
  util::Rng rng(seed);
  const int nx = grid.nx();
  const int ny = grid.ny();

  // Zone boundaries as fractions of the x extent.
  const int shelf_end = std::max(2, nx / 4);          // open ocean
  const int barrier_x = shelf_end;                    // island column band
  const int barrier_w = std::max(1, nx / 24);
  const int harbor_end = nx - std::max(2, nx / 5);    // basin ends, land after

  // --- spacing: refined band around the barrier/inlet columns ------------
  std::vector<double> dx(static_cast<size_t>(nx)), dy(static_cast<size_t>(ny),
                                                      p.base_dx);
  for (int i = 0; i < nx; ++i) {
    const double dist =
        std::abs(i - (barrier_x + barrier_w / 2)) / static_cast<double>(nx);
    const double refine = 1.0 + (p.refine_factor - 1.0) *
                                    (1.0 - smoothstep(dist, 0.05, 0.25));
    dx[static_cast<size_t>(i)] = p.base_dx / refine;
  }

  // --- inlets: evenly spaced gaps in the barrier --------------------------
  const int inlet_w = std::max(1, static_cast<int>(p.inlet_fraction * ny));
  std::vector<std::pair<int, int>> inlets;  // [lo, hi) rows
  for (int k = 0; k < p.num_inlets; ++k) {
    const int center = (k + 1) * ny / (p.num_inlets + 1);
    inlets.emplace_back(center - inlet_w / 2, center - inlet_w / 2 + inlet_w);
  }
  auto in_inlet = [&](int iy) {
    for (auto [lo, hi] : inlets)
      if (iy >= lo && iy < hi) return true;
    return false;
  };

  // --- rivers: horizontal channels cut into the eastern land -------------
  const int river_w = std::max(1, ny / 24);
  std::vector<std::pair<int, int>> rivers;
  for (int k = 0; k < p.num_rivers; ++k) {
    const int center = (2 * k + 1) * ny / (2 * p.num_rivers);
    rivers.emplace_back(center - river_w / 2, center - river_w / 2 + river_w);
  }
  auto in_river = [&](int iy) {
    for (auto [lo, hi] : rivers)
      if (iy >= lo && iy < hi) return true;
    return false;
  };

  // --- depth & mask --------------------------------------------------------
  for (int iy = 0; iy < ny; ++iy) {
    for (int ix = 0; ix < nx; ++ix) {
      const double fx = static_cast<double>(ix) / nx;
      double depth;
      bool wet = true;

      if (ix < barrier_x) {
        // Shelf: deep at the boundary, shoaling toward the barrier.
        const double t = static_cast<double>(ix) / std::max(1, barrier_x);
        depth = p.shelf_depth * (1.0 - 0.55 * t);
      } else if (ix < barrier_x + barrier_w) {
        // Barrier islands: land except at inlets (which stay deep —
        // strong tidal currents scour inlets).
        if (in_inlet(iy)) {
          depth = p.channel_depth;
        } else {
          wet = false;
          depth = 0.0;
        }
      } else if (ix < harbor_end) {
        // Harbor basin: shallow, gently deepening toward the inlets.
        const double t = smoothstep(fx, static_cast<double>(barrier_x) / nx,
                                    static_cast<double>(harbor_end) / nx);
        depth = p.harbor_depth + (p.channel_depth - p.harbor_depth) *
                                     (1.0 - t) * 0.5;
        // Margins of the basin are land (harbor narrows at north/south).
        const double edge = std::min(iy, ny - 1 - iy) / static_cast<double>(ny);
        if (edge < 0.06) {
          wet = false;
          depth = 0.0;
        }
      } else {
        // Eastern land with river channels.
        if (in_river(iy)) {
          // Channel shoals landward and ends before the eastern edge.
          const double t = smoothstep(fx, static_cast<double>(harbor_end) / nx,
                                      0.985);
          if (t < 0.999) {
            depth = p.channel_depth * (1.0 - 0.6 * t);
          } else {
            wet = false;
            depth = 0.0;
          }
        } else {
          wet = false;
          depth = 0.0;
        }
      }

      if (wet) {
        depth = std::max(1.0, depth * (1.0 + p.noise * rng.normal() * 0.3));
      }
      grid.set_wet(ix, iy, wet);
      grid.set_h(ix, iy, static_cast<float>(depth));
    }
  }

  // Keep the entire western edge wet (the open boundary must be ocean).
  for (int iy = 0; iy < ny; ++iy) {
    grid.set_wet(0, iy, true);
    grid.set_h(0, iy, static_cast<float>(p.shelf_depth));
  }

  grid.set_spacing(std::move(dx), std::move(dy));
}

}  // namespace coastal::ocean
