#include "ocean/solver.hpp"

#include <algorithm>
#include <cmath>

namespace coastal::ocean {

SlabSolver::SlabSolver(const Grid& grid, const TidalForcing& tides,
                       PhysicsParams params, int y0, int y1)
    : grid_(grid), tides_(tides), p_(params), y0_(y0), y1_(y1) {
  COASTAL_CHECK_MSG(0 <= y0 && y0 < y1 && y1 <= grid.ny(),
                    "bad slab [" << y0 << "," << y1 << ")");
  const size_t nx = static_cast<size_t>(grid.nx());
  const size_t rows = static_cast<size_t>(nyl());
  zeta_.assign((rows + 2) * nx, 0.0f);
  u_.assign((rows + 2) * (nx + 1), 0.0f);
  v_.assign((rows + 1) * nx, 0.0f);
}

std::span<float> SlabSolver::zeta_row(int jy) {
  COASTAL_DCHECK(jy >= -1 && jy <= nyl());
  const size_t nx = static_cast<size_t>(grid_.nx());
  return {zeta_.data() + static_cast<size_t>(jy + 1) * nx, nx};
}
std::span<const float> SlabSolver::zeta_row(int jy) const {
  const size_t nx = static_cast<size_t>(grid_.nx());
  return {zeta_.data() + static_cast<size_t>(jy + 1) * nx, nx};
}
std::span<float> SlabSolver::u_row(int jy) {
  COASTAL_DCHECK(jy >= -1 && jy <= nyl());
  const size_t w = static_cast<size_t>(grid_.nx()) + 1;
  return {u_.data() + static_cast<size_t>(jy + 1) * w, w};
}
std::span<const float> SlabSolver::u_row(int jy) const {
  const size_t w = static_cast<size_t>(grid_.nx()) + 1;
  return {u_.data() + static_cast<size_t>(jy + 1) * w, w};
}
std::span<float> SlabSolver::v_row(int jf) {
  COASTAL_DCHECK(jf >= 0 && jf <= nyl());
  const size_t nx = static_cast<size_t>(grid_.nx());
  return {v_.data() + static_cast<size_t>(jf) * nx, nx};
}
std::span<const float> SlabSolver::v_row(int jf) const {
  const size_t nx = static_cast<size_t>(grid_.nx());
  return {v_.data() + static_cast<size_t>(jf) * nx, nx};
}

void SlabSolver::update_zeta() {
  const int nx = grid_.nx();
  // The update must read the *old* free surface everywhere (including the
  // ghost rows) or the result would depend on row traversal order and on
  // the domain decomposition.
  zeta_old_ = zeta_;
  auto old_row = [&](int jy) -> std::span<const float> {
    return {zeta_old_.data() + static_cast<size_t>(jy + 1) * nx,
            static_cast<size_t>(nx)};
  };
  for (int jy = 0; jy < nyl(); ++jy) {
    const int gy = y0_ + jy;
    auto z = zeta_row(jy);
    auto zo = old_row(jy);
    auto uu = u_row(jy);
    auto vlo = v_row(jy);
    auto vhi = v_row(jy + 1);
    for (int ix = 0; ix < nx; ++ix) {
      if (!grid_.wet(ix, gy)) continue;
      const double D_c = grid_.h(ix, gy) + zo[static_cast<size_t>(ix)];

      // x fluxes at the two faces of this cell.
      auto face_depth_x = [&](int face) -> double {
        // One-sided at domain edges; average otherwise.
        if (face == 0) return D_c;
        if (face == nx) return D_c;
        const int il = face - 1, ir = face;
        double dl = grid_.wet(il, gy)
                        ? grid_.h(il, gy) + zo[static_cast<size_t>(il)]
                        : D_c;
        double dr = grid_.wet(ir, gy)
                        ? grid_.h(ir, gy) + zo[static_cast<size_t>(ir)]
                        : D_c;
        return 0.5 * (dl + dr);
      };
      const double fx_w =
          face_depth_x(ix) * uu[static_cast<size_t>(ix)];
      const double fx_e =
          face_depth_x(ix + 1) * uu[static_cast<size_t>(ix + 1)];

      // y fluxes; face depth averages this cell with the neighbour row.
      auto face_depth_y = [&](int gface, std::span<const float> zn,
                              int iy_n) -> double {
        if (gface == 0 || gface == grid_.ny()) return D_c;
        if (!grid_.wet(ix, iy_n)) return D_c;
        return 0.5 * (D_c + grid_.h(ix, iy_n) + zn[static_cast<size_t>(ix)]);
      };
      const double fy_s = face_depth_y(gy, old_row(jy - 1), gy - 1) *
                          vlo[static_cast<size_t>(ix)];
      const double fy_n = face_depth_y(gy + 1, old_row(jy + 1), gy + 1) *
                          vhi[static_cast<size_t>(ix)];

      const double div = (fx_e - fx_w) / grid_.dx(ix) +
                         (fy_n - fy_s) / grid_.dy(gy);
      double znew = zo[static_cast<size_t>(ix)] - p_.dt * div;

      // Wetting floor: never let the column dry out entirely.
      const double floor_z = p_.min_depth - grid_.h(ix, gy);
      if (znew < floor_z) znew = floor_z;
      z[static_cast<size_t>(ix)] = static_cast<float>(znew);
    }
  }
}

void SlabSolver::update_u() {
  const int nx = grid_.nx();
  const double t_new = t_ + p_.dt;
  for (int jy = 0; jy < nyl(); ++jy) {
    const int gy = y0_ + jy;
    auto z = zeta_row(jy);
    auto uu = u_row(jy);
    auto vlo = v_row(jy);
    auto vhi = v_row(jy + 1);

    // West open boundary: Flather radiation against the tide.
    if (grid_.wet(0, gy)) {
      const double D = grid_.h(0, gy) + z[0];
      const double zext = tides_.elevation(t_new);
      uu[0] = static_cast<float>(std::sqrt(p_.g / D) * (zext - z[0]));
    } else {
      uu[0] = 0.0f;
    }

    for (int ix = 1; ix < nx; ++ix) {
      if (!grid_.u_face_interior_open(ix, gy)) {
        uu[static_cast<size_t>(ix)] = 0.0f;
        continue;
      }
      const double Dl = grid_.h(ix - 1, gy) + z[static_cast<size_t>(ix - 1)];
      const double Dr = grid_.h(ix, gy) + z[static_cast<size_t>(ix)];
      const double Du = 0.5 * (Dl + Dr);
      const double v_at_u = 0.25 * (vlo[static_cast<size_t>(ix - 1)] +
                                    vlo[static_cast<size_t>(ix)] +
                                    vhi[static_cast<size_t>(ix - 1)] +
                                    vhi[static_cast<size_t>(ix)]);
      const double uc = uu[static_cast<size_t>(ix)];
      const double speed = std::sqrt(uc * uc + v_at_u * v_at_u);
      const double dx_face = 0.5 * (grid_.dx(ix - 1) + grid_.dx(ix));
      const double dzdx =
          (z[static_cast<size_t>(ix)] - z[static_cast<size_t>(ix - 1)]) /
          dx_face;
      const double rhs = uc + p_.dt * (p_.f * v_at_u - p_.g * dzdx);
      const double denom = 1.0 + p_.dt * p_.cd * speed / Du;
      uu[static_cast<size_t>(ix)] = static_cast<float>(rhs / denom);
    }
    uu[static_cast<size_t>(nx)] = 0.0f;  // east edge closed
  }
}

void SlabSolver::update_v() {
  const int nx = grid_.nx();
  for (int jf = 0; jf <= nyl(); ++jf) {
    const int gj = y0_ + jf;  // global face index
    auto vv = v_row(jf);
    if (gj == 0 || gj == grid_.ny()) {
      std::fill(vv.begin(), vv.end(), 0.0f);  // closed north/south edges
      continue;
    }
    auto zs = zeta_row(jf - 1);  // cell row gj-1 (ghost when jf == 0)
    auto zn = zeta_row(jf);      // cell row gj   (ghost when jf == nyl)
    auto us = u_row(jf - 1);
    auto un = u_row(jf);
    for (int ix = 0; ix < nx; ++ix) {
      if (!grid_.v_face_interior_open(ix, gj)) {
        vv[static_cast<size_t>(ix)] = 0.0f;
        continue;
      }
      const double Ds = grid_.h(ix, gj - 1) + zs[static_cast<size_t>(ix)];
      const double Dn = grid_.h(ix, gj) + zn[static_cast<size_t>(ix)];
      const double Dv = 0.5 * (Ds + Dn);
      const double u_at_v = 0.25 * (us[static_cast<size_t>(ix)] +
                                    us[static_cast<size_t>(ix + 1)] +
                                    un[static_cast<size_t>(ix)] +
                                    un[static_cast<size_t>(ix + 1)]);
      const double vc = vv[static_cast<size_t>(ix)];
      const double speed = std::sqrt(vc * vc + u_at_v * u_at_v);
      const double dy_face = 0.5 * (grid_.dy(gj - 1) + grid_.dy(gj));
      const double dzdy =
          (zn[static_cast<size_t>(ix)] - zs[static_cast<size_t>(ix)]) /
          dy_face;
      const double rhs = vc + p_.dt * (-p_.f * u_at_v - p_.g * dzdy);
      const double denom = 1.0 + p_.dt * p_.cd * speed / Dv;
      vv[static_cast<size_t>(ix)] = static_cast<float>(rhs / denom);
    }
  }
}

void SlabSolver::step(const ExchangeHooks& hooks) {
  update_zeta();
  if (hooks.exchange_zeta) hooks.exchange_zeta(*this);
  update_u();
  if (hooks.exchange_u) hooks.exchange_u(*this);
  update_v();
  t_ += p_.dt;
}

double SlabSolver::owned_volume() const {
  double vol = 0.0;
  for (int jy = 0; jy < nyl(); ++jy) {
    const int gy = y0_ + jy;
    auto z = zeta_row(jy);
    for (int ix = 0; ix < grid_.nx(); ++ix) {
      if (!grid_.wet(ix, gy)) continue;
      vol += (grid_.h(ix, gy) + z[static_cast<size_t>(ix)]) *
             grid_.area(ix, gy);
    }
  }
  return vol;
}

TidalModel::TidalModel(const Grid& grid, const TidalForcing& tides,
                       PhysicsParams params)
    : grid_(grid), slab_(grid, tides, params, 0, grid.ny()) {}

void TidalModel::run_seconds(double seconds) {
  const double target = slab_.time() + seconds;
  while (slab_.time() < target - 1e-9) slab_.step();
}

std::vector<float> TidalModel::zeta() const {
  std::vector<float> out;
  out.reserve(grid_.cells());
  for (int jy = 0; jy < grid_.ny(); ++jy) {
    auto row = slab_.zeta_row(jy);
    out.insert(out.end(), row.begin(), row.end());
  }
  return out;
}

std::vector<float> TidalModel::ubar() const {
  std::vector<float> out;
  out.reserve(static_cast<size_t>(grid_.nx() + 1) * grid_.ny());
  for (int jy = 0; jy < grid_.ny(); ++jy) {
    auto row = slab_.u_row(jy);
    out.insert(out.end(), row.begin(), row.end());
  }
  return out;
}

std::vector<float> TidalModel::vbar() const {
  std::vector<float> out;
  out.reserve(grid_.cells() + static_cast<size_t>(grid_.nx()));
  for (int jf = 0; jf <= grid_.ny(); ++jf) {
    auto row = slab_.v_row(jf);
    out.insert(out.end(), row.begin(), row.end());
  }
  return out;
}

}  // namespace coastal::ocean
