#pragma once

/// \file grid.hpp
/// Horizontal Arakawa-C grid with land/sea mask, non-uniform spacing, and
/// terrain-following sigma layers — the discretization ROMS uses.
///
/// Staggering convention (C-grid):
///   - zeta, h (bathymetric depth, positive down) live at cell centers
///     ("rho points"), nx * ny of them;
///   - u lives at x-faces, (nx+1) * ny (face i is west of cell i);
///   - v lives at y-faces, nx * (ny+1) (face j is south of cell row j).
/// Row-major storage with y as the slow index.

#include <cstdint>
#include <vector>

#include "util/check.hpp"

namespace coastal::ocean {

class Grid {
 public:
  /// Uniformly spaced grid; use set_spacing for non-uniform refinement.
  Grid(int nx, int ny, int nz, double dx_m, double dy_m);

  int nx() const { return nx_; }
  int ny() const { return ny_; }
  int nz() const { return nz_; }

  size_t cells() const { return static_cast<size_t>(nx_) * ny_; }

  size_t rho_index(int ix, int iy) const {
    COASTAL_DCHECK(ix >= 0 && ix < nx_ && iy >= 0 && iy < ny_);
    return static_cast<size_t>(iy) * nx_ + ix;
  }
  size_t u_index(int ix, int iy) const {  // ix in [0, nx], iy in [0, ny)
    COASTAL_DCHECK(ix >= 0 && ix <= nx_ && iy >= 0 && iy < ny_);
    return static_cast<size_t>(iy) * (nx_ + 1) + ix;
  }
  size_t v_index(int ix, int iy) const {  // ix in [0, nx), iy in [0, ny]
    COASTAL_DCHECK(ix >= 0 && ix < nx_ && iy >= 0 && iy <= ny_);
    return static_cast<size_t>(iy) * nx_ + ix;
  }

  /// Per-column / per-row spacing in meters (non-uniform refinement near
  /// inlets, as the paper's Charlotte Harbor mesh has near river channels).
  double dx(int ix) const { return dx_[static_cast<size_t>(ix)]; }
  double dy(int iy) const { return dy_[static_cast<size_t>(iy)]; }
  void set_spacing(std::vector<double> dx, std::vector<double> dy);

  /// Cell area in m^2.
  double area(int ix, int iy) const { return dx(ix) * dy(iy); }

  /// Bathymetric depth at rho points, meters, positive down.
  float h(int ix, int iy) const { return h_[rho_index(ix, iy)]; }
  void set_h(int ix, int iy, float depth) { h_[rho_index(ix, iy)] = depth; }
  const std::vector<float>& h_field() const { return h_; }

  /// Water mask at rho points (1 = water, 0 = land).
  bool wet(int ix, int iy) const { return mask_[rho_index(ix, iy)] != 0; }
  void set_wet(int ix, int iy, bool wet) {
    mask_[rho_index(ix, iy)] = wet ? 1 : 0;
  }
  const std::vector<uint8_t>& mask() const { return mask_; }
  size_t wet_count() const;

  /// A u face is open only if both adjacent cells are water (and the face
  /// is not on the domain edge next to land).  Domain-edge faces are open
  /// only where flagged as an open boundary by the solver.
  bool u_face_interior_open(int ix, int iy) const {
    if (ix <= 0 || ix >= nx_) return false;
    return wet(ix - 1, iy) && wet(ix, iy);
  }
  bool v_face_interior_open(int ix, int iy) const {
    if (iy <= 0 || iy >= ny_) return false;
    return wet(ix, iy - 1) && wet(ix, iy);
  }

  /// Sigma layer midpoints, ascending in (-1, 0); layer 0 is the bottom.
  const std::vector<double>& sigma() const { return sigma_; }
  /// Layer thickness fractions (sum to 1).
  const std::vector<double>& sigma_thickness() const { return dsigma_; }

 private:
  int nx_, ny_, nz_;
  std::vector<double> dx_, dy_;
  std::vector<float> h_;
  std::vector<uint8_t> mask_;
  std::vector<double> sigma_, dsigma_;
};

}  // namespace coastal::ocean
