#pragma once

/// \file sigma.hpp
/// Vertical structure: expand the barotropic (depth-averaged) solution to
/// the 3-D fields the paper's surrogate consumes (u, v, w on sigma layers).
///
/// ROMS's full baroclinic mode is substituted (see DESIGN.md) by a
/// bottom-boundary-layer reconstruction: horizontal velocity follows a
/// logarithmic profile in the vertical whose depth average equals the
/// barotropic velocity, and the vertical velocity w is *diagnosed from
/// continuity* — integrated upward from w = 0 at the seabed — exactly how
/// ROMS computes omega/w from the horizontal divergence.  This keeps w
/// physically consistent with (u, v, zeta), which matters because the
/// water-mass verification module checks that consistency.

#include <vector>

#include "ocean/grid.hpp"

namespace coastal::ocean {

/// One simulated snapshot on the staggered grid: the four tidal variables
/// of the paper (u, v, w, zeta).
struct Snapshot {
  double time = 0.0;
  /// Horizontal velocities on sigma layers, staggered like the 2-D fields:
  /// u3d[k] has (nx+1)*ny entries, v3d[k] has nx*(ny+1).
  std::vector<std::vector<float>> u3d;
  std::vector<std::vector<float>> v3d;
  /// Vertical velocity at layer midpoints, cell-centered: nx*ny per layer.
  std::vector<std::vector<float>> w3d;
  /// Free surface, cell-centered, nx*ny.
  std::vector<float> zeta;
};

/// Normalized log-layer weights per sigma layer for a column of depth D:
/// weights w_k with sum_k w_k * dsigma_k == 1, increasing toward the
/// surface (z0 is the bottom roughness length).
std::vector<double> log_profile_weights(const Grid& grid, double depth,
                                        double z0 = 0.02);

/// Build the 3-D snapshot from a barotropic state.
Snapshot reconstruct_3d(const Grid& grid, double time,
                        const std::vector<float>& zeta,
                        const std::vector<float>& ubar,
                        const std::vector<float>& vbar);

}  // namespace coastal::ocean
