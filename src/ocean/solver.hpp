#pragma once

/// \file solver.hpp
/// Barotropic shallow-water solver on the Arakawa-C grid — the fast
/// (depth-averaged) mode of ROMS, which carries tidal propagation.
///
/// Equations (flux-form continuity, so mass is conserved to rounding):
///   d(zeta)/dt = -d[(h+zeta) u]/dx - d[(h+zeta) v]/dy
///   du/dt =  f v - g d(zeta)/dx - Cd |U| u / D     (D = h + zeta)
///   dv/dt = -f u - g d(zeta)/dy - Cd |U| v / D
/// integrated with the forward-backward scheme ROMS uses for its fast
/// mode: zeta first from old velocities, then velocities from new zeta,
/// with semi-implicit bottom friction.  The western edge is an open
/// boundary with Flather radiation against the tidal elevation; all other
/// edges and land faces are closed.
///
/// The solver operates on a horizontal slab of rows [y0, y1) with one
/// ghost row on each side, so the identical code runs serially
/// (one slab = whole domain) and domain-decomposed across MPI-style ranks
/// (src/parallel): exactly ROMS's tiling strategy, in the 1-D tile
/// configuration.

#include <functional>
#include <span>
#include <vector>

#include "ocean/grid.hpp"
#include "ocean/tides.hpp"

namespace coastal::ocean {

struct PhysicsParams {
  double g = 9.81;          ///< gravity, m/s^2
  double f = 6.3e-5;        ///< Coriolis parameter (26.5 N), 1/s
  double cd = 2.5e-3;       ///< quadratic bottom drag coefficient
  double dt = 20.0;         ///< barotropic time step, s
  double min_depth = 0.25;  ///< wetting floor, m
};

/// Solves the slab [y0, y1) of the grid.  For multi-rank runs the driver
/// wires `ExchangeHooks` to halo sends/recvs; serially the hooks are
/// no-ops (physical boundaries need no ghosts).
class SlabSolver {
 public:
  struct ExchangeHooks {
    /// Called after the zeta update / after the u update.  Implementations
    /// must fill ghost rows (-1 and nyl) from neighbouring slabs.
    std::function<void(SlabSolver&)> exchange_zeta;
    std::function<void(SlabSolver&)> exchange_u;
  };

  SlabSolver(const Grid& grid, const TidalForcing& tides, PhysicsParams params,
             int y0, int y1);

  /// Advance one barotropic step.
  void step(const ExchangeHooks& hooks);
  void step() { step(ExchangeHooks{}); }

  double time() const { return t_; }
  void set_time(double t) { t_ = t; }

  int y0() const { return y0_; }
  int y1() const { return y1_; }
  int nyl() const { return y1_ - y0_; }

  // --- row access (jy in [-1, nyl] for zeta/u; jf in [0, nyl] for v) ----
  std::span<float> zeta_row(int jy);
  std::span<const float> zeta_row(int jy) const;
  std::span<float> u_row(int jy);
  std::span<const float> u_row(int jy) const;
  std::span<float> v_row(int jf);
  std::span<const float> v_row(int jf) const;

  /// Point accessors in local coordinates.
  float zeta(int ix, int jy) const { return zeta_row(jy)[static_cast<size_t>(ix)]; }
  float u(int ix, int jy) const { return u_row(jy)[static_cast<size_t>(ix)]; }
  float v(int ix, int jf) const { return v_row(jf)[static_cast<size_t>(ix)]; }

  /// Total water volume over owned wet cells (for conservation tests).
  double owned_volume() const;

  const Grid& grid() const { return grid_; }

 private:
  void update_zeta();
  void update_u();
  void update_v();

  const Grid& grid_;
  const TidalForcing& tides_;
  PhysicsParams p_;
  int y0_, y1_;
  double t_ = 0.0;

  // Padded storage; row r of zeta_/u_ is local row (r - 1).
  std::vector<float> zeta_;      ///< (nyl + 2) x nx
  std::vector<float> zeta_old_;  ///< scratch copy read during the update
  std::vector<float> u_;         ///< (nyl + 2) x (nx + 1)
  std::vector<float> v_;         ///< (nyl + 1) x nx
};

/// Serial facade: one slab covering the whole grid, plus snapshotting
/// conveniences used by the data pipeline.
class TidalModel {
 public:
  TidalModel(const Grid& grid, const TidalForcing& tides, PhysicsParams params);

  void step() { slab_.step(); }
  void run_seconds(double seconds);
  double time() const { return slab_.time(); }

  /// Full-domain fields (copies).
  std::vector<float> zeta() const;   ///< nx * ny
  std::vector<float> ubar() const;   ///< (nx+1) * ny
  std::vector<float> vbar() const;   ///< nx * (ny+1)

  double total_volume() const { return slab_.owned_volume(); }

  const Grid& grid() const { return grid_; }
  SlabSolver& slab() { return slab_; }

 private:
  const Grid& grid_;
  SlabSolver slab_;
};

}  // namespace coastal::ocean
