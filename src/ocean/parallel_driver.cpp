#include "ocean/parallel_driver.hpp"

#include <mutex>

#include "parallel/communicator.hpp"
#include "parallel/decomposition.hpp"
#include "util/timer.hpp"

namespace coastal::ocean {

namespace {

// Tags for the two ghost-row exchanges.
enum Tag : int {
  kZetaUp = 1,
  kZetaDown = 2,
  kUUp = 3,
  kUDown = 4,
};

/// Exchange one field's ghost rows with slab neighbours.  `get_row` maps a
/// local row index (-1..nyl) to its span.
template <typename GetRow>
void exchange_rows(par::Comm& comm, int rank_below, int rank_above, int nyl,
                   int tag_up, int tag_down, GetRow get_row) {
  // Send our edge rows first (mailboxes are buffered, so no deadlock),
  // then receive into ghosts.
  if (rank_below >= 0) comm.send(rank_below, tag_down, get_row(0));
  if (rank_above >= 0) comm.send(rank_above, tag_up, get_row(nyl - 1));
  if (rank_below >= 0) comm.recv(rank_below, tag_up, get_row(-1));
  if (rank_above >= 0) comm.recv(rank_above, tag_down, get_row(nyl));
}

}  // namespace

ParallelRunResult run_decomposed(const Grid& grid, const TidalForcing& tides,
                                 const PhysicsParams& params, int nranks,
                                 int nsteps) {
  COASTAL_CHECK(nranks >= 1);
  COASTAL_CHECK_MSG(grid.ny() >= nranks,
                    "more ranks than grid rows: " << nranks << " > "
                                                  << grid.ny());
  ParallelRunResult result;
  result.zeta.assign(grid.cells(), 0.0f);
  result.ubar.assign(static_cast<size_t>(grid.nx() + 1) * grid.ny(), 0.0f);
  result.vbar.assign(static_cast<size_t>(grid.nx()) * (grid.ny() + 1), 0.0f);
  std::mutex result_mutex;

  util::Timer timer;
  par::World world(nranks);
  world.run([&](par::Comm& comm) {
    const auto tile =
        par::make_tile(comm.rank(), /*px=*/1, /*py=*/nranks, grid.nx(),
                       grid.ny(), /*halo=*/1);
    SlabSolver solver(grid, tides, params, tile.y0, tile.y1);
    const int below = comm.rank() - 1 >= 0 ? comm.rank() - 1 : -1;
    const int above = comm.rank() + 1 < nranks ? comm.rank() + 1 : -1;

    SlabSolver::ExchangeHooks hooks;
    hooks.exchange_zeta = [&](SlabSolver& s) {
      exchange_rows(comm, below, above, s.nyl(), kZetaUp, kZetaDown,
                    [&s](int jy) { return s.zeta_row(jy); });
    };
    hooks.exchange_u = [&](SlabSolver& s) {
      exchange_rows(comm, below, above, s.nyl(), kUUp, kUDown,
                    [&s](int jy) { return s.u_row(jy); });
    };

    for (int step = 0; step < nsteps; ++step) solver.step(hooks);

    // Write the owned region into the shared result (disjoint regions, so
    // only the counters need the mutex — but take it for the copies too to
    // keep the memory model simple).
    std::lock_guard<std::mutex> lock(result_mutex);
    for (int jy = 0; jy < solver.nyl(); ++jy) {
      const int gy = tile.y0 + jy;
      auto zrow = solver.zeta_row(jy);
      std::copy(zrow.begin(), zrow.end(),
                result.zeta.begin() + grid.rho_index(0, gy));
      auto urow = solver.u_row(jy);
      std::copy(urow.begin(), urow.end(),
                result.ubar.begin() + grid.u_index(0, gy));
    }
    // v faces: owner writes faces [y0, y1); the top rank also writes the
    // global boundary face ny.
    const int flast = (tile.y1 == grid.ny()) ? solver.nyl() : solver.nyl() - 1;
    for (int jf = 0; jf <= flast; ++jf) {
      auto vrow = solver.v_row(jf);
      std::copy(vrow.begin(), vrow.end(),
                result.vbar.begin() + grid.v_index(0, tile.y0 + jf));
    }
    result.halo_bytes += comm.bytes_sent();
    result.halo_messages += comm.messages_sent();
  });
  result.wall_seconds = timer.seconds();
  return result;
}

}  // namespace coastal::ocean
