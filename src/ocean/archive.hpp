#pragma once

/// \file archive.hpp
/// Runs the tidal model and collects 3-D snapshots at a fixed interval —
/// the stand-in for the paper's decade-long ROMS simulation archive of
/// Charlotte Harbor (half-hourly snapshots).

#include <functional>
#include <vector>

#include "ocean/sigma.hpp"
#include "ocean/solver.hpp"

namespace coastal::ocean {

struct ArchiveConfig {
  double spinup_seconds = 6.0 * 3600.0;   ///< discarded ramp-up
  double duration_seconds = 86400.0;      ///< archived span
  double interval_seconds = 1800.0;       ///< snapshot cadence (paper: 30 min)
};

/// Simulate and return snapshots (first snapshot at the end of spinup).
/// `on_snapshot`, when set, is invoked for each snapshot *instead of*
/// accumulating in memory (streaming mode for large archives).
std::vector<Snapshot> simulate_archive(
    const Grid& grid, const TidalForcing& tides, const PhysicsParams& params,
    const ArchiveConfig& config,
    const std::function<void(const Snapshot&)>& on_snapshot = nullptr);

}  // namespace coastal::ocean
