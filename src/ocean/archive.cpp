#include "ocean/archive.hpp"

namespace coastal::ocean {

std::vector<Snapshot> simulate_archive(
    const Grid& grid, const TidalForcing& tides, const PhysicsParams& params,
    const ArchiveConfig& config,
    const std::function<void(const Snapshot&)>& on_snapshot) {
  TidalModel model(grid, tides, params);
  model.run_seconds(config.spinup_seconds);

  std::vector<Snapshot> archive;
  const auto n_snaps = static_cast<size_t>(
      config.duration_seconds / config.interval_seconds) + 1;
  if (!on_snapshot) archive.reserve(n_snaps);

  for (size_t i = 0; i < n_snaps; ++i) {
    Snapshot snap = reconstruct_3d(grid, model.time(), model.zeta(),
                                   model.ubar(), model.vbar());
    if (on_snapshot) {
      on_snapshot(snap);
    } else {
      archive.push_back(std::move(snap));
    }
    if (i + 1 < n_snaps) model.run_seconds(config.interval_seconds);
  }
  return archive;
}

}  // namespace coastal::ocean
