#pragma once

/// \file parallel_driver.hpp
/// Domain-decomposed run of the tidal solver over MPI-style ranks — the
/// parallelization structure of MPI ROMS (Table I's "Traditional MPI
/// ROMS" row).  Each rank owns a slab of rows; ghost rows of zeta and u
/// are exchanged with the two neighbours twice per time step.

#include <cstdint>
#include <vector>

#include "ocean/solver.hpp"

namespace coastal::ocean {

struct ParallelRunResult {
  std::vector<float> zeta;  ///< gathered full field, nx * ny
  std::vector<float> ubar;  ///< (nx+1) * ny
  std::vector<float> vbar;  ///< nx * (ny+1)
  uint64_t halo_bytes = 0;      ///< total bytes sent in halo exchanges
  uint64_t halo_messages = 0;   ///< total halo messages
  double wall_seconds = 0.0;
};

/// Run `nsteps` on `nranks` slabs and gather the final state.
/// Bitwise-identical to the serial TidalModel for any rank count (tested).
ParallelRunResult run_decomposed(const Grid& grid, const TidalForcing& tides,
                                 const PhysicsParams& params, int nranks,
                                 int nsteps);

}  // namespace coastal::ocean
