#pragma once

/// \file bathymetry.hpp
/// Procedural estuary generator standing in for the Charlotte Harbor mesh.
///
/// Layout (west -> east):
///   [open shelf | barrier islands with inlets | harbor basin | land with
///    river channels].  The western edge is the open ocean boundary where
///    tides are imposed.  Depth decreases from the shelf (~18 m) to the
///    harbor (~3 m); river channels are narrow, deeper cuts into the land.
/// Grid spacing is refined near the inlet band, mirroring the paper's
/// higher resolution "near river channels and inlets".

#include "ocean/grid.hpp"
#include "util/rng.hpp"

namespace coastal::ocean {

struct EstuaryParams {
  double shelf_depth = 18.0;    ///< m at the western boundary
  double harbor_depth = 3.0;    ///< m in the interior basin
  double channel_depth = 6.0;   ///< m in river channels
  int num_inlets = 2;           ///< gaps in the barrier island chain
  int num_rivers = 2;           ///< channels cut into the eastern land
  double inlet_fraction = 0.12; ///< inlet width as a fraction of ny
  double noise = 0.15;          ///< relative depth roughness
  double base_dx = 500.0;       ///< m, coarsest spacing
  double refine_factor = 2.0;   ///< dx shrinks by this near the inlet band
};

/// Fill `grid`'s bathymetry, mask, and spacing.  Deterministic given seed.
void generate_estuary(Grid& grid, const EstuaryParams& params, uint64_t seed);

}  // namespace coastal::ocean
