#pragma once

/// \file profile.hpp
/// Scoped stage profiler: RAII timers on the named stages of the
/// serving pipeline (queue wait, sample packing, GEMM, attention,
/// verification, cache probe, halo exchange, ...) feeding geometric
/// registry histograms — so a bench_diff-style regression can be
/// localized to *which stage* moved, not just which benchmark.
///
/// The profiler is a process-wide singleton because its instrumentation
/// points live in layers that know nothing about servers (tensor
/// kernels, the halo exchange).  When disabled, an instrumented scope
/// costs one relaxed atomic load; when enabled, two steady_clock reads
/// plus one sharded histogram observe.  ForecastServer construction
/// applies ServerConfig::obs.profile_stages (overridable via the
/// COASTAL_PROFILE environment variable); stage histograms are exported
/// into the server's registry snapshot as
/// coastal_stage_duration_us{stage="..."}.

#include <array>
#include <atomic>
#include <chrono>
#include <memory>

#include "obs/registry.hpp"

namespace coastal::obs {

enum class Stage : int {
  kQueue = 0,   ///< submit -> batch assembly, per request
  kPack,        ///< sample construction / batched-input packing
  kCacheProbe,  ///< forecast-cache probe of a batch's uniques
  kForward,     ///< surrogate forward (retry loop included)
  kGemm,        ///< tensor::kernels::gemm / gemm_batched
  kAttention,   ///< fused attention forward / backward
  kVerify,      ///< physics verification of one entry
  kFallback,    ///< numerical-model episode (degraded / salvage)
  kHalo,        ///< one halo-exchange round of a sharded forecast
  kDecode,      ///< prediction decode to CenterFields
  kCount
};

const char* stage_name(Stage s);

/// Apply the COASTAL_PROFILE environment override ("0" disables,
/// anything else enables) on top of `base`.
bool profile_from_env(bool base);

class StageProfiler {
 public:
  static StageProfiler& instance();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  /// Last writer wins process-wide (documented in docs/observability.md:
  /// with several servers the most recently constructed one decides).
  void set_enabled(bool on);

  void record(Stage s, double us) {
    hists_[static_cast<size_t>(s)]->observe(us);
  }
  HistogramSnapshot snapshot(Stage s) const {
    return hists_[static_cast<size_t>(s)]->snapshot();
  }
  /// Append every non-empty stage histogram to `out` as
  /// coastal_stage_duration_us{stage="..."} — the registry-collector
  /// hook ForecastServer installs.
  void collect(RegistrySnapshot& out) const;
  void reset();

 private:
  StageProfiler();

  std::atomic<bool> enabled_{false};
  std::array<std::unique_ptr<Histogram>, static_cast<size_t>(Stage::kCount)>
      hists_;
};

/// RAII stage timer.  Construct with the profiler possibly disabled —
/// the check is one relaxed load and the clock is only read when armed.
class ScopedStage {
 public:
  explicit ScopedStage(Stage s)
      : stage_(s), armed_(StageProfiler::instance().enabled()) {
    if (armed_) t0_ = std::chrono::steady_clock::now();
  }
  ~ScopedStage() {
    if (!armed_) return;
    const auto dt = std::chrono::steady_clock::now() - t0_;
    StageProfiler::instance().record(
        stage_,
        static_cast<double>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(dt)
                .count()) *
            1e-3);
  }
  ScopedStage(const ScopedStage&) = delete;
  ScopedStage& operator=(const ScopedStage&) = delete;

 private:
  Stage stage_;
  bool armed_;
  std::chrono::steady_clock::time_point t0_{};
};

}  // namespace coastal::obs
