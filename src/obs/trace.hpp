#pragma once

/// \file trace.hpp
/// Per-request span tracing for the forecast serving stack.
///
/// Answers "where did this 40 ms request go?": every sampled request
/// gets a TraceContext (one 64-bit id) carried on ForecastRequest from
/// submit() through queue wait, breaker/cache triage, batch assembly,
/// forward (with retries), verification, fallback, and promise
/// resolution — and across shard ranks via the trace id stamped into the
/// halo-exchange message envelope (par::World::Message::trace).
///
/// Recording model: spans are fixed-size PODs (static-lifetime stage
/// string, no heap members) written into per-thread ring buffers owned
/// by the global TraceRecorder.  A thread's ring is allocated on its
/// first record (warm-up) and reused for the thread's lifetime — and
/// recycled to later threads after exit — so steady-state recording
/// performs zero heap allocations; when tracing is disabled the whole
/// layer costs one relaxed atomic load per call site.
///
/// There are no parent-span ids: trees are reconstructed at dump time by
/// time-interval containment within a trace, which works across threads
/// (a request's queue span is written by a worker, its halo spans by
/// rank threads) without threading parent state through the stack.
///
/// Env knobs: COASTAL_TRACE ("0"/unset off, "1" all requests, a float in
/// (0,1) samples that fraction deterministically by id hash) and
/// COASTAL_TRACE_RING (spans per thread ring, default 4096).

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace coastal::obs {

/// Carried on ForecastRequest.  id == 0 means untraced (the common
/// case); ids are process-unique otherwise.
struct TraceContext {
  uint64_t id = 0;
};

struct TraceConfig {
  bool enabled = false;
  /// Fraction of requests traced; sampling is deterministic in the
  /// trace id (splitmix64 hash threshold), so a replayed run samples
  /// the same requests.
  double sample_rate = 1.0;
  /// Spans retained per thread ring; older spans are overwritten.
  int ring_spans = 4096;
};

/// Apply COASTAL_TRACE / COASTAL_TRACE_RING on top of `base`.
TraceConfig trace_config_from_env(TraceConfig base);

/// Outcome tags on spans (bitmask).
enum TraceFlag : uint32_t {
  kError = 1u << 0,         ///< resolved with a typed ForecastError
  kDegraded = 1u << 1,      ///< breaker-degraded (numerical) service
  kCacheHit = 1u << 2,      ///< served from the forecast cache
  kFallback = 1u << 3,      ///< frames recomputed by the numerical model
  kFaultRetry = 1u << 4,    ///< forward needed >= 1 retry attempt
  kVerifyFailed = 1u << 5,  ///< physics verification rejected the frames
  kPrefixResume = 1u << 6,  ///< chain resumed from a cached prefix
  kWorkerLost = 1u << 7,    ///< failed by the watchdog (hung worker)
};

/// One recorded span.  POD on purpose: ring writes must not allocate.
struct TraceSpan {
  uint64_t trace_id = 0;
  int64_t start_us = 0;  ///< µs since the process trace epoch
  int64_t end_us = 0;
  const char* stage = "";  ///< static-lifetime stage name
  uint32_t flags = 0;      ///< TraceFlag bitmask
  int32_t code = -1;       ///< ForecastErrorCode when kError, else -1
  int32_t rank = -1;       ///< shard rank, -1 off the shard path
  int64_t extra = 0;       ///< stage-specific (batch size, attempts, ...)
};

/// µs since the process-wide steady_clock trace epoch.
int64_t now_us();
int64_t to_us(std::chrono::steady_clock::time_point tp);

/// The calling thread's ambient trace id (0 = unbound).  Deep layers
/// (rollout, halo exchange) attach spans to it without plumbing ids
/// through their signatures; Comm::send stamps it into the message
/// envelope.
uint64_t current_trace();
void bind_trace(uint64_t id);
/// Bind only when currently unbound and `id` != 0 — how a shard rank
/// picks up the trace from the first halo envelope it receives.
void adopt_trace(uint64_t id);

/// RAII ambient binding (restores the previous id).
class TraceBinding {
 public:
  explicit TraceBinding(uint64_t id) : prev_(current_trace()) {
    bind_trace(id);
  }
  ~TraceBinding() { bind_trace(prev_); }
  TraceBinding(const TraceBinding&) = delete;
  TraceBinding& operator=(const TraceBinding&) = delete;

 private:
  uint64_t prev_;
};

/// Global span sink.
class TraceRecorder {
 public:
  /// Per-thread span ring (defined in trace.cpp; public so the
  /// thread-exit recycling handle can name it).
  struct Ring;

  static TraceRecorder& instance();

  /// Reconfigure (enable/disable, sampling, ring size).  Retained spans
  /// survive; ring size applies to rings allocated afterwards.
  void configure(const TraceConfig& cfg);
  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  /// New trace id, or 0 when disabled or not sampled.
  uint64_t begin_trace();
  void record(const TraceSpan& s);

  /// Every retained span, all threads, unordered.
  std::vector<TraceSpan> spans() const;
  /// Retained spans of one trace.
  std::vector<TraceSpan> spans_for(uint64_t trace_id) const;
  void clear();
  /// JSON span trees: {"traces": [{"trace": id, "spans": [...]}]} with
  /// children nested by time containment (tools/trace_view.py renders
  /// this as an indented timeline).
  std::string dump_json() const;

 private:
  TraceRecorder() = default;

  Ring* acquire_ring();

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> next_id_{1};
  /// splitmix64(id) <= threshold samples the trace.
  std::atomic<uint64_t> sample_threshold_{~0ull};
  std::atomic<int> ring_spans_{4096};
  mutable std::mutex rings_m_;
  std::vector<std::unique_ptr<Ring>> rings_;  ///< owned for process life
  std::vector<Ring*> free_rings_;             ///< rings of exited threads
};

/// RAII span on the ambient trace: records [ctor, dtor] when tracing is
/// enabled and a trace is bound, otherwise costs one relaxed load.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* stage);
  ~ScopedSpan();
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void set_flags(uint32_t f) { span_.flags |= f; }
  void set_rank(int r) { span_.rank = r; }
  void set_extra(int64_t e) { span_.extra = e; }

 private:
  TraceSpan span_;
  bool armed_ = false;
};

}  // namespace coastal::obs
