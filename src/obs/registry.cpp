#include "obs/registry.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace coastal::obs {

namespace detail {

unsigned shard_index() {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned slot =
      next.fetch_add(1, std::memory_order_relaxed) % kCellShards;
  return slot;
}

void atomic_add(std::atomic<double>& a, double delta) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + delta,
                                  std::memory_order_relaxed,
                                  std::memory_order_relaxed)) {
  }
}

}  // namespace detail

HistogramSpec HistogramSpec::latency_us() {
  HistogramSpec s;
  s.scale = Scale::kGeometric;
  s.buckets = 64;
  s.anchor = 1.0;
  s.buckets_per_octave = 4.0;
  return s;
}

HistogramSpec HistogramSpec::linear(int buckets, double lo, double width) {
  HistogramSpec s;
  s.scale = Scale::kLinear;
  s.buckets = buckets;
  s.lo = lo;
  s.width = width;
  return s;
}

int HistogramSpec::bucket(double v) const {
  if (scale == Scale::kGeometric) {
    // Same double expressions as the server's historic latency_bucket:
    // with anchor == 1 the division and clamp are bit-identical.
    if (v <= anchor) return 0;
    const int idx =
        static_cast<int>(buckets_per_octave * std::log2(v / anchor));
    return std::min(std::max(idx, 0), buckets - 1);
  }
  if (v < lo) return 0;
  const int idx = static_cast<int>((v - lo) / width);
  return std::min(std::max(idx, 0), buckets - 1);
}

double HistogramSpec::representative(int idx) const {
  if (scale == Scale::kGeometric) {
    return anchor * std::exp2((idx + 0.5) / buckets_per_octave);
  }
  return lo + idx * width;
}

double HistogramSpec::upper_edge(int idx) const {
  if (idx >= buckets - 1) return std::numeric_limits<double>::infinity();
  if (scale == Scale::kGeometric) {
    return anchor * std::exp2((idx + 1) / buckets_per_octave);
  }
  return lo + (idx + 1) * width;
}

double HistogramSnapshot::percentile(double q) const {
  // The server's historic percentile fold, verbatim: first bucket whose
  // cumulative count reaches q*total, reported at its midpoint.
  if (total == 0) return 0.0;
  const double target = q * static_cast<double>(total);
  double cum = 0.0;
  for (size_t i = 0; i < counts.size(); ++i) {
    cum += static_cast<double>(counts[i]);
    if (cum >= target) return spec.representative(static_cast<int>(i));
  }
  return spec.representative(spec.buckets - 1);
}

Histogram::Histogram(const HistogramSpec& spec)
    : spec_(spec),
      counts_(detail::kCellShards * static_cast<size_t>(spec.buckets)) {}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot s;
  s.spec = spec_;
  s.counts.assign(static_cast<size_t>(spec_.buckets), 0);
  for (unsigned sh = 0; sh < detail::kCellShards; ++sh) {
    for (int b = 0; b < spec_.buckets; ++b) {
      s.counts[static_cast<size_t>(b)] +=
          counts_[sh * static_cast<unsigned>(spec_.buckets) +
                  static_cast<unsigned>(b)]
              .load(std::memory_order_relaxed);
    }
    s.sum += sums_[sh].v.load(std::memory_order_relaxed);
  }
  for (uint64_t c : s.counts) s.total += c;
  return s;
}

void Histogram::reset() {
  for (auto& c : counts_) c.store(0, std::memory_order_relaxed);
  for (auto& s : sums_) s.v.store(0.0, std::memory_order_relaxed);
}

namespace {

/// Find-or-append over a Named<> vector; registration is idempotent so
/// a subsystem constructed twice (e.g. two servers sharing a registry in
/// the future) reuses the instrument instead of splitting its counts.
template <typename Vec, typename Make>
auto* find_or_add(Vec& v, const std::string& name, const std::string& help,
                  const std::string& lk, const std::string& lv, Make make) {
  for (auto& e : v) {
    if (e.name == name && e.label_key == lk && e.label_value == lv) {
      return &e.entry;
    }
  }
  v.push_back({name, help, lk, lv, make()});
  return &v.back().entry;
}

void append_json_escaped(std::string& out, const std::string& s) {
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
}

std::string fmt_double(double v) {
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string label_clause(const std::string& k, const std::string& v) {
  if (k.empty()) return "";
  return "{" + k + "=\"" + v + "\"}";
}

}  // namespace

Counter* Registry::counter(const std::string& name, const std::string& help,
                           const std::string& label_key,
                           const std::string& label_value) {
  std::lock_guard<std::mutex> lock(m_);
  return find_or_add(counters_, name, help, label_key, label_value,
                     [] { return std::make_unique<Counter>(); })
      ->get();
}

Gauge* Registry::gauge(const std::string& name, const std::string& help,
                       const std::string& label_key,
                       const std::string& label_value) {
  std::lock_guard<std::mutex> lock(m_);
  return find_or_add(gauges_, name, help, label_key, label_value,
                     [] { return std::make_unique<Gauge>(); })
      ->get();
}

void Registry::gauge_fn(const std::string& name, const std::string& help,
                        std::function<double()> fn,
                        const std::string& label_key,
                        const std::string& label_value) {
  std::lock_guard<std::mutex> lock(m_);
  find_or_add(gauge_fns_, name, help, label_key, label_value,
              [&] { return std::move(fn); });
}

Histogram* Registry::histogram(const std::string& name,
                               const std::string& help,
                               const HistogramSpec& spec,
                               const std::string& label_key,
                               const std::string& label_value) {
  std::lock_guard<std::mutex> lock(m_);
  return find_or_add(hists_, name, help, label_key, label_value,
                     [&] { return std::make_unique<Histogram>(spec); })
      ->get();
}

void Registry::collector(Collector fn) {
  std::lock_guard<std::mutex> lock(m_);
  collectors_.push_back(std::move(fn));
}

RegistrySnapshot Registry::snapshot() const {
  // Exclusive against Group holders first (no half-applied stat groups),
  // then the registration mutex for the instrument lists.
  auto group_lock = exclusive();
  RegistrySnapshot out;
  std::vector<Collector> collectors;
  {
    std::lock_guard<std::mutex> lock(m_);
    out.counters.reserve(counters_.size());
    for (const auto& e : counters_) {
      out.counters.push_back(
          {e.name, e.help, e.label_key, e.label_value, e.entry->value()});
    }
    out.gauges.reserve(gauges_.size() + gauge_fns_.size());
    for (const auto& e : gauges_) {
      out.gauges.push_back(
          {e.name, e.help, e.label_key, e.label_value, e.entry->value()});
    }
    for (const auto& e : gauge_fns_) {
      out.gauges.push_back(
          {e.name, e.help, e.label_key, e.label_value, e.entry()});
    }
    out.histograms.reserve(hists_.size());
    for (const auto& e : hists_) {
      HistogramSnapshot h = e.entry->snapshot();
      h.name = e.name;
      h.help = e.help;
      h.label_key = e.label_key;
      h.label_value = e.label_value;
      out.histograms.push_back(std::move(h));
    }
    collectors = collectors_;
  }
  for (const auto& fn : collectors) fn(out);
  return out;
}

std::string RegistrySnapshot::to_prometheus() const {
  std::string out;
  out.reserve(4096);
  // One # HELP / # TYPE header per family; entries of one family (same
  // name, different labels) are emitted consecutively by construction.
  std::string last_family;
  auto header = [&](const std::string& name, const std::string& help,
                    const char* type) {
    if (name == last_family) return;
    last_family = name;
    out += "# HELP " + name + " " + help + "\n";
    out += "# TYPE " + name + " " + std::string(type) + "\n";
  };
  for (const auto& c : counters) {
    header(c.name, c.help, "counter");
    out += c.name + label_clause(c.label_key, c.label_value) + " " +
           std::to_string(c.value) + "\n";
  }
  for (const auto& g : gauges) {
    header(g.name, g.help, "gauge");
    out += g.name + label_clause(g.label_key, g.label_value) + " " +
           fmt_double(g.value) + "\n";
  }
  for (const auto& h : histograms) {
    header(h.name, h.help, "histogram");
    uint64_t cum = 0;
    for (size_t i = 0; i < h.counts.size(); ++i) {
      cum += h.counts[i];
      std::string labels = "le=\"" +
                           fmt_double(h.spec.upper_edge(static_cast<int>(i))) +
                           "\"";
      if (!h.label_key.empty()) {
        labels = h.label_key + "=\"" + h.label_value + "\"," + labels;
      }
      out += h.name + "_bucket{" + labels + "} " + std::to_string(cum) + "\n";
    }
    out += h.name + "_sum" + label_clause(h.label_key, h.label_value) + " " +
           fmt_double(h.sum) + "\n";
    out += h.name + "_count" + label_clause(h.label_key, h.label_value) +
           " " + std::to_string(h.total) + "\n";
  }
  return out;
}

std::string RegistrySnapshot::to_json() const {
  std::string out = "{\n  \"counters\": [";
  auto name_labels = [&](const std::string& name, const std::string& lk,
                         const std::string& lv) {
    out += "\"name\": \"";
    append_json_escaped(out, name);
    out += "\"";
    if (!lk.empty()) {
      out += ", \"labels\": {\"";
      append_json_escaped(out, lk);
      out += "\": \"";
      append_json_escaped(out, lv);
      out += "\"}";
    }
  };
  for (size_t i = 0; i < counters.size(); ++i) {
    out += i ? ",\n    {" : "\n    {";
    name_labels(counters[i].name, counters[i].label_key,
                counters[i].label_value);
    out += ", \"value\": " + std::to_string(counters[i].value) + "}";
  }
  out += "\n  ],\n  \"gauges\": [";
  for (size_t i = 0; i < gauges.size(); ++i) {
    out += i ? ",\n    {" : "\n    {";
    name_labels(gauges[i].name, gauges[i].label_key, gauges[i].label_value);
    out += ", \"value\": " + fmt_double(gauges[i].value) + "}";
  }
  out += "\n  ],\n  \"histograms\": [";
  for (size_t i = 0; i < histograms.size(); ++i) {
    const auto& h = histograms[i];
    out += i ? ",\n    {" : "\n    {";
    name_labels(h.name, h.label_key, h.label_value);
    out += ", \"count\": " + std::to_string(h.total);
    out += ", \"sum\": " + fmt_double(h.sum);
    out += ", \"le\": [";
    for (size_t b = 0; b < h.counts.size(); ++b) {
      if (b) out += ", ";
      const double edge = h.spec.upper_edge(static_cast<int>(b));
      out += std::isinf(edge) ? "null" : fmt_double(edge);
    }
    out += "], \"counts\": [";
    for (size_t b = 0; b < h.counts.size(); ++b) {
      if (b) out += ", ";
      out += std::to_string(h.counts[b]);
    }
    out += "]}";
  }
  out += "\n  ]\n}\n";
  return out;
}

}  // namespace coastal::obs
