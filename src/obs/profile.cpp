#include "obs/profile.hpp"

#include <cstdlib>
#include <cstring>

namespace coastal::obs {

const char* stage_name(Stage s) {
  switch (s) {
    case Stage::kQueue:
      return "queue";
    case Stage::kPack:
      return "pack";
    case Stage::kCacheProbe:
      return "cache_probe";
    case Stage::kForward:
      return "forward";
    case Stage::kGemm:
      return "gemm";
    case Stage::kAttention:
      return "attention";
    case Stage::kVerify:
      return "verify";
    case Stage::kFallback:
      return "fallback";
    case Stage::kHalo:
      return "halo_exchange";
    case Stage::kDecode:
      return "decode";
    case Stage::kCount:
      break;
  }
  return "unknown";
}

bool profile_from_env(bool base) {
  if (const char* v = std::getenv("COASTAL_PROFILE"); v && *v) {
    return std::strcmp(v, "0") != 0;
  }
  return base;
}

StageProfiler& StageProfiler::instance() {
  static StageProfiler* p = new StageProfiler();  // immortal
  return *p;
}

StageProfiler::StageProfiler() {
  for (auto& h : hists_) {
    h = std::make_unique<Histogram>(HistogramSpec::latency_us());
  }
}

void StageProfiler::set_enabled(bool on) {
  enabled_.store(on, std::memory_order_relaxed);
}

void StageProfiler::collect(RegistrySnapshot& out) const {
  for (int i = 0; i < static_cast<int>(Stage::kCount); ++i) {
    HistogramSnapshot h = hists_[static_cast<size_t>(i)]->snapshot();
    if (h.total == 0) continue;  // keep the exposition compact
    h.name = "coastal_stage_duration_us";
    h.help = "Scoped stage wall time in microseconds";
    h.label_key = "stage";
    h.label_value = stage_name(static_cast<Stage>(i));
    out.histograms.push_back(std::move(h));
  }
}

void StageProfiler::reset() {
  for (auto& h : hists_) h->reset();
}

}  // namespace coastal::obs
