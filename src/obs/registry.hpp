#pragma once

/// \file registry.hpp
/// Central metrics registry: counters, gauges, and histograms with
/// Prometheus-style text exposition and a JSON dump.
///
/// Before this layer every subsystem grew its own counter island —
/// ForecastServer kept 13 counters and a hand-rolled latency histogram
/// behind one stats mutex, the forecast cache eight more behind its own,
/// util::fault a per-site map behind a third — and nothing could present
/// them as one operations surface.  The registry turns each island into
/// pre-registered instruments on a shared substrate that the ROADMAP-1
/// socket front end can later serve verbatim (text or JSON).
///
/// Hot-path contract: an increment is ONE relaxed atomic add on a
/// per-thread-sharded cache-line-private cell — no lock, no allocation,
/// no aggregation.  Aggregation happens only at snapshot time, which
/// sums the shards.  A histogram observe is one bucket add plus one
/// CAS-loop sum add on the same shard.
///
/// Snapshot atomicity: writers that must commit several instruments as
/// one unit (e.g. the server's claim → stats → resolve fan-out) hold a
/// Registry::Group — a *shared* lock, so groups never serialize against
/// each other — while snapshot()/stats() take the exclusive side.  A
/// snapshot therefore never observes half of a stat group, which is
/// exactly the guarantee the old per-server stats mutex provided, minus
/// the writer-writer serialization.
///
/// Bucket math note: HistogramSpec::latency_us() reproduces the server's
/// historic 64-bucket geometric latency histogram (ratio 2^(1/4),
/// anchored at 1 µs) bit-for-bit — bucket selection, representative
/// midpoints, and the percentile fold are the same double expressions,
/// so ServerStatsSnapshot percentiles are unchanged by the migration.

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

namespace coastal::obs {

namespace detail {

/// Number of per-thread counter shards.  Threads hash onto slots via a
/// monotone thread index, so with <= kCellShards live threads every
/// thread owns a private cache line.
inline constexpr unsigned kCellShards = 16;

struct alignas(64) CounterCell {
  std::atomic<int64_t> v{0};
};

struct alignas(64) SumCell {
  std::atomic<double> v{0.0};
};

/// The calling thread's stable shard slot.
unsigned shard_index();

/// fetch_add for atomic<double> via CAS (portable pre-C++20-TS).
void atomic_add(std::atomic<double>& a, double delta);

}  // namespace detail

/// Monotone event count.  add() accepts negatives only for documented
/// reversals (the server un-counts a submission the queue rejected).
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void inc(int64_t n = 1) {
    cells_[detail::shard_index()].v.fetch_add(n, std::memory_order_relaxed);
  }
  void add(int64_t n) { inc(n); }
  int64_t value() const {
    int64_t total = 0;
    for (const auto& c : cells_) total += c.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  std::array<detail::CounterCell, detail::kCellShards> cells_;
};

/// Last-writer-wins instantaneous value.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Bucket layout of a histogram.  Two scales cover every historic
/// histogram in the stack: geometric (latency, stage durations) and
/// linear (batch-size composition).
struct HistogramSpec {
  enum class Scale { kGeometric, kLinear };
  Scale scale = Scale::kGeometric;
  int buckets = 64;
  /// Geometric: values <= anchor land in bucket 0; bucket boundaries
  /// advance by a factor of 2^(1/buckets_per_octave).
  double anchor = 1.0;
  double buckets_per_octave = 4.0;
  /// Linear: bucket i covers [lo + i*width, lo + (i+1)*width); values
  /// below lo land in bucket 0, at or above the top edge in the last.
  double lo = 1.0;
  double width = 1.0;

  /// The server's historic latency layout: 64 buckets, ratio 2^(1/4),
  /// anchored at 1 µs (values fed in microseconds).
  static HistogramSpec latency_us();
  static HistogramSpec linear(int buckets, double lo, double width);

  int bucket(double v) const;
  /// Representative (midpoint) value of a bucket, in the observed unit.
  double representative(int idx) const;
  /// Inclusive upper bound of a bucket (Prometheus `le` edge); +inf for
  /// the last bucket.
  double upper_edge(int idx) const;
};

struct CounterSnapshot {
  std::string name;
  std::string help;
  std::string label_key;  ///< at most one label pair (site=, stage=)
  std::string label_value;
  int64_t value = 0;
};

struct GaugeSnapshot {
  std::string name;
  std::string help;
  std::string label_key;
  std::string label_value;
  double value = 0.0;
};

struct HistogramSnapshot {
  std::string name;
  std::string help;
  std::string label_key;
  std::string label_value;
  HistogramSpec spec;
  std::vector<uint64_t> counts;  ///< per bucket, aggregated over shards
  uint64_t total = 0;
  double sum = 0.0;
  /// Representative value of the bucket where the cumulative count first
  /// reaches q*total (the server's historic percentile fold); 0 when
  /// empty.
  double percentile(double q) const;
};

/// One aggregated view of every instrument plus every collector's
/// contribution — the payload both exporters serialize.
struct RegistrySnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;

  /// Prometheus text exposition format (one family per metric name).
  std::string to_prometheus() const;
  /// JSON with the same content, arrays keyed "counters"/"gauges"/
  /// "histograms".
  std::string to_json() const;
};

/// Sharded histogram: per-shard bucket counts plus a per-shard sum.
class Histogram {
 public:
  explicit Histogram(const HistogramSpec& spec);
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void observe(double v) {
    const unsigned s = detail::shard_index();
    const int b = spec_.bucket(v);
    counts_[s * static_cast<unsigned>(spec_.buckets) +
            static_cast<unsigned>(b)]
        .fetch_add(1, std::memory_order_relaxed);
    detail::atomic_add(sums_[s].v, v);
  }

  const HistogramSpec& spec() const { return spec_; }
  /// Aggregated snapshot (name/help/label left empty for the owner to
  /// fill).
  HistogramSnapshot snapshot() const;
  /// Zero every shard (tests and the stage profiler's reset).
  void reset();

 private:
  HistogramSpec spec_;
  std::vector<std::atomic<uint64_t>> counts_;  ///< kCellShards * buckets
  std::array<detail::SumCell, detail::kCellShards> sums_;
};

/// Instrument registry.  Registration returns stable pointers (the
/// handles the hot path increments); re-registering the same
/// (name, label) returns the existing instrument.  Instances are
/// independent — each ForecastServer owns one — and a standalone
/// subsystem (e.g. a ForecastCache built without a server) may own a
/// private registry of its own.
class Registry {
 public:
  using Collector = std::function<void(RegistrySnapshot&)>;

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter* counter(const std::string& name, const std::string& help,
                   const std::string& label_key = "",
                   const std::string& label_value = "");
  Gauge* gauge(const std::string& name, const std::string& help,
               const std::string& label_key = "",
               const std::string& label_value = "");
  /// Gauge evaluated lazily at snapshot time (queue depth, cache bytes).
  void gauge_fn(const std::string& name, const std::string& help,
                std::function<double()> fn, const std::string& label_key = "",
                const std::string& label_value = "");
  Histogram* histogram(const std::string& name, const std::string& help,
                       const HistogramSpec& spec,
                       const std::string& label_key = "",
                       const std::string& label_value = "");
  /// Snapshot-time hook appending externally owned metrics (breaker
  /// state, fault-site stats, stage profiler) to the snapshot.
  void collector(Collector fn);

  RegistrySnapshot snapshot() const;

  /// RAII shared lock for writers committing a multi-instrument stat
  /// group.  Groups run concurrently with each other; snapshot() (and
  /// ForecastServer::stats()) takes the exclusive side, so a reader
  /// never observes half a group.
  class Group {
   public:
    explicit Group(const Registry& r) : lock_(r.group_m_) {}

   private:
    std::shared_lock<std::shared_mutex> lock_;
  };

  /// The exclusive side of Group, for compatibility views assembled
  /// outside snapshot() (ForecastServer::stats()).
  std::unique_lock<std::shared_mutex> exclusive() const {
    return std::unique_lock<std::shared_mutex>(group_m_);
  }

 private:
  template <typename Entry>
  struct Named {
    std::string name, help, label_key, label_value;
    Entry entry;
  };

  mutable std::mutex m_;  ///< registration + collector list
  mutable std::shared_mutex group_m_;
  std::vector<Named<std::unique_ptr<Counter>>> counters_;
  std::vector<Named<std::unique_ptr<Gauge>>> gauges_;
  std::vector<Named<std::function<double()>>> gauge_fns_;
  std::vector<Named<std::unique_ptr<Histogram>>> hists_;
  std::vector<Collector> collectors_;
};

}  // namespace coastal::obs
