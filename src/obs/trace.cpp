#include "obs/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace coastal::obs {

namespace {

/// Same mix as util::fault's deterministic Bernoulli draw — sampling
/// must be a pure function of the trace id so a replayed run samples
/// the same requests.
uint64_t splitmix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::chrono::steady_clock::time_point trace_epoch() {
  static const std::chrono::steady_clock::time_point t0 =
      std::chrono::steady_clock::now();
  return t0;
}

thread_local uint64_t tl_trace = 0;

}  // namespace

int64_t to_us(std::chrono::steady_clock::time_point tp) {
  return std::chrono::duration_cast<std::chrono::microseconds>(tp -
                                                               trace_epoch())
      .count();
}

int64_t now_us() { return to_us(std::chrono::steady_clock::now()); }

uint64_t current_trace() { return tl_trace; }
void bind_trace(uint64_t id) { tl_trace = id; }
void adopt_trace(uint64_t id) {
  if (tl_trace == 0 && id != 0) tl_trace = id;
}

TraceConfig trace_config_from_env(TraceConfig base) {
  if (const char* v = std::getenv("COASTAL_TRACE"); v && *v) {
    const double rate = std::atof(v);
    if (std::strcmp(v, "0") == 0 || rate <= 0.0) {
      base.enabled = false;
    } else {
      base.enabled = true;
      base.sample_rate = std::min(rate, 1.0);
    }
  }
  if (const char* v = std::getenv("COASTAL_TRACE_RING"); v && *v) {
    const int n = std::atoi(v);
    if (n > 0) base.ring_spans = n;
  }
  return base;
}

/// Per-thread span ring.  Owned by the recorder (never freed) so spans
/// survive their writer thread; the per-ring mutex is uncontended on the
/// hot path — only spans()/dump_json() ever take it from another thread.
struct TraceRecorder::Ring {
  std::mutex m;
  std::vector<TraceSpan> buf;  ///< sized once at acquisition
  size_t next = 0;
  size_t used = 0;
};

TraceRecorder& TraceRecorder::instance() {
  static TraceRecorder* r = new TraceRecorder();  // immortal
  return *r;
}

namespace {

/// Returns the thread's ring to the recorder's free list at thread exit
/// so churning threads (shard ranks spawn fresh ones per call) reuse
/// rings instead of growing the list without bound.
struct TlRing {
  TraceRecorder::Ring* ring = nullptr;
  std::vector<TraceRecorder::Ring*>* free_list = nullptr;
  std::mutex* free_m = nullptr;
  ~TlRing() {
    if (ring && free_list) {
      std::lock_guard<std::mutex> lock(*free_m);
      free_list->push_back(ring);
    }
  }
};

thread_local TlRing tl_ring;

}  // namespace

TraceRecorder::Ring* TraceRecorder::acquire_ring() {
  std::lock_guard<std::mutex> lock(rings_m_);
  Ring* r;
  if (!free_rings_.empty()) {
    r = free_rings_.back();
    free_rings_.pop_back();
  } else {
    rings_.push_back(std::make_unique<Ring>());
    r = rings_.back().get();
    r->buf.resize(static_cast<size_t>(
        std::max(1, ring_spans_.load(std::memory_order_relaxed))));
  }
  tl_ring.ring = r;
  tl_ring.free_list = &free_rings_;
  tl_ring.free_m = &rings_m_;
  return r;
}

void TraceRecorder::configure(const TraceConfig& cfg) {
  ring_spans_.store(std::max(1, cfg.ring_spans), std::memory_order_relaxed);
  double rate = cfg.sample_rate;
  if (rate >= 1.0) {
    sample_threshold_.store(~0ull, std::memory_order_relaxed);
  } else if (rate <= 0.0) {
    sample_threshold_.store(0, std::memory_order_relaxed);
  } else {
    sample_threshold_.store(
        static_cast<uint64_t>(rate * 18446744073709551615.0),
        std::memory_order_relaxed);
  }
  enabled_.store(cfg.enabled, std::memory_order_relaxed);
}

uint64_t TraceRecorder::begin_trace() {
  if (!enabled()) return 0;
  const uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  const uint64_t threshold =
      sample_threshold_.load(std::memory_order_relaxed);
  if (threshold != ~0ull && splitmix64(id) > threshold) return 0;
  return id;
}

void TraceRecorder::record(const TraceSpan& s) {
  if (s.trace_id == 0 || !enabled()) return;
  Ring* r = tl_ring.ring;
  if (r == nullptr) r = acquire_ring();  // once per thread (warm-up)
  std::lock_guard<std::mutex> lock(r->m);
  r->buf[r->next] = s;
  r->next = (r->next + 1) % r->buf.size();
  if (r->used < r->buf.size()) ++r->used;
}

std::vector<TraceSpan> TraceRecorder::spans() const {
  std::vector<TraceSpan> out;
  std::lock_guard<std::mutex> lock(rings_m_);
  for (const auto& r : rings_) {
    std::lock_guard<std::mutex> rl(r->m);
    for (size_t i = 0; i < r->used; ++i) out.push_back(r->buf[i]);
  }
  return out;
}

std::vector<TraceSpan> TraceRecorder::spans_for(uint64_t trace_id) const {
  std::vector<TraceSpan> all = spans();
  std::vector<TraceSpan> out;
  for (const auto& s : all) {
    if (s.trace_id == trace_id) out.push_back(s);
  }
  return out;
}

void TraceRecorder::clear() {
  std::lock_guard<std::mutex> lock(rings_m_);
  for (const auto& r : rings_) {
    std::lock_guard<std::mutex> rl(r->m);
    r->next = 0;
    r->used = 0;
  }
}

namespace {

void append_flags_json(std::string& out, uint32_t flags) {
  static constexpr struct {
    uint32_t bit;
    const char* name;
  } kNames[] = {
      {kError, "error"},
      {kDegraded, "degraded"},
      {kCacheHit, "cache_hit"},
      {kFallback, "fallback"},
      {kFaultRetry, "retried"},
      {kVerifyFailed, "verify_failed"},
      {kPrefixResume, "prefix_resume"},
      {kWorkerLost, "worker_lost"},
  };
  out += "[";
  bool first = true;
  for (const auto& n : kNames) {
    if (!(flags & n.bit)) continue;
    if (!first) out += ", ";
    first = false;
    out += "\"";
    out += n.name;
    out += "\"";
  }
  out += "]";
}

void append_span_json(std::string& out, const TraceSpan& s, int depth,
                      bool open_children) {
  const std::string pad(static_cast<size_t>(depth) * 2 + 6, ' ');
  out += pad + "{\"stage\": \"" + s.stage + "\"";
  out += ", \"start_us\": " + std::to_string(s.start_us);
  out += ", \"dur_us\": " + std::to_string(s.end_us - s.start_us);
  if (s.flags) {
    out += ", \"flags\": ";
    append_flags_json(out, s.flags);
  }
  if (s.code >= 0) out += ", \"code\": " + std::to_string(s.code);
  if (s.rank >= 0) out += ", \"rank\": " + std::to_string(s.rank);
  if (s.extra != 0) out += ", \"extra\": " + std::to_string(s.extra);
  if (open_children) out += ", \"children\": [";
}

}  // namespace

std::string TraceRecorder::dump_json() const {
  std::vector<TraceSpan> all = spans();
  // Group by trace, then nest by time containment: sorting by
  // (start, -end) makes every span's parent the nearest still-open
  // enclosing interval — no parent ids needed, and it works for spans
  // written by different threads (queue vs halo ranks).
  std::stable_sort(all.begin(), all.end(),
                   [](const TraceSpan& a, const TraceSpan& b) {
                     if (a.trace_id != b.trace_id)
                       return a.trace_id < b.trace_id;
                     if (a.start_us != b.start_us)
                       return a.start_us < b.start_us;
                     return a.end_us > b.end_us;
                   });
  std::string out = "{\"traces\": [";
  bool first_trace = true;
  size_t i = 0;
  while (i < all.size()) {
    const uint64_t tid = all[i].trace_id;
    size_t j = i;
    while (j < all.size() && all[j].trace_id == tid) ++j;
    out += first_trace ? "\n" : ",\n";
    first_trace = false;
    out += "  {\"trace\": " + std::to_string(tid) + ", \"spans\": [\n";
    // Stack of open intervals; each frame remembers whether it already
    // emitted a child (for commas).
    struct Open {
      int64_t end_us;
      bool has_child = false;
    };
    std::vector<Open> stack;
    for (size_t k = i; k < j; ++k) {
      const TraceSpan& s = all[k];
      // A span is a child of the nearest open interval that contains
      // it; with the (start, -end) sort that is exactly "ends no later
      // than the top" (zero-length spans at a parent's end boundary —
      // resolve markers — stay children).
      while (!stack.empty() && s.end_us > stack.back().end_us) {
        stack.pop_back();
        out += "]}";
      }
      if (!stack.empty()) {
        if (stack.back().has_child) out += ",";
        stack.back().has_child = true;
        out += "\n";
      } else if (k != i) {
        out += ",\n";
      }
      append_span_json(out, s, static_cast<int>(stack.size()), true);
      stack.push_back({s.end_us});
    }
    while (!stack.empty()) {
      stack.pop_back();
      out += "]}";
    }
    out += "\n  ]}";
    i = j;
  }
  out += "\n]}\n";
  return out;
}

ScopedSpan::ScopedSpan(const char* stage) {
  auto& rec = TraceRecorder::instance();
  const uint64_t tid = current_trace();
  if (tid == 0 || !rec.enabled()) return;
  armed_ = true;
  span_.trace_id = tid;
  span_.stage = stage;
  span_.start_us = now_us();
}

ScopedSpan::~ScopedSpan() {
  if (!armed_) return;
  span_.end_us = now_us();
  TraceRecorder::instance().record(span_);
}

}  // namespace coastal::obs
