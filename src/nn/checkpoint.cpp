#include "nn/checkpoint.hpp"

namespace coastal::nn {

namespace {

thread_local bool t_in_checkpoint = false;

struct CheckpointRegionGuard {
  bool prev = t_in_checkpoint;
  CheckpointRegionGuard() { t_in_checkpoint = true; }
  ~CheckpointRegionGuard() { t_in_checkpoint = prev; }
};

}  // namespace

bool inside_checkpoint_region() { return t_in_checkpoint; }

Tensor checkpoint(const std::function<Tensor(const std::vector<Tensor>&)>& fn,
                  const std::vector<Tensor>& inputs,
                  const std::vector<Tensor>& params) {
  // If no grad is being recorded anyway (inference), just run the region.
  if (!tensor::grad_enabled()) return fn(inputs);

  // Forward without recording: interior activations die immediately.
  tensor::Shape out_shape;
  tensor::Storage out_data;
  {
    tensor::NoGradGuard ng;
    // Marks the region for fast paths that are NOT recompute-consistent
    // (none in-tree today: fused attention routes identically with and
    // without recording, so its initial pass matches the backward-time
    // recompute bitwise — see inside_checkpoint_region() in the header).
    CheckpointRegionGuard region;
    Tensor out = fn(inputs);
    out_shape = out.shape();
    out_data = tensor::Storage::copy_of(out.raw(), out.numel());
  }

  const size_t nparams = params.size();
  auto backward = [fn, inputs,
                   nparams](const Tensor& grad_out) -> std::vector<Tensor> {
    // Recompute with recording on, rooted at detached leaf copies of the
    // inputs, then backprop the incoming gradient through the local graph.
    std::vector<Tensor> leaves;
    leaves.reserve(inputs.size());
    for (const auto& t : inputs) {
      Tensor leaf = t.detach();
      leaf.set_requires_grad(true);
      leaves.push_back(leaf);
    }
    Tensor out;
    {
      tensor::GradModeGuard grad_on(true);
      out = fn(leaves);
      out.backward(grad_out);
    }
    std::vector<Tensor> grads;
    grads.reserve(leaves.size() + nparams);
    for (auto& leaf : leaves) {
      grads.push_back(leaf.grad());  // may be undefined if unused
    }
    // Param grads were accumulated directly into their .grad buffers by
    // the recompute backward; report "no edge gradient" for those slots.
    for (size_t i = 0; i < nparams; ++i) grads.emplace_back();
    return grads;
  };

  std::vector<Tensor> parents = inputs;
  parents.insert(parents.end(), params.begin(), params.end());
  return tensor::custom_op(std::move(out_shape), std::move(out_data),
                           "checkpoint", std::move(parents),
                           std::move(backward));
}

}  // namespace coastal::nn
