#pragma once

/// \file checkpoint.hpp
/// Activation checkpointing (Sec. III-D of the paper).
///
/// A checkpointed region runs its forward pass with autograd recording
/// disabled, so none of its interior activations are kept alive by the
/// graph; only the region's *inputs* are saved.  When the backward sweep
/// reaches the region, the forward is recomputed with recording enabled
/// and gradients flow through the freshly built local graph.  This trades
/// one extra forward for the interior-activation memory — which is what
/// let the paper double the per-GPU batch size (Fig. 9/10).

#include <functional>
#include <vector>

#include "tensor/tensor.hpp"

namespace coastal::nn {

using tensor::Tensor;

/// `fn` must be a pure function of its inputs (module weights may be
/// captured; they are re-read at recompute time, which is safe because the
/// optimizer only mutates weights after backward completes).
///
/// `params` lists the trainable tensors `fn` captures.  They are attached
/// as graph parents so the region is recorded even when no *input*
/// requires grad, and their gradients are produced by the recompute pass
/// (accumulated directly into their .grad buffers).
Tensor checkpoint(const std::function<Tensor(const std::vector<Tensor>&)>& fn,
                  const std::vector<Tensor>& inputs,
                  const std::vector<Tensor>& params = {});

/// True while the calling thread is inside a checkpoint region's initial
/// (recording-disabled) forward.  Ops that offer a faster inference-only
/// path (e.g. fused attention) must not take it there: the backward-time
/// recompute runs with recording enabled and would rebuild the region from
/// the reference path, so the saved output has to come from the reference
/// path too or gradients drift against the stored activations.
bool inside_checkpoint_region();

}  // namespace coastal::nn
