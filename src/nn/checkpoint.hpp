#pragma once

/// \file checkpoint.hpp
/// Activation checkpointing (Sec. III-D of the paper).
///
/// A checkpointed region runs its forward pass with autograd recording
/// disabled, so none of its interior activations are kept alive by the
/// graph; only the region's *inputs* are saved.  When the backward sweep
/// reaches the region, the forward is recomputed with recording enabled
/// and gradients flow through the freshly built local graph.  This trades
/// one extra forward for the interior-activation memory — which is what
/// let the paper double the per-GPU batch size (Fig. 9/10).

#include <functional>
#include <vector>

#include "tensor/tensor.hpp"

namespace coastal::nn {

using tensor::Tensor;

/// `fn` must be a pure function of its inputs (module weights may be
/// captured; they are re-read at recompute time, which is safe because the
/// optimizer only mutates weights after backward completes).
///
/// `params` lists the trainable tensors `fn` captures.  They are attached
/// as graph parents so the region is recorded even when no *input*
/// requires grad, and their gradients are produced by the recompute pass
/// (accumulated directly into their .grad buffers).
Tensor checkpoint(const std::function<Tensor(const std::vector<Tensor>&)>& fn,
                  const std::vector<Tensor>& inputs,
                  const std::vector<Tensor>& params = {});

/// True while the calling thread is inside a checkpoint region's initial
/// (recording-disabled) forward.
///
/// Contract for ops with a fast path: the region's saved output must match
/// the backward-time recompute (which runs with recording enabled), so a
/// fast path may ignore this guard **iff it is recompute-consistent** —
/// its route depends only on problem size/config, never on whether
/// recording is on, and both modes run the same kernel bitwise.  Fused
/// attention satisfies this since the flash backward landed: the initial
/// pass and the recompute both call `kernels::attention_fused` under the
/// same `attn_fused_min_n` gate, so it no longer consults this guard.
/// Only a fast path whose recording-mode equivalent diverges numerically
/// from its inference form must check this and fall back to its reference
/// implementation inside regions.
///
/// Corollary: recompute-consistency assumes the routing inputs are stable
/// between a region's initial forward and its backward-time recompute.
/// Mutating `tensor::kernels::config()` (e.g. `attn_fused_min_n`,
/// `attn_bq`/`attn_bkv`) between a checkpointed forward and
/// `loss.backward()` can route or block the recompute differently from
/// the saved output and silently drift gradients — change kernel config
/// only between whole training steps.
bool inside_checkpoint_region();

}  // namespace coastal::nn
