#include "nn/serialize.hpp"

#include <cstdint>
#include <fstream>
#include <map>

#include "util/check.hpp"

namespace coastal::nn {

namespace {

constexpr uint32_t kMagic = 0xC0A57A17u;

std::vector<std::pair<std::string, Tensor>> all_state(const Module& m) {
  auto state = m.named_parameters();
  for (auto& kv : m.named_buffers()) state.push_back(kv);
  return state;
}

template <typename T>
void write_pod(std::ofstream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <typename T>
void read_pod(std::ifstream& in, T& v) {
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
}

}  // namespace

void save_parameters(const Module& module, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  COASTAL_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  const auto state = all_state(module);
  write_pod(out, kMagic);
  write_pod(out, static_cast<uint64_t>(state.size()));
  for (const auto& [name, t] : state) {
    write_pod(out, static_cast<uint64_t>(name.size()));
    out.write(name.data(), static_cast<std::streamsize>(name.size()));
    write_pod(out, static_cast<uint64_t>(t.ndim()));
    for (int64_t d : t.shape()) write_pod(out, d);
    out.write(reinterpret_cast<const char*>(t.raw()),
              static_cast<std::streamsize>(t.numel() * sizeof(float)));
  }
  COASTAL_CHECK_MSG(out.good(), "write failed for " << path);
}

void load_parameters(Module& module, const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  COASTAL_CHECK_MSG(in.good(), "cannot open " << path << " for reading");
  uint32_t magic = 0;
  read_pod(in, magic);
  COASTAL_CHECK_MSG(magic == kMagic, path << " is not a parameter file");
  uint64_t count = 0;
  read_pod(in, count);

  std::map<std::string, Tensor> live;
  for (auto& [name, t] : all_state(module)) live.emplace(name, t);
  COASTAL_CHECK_MSG(count == live.size(),
                    "checkpoint has " << count << " entries, model has "
                                      << live.size());

  for (uint64_t i = 0; i < count; ++i) {
    uint64_t name_len = 0;
    read_pod(in, name_len);
    std::string name(name_len, '\0');
    in.read(name.data(), static_cast<std::streamsize>(name_len));
    uint64_t ndim = 0;
    read_pod(in, ndim);
    tensor::Shape shape(ndim);
    for (auto& d : shape) read_pod(in, d);

    auto it = live.find(name);
    COASTAL_CHECK_MSG(it != live.end(), "unknown parameter " << name);
    COASTAL_CHECK_MSG(it->second.shape() == shape,
                      "shape mismatch for " << name << ": file "
                                            << tensor::shape_str(shape)
                                            << " vs model "
                                            << tensor::shape_str(
                                                   it->second.shape()));
    in.read(reinterpret_cast<char*>(it->second.raw()),
            static_cast<std::streamsize>(it->second.numel() * sizeof(float)));
    COASTAL_CHECK_MSG(in.good(), "truncated parameter file " << path);
  }
}

}  // namespace coastal::nn
