#include "nn/module.hpp"

namespace coastal::nn {

Tensor& Module::register_parameter(const std::string& name, Tensor t) {
  t.set_requires_grad(true);
  params_.emplace_back(name, std::move(t));
  return params_.back().second;
}

Tensor& Module::register_buffer(const std::string& name, Tensor t) {
  buffers_.emplace_back(name, std::move(t));
  return buffers_.back().second;
}

void Module::collect_parameters(
    const std::string& prefix,
    std::vector<std::pair<std::string, Tensor>>& out) const {
  for (const auto& [name, t] : params_) out.emplace_back(prefix + name, t);
  for (const auto& [name, child] : children_)
    child->collect_parameters(prefix + name + ".", out);
}

void Module::collect_buffers(
    const std::string& prefix,
    std::vector<std::pair<std::string, Tensor>>& out) const {
  for (const auto& [name, t] : buffers_) out.emplace_back(prefix + name, t);
  for (const auto& [name, child] : children_)
    child->collect_buffers(prefix + name + ".", out);
}

std::vector<std::pair<std::string, Tensor>> Module::named_parameters() const {
  std::vector<std::pair<std::string, Tensor>> out;
  collect_parameters("", out);
  return out;
}

std::vector<std::pair<std::string, Tensor>> Module::named_buffers() const {
  std::vector<std::pair<std::string, Tensor>> out;
  collect_buffers("", out);
  return out;
}

std::vector<Tensor> Module::parameters() const {
  std::vector<Tensor> out;
  for (auto& [name, t] : named_parameters()) out.push_back(t);
  return out;
}

int64_t Module::num_parameters() const {
  int64_t n = 0;
  for (const auto& t : parameters()) n += t.numel();
  return n;
}

void Module::zero_grad() {
  for (auto& t : parameters()) t.zero_grad();
}

void Module::set_training(bool training) {
  training_ = training;
  for (auto& [name, child] : children_) child->set_training(training);
}

}  // namespace coastal::nn
