#include "nn/optimizer.hpp"

#include <cmath>

namespace coastal::nn {

Sgd::Sgd(std::vector<Tensor> params, float lr_in, float momentum)
    : Optimizer(std::move(params)), lr(lr_in), momentum_(momentum) {
  velocity_.resize(params_.size());
  for (size_t i = 0; i < params_.size(); ++i)
    velocity_[i].assign(static_cast<size_t>(params_[i].numel()), 0.0f);
}

void Sgd::step() {
  for (size_t i = 0; i < params_.size(); ++i) {
    Tensor g = params_[i].grad();
    if (!g.defined()) continue;
    float* p = params_[i].raw();
    const float* gp = g.raw();
    float* vel = velocity_[i].data();
    const int64_t n = params_[i].numel();
    if (momentum_ != 0.0f) {
      for (int64_t j = 0; j < n; ++j) {
        vel[j] = momentum_ * vel[j] + gp[j];
        p[j] -= lr * vel[j];
      }
    } else {
      for (int64_t j = 0; j < n; ++j) p[j] -= lr * gp[j];
    }
  }
}

Adam::Adam(std::vector<Tensor> params, float lr_in, float beta1, float beta2,
           float eps, float weight_decay, bool decoupled)
    : Optimizer(std::move(params)),
      lr(lr_in),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay),
      decoupled_(decoupled) {
  m_.resize(params_.size());
  v_.resize(params_.size());
  for (size_t i = 0; i < params_.size(); ++i) {
    m_[i].assign(static_cast<size_t>(params_[i].numel()), 0.0f);
    v_[i].assign(static_cast<size_t>(params_[i].numel()), 0.0f);
  }
}

void Adam::step() {
  ++t_;
  const float bc1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  const float bc2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (size_t i = 0; i < params_.size(); ++i) {
    Tensor g = params_[i].grad();
    if (!g.defined()) continue;
    float* p = params_[i].raw();
    const float* gp = g.raw();
    float* m = m_[i].data();
    float* v = v_[i].data();
    const int64_t n = params_[i].numel();
    for (int64_t j = 0; j < n; ++j) {
      float grad = gp[j];
      if (weight_decay_ != 0.0f && !decoupled_) grad += weight_decay_ * p[j];
      m[j] = beta1_ * m[j] + (1.0f - beta1_) * grad;
      v[j] = beta2_ * v[j] + (1.0f - beta2_) * grad * grad;
      const float mhat = m[j] / bc1;
      const float vhat = v[j] / bc2;
      float update = lr * mhat / (std::sqrt(vhat) + eps_);
      if (weight_decay_ != 0.0f && decoupled_) update += lr * weight_decay_ * p[j];
      p[j] -= update;
    }
  }
}

float clip_grad_norm(const std::vector<Tensor>& params, float max_norm) {
  double total_sq = 0.0;
  for (const auto& p : params) {
    Tensor g = p.grad();
    if (!g.defined()) continue;
    const float* gp = g.raw();
    const int64_t n = g.numel();
    for (int64_t j = 0; j < n; ++j)
      total_sq += static_cast<double>(gp[j]) * gp[j];
  }
  const float norm = static_cast<float>(std::sqrt(total_sq));
  if (norm > max_norm && norm > 0.0f) {
    const float scale = max_norm / norm;
    for (const auto& p : params) {
      Tensor g = p.grad();
      if (!g.defined()) continue;
      float* gp = g.raw();
      const int64_t n = g.numel();
      for (int64_t j = 0; j < n; ++j) gp[j] *= scale;
    }
  }
  return norm;
}

}  // namespace coastal::nn
