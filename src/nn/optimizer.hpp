#pragma once

/// \file optimizer.hpp
/// First-order optimizers over a parameter list.  Parameters are Tensor
/// handles shared with the model; step() updates them in place (outside
/// the autograd graph, like torch's optimizers).

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace coastal::nn {

using tensor::Tensor;

class Optimizer {
 public:
  explicit Optimizer(std::vector<Tensor> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  virtual void step() = 0;
  void zero_grad() {
    for (auto& p : params_) p.zero_grad();
  }

  const std::vector<Tensor>& params() const { return params_; }

 protected:
  std::vector<Tensor> params_;
};

/// Plain SGD with optional momentum — baseline and test reference.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<Tensor> params, float lr, float momentum = 0.0f);
  void step() override;

  float lr;

 private:
  float momentum_;
  std::vector<std::vector<float>> velocity_;
};

/// Adam / AdamW (decoupled weight decay when weight_decay > 0 and
/// `decoupled` is true), the optimizer used for surrogate training.
class Adam : public Optimizer {
 public:
  Adam(std::vector<Tensor> params, float lr, float beta1 = 0.9f,
       float beta2 = 0.999f, float eps = 1e-8f, float weight_decay = 0.0f,
       bool decoupled = true);
  void step() override;

  float lr;

 private:
  float beta1_, beta2_, eps_, weight_decay_;
  bool decoupled_;
  int64_t t_ = 0;
  std::vector<std::vector<float>> m_, v_;
};

/// Global L2-norm gradient clipping; returns the pre-clip norm.
float clip_grad_norm(const std::vector<Tensor>& params, float max_norm);

}  // namespace coastal::nn
