#include "nn/layers.hpp"

#include <cmath>

#include "util/check.hpp"

namespace coastal::nn {

namespace {
thread_local int64_t t_batch_stat_groups = 1;
}  // namespace

BatchStatScope::BatchStatScope(int64_t groups) : prev_(t_batch_stat_groups) {
  COASTAL_CHECK_MSG(groups >= 1, "BatchStatScope: groups must be >= 1");
  t_batch_stat_groups = groups;
}

BatchStatScope::~BatchStatScope() { t_batch_stat_groups = prev_; }

int64_t BatchStatScope::groups() { return t_batch_stat_groups; }

Linear::Linear(int64_t in_features, int64_t out_features, util::Rng& rng,
               bool bias)
    : in_(in_features), out_(out_features), has_bias_(bias) {
  // Xavier-uniform init, standard for transformer projections.
  const float bound =
      std::sqrt(6.0f / static_cast<float>(in_features + out_features));
  weight = register_parameter(
      "weight", Tensor::uniform({in_, out_}, rng, -bound, bound));
  if (bias) {
    this->bias = register_parameter("bias", Tensor::zeros({out_}));
  }
}

Tensor Linear::forward(const Tensor& x) const {
  COASTAL_CHECK_MSG(x.shape().back() == in_,
                    "Linear: input features " << x.shape().back() << " != "
                                              << in_);
  // Flatten leading dims so matmul sees [rows, in] — avoids materializing
  // broadcast batch logic for high-rank inputs.
  tensor::Shape lead(x.shape().begin(), x.shape().end() - 1);
  Tensor flat = x.reshape({-1, in_});
  Tensor y = flat.matmul(weight);
  if (has_bias_) y = y.add(bias);
  tensor::Shape out_shape = lead;
  out_shape.push_back(out_);
  return y.reshape(out_shape);
}

LayerNorm::LayerNorm(int64_t dim, float eps) : eps_(eps) {
  gamma = register_parameter("gamma", Tensor::ones({dim}));
  beta = register_parameter("beta", Tensor::zeros({dim}));
}

Tensor LayerNorm::forward(const Tensor& x) const {
  return x.layer_norm(gamma, beta, eps_);
}

BatchNorm::BatchNorm(int64_t channels, float eps, float momentum,
                     bool use_batch_stats_in_eval)
    : channels_(channels),
      eps_(eps),
      momentum_(momentum),
      use_batch_stats_in_eval_(use_batch_stats_in_eval) {
  gamma = register_parameter("gamma", Tensor::ones({channels}));
  beta = register_parameter("beta", Tensor::zeros({channels}));
  running_mean = register_buffer("running_mean", Tensor::zeros({channels}));
  running_var = register_buffer("running_var", Tensor::ones({channels}));
}

Tensor BatchNorm::forward(const Tensor& x) {
  COASTAL_CHECK_MSG(x.ndim() >= 2 && x.shape()[1] == channels_,
                    "BatchNorm: expected [B," << channels_ << ",...], got "
                                              << tensor::shape_str(x.shape()));
  // Move channels last: [B, C, S...] -> [B, S..., C] so stats reduce over
  // a flattened leading axis.
  std::vector<size_t> to_last(x.ndim());
  to_last[0] = 0;
  for (size_t i = 1; i + 1 < x.ndim(); ++i) to_last[i] = i + 1;
  to_last[x.ndim() - 1] = 1;
  Tensor xc = x.permute(to_last).reshape({-1, channels_});

  Tensor y;
  const int64_t groups = training() ? 1 : BatchStatScope::groups();
  if ((training() || use_batch_stats_in_eval_) && groups > 1) {
    // Micro-batched eval (see BatchStatScope): statistics per group of
    // consecutive batch entries.  mean_axis(1) over [G, R, C] accumulates
    // each group's R rows in the same ascending order as the [R, C]
    // axis-0 reduction below, so every group's output is bitwise what a
    // standalone B == 1 forward produces.
    const int64_t rows = xc.shape()[0];
    COASTAL_CHECK_MSG(rows % groups == 0,
                      "BatchStatScope groups " << groups
                                               << " do not divide batch rows "
                                               << rows);
    Tensor x3 = xc.reshape({groups, rows / groups, channels_});
    Tensor mean = x3.mean_axis(1, /*keepdim=*/true);          // [G, 1, C]
    Tensor centered = x3.sub(mean);
    Tensor var = centered.mul(centered).mean_axis(1, true);   // [G, 1, C]
    y = centered.div(var.add_scalar(eps_).sqrt())
            .reshape({rows, channels_});
  } else if (training() || use_batch_stats_in_eval_) {
    Tensor mean = xc.mean_axis(0, /*keepdim=*/true);              // [1, C]
    Tensor centered = xc.sub(mean);
    Tensor var = centered.mul(centered).mean_axis(0, true);       // [1, C]
    y = centered.div(var.add_scalar(eps_).sqrt());
    // Update running stats outside the graph (training only).
    if (training()) {
      tensor::NoGradGuard ng;
      const float m = momentum_;
      float* rm = running_mean.raw();
      float* rv = running_var.raw();
      const float* bm = mean.raw();
      const float* bv = var.raw();
      // Unbiased variance for the running buffer, as torch does.
      const auto n = static_cast<float>(xc.shape()[0]);
      const float unbias = n > 1.0f ? n / (n - 1.0f) : 1.0f;
      for (int64_t c = 0; c < channels_; ++c) {
        rm[c] = (1.0f - m) * rm[c] + m * bm[c];
        rv[c] = (1.0f - m) * rv[c] + m * bv[c] * unbias;
      }
    }
  } else {
    y = xc.sub(running_mean.reshape({1, channels_}))
            .div(running_var.reshape({1, channels_}).add_scalar(eps_).sqrt());
  }
  y = y.mul(gamma).add(beta);

  // Restore [B, C, S...].
  tensor::Shape mid_shape;
  mid_shape.push_back(x.shape()[0]);
  for (size_t i = 2; i < x.ndim(); ++i) mid_shape.push_back(x.shape()[i]);
  mid_shape.push_back(channels_);
  Tensor ys = y.reshape(mid_shape);
  std::vector<size_t> to_first(x.ndim());
  to_first[0] = 0;
  to_first[1] = x.ndim() - 1;
  for (size_t i = 2; i < x.ndim(); ++i) to_first[i] = i - 1;
  return ys.permute(to_first);
}

Mlp::Mlp(int64_t dim, int64_t hidden, util::Rng& rng) {
  fc1_ = register_module<Linear>("fc1", dim, hidden, rng);
  fc2_ = register_module<Linear>("fc2", hidden, dim, rng);
}

Tensor Mlp::forward(const Tensor& x) const {
  return fc2_->forward(fc1_->forward(x).gelu());
}

}  // namespace coastal::nn
