#include "nn/attention.hpp"

#include <cmath>

namespace coastal::nn {

MultiHeadSelfAttention::MultiHeadSelfAttention(int64_t dim, int64_t heads,
                                               util::Rng& rng)
    : dim_(dim), heads_(heads), head_dim_(dim / heads) {
  COASTAL_CHECK_MSG(dim % heads == 0,
                    "attention dim " << dim << " not divisible by " << heads);
  scale_ = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  qkv_ = register_module<Linear>("qkv", dim, 3 * dim, rng);
  proj_ = register_module<Linear>("proj", dim, dim, rng);
}

Tensor MultiHeadSelfAttention::forward(const Tensor& x,
                                       const Tensor& mask) const {
  COASTAL_CHECK(x.ndim() == 3 && x.shape()[2] == dim_);
  const int64_t B = x.shape()[0];
  const int64_t N = x.shape()[1];

  // [B, N, 3C] -> [B, N, 3, h, d] -> [3, B, h, N, d]
  Tensor qkv = qkv_->forward(x)
                   .reshape({B, N, 3, heads_, head_dim_})
                   .permute({2, 0, 3, 1, 4});
  Tensor q = qkv.slice(0, 0, 1).reshape({B, heads_, N, head_dim_});
  Tensor k = qkv.slice(0, 1, 1).reshape({B, heads_, N, head_dim_});
  Tensor v = qkv.slice(0, 2, 1).reshape({B, heads_, N, head_dim_});

  Tensor scores =
      q.matmul(k.transpose_last()).mul_scalar(scale_);  // [B, h, N, N]

  if (mask.defined()) {
    COASTAL_CHECK(mask.ndim() == 3 && mask.shape()[1] == N &&
                  mask.shape()[2] == N);
    const int64_t groups = mask.shape()[0];
    COASTAL_CHECK_MSG(B % groups == 0,
                      "attention mask groups " << groups
                                               << " do not divide batch " << B);
    const int64_t rep = B / groups;
    Tensor s5 = scores.reshape({rep, groups, heads_, N, N});
    Tensor m5 = mask.reshape({1, groups, 1, N, N});
    scores = s5.add(m5).reshape({B, heads_, N, N});
  }

  Tensor attn = scores.softmax_lastdim();
  Tensor out = attn.matmul(v);                     // [B, h, N, d]
  out = out.permute({0, 2, 1, 3}).reshape({B, N, dim_});
  return proj_->forward(out);
}

}  // namespace coastal::nn
