#include "nn/attention.hpp"

#include <cmath>

#include "nn/layers.hpp"
#include "tensor/kernels.hpp"

namespace coastal::nn {

namespace ker = tensor::kernels;

namespace {

bool carries_graph(const tensor::Tensor& t) {
  return t.defined() && (t.requires_grad() || t.has_grad_fn());
}

}  // namespace

Tensor split_qkv_head(const Tensor& qkv, int64_t heads, int which) {
  COASTAL_CHECK(qkv.ndim() == 3 && which >= 0 && which < 3);
  const int64_t B = qkv.shape()[0];
  const int64_t N = qkv.shape()[1];
  const int64_t C = qkv.shape()[2] / 3;
  COASTAL_CHECK(qkv.shape()[2] == 3 * C && C % heads == 0);
  const int64_t hd = C / heads;

  // out[b, h, n, d] = qkv[b, n, which*C + h*hd + d]: a strided gather.
  tensor::Storage out = tensor::Storage::uninit(B * heads * N * hd);
  ker::permute_gather(qkv.raw() + which * C, out.data(), {B, heads, N, hd},
                      {N * 3 * C, hd, 3 * C, 1});

  return tensor::custom_op(
      {B, heads, N, hd}, std::move(out), "split_qkv_head", {qkv},
      [B, N, C, heads, hd, which](const Tensor& g) -> std::vector<Tensor> {
        // Scatter g back into a zero [B, N, 3C] buffer; each (b, n) row is
        // written by exactly one task.
        tensor::Storage gq = tensor::Storage::zeros(B * N * 3 * C);
        const float* pg = g.raw();
        float* pout = gq.data();
        ker::parallel_for(B * N, C, [&](int64_t lo, int64_t hi) {
          for (int64_t t = lo; t < hi; ++t) {
            const int64_t b = t / N, n = t % N;
            float* row = pout + t * 3 * C + which * C;
            for (int64_t h = 0; h < heads; ++h) {
              const float* src = pg + ((b * heads + h) * N + n) * hd;
              for (int64_t d = 0; d < hd; ++d) row[h * hd + d] = src[d];
            }
          }
        });
        return {Tensor::from_storage({B, N, 3 * C}, std::move(gq))};
      });
}

Tensor merge_heads(const Tensor& x) {
  COASTAL_CHECK(x.ndim() == 4);
  const int64_t B = x.shape()[0];
  const int64_t heads = x.shape()[1];
  const int64_t N = x.shape()[2];
  const int64_t hd = x.shape()[3];
  const int64_t C = heads * hd;

  // out[b, n, h*hd + d] = x[b, h, n, d]
  tensor::Storage out = tensor::Storage::uninit(B * N * C);
  ker::permute_gather(x.raw(), out.data(), {B, N, heads, hd},
                      {heads * N * hd, hd, N * hd, 1});

  return tensor::custom_op(
      {B, N, C}, std::move(out), "merge_heads", {x},
      [B, N, C, heads, hd](const Tensor& g) -> std::vector<Tensor> {
        // The inverse is also a pure gather: gx[b, h, n, d] = g[b, n, h*hd+d].
        tensor::Storage gx = tensor::Storage::uninit(B * heads * N * hd);
        ker::permute_gather(g.raw(), gx.data(), {B, heads, N, hd},
                            {N * C, hd, C, 1});
        return {Tensor::from_storage({B, heads, N, hd}, std::move(gx))};
      });
}

Tensor fused_attention(const Tensor& q, const Tensor& k, const Tensor& v,
                       const Tensor& mask, float scale) {
  COASTAL_CHECK(q.ndim() == 4 && k.shape() == q.shape() &&
                v.shape() == q.shape());
  const int64_t B = q.shape()[0];
  const int64_t heads = q.shape()[1];
  const int64_t N = q.shape()[2];
  const int64_t hd = q.shape()[3];
  const int64_t nbatch = B * heads;

  // The fused kernels treat the mask as a constant additive bias.  Reject
  // any recorded mask gradient loudly — even when q/k/v record nothing —
  // instead of silently returning a graph that never populates mask.grad.
  COASTAL_CHECK_MSG(!(tensor::grad_enabled() && carries_graph(mask)),
                    "fused_attention treats the mask as a constant bias; "
                    "a differentiable mask must take the unfused path");
  const bool record = tensor::grad_enabled() &&
                      (carries_graph(q) || carries_graph(k) ||
                       carries_graph(v));

  // Per-(batch × head) additive-bias offsets: batch b uses mask group
  // b % groups (window index is the fastest-varying component of B).
  // Inference rebuilds them into per-thread workspace scratch (retained
  // capacity — no allocation in steady state); the training path keeps a
  // local vector because the backward lambda captures it by value.
  const float* mask_ptr = nullptr;
  std::vector<int64_t> mask_off_local;
  std::vector<int64_t>& mask_off =
      record ? mask_off_local : tensor::workspace().mask_off;
  mask_off.clear();
  if (mask.defined()) {
    COASTAL_CHECK(mask.ndim() == 3 && mask.shape()[1] == N &&
                  mask.shape()[2] == N);
    const int64_t groups = mask.shape()[0];
    COASTAL_CHECK_MSG(B % groups == 0,
                      "attention mask groups " << groups
                                               << " do not divide batch " << B);
    mask_ptr = mask.raw();
    mask_off.resize(static_cast<size_t>(nbatch));
    for (int64_t e = 0; e < nbatch; ++e)
      mask_off[static_cast<size_t>(e)] = ((e / heads) % groups) * N * N;
  }

  tensor::Storage out = tensor::Storage::uninit(nbatch * N * hd);
  if (!record) {
    ker::attention_fused(q.raw(), k.raw(), v.raw(), out.data(), nbatch, N, N,
                         hd, scale, mask_ptr, mask_off);
    return Tensor::from_storage({B, heads, N, hd}, std::move(out));
  }

  // Training forward: same kernel, but save the per-row (max, exp-sum)
  // statistics — 2 floats per query row instead of the N scores the
  // unfused path stashes — and record a node whose backward re-streams
  // K/V blocks (kernels::attention_fused_backward).
  auto stats =
      std::make_shared<std::vector<float>>(static_cast<size_t>(nbatch * N * 2));
  ker::attention_fused(q.raw(), k.raw(), v.raw(), out.data(), nbatch, N, N,
                       hd, scale, mask_ptr, mask_off, stats->data());
  // The backward needs O (for Δ = Σ dO∘O), which is exactly this node's
  // own output.  Capturing the result Tensor would create a node → lambda
  // → result cycle and leak the graph; copying the buffer (the
  // softmax_lastdim idiom) would keep a second [B, h, N, d] alive per
  // layer.  Instead capture a weak reference, filled in after custom_op
  // returns: the engine only invokes a node's backward through its output
  // impl, so the lock cannot fail while a legitimate backward runs.
  auto o_slot = std::make_shared<std::weak_ptr<tensor::TensorImpl>>();
  Tensor qt = q, kt = k, vt = v, mt = mask;
  std::vector<Tensor> parents = {q, k, v};
  if (mask.defined()) parents.push_back(mask);
  const bool has_mask = mask.defined();
  Tensor result = tensor::custom_op(
      {B, heads, N, hd}, std::move(out), "fused_attention",
      std::move(parents),
      [qt, kt, vt, mt, o_slot, stats, mask_off, has_mask, nbatch, B, heads,
       N, hd, scale](const Tensor& g) -> std::vector<Tensor> {
        const std::shared_ptr<tensor::TensorImpl> o_impl = o_slot->lock();
        COASTAL_CHECK_MSG(o_impl != nullptr,
                          "fused_attention backward ran without its output");
        tensor::Storage dq = tensor::Storage::uninit(nbatch * N * hd);
        tensor::Storage dk = tensor::Storage::uninit(nbatch * N * hd);
        tensor::Storage dv = tensor::Storage::uninit(nbatch * N * hd);
        ker::attention_fused_backward(
            qt.raw(), kt.raw(), vt.raw(), o_impl->data.data(), g.raw(),
            stats->data(), dq.data(), dk.data(), dv.data(), nbatch, N, N, hd,
            scale, has_mask ? mt.raw() : nullptr, mask_off);
        std::vector<Tensor> grads;
        grads.reserve(has_mask ? 4 : 3);
        grads.push_back(
            Tensor::from_storage({B, heads, N, hd}, std::move(dq)));
        grads.push_back(
            Tensor::from_storage({B, heads, N, hd}, std::move(dk)));
        grads.push_back(
            Tensor::from_storage({B, heads, N, hd}, std::move(dv)));
        if (has_mask) grads.emplace_back();  // constant additive bias
        return grads;
      });
  *o_slot = result.impl();
  return result;
}

MultiHeadSelfAttention::MultiHeadSelfAttention(int64_t dim, int64_t heads,
                                               util::Rng& rng)
    : dim_(dim), heads_(heads), head_dim_(dim / heads) {
  COASTAL_CHECK_MSG(dim % heads == 0,
                    "attention dim " << dim << " not divisible by " << heads);
  scale_ = 1.0f / std::sqrt(static_cast<float>(head_dim_));
  qkv_ = register_module<Linear>("qkv", dim, 3 * dim, rng);
  proj_ = register_module<Linear>("proj", dim, dim, rng);
}

Tensor MultiHeadSelfAttention::forward(const Tensor& x,
                                       const Tensor& mask) const {
  COASTAL_CHECK(x.ndim() == 3 && x.shape()[2] == dim_);
  const int64_t B = x.shape()[0];
  const int64_t N = x.shape()[1];

  // Head slices come straight out of the packed [B, N, 3C] projection —
  // no [3, B, h, N, d] permute or reshape copies.
  Tensor qkv = qkv_->forward(x);
  Tensor q = split_qkv_head(qkv, heads_, 0);
  Tensor k = split_qkv_head(qkv, heads_, 1);
  Tensor v = split_qkv_head(qkv, heads_, 2);

  if (mask.defined()) {
    COASTAL_CHECK(mask.ndim() == 3 && mask.shape()[1] == N &&
                  mask.shape()[2] == N);
    COASTAL_CHECK_MSG(B % mask.shape()[0] == 0,
                      "attention mask groups " << mask.shape()[0]
                                               << " do not divide batch " << B);
  }

  // Both inference and training forwards stream through the fused
  // flash-style kernel once the window is big enough to amortize its
  // per-block bookkeeping.  A training forward records a node holding only
  // the [B, h, N] row max/sum statistics and backpropagates through the
  // recompute-based flash backward — no [B, h, N, N] score or dScore
  // tensor exists on either pass.  The gate is memory-aware: in auto mode
  // it routes on the *materialized* B·h·N² score working set against the
  // measured per-head-dim cache-collapse budget (large serving
  // micro-batches push the unfused path out of cache at much smaller N),
  // while an explicit attn_fused_min_n stays a pure N threshold.  Because
  // the gate below depends only on shapes and the config — never on
  // whether recording is on — a checkpointed
  // region's initial (recording-off) pass and its backward-time recompute
  // take the *same* path, so the saved region output always matches the
  // recompute bitwise (see nn::inside_checkpoint_region()).  The unfused
  // path below remains the reference implementation; it also covers the
  // (never-trained-in-practice) case of a mask that itself carries a
  // graph, which the fused kernel treats as a constant bias.  Note the
  // mask test deliberately ignores grad_enabled(): requires_grad/grad_fn
  // are tensor properties stable across recording toggles, so a
  // checkpoint region's initial (recording-off) pass and its recompute
  // still route identically.  (A differentiable mask *built inside* a
  // checkpoint region would not be stable — but its gradient would be
  // discarded by nn::checkpoint anyway, and fused_attention rejects a
  // recorded mask gradient loudly.)
  const bool mask_grad = carries_graph(mask);
  // Serving micro-batches stack G independent requests along the batch
  // axis (nn::BatchStatScope).  Routing divides them back out, so a
  // request's kernel path — like its BatchNorm statistics — never
  // depends on what it happened to be coalesced with: fused and unfused
  // outputs agree only to float rounding, and a batch-dependent flip
  // would break the serving layer's bitwise-serial contract.  Training
  // ignores the scope (mirroring BatchNorm), so a checkpointed region's
  // backward-time recompute routes exactly like its recorded pass.
  const int64_t groups = training() ? 1 : BatchStatScope::groups();
  COASTAL_CHECK_MSG(groups <= 1 || B % groups == 0,
                    "BatchStatScope groups " << groups
                                             << " do not divide attention "
                                                "batch " << B);
  const int64_t route_b = groups > 1 ? B / groups : B;
  Tensor out;  // [B, h, N, d]
  if (ker::fused_attention_wins(route_b * heads_, N, head_dim_) &&
      !mask_grad) {
    out = fused_attention(q, k, v, mask, scale_);
  } else {
    Tensor scores =
        q.matmul(k.transpose_last()).mul_scalar(scale_);  // [B, h, N, N]

    if (mask.defined()) {
      const int64_t groups = mask.shape()[0];
      Tensor s5 = scores.reshape({B / groups, groups, heads_, N, N});
      Tensor m5 = mask.reshape({1, groups, 1, N, N});
      scores = s5.add(m5).reshape({B, heads_, N, N});
    }

    Tensor attn = scores.softmax_lastdim();
    out = attn.matmul(v);
  }
  out = merge_heads(out);                          // [B, N, C]
  return proj_->forward(out);
}

}  // namespace coastal::nn
