#pragma once

/// \file layers.hpp
/// Core layers used by the surrogate: Linear, LayerNorm, BatchNorm, MLP.
/// Conventions: token tensors are channel-last ([..., C]); field tensors in
/// the conv path are channel-first ([B, C, spatial...]).

#include <memory>

#include "nn/module.hpp"
#include "util/rng.hpp"

namespace coastal::nn {

/// y = x W + b with W of shape [in, out] (stored pre-transposed so the
/// forward is a single matmul on channel-last inputs).
class Linear : public Module {
 public:
  Linear(int64_t in_features, int64_t out_features, util::Rng& rng,
         bool bias = true);

  Tensor forward(const Tensor& x) const;

  int64_t in_features() const { return in_; }
  int64_t out_features() const { return out_; }
  Tensor weight;  ///< [in, out]
  Tensor bias;    ///< [out] (undefined when bias=false)

 private:
  int64_t in_, out_;
  bool has_bias_;
};

/// LayerNorm over the last dimension with learnable affine.
class LayerNorm : public Module {
 public:
  explicit LayerNorm(int64_t dim, float eps = 1e-5f);

  Tensor forward(const Tensor& x) const;

  Tensor gamma, beta;

 private:
  float eps_;
};

/// BatchNorm over the channel axis of a channel-first tensor
/// [B, C, spatial...].  Tracks running statistics for eval mode, as in the
/// paper's decoder (transposed conv -> BatchNorm -> GELU).
///
/// `use_batch_stats_in_eval`: with per-GPU batches of 1-2 samples (all an
/// 80 GB A100 fits at full mesh scale), running averages are dominated by
/// per-sample variation (tidal phase) and are unrepresentative at
/// inference.  Setting this flag normalizes with the current batch's
/// statistics in eval mode too — deterministic per sample, and the
/// standard small-batch remedy.  Running stats are still tracked for
/// inspection.
/// Scoped marker (thread-local, nests): the calling thread is evaluating a
/// micro-batch of `groups` *independent* requests stacked along the batch
/// axis.  While active, an eval-mode BatchNorm with use_batch_stats_in_eval
/// computes its statistics per group of batch-dim/groups consecutive
/// entries instead of over the whole batch — each request is normalized by
/// exactly the statistics it would see served alone, so a micro-batched
/// forward is bitwise identical per request to B separate forwards (the
/// per-group reductions visit the same values in the same order as the
/// B == 1 reduction).  Without this, batching would leak one request's
/// tidal phase into another's normalization.  The attention modules also
/// consult the scope: the memory-aware fused-routing gate divides the
/// stacked batch back out, so a request's kernel path never depends on
/// what it was coalesced with.  The serving scheduler wraps every
/// coalesced forward in one; single-request paths need nothing
/// (groups == 1 is the historic behavior).  Training is unaffected —
/// modules read the scope only in eval mode.
class BatchStatScope {
 public:
  explicit BatchStatScope(int64_t groups);
  ~BatchStatScope();
  BatchStatScope(const BatchStatScope&) = delete;
  BatchStatScope& operator=(const BatchStatScope&) = delete;

  /// Groups active on this thread; 1 when no scope is open.
  static int64_t groups();

 private:
  int64_t prev_;
};

class BatchNorm : public Module {
 public:
  explicit BatchNorm(int64_t channels, float eps = 1e-5f,
                     float momentum = 0.1f,
                     bool use_batch_stats_in_eval = false);

  Tensor forward(const Tensor& x);

  Tensor gamma, beta;
  Tensor running_mean, running_var;

 private:
  int64_t channels_;
  float eps_, momentum_;
  bool use_batch_stats_in_eval_;
};

/// Two-layer MLP with GELU, the Swin block feed-forward:
/// Linear(dim, hidden) -> GELU -> Linear(hidden, dim).
class Mlp : public Module {
 public:
  Mlp(int64_t dim, int64_t hidden, util::Rng& rng);

  Tensor forward(const Tensor& x) const;

 private:
  std::shared_ptr<Linear> fc1_, fc2_;
};

}  // namespace coastal::nn
