#pragma once

/// \file attention.hpp
/// Multi-head self-attention over token sequences (Eq. 1-2 of the paper).
/// The Swin-specific windowing lives in core/window4d.*; this module sees
/// already-windowed tokens of shape [B, N, C] where B = batch * n_windows
/// and N = window volume.

#include <memory>

#include "nn/layers.hpp"

namespace coastal::nn {

using tensor::Tensor;

/// Fast path for unpacking a fused QKV projection: slices head group
/// `which` (0 = Q, 1 = K, 2 = V) out of [B, N, 3C] directly into
/// [B, heads, N, C/heads], skipping the [3, B, h, N, d] permute and the
/// reshape copy the naive path materializes.  Differentiable.
Tensor split_qkv_head(const Tensor& qkv, int64_t heads, int which);

/// Inverse of head splitting for the attention output:
/// [B, heads, N, d] -> [B, N, heads*d], fusing permute + reshape into one
/// gather (and its backward into one gather too).  Differentiable.
Tensor merge_heads(const Tensor& x);

/// Flash-style fused scaled-dot-product attention.  q/k/v are
/// [B, heads, N, d]; `mask` (optional) is the additive [groups, N, N]
/// window bias with groups dividing B (window index fastest-varying in B,
/// as produced by window partitioning).  Streams K/V blocks through
/// `tensor::kernels::attention_fused`, never materializing the
/// [B, heads, N, N] score tensor.
///
/// **Differentiable.**  When autograd is recording and q/k/v carry a
/// graph, the forward additionally saves the [B, heads, N] online-softmax
/// row statistics (max + exp-sum, 2 floats per row) and its output, and
/// the recorded node backpropagates through
/// `tensor::kernels::attention_fused_backward` — a recompute-based flash
/// backward that re-streams K/V blocks, so neither the score nor the
/// dScore tensor is ever materialized on the training path either.  The
/// mask is treated as a constant additive bias (the cached shifted-window
/// mask never trains); whenever autograd is recording, a mask that
/// carries a graph is rejected with an error — even if q/k/v record
/// nothing, so a mask gradient can never be dropped silently.  Route such
/// calls through the unfused reference path instead.
Tensor fused_attention(const Tensor& q, const Tensor& k, const Tensor& v,
                       const Tensor& mask, float scale);

class MultiHeadSelfAttention : public Module {
 public:
  /// `dim` must be divisible by `heads`.
  MultiHeadSelfAttention(int64_t dim, int64_t heads, util::Rng& rng);

  /// x: [B, N, C].  `mask` (optional): additive attention bias of shape
  /// [groups, N, N] with 0 for allowed and a large negative value for
  /// disallowed pairs — the shifted-window cross-boundary mask.  When
  /// defined, B must be divisible by `groups` and window index must be the
  /// fastest-varying component of B (i.e. B = batch * groups with groups
  /// contiguous), which is how window partitioning lays tokens out.
  Tensor forward(const Tensor& x, const Tensor& mask = Tensor()) const;

  int64_t dim() const { return dim_; }
  int64_t heads() const { return heads_; }

 private:
  int64_t dim_, heads_, head_dim_;
  float scale_;
  std::shared_ptr<Linear> qkv_, proj_;
};

}  // namespace coastal::nn
