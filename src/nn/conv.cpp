#include "nn/conv.hpp"

#include <numeric>

namespace coastal::nn {

namespace detail {

namespace {

int64_t prod(const std::vector<int64_t>& v) {
  int64_t p = 1;
  for (int64_t x : v) p *= x;
  return p;
}

}  // namespace

Tensor blocks_to_tokens(const Tensor& x, const std::vector<int64_t>& kernel) {
  const size_t k = kernel.size();
  COASTAL_CHECK_MSG(x.ndim() == k + 2,
                    "conv input rank " << x.ndim() << " != spatial rank " << k
                                       << " + 2");
  const int64_t B = x.shape()[0];
  const int64_t C = x.shape()[1];
  tensor::Shape expanded{B, C};
  std::vector<int64_t> coarse(k);
  for (size_t i = 0; i < k; ++i) {
    const int64_t d = x.shape()[i + 2];
    COASTAL_CHECK_MSG(d % kernel[i] == 0, "spatial dim " << d
                                                          << " not divisible by kernel "
                                                          << kernel[i]);
    coarse[i] = d / kernel[i];
    expanded.push_back(coarse[i]);
    expanded.push_back(kernel[i]);
  }
  Tensor r = x.reshape(expanded);
  // [B, C, c1, k1, ...] -> [B, c1..ck, C, k1..kk]
  std::vector<size_t> perm;
  perm.push_back(0);
  for (size_t i = 0; i < k; ++i) perm.push_back(2 + 2 * i);
  perm.push_back(1);
  for (size_t i = 0; i < k; ++i) perm.push_back(3 + 2 * i);
  Tensor p = r.permute(perm);
  return p.reshape({B, prod(coarse), C * prod(kernel)});
}

Tensor tokens_to_blocks(const Tensor& tokens, int64_t channels,
                        const std::vector<int64_t>& coarse,
                        const std::vector<int64_t>& kernel) {
  const size_t k = kernel.size();
  COASTAL_CHECK(coarse.size() == k && tokens.ndim() == 3);
  const int64_t B = tokens.shape()[0];
  COASTAL_CHECK(tokens.shape()[1] == prod(coarse));
  COASTAL_CHECK(tokens.shape()[2] == channels * prod(kernel));

  tensor::Shape expanded{B};
  for (int64_t c : coarse) expanded.push_back(c);
  expanded.push_back(channels);
  for (int64_t kk : kernel) expanded.push_back(kk);
  Tensor r = tokens.reshape(expanded);
  // [B, c1..ck, C, k1..kk] -> [B, C, c1, k1, c2, k2, ...]
  std::vector<size_t> perm;
  perm.push_back(0);
  perm.push_back(1 + k);  // C
  for (size_t i = 0; i < k; ++i) {
    perm.push_back(1 + i);          // c_i
    perm.push_back(2 + k + i);      // k_i
  }
  Tensor p = r.permute(perm);
  tensor::Shape out_shape{B, channels};
  for (size_t i = 0; i < k; ++i) out_shape.push_back(coarse[i] * kernel[i]);
  return p.reshape(out_shape);
}

}  // namespace detail

PatchConvNd::PatchConvNd(int64_t in_channels, int64_t out_channels,
                         std::vector<int64_t> kernel, util::Rng& rng)
    : in_(in_channels), out_(out_channels), kernel_(std::move(kernel)) {
  int64_t kprod = 1;
  for (int64_t k : kernel_) {
    COASTAL_CHECK_MSG(k >= 1, "kernel entries must be >= 1");
    kprod *= k;
  }
  proj_ = register_module<Linear>("proj", in_ * kprod, out_, rng);
}

Tensor PatchConvNd::forward(const Tensor& x) const {
  COASTAL_CHECK(x.shape()[1] == in_);
  const int64_t B = x.shape()[0];
  std::vector<int64_t> coarse(kernel_.size());
  for (size_t i = 0; i < kernel_.size(); ++i)
    coarse[i] = x.shape()[i + 2] / kernel_[i];

  Tensor tokens = detail::blocks_to_tokens(x, kernel_);
  Tensor projected = proj_->forward(tokens);  // [B, nb, out]

  tensor::Shape grid{B};
  for (int64_t c : coarse) grid.push_back(c);
  grid.push_back(out_);
  Tensor g = projected.reshape(grid);
  std::vector<size_t> perm;
  perm.push_back(0);
  perm.push_back(kernel_.size() + 1);  // channels
  for (size_t i = 0; i < kernel_.size(); ++i) perm.push_back(1 + i);
  return g.permute(perm);
}

PatchConvTransposeNd::PatchConvTransposeNd(int64_t in_channels,
                                           int64_t out_channels,
                                           std::vector<int64_t> kernel,
                                           util::Rng& rng)
    : in_(in_channels), out_(out_channels), kernel_(std::move(kernel)) {
  int64_t kprod = 1;
  for (int64_t k : kernel_) {
    COASTAL_CHECK_MSG(k >= 1, "kernel entries must be >= 1");
    kprod *= k;
  }
  proj_ = register_module<Linear>("proj", in_, out_ * kprod, rng);
}

Tensor PatchConvTransposeNd::forward(const Tensor& x) const {
  COASTAL_CHECK(x.ndim() == kernel_.size() + 2 && x.shape()[1] == in_);
  const int64_t B = x.shape()[0];
  std::vector<int64_t> coarse(kernel_.size());
  int64_t nb = 1;
  for (size_t i = 0; i < kernel_.size(); ++i) {
    coarse[i] = x.shape()[i + 2];
    nb *= coarse[i];
  }
  // Channel-last tokens: [B, nb, Cin]
  std::vector<size_t> perm;
  perm.push_back(0);
  for (size_t i = 0; i < kernel_.size(); ++i) perm.push_back(2 + i);
  perm.push_back(1);
  Tensor tokens = x.permute(perm).reshape({B, nb, in_});
  Tensor projected = proj_->forward(tokens);  // [B, nb, Cout * kprod]
  return detail::tokens_to_blocks(projected, out_, coarse, kernel_);
}

PointwiseConvNd::PointwiseConvNd(int64_t in_channels, int64_t out_channels,
                                 util::Rng& rng)
    : in_(in_channels), out_(out_channels) {
  proj_ = register_module<Linear>("proj", in_, out_, rng);
}

Tensor PointwiseConvNd::forward(const Tensor& x) const {
  COASTAL_CHECK(x.ndim() >= 2 && x.shape()[1] == in_);
  const size_t nd = x.ndim();
  std::vector<size_t> to_last(nd);
  to_last[0] = 0;
  for (size_t i = 1; i + 1 < nd; ++i) to_last[i] = i + 1;
  to_last[nd - 1] = 1;
  Tensor tokens = x.permute(to_last);
  Tensor projected = proj_->forward(tokens);
  std::vector<size_t> to_first(nd);
  to_first[0] = 0;
  to_first[1] = nd - 1;
  for (size_t i = 2; i < nd; ++i) to_first[i] = i - 1;
  return projected.permute(to_first);
}

}  // namespace coastal::nn
