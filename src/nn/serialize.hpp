#pragma once

/// \file serialize.hpp
/// Binary save/load of a module's parameters and buffers, keyed by dotted
/// path name.  Format: magic, count, then per entry
/// (name_len, name, ndim, dims..., float32 data).  Loading verifies both
/// the name set and every shape, so a checkpoint from a differently
/// configured model fails loudly instead of silently misloading.

#include <string>

#include "nn/module.hpp"

namespace coastal::nn {

void save_parameters(const Module& module, const std::string& path);
void load_parameters(Module& module, const std::string& path);

}  // namespace coastal::nn
