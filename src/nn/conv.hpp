#pragma once

/// \file conv.hpp
/// Convolution layers for the patch-embedding encoder front end and the
/// transposed-convolution decoder.
///
/// The surrogate only ever uses convolutions whose kernel equals the
/// stride: patch embedding is a kernel==stride conv (ViT-style), patch
/// recovery is a kernel==stride transposed conv, and the channel-mixing
/// convs are 1x1.  Restricting to these cases lets every conv be an exact
/// space<->channel rearrangement plus one Linear, which keeps the whole
/// model on the (well-tested) matmul path with correct gradients.  The
/// constructors enforce the restriction loudly.
///
/// Layout: channel-first, [B, C, d1, d2, ..., dk] for k spatial dims
/// (k = 2 for the zeta plane, 3 for u/v/w volumes; the 4-D encoder keeps
/// time as a separate trailing axis handled in core/).

#include <memory>
#include <vector>

#include "nn/layers.hpp"

namespace coastal::nn {

/// Non-overlapping (kernel == stride) N-d convolution: partitions each
/// spatial axis into blocks of the kernel size and linearly projects each
/// block.  Exactly torch's Conv{2,3}d(in, out, k, stride=k).
class PatchConvNd : public Module {
 public:
  PatchConvNd(int64_t in_channels, int64_t out_channels,
              std::vector<int64_t> kernel, util::Rng& rng);

  /// x: [B, Cin, d1..dk] with each di divisible by kernel[i].
  /// Returns [B, Cout, d1/k1 .. dk/kk].
  Tensor forward(const Tensor& x) const;

  int64_t in_channels() const { return in_; }
  int64_t out_channels() const { return out_; }
  const std::vector<int64_t>& kernel() const { return kernel_; }

 private:
  int64_t in_, out_;
  std::vector<int64_t> kernel_;
  std::shared_ptr<Linear> proj_;
};

/// Non-overlapping (kernel == stride) N-d transposed convolution: the exact
/// adjoint rearrangement of PatchConvNd.  Equals
/// torch's ConvTranspose{2,3}d(in, out, k, stride=k).
class PatchConvTransposeNd : public Module {
 public:
  PatchConvTransposeNd(int64_t in_channels, int64_t out_channels,
                       std::vector<int64_t> kernel, util::Rng& rng);

  /// x: [B, Cin, d1..dk] -> [B, Cout, d1*k1 .. dk*kk].
  Tensor forward(const Tensor& x) const;

  int64_t in_channels() const { return in_; }
  int64_t out_channels() const { return out_; }
  const std::vector<int64_t>& kernel() const { return kernel_; }

 private:
  int64_t in_, out_;
  std::vector<int64_t> kernel_;
  std::shared_ptr<Linear> proj_;
};

/// 1x1 convolution over any spatial rank — a per-location channel mix.
class PointwiseConvNd : public Module {
 public:
  PointwiseConvNd(int64_t in_channels, int64_t out_channels, util::Rng& rng);

  Tensor forward(const Tensor& x) const;

 private:
  int64_t in_, out_;
  std::shared_ptr<Linear> proj_;
};

namespace detail {
/// [B, C, d1..dk] -> [B, n_blocks, C * prod(kernel)] token layout where
/// blocks enumerate the coarse grid in row-major order.  Shared by both
/// conv layers; public for tests.
Tensor blocks_to_tokens(const Tensor& x, const std::vector<int64_t>& kernel);
/// Inverse of blocks_to_tokens.
Tensor tokens_to_blocks(const Tensor& tokens, int64_t channels,
                        const std::vector<int64_t>& coarse,
                        const std::vector<int64_t>& kernel);
}  // namespace detail

}  // namespace coastal::nn
