#pragma once

/// \file module.hpp
/// Base class for neural-network modules: a tree of children with
/// registered parameters and buffers, torch-style.  Parameters are Tensor
/// handles shared with the optimizer; buffers (e.g. BatchNorm running
/// stats) are saved/loaded but never receive gradients.

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "tensor/tensor.hpp"

namespace coastal::nn {

using tensor::Tensor;

class Module {
 public:
  virtual ~Module() = default;

  /// All trainable parameters of this module and its descendants, with
  /// dotted path names ("encoder.blocks.0.qkv.weight").
  std::vector<std::pair<std::string, Tensor>> named_parameters() const;
  std::vector<Tensor> parameters() const;
  /// Buffers (running stats etc.), same traversal.
  std::vector<std::pair<std::string, Tensor>> named_buffers() const;

  int64_t num_parameters() const;
  void zero_grad();

  /// Training/eval mode (BatchNorm switches statistics source).
  virtual void set_training(bool training);
  bool training() const { return training_; }

 protected:
  Tensor& register_parameter(const std::string& name, Tensor t);
  Tensor& register_buffer(const std::string& name, Tensor t);

  template <typename M, typename... Args>
  std::shared_ptr<M> register_module(const std::string& name, Args&&... args) {
    auto m = std::make_shared<M>(std::forward<Args>(args)...);
    children_.emplace_back(name, m);
    return m;
  }
  /// Register an already-constructed child.
  void adopt_module(const std::string& name, std::shared_ptr<Module> m) {
    children_.emplace_back(name, std::move(m));
  }

 private:
  void collect_parameters(const std::string& prefix,
                          std::vector<std::pair<std::string, Tensor>>& out) const;
  void collect_buffers(const std::string& prefix,
                       std::vector<std::pair<std::string, Tensor>>& out) const;

  bool training_ = true;
  std::vector<std::pair<std::string, Tensor>> params_;
  std::vector<std::pair<std::string, Tensor>> buffers_;
  std::vector<std::pair<std::string, std::shared_ptr<Module>>> children_;
};

}  // namespace coastal::nn
