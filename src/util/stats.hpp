#pragma once

/// \file stats.hpp
/// Error metrics and running statistics used by the evaluation harness
/// (Table III / Table IV report MAE and RMSE per physical variable).

#include <cmath>
#include <cstddef>
#include <limits>
#include <span>

#include "util/check.hpp"

namespace coastal::util {

/// Streaming mean/variance via Welford's algorithm.  Used to compute the
/// z-score normalization statistics over a year of training data without
/// holding it in memory.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }

  void add(std::span<const float> xs) {
    for (float x : xs) add(static_cast<double>(x));
  }

  /// Merge another accumulator (parallel reduction of per-chunk stats).
  void merge(const RunningStats& o) {
    if (o.n_ == 0) return;
    if (n_ == 0) { *this = o; return; }
    const double na = static_cast<double>(n_), nb = static_cast<double>(o.n_);
    const double delta = o.mean_ - mean_;
    const double total = na + nb;
    mean_ += delta * nb / total;
    m2_ += o.m2_ + delta * delta * na * nb / total;
    n_ += o.n_;
    if (o.min_ < min_) min_ = o.min_;
    if (o.max_ > max_) max_ = o.max_;
  }

  size_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_) : 0.0; }
  double stddev() const { return std::sqrt(variance()); }
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Streaming |error| and error^2 accumulator; reports MAE and RMSE.
class ErrorStats {
 public:
  void add(double predicted, double truth) {
    const double e = predicted - truth;
    sum_abs_ += std::abs(e);
    sum_sq_ += e * e;
    ++n_;
  }

  void add(std::span<const float> predicted, std::span<const float> truth) {
    COASTAL_CHECK(predicted.size() == truth.size());
    for (size_t i = 0; i < predicted.size(); ++i)
      add(predicted[i], truth[i]);
  }

  void merge(const ErrorStats& o) {
    sum_abs_ += o.sum_abs_;
    sum_sq_ += o.sum_sq_;
    n_ += o.n_;
  }

  size_t count() const { return n_; }
  double mae() const { return n_ ? sum_abs_ / static_cast<double>(n_) : 0.0; }
  double rmse() const {
    return n_ ? std::sqrt(sum_sq_ / static_cast<double>(n_)) : 0.0;
  }

 private:
  double sum_abs_ = 0.0;
  double sum_sq_ = 0.0;
  size_t n_ = 0;
};

}  // namespace coastal::util
