#include "util/fault.hpp"

#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "util/check.hpp"

namespace coastal::util {

namespace {

/// splitmix64 — small, fast, and statistically solid enough for Bernoulli
/// draws; the point is determinism, not cryptography.
inline uint64_t splitmix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

inline uint64_t fnv1a(const std::string& s) {
  uint64_t h = 0xCBF29CE484222325ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001B3ull;
  }
  return h;
}

struct SiteSchedule {
  FaultAction action = FaultAction::kNone;
  double probability = 1.0;
  uint64_t max_fires = UINT64_MAX;
  std::chrono::microseconds delay{0};
  uint64_t site_hash = 0;
};

struct SiteState {
  SiteSchedule schedule;
  uint64_t hits = 0;
  uint64_t fires = 0;
};

struct Registry {
  mutable std::mutex m;
  std::unordered_map<std::string, SiteState> sites;
  /// Since-process-start totals, guarded by `m`.  install()/clear()
  /// reset the per-schedule SiteState counters but never this map — the
  /// registry/dashboard view of "what has fault injection done" must
  /// survive a chaos test's teardown.
  std::map<std::string, FaultSiteStats> cumulative;
  uint64_t seed = 0;

  // Hang parking.  `release_epoch` advances on release_hangs()/clear();
  // a parked thread wakes once the epoch moves past the one it captured.
  std::mutex hang_m;
  std::condition_variable hang_cv;
  uint64_t release_epoch = 0;
  int parked = 0;

  std::atomic<bool> armed{false};
};

Registry& registry() {
  static Registry r;
  return r;
}

FaultAction parse_action(const std::string& s) {
  if (s == "throw") return FaultAction::kThrow;
  if (s == "nan") return FaultAction::kNan;
  if (s == "delay") return FaultAction::kDelay;
  if (s == "hang") return FaultAction::kHang;
  if (s == "drop") return FaultAction::kDrop;
  COASTAL_CHECK_MSG(false, "unknown fault action '" << s << "'");
  return FaultAction::kNone;
}

std::chrono::microseconds parse_duration(const std::string& s) {
  size_t pos = 0;
  const double v = std::stod(s, &pos);
  const std::string unit = s.substr(pos);
  COASTAL_CHECK_MSG(v >= 0, "negative fault delay '" << s << "'");
  if (unit == "us") return std::chrono::microseconds(static_cast<int64_t>(v));
  if (unit == "s") return std::chrono::microseconds(static_cast<int64_t>(v * 1e6));
  COASTAL_CHECK_MSG(unit.empty() || unit == "ms",
                    "unknown duration unit '" << unit << "' in fault delay");
  return std::chrono::microseconds(static_cast<int64_t>(v * 1e3));
}

/// Parse one `site:action[=value][@prob][xN]` entry.
std::pair<std::string, SiteSchedule> parse_entry(const std::string& entry) {
  const size_t colon = entry.find(':');
  COASTAL_CHECK_MSG(colon != std::string::npos && colon > 0,
                    "fault entry '" << entry << "' lacks 'site:action'");
  const std::string site = entry.substr(0, colon);
  std::string rest = entry.substr(colon + 1);

  SiteSchedule sched;
  // Split suffixes off the back: xN first, then @prob, then =value.
  const size_t xpos = rest.rfind('x');
  if (xpos != std::string::npos && xpos + 1 < rest.size() &&
      std::isdigit(static_cast<unsigned char>(rest[xpos + 1]))) {
    sched.max_fires = std::stoull(rest.substr(xpos + 1));
    COASTAL_CHECK_MSG(sched.max_fires > 0,
                      "fault entry '" << entry << "' has x0 max-fires");
    rest = rest.substr(0, xpos);
  }
  const size_t at = rest.find('@');
  if (at != std::string::npos) {
    sched.probability = std::stod(rest.substr(at + 1));
    COASTAL_CHECK_MSG(sched.probability >= 0.0 && sched.probability <= 1.0,
                      "fault probability out of [0,1] in '" << entry << "'");
    rest = rest.substr(0, at);
  }
  const size_t eq = rest.find('=');
  std::string value;
  if (eq != std::string::npos) {
    value = rest.substr(eq + 1);
    rest = rest.substr(0, eq);
  }
  sched.action = parse_action(rest);
  if (sched.action == FaultAction::kDelay) {
    COASTAL_CHECK_MSG(!value.empty(),
                      "delay fault '" << entry << "' needs '=<duration>'");
    sched.delay = parse_duration(value);
  } else {
    COASTAL_CHECK_MSG(value.empty(),
                      "fault action in '" << entry << "' takes no value");
  }
  sched.site_hash = fnv1a(site);
  return {site, sched};
}

/// Auto-install from the environment once, at first armed() check after
/// static init.  Done via a static rather than in fault_armed() to keep
/// the fast path to one atomic load.
struct EnvInstaller {
  EnvInstaller() {
    const char* e = std::getenv("COASTAL_FAULTS");
    if (e && *e) FaultInjector::instance().install(e);
  }
};

}  // namespace

FaultInjector::FaultInjector() = default;

FaultInjector& FaultInjector::instance() {
  static FaultInjector inj;
  return inj;
}

void FaultInjector::install(const std::string& schedule, uint64_t seed) {
  Registry& r = registry();
  std::unordered_map<std::string, SiteState> sites;
  size_t start = 0;
  while (start < schedule.size()) {
    size_t end = schedule.find(';', start);
    if (end == std::string::npos) end = schedule.size();
    const std::string entry = schedule.substr(start, end - start);
    if (!entry.empty()) {
      auto [site, sched] = parse_entry(entry);
      sites[site].schedule = sched;
    }
    start = end + 1;
  }
  const bool empty = sites.empty();
  {
    std::lock_guard<std::mutex> lock(r.m);
    r.sites = std::move(sites);
    r.seed = seed;
    r.armed.store(!empty, std::memory_order_release);
  }
  if (empty) release_hangs();
}

void FaultInjector::clear() {
  Registry& r = registry();
  {
    std::lock_guard<std::mutex> lock(r.m);
    r.sites.clear();
    r.armed.store(false, std::memory_order_release);
  }
  release_hangs();
}

void FaultInjector::release_hangs() {
  Registry& r = registry();
  {
    std::lock_guard<std::mutex> lock(r.hang_m);
    ++r.release_epoch;
  }
  r.hang_cv.notify_all();
}

bool FaultInjector::armed() const {
  return registry().armed.load(std::memory_order_acquire);
}

int FaultInjector::parked() const {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.hang_m);
  return r.parked;
}

FaultSiteStats FaultInjector::site_stats(const std::string& site) const {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.m);
  auto it = r.sites.find(site);
  if (it == r.sites.end()) return {};
  return {it->second.hits, it->second.fires};
}

std::map<std::string, FaultSiteStats> FaultInjector::stats() const {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.m);
  std::map<std::string, FaultSiteStats> out;
  for (const auto& [site, st] : r.sites) out[site] = {st.hits, st.fires};
  return out;
}

std::map<std::string, FaultSiteStats> FaultInjector::cumulative_stats()
    const {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.m);
  return r.cumulative;
}

FaultAction FaultInjector::decide_and_act(const char* site) {
  Registry& r = registry();
  FaultAction action = FaultAction::kNone;
  std::chrono::microseconds delay{0};
  {
    std::lock_guard<std::mutex> lock(r.m);
    auto it = r.sites.find(site);
    if (it == r.sites.end()) return FaultAction::kNone;
    SiteState& st = it->second;
    FaultSiteStats& cum = r.cumulative[site];
    const uint64_t hit = st.hits++;
    ++cum.hits;
    if (st.fires >= st.schedule.max_fires) return FaultAction::kNone;
    // Bernoulli draw, pure function of (seed, site, hit index): the same
    // schedule replayed produces the same firing hit set.
    const uint64_t u = splitmix64(r.seed ^ st.schedule.site_hash ^ hit);
    const double draw =
        static_cast<double>(u >> 11) * (1.0 / 9007199254740992.0);
    if (draw >= st.schedule.probability) return FaultAction::kNone;
    ++st.fires;
    ++cum.fires;
    action = st.schedule.action;
    delay = st.schedule.delay;
  }
  // Perform side effects outside the registry lock so a delayed or parked
  // thread never blocks other sites' decisions.
  switch (action) {
    case FaultAction::kThrow:
      throw FaultInjectedError(site);
    case FaultAction::kDelay:
      std::this_thread::sleep_for(delay);
      return FaultAction::kDelay;
    case FaultAction::kHang: {
      {
        std::unique_lock<std::mutex> lock(r.hang_m);
        const uint64_t epoch = r.release_epoch;
        ++r.parked;
        r.hang_cv.wait(lock,
                       [&r, epoch] { return r.release_epoch != epoch; });
        --r.parked;
      }
      // Count the wake-up in the cumulative view only: the release that
      // woke us usually came from clear(), which already erased the
      // per-schedule site entry.
      {
        std::lock_guard<std::mutex> lock(r.m);
        ++r.cumulative[site].released;
      }
      return FaultAction::kHang;
    }
    default:
      return action;
  }
}

bool fault_armed() {
  static EnvInstaller env_once;
  return FaultInjector::instance().armed();
}

}  // namespace coastal::util
