#pragma once

/// \file timer.hpp
/// Wall-clock timing helpers used by the trainer throughput meter and the
/// benchmark harnesses.

#include <chrono>
#include <cstdint>

namespace coastal::util {

/// Monotonic stopwatch.  Construction starts it.
class Timer {
 public:
  using clock = std::chrono::steady_clock;

  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Seconds elapsed since construction or last reset().
  double seconds() const {
    return std::chrono::duration_cast<std::chrono::duration<double>>(
               clock::now() - start_)
        .count();
  }

  double millis() const { return seconds() * 1e3; }

 private:
  clock::time_point start_;
};

/// Accumulates time across start/stop pairs — used to attribute time to
/// pipeline stages (load / H2D / compute) inside the data loader.
class AccumTimer {
 public:
  void start() { t_.reset(); running_ = true; }
  void stop() {
    if (running_) total_ += t_.seconds();
    running_ = false;
  }
  double seconds() const { return total_; }
  void reset() { total_ = 0.0; running_ = false; }

 private:
  Timer t_;
  double total_ = 0.0;
  bool running_ = false;
};

}  // namespace coastal::util
