#pragma once

/// \file hash.hpp
/// Streaming 64-bit content hash for cache keys.
///
/// The serving cache (serve/cache.hpp) keys entries by the *bytes* of a
/// request's normalized window, so the hash only needs to be a fast,
/// well-mixed index — collisions are resolved by a full byte compare on
/// probe, never trusted.  splitmix64's finalizer supplies the mixing; the
/// stream is absorbed word-at-a-time with each word's position folded in,
/// so reordered or shifted payloads land in different buckets.
///
/// The hasher is a small copyable value: `digest()` snapshots the state
/// without finalizing the stream, which is what lets one pass over an
/// e-episode window yield the key of every episode-boundary prefix
/// (digest after frame p*T+1 == the key a p-episode request would hash).

#include <cstdint>
#include <cstring>
#include <span>

namespace coastal::util {

class ContentHash {
 public:
  void update_u64(uint64_t x) {
    state_ = mix64(state_ ^ mix64(x + kGolden * ++words_));
  }

  void update_i64(int64_t x) { update_u64(static_cast<uint64_t>(x)); }

  /// Absorb raw bytes (word-at-a-time; the tail is zero-padded and the
  /// byte count is folded in, so "abc" and "abc\0" differ).
  void update_bytes(const void* p, size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    update_u64(static_cast<uint64_t>(n));
    while (n >= 8) {
      uint64_t w;
      std::memcpy(&w, b, 8);
      update_u64(w);
      b += 8;
      n -= 8;
    }
    if (n > 0) {
      uint64_t w = 0;
      std::memcpy(&w, b, n);
      update_u64(w);
    }
  }

  void update_f32(std::span<const float> v) {
    update_bytes(v.data(), v.size() * sizeof(float));
  }

  /// Snapshot of the running state; absorbing more data keeps extending
  /// the same stream.
  uint64_t digest() const { return mix64(state_ + kGolden); }

 private:
  static constexpr uint64_t kGolden = 0x9E3779B97F4A7C15ull;

  static uint64_t mix64(uint64_t z) {
    z ^= z >> 30;
    z *= 0xBF58476D1CE4E5B9ull;
    z ^= z >> 27;
    z *= 0x94D049BB133111EBull;
    z ^= z >> 31;
    return z;
  }

  uint64_t state_ = kGolden;
  uint64_t words_ = 0;
};

}  // namespace coastal::util
