#pragma once

/// \file fault.hpp
/// Deterministic, seeded fault injection for chaos testing the serving
/// stack (and anything else that marks a fault point).
///
/// Call sites name themselves once:
///
///   COASTAL_FAULT_POINT("serve.forward");
///
/// and a schedule — installed programmatically or from the
/// `COASTAL_FAULTS` environment variable — decides per *hit* whether the
/// site fires and what happens:
///
///   serve.forward:throw@0.05;rollout.step:nan@0.01;comm.send:delay=20ms@0.1;serve.worker:hang@1x1
///
/// Grammar, per `;`-separated entry:
///
///   site ':' action ['=' duration] ['@' probability] ['x' max_fires]
///
///   action      throw | nan | delay | hang | drop
///   duration    delay only: e.g. 20ms, 250us, 1s (default ms)
///   probability [0,1], default 1 (every hit fires)
///   max_fires   cap on total fires for the site, default unlimited
///
/// Decisions are a pure function of (seed, site, hit index) — re-running
/// the same schedule with the same seed yields the same fire/no-fire
/// sequence per site, which is what makes chaos tests assertable.  Which
/// *thread* draws a given hit index may vary under races, but the set of
/// firing indices does not.
///
/// Actions `throw` (raises FaultInjectedError), `delay` (sleeps), and
/// `hang` (parks on a condition variable until release_hangs()/clear())
/// are performed inside fault_point(); `nan` and `drop` are returned to
/// the call site, which knows what data to poison or suppress.
///
/// Overhead when no schedule is installed is a single relaxed atomic
/// load — fault points are safe on hot paths.

#include <atomic>
#include <cstdint>
#include <map>
#include <stdexcept>
#include <string>
#include <vector>

namespace coastal::util {

enum class FaultAction {
  kNone,   ///< site does not fire this hit
  kThrow,  ///< FaultInjectedError raised inside fault_point()
  kNan,    ///< caller poisons its payload with quiet NaNs
  kDelay,  ///< fault_point() sleeps for the scheduled duration
  kHang,   ///< fault_point() parks until release_hangs() / clear()
  kDrop,   ///< caller suppresses its message / result
};

/// Raised by a `throw`-scheduled fault point.  Deliberately NOT a
/// CheckError: retry layers treat it as a transient failure.
class FaultInjectedError : public std::runtime_error {
 public:
  explicit FaultInjectedError(const std::string& site)
      : std::runtime_error("injected fault at " + site), site_(site) {}
  const std::string& site() const { return site_; }

 private:
  std::string site_;
};

/// Per-site counters for test assertions and the example's dashboard.
struct FaultSiteStats {
  uint64_t hits = 0;   ///< times an armed fault_point reached the site
  uint64_t fires = 0;  ///< times the schedule fired (capped at max_fires)
  /// Parked `hang` threads that were woken by release_hangs()/clear().
  /// Only maintained in the cumulative view (see cumulative_stats()) —
  /// a release typically races the schedule teardown that triggered it,
  /// so per-schedule counts would lose it.
  uint64_t released = 0;
};

/// Process-wide registry.  install()/clear() are meant for test or
/// deployment setup, not concurrent reconfiguration under load (decisions
/// taken mid-install may see either schedule).
class FaultInjector {
 public:
  static FaultInjector& instance();

  /// Replace the schedule (see file comment for the DSL).  An empty
  /// string disarms every site.  Counters reset.  Throws CheckError on a
  /// malformed schedule.
  void install(const std::string& schedule, uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Disarm all sites and wake every parked `hang`.
  void clear();

  /// Wake threads currently parked by a `hang` action (they resume as if
  /// the hang completed).  Hangs that begin afterwards park again.
  void release_hangs();

  bool armed() const;
  /// Threads currently parked by a `hang` action.
  int parked() const;

  FaultSiteStats site_stats(const std::string& site) const;
  std::map<std::string, FaultSiteStats> stats() const;

  /// Cumulative per-site counters since process start.  Unlike stats(),
  /// these survive install()/clear() — a dashboard or registry snapshot
  /// read after a chaos teardown still reports everything that fired —
  /// and they include `released` (hangs woken by release_hangs()/
  /// clear()), which the per-schedule view inherently loses because the
  /// release usually rides the teardown that erases the site.
  std::map<std::string, FaultSiteStats> cumulative_stats() const;

  /// The slow path of fault_point(); call through the macro instead.
  FaultAction decide_and_act(const char* site);

 private:
  FaultInjector();
};

/// True when any schedule is installed — the fast-path gate.
bool fault_armed();

/// Evaluate a named fault site: no-op (kNone) unless armed and scheduled.
/// throw/delay/hang are handled internally; kNan/kDrop are returned for
/// the caller to apply.
inline FaultAction fault_point(const char* site) {
  if (!fault_armed()) return FaultAction::kNone;
  return FaultInjector::instance().decide_and_act(site);
}

}  // namespace coastal::util

/// Named fault site.  Evaluates to the FaultAction so call sites that can
/// poison (nan) or suppress (drop) payloads may act on the result; pure
/// control-flow sites just ignore it.
#define COASTAL_FAULT_POINT(site) ::coastal::util::fault_point(site)
