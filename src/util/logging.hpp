#pragma once

/// \file logging.hpp
/// Minimal leveled logger.  Thread-safe; writes to stderr.  The level is a
/// process-wide atomic so benches can silence the library wholesale.

#include <atomic>
#include <mutex>
#include <sstream>
#include <string>

namespace coastal::util {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide minimum level; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Emit one log line (already formatted body).  Used by the LOG macro.
void log_emit(LogLevel level, const std::string& body);

namespace detail {

/// Accumulates a single log statement and emits on destruction.
class LogLine {
 public:
  LogLine(LogLevel level, const char* file, int line);
  ~LogLine();
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace detail
}  // namespace coastal::util

#define COASTAL_LOG(level)                                             \
  if (static_cast<int>(level) <                                        \
      static_cast<int>(::coastal::util::log_level())) {               \
  } else                                                               \
    ::coastal::util::detail::LogLine(level, __FILE__, __LINE__)

#define LOG_DEBUG COASTAL_LOG(::coastal::util::LogLevel::kDebug)
#define LOG_INFO COASTAL_LOG(::coastal::util::LogLevel::kInfo)
#define LOG_WARN COASTAL_LOG(::coastal::util::LogLevel::kWarn)
#define LOG_ERROR COASTAL_LOG(::coastal::util::LogLevel::kError)
