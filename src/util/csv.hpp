#pragma once

/// \file csv.hpp
/// Tiny CSV emitter for the benchmark harnesses: every reproduced table and
/// figure is written both to stdout (human readable) and to a CSV file so
/// plots can be regenerated.

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace coastal::util {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row.
  CsvWriter(const std::string& path, const std::vector<std::string>& columns)
      : out_(path), ncols_(columns.size()) {
    COASTAL_CHECK_MSG(out_.good(), "cannot open CSV file " << path);
    for (size_t i = 0; i < columns.size(); ++i) {
      if (i) out_ << ",";
      out_ << columns[i];
    }
    out_ << "\n";
  }

  /// Appends one row.  Values are formatted with operator<<.
  template <typename... Ts>
  void row(const Ts&... vals) {
    COASTAL_CHECK_MSG(sizeof...(vals) == ncols_,
                      "CSV row arity mismatch: got " << sizeof...(vals)
                                                     << ", want " << ncols_);
    std::ostringstream os;
    size_t i = 0;
    ((os << (i++ ? "," : "") << vals), ...);
    out_ << os.str() << "\n";
  }

  void flush() { out_.flush(); }

 private:
  std::ofstream out_;
  size_t ncols_;
};

}  // namespace coastal::util
