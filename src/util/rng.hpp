#pragma once

/// \file rng.hpp
/// Deterministic, seedable random number generation.  We use xoshiro256**
/// (public-domain algorithm by Blackman & Vigna) rather than std::mt19937
/// for speed and for cheap independent streams: every model init, dataset
/// shuffle, and bathymetry generator takes its own seeded Rng so results
/// are reproducible regardless of evaluation order.

#include <cmath>
#include <cstdint>

namespace coastal::util {

/// splitmix64 — used to seed the main generator from a single word.
inline uint64_t splitmix64(uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** generator with convenience distributions.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed5eed5eedULL) {
    uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  uint64_t next_u64() {
    const uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).  n must be > 0.
  uint64_t uniform_index(uint64_t n) { return next_u64() % n; }

  /// Standard normal via Box–Muller (no cached second value; simple and
  /// branch-free enough for init-time use).
  double normal() {
    double u1 = uniform();
    double u2 = uniform();
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// Independent child stream (for per-worker RNGs).
  Rng fork() { return Rng(next_u64() ^ 0xabcdef1234567890ULL); }

 private:
  static uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

}  // namespace coastal::util
