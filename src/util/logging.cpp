#include "util/logging.hpp"

#include <chrono>
#include <cstdio>
#include <filesystem>

namespace coastal::util {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_mutex;

const char* level_tag(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?????";
  }
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel log_level() { return static_cast<LogLevel>(g_level.load()); }

void log_emit(LogLevel level, const std::string& body) {
  if (static_cast<int>(level) < g_level.load()) return;
  using clock = std::chrono::system_clock;
  const auto now = clock::now().time_since_epoch();
  const double secs =
      std::chrono::duration_cast<std::chrono::duration<double>>(now).count();
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%.3f %s] %s\n", secs, level_tag(level), body.c_str());
}

namespace detail {

LogLine::LogLine(LogLevel level, const char* file, int line) : level_(level) {
  os_ << std::filesystem::path(file).filename().string() << ":" << line << " ";
}

LogLine::~LogLine() { log_emit(level_, os_.str()); }

}  // namespace detail
}  // namespace coastal::util
