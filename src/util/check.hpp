#pragma once

/// \file check.hpp
/// Lightweight runtime checking macros used across the library.
///
/// `COASTAL_CHECK` is always on (it guards user-facing API contracts such
/// as shape mismatches); `COASTAL_DCHECK` compiles out in release builds
/// and guards internal invariants on hot paths.

#include <sstream>
#include <stdexcept>
#include <string>

namespace coastal::util {

/// Exception thrown by COASTAL_CHECK failures.  Distinct from
/// std::logic_error so tests can assert on precisely our contract checks.
class CheckError : public std::runtime_error {
 public:
  explicit CheckError(const std::string& what) : std::runtime_error(what) {}
};

[[noreturn]] inline void throw_check_error(const char* cond, const char* file,
                                           int line, const std::string& msg) {
  std::ostringstream os;
  os << "CHECK failed: " << cond << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace coastal::util

#define COASTAL_CHECK(cond)                                                  \
  do {                                                                       \
    if (!(cond))                                                             \
      ::coastal::util::throw_check_error(#cond, __FILE__, __LINE__, "");     \
  } while (0)

#define COASTAL_CHECK_MSG(cond, msg)                                         \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::ostringstream os_;                                                \
      os_ << msg;                                                            \
      ::coastal::util::throw_check_error(#cond, __FILE__, __LINE__,          \
                                         os_.str());                         \
    }                                                                        \
  } while (0)

#ifdef NDEBUG
#define COASTAL_DCHECK(cond) ((void)0)
#else
#define COASTAL_DCHECK(cond) COASTAL_CHECK(cond)
#endif
