/// Observability-layer tests: metrics registry exactness under
/// concurrency, legacy-compatible histogram math, Prometheus/JSON
/// exposition, per-request trace span trees (fault-tagged, cache-hit,
/// cross-stage), the stage profiler, fault-site cumulative stats, the
/// obs-on zero-allocation pin, and bitwise invariance of served frames
/// with observability on vs off.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <future>
#include <map>
#include <set>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/rollout.hpp"
#include "data/dataset.hpp"
#include "data/normalization.hpp"
#include "obs/profile.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "ocean/archive.hpp"
#include "ocean/bathymetry.hpp"
#include "serve/server.hpp"
#include "tensor/storage.hpp"
#include "util/fault.hpp"
#include "test_helpers.hpp"

namespace core = coastal::core;
namespace data = coastal::data;
namespace obs = coastal::obs;
namespace ocean = coastal::ocean;
namespace serve = coastal::serve;
namespace tensor = coastal::tensor;
namespace util = coastal::util;
using coastal::util::Rng;

namespace {

struct FaultGuard {
  ~FaultGuard() { util::FaultInjector::instance().clear(); }
};

/// Restores the global trace recorder to its disabled default and drops
/// retained spans, so obs tests cannot leak tracing into each other.
struct TraceGuard {
  ~TraceGuard() {
    obs::TraceRecorder::instance().configure(obs::TraceConfig{});
    obs::TraceRecorder::instance().clear();
  }
};

core::SurrogateConfig model_config(const data::SampleSpec& spec) {
  core::SurrogateConfig mcfg;
  mcfg.H = spec.H;
  mcfg.W = spec.W;
  mcfg.D = spec.D;
  mcfg.T = spec.T;
  mcfg.patch_h = 5;
  mcfg.patch_w = 5;
  mcfg.patch_d = 2;
  mcfg.embed_dim = 8;
  mcfg.stages = 3;
  mcfg.heads = {2, 4, 8};
  return mcfg;
}

/// Shared world for the server-integration tests (same shape as
/// test_serve's: untrained surrogate over a simulated archive — obs
/// correctness is about instrumentation, not skill).
struct ObsWorld {
  ocean::Grid grid{20, 20, 6, 400.0, 400.0};
  ocean::TidalForcing tides = ocean::TidalForcing::gulf_coast_default();
  ocean::PhysicsParams params;
  std::vector<data::CenterFields> fields_norm;
  data::Normalizer norm;
  data::SampleSpec spec;
  std::unique_ptr<core::SurrogateModel> model;

  ObsWorld() {
    params.dt = 10.0;
    ocean::generate_estuary(grid, ocean::EstuaryParams{}, 42);
    ocean::ArchiveConfig acfg;
    acfg.spinup_seconds = 3600.0;
    acfg.duration_seconds = 8 * 3600.0;
    acfg.interval_seconds = 1800.0;
    auto snaps = ocean::simulate_archive(grid, tides, params, acfg);
    auto fields = data::center_archive(grid, snaps);
    for (const auto& f : fields) norm.accumulate(f);
    norm.freeze();
    fields_norm = fields;
    for (auto& f : fields_norm) norm.normalize_fields(f);

    spec = data::make_spec(20, 20, 6, /*T=*/3, /*multiple_hw=*/4,
                           /*multiple_d=*/2);
    Rng rng(7);
    model = std::make_unique<core::SurrogateModel>(model_config(spec), rng);
  }

  static ObsWorld& instance() {
    static ObsWorld w;
    return w;
  }

  serve::ForecastRequest request(size_t start) const {
    serve::ForecastRequest r;
    r.window.assign(fields_norm.begin() + static_cast<ptrdiff_t>(start),
                    fields_norm.begin() + static_cast<ptrdiff_t>(start) + 4);
    return r;
  }

  std::vector<data::CenterFields> serial_episode(size_t start) {
    tensor::NoGradGuard ng;
    tensor::ArenaScope arena;
    model->set_training(false);
    std::span<const data::CenterFields> window(fields_norm.data() + start, 4);
    return core::forecast_episode(*model, spec, norm, window, nullptr);
  }
};

void expect_frames_bitwise(const std::vector<data::CenterFields>& a,
                           const std::vector<data::CenterFields>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t t = 0; t < a.size(); ++t) {
    ASSERT_EQ(a[t].u.size(), b[t].u.size());
    for (size_t i = 0; i < a[t].u.size(); ++i) {
      ASSERT_EQ(a[t].u[i], b[t].u[i]) << "u frame " << t << " idx " << i;
      ASSERT_EQ(a[t].v[i], b[t].v[i]);
      ASSERT_EQ(a[t].w[i], b[t].w[i]);
    }
    for (size_t i = 0; i < a[t].zeta.size(); ++i) {
      ASSERT_EQ(a[t].zeta[i], b[t].zeta[i]) << "zeta frame " << t;
    }
  }
}

/// Group every retained span by trace id.
std::map<uint64_t, std::vector<obs::TraceSpan>> spans_by_trace() {
  std::map<uint64_t, std::vector<obs::TraceSpan>> by;
  for (const auto& s : obs::TraceRecorder::instance().spans()) {
    by[s.trace_id].push_back(s);
  }
  return by;
}

bool has_stage(const std::vector<obs::TraceSpan>& spans, const char* stage,
               uint32_t required_flags = 0) {
  for (const auto& s : spans) {
    if (std::strcmp(s.stage, stage) == 0 &&
        (s.flags & required_flags) == required_flags) {
      return true;
    }
  }
  return false;
}

}  // namespace

// ---------------------------------------------------------------------------
// Registry primitives
// ---------------------------------------------------------------------------

TEST(ObsRegistry, ConcurrentCounterIsExact) {
  obs::Registry reg;
  obs::Counter* c = reg.counter("t_events_total", "events");
  constexpr int kThreads = 8, kPerThread = 100000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) c->inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c->value(), int64_t{kThreads} * kPerThread);
  c->add(-3);  // documented reversal path
  EXPECT_EQ(c->value(), int64_t{kThreads} * kPerThread - 3);
}

TEST(ObsRegistry, ConcurrentHistogramCountsEveryObservation) {
  obs::Registry reg;
  obs::Histogram* h = reg.histogram("t_lat_us", "latency",
                                    obs::HistogramSpec::latency_us());
  constexpr int kThreads = 8, kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h->observe(static_cast<double>(1 + (t * kPerThread + i) % 5000));
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto snap = h->snapshot();
  EXPECT_EQ(snap.total, uint64_t{kThreads} * kPerThread);
  uint64_t bucket_sum = 0;
  for (uint64_t c : snap.counts) bucket_sum += c;
  EXPECT_EQ(bucket_sum, snap.total);
  EXPECT_GT(snap.sum, 0.0);
}

TEST(ObsRegistry, LatencySpecReproducesLegacyBucketMath) {
  const auto spec = obs::HistogramSpec::latency_us();
  ASSERT_EQ(spec.buckets, 64);
  // The server's historic bucket function, verbatim.
  auto legacy_bucket = [](double us) {
    if (us <= 1.0) return 0;
    int idx = static_cast<int>(4.0 * std::log2(us / 1.0));
    if (idx < 0) idx = 0;
    if (idx > 63) idx = 63;
    return idx;
  };
  auto legacy_rep = [](int idx) {
    return std::exp2((static_cast<double>(idx) + 0.5) / 4.0);
  };
  for (double us : {0.2, 1.0, 1.5, 3.0, 47.0, 1000.0, 12345.6, 1e9}) {
    EXPECT_EQ(spec.bucket(us), legacy_bucket(us)) << "us=" << us;
  }
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(spec.representative(i), legacy_rep(i)) << "bucket " << i;
  }

  // Percentile fold: representative of the bucket where the cumulative
  // count first reaches q*total — exactly the historic behavior.
  obs::Registry reg;
  obs::Histogram* h = reg.histogram("t_lat2_us", "latency", spec);
  for (int i = 0; i < 90; ++i) h->observe(10.0);
  for (int i = 0; i < 10; ++i) h->observe(5000.0);
  const auto snap = h->snapshot();
  EXPECT_EQ(snap.percentile(0.5), legacy_rep(legacy_bucket(10.0)));
  EXPECT_EQ(snap.percentile(0.99), legacy_rep(legacy_bucket(5000.0)));
  obs::Histogram* empty = reg.histogram("t_lat3_us", "latency", spec);
  EXPECT_EQ(empty->snapshot().percentile(0.5), 0.0);
}

TEST(ObsRegistry, LinearSpecMatchesBatchHistogram) {
  const auto spec = obs::HistogramSpec::linear(16, 1.0, 1.0);
  // Legacy batch histogram: bucket = min(B, 16) - 1.
  for (int b = 1; b <= 40; ++b) {
    EXPECT_EQ(spec.bucket(static_cast<double>(b)), std::min(b, 16) - 1)
        << "B=" << b;
  }
}

TEST(ObsRegistry, RegistrationIsIdempotentAndLabeled) {
  obs::Registry reg;
  obs::Counter* a = reg.counter("t_total", "help", "site", "x");
  obs::Counter* b = reg.counter("t_total", "help", "site", "x");
  obs::Counter* other = reg.counter("t_total", "help", "site", "y");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, other);
  a->inc(5);
  other->inc(7);
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].value + snap.counters[1].value, 12);
}

TEST(ObsRegistry, ExpositionFormatsCoverAllInstrumentKinds) {
  obs::Registry reg;
  reg.counter("t_events_total", "total events")->inc(42);
  reg.gauge("t_depth", "queue depth")->set(3.5);
  reg.gauge_fn("t_lazy", "lazy gauge", [] { return 9.0; });
  obs::Histogram* h = reg.histogram("t_batch", "batch sizes",
                                    obs::HistogramSpec::linear(4, 1.0, 1.0),
                                    "stage", "pack");
  h->observe(2.0);
  h->observe(2.0);
  reg.collector([](obs::RegistrySnapshot& out) {
    obs::CounterSnapshot c;
    c.name = "t_collected_total";
    c.help = "from a collector";
    c.value = 11;
    out.counters.push_back(c);
  });

  const auto snap = reg.snapshot();
  const std::string text = snap.to_prometheus();
  EXPECT_NE(text.find("# TYPE t_events_total counter"), std::string::npos);
  EXPECT_NE(text.find("t_events_total 42"), std::string::npos);
  EXPECT_NE(text.find("t_depth 3.5"), std::string::npos);
  EXPECT_NE(text.find("t_lazy 9"), std::string::npos);
  EXPECT_NE(text.find("t_batch_bucket{"), std::string::npos);
  EXPECT_NE(text.find("t_batch_count"), std::string::npos);
  EXPECT_NE(text.find("t_batch_sum"), std::string::npos);
  EXPECT_NE(text.find("stage=\"pack\""), std::string::npos);
  EXPECT_NE(text.find("t_collected_total 11"), std::string::npos);

  const std::string json = snap.to_json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"t_events_total\""), std::string::npos);
  EXPECT_NE(json.find("\"t_collected_total\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Trace recorder primitives
// ---------------------------------------------------------------------------

TEST(ObsTrace, DisabledRecorderHandsOutNoIds) {
  TraceGuard guard;
  obs::TraceRecorder::instance().configure(obs::TraceConfig{});
  EXPECT_EQ(obs::TraceRecorder::instance().begin_trace(), 0u);
  // ScopedSpan on an unbound thread is a no-op even when enabled.
  obs::TraceConfig on;
  on.enabled = true;
  obs::TraceRecorder::instance().configure(on);
  obs::TraceRecorder::instance().clear();
  EXPECT_EQ(obs::current_trace(), 0u);
  { obs::ScopedSpan s("unit.noop"); }
  EXPECT_TRUE(obs::TraceRecorder::instance().spans().empty());
}

TEST(ObsTrace, ScopedSpansAttachToTheAmbientTrace) {
  TraceGuard guard;
  obs::TraceConfig cfg;
  cfg.enabled = true;
  cfg.ring_spans = 64;
  obs::TraceRecorder::instance().configure(cfg);
  obs::TraceRecorder::instance().clear();

  const uint64_t id = obs::TraceRecorder::instance().begin_trace();
  ASSERT_NE(id, 0u);
  {
    obs::TraceBinding bind(id);
    obs::ScopedSpan s("unit.stage");
    s.set_flags(obs::kDegraded);
    s.set_rank(2);
    s.set_extra(17);
  }
  const auto spans = obs::TraceRecorder::instance().spans_for(id);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].stage, "unit.stage");
  EXPECT_EQ(spans[0].flags & obs::kDegraded, uint32_t{obs::kDegraded});
  EXPECT_EQ(spans[0].rank, 2);
  EXPECT_EQ(spans[0].extra, 17);
  EXPECT_GE(spans[0].end_us, spans[0].start_us);
  EXPECT_NE(obs::TraceRecorder::instance().dump_json().find("unit.stage"),
            std::string::npos);
}

TEST(ObsTrace, AdoptBindsOnlyWhenUnbound) {
  TraceGuard guard;
  EXPECT_EQ(obs::current_trace(), 0u);
  obs::adopt_trace(42);
  EXPECT_EQ(obs::current_trace(), 42u);
  obs::adopt_trace(7);  // already bound: ignored
  EXPECT_EQ(obs::current_trace(), 42u);
  obs::bind_trace(0);
  obs::adopt_trace(0);  // id 0 never binds
  EXPECT_EQ(obs::current_trace(), 0u);
}

TEST(ObsTrace, RingRetainsOnlyTheConfiguredSpanCount) {
  TraceGuard guard;
  obs::TraceConfig cfg;
  cfg.enabled = true;
  cfg.ring_spans = 8;
  obs::TraceRecorder::instance().configure(cfg);
  obs::TraceRecorder::instance().clear();
  // Record on a fresh thread so the small ring size applies to its ring.
  std::thread([&] {
    obs::TraceBinding bind(obs::TraceRecorder::instance().begin_trace());
    for (int i = 0; i < 32; ++i) obs::ScopedSpan s("unit.wrap");
  }).join();
  EXPECT_LE(obs::TraceRecorder::instance().spans().size(), 8u);
}

// ---------------------------------------------------------------------------
// Stage profiler
// ---------------------------------------------------------------------------

TEST(ObsProfiler, ScopedStagesFeedPerStageHistograms) {
  auto& prof = obs::StageProfiler::instance();
  const bool was = prof.enabled();
  prof.set_enabled(true);
  prof.reset();
  {
    obs::ScopedStage s(obs::Stage::kVerify);
  }
  { obs::ScopedStage s(obs::Stage::kVerify); }
  EXPECT_EQ(prof.snapshot(obs::Stage::kVerify).total, 2u);
  EXPECT_EQ(prof.snapshot(obs::Stage::kGemm).total, 0u);

  obs::RegistrySnapshot out;
  prof.collect(out);
  bool saw_verify = false;
  for (const auto& h : out.histograms) {
    EXPECT_EQ(h.name, "coastal_stage_duration_us");
    if (h.label_value == obs::stage_name(obs::Stage::kVerify)) {
      saw_verify = true;
    }
  }
  EXPECT_TRUE(saw_verify) << "collect() must export non-empty stages";

  prof.set_enabled(false);
  prof.reset();
  { obs::ScopedStage s(obs::Stage::kVerify); }
  EXPECT_EQ(prof.snapshot(obs::Stage::kVerify).total, 0u)
      << "disabled scopes must not record";
  prof.set_enabled(was);
}

// ---------------------------------------------------------------------------
// Fault-site cumulative stats
// ---------------------------------------------------------------------------

TEST(ObsFault, CumulativeStatsSurviveScheduleTeardown) {
  FaultGuard guard;
  auto& inj = util::FaultInjector::instance();
  inj.install("obs.cumulative:drop@1x2");
  for (int i = 0; i < 3; ++i) {
    (void)util::fault_point("obs.cumulative");
  }
  EXPECT_EQ(inj.site_stats("obs.cumulative").hits, 3u);
  EXPECT_EQ(inj.site_stats("obs.cumulative").fires, 2u);

  inj.clear();
  EXPECT_EQ(inj.site_stats("obs.cumulative").hits, 0u)
      << "per-schedule stats reset on clear";
  const auto cum = inj.cumulative_stats();
  auto it = cum.find("obs.cumulative");
  ASSERT_NE(it, cum.end()) << "cumulative view must survive clear()";
  EXPECT_EQ(it->second.hits, 3u);
  EXPECT_EQ(it->second.fires, 2u);
}

// ---------------------------------------------------------------------------
// Server integration
// ---------------------------------------------------------------------------

TEST(ObsServer, OneSnapshotUnifiesServerCacheFaultAndStageMetrics) {
  FaultGuard guard;
  TraceGuard trace_guard;
  auto& w = ObsWorld::instance();
  // Transient forward faults recovered by retries: the snapshot must
  // show serve counters, cache counters, retry/fault-site counters, and
  // the stage-duration histograms in ONE exposition.
  util::FaultInjector::instance().install("serve.forward:throw@1x2");
  serve::ServerConfig cfg;
  cfg.workers = 1;
  cfg.batch.max_batch = 4;
  cfg.batch.max_wait_us = 50000;
  cfg.threshold = 10.0;
  cfg.reliability.retry.max_attempts = 4;
  cfg.reliability.retry.backoff_us = 200;
  serve::ForecastServer server({{w.model.get(), w.spec}}, w.norm, &w.grid,
                               cfg);
  std::vector<std::future<serve::ForecastResult>> futures;
  for (size_t i = 0; i < 4; ++i) {
    auto f = server.submit(w.request(i));
    ASSERT_TRUE(f.has_value());
    futures.push_back(std::move(*f));
  }
  for (auto& f : futures) f.get();

  const auto stats = server.stats();
  EXPECT_EQ(stats.served, 4u);
  EXPECT_GT(stats.retries, 0u);

  const std::string text = server.metrics_text();
  EXPECT_NE(text.find("coastal_serve_served_total 4"), std::string::npos);
  EXPECT_NE(text.find("coastal_serve_submitted_total"), std::string::npos);
  EXPECT_NE(text.find("coastal_serve_retries_total"), std::string::npos);
  EXPECT_NE(text.find("coastal_serve_latency_us_count"), std::string::npos);
  EXPECT_NE(text.find("coastal_cache_misses_total"), std::string::npos);
  EXPECT_NE(text.find("coastal_fault_hits_total"), std::string::npos);
  EXPECT_NE(text.find("site=\"serve.forward\""), std::string::npos);
  EXPECT_NE(text.find("coastal_stage_duration_us"), std::string::npos);
  EXPECT_NE(text.find("stage=\"forward\""), std::string::npos);

  // The stats() compatibility view and the registry agree.
  bool found = false;
  for (const auto& c : server.metrics().snapshot().counters) {
    if (c.name == "coastal_serve_served_total") {
      EXPECT_EQ(c.value, static_cast<int64_t>(stats.served));
      found = true;
    }
  }
  EXPECT_TRUE(found);
  const std::string json = server.metrics_json();
  EXPECT_NE(json.find("coastal_serve_served_total"), std::string::npos);
}

TEST(ObsServer, TracedFaultyRequestYieldsTaggedSpanTree) {
  FaultGuard guard;
  TraceGuard trace_guard;
  auto& w = ObsWorld::instance();
  util::FaultInjector::instance().install("serve.forward:throw@1x1");
  serve::ServerConfig cfg;
  cfg.workers = 1;
  cfg.batch.max_batch = 2;
  cfg.batch.max_wait_us = 20000;
  cfg.threshold = 10.0;
  cfg.reliability.retry.max_attempts = 3;
  cfg.reliability.retry.backoff_us = 200;
  cfg.obs.trace.enabled = true;
  cfg.obs.trace.sample_rate = 1.0;
  serve::ForecastServer server({{w.model.get(), w.spec}}, w.norm, &w.grid,
                               cfg);
  obs::TraceRecorder::instance().clear();

  auto f = server.submit(w.request(0));
  ASSERT_TRUE(f.has_value());
  serve::ForecastResult r = f->get();
  EXPECT_TRUE(r.verified);
  server.shutdown();  // drain so every span of the request is recorded

  const auto by_trace = spans_by_trace();
  ASSERT_EQ(by_trace.size(), 1u) << "one traced request, one span tree";
  const auto& spans = by_trace.begin()->second;
  // The acceptance shape: queue -> triage -> forward -> verify ->
  // resolve under a root "request" span, with the fault visible as a
  // retry tag on the forward span.
  EXPECT_TRUE(has_stage(spans, "queue"));
  EXPECT_TRUE(has_stage(spans, "triage"));
  EXPECT_TRUE(has_stage(spans, "pack"));
  EXPECT_TRUE(has_stage(spans, "forward", obs::kFaultRetry));
  EXPECT_TRUE(has_stage(spans, "verify"));
  EXPECT_TRUE(has_stage(spans, "resolve"));
  EXPECT_TRUE(has_stage(spans, "request"));
  for (const auto& s : spans) {
    if (std::strcmp(s.stage, "request") == 0) {
      for (const auto& t : spans) {
        EXPECT_GE(t.start_us, s.start_us) << t.stage;
        EXPECT_LE(t.end_us, s.end_us) << t.stage;
      }
    }
    if (std::strcmp(s.stage, "forward") == 0) {
      EXPECT_GE(s.extra, 1) << "forward span carries the batch size";
    }
  }
  const std::string json = obs::TraceRecorder::instance().dump_json();
  EXPECT_NE(json.find("\"traces\""), std::string::npos);
  EXPECT_NE(json.find("\"forward\""), std::string::npos);
}

TEST(ObsServer, ErroredRequestResolvesWithErrorTaggedSpans) {
  TraceGuard trace_guard;
  auto& w = ObsWorld::instance();
  serve::ServerConfig cfg;
  cfg.workers = 1;
  cfg.batch.max_batch = 2;
  cfg.batch.max_wait_us = 2000;
  cfg.threshold = 10.0;
  cfg.obs.trace.enabled = true;
  cfg.obs.trace.sample_rate = 1.0;
  serve::ForecastServer server({{w.model.get(), w.spec}}, w.norm, &w.grid,
                               cfg);
  obs::TraceRecorder::instance().clear();

  serve::ForecastRequest req = w.request(0);
  req.timeout_us = 1;  // already expired by the time a worker pops it
  auto f = server.submit(std::move(req));
  ASSERT_TRUE(f.has_value());
  EXPECT_THROW(f->get(), serve::ForecastError);
  server.shutdown();

  bool saw_error_resolve = false;
  for (const auto& s : obs::TraceRecorder::instance().spans()) {
    if (std::strcmp(s.stage, "resolve") == 0 && (s.flags & obs::kError)) {
      EXPECT_GE(s.code, 0) << "error spans carry the ForecastError code";
      saw_error_resolve = true;
    }
  }
  EXPECT_TRUE(saw_error_resolve);
}

TEST(ObsServer, CacheHitSpansSkipTheForwardStage) {
  TraceGuard trace_guard;
  auto& w = ObsWorld::instance();
  serve::ServerConfig cfg;
  cfg.workers = 1;
  cfg.batch.max_batch = 2;
  cfg.batch.max_wait_us = 2000;
  cfg.threshold = 10.0;
  cfg.obs.trace.enabled = true;
  cfg.obs.trace.sample_rate = 1.0;
  serve::ForecastServer server({{w.model.get(), w.spec}}, w.norm, &w.grid,
                               cfg);

  auto first = server.submit(w.request(1));
  ASSERT_TRUE(first.has_value());
  EXPECT_FALSE(first->get().cache_hit);

  auto second = server.submit(w.request(1));
  ASSERT_TRUE(second.has_value());
  serve::ForecastResult r = second->get();
  EXPECT_TRUE(r.cache_hit);
  server.shutdown();

  // Find the cache-hit trace: its resolve span is tagged kCacheHit and
  // the tree must contain NO forward (or pack) stage — no surrogate ran.
  bool found_hit_trace = false;
  for (const auto& [id, spans] : spans_by_trace()) {
    if (!has_stage(spans, "resolve", obs::kCacheHit)) continue;
    found_hit_trace = true;
    EXPECT_FALSE(has_stage(spans, "forward"));
    EXPECT_FALSE(has_stage(spans, "pack"));
    EXPECT_TRUE(has_stage(spans, "queue"));
    EXPECT_TRUE(has_stage(spans, "triage", obs::kCacheHit));
    EXPECT_TRUE(has_stage(spans, "request"));
  }
  EXPECT_TRUE(found_hit_trace);
}

TEST(ObsServer, ServedFramesBitwiseInvariantUnderObservability) {
  TraceGuard trace_guard;
  auto& w = ObsWorld::instance();
  const auto serial = w.serial_episode(2);

  auto serve_once = [&](bool obs_on) {
    serve::ServerConfig cfg;
    cfg.workers = 1;
    cfg.batch.max_batch = 2;
    cfg.batch.max_wait_us = 2000;
    cfg.threshold = 10.0;
    cfg.obs.profile_stages = obs_on;
    cfg.obs.trace.enabled = obs_on;
    cfg.obs.trace.sample_rate = 1.0;
    serve::ForecastServer server({{w.model.get(), w.spec}}, w.norm, &w.grid,
                                 cfg);
    auto f = server.submit(w.request(2));
    EXPECT_TRUE(f.has_value());
    return f->get().frames;
  };

  const auto frames_off = serve_once(false);
  const auto frames_on = serve_once(true);
  expect_frames_bitwise(frames_off, serial);
  expect_frames_bitwise(frames_on, serial);
}

TEST(ObsServer, SteadyStateServingWithObsOnAllocatesNothing) {
  if (!tensor::pool_enabled()) {
    GTEST_SKIP() << "pool disabled (COASTAL_DISABLE_POOL): every tensor is "
                    "a real allocation by design";
  }
  TraceGuard trace_guard;
  auto& w = ObsWorld::instance();
  serve::ServerConfig cfg;
  cfg.workers = 1;
  cfg.batch.max_batch = 4;
  cfg.batch.max_wait_us = 100000;
  cfg.threshold = 10.0;
  cfg.cache.enabled = false;  // the forward path, not the cache path
  cfg.obs.profile_stages = true;
  cfg.obs.trace.enabled = true;
  cfg.obs.trace.sample_rate = 1.0;
  serve::ForecastServer server({{w.model.get(), w.spec}}, w.norm, &w.grid,
                               cfg);
  auto round = [&] {
    std::vector<std::future<serve::ForecastResult>> futures;
    for (size_t i = 0; i < 4; ++i) {
      auto f = server.submit(w.request(i));
      ASSERT_TRUE(f.has_value());
      futures.push_back(std::move(*f));
    }
    for (auto& f : futures) f.get();
  };
  // Warm the pool, the arenas, the workspaces, AND the per-thread trace
  // rings (a ring is allocated at a thread's first recorded span).
  round();
  round();
  const uint64_t before = tensor::alloc_stats().total_allocs;
  round();
  round();
  round();
  const uint64_t after = tensor::alloc_stats().total_allocs;
  EXPECT_EQ(after, before) << "metrics + tracing must not allocate in "
                              "steady state";
}
