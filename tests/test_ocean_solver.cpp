/// Physics tests for the shallow-water solver: stability, tidal response,
/// mass conservation, decomposition equivalence, and 3-D reconstruction.

#include <gtest/gtest.h>

#include <cmath>

#include "ocean/archive.hpp"
#include "ocean/bathymetry.hpp"
#include "ocean/parallel_driver.hpp"
#include "ocean/sigma.hpp"
#include "ocean/solver.hpp"

using namespace coastal::ocean;

namespace {

Grid make_test_grid(int nx = 32, int ny = 24, int nz = 4) {
  Grid g(nx, ny, nz, 400.0, 400.0);
  generate_estuary(g, EstuaryParams{}, 42);
  return g;
}

PhysicsParams fast_params() {
  PhysicsParams p;
  p.dt = 10.0;
  return p;
}

}  // namespace

TEST(Solver, StartsAtRestAndStaysFiniteUnderTides) {
  Grid g = make_test_grid();
  auto tide = TidalForcing::gulf_coast_default();
  TidalModel model(g, tide, fast_params());
  model.run_seconds(12.0 * 3600.0);
  for (float z : model.zeta()) {
    ASSERT_TRUE(std::isfinite(z));
    ASSERT_LT(std::abs(z), 3.0f);  // tides are sub-meter; allow margin
  }
  for (float u : model.ubar()) {
    ASSERT_TRUE(std::isfinite(u));
    ASSERT_LT(std::abs(u), 5.0f);
  }
}

TEST(Solver, NoTideMeansNoMotion) {
  Grid g = make_test_grid();
  TidalForcing flat({});  // zero forcing
  TidalModel model(g, flat, fast_params());
  model.run_seconds(3600.0);
  for (float z : model.zeta()) EXPECT_EQ(z, 0.0f);
  for (float u : model.ubar()) EXPECT_EQ(u, 0.0f);
  for (float v : model.vbar()) EXPECT_EQ(v, 0.0f);
}

TEST(Solver, TidePropagatesIntoHarbor) {
  Grid g = make_test_grid(48, 32);
  auto tide = TidalForcing::gulf_coast_default();
  TidalModel model(g, tide, fast_params());
  // Run two M2 cycles so the interior responds.
  model.run_seconds(25.0 * 3600.0);

  // Track an interior harbor cell over one more cycle; it must oscillate.
  const int hx = g.nx() * 2 / 3, hy = g.ny() / 2;
  ASSERT_TRUE(g.wet(hx, hy)) << "test expects a wet harbor cell";
  float zmin = 1e9f, zmax = -1e9f;
  for (int i = 0; i < 26; ++i) {
    model.run_seconds(1800.0);
    const float z = model.zeta()[g.rho_index(hx, hy)];
    zmin = std::min(zmin, z);
    zmax = std::max(zmax, z);
  }
  EXPECT_GT(zmax - zmin, 0.05f)
      << "harbor shows no tidal range — inlets not connected?";
}

TEST(Solver, HarborRangeIsBoundedRelativeToForcing) {
  // The interior tide may be moderately amplified (standing-wave response
  // of a shallow basin) or attenuated (inlet friction), but must stay
  // bounded relative to the forcing — no resonant blow-up.
  Grid g = make_test_grid(48, 32);
  auto tide = TidalForcing::gulf_coast_default();
  double forcing_range = 0.0;  // max possible peak-to-peak
  for (const auto& c : tide.constituents()) forcing_range += 2.0 * c.amplitude_m;

  TidalModel model(g, tide, fast_params());
  model.run_seconds(25.0 * 3600.0);

  const int hx = g.nx() * 3 / 4, hy = g.ny() / 2;
  ASSERT_TRUE(g.wet(hx, hy));
  float hmin = 1e9f, hmax = -1e9f;
  for (int i = 0; i < 26; ++i) {
    model.run_seconds(1800.0);
    const float zh = model.zeta()[g.rho_index(hx, hy)];
    hmin = std::min(hmin, zh);
    hmax = std::max(hmax, zh);
  }
  EXPECT_GT(hmax - hmin, 0.02f);                        // tide arrives
  EXPECT_LT(hmax - hmin, 1.5f * forcing_range);         // bounded response
}

TEST(Solver, ClosedBasinConservesVolumeExactly) {
  // Seal the west boundary by masking column 0 dry: no open boundary, so
  // the flux-form update must conserve total volume to rounding.
  Grid g(24, 16, 2, 300.0, 300.0);
  for (int iy = 0; iy < g.ny(); ++iy)
    for (int ix = 0; ix < g.nx(); ++ix) {
      g.set_wet(ix, iy, true);
      g.set_h(ix, iy, 5.0f);
    }
  for (int iy = 0; iy < g.ny(); ++iy) g.set_wet(0, iy, false);

  TidalForcing flat({});
  PhysicsParams p = fast_params();
  TidalModel model(g, flat, p);
  // Seed an interior bump via direct state access, then let it slosh.
  auto& slab = model.slab();
  for (int jy = 6; jy < 10; ++jy)
    for (int ix = 10; ix < 14; ++ix)
      slab.zeta_row(jy)[static_cast<size_t>(ix)] = 0.3f;

  const double v0 = model.total_volume();
  model.run_seconds(2.0 * 3600.0);
  const double v1 = model.total_volume();
  EXPECT_NEAR(v1 / v0, 1.0, 1e-6);
  // And the bump must actually have moved (the test is not vacuous).
  EXPECT_LT(std::abs(slab.zeta_row(7)[11]), 0.29f);
}

TEST(Solver, DecomposedMatchesSerial) {
  Grid g = make_test_grid(32, 24);
  auto tide = TidalForcing::gulf_coast_default();
  PhysicsParams p = fast_params();
  const int nsteps = 720;  // 2 simulated hours

  TidalModel serial(g, tide, p);
  for (int i = 0; i < nsteps; ++i) serial.step();

  for (int nranks : {2, 3, 4}) {
    auto par = run_decomposed(g, tide, p, nranks, nsteps);
    auto zs = serial.zeta();
    ASSERT_EQ(par.zeta.size(), zs.size());
    float max_diff = 0;
    for (size_t i = 0; i < zs.size(); ++i)
      max_diff = std::max(max_diff, std::abs(zs[i] - par.zeta[i]));
    EXPECT_EQ(max_diff, 0.0f) << "zeta differs with " << nranks << " ranks";

    auto us = serial.ubar();
    for (size_t i = 0; i < us.size(); ++i)
      ASSERT_EQ(us[i], par.ubar[i]) << "ubar differs at " << i << " with "
                                    << nranks << " ranks";
    auto vs = serial.vbar();
    for (size_t i = 0; i < vs.size(); ++i)
      ASSERT_EQ(vs[i], par.vbar[i]) << "vbar differs at " << i << " with "
                                    << nranks << " ranks";
    EXPECT_GT(par.halo_messages, 0u);
  }
}

TEST(Solver, HaloTrafficScalesWithRankCount) {
  Grid g = make_test_grid(32, 24);
  auto tide = TidalForcing::gulf_coast_default();
  PhysicsParams p = fast_params();
  auto r2 = run_decomposed(g, tide, p, 2, 50);
  auto r4 = run_decomposed(g, tide, p, 4, 50);
  // 2 ranks -> 1 interface; 4 ranks -> 3 interfaces: 3x the messages.
  EXPECT_NEAR(static_cast<double>(r4.halo_messages) / r2.halo_messages, 3.0,
              0.01);
}

TEST(Sigma, LogProfileAveragesToOne) {
  Grid g(8, 8, 6, 100.0, 100.0);
  for (double depth : {0.5, 3.0, 10.0, 25.0}) {
    auto w = log_profile_weights(g, depth);
    double avg = 0.0;
    for (int k = 0; k < g.nz(); ++k)
      avg += w[static_cast<size_t>(k)] * g.sigma_thickness()[static_cast<size_t>(k)];
    EXPECT_NEAR(avg, 1.0, 1e-9) << "depth " << depth;
    // Monotonically increasing toward the surface.
    for (int k = 1; k < g.nz(); ++k)
      EXPECT_GT(w[static_cast<size_t>(k)], w[static_cast<size_t>(k - 1)]);
  }
}

TEST(Sigma, ReconstructionDepthAverageMatchesBarotropic) {
  Grid g = make_test_grid(24, 16);
  auto tide = TidalForcing::gulf_coast_default();
  TidalModel model(g, tide, fast_params());
  model.run_seconds(8.0 * 3600.0);

  auto snap = reconstruct_3d(g, model.time(), model.zeta(), model.ubar(),
                             model.vbar());
  auto ubar = model.ubar();
  for (int iy = 0; iy < g.ny(); ++iy) {
    for (int ix = 0; ix <= g.nx(); ++ix) {
      double avg = 0.0;
      for (int k = 0; k < g.nz(); ++k)
        avg += snap.u3d[static_cast<size_t>(k)][g.u_index(ix, iy)] *
               g.sigma_thickness()[static_cast<size_t>(k)];
      EXPECT_NEAR(avg, ubar[g.u_index(ix, iy)], 1e-4);
    }
  }
}

TEST(Sigma, VerticalVelocityIsSmallRelativeToHorizontal) {
  // The paper notes w is near zero almost everywhere; our continuity-
  // diagnosed w should likewise be orders of magnitude below u.
  Grid g = make_test_grid(24, 16);
  auto tide = TidalForcing::gulf_coast_default();
  TidalModel model(g, tide, fast_params());
  model.run_seconds(10.0 * 3600.0);
  auto snap = reconstruct_3d(g, model.time(), model.zeta(), model.ubar(),
                             model.vbar());
  float umax = 0, wmax = 0;
  for (const auto& layer : snap.u3d)
    for (float x : layer) umax = std::max(umax, std::abs(x));
  for (const auto& layer : snap.w3d)
    for (float x : layer) wmax = std::max(wmax, std::abs(x));
  ASSERT_GT(umax, 0.0f);
  EXPECT_LT(wmax, umax * 0.05f);
}

TEST(Archive, SnapshotCadenceAndCount) {
  Grid g = make_test_grid(24, 16);
  auto tide = TidalForcing::gulf_coast_default();
  ArchiveConfig cfg;
  cfg.spinup_seconds = 3600.0;
  cfg.duration_seconds = 4.0 * 3600.0;
  cfg.interval_seconds = 1800.0;
  auto snaps = simulate_archive(g, tide, fast_params(), cfg);
  ASSERT_EQ(snaps.size(), 9u);  // 0..4h every 30 min inclusive
  for (size_t i = 1; i < snaps.size(); ++i)
    EXPECT_NEAR(snaps[i].time - snaps[i - 1].time, 1800.0, 11.0);
  EXPECT_GE(snaps.front().time, 3600.0 - 1e-6);
}

TEST(Archive, StreamingModeDeliversSameSnapshots) {
  Grid g = make_test_grid(24, 16);
  auto tide = TidalForcing::gulf_coast_default();
  ArchiveConfig cfg;
  cfg.spinup_seconds = 1800.0;
  cfg.duration_seconds = 3600.0;
  auto collected = simulate_archive(g, tide, fast_params(), cfg);
  std::vector<Snapshot> streamed;
  auto returned = simulate_archive(g, tide, fast_params(), cfg,
                                   [&](const Snapshot& s) {
                                     streamed.push_back(s);
                                   });
  EXPECT_TRUE(returned.empty());
  ASSERT_EQ(streamed.size(), collected.size());
  for (size_t i = 0; i < streamed.size(); ++i) {
    EXPECT_EQ(streamed[i].zeta, collected[i].zeta);
    EXPECT_EQ(streamed[i].u3d, collected[i].u3d);
  }
}
