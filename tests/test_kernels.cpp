/// Tests for the parallel cache-blocked kernel layer (tensor/kernels.*):
/// blocked GEMM vs a reference triple loop across odd sizes and broadcast
/// batch shapes, NaN/Inf propagation semantics, bitwise serial-vs-parallel
/// agreement, softmax / layer-norm kernels, permute/transpose fast paths,
/// and the fused attention head split/merge ops.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "nn/attention.hpp"
#include "nn/checkpoint.hpp"
#include "tensor/kernels.hpp"
#include "tensor/tensor.hpp"
#include "test_helpers.hpp"

using namespace coastal;
using tensor::Shape;
using tensor::Tensor;
namespace ker = tensor::kernels;

namespace {

/// Reference batched matmul: plain triple loop, no blocking, no skips.
Tensor reference_matmul(const Tensor& a, const Tensor& b) {
  const size_t nda = a.ndim(), ndb = b.ndim();
  const int64_t m = a.shape()[nda - 2], k = a.shape()[nda - 1];
  const int64_t n = b.shape()[ndb - 1];
  const Shape abatch(a.shape().begin(), a.shape().end() - 2);
  const Shape bbatch(b.shape().begin(), b.shape().end() - 2);
  const Shape batch = tensor::broadcast_shapes(abatch, bbatch);
  Shape out_shape = batch;
  out_shape.push_back(m);
  out_shape.push_back(n);
  Tensor out = Tensor::zeros(out_shape);
  const Shape astr = tensor::broadcast_strides(abatch, batch);
  const Shape bstr = tensor::broadcast_strides(bbatch, batch);
  tensor::CoordIter it(batch);
  int64_t bi = 0;
  float* po = out.raw();
  do {
    const float* A = a.raw() + tensor::dot_strides(it.coords(), astr) * m * k;
    const float* B = b.raw() + tensor::dot_strides(it.coords(), bstr) * k * n;
    float* C = po + bi * m * n;
    for (int64_t i = 0; i < m; ++i)
      for (int64_t kk = 0; kk < k; ++kk)
        for (int64_t j = 0; j < n; ++j) C[i * n + j] += A[i * k + kk] * B[kk * n + j];
    ++bi;
  } while (it.next());
  return out;
}

}  // namespace

TEST(Kernels, MatmulMatchesReferenceAcrossTileBoundaries) {
  util::Rng rng(11);
  tensor::NoGradGuard ng;
  // Odd sizes crossing the MR/NR/Mc/Kc/Nc boundaries, plus tiny shapes
  // that stay on the naive path.
  const int64_t sizes[][3] = {{1, 1, 1},   {3, 5, 2},    {8, 8, 8},
                              {33, 65, 17}, {65, 33, 129}, {70, 256, 40},
                              {130, 40, 300}};
  for (const auto& s : sizes) {
    Tensor a = Tensor::randn({s[0], s[1]}, rng);
    Tensor b = Tensor::randn({s[1], s[2]}, rng);
    Tensor got = a.matmul(b);
    Tensor want = reference_matmul(a, b);
    EXPECT_LT(coastal::testing::max_abs_diff(got, want),
              1e-3 * std::sqrt(static_cast<double>(s[1])))
        << s[0] << "x" << s[1] << "x" << s[2];
  }
}

TEST(Kernels, RawGemmEntryPointAccumulatesIntoC) {
  // The public kernels::gemm contract is C += A·B (not overwrite).
  util::Rng rng(22);
  tensor::NoGradGuard ng;
  Tensor a = Tensor::randn({33, 17}, rng);
  Tensor b = Tensor::randn({17, 65}, rng);
  Tensor want = reference_matmul(a, b);
  std::vector<float> c(static_cast<size_t>(33 * 65), 1.0f);
  ker::gemm(a.raw(), b.raw(), c.data(), 33, 17, 65);
  const float* pw = want.raw();
  for (size_t i = 0; i < c.size(); ++i)
    ASSERT_NEAR(c[i], pw[i] + 1.0f, 1e-3) << "flat index " << i;
}

TEST(Kernels, MatmulBroadcastBatchShapes) {
  util::Rng rng(12);
  tensor::NoGradGuard ng;
  struct Case {
    Shape a, b;
  };
  const Case cases[] = {
      {{2, 1, 9, 7}, {1, 3, 7, 5}},   // both sides broadcast
      {{4, 6, 5}, {5, 8}},            // batched x unbatched
      {{9, 7}, {3, 7, 4}},            // unbatched x batched
      {{2, 3, 33, 17}, {2, 3, 17, 65}},  // plain batch, odd tile edges
  };
  for (const auto& c : cases) {
    Tensor a = Tensor::randn(c.a, rng);
    Tensor b = Tensor::randn(c.b, rng);
    Tensor got = a.matmul(b);
    Tensor want = reference_matmul(a, b);
    ASSERT_EQ(got.shape(), want.shape());
    EXPECT_LT(coastal::testing::max_abs_diff(got, want), 1e-2);
  }
}

// Regression: the historic inner-loop skip `if (a == 0.0f) continue;`
// silently suppressed NaN/Inf propagation from B wherever A had a zero.
// The blocked kernel must honor IEEE semantics: 0 * NaN = NaN, 0 * Inf = NaN.
TEST(Kernels, MatmulPropagatesNaNAndInfThroughZeroEntries) {
  tensor::NoGradGuard ng;
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  Tensor a = Tensor::from_vector({2, 2}, {1.0f, 0.0f, 2.0f, 3.0f});
  Tensor b = Tensor::from_vector({2, 2}, {5.0f, 6.0f, nan, inf});
  Tensor c = a.matmul(b);
  // Row 0 multiplies the NaN/Inf row of B by 0: 0*NaN and 0*Inf are NaN.
  EXPECT_TRUE(std::isnan(c.at({0, 0})));
  EXPECT_TRUE(std::isnan(c.at({0, 1})));
  EXPECT_TRUE(std::isnan(c.at({1, 0})));           // 2*5 + 3*NaN
  EXPECT_TRUE(std::isinf(c.at({1, 1})));           // 2*6 + 3*Inf

  // Also on the blocked (large) path: one zero A entry against an Inf in B.
  Tensor a2 = Tensor::ones({40, 64});
  Tensor b2 = Tensor::ones({64, 48});
  a2.set({7, 3}, 0.0f);
  b2.set({3, 11}, inf);
  Tensor c2 = a2.matmul(b2);
  EXPECT_TRUE(std::isnan(c2.at({7, 11})));  // 0 * inf
  EXPECT_TRUE(std::isinf(c2.at({6, 11})));  // 1 * inf
}

TEST(Kernels, SerialAndParallelResultsAreBitwiseIdentical) {
  util::Rng rng(13);
  Tensor a = Tensor::randn({3, 150, 70}, rng);
  Tensor b = Tensor::randn({3, 70, 200}, rng);
  Tensor x = Tensor::randn({37, 130}, rng);
  Tensor gamma = Tensor::randn({130}, rng);
  Tensor beta = Tensor::randn({130}, rng);
  Tensor big = Tensor::randn({5, 33, 65}, rng);
  Tensor bias = Tensor::randn({1, 33, 1}, rng);
  tensor::NoGradGuard ng;

  auto run_all = [&] {
    std::vector<Tensor> r;
    r.push_back(a.matmul(b));
    r.push_back(x.softmax_lastdim());
    r.push_back(x.layer_norm(gamma, beta));
    r.push_back(big.transpose_last());
    r.push_back(big.permute({2, 0, 1}));
    r.push_back(big.add(bias));
    r.push_back(big.exp());
    return r;
  };

  coastal::testing::KernelConfigOverride guard;
  ker::config().num_threads = 1;
  auto serial = run_all();
  ker::config().num_threads = 8;
  ker::config().parallel_grain = 1;  // force chunked dispatch
  auto parallel = run_all();

  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i].shape(), parallel[i].shape()) << "result " << i;
    EXPECT_EQ(std::memcmp(serial[i].raw(), parallel[i].raw(),
                          static_cast<size_t>(serial[i].numel()) *
                              sizeof(float)),
              0)
        << "serial vs parallel mismatch in result " << i;
  }
}

TEST(Kernels, SoftmaxRowsMatchesReference) {
  util::Rng rng(14);
  Tensor x = Tensor::randn({21, 37}, rng);
  tensor::NoGradGuard ng;
  Tensor y = x.softmax_lastdim();
  for (int64_t r = 0; r < 21; ++r) {
    double denom = 0.0, mx = -1e30;
    for (int64_t c = 0; c < 37; ++c) mx = std::max(mx, (double)x.at({r, c}));
    for (int64_t c = 0; c < 37; ++c) denom += std::exp(x.at({r, c}) - mx);
    for (int64_t c = 0; c < 37; ++c) {
      EXPECT_NEAR(y.at({r, c}), std::exp(x.at({r, c}) - mx) / denom, 1e-5);
    }
  }
}

TEST(Kernels, LayerNormSinglePassMatchesTwoPassReference) {
  util::Rng rng(15);
  // Large mean offset stresses the E[x^2] - E[x]^2 formulation.
  Tensor x = Tensor::randn({9, 64}, rng).add_scalar(50.0f);
  Tensor gamma = Tensor::randn({64}, rng);
  Tensor beta = Tensor::randn({64}, rng);
  tensor::NoGradGuard ng;
  Tensor y = x.layer_norm(gamma, beta);
  for (int64_t r = 0; r < 9; ++r) {
    double mu = 0.0, var = 0.0;
    for (int64_t c = 0; c < 64; ++c) mu += x.at({r, c});
    mu /= 64.0;
    for (int64_t c = 0; c < 64; ++c) {
      const double d = x.at({r, c}) - mu;
      var += d * d;
    }
    var /= 64.0;
    const double is = 1.0 / std::sqrt(var + 1e-5);
    for (int64_t c = 0; c < 64; ++c) {
      const double want = gamma.at({c}) * (x.at({r, c}) - mu) * is + beta.at({c});
      EXPECT_NEAR(y.at({r, c}), want, 1e-3);
    }
  }
}

TEST(Kernels, TransposeAndPermuteFastPathsMatchCoordIterReference) {
  util::Rng rng(16);
  tensor::NoGradGuard ng;
  Tensor x = Tensor::randn({3, 33, 65}, rng);
  const std::vector<std::vector<size_t>> perms = {
      {0, 2, 1},  // blocked transpose fast path
      {2, 1, 0},
      {1, 2, 0},
  };
  for (const auto& perm : perms) {
    Tensor got = x.permute(perm);
    // CoordIter reference gather.
    Shape out_shape(3);
    for (size_t i = 0; i < 3; ++i) out_shape[i] = x.shape()[perm[i]];
    const Shape in_str = tensor::strides_of(x.shape());
    Shape gstr(3);
    for (size_t i = 0; i < 3; ++i) gstr[i] = in_str[perm[i]];
    tensor::CoordIter it(out_shape);
    size_t k = 0;
    do {
      EXPECT_EQ(got.raw()[k++],
                x.raw()[tensor::dot_strides(it.coords(), gstr)]);
    } while (it.next());
  }
}

TEST(Kernels, SplitQkvHeadMatchesPermuteSlicePath) {
  util::Rng rng(17);
  const int64_t B = 2, N = 5, heads = 3, hd = 4;
  const int64_t C = heads * hd;
  Tensor qkv = Tensor::randn({B, N, 3 * C}, rng);
  tensor::NoGradGuard ng;
  Tensor ref = qkv.reshape({B, N, 3, heads, hd}).permute({2, 0, 3, 1, 4});
  for (int which = 0; which < 3; ++which) {
    Tensor got = nn::split_qkv_head(qkv, heads, which);
    Tensor want = ref.slice(0, which, 1).reshape({B, heads, N, hd});
    coastal::testing::expect_tensor_near(got, want, 0.0);
  }
}

TEST(Kernels, MergeHeadsMatchesPermuteReshapePath) {
  util::Rng rng(18);
  const int64_t B = 2, heads = 3, N = 5, hd = 4;
  Tensor x = Tensor::randn({B, heads, N, hd}, rng);
  tensor::NoGradGuard ng;
  Tensor got = nn::merge_heads(x);
  Tensor want = x.permute({0, 2, 1, 3}).reshape({B, N, heads * hd});
  coastal::testing::expect_tensor_near(got, want, 0.0);
}

TEST(Kernels, SplitAndMergeHeadsGradcheck) {
  util::Rng rng(19);
  const int64_t B = 1, N = 3, heads = 2, hd = 2;
  const int64_t C = heads * hd;
  Tensor qkv = Tensor::randn({B, N, 3 * C}, rng);
  coastal::testing::gradcheck(
      [&](const Tensor& t) {
        Tensor q = nn::split_qkv_head(t, heads, 0);
        Tensor k = nn::split_qkv_head(t, heads, 1);
        Tensor v = nn::split_qkv_head(t, heads, 2);
        return nn::merge_heads(q.mul(k).add(v)).sum();
      },
      qkv);
}

TEST(Kernels, AttentionForwardGradcheckThroughFusedPath) {
  util::Rng rng(20);
  nn::MultiHeadSelfAttention attn(8, 2, rng);
  Tensor x = Tensor::randn({2, 3, 8}, rng);
  coastal::testing::gradcheck(
      [&](const Tensor& t) { return attn.forward(t).mul(t).sum(); }, x);
}

// ---------------------------------------------------------------------------
// Fused (flash-style) attention
// ---------------------------------------------------------------------------

namespace {

/// Unfused reference: materialize scores, softmax, weighted sum — the same
/// tensor-op chain the training path records.  q/k/v are [B, h, N, d];
/// mask (optional) is the additive [groups, N, N] window bias.
Tensor reference_attention(const Tensor& q, const Tensor& k, const Tensor& v,
                           const Tensor& mask, float scale) {
  const int64_t B = q.shape()[0], h = q.shape()[1], N = q.shape()[2];
  Tensor scores = q.matmul(k.transpose_last()).mul_scalar(scale);
  if (mask.defined()) {
    const int64_t groups = mask.shape()[0];
    Tensor s5 = scores.reshape({B / groups, groups, h, N, N});
    Tensor m5 = mask.reshape({1, groups, 1, N, N});
    scores = s5.add(m5).reshape({B, h, N, N});
  }
  return scores.softmax_lastdim().matmul(v);
}

/// Drive kernels::attention_fused on [B, h, N, d] tensors, mirroring the
/// per-(batch × head) mask-offset layout nn::fused_attention builds.
Tensor run_fused(const Tensor& q, const Tensor& k, const Tensor& v,
                 const Tensor& mask, float scale) {
  const int64_t B = q.shape()[0], h = q.shape()[1], N = q.shape()[2],
                d = q.shape()[3];
  const int64_t nb = B * h;
  std::vector<float> out(static_cast<size_t>(nb * N * d));
  std::vector<int64_t> moff;
  const float* mp = nullptr;
  if (mask.defined()) {
    const int64_t groups = mask.shape()[0];
    moff.resize(static_cast<size_t>(nb));
    for (int64_t e = 0; e < nb; ++e) moff[e] = ((e / h) % groups) * N * N;
    mp = mask.raw();
  }
  ker::attention_fused(q.raw(), k.raw(), v.raw(), out.data(), nb, N, N, d,
                       scale, mp, moff);
  return Tensor::from_vector({B, h, N, d}, std::move(out));
}

}  // namespace

TEST(Kernels, FusedAttentionMatchesReferenceAcrossOddShapes) {
  util::Rng rng(30);
  tensor::NoGradGuard ng;
  coastal::testing::KernelConfigOverride guard;
  // Small blocks so even short sequences cross query/KV block boundaries.
  ker::config().attn_bq = 8;
  ker::config().attn_bkv = 16;
  // Odd / non-power-of-two N straddling both block sizes; odd head dim.
  const int64_t seqs[] = {1, 3, 17, 33, 97};
  for (int64_t N : seqs) {
    const int64_t B = 2, h = 3, d = 5;
    Tensor q = Tensor::randn({B, h, N, d}, rng);
    Tensor k = Tensor::randn({B, h, N, d}, rng);
    Tensor v = Tensor::randn({B, h, N, d}, rng);
    const float scale = 1.0f / std::sqrt(static_cast<float>(d));
    Tensor got = run_fused(q, k, v, Tensor(), scale);
    Tensor want = reference_attention(q, k, v, Tensor(), scale);
    ASSERT_EQ(got.shape(), want.shape());
    EXPECT_LT(coastal::testing::max_abs_diff(got, want), 1e-5) << "N=" << N;
  }
}

TEST(Kernels, FusedAttentionMaskedWindowsMatchReference) {
  util::Rng rng(31);
  tensor::NoGradGuard ng;
  coastal::testing::KernelConfigOverride guard;
  ker::config().attn_bq = 4;
  ker::config().attn_bkv = 8;
  // B = rep * groups with window index fastest-varying; the -1e9 entries
  // reproduce the shifted-window cross-boundary mask pattern.
  const int64_t groups = 2, rep = 2, B = rep * groups, h = 2, N = 21, d = 6;
  Tensor q = Tensor::randn({B, h, N, d}, rng);
  Tensor k = Tensor::randn({B, h, N, d}, rng);
  Tensor v = Tensor::randn({B, h, N, d}, rng);
  std::vector<float> mdata(static_cast<size_t>(groups * N * N), 0.0f);
  for (int64_t g = 0; g < groups; ++g)
    for (int64_t i = 0; i < N; ++i)
      for (int64_t j = 0; j < N; ++j)
        // Group 0: block-diagonal halves; group 1: forbid a column stripe.
        if ((g == 0 && (i < N / 2) != (j < N / 2)) || (g == 1 && j % 5 == 2))
          mdata[static_cast<size_t>((g * N + i) * N + j)] = -1e9f;
  Tensor mask = Tensor::from_vector({groups, N, N}, std::move(mdata));
  const float scale = 0.4f;
  Tensor got = run_fused(q, k, v, mask, scale);
  Tensor want = reference_attention(q, k, v, mask, scale);
  EXPECT_LT(coastal::testing::max_abs_diff(got, want), 1e-5);
  // Fully-masked scores must not leak weight: disallowed columns get
  // softmax mass ~e^-1e9 = 0, so rows still sum to the allowed mass only.
  EXPECT_TRUE(std::isfinite(got.at({0, 0, 0, 0})));
}

TEST(Kernels, FusedAttentionPropagatesNaNAndInf) {
  util::Rng rng(32);
  tensor::NoGradGuard ng;
  coastal::testing::KernelConfigOverride guard;
  ker::config().attn_bq = 8;
  ker::config().attn_bkv = 8;
  const int64_t B = 1, h = 1, N = 20, d = 4;
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  const float scale = 0.5f;

  // NaN in one query row poisons exactly that output row (every score in
  // the row is NaN), and no other row.
  {
    Tensor q = Tensor::randn({B, h, N, d}, rng);
    Tensor k = Tensor::randn({B, h, N, d}, rng);
    Tensor v = Tensor::randn({B, h, N, d}, rng);
    q.set({0, 0, 7, 2}, nan);
    Tensor got = run_fused(q, k, v, Tensor(), scale);
    for (int64_t dd = 0; dd < d; ++dd)
      EXPECT_TRUE(std::isnan(got.at({0, 0, 7, dd}))) << "dd=" << dd;
    for (int64_t dd = 0; dd < d; ++dd)
      EXPECT_TRUE(std::isfinite(got.at({0, 0, 6, dd}))) << "dd=" << dd;
  }
  // NaN in one key row lands in every score row: the whole batch entry
  // goes NaN, matching the unfused softmax (NaN denom poisons the row).
  {
    Tensor q = Tensor::randn({B, h, N, d}, rng);
    Tensor k = Tensor::randn({B, h, N, d}, rng);
    Tensor v = Tensor::randn({B, h, N, d}, rng);
    k.set({0, 0, 13, 1}, nan);
    Tensor got = run_fused(q, k, v, Tensor(), scale);
    for (int64_t i = 0; i < N; ++i)
      EXPECT_TRUE(std::isnan(got.at({0, 0, i, 0}))) << "row " << i;
  }
  // NaN in a value row reaches every output row through the (always
  // positive) softmax weights.
  {
    Tensor q = Tensor::randn({B, h, N, d}, rng);
    Tensor k = Tensor::randn({B, h, N, d}, rng);
    Tensor v = Tensor::randn({B, h, N, d}, rng);
    v.set({0, 0, 5, 3}, nan);
    Tensor got = run_fused(q, k, v, Tensor(), scale);
    for (int64_t i = 0; i < N; ++i)
      EXPECT_TRUE(std::isnan(got.at({0, 0, i, 3}))) << "row " << i;
    EXPECT_TRUE(std::isfinite(got.at({0, 0, 0, 0})));
  }
  // A +inf score turns the row into NaN in the unfused softmax
  // (exp(inf - inf)); the online recurrence must agree, not silently
  // renormalize it away.
  {
    Tensor q = Tensor::zeros({B, h, N, d});
    Tensor k = Tensor::zeros({B, h, N, d});
    Tensor v = Tensor::ones({B, h, N, d});
    q.set({0, 0, 2, 0}, inf);
    k.set({0, 0, 9, 0}, 1.0f);  // score(2, 9) = inf
    Tensor got = run_fused(q, k, v, Tensor(), scale);
    Tensor want = reference_attention(q, k, v, Tensor(), scale);
    for (int64_t i = 0; i < N; ++i)
      EXPECT_EQ(std::isnan(got.at({0, 0, i, 0})),
                std::isnan(want.at({0, 0, i, 0})))
          << "row " << i;
    for (int64_t dd = 0; dd < d; ++dd)
      EXPECT_TRUE(std::isnan(got.at({0, 0, 2, dd})));
  }
}

TEST(Kernels, FusedAttentionInfMaskFullyMaskedBlocksMatchReference) {
  // The conventional additive mask uses -inf, not -1e9.  A query row whose
  // leading KV blocks are *entirely* -inf must not NaN-poison the online
  // recurrence (exp(-inf - -inf)): the reference softmax, whose max spans
  // the whole row, gives those keys weight 0 and a finite result.
  util::Rng rng(36);
  tensor::NoGradGuard ng;
  coastal::testing::KernelConfigOverride guard;
  ker::config().attn_bq = 8;
  ker::config().attn_bkv = 8;
  const int64_t B = 1, h = 2, N = 40, d = 6;
  const float inf = std::numeric_limits<float>::infinity();
  Tensor q = Tensor::randn({B, h, N, d}, rng);
  Tensor k = Tensor::randn({B, h, N, d}, rng);
  Tensor v = Tensor::randn({B, h, N, d}, rng);
  std::vector<float> mdata(static_cast<size_t>(N * N), 0.0f);
  // Every row: first 24 keys (= 3 full KV blocks) disallowed.
  for (int64_t i = 0; i < N; ++i)
    for (int64_t j = 0; j < 24; ++j)
      mdata[static_cast<size_t>(i * N + j)] = -inf;
  // Row 11: *all* keys disallowed — both paths must yield NaN (0/0).
  for (int64_t j = 0; j < N; ++j)
    mdata[static_cast<size_t>(11 * N + j)] = -inf;
  Tensor mask = Tensor::from_vector({1, N, N}, std::move(mdata));
  Tensor got = run_fused(q, k, v, mask, 0.5f);
  Tensor want = reference_attention(q, k, v, mask, 0.5f);
  for (int64_t hh = 0; hh < h; ++hh) {
    for (int64_t dd = 0; dd < d; ++dd) {
      EXPECT_TRUE(std::isnan(got.at({0, hh, 11, dd})));
      EXPECT_TRUE(std::isnan(want.at({0, hh, 11, dd})));
    }
    for (int64_t i = 0; i < N; ++i) {
      if (i == 11) continue;
      for (int64_t dd = 0; dd < d; ++dd) {
        const double g = got.at({0, hh, i, dd}), w = want.at({0, hh, i, dd});
        EXPECT_TRUE(std::isfinite(g)) << "row " << i;
        EXPECT_NEAR(g, w, 1e-5) << "row " << i << " dd " << dd;
      }
    }
  }
}

TEST(Kernels, FusedAttentionSerialVsParallelBitwise) {
  util::Rng rng(33);
  tensor::NoGradGuard ng;
  const int64_t B = 3, h = 2, N = 70, d = 8;
  Tensor q = Tensor::randn({B, h, N, d}, rng);
  Tensor k = Tensor::randn({B, h, N, d}, rng);
  Tensor v = Tensor::randn({B, h, N, d}, rng);
  Tensor mask;
  {
    std::vector<float> mdata(static_cast<size_t>(3 * N * N), 0.0f);
    for (size_t i = 0; i < mdata.size(); i += 7) mdata[i] = -1e9f;
    mask = Tensor::from_vector({3, N, N}, std::move(mdata));
  }
  coastal::testing::KernelConfigOverride guard;
  ker::config().attn_bq = 16;  // several tasks per batch entry
  ker::config().attn_bkv = 32;
  ker::config().num_threads = 1;
  Tensor serial = run_fused(q, k, v, mask, 0.3f);
  ker::config().num_threads = 8;
  ker::config().parallel_grain = 1;  // force chunked dispatch
  Tensor parallel = run_fused(q, k, v, mask, 0.3f);
  ASSERT_EQ(serial.shape(), parallel.shape());
  EXPECT_EQ(std::memcmp(serial.raw(), parallel.raw(),
                        static_cast<size_t>(serial.numel()) * sizeof(float)),
            0);
}

TEST(Kernels, AttentionModuleRoutesFusedAndUnfusedConsistently) {
  util::Rng rng(34);
  nn::MultiHeadSelfAttention attn(24, 4, rng);
  const int64_t B = 4, N = 48;
  Tensor x = Tensor::randn({B, N, 24}, rng);
  std::vector<float> mdata(static_cast<size_t>(2 * N * N), 0.0f);
  for (int64_t i = 0; i < N; ++i)
    for (int64_t j = 0; j < N; ++j)
      if ((i + j) % 3 == 0) mdata[static_cast<size_t>((N + i) * N + j)] = -1e9f;
  Tensor mask = Tensor::from_vector({2, N, N}, std::move(mdata));

  tensor::NoGradGuard ng;
  coastal::testing::KernelConfigOverride guard;
  ker::config().attn_fused_min_n = 1;  // force the fused inference path
  Tensor fused_plain = attn.forward(x);
  Tensor fused_masked = attn.forward(x, mask);
  ker::config().attn_fused_min_n = N + 1;  // force the unfused path
  Tensor unfused_plain = attn.forward(x);
  Tensor unfused_masked = attn.forward(x, mask);
  coastal::testing::expect_tensor_near(fused_plain, unfused_plain, 1e-4);
  coastal::testing::expect_tensor_near(fused_masked, unfused_masked, 1e-4);
}

TEST(Kernels, AttentionFallbackThresholdKeepsTinyWindowsUnfused) {
  util::Rng rng(35);
  nn::MultiHeadSelfAttention attn(16, 2, rng);
  Tensor x = Tensor::randn({2, 8, 16}, rng);  // N = 8
  tensor::NoGradGuard ng;
  coastal::testing::KernelConfigOverride guard;
  // N below the default threshold (attn_fused_min_n = 0 resolves to the
  // head-dim-aware table; this module's head dim is 16/2 = 8): the forward
  // must be bitwise identical to an explicitly-unfused forward, proving
  // the fallback engaged.
  ASSERT_EQ(0, ker::config().attn_fused_min_n);
  ASSERT_LT(8, ker::fused_attention_min_n(8));
  Tensor below = attn.forward(x);
  ker::config().attn_fused_min_n = 1000000;
  Tensor unfused = attn.forward(x);
  ASSERT_EQ(below.shape(), unfused.shape());
  EXPECT_EQ(std::memcmp(below.raw(), unfused.raw(),
                        static_cast<size_t>(below.numel()) * sizeof(float)),
            0);
}

TEST(Kernels, FusedGateIsMemoryAware) {
  coastal::testing::KernelConfigOverride guard;
  ker::config().attn_fused_min_n = 0;  // auto mode
  const int64_t ref_b = ker::config().attn_fused_ref_batch;
  const int64_t n_ref = ker::fused_attention_min_n(32);
  // At the reference batch the memory-aware gate reduces to the historic
  // N threshold exactly.
  EXPECT_TRUE(ker::fused_attention_wins(ref_b, n_ref, 32));
  EXPECT_FALSE(ker::fused_attention_wins(ref_b, n_ref - 1, 32));
  // A 4x batch moves the crossover down to N_ref / 2: same materialized
  // nbatch*N^2 score bytes.
  EXPECT_TRUE(ker::fused_attention_wins(4 * ref_b, n_ref / 2, 32));
  EXPECT_FALSE(ker::fused_attention_wins(ref_b, n_ref / 2, 32));
  // A tiny batch moves it up: at nbatch = ref_b / 4, N_ref stays unfused.
  EXPECT_FALSE(ker::fused_attention_wins(ref_b / 4, n_ref, 32));
  // An explicit attn_fused_min_n stays a pure N threshold at any batch.
  ker::config().attn_fused_min_n = 100;
  EXPECT_TRUE(ker::fused_attention_wins(1, 100, 32));
  EXPECT_FALSE(ker::fused_attention_wins(1 << 20, 99, 32));
}

// ---------------------------------------------------------------------------
// Fused (flash-style) attention backward
// ---------------------------------------------------------------------------

namespace {

/// Analytic gradients of sum(attention(q, k, v) * seed) through the
/// *unfused* reference chain (matmul + softmax autograd) — the ground
/// truth the fused recompute-based backward must reproduce.
struct AttnGrads {
  Tensor dq, dk, dv;
};

AttnGrads reference_attention_grads(const Tensor& q, const Tensor& k,
                                    const Tensor& v, const Tensor& mask,
                                    float scale, const Tensor& seed) {
  Tensor ql = q.detach(), kl = k.detach(), vl = v.detach();
  ql.set_requires_grad(true);
  kl.set_requires_grad(true);
  vl.set_requires_grad(true);
  reference_attention(ql, kl, vl, mask, scale).mul(seed).sum().backward();
  return {ql.grad(), kl.grad(), vl.grad()};
}

AttnGrads fused_attention_grads(const Tensor& q, const Tensor& k,
                                const Tensor& v, const Tensor& mask,
                                float scale, const Tensor& seed) {
  Tensor ql = q.detach(), kl = k.detach(), vl = v.detach();
  ql.set_requires_grad(true);
  kl.set_requires_grad(true);
  vl.set_requires_grad(true);
  nn::fused_attention(ql, kl, vl, mask, scale).mul(seed).sum().backward();
  return {ql.grad(), kl.grad(), vl.grad()};
}

}  // namespace

TEST(Kernels, FusedBackwardMatchesReferenceAcrossShapesAndHeadDims) {
  util::Rng rng(40);
  coastal::testing::KernelConfigOverride guard;
  ker::config().attn_bq = 8;
  ker::config().attn_bkv = 16;  // odd N crosses KV-block boundaries
  struct Case {
    int64_t B, h, N, d;
  };
  // Odd / non-pow2 N straddling the block sizes; head dims covering every
  // specialized instantiation (4..64) plus the runtime-d fallback (5).
  const Case cases[] = {{2, 3, 17, 4},  {1, 2, 33, 8},  {2, 1, 21, 16},
                        {1, 2, 97, 32}, {1, 1, 40, 64}, {2, 2, 19, 5}};
  for (const auto& c : cases) {
    Tensor q = Tensor::randn({c.B, c.h, c.N, c.d}, rng);
    Tensor k = Tensor::randn({c.B, c.h, c.N, c.d}, rng);
    Tensor v = Tensor::randn({c.B, c.h, c.N, c.d}, rng);
    Tensor seed = Tensor::randn({c.B, c.h, c.N, c.d}, rng);
    const float scale = 1.0f / std::sqrt(static_cast<float>(c.d));
    AttnGrads want = reference_attention_grads(q, k, v, Tensor(), scale, seed);
    AttnGrads got = fused_attention_grads(q, k, v, Tensor(), scale, seed);
    const std::string label = "N=" + std::to_string(c.N) +
                              " d=" + std::to_string(c.d);
    EXPECT_LT(coastal::testing::max_abs_diff(got.dq, want.dq), 2e-4) << label;
    EXPECT_LT(coastal::testing::max_abs_diff(got.dk, want.dk), 2e-4) << label;
    EXPECT_LT(coastal::testing::max_abs_diff(got.dv, want.dv), 2e-4) << label;
  }
}

TEST(Kernels, FusedBackwardMaskedWindowsMatchReference) {
  util::Rng rng(41);
  coastal::testing::KernelConfigOverride guard;
  ker::config().attn_bq = 4;
  ker::config().attn_bkv = 8;
  // Same shifted-window mask pattern as the forward test: group 0 is
  // block-diagonal halves, group 1 forbids a column stripe; B = rep*groups
  // with window index fastest-varying.
  const int64_t groups = 2, rep = 2, B = rep * groups, h = 2, N = 21, d = 6;
  Tensor q = Tensor::randn({B, h, N, d}, rng);
  Tensor k = Tensor::randn({B, h, N, d}, rng);
  Tensor v = Tensor::randn({B, h, N, d}, rng);
  Tensor seed = Tensor::randn({B, h, N, d}, rng);
  std::vector<float> mdata(static_cast<size_t>(groups * N * N), 0.0f);
  for (int64_t g = 0; g < groups; ++g)
    for (int64_t i = 0; i < N; ++i)
      for (int64_t j = 0; j < N; ++j)
        if ((g == 0 && (i < N / 2) != (j < N / 2)) || (g == 1 && j % 5 == 2))
          mdata[static_cast<size_t>((g * N + i) * N + j)] = -1e9f;
  Tensor mask = Tensor::from_vector({groups, N, N}, std::move(mdata));
  const float scale = 0.4f;
  AttnGrads want = reference_attention_grads(q, k, v, mask, scale, seed);
  AttnGrads got = fused_attention_grads(q, k, v, mask, scale, seed);
  EXPECT_LT(coastal::testing::max_abs_diff(got.dq, want.dq), 2e-4);
  EXPECT_LT(coastal::testing::max_abs_diff(got.dk, want.dk), 2e-4);
  EXPECT_LT(coastal::testing::max_abs_diff(got.dv, want.dv), 2e-4);
  // Masked-out keys must get gradient contributions of exactly zero from
  // the rows that exclude them (weight is exactly 0 on both paths), so no
  // NaN/garbage leaks through a -1e9 bias.
  for (int64_t dd = 0; dd < d; ++dd)
    EXPECT_TRUE(std::isfinite(got.dk.at({0, 0, 2, dd})));
}

TEST(Kernels, FusedBackwardGradcheckOddShapes) {
  util::Rng rng(42);
  coastal::testing::KernelConfigOverride guard;
  ker::config().attn_bq = 4;
  ker::config().attn_bkv = 8;
  // Numeric gradcheck straight through nn::fused_attention (forward is the
  // fused kernel on every loss evaluation, backward is the recompute
  // kernel).  Small odd shape to keep central differences cheap.
  const int64_t B = 1, h = 2, N = 11, d = 4;
  Tensor q = Tensor::randn({B, h, N, d}, rng);
  Tensor k = Tensor::randn({B, h, N, d}, rng);
  Tensor v = Tensor::randn({B, h, N, d}, rng);
  const float scale = 0.5f;
  coastal::testing::gradcheck(
      [&](const Tensor& t) {
        return nn::fused_attention(t, k, v, Tensor(), scale).mul(t).sum();
      },
      q);
  coastal::testing::gradcheck(
      [&](const Tensor& t) {
        return nn::fused_attention(q, t, v, Tensor(), scale).sum();
      },
      k);
  coastal::testing::gradcheck(
      [&](const Tensor& t) {
        return nn::fused_attention(q, k, t, Tensor(), scale).sum();
      },
      v);
}

TEST(Kernels, AttentionModuleTrainingGradcheckThroughFusedPath) {
  util::Rng rng(43);
  coastal::testing::KernelConfigOverride guard;
  ker::config().attn_fused_min_n = 1;  // force the fused training path
  nn::MultiHeadSelfAttention attn(8, 2, rng);
  Tensor x = Tensor::randn({2, 5, 8}, rng);
  coastal::testing::gradcheck(
      [&](const Tensor& t) { return attn.forward(t).mul(t).sum(); }, x);
}

TEST(Kernels, FusedBackwardSerialVsParallelBitwise) {
  util::Rng rng(44);
  const int64_t B = 3, h = 2, N = 70, d = 8;
  Tensor q = Tensor::randn({B, h, N, d}, rng);
  Tensor k = Tensor::randn({B, h, N, d}, rng);
  Tensor v = Tensor::randn({B, h, N, d}, rng);
  Tensor seed = Tensor::randn({B, h, N, d}, rng);
  Tensor mask;
  {
    std::vector<float> mdata(static_cast<size_t>(3 * N * N), 0.0f);
    for (size_t i = 0; i < mdata.size(); i += 7) mdata[i] = -1e9f;
    mask = Tensor::from_vector({3, N, N}, std::move(mdata));
  }
  coastal::testing::KernelConfigOverride guard;
  ker::config().attn_bq = 16;
  ker::config().attn_bkv = 32;
  ker::config().num_threads = 1;
  AttnGrads serial = fused_attention_grads(q, k, v, mask, 0.3f, seed);
  ker::config().num_threads = 8;
  ker::config().parallel_grain = 1;  // force chunked dispatch
  AttnGrads parallel = fused_attention_grads(q, k, v, mask, 0.3f, seed);
  const Tensor* s[] = {&serial.dq, &serial.dk, &serial.dv};
  const Tensor* p[] = {&parallel.dq, &parallel.dk, &parallel.dv};
  for (int i = 0; i < 3; ++i) {
    ASSERT_EQ(s[i]->shape(), p[i]->shape()) << "grad " << i;
    EXPECT_EQ(std::memcmp(s[i]->raw(), p[i]->raw(),
                          static_cast<size_t>(s[i]->numel()) * sizeof(float)),
              0)
        << "serial vs parallel mismatch in grad " << i;
  }
}

TEST(Kernels, FusedTrainingPathNeverMaterializesScoreTensor) {
  // The whole point of the fused training path: the autograd node holds
  // [B, h, N] row statistics, not [B, h, N, N] scores.  Compare peak
  // allocation of a forward+backward on both paths; the unfused chain
  // materializes several N^2 tensors, the fused one none.
  util::Rng rng(45);
  const int64_t B = 2, h = 2, N = 128, d = 8;
  Tensor q = Tensor::randn({B, h, N, d}, rng);
  Tensor k = Tensor::randn({B, h, N, d}, rng);
  Tensor v = Tensor::randn({B, h, N, d}, rng);
  Tensor seed = Tensor::randn({B, h, N, d}, rng);

  auto peak_of = [&](auto&& fn) {
    tensor::reset_peak_bytes();
    const uint64_t before = tensor::alloc_stats().current_bytes;
    fn();
    return tensor::alloc_stats().peak_bytes - before;
  };
  const uint64_t peak_unfused = peak_of(
      [&] { reference_attention_grads(q, k, v, Tensor(), 0.35f, seed); });
  const uint64_t peak_fused = peak_of(
      [&] { fused_attention_grads(q, k, v, Tensor(), 0.35f, seed); });
  const uint64_t score_bytes =
      static_cast<uint64_t>(B * h * N * N) * sizeof(float);
  // The unfused chain must hold at least one score tensor at peak; the
  // fused chain must peak below a single score tensor's footprint (it
  // allocates only [B, h, N, d] tensors and the 2-float-per-row stats).
  EXPECT_GT(peak_unfused, score_bytes);
  EXPECT_LT(peak_fused, score_bytes);
  EXPECT_LT(peak_fused * 3, peak_unfused);
}

TEST(Kernels, FusedBackwardPropagatesNaN) {
  // A NaN query entry poisons a probability row on both paths; the fused
  // backward must poison exactly the gradient entries the reference
  // backward poisons — pin NaN-location equality elementwise rather than a
  // hardcoded scope.
  util::Rng rng(46);
  coastal::testing::KernelConfigOverride guard;
  ker::config().attn_bq = 8;
  ker::config().attn_bkv = 8;
  const int64_t B = 1, h = 1, N = 20, d = 4;
  Tensor q = Tensor::randn({B, h, N, d}, rng);
  Tensor k = Tensor::randn({B, h, N, d}, rng);
  Tensor v = Tensor::randn({B, h, N, d}, rng);
  Tensor seed = Tensor::ones({B, h, N, d});
  q.set({0, 0, 7, 2}, std::numeric_limits<float>::quiet_NaN());
  AttnGrads want = reference_attention_grads(q, k, v, Tensor(), 0.5f, seed);
  AttnGrads got = fused_attention_grads(q, k, v, Tensor(), 0.5f, seed);
  const Tensor* w[] = {&want.dq, &want.dk, &want.dv};
  const Tensor* g[] = {&got.dq, &got.dk, &got.dv};
  for (int t = 0; t < 3; ++t) {
    auto pw = w[t]->data();
    auto pg = g[t]->data();
    for (size_t i = 0; i < pw.size(); ++i)
      EXPECT_EQ(std::isnan(pw[i]), std::isnan(pg[i]))
          << "grad " << t << " flat index " << i;
  }
}

TEST(Kernels, CheckpointedFusedAttentionGradsMatchDirect) {
  // A checkpointed region recomputes through the same fused kernel as the
  // direct training forward, so gradients must agree bitwise — this is the
  // recompute-consistency contract that let attention stop consulting
  // inside_checkpoint_region().
  util::Rng rng(47);
  coastal::testing::KernelConfigOverride guard;
  ker::config().attn_fused_min_n = 1;  // fused even at this small N
  nn::MultiHeadSelfAttention attn(16, 2, rng);
  Tensor x = Tensor::randn({2, 40, 16}, rng);

  auto grads_of = [&](bool ckpt) {
    attn.zero_grad();
    Tensor xl = x.detach();
    xl.set_requires_grad(true);
    Tensor y = ckpt ? nn::checkpoint(
                          [&](const std::vector<Tensor>& in) {
                            return attn.forward(in[0]);
                          },
                          {xl}, attn.parameters())
                    : attn.forward(xl);
    y.mul(y).sum().backward();
    std::vector<float> flat(xl.grad().data().begin(), xl.grad().data().end());
    for (auto& p : attn.parameters()) {
      EXPECT_TRUE(p.grad().defined());
      flat.insert(flat.end(), p.grad().data().begin(), p.grad().data().end());
    }
    return flat;
  };
  std::vector<float> direct = grads_of(false);
  std::vector<float> ckpt = grads_of(true);
  ASSERT_EQ(direct.size(), ckpt.size());
  EXPECT_EQ(std::memcmp(direct.data(), ckpt.data(),
                        direct.size() * sizeof(float)),
            0)
      << "checkpointed recompute diverged from the direct fused path";
}

TEST(Kernels, FusedAttentionRejectsRecordedMaskGradientLoudly) {
  // The fused kernels treat the mask as a constant additive bias.  A mask
  // that would receive a recorded gradient must be rejected with an error
  // — even when q/k/v record nothing — never silently dropped; and the
  // module router must send graph-carrying masks down the unfused path
  // regardless of recording mode, so checkpoint initial passes and
  // recomputes stay consistent.
  util::Rng rng(49);
  const int64_t B = 1, h = 2, N = 9, d = 4;
  Tensor q = Tensor::randn({B, h, N, d}, rng);
  Tensor k = Tensor::randn({B, h, N, d}, rng);
  Tensor v = Tensor::randn({B, h, N, d}, rng);
  Tensor mask = Tensor::zeros({1, N, N});
  mask.set_requires_grad(true);
  EXPECT_THROW(nn::fused_attention(q, k, v, mask, 0.5f),
               coastal::util::CheckError);
  {
    // Under NoGrad the same call is legal (inference over trainable
    // params) and matches the reference.
    tensor::NoGradGuard ng;
    Tensor got = nn::fused_attention(q, k, v, mask, 0.5f);
    Tensor want = reference_attention(q, k, v, mask.detach(), 0.5f);
    EXPECT_LT(coastal::testing::max_abs_diff(got, want), 1e-5);
  }
  // Module routing: a graph-carrying mask takes the unfused path in both
  // recording modes — bitwise equal to a forced-unfused forward.
  coastal::testing::KernelConfigOverride guard;
  nn::MultiHeadSelfAttention attn(8, 2, rng);
  Tensor x = Tensor::randn({1, 40, 8}, rng);
  Tensor mask2 = Tensor::zeros({1, 40, 40});
  mask2.set_requires_grad(true);
  tensor::NoGradGuard ng;
  ker::config().attn_fused_min_n = 1;
  Tensor routed = attn.forward(x, mask2);
  ker::config().attn_fused_min_n = 1000000;
  Tensor unfused = attn.forward(x, mask2);
  ASSERT_EQ(routed.shape(), unfused.shape());
  EXPECT_EQ(std::memcmp(routed.raw(), unfused.raw(),
                        static_cast<size_t>(routed.numel()) * sizeof(float)),
            0);
}

TEST(Kernels, SoftmaxRowsPolynomialExpfStaysWithinTolerance) {
  // softmax_rows now runs the branch-free polynomial expf (rel err
  // <= ~2e-7); pin agreement against libm at double precision, including
  // large-magnitude logits, and pin the unfused-vs-fused agreement this
  // shared expf guarantees.
  util::Rng rng(48);
  Tensor x = Tensor::randn({13, 67}, rng).mul_scalar(10.0f);
  tensor::NoGradGuard ng;
  Tensor y = x.softmax_lastdim();
  for (int64_t r = 0; r < 13; ++r) {
    double mx = -1e300, denom = 0.0;
    for (int64_t c = 0; c < 67; ++c) mx = std::max(mx, (double)x.at({r, c}));
    for (int64_t c = 0; c < 67; ++c) denom += std::exp(x.at({r, c}) - mx);
    for (int64_t c = 0; c < 67; ++c)
      EXPECT_NEAR(y.at({r, c}), std::exp(x.at({r, c}) - mx) / denom, 1e-5)
          << "row " << r << " col " << c;
  }
  // -1e9-masked logits must get weight exactly 0 (flush below -104), and a
  // row poisoned by NaN stays all-NaN — same contract as libm expf.
  Tensor m = Tensor::from_vector({1, 4}, {0.0f, -1e9f, 1.0f, -1e9f});
  Tensor ym = m.softmax_lastdim();
  EXPECT_EQ(ym.at({0, 1}), 0.0f);
  EXPECT_EQ(ym.at({0, 3}), 0.0f);
  EXPECT_NEAR(ym.at({0, 0}) + ym.at({0, 2}), 1.0f, 1e-6);
  Tensor n = Tensor::from_vector(
      {1, 3}, {0.0f, std::numeric_limits<float>::quiet_NaN(), 2.0f});
  Tensor yn = n.softmax_lastdim();
  for (int64_t c = 0; c < 3; ++c) EXPECT_TRUE(std::isnan(yn.at({0, c})));
}

TEST(Kernels, MatmulGradcheckThroughBlockedKernel) {
  util::Rng rng(21);
  // Big enough to leave the naive small-GEMM path even without config
  // overrides? No — force the blocked path instead, keeping gradcheck fast.
  coastal::testing::KernelConfigOverride guard;
  ker::config().gemm_small_madds = 0;
  Tensor a = Tensor::randn({3, 4}, rng);
  Tensor b = Tensor::randn({4, 5}, rng);
  coastal::testing::gradcheck(
      [&](const Tensor& t) { return t.matmul(b).sum(); }, a);
  coastal::testing::gradcheck(
      [&](const Tensor& t) { return a.matmul(t).mul_scalar(0.5f).sum(); }, b);
}
