/// Tests for the parallel cache-blocked kernel layer (tensor/kernels.*):
/// blocked GEMM vs a reference triple loop across odd sizes and broadcast
/// batch shapes, NaN/Inf propagation semantics, bitwise serial-vs-parallel
/// agreement, softmax / layer-norm kernels, permute/transpose fast paths,
/// and the fused attention head split/merge ops.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "nn/attention.hpp"
#include "tensor/kernels.hpp"
#include "tensor/tensor.hpp"
#include "test_helpers.hpp"

using namespace coastal;
using tensor::Shape;
using tensor::Tensor;
namespace ker = tensor::kernels;

namespace {

/// Reference batched matmul: plain triple loop, no blocking, no skips.
Tensor reference_matmul(const Tensor& a, const Tensor& b) {
  const size_t nda = a.ndim(), ndb = b.ndim();
  const int64_t m = a.shape()[nda - 2], k = a.shape()[nda - 1];
  const int64_t n = b.shape()[ndb - 1];
  const Shape abatch(a.shape().begin(), a.shape().end() - 2);
  const Shape bbatch(b.shape().begin(), b.shape().end() - 2);
  const Shape batch = tensor::broadcast_shapes(abatch, bbatch);
  Shape out_shape = batch;
  out_shape.push_back(m);
  out_shape.push_back(n);
  Tensor out = Tensor::zeros(out_shape);
  const Shape astr = tensor::broadcast_strides(abatch, batch);
  const Shape bstr = tensor::broadcast_strides(bbatch, batch);
  tensor::CoordIter it(batch);
  int64_t bi = 0;
  float* po = out.raw();
  do {
    const float* A = a.raw() + tensor::dot_strides(it.coords(), astr) * m * k;
    const float* B = b.raw() + tensor::dot_strides(it.coords(), bstr) * k * n;
    float* C = po + bi * m * n;
    for (int64_t i = 0; i < m; ++i)
      for (int64_t kk = 0; kk < k; ++kk)
        for (int64_t j = 0; j < n; ++j) C[i * n + j] += A[i * k + kk] * B[kk * n + j];
    ++bi;
  } while (it.next());
  return out;
}

}  // namespace

TEST(Kernels, MatmulMatchesReferenceAcrossTileBoundaries) {
  util::Rng rng(11);
  tensor::NoGradGuard ng;
  // Odd sizes crossing the MR/NR/Mc/Kc/Nc boundaries, plus tiny shapes
  // that stay on the naive path.
  const int64_t sizes[][3] = {{1, 1, 1},   {3, 5, 2},    {8, 8, 8},
                              {33, 65, 17}, {65, 33, 129}, {70, 256, 40},
                              {130, 40, 300}};
  for (const auto& s : sizes) {
    Tensor a = Tensor::randn({s[0], s[1]}, rng);
    Tensor b = Tensor::randn({s[1], s[2]}, rng);
    Tensor got = a.matmul(b);
    Tensor want = reference_matmul(a, b);
    EXPECT_LT(coastal::testing::max_abs_diff(got, want),
              1e-3 * std::sqrt(static_cast<double>(s[1])))
        << s[0] << "x" << s[1] << "x" << s[2];
  }
}

TEST(Kernels, RawGemmEntryPointAccumulatesIntoC) {
  // The public kernels::gemm contract is C += A·B (not overwrite).
  util::Rng rng(22);
  tensor::NoGradGuard ng;
  Tensor a = Tensor::randn({33, 17}, rng);
  Tensor b = Tensor::randn({17, 65}, rng);
  Tensor want = reference_matmul(a, b);
  std::vector<float> c(static_cast<size_t>(33 * 65), 1.0f);
  ker::gemm(a.raw(), b.raw(), c.data(), 33, 17, 65);
  const float* pw = want.raw();
  for (size_t i = 0; i < c.size(); ++i)
    ASSERT_NEAR(c[i], pw[i] + 1.0f, 1e-3) << "flat index " << i;
}

TEST(Kernels, MatmulBroadcastBatchShapes) {
  util::Rng rng(12);
  tensor::NoGradGuard ng;
  struct Case {
    Shape a, b;
  };
  const Case cases[] = {
      {{2, 1, 9, 7}, {1, 3, 7, 5}},   // both sides broadcast
      {{4, 6, 5}, {5, 8}},            // batched x unbatched
      {{9, 7}, {3, 7, 4}},            // unbatched x batched
      {{2, 3, 33, 17}, {2, 3, 17, 65}},  // plain batch, odd tile edges
  };
  for (const auto& c : cases) {
    Tensor a = Tensor::randn(c.a, rng);
    Tensor b = Tensor::randn(c.b, rng);
    Tensor got = a.matmul(b);
    Tensor want = reference_matmul(a, b);
    ASSERT_EQ(got.shape(), want.shape());
    EXPECT_LT(coastal::testing::max_abs_diff(got, want), 1e-2);
  }
}

// Regression: the historic inner-loop skip `if (a == 0.0f) continue;`
// silently suppressed NaN/Inf propagation from B wherever A had a zero.
// The blocked kernel must honor IEEE semantics: 0 * NaN = NaN, 0 * Inf = NaN.
TEST(Kernels, MatmulPropagatesNaNAndInfThroughZeroEntries) {
  tensor::NoGradGuard ng;
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const float inf = std::numeric_limits<float>::infinity();
  Tensor a = Tensor::from_vector({2, 2}, {1.0f, 0.0f, 2.0f, 3.0f});
  Tensor b = Tensor::from_vector({2, 2}, {5.0f, 6.0f, nan, inf});
  Tensor c = a.matmul(b);
  // Row 0 multiplies the NaN/Inf row of B by 0: 0*NaN and 0*Inf are NaN.
  EXPECT_TRUE(std::isnan(c.at({0, 0})));
  EXPECT_TRUE(std::isnan(c.at({0, 1})));
  EXPECT_TRUE(std::isnan(c.at({1, 0})));           // 2*5 + 3*NaN
  EXPECT_TRUE(std::isinf(c.at({1, 1})));           // 2*6 + 3*Inf

  // Also on the blocked (large) path: one zero A entry against an Inf in B.
  Tensor a2 = Tensor::ones({40, 64});
  Tensor b2 = Tensor::ones({64, 48});
  a2.set({7, 3}, 0.0f);
  b2.set({3, 11}, inf);
  Tensor c2 = a2.matmul(b2);
  EXPECT_TRUE(std::isnan(c2.at({7, 11})));  // 0 * inf
  EXPECT_TRUE(std::isinf(c2.at({6, 11})));  // 1 * inf
}

TEST(Kernels, SerialAndParallelResultsAreBitwiseIdentical) {
  util::Rng rng(13);
  Tensor a = Tensor::randn({3, 150, 70}, rng);
  Tensor b = Tensor::randn({3, 70, 200}, rng);
  Tensor x = Tensor::randn({37, 130}, rng);
  Tensor gamma = Tensor::randn({130}, rng);
  Tensor beta = Tensor::randn({130}, rng);
  Tensor big = Tensor::randn({5, 33, 65}, rng);
  Tensor bias = Tensor::randn({1, 33, 1}, rng);
  tensor::NoGradGuard ng;

  auto run_all = [&] {
    std::vector<Tensor> r;
    r.push_back(a.matmul(b));
    r.push_back(x.softmax_lastdim());
    r.push_back(x.layer_norm(gamma, beta));
    r.push_back(big.transpose_last());
    r.push_back(big.permute({2, 0, 1}));
    r.push_back(big.add(bias));
    r.push_back(big.exp());
    return r;
  };

  coastal::testing::KernelConfigOverride guard;
  ker::config().num_threads = 1;
  auto serial = run_all();
  ker::config().num_threads = 8;
  ker::config().parallel_grain = 1;  // force chunked dispatch
  auto parallel = run_all();

  ASSERT_EQ(serial.size(), parallel.size());
  for (size_t i = 0; i < serial.size(); ++i) {
    ASSERT_EQ(serial[i].shape(), parallel[i].shape()) << "result " << i;
    EXPECT_EQ(std::memcmp(serial[i].raw(), parallel[i].raw(),
                          static_cast<size_t>(serial[i].numel()) *
                              sizeof(float)),
              0)
        << "serial vs parallel mismatch in result " << i;
  }
}

TEST(Kernels, SoftmaxRowsMatchesReference) {
  util::Rng rng(14);
  Tensor x = Tensor::randn({21, 37}, rng);
  tensor::NoGradGuard ng;
  Tensor y = x.softmax_lastdim();
  for (int64_t r = 0; r < 21; ++r) {
    double denom = 0.0, mx = -1e30;
    for (int64_t c = 0; c < 37; ++c) mx = std::max(mx, (double)x.at({r, c}));
    for (int64_t c = 0; c < 37; ++c) denom += std::exp(x.at({r, c}) - mx);
    for (int64_t c = 0; c < 37; ++c) {
      EXPECT_NEAR(y.at({r, c}), std::exp(x.at({r, c}) - mx) / denom, 1e-5);
    }
  }
}

TEST(Kernels, LayerNormSinglePassMatchesTwoPassReference) {
  util::Rng rng(15);
  // Large mean offset stresses the E[x^2] - E[x]^2 formulation.
  Tensor x = Tensor::randn({9, 64}, rng).add_scalar(50.0f);
  Tensor gamma = Tensor::randn({64}, rng);
  Tensor beta = Tensor::randn({64}, rng);
  tensor::NoGradGuard ng;
  Tensor y = x.layer_norm(gamma, beta);
  for (int64_t r = 0; r < 9; ++r) {
    double mu = 0.0, var = 0.0;
    for (int64_t c = 0; c < 64; ++c) mu += x.at({r, c});
    mu /= 64.0;
    for (int64_t c = 0; c < 64; ++c) {
      const double d = x.at({r, c}) - mu;
      var += d * d;
    }
    var /= 64.0;
    const double is = 1.0 / std::sqrt(var + 1e-5);
    for (int64_t c = 0; c < 64; ++c) {
      const double want = gamma.at({c}) * (x.at({r, c}) - mu) * is + beta.at({c});
      EXPECT_NEAR(y.at({r, c}), want, 1e-3);
    }
  }
}

TEST(Kernels, TransposeAndPermuteFastPathsMatchCoordIterReference) {
  util::Rng rng(16);
  tensor::NoGradGuard ng;
  Tensor x = Tensor::randn({3, 33, 65}, rng);
  const std::vector<std::vector<size_t>> perms = {
      {0, 2, 1},  // blocked transpose fast path
      {2, 1, 0},
      {1, 2, 0},
  };
  for (const auto& perm : perms) {
    Tensor got = x.permute(perm);
    // CoordIter reference gather.
    Shape out_shape(3);
    for (size_t i = 0; i < 3; ++i) out_shape[i] = x.shape()[perm[i]];
    const Shape in_str = tensor::strides_of(x.shape());
    Shape gstr(3);
    for (size_t i = 0; i < 3; ++i) gstr[i] = in_str[perm[i]];
    tensor::CoordIter it(out_shape);
    size_t k = 0;
    do {
      EXPECT_EQ(got.raw()[k++],
                x.raw()[tensor::dot_strides(it.coords(), gstr)]);
    } while (it.next());
  }
}

TEST(Kernels, SplitQkvHeadMatchesPermuteSlicePath) {
  util::Rng rng(17);
  const int64_t B = 2, N = 5, heads = 3, hd = 4;
  const int64_t C = heads * hd;
  Tensor qkv = Tensor::randn({B, N, 3 * C}, rng);
  tensor::NoGradGuard ng;
  Tensor ref = qkv.reshape({B, N, 3, heads, hd}).permute({2, 0, 3, 1, 4});
  for (int which = 0; which < 3; ++which) {
    Tensor got = nn::split_qkv_head(qkv, heads, which);
    Tensor want = ref.slice(0, which, 1).reshape({B, heads, N, hd});
    coastal::testing::expect_tensor_near(got, want, 0.0);
  }
}

TEST(Kernels, MergeHeadsMatchesPermuteReshapePath) {
  util::Rng rng(18);
  const int64_t B = 2, heads = 3, N = 5, hd = 4;
  Tensor x = Tensor::randn({B, heads, N, hd}, rng);
  tensor::NoGradGuard ng;
  Tensor got = nn::merge_heads(x);
  Tensor want = x.permute({0, 2, 1, 3}).reshape({B, N, heads * hd});
  coastal::testing::expect_tensor_near(got, want, 0.0);
}

TEST(Kernels, SplitAndMergeHeadsGradcheck) {
  util::Rng rng(19);
  const int64_t B = 1, N = 3, heads = 2, hd = 2;
  const int64_t C = heads * hd;
  Tensor qkv = Tensor::randn({B, N, 3 * C}, rng);
  coastal::testing::gradcheck(
      [&](const Tensor& t) {
        Tensor q = nn::split_qkv_head(t, heads, 0);
        Tensor k = nn::split_qkv_head(t, heads, 1);
        Tensor v = nn::split_qkv_head(t, heads, 2);
        return nn::merge_heads(q.mul(k).add(v)).sum();
      },
      qkv);
}

TEST(Kernels, AttentionForwardGradcheckThroughFusedPath) {
  util::Rng rng(20);
  nn::MultiHeadSelfAttention attn(8, 2, rng);
  Tensor x = Tensor::randn({2, 3, 8}, rng);
  coastal::testing::gradcheck(
      [&](const Tensor& t) { return attn.forward(t).mul(t).sum(); }, x);
}

TEST(Kernels, MatmulGradcheckThroughBlockedKernel) {
  util::Rng rng(21);
  // Big enough to leave the naive small-GEMM path even without config
  // overrides? No — force the blocked path instead, keeping gradcheck fast.
  coastal::testing::KernelConfigOverride guard;
  ker::config().gemm_small_madds = 0;
  Tensor a = Tensor::randn({3, 4}, rng);
  Tensor b = Tensor::randn({4, 5}, rng);
  coastal::testing::gradcheck(
      [&](const Tensor& t) { return t.matmul(b).sum(); }, a);
  coastal::testing::gradcheck(
      [&](const Tensor& t) { return a.matmul(t).mul_scalar(0.5f).sum(); }, b);
}
