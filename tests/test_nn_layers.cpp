/// Tests for the NN library: layer shapes, gradient checks through
/// modules, optimizer behaviour, checkpointing equivalence, serialization.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "nn/attention.hpp"
#include "nn/checkpoint.hpp"
#include "nn/conv.hpp"
#include "nn/layers.hpp"
#include "nn/optimizer.hpp"
#include "nn/serialize.hpp"
#include "test_helpers.hpp"

namespace ct = coastal::tensor;
namespace nn = coastal::nn;
using coastal::tensor::Tensor;
using coastal::testing::expect_tensor_near;
using coastal::testing::gradcheck;
using coastal::util::Rng;

TEST(Linear, ShapeAndBias) {
  Rng rng(1);
  nn::Linear lin(4, 3, rng);
  Tensor x = Tensor::randn({2, 5, 4}, rng);
  Tensor y = lin.forward(x);
  EXPECT_EQ(y.shape(), (ct::Shape{2, 5, 3}));
  EXPECT_EQ(lin.num_parameters(), 4 * 3 + 3);
}

TEST(Linear, NoBiasVariant) {
  Rng rng(2);
  nn::Linear lin(4, 3, rng, /*bias=*/false);
  EXPECT_EQ(lin.num_parameters(), 12);
}

TEST(Linear, GradientThroughWeights) {
  Rng rng(3);
  nn::Linear lin(3, 2, rng);
  Tensor x = Tensor::randn({4, 3}, rng);
  gradcheck([&](const Tensor& w_sub) {
    // Substitute candidate weights through an equivalent expression.
    return x.matmul(w_sub).add(lin.bias).sum();
  }, lin.weight.detach());
  // And the module's own backward populates both param grads.
  lin.zero_grad();
  lin.forward(x).sum().backward();
  EXPECT_TRUE(lin.weight.grad().defined());
  EXPECT_TRUE(lin.bias.grad().defined());
}

TEST(Linear, RejectsWrongInputWidth) {
  Rng rng(4);
  nn::Linear lin(4, 2, rng);
  EXPECT_THROW(lin.forward(Tensor::zeros({2, 5})), coastal::util::CheckError);
}

TEST(LayerNormModule, NormalizesLastDim) {
  Rng rng(5);
  nn::LayerNorm ln(6);
  Tensor x = Tensor::randn({3, 6}, rng, 4.0f);
  Tensor y = ln.forward(x);
  for (int r = 0; r < 3; ++r) {
    double mean = 0, var = 0;
    for (int c = 0; c < 6; ++c) mean += y.at({r, c});
    mean /= 6;
    for (int c = 0; c < 6; ++c) var += (y.at({r, c}) - mean) * (y.at({r, c}) - mean);
    var /= 6;
    EXPECT_NEAR(mean, 0.0, 1e-5);
    EXPECT_NEAR(var, 1.0, 1e-3);
  }
}

TEST(BatchNormModule, TrainEvalStatistics) {
  Rng rng(6);
  nn::BatchNorm bn(3);
  Tensor x = Tensor::randn({4, 3, 5}, rng, 2.0f).add_scalar(1.0f);
  bn.set_training(true);
  Tensor y = bn.forward(x);
  EXPECT_EQ(y.shape(), x.shape());
  // Per-channel output stats should be ~N(0,1) in train mode.
  for (int c = 0; c < 3; ++c) {
    double mean = 0;
    int n = 0;
    for (int b = 0; b < 4; ++b)
      for (int s = 0; s < 5; ++s) {
        mean += y.at({b, c, s});
        ++n;
      }
    EXPECT_NEAR(mean / n, 0.0, 1e-4);
  }
  // Running stats moved toward the batch stats.
  EXPECT_NE(bn.running_mean.data()[0], 0.0f);
  // Eval mode uses running stats and is deterministic.
  bn.set_training(false);
  Tensor y1 = bn.forward(x);
  Tensor y2 = bn.forward(x);
  expect_tensor_near(y1, y2, 0.0);
}

TEST(BatchNormModule, GradientFlows) {
  Rng rng(7);
  nn::BatchNorm bn(2);
  Tensor x = Tensor::randn({3, 2, 4}, rng);
  x.set_requires_grad(true);
  bn.forward(x).sum().backward();
  EXPECT_TRUE(x.grad().defined());
  EXPECT_TRUE(bn.gamma.grad().defined());
}

TEST(Mlp, GeluSandwichShape) {
  Rng rng(8);
  nn::Mlp mlp(6, 12, rng);
  Tensor x = Tensor::randn({2, 3, 6}, rng);
  EXPECT_EQ(mlp.forward(x).shape(), x.shape());
  EXPECT_EQ(mlp.num_parameters(), 6 * 12 + 12 + 12 * 6 + 6);
}

TEST(Attention, OutputShapeAndParamCount) {
  Rng rng(9);
  nn::MultiHeadSelfAttention attn(8, 2, rng);
  Tensor x = Tensor::randn({3, 5, 8}, rng);
  EXPECT_EQ(attn.forward(x).shape(), x.shape());
  EXPECT_EQ(attn.num_parameters(), 8 * 24 + 24 + 8 * 8 + 8);
}

TEST(Attention, RejectsIndivisibleHeads) {
  Rng rng(10);
  EXPECT_THROW(nn::MultiHeadSelfAttention(8, 3, rng),
               coastal::util::CheckError);
}

TEST(Attention, MaskBlocksCrossGroupAttention) {
  Rng rng(11);
  nn::MultiHeadSelfAttention attn(4, 1, rng);
  // Two windows; the mask forbids token 0 <-> token 1 in window 1 only.
  Tensor x = Tensor::randn({2, 2, 4}, rng);
  std::vector<float> m(2 * 2 * 2, 0.0f);
  m[4 + 1] = -1e9f;  // window 1: (0,1)
  m[4 + 2] = -1e9f;  // window 1: (1,0)
  Tensor mask = Tensor::from_vector({2, 2, 2}, m);
  Tensor masked = attn.forward(x, mask);
  Tensor open = attn.forward(x);
  // Window 0 unchanged by the mask; window 1 differs.
  Tensor d0 = masked.slice(0, 0, 1).sub(open.slice(0, 0, 1)).abs().sum();
  Tensor d1 = masked.slice(0, 1, 1).sub(open.slice(0, 1, 1)).abs().sum();
  EXPECT_LT(d0.item(), 1e-6f);
  EXPECT_GT(d1.item(), 1e-6f);
}

TEST(Attention, GradientReachesAllParams) {
  Rng rng(12);
  nn::MultiHeadSelfAttention attn(6, 3, rng);
  Tensor x = Tensor::randn({2, 4, 6}, rng);
  attn.forward(x).sum().backward();
  for (auto& [name, p] : attn.named_parameters()) {
    EXPECT_TRUE(p.grad().defined()) << name;
  }
}

TEST(PatchConv, EqualsManualBlockProjection) {
  Rng rng(13);
  nn::PatchConvNd conv(2, 3, {2, 2}, rng);
  Tensor x = Tensor::randn({1, 2, 4, 4}, rng);
  Tensor y = conv.forward(x);
  EXPECT_EQ(y.shape(), (ct::Shape{1, 3, 2, 2}));
  // Manual check of one output position using the token helper.
  Tensor tokens = nn::detail::blocks_to_tokens(x, {2, 2});
  EXPECT_EQ(tokens.shape(), (ct::Shape{1, 4, 8}));
}

TEST(PatchConv, RoundTripWithTranspose) {
  // blocks_to_tokens and tokens_to_blocks are exact inverses.
  Rng rng(14);
  Tensor x = Tensor::randn({2, 3, 4, 6}, rng);
  Tensor tokens = nn::detail::blocks_to_tokens(x, {2, 3});
  Tensor back = nn::detail::tokens_to_blocks(tokens, 3, {2, 2}, {2, 3});
  expect_tensor_near(back, x, 0.0);
}

TEST(PatchConvTranspose, UpsamplesShape) {
  Rng rng(15);
  nn::PatchConvTransposeNd up(4, 2, {2, 2, 2}, rng);
  Tensor x = Tensor::randn({1, 4, 2, 3, 2}, rng);
  EXPECT_EQ(up.forward(x).shape(), (ct::Shape{1, 2, 4, 6, 4}));
}

TEST(PatchConvTranspose, InverseOfPatchConvStructure) {
  // conv then transpose restores the spatial dims (not values).
  Rng rng(16);
  nn::PatchConvNd down(1, 4, {2, 2}, rng);
  nn::PatchConvTransposeNd up(4, 1, {2, 2}, rng);
  Tensor x = Tensor::randn({2, 1, 6, 4}, rng);
  EXPECT_EQ(up.forward(down.forward(x)).shape(), x.shape());
}

TEST(PointwiseConv, MixesChannelsOnly) {
  Rng rng(17);
  nn::PointwiseConvNd pw(3, 5, rng);
  Tensor x = Tensor::randn({2, 3, 4, 2, 3}, rng);
  Tensor y = pw.forward(x);
  EXPECT_EQ(y.shape(), (ct::Shape{2, 5, 4, 2, 3}));
}

TEST(Optimizer, SgdConvergesOnQuadratic) {
  Tensor w = Tensor::from_vector({2}, {5.0f, -3.0f});
  w.set_requires_grad(true);
  nn::Sgd opt({w}, 0.1f);
  for (int i = 0; i < 200; ++i) {
    opt.zero_grad();
    w.mul(w).sum().backward();
    opt.step();
  }
  EXPECT_NEAR(w.data()[0], 0.0f, 1e-3);
  EXPECT_NEAR(w.data()[1], 0.0f, 1e-3);
}

TEST(Optimizer, AdamFirstStepIsLrSized) {
  // With bias correction, the first Adam step is ~lr * sign(grad).
  Tensor w = Tensor::from_vector({2}, {1.0f, -1.0f});
  w.set_requires_grad(true);
  nn::Adam opt({w}, 0.01f);
  opt.zero_grad();
  w.mul_scalar(3.0f).sum().backward();  // grad = +3 on both
  opt.step();
  EXPECT_NEAR(w.data()[0], 1.0f - 0.01f, 1e-4);
  EXPECT_NEAR(w.data()[1], -1.0f - 0.01f, 1e-4);
}

TEST(Optimizer, AdamConvergesOnQuadratic) {
  Tensor w = Tensor::from_vector({3}, {2.0f, -4.0f, 1.0f});
  w.set_requires_grad(true);
  nn::Adam opt({w}, 0.05f);
  for (int i = 0; i < 400; ++i) {
    opt.zero_grad();
    w.mul(w).sum().backward();
    opt.step();
  }
  for (float x : w.data()) EXPECT_NEAR(x, 0.0f, 5e-3);
}

TEST(Optimizer, ClipGradNormScales) {
  Tensor w = Tensor::from_vector({2}, {1.0f, 1.0f});
  w.set_requires_grad(true);
  w.mul_scalar(30.0f).sum().backward();  // grad = (30, 30), norm ~ 42.4
  const float pre = nn::clip_grad_norm({w}, 1.0f);
  EXPECT_NEAR(pre, 42.426f, 1e-2);
  double post = 0;
  for (float g : w.grad().data()) post += g * g;
  EXPECT_NEAR(std::sqrt(post), 1.0, 1e-4);
}

TEST(Checkpoint, MatchesUncheckpointedForwardAndGrads) {
  Rng rng(18);
  nn::Mlp mlp(4, 8, rng);
  Tensor x1 = Tensor::randn({3, 4}, rng);
  Tensor x2 = x1.detach();
  x1.set_requires_grad(true);
  x2.set_requires_grad(true);

  Tensor y_plain = mlp.forward(x1);
  y_plain.sum().backward();
  Tensor gx_plain = x1.grad();
  std::vector<float> gw_plain(mlp.parameters()[0].grad().data().begin(),
                              mlp.parameters()[0].grad().data().end());

  mlp.zero_grad();
  Tensor y_ckpt = nn::checkpoint(
      [&](const std::vector<Tensor>& in) { return mlp.forward(in[0]); },
      {x2}, mlp.parameters());
  expect_tensor_near(y_ckpt, y_plain, 1e-6);
  y_ckpt.sum().backward();
  expect_tensor_near(x2.grad(), gx_plain, 1e-5);
  Tensor gw_ckpt = mlp.parameters()[0].grad();
  ASSERT_TRUE(gw_ckpt.defined());
  for (size_t i = 0; i < gw_plain.size(); ++i)
    EXPECT_NEAR(gw_ckpt.data()[i], gw_plain[i], 1e-5f);
}

TEST(Checkpoint, WorksWhenInputsDoNotRequireGrad) {
  // Regression test: weights must still receive gradients when the region
  // input is a plain data tensor.
  Rng rng(19);
  nn::Mlp mlp(4, 8, rng);
  Tensor x = Tensor::randn({2, 4}, rng);  // no requires_grad
  Tensor y = nn::checkpoint(
      [&](const std::vector<Tensor>& in) { return mlp.forward(in[0]); },
      {x}, mlp.parameters());
  y.sum().backward();
  for (auto& [name, p] : mlp.named_parameters())
    EXPECT_TRUE(p.grad().defined()) << name;
}

TEST(Checkpoint, NoGraphRecordedInsideRegion) {
  // The region's interior must not hold activations: result of the
  // checkpointed call has a grad_fn, but running under NoGrad returns a
  // plain tensor.
  Rng rng(20);
  nn::Mlp mlp(4, 4, rng);
  Tensor x = Tensor::randn({2, 4}, rng);
  ct::NoGradGuard ngg;
  Tensor y = nn::checkpoint(
      [&](const std::vector<Tensor>& in) { return mlp.forward(in[0]); },
      {x}, mlp.parameters());
  EXPECT_FALSE(y.has_grad_fn());
}

TEST(Serialize, RoundTripsParametersAndBuffers) {
  Rng rng(21);
  nn::BatchNorm bn1(3), bn2(3);
  // Mutate bn1's state.
  Tensor x = Tensor::randn({4, 3, 2}, rng, 2.0f);
  bn1.forward(x);
  bn1.gamma.raw()[0] = 7.5f;

  const std::string path =
      (std::filesystem::temp_directory_path() / "bn_params.bin").string();
  nn::save_parameters(bn1, path);
  nn::load_parameters(bn2, path);
  expect_tensor_near(bn2.gamma, bn1.gamma, 0.0);
  expect_tensor_near(bn2.running_mean, bn1.running_mean, 0.0);
  std::remove(path.c_str());
}

TEST(Serialize, RejectsShapeMismatch) {
  Rng rng(22);
  nn::Linear a(4, 3, rng), b(4, 2, rng);
  const std::string path =
      (std::filesystem::temp_directory_path() / "lin_params.bin").string();
  nn::save_parameters(a, path);
  EXPECT_THROW(nn::load_parameters(b, path), coastal::util::CheckError);
  std::remove(path.c_str());
}

TEST(Module, NamedParametersUseDottedPaths) {
  Rng rng(23);
  nn::Mlp mlp(3, 6, rng);
  std::vector<std::string> names;
  for (auto& [n, t] : mlp.named_parameters()) names.push_back(n);
  EXPECT_NE(std::find(names.begin(), names.end(), "fc1.weight"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "fc2.bias"), names.end());
}
