/// Unit tests for the message-passing substrate: thread pool,
/// communicator (point-to-point + collectives), Cartesian decomposition,
/// and halo exchange.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <string>

#include "parallel/communicator.hpp"
#include "parallel/decomposition.hpp"
#include "parallel/thread_pool.hpp"

namespace par = coastal::par;

TEST(ThreadPool, RunsSubmittedTasks) {
  par::ThreadPool pool(3);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 20; ++i)
    futs.push_back(pool.submit([&] { counter.fetch_add(1); }));
  for (auto& f : futs) f.get();
  EXPECT_EQ(counter.load(), 20);
}

TEST(ThreadPool, ParallelForCoversRangeExactlyOnce) {
  par::ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(100);
  pool.parallel_for(0, 100, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForEmptyRangeIsNoop) {
  par::ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(5, 5, [&](size_t, size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelForOversubscribesChunks) {
  par::ThreadPool pool(2);
  std::atomic<int> chunks{0};
  pool.parallel_for(0, 1000, [&](size_t, size_t) { chunks.fetch_add(1); });
  // Default chunking targets ~4x the worker count for load balance.
  EXPECT_GT(chunks.load(), 2);
  // An explicit chunk hint is honored.
  chunks = 0;
  pool.parallel_for(0, 1000,
                    [&](size_t, size_t) { chunks.fetch_add(1); }, 5);
  EXPECT_EQ(chunks.load(), 5);
}

TEST(ThreadPool, ParallelForPropagatesExceptionAndStaysUsable) {
  par::ThreadPool pool(3);
  // A throw in one chunk must not leak the other chunks' futures or wedge
  // the pool; the first exception is rethrown after all chunks finish.
  std::atomic<int> completed{0};
  EXPECT_THROW(
      pool.parallel_for(0, 12,
                        [&](size_t lo, size_t) {
                          if (lo == 0) throw std::runtime_error("chunk 0");
                          completed.fetch_add(1);
                        },
                        12),
      std::runtime_error);
  EXPECT_EQ(completed.load(), 11);
  // Pool still works afterwards.
  std::atomic<int> counter{0};
  pool.parallel_for(0, 50, [&](size_t lo, size_t hi) {
    counter.fetch_add(static_cast<int>(hi - lo));
  });
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPool, NestedParallelForRunsInlineWithoutDeadlock) {
  par::ThreadPool pool(2);
  std::atomic<int> inner_total{0};
  pool.parallel_for(0, 4, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) {
      EXPECT_TRUE(par::ThreadPool::in_worker());
      // Would deadlock if this blocked on the same pool's queue.
      pool.parallel_for(0, 10, [&](size_t l, size_t h) {
        inner_total.fetch_add(static_cast<int>(h - l));
      });
    }
  });
  EXPECT_EQ(inner_total.load(), 40);
}

TEST(ThreadPool, ResizeSwapsWorkerGenerationsSafely) {
  par::ThreadPool pool(2);
  EXPECT_EQ(pool.size(), 2u);
  // Queue work, then resize mid-flight: nothing may be lost — queued
  // tasks drain under the old generation or the new one.
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 16; ++i)
    futs.push_back(pool.submit([&] { counter.fetch_add(1); }));
  pool.resize(3);
  EXPECT_EQ(pool.size(), 3u);
  for (auto& f : futs) f.get();
  EXPECT_EQ(counter.load(), 16);
  // The fresh generation serves parallel_for as usual.
  std::atomic<int> sum{0};
  pool.parallel_for(0, 100, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) sum.fetch_add(static_cast<int>(i));
  });
  EXPECT_EQ(sum.load(), 4950);
  pool.resize(1);
  EXPECT_EQ(pool.size(), 1u);
  pool.parallel_for(0, 10, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) sum.fetch_add(1);
  });
  EXPECT_EQ(sum.load(), 4960);
}

TEST(ThreadPool, ResizeZeroRereadsEnvOverride) {
  // resize(0) re-reads COASTAL_NUM_THREADS at resize time — the
  // deployment-sizing path servers use — instead of the value cached at
  // process start.
  const char* saved = std::getenv("COASTAL_NUM_THREADS");
  const std::string saved_copy = saved ? saved : "";
  setenv("COASTAL_NUM_THREADS", "3", 1);
  par::ThreadPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  pool.resize(0);
  EXPECT_EQ(pool.size(), 3u);
  if (saved) {
    setenv("COASTAL_NUM_THREADS", saved_copy.c_str(), 1);
  } else {
    unsetenv("COASTAL_NUM_THREADS");
  }
}

TEST(Communicator, PointToPointDelivery) {
  par::World world(3);
  world.run([](par::Comm& comm) {
    // Ring: send rank id to the right, receive from the left.
    std::vector<float> payload{static_cast<float>(comm.rank())};
    comm.send((comm.rank() + 1) % comm.size(), /*tag=*/7, payload);
    std::vector<float> got(1);
    comm.recv((comm.rank() + comm.size() - 1) % comm.size(), 7, got);
    EXPECT_FLOAT_EQ(got[0],
                    static_cast<float>((comm.rank() + comm.size() - 1) %
                                       comm.size()));
  });
}

TEST(Communicator, TagsKeepMessagesApart) {
  par::World world(2);
  world.run([](par::Comm& comm) {
    if (comm.rank() == 0) {
      comm.send(1, 1, std::vector<float>{1.0f});
      comm.send(1, 2, std::vector<float>{2.0f});
    } else {
      // Receive in the opposite order of sending: tags must disambiguate.
      std::vector<float> a(1), b(1);
      comm.recv(0, 2, a);
      comm.recv(0, 1, b);
      EXPECT_FLOAT_EQ(a[0], 2.0f);
      EXPECT_FLOAT_EQ(b[0], 1.0f);
    }
  });
}

TEST(Communicator, MessagesWithSameTagStayOrdered) {
  par::World world(2);
  world.run([](par::Comm& comm) {
    if (comm.rank() == 0) {
      for (int i = 0; i < 10; ++i)
        comm.send(1, 3, std::vector<float>{static_cast<float>(i)});
    } else {
      std::vector<float> got(1);
      for (int i = 0; i < 10; ++i) {
        comm.recv(0, 3, got);
        EXPECT_FLOAT_EQ(got[0], static_cast<float>(i));
      }
    }
  });
}

TEST(Communicator, AllreduceSumsAcrossRanks) {
  par::World world(4);
  world.run([](par::Comm& comm) {
    std::vector<float> x{static_cast<float>(comm.rank() + 1), 10.0f};
    comm.allreduce_sum(x);
    EXPECT_FLOAT_EQ(x[0], 1 + 2 + 3 + 4);
    EXPECT_FLOAT_EQ(x[1], 40.0f);
  });
}

TEST(Communicator, AllreduceMax) {
  par::World world(3);
  world.run([](par::Comm& comm) {
    std::vector<float> x{static_cast<float>(-comm.rank()),
                         static_cast<float>(comm.rank())};
    comm.allreduce_max(x);
    EXPECT_FLOAT_EQ(x[0], 0.0f);
    EXPECT_FLOAT_EQ(x[1], 2.0f);
  });
}

TEST(Communicator, RepeatedCollectivesStayConsistent) {
  // Regression guard for the shared-buffer collective implementation:
  // many back-to-back collectives must not bleed into each other.
  par::World world(4);
  world.run([](par::Comm& comm) {
    for (int round = 0; round < 25; ++round) {
      std::vector<float> x{static_cast<float>(comm.rank() + round)};
      comm.allreduce_sum(x);
      ASSERT_FLOAT_EQ(x[0], static_cast<float>(6 + 4 * round));
    }
  });
}

TEST(Communicator, BroadcastFromEveryRoot) {
  par::World world(3);
  world.run([](par::Comm& comm) {
    for (int root = 0; root < comm.size(); ++root) {
      std::vector<float> x{comm.rank() == root
                               ? static_cast<float>(100 + root)
                               : -1.0f};
      comm.broadcast(root, x);
      ASSERT_FLOAT_EQ(x[0], static_cast<float>(100 + root));
    }
  });
}

TEST(Communicator, GatherCollectsRankMajor) {
  par::World world(3);
  world.run([](par::Comm& comm) {
    std::vector<float> local{static_cast<float>(comm.rank() * 2),
                             static_cast<float>(comm.rank() * 2 + 1)};
    std::vector<float> out;
    comm.gather(0, local, out);
    if (comm.rank() == 0) {
      ASSERT_EQ(out.size(), 6u);
      for (int i = 0; i < 6; ++i) EXPECT_FLOAT_EQ(out[static_cast<size_t>(i)], i);
    } else {
      EXPECT_TRUE(out.empty());
    }
  });
}

TEST(Communicator, ExceptionsPropagateToCaller) {
  par::World world(2);
  EXPECT_THROW(world.run([](par::Comm& comm) {
    if (comm.rank() == 1) throw std::runtime_error("rank 1 failed");
    // rank 0 returns without collectives: a rank that throws never
    // reaches a barrier, so surviving ranks must not wait on one.
  }),
               std::runtime_error);
}

TEST(Decomposition, ChooseGridPrefersSquareTiles) {
  auto [px, py] = par::choose_grid(4, 100, 100);
  EXPECT_EQ(px * py, 4);
  EXPECT_EQ(px, 2);
  EXPECT_EQ(py, 2);
  // Elongated domain: more tiles along the long axis.
  auto [qx, qy] = par::choose_grid(4, 400, 100);
  EXPECT_EQ(qx * qy, 4);
  EXPECT_GT(qx, qy);
}

TEST(Decomposition, TilesPartitionTheDomain) {
  const int nx = 37, ny = 23, px = 3, py = 2;
  std::vector<int> owner(static_cast<size_t>(nx) * ny, -1);
  for (int r = 0; r < px * py; ++r) {
    auto t = par::make_tile(r, px, py, nx, ny, 1);
    EXPECT_EQ(t.cx + t.cy * px, r);
    for (int y = t.y0; y < t.y1; ++y)
      for (int x = t.x0; x < t.x1; ++x) {
        auto& o = owner[static_cast<size_t>(y) * nx + x];
        EXPECT_EQ(o, -1) << "cell owned twice";
        o = r;
      }
  }
  for (int v : owner) EXPECT_NE(v, -1);
}

TEST(Decomposition, NeighborsAtEdgesAreMinusOne) {
  auto t = par::make_tile(0, 2, 2, 10, 10, 1);
  EXPECT_EQ(t.neighbor(-1, 0), -1);
  EXPECT_EQ(t.neighbor(0, -1), -1);
  EXPECT_EQ(t.neighbor(1, 0), 1);
  EXPECT_EQ(t.neighbor(0, 1), 2);
}

TEST(Decomposition, HaloExchangeFillsGhosts) {
  // 2 ranks side by side in x; each fills its interior with its rank id
  // and after exchange must see the neighbour's id in its ghost column.
  par::World world(2);
  world.run([](par::Comm& comm) {
    auto tile = par::make_tile(comm.rank(), 2, 1, 8, 4, 1);
    std::vector<float> field(
        static_cast<size_t>(tile.nx_padded()) * tile.ny_padded(),
        static_cast<float>(comm.rank()));
    par::exchange_halo(comm, tile, field);
    const int ghost_x = comm.rank() == 0 ? tile.nx_local() : -1;
    const int other = 1 - comm.rank();
    for (int iy = 0; iy < tile.ny_local(); ++iy)
      EXPECT_FLOAT_EQ(field[tile.padded_index(ghost_x, iy)],
                      static_cast<float>(other));
    EXPECT_GT(comm.bytes_sent(), 0u);
  });
}

TEST(Decomposition, RejectsInvalidConfigurations) {
  EXPECT_THROW(par::make_tile(4, 2, 2, 10, 10, 1),
               coastal::util::CheckError);
  EXPECT_THROW(par::make_tile(0, 4, 1, 2, 10, 1),
               coastal::util::CheckError);
}
