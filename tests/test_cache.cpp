/// Forecast-cache tests: exact hits bitwise-equal to cold recomputes
/// across kernel thread counts, prefix resume bitwise-equal to a full
/// rollout (frames AND verdict), LRU eviction order with exact byte
/// accounting, TTL expiry, the no-admission rules for faulted / fallback
/// results, and the zero-allocation pin on the hit path.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <future>
#include <limits>
#include <span>
#include <thread>
#include <vector>

#include "core/rollout.hpp"
#include "core/verification.hpp"
#include "data/dataset.hpp"
#include "data/normalization.hpp"
#include "ocean/archive.hpp"
#include "ocean/bathymetry.hpp"
#include "parallel/thread_pool.hpp"
#include "serve/cache.hpp"
#include "serve/server.hpp"
#include "tensor/storage.hpp"
#include "util/fault.hpp"
#include "test_helpers.hpp"

namespace core = coastal::core;
namespace data = coastal::data;
namespace ocean = coastal::ocean;
namespace par = coastal::par;
namespace serve = coastal::serve;
namespace tensor = coastal::tensor;
namespace util = coastal::util;
using coastal::util::Rng;

namespace {

struct FaultGuard {
  ~FaultGuard() { util::FaultInjector::instance().clear(); }
};

core::SurrogateConfig model_config(const data::SampleSpec& spec) {
  core::SurrogateConfig mcfg;
  mcfg.H = spec.H;
  mcfg.W = spec.W;
  mcfg.D = spec.D;
  mcfg.T = spec.T;
  mcfg.patch_h = 5;
  mcfg.patch_w = 5;
  mcfg.patch_d = 2;
  mcfg.embed_dim = 8;
  mcfg.stages = 3;
  mcfg.heads = {2, 4, 8};
  return mcfg;
}

/// Same world as test_serve's: simulated archive + normalizer +
/// untrained surrogate.  Cache correctness is about byte identity and
/// bookkeeping, not skill.
struct CacheWorld {
  ocean::Grid grid{20, 20, 6, 400.0, 400.0};
  ocean::TidalForcing tides = ocean::TidalForcing::gulf_coast_default();
  ocean::PhysicsParams params;
  std::vector<data::CenterFields> fields;       // denormalized
  std::vector<data::CenterFields> fields_norm;  // normalized
  data::Normalizer norm;
  data::SampleSpec spec;
  std::unique_ptr<core::SurrogateModel> model;

  CacheWorld() {
    params.dt = 10.0;
    ocean::generate_estuary(grid, ocean::EstuaryParams{}, 42);
    ocean::ArchiveConfig acfg;
    acfg.spinup_seconds = 3600.0;
    acfg.duration_seconds = 10 * 3600.0;
    acfg.interval_seconds = 1800.0;
    auto snaps = ocean::simulate_archive(grid, tides, params, acfg);
    fields = data::center_archive(grid, snaps);
    for (const auto& f : fields) norm.accumulate(f);
    norm.freeze();
    fields_norm = fields;
    for (auto& f : fields_norm) norm.normalize_fields(f);
    spec = data::make_spec(20, 20, 6, /*T=*/3, /*multiple_hw=*/4,
                           /*multiple_d=*/2);
    Rng rng(7);
    model = std::make_unique<core::SurrogateModel>(model_config(spec), rng);
  }

  static CacheWorld& instance() {
    static CacheWorld w;
    return w;
  }

  /// Request whose chain starts at archive frame `start`.
  serve::ForecastRequest request(size_t start, int episodes = 1) const {
    serve::ForecastRequest r;
    r.model_id = 0;
    const size_t frames = static_cast<size_t>(episodes * spec.T) + 1;
    r.window.assign(fields_norm.begin() + static_cast<ptrdiff_t>(start),
                    fields_norm.begin() + static_cast<ptrdiff_t>(start + frames));
    return r;
  }

  std::span<const data::CenterFields> window(size_t start,
                                             int episodes = 1) const {
    return {fields_norm.data() + start,
            static_cast<size_t>(episodes * spec.T) + 1};
  }

  serve::ServerConfig config() const {
    serve::ServerConfig cfg;
    cfg.workers = 1;
    cfg.batch.max_batch = 4;
    cfg.batch.max_wait_us = 1000;
    cfg.threshold = 10.0;
    return cfg;
  }
};

void expect_frames_bitwise(const std::vector<data::CenterFields>& a,
                           const std::vector<data::CenterFields>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t t = 0; t < a.size(); ++t) {
    ASSERT_EQ(a[t].u.size(), b[t].u.size());
    for (size_t i = 0; i < a[t].u.size(); ++i) {
      ASSERT_EQ(a[t].u[i], b[t].u[i]) << "u frame " << t << " idx " << i;
      ASSERT_EQ(a[t].v[i], b[t].v[i]);
      ASSERT_EQ(a[t].w[i], b[t].w[i]);
    }
    for (size_t i = 0; i < a[t].zeta.size(); ++i) {
      ASSERT_EQ(a[t].zeta[i], b[t].zeta[i]) << "zeta frame " << t;
    }
  }
}

serve::ForecastResult serve_one(serve::ForecastServer& server,
                                serve::ForecastRequest req) {
  auto f = server.submit(std::move(req));
  EXPECT_TRUE(f.has_value());
  return f->get();
}

/// Payload bytes one cached entry of `episodes` episodes accounts for:
/// (window + result frames) * floats-per-frame * 4.
uint64_t entry_bytes(const data::SampleSpec& spec, int episodes) {
  const uint64_t n3 = static_cast<uint64_t>(spec.src_nz) * spec.src_ny *
                      spec.src_nx;
  const uint64_t n2 = static_cast<uint64_t>(spec.src_ny) * spec.src_nx;
  const uint64_t ff = 3 * n3 + n2;
  const uint64_t frames = static_cast<uint64_t>(episodes) * spec.T;
  return (2 * frames + 1) * ff * sizeof(float);
}

}  // namespace

TEST(ForecastCache, ExactHitBitwiseAcrossKernelThreadCounts) {
  auto& w = CacheWorld::instance();
  coastal::testing::KernelConfigOverride kco;
  const size_t prev_pool = par::ThreadPool::global().size();

  // Cold recompute under 1 kernel thread...
  serve::ServerConfig cfg1 = w.config();
  cfg1.kernel_threads = 1;
  std::vector<data::CenterFields> cold1;
  {
    serve::ForecastServer server({{w.model.get(), w.spec}}, w.norm, &w.grid,
                                 cfg1);
    cold1 = serve_one(server, w.request(0)).frames;
  }
  // ...and a cold fill + warm hit under 2 kernel threads.
  serve::ServerConfig cfg2 = w.config();
  cfg2.kernel_threads = 2;
  {
    serve::ForecastServer server({{w.model.get(), w.spec}}, w.norm, &w.grid,
                                 cfg2);
    const auto cold2 = serve_one(server, w.request(0));
    EXPECT_FALSE(cold2.cache_hit);
    const auto hit = serve_one(server, w.request(0));
    EXPECT_TRUE(hit.cache_hit);
    EXPECT_EQ(hit.batch_size, 0);
    EXPECT_TRUE(hit.verified);
    // Hit == recompute, and both == the 1-thread recompute: the cache
    // rides on (and re-pins) kernel batch/thread invariance.
    expect_frames_bitwise(cold2.frames, cold1);
    expect_frames_bitwise(hit.frames, cold1);
    ASSERT_EQ(hit.verdict.mean_residual, cold2.verdict.mean_residual);
    ASSERT_EQ(hit.verdict.max_residual, cold2.verdict.max_residual);
    ASSERT_EQ(hit.verdict.pass, cold2.verdict.pass);
    const auto stats = server.stats();
    EXPECT_EQ(stats.cache_hits, 1u);
    EXPECT_EQ(stats.cache_inserts, 1u);
  }

  par::ThreadPool::global().resize(prev_pool);
}

TEST(ForecastCache, PrefixResumeMatchesFullRolloutBitwise) {
  auto& w = CacheWorld::instance();
  const int episodes = 2;
  // Full-chain reference (frames and verdict), computed cold.
  std::vector<data::CenterFields> ref = core::rollout(
      *w.model, w.spec, w.norm, w.window(0, episodes), episodes);
  core::MassVerifier verifier(w.grid, /*threshold=*/10.0);
  std::vector<data::CenterFields> seq;
  // The server anchors verification on denormalized_copy(window.front()),
  // not the raw archive frame — match it for the bitwise verdict compare.
  seq.push_back(data::denormalized_copy(w.fields_norm[0], w.norm));
  for (const auto& f : ref) seq.push_back(f);
  const auto ref_verdict = verifier.check_sequence(seq, 1800.0);

  serve::ForecastServer server({{w.model.get(), w.spec}}, w.norm, &w.grid,
                               w.config());
  // Warm with the 1-episode prefix, then ask for the 2-episode chain.
  const auto prefix = serve_one(server, w.request(0, 1));
  EXPECT_FALSE(prefix.cache_hit);
  const auto resumed = serve_one(server, w.request(0, episodes));
  EXPECT_FALSE(resumed.cache_hit);
  EXPECT_EQ(resumed.resumed_frames, w.spec.T);
  ASSERT_EQ(resumed.frames.size(), static_cast<size_t>(episodes * w.spec.T));
  expect_frames_bitwise(resumed.frames, ref);
  // The extended verdict must be bitwise the single-pass verdict.
  ASSERT_TRUE(resumed.verified);
  ASSERT_EQ(resumed.verdict.mean_residual, ref_verdict.mean_residual);
  ASSERT_EQ(resumed.verdict.max_residual, ref_verdict.max_residual);
  ASSERT_EQ(resumed.verdict.pass, ref_verdict.pass);

  auto stats = server.stats();
  EXPECT_EQ(stats.cache_prefix_hits, 1u);
  // The resumed chain was itself admitted under its full key: asking for
  // the chain again is now an exact hit.
  const auto hit = serve_one(server, w.request(0, episodes));
  EXPECT_TRUE(hit.cache_hit);
  expect_frames_bitwise(hit.frames, ref);
}

TEST(ForecastCache, LruEvictionOrderAndExactByteAccounting) {
  auto& w = CacheWorld::instance();
  const uint64_t one = entry_bytes(w.spec, 1);
  serve::CachePolicy policy;
  policy.max_bytes = 2 * one;  // room for exactly two entries
  serve::ForecastCache cache(policy);

  core::VerificationResult verdict;
  verdict.pass = true;
  auto result_frames = [&](size_t start) {
    // Any finite frames work as a stand-in payload.
    return std::vector<data::CenterFields>(
        w.fields.begin() + static_cast<ptrdiff_t>(start + 1),
        w.fields.begin() + static_cast<ptrdiff_t>(start + 4));
  };
  cache.insert(0, 0, w.spec, w.window(0), result_frames(0), verdict, true);
  EXPECT_EQ(cache.stats().bytes, one);
  cache.insert(0, 0, w.spec, w.window(1), result_frames(1), verdict, true);
  EXPECT_EQ(cache.stats().bytes, 2 * one);
  EXPECT_EQ(cache.stats().entries, 2u);

  // Touch entry 0 so entry 1 is the LRU victim of the next insert.
  EXPECT_TRUE(cache.probe(0, 0, w.spec, w.window(0)).hit);
  cache.insert(0, 0, w.spec, w.window(2), result_frames(2), verdict, true);
  auto stats = cache.stats();
  EXPECT_EQ(stats.entries, 2u);
  EXPECT_EQ(stats.bytes, 2 * one);
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_TRUE(cache.probe(0, 0, w.spec, w.window(0)).hit);
  EXPECT_FALSE(cache.probe(0, 0, w.spec, w.window(1)).hit);  // evicted
  EXPECT_TRUE(cache.probe(0, 0, w.spec, w.window(2)).hit);

  // Version mismatch is a miss: bumping ModelSlot::version invalidates.
  EXPECT_FALSE(cache.probe(0, 1, w.spec, w.window(0)).hit);

  // An entry larger than the whole budget is refused, not thrashed.
  serve::CachePolicy tiny;
  tiny.max_bytes = one - 1;
  serve::ForecastCache small(tiny);
  small.insert(0, 0, w.spec, w.window(0), result_frames(0), verdict, true);
  EXPECT_EQ(small.stats().entries, 0u);
  EXPECT_EQ(small.stats().rejected, 1u);

  // clear() drops content but keeps cumulative counters.
  cache.clear();
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().bytes, 0u);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(ForecastCache, TtlExpiresEntriesAtProbeTime) {
  auto& w = CacheWorld::instance();
  serve::CachePolicy policy;
  policy.ttl_us = 1000;  // 1 ms
  serve::ForecastCache cache(policy);
  core::VerificationResult verdict;
  verdict.pass = true;
  std::vector<data::CenterFields> frames(
      w.fields.begin() + 1, w.fields.begin() + 1 + w.spec.T);
  cache.insert(0, 0, w.spec, w.window(0), frames, verdict, true);
  EXPECT_TRUE(cache.probe(0, 0, w.spec, w.window(0)).hit);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_FALSE(cache.probe(0, 0, w.spec, w.window(0)).hit);
  auto stats = cache.stats();
  EXPECT_EQ(stats.expirations, 1u);
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.bytes, 0u);
}

TEST(ForecastCache, FaultedAndFallbackResultsAreNeverAdmitted) {
  auto& w = CacheWorld::instance();
  FaultGuard guard;
  serve::ServerConfig cfg = w.config();
  cfg.fallback = serve::FallbackContext{w.tides, w.params};
  serve::ForecastServer server({{w.model.get(), w.spec}}, w.norm, &w.grid,
                               cfg);

  // A NaN-poisoned episode fails verification, falls back to the
  // numerical model — and that result must never enter the cache.
  util::FaultInjector::instance().install("rollout.step:nan@1x1");
  const auto faulted = serve_one(server, w.request(0));
  EXPECT_TRUE(faulted.fallback);
  util::FaultInjector::instance().clear();
  EXPECT_EQ(server.stats().cache_inserts, 0u);
  // Re-asking must recompute (miss), not serve the fallback frames.
  const auto clean = serve_one(server, w.request(0));
  EXPECT_FALSE(clean.cache_hit);
  EXPECT_FALSE(clean.fallback);
  EXPECT_EQ(server.stats().cache_inserts, 1u);

  // Direct-API last line of defense: an unverified non-finite payload is
  // rejected even if a buggy caller tries to admit it.
  serve::ForecastCache cache(serve::CachePolicy{});
  std::vector<data::CenterFields> poisoned(
      w.fields.begin() + 1, w.fields.begin() + 1 + w.spec.T);
  poisoned[0].u[0] = std::numeric_limits<float>::quiet_NaN();
  cache.insert(0, 0, w.spec, w.window(0), poisoned,
               core::VerificationResult{}, /*verified=*/false);
  EXPECT_EQ(cache.stats().entries, 0u);
  EXPECT_EQ(cache.stats().rejected, 1u);
}

TEST(ForecastCache, HitPathAllocatesNothing) {
  if (!tensor::pool_enabled()) {
    GTEST_SKIP() << "pool disabled (COASTAL_DISABLE_POOL): every tensor is "
                    "a real allocation by design";
  }
  auto& w = CacheWorld::instance();
  serve::ForecastServer server({{w.model.get(), w.spec}}, w.norm, &w.grid,
                               w.config());
  // Fill, then warm the hit path once (promise/future plumbing and the
  // probe's scratch vectors are plain memory, not tracked tensor heap).
  serve_one(server, w.request(0));
  const auto warm = serve_one(server, w.request(0));
  ASSERT_TRUE(warm.cache_hit);
  const uint64_t before = tensor::alloc_stats().total_allocs;
  for (int i = 0; i < 8; ++i) {
    const auto hit = serve_one(server, w.request(0));
    ASSERT_TRUE(hit.cache_hit);
  }
  const uint64_t after = tensor::alloc_stats().total_allocs;
  EXPECT_EQ(after, before)
      << "cache hits must not touch the tensor heap: the stored frames "
         "live in pooled Storage and are copied into plain vectors";
}
