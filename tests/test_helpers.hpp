#pragma once

/// \file test_helpers.hpp
/// Shared test utilities: numeric gradient checking by central differences,
/// tensor comparison helpers.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <vector>

#include "tensor/kernels.hpp"
#include "tensor/tensor.hpp"

namespace coastal::testing {

using tensor::Tensor;

/// RAII override of the kernel config (thread count, grains, tile sizes);
/// restores the previous config on scope exit even if a check throws.
struct KernelConfigOverride {
  tensor::kernels::KernelConfig saved = tensor::kernels::config();
  ~KernelConfigOverride() { tensor::kernels::config() = saved; }
};

/// Max absolute elementwise difference.
inline double max_abs_diff(const Tensor& a, const Tensor& b) {
  EXPECT_EQ(a.shape(), b.shape());
  double m = 0.0;
  auto pa = a.data();
  auto pb = b.data();
  for (size_t i = 0; i < pa.size(); ++i)
    m = std::max(m, std::abs(static_cast<double>(pa[i]) - pb[i]));
  return m;
}

inline void expect_tensor_near(const Tensor& a, const Tensor& b,
                               double tol = 1e-5) {
  ASSERT_EQ(a.shape(), b.shape());
  EXPECT_LE(max_abs_diff(a, b), tol);
}

/// Checks the analytic gradient of `loss_fn` (a scalar function of the
/// single differentiable input `x`) against central differences.
///
/// Relative tolerance is applied per element against
/// max(1, |analytic|, |numeric|) so both tiny and large gradients are
/// covered.
inline void gradcheck(const std::function<Tensor(const Tensor&)>& loss_fn,
                      Tensor x, double eps = 1e-3, double tol = 2e-2) {
  x.set_requires_grad(true);
  x.zero_grad();
  Tensor loss = loss_fn(x);
  ASSERT_EQ(loss.numel(), 1) << "gradcheck needs a scalar loss";
  loss.backward();
  Tensor analytic = x.grad();
  ASSERT_TRUE(analytic.defined()) << "no gradient reached the input";

  auto px = x.data();
  for (size_t i = 0; i < px.size(); ++i) {
    const float orig = px[i];
    px[i] = orig + static_cast<float>(eps);
    double up;
    {
      tensor::NoGradGuard ng;
      up = loss_fn(x).item();
    }
    px[i] = orig - static_cast<float>(eps);
    double down;
    {
      tensor::NoGradGuard ng;
      down = loss_fn(x).item();
    }
    px[i] = orig;
    const double numeric = (up - down) / (2.0 * eps);
    const double a = analytic.data()[i];
    const double denom = std::max({1.0, std::abs(a), std::abs(numeric)});
    EXPECT_NEAR(a / denom, numeric / denom, tol)
        << "gradient mismatch at flat index " << i << ": analytic " << a
        << " vs numeric " << numeric;
  }
}

}  // namespace coastal::testing
