/// Integration tests: verification physics, trainer convergence on real
/// simulated data, rollout, the AI+ROMS fallback workflow, and the
/// data-parallel trainer.

#include <gtest/gtest.h>

#include <filesystem>

#include "core/decode.hpp"
#include "core/perfmodel.hpp"
#include "core/rollout.hpp"
#include "core/trainer.hpp"
#include "core/verification.hpp"
#include "core/workflow.hpp"
#include "data/dataset.hpp"
#include "ocean/bathymetry.hpp"

namespace core = coastal::core;
namespace data = coastal::data;
namespace ocean = coastal::ocean;
using coastal::util::Rng;

namespace {

/// Shared fixture state: one simulated archive + dataset + trained model,
/// built once (training even a mini model takes a few seconds).
struct Pipeline {
  ocean::Grid grid{20, 20, 6, 400.0, 400.0};
  ocean::TidalForcing tides = ocean::TidalForcing::gulf_coast_default();
  ocean::PhysicsParams params;
  std::vector<data::CenterFields> fields;        // raw (denormalized)
  std::vector<data::CenterFields> fields_norm;   // normalized copy
  data::Dataset dataset;
  std::unique_ptr<core::SurrogateModel> model;
  double archive_t0 = 0.0;

  Pipeline() {
    params.dt = 10.0;
    ocean::generate_estuary(grid, ocean::EstuaryParams{}, 42);
    ocean::ArchiveConfig acfg;
    acfg.spinup_seconds = 2 * 3600.0;
    acfg.duration_seconds = 30 * 3600.0;
    acfg.interval_seconds = 1800.0;
    auto snaps = ocean::simulate_archive(grid, tides, params, acfg);
    archive_t0 = snaps.front().time;
    fields = data::center_archive(grid, snaps);

    data::DatasetConfig dcfg;
    dcfg.T = 3;
    dcfg.stride = 1;
    dcfg.multiple_hw = 4;
    dcfg.multiple_d = 2;
    auto dir = std::filesystem::temp_directory_path() / "coastal_wf_ds";
    std::filesystem::remove_all(dir);
    dcfg.dir = dir.string();
    dataset = data::build_dataset(fields, dcfg);

    fields_norm = fields;
    for (auto& f : fields_norm) dataset.normalizer.normalize_fields(f);

    core::SurrogateConfig mcfg;
    mcfg.H = dataset.spec.H;
    mcfg.W = dataset.spec.W;
    mcfg.D = dataset.spec.D;
    mcfg.T = dataset.spec.T;
    mcfg.patch_h = 5;
    mcfg.patch_w = 5;
    mcfg.patch_d = 2;
    mcfg.embed_dim = 8;
    mcfg.stages = 3;
    mcfg.heads = {2, 4, 8};
    Rng rng(7);
    model = std::make_unique<core::SurrogateModel>(mcfg, rng);
  }

  static Pipeline& instance() {
    static Pipeline p;
    return p;
  }
};

}  // namespace

TEST(Verification, RomsSnapshotsHaveSmallResidual) {
  auto& p = Pipeline::instance();
  core::MassVerifier verifier(p.grid, 1.0);  // threshold irrelevant here
  auto r = verifier.check_pair(p.fields[4], p.fields[5], 1800.0);
  // Residual from snapshot-level finite differencing is small but nonzero.
  EXPECT_GT(r.mean_residual, 0.0);
  EXPECT_LT(r.mean_residual, 2e-4);
}

TEST(Verification, CorruptedVelocitiesFail) {
  auto& p = Pipeline::instance();
  core::MassVerifier verifier(p.grid, 2e-4);
  auto good = verifier.check_pair(p.fields[6], p.fields[7], 1800.0);
  EXPECT_TRUE(good.pass);
  auto corrupted = p.fields[7];
  for (auto& u : corrupted.u) u += 0.05f;  // uniform bias violates mass
  auto bad = verifier.check_pair(p.fields[6], corrupted, 1800.0);
  EXPECT_FALSE(bad.pass);
  EXPECT_GT(bad.mean_residual, good.mean_residual * 3);
}

TEST(Verification, SequenceAggregatesWorstCase) {
  auto& p = Pipeline::instance();
  core::MassVerifier verifier(p.grid, 2e-4);
  std::span<const data::CenterFields> seq(p.fields.data() + 2, 4);
  auto r = verifier.check_sequence(seq, 1800.0);
  EXPECT_TRUE(r.pass);
  EXPECT_GE(r.max_residual, r.mean_residual);
}

TEST(Trainer, LossDecreasesOnSimulatedData) {
  auto& p = Pipeline::instance();
  // Baseline loss of the untrained model.
  const double loss_before = core::validation_loss(*p.model, p.dataset);
  core::TrainConfig cfg;
  cfg.epochs = 2;
  cfg.lr = 2e-3f;
  cfg.loader.num_workers = 1;
  auto stats = core::train(*p.model, p.dataset, cfg);
  EXPECT_GT(stats.throughput, 0.0);
  EXPECT_EQ(stats.samples_seen, 2 * p.dataset.train_indices.size());
  EXPECT_LT(stats.val_loss, loss_before * 0.8)
      << "training failed to beat the untrained baseline";
}

TEST(Trainer, EvaluateReportsPerVariableMetrics) {
  auto& p = Pipeline::instance();
  auto m = core::evaluate(*p.model, p.dataset, p.dataset.val_indices);
  for (int v = 0; v < data::kNumVariables; ++v) {
    EXPECT_GT(m.rmse[v], 0.0) << data::variable_name(v);
    EXPECT_GE(m.rmse[v], m.mae[v]) << data::variable_name(v);
  }
  // w is physically tiny; its absolute error must be far below u's.
  EXPECT_LT(m.mae[data::kW], m.mae[data::kU] * 0.2);
}

TEST(Trainer, MemoryLimitCouplesBatchToCheckpointing) {
  auto& p = Pipeline::instance();
  core::TrainConfig cfg;
  cfg.enforce_memory_limit = true;
  cfg.batch_size = 2;
  cfg.use_checkpoint = false;  // batch 2 without ckpt must be rejected
  EXPECT_THROW(core::train(*p.model, p.dataset, cfg),
               coastal::util::CheckError);
}

TEST(Rollout, ChainsEpisodesAutoRegressively) {
  auto& p = Pipeline::instance();
  const int episodes = 3;
  std::span<const data::CenterFields> truth(
      p.fields_norm.data(), static_cast<size_t>(episodes * 3 + 1));
  auto pred = core::rollout(*p.model, p.dataset.spec, p.dataset.normalizer,
                            truth, episodes);
  ASSERT_EQ(pred.size(), static_cast<size_t>(episodes * 3));
  // Predictions are physically plausible (post-training, values bounded).
  for (const auto& f : pred)
    for (float z : f.zeta) ASSERT_LT(std::abs(z), 5.0f);
}

TEST(Rollout, DualModelComposesCoarseAndFine) {
  auto& p = Pipeline::instance();
  // Use the same model for both resolutions at test scale (the interval
  // semantics differ only through the data fed in).
  const int coarse_episodes = 1;
  const int Tc = p.dataset.spec.T;  // 3 coarse steps
  const int Tf = p.dataset.spec.T;
  // Coarse truth: every 3rd fine frame.
  std::vector<data::CenterFields> coarse_truth;
  for (int i = 0; i <= coarse_episodes * Tc; ++i)
    coarse_truth.push_back(p.fields_norm[static_cast<size_t>(i * Tf)]);
  auto pred = core::dual_rollout(*p.model, *p.model, p.dataset.spec,
                                 p.dataset.spec, p.dataset.normalizer,
                                 coarse_truth, p.fields_norm,
                                 coarse_episodes);
  EXPECT_EQ(pred.size(), static_cast<size_t>(coarse_episodes * Tc * Tf));
}

TEST(Workflow, StrictThresholdForcesRomsFallback) {
  auto& p = Pipeline::instance();
  core::WorkflowConfig wcfg;
  wcfg.threshold = 1e-9;  // impossible: every episode falls back
  wcfg.snapshot_dt = 1800.0;
  auto r = core::run_workflow(*p.model, p.dataset.spec, p.dataset.normalizer,
                              p.grid, p.tides, p.params,
                              {p.fields_norm.data(), 7}, 2, p.archive_t0,
                              wcfg);
  EXPECT_EQ(r.episodes, 2u);
  EXPECT_EQ(r.fallbacks, 2u);
  EXPECT_EQ(r.accepted, 0u);
  EXPECT_GT(r.roms_seconds, 0.0);
  EXPECT_EQ(r.frames.size(), 6u);
  EXPECT_DOUBLE_EQ(r.pass_rate(), 0.0);
}

TEST(Workflow, LooseThresholdAcceptsAI) {
  auto& p = Pipeline::instance();
  core::WorkflowConfig wcfg;
  wcfg.threshold = 10.0;  // everything passes
  auto r = core::run_workflow(*p.model, p.dataset.spec, p.dataset.normalizer,
                              p.grid, p.tides, p.params,
                              {p.fields_norm.data(), 7}, 2, p.archive_t0,
                              wcfg);
  EXPECT_EQ(r.accepted, 2u);
  EXPECT_EQ(r.fallbacks, 0u);
  EXPECT_EQ(r.roms_seconds, 0.0);
  EXPECT_DOUBLE_EQ(r.pass_rate(), 1.0);
}

TEST(Workflow, FallbackFramesSatisfyConservation) {
  auto& p = Pipeline::instance();
  core::WorkflowConfig wcfg;
  wcfg.threshold = 1e-9;
  auto r = core::run_workflow(*p.model, p.dataset.spec, p.dataset.normalizer,
                              p.grid, p.tides, p.params,
                              {p.fields_norm.data(), 4}, 1, p.archive_t0,
                              wcfg);
  // The numerical fallback's own frames must verify at the usual bound.
  core::MassVerifier verifier(p.grid, 2e-4);
  std::vector<data::CenterFields> seq;
  seq.push_back(p.fields[0]);
  for (const auto& f : r.frames) seq.push_back(f);
  auto verdict = verifier.check_sequence(seq, 1800.0);
  EXPECT_LT(verdict.mean_residual, 5e-4);
}

TEST(RestartFromFields, ReproducesModelState) {
  auto& p = Pipeline::instance();
  auto model = core::restart_from_fields(p.grid, p.tides, p.params,
                                         p.fields[5], 12345.0);
  EXPECT_DOUBLE_EQ(model.time(), 12345.0);
  auto z = model.zeta();
  // zeta restored exactly on wet cells.
  for (int iy = 0; iy < p.grid.ny(); ++iy)
    for (int ix = 0; ix < p.grid.nx(); ++ix)
      if (p.grid.wet(ix, iy))
        ASSERT_FLOAT_EQ(z[p.grid.rho_index(ix, iy)],
                        p.fields[5].zeta[p.fields[5].cell2(iy, ix)]);
  // And stepping from the restart stays stable.
  model.run_seconds(3600.0);
  for (float zz : model.zeta()) ASSERT_TRUE(std::isfinite(zz));
}

TEST(DataParallel, ReplicasProduceFiniteThroughput) {
  auto& p = Pipeline::instance();
  core::SurrogateConfig mcfg = p.model->config();
  core::TrainConfig cfg;
  cfg.lr = 1e-3f;
  auto stats = core::train_data_parallel(mcfg, p.dataset, cfg, 2, 2);
  EXPECT_EQ(stats.samples_seen, 4u);
  EXPECT_GT(stats.throughput, 0.0);
  EXPECT_GT(stats.allreduce_bytes, 0u);
}

TEST(PerfModel, AnchorsReproducePaperNumbers) {
  // 512-core MPI ROMS, 12 days: the model must land near 9,908 s.
  const double roms = core::PerfModel::roms_seconds(898, 598, 12,
                                                    12.0 * 86400.0, 512);
  EXPECT_NEAR(roms, 9908.0, 9908.0 * 0.25);
  // Dual-model 12-day forecast ~ 22.2 s.
  EXPECT_NEAR(core::PerfModel::forecast_12day_seconds(), 22.2, 0.5);
  // Full pass rate -> the paper's headline ~450x speedup.
  const double speedup = roms / core::PerfModel::workflow_12day_seconds(0.0);
  EXPECT_GT(speedup, 350.0);
  EXPECT_LT(speedup, 560.0);
}

TEST(PerfModel, ScalingShapesAreMonotonic) {
  // Training throughput rises with GPUs but sub-linearly.
  double prev = 0.0;
  for (int n : {1, 2, 4, 8, 16, 32}) {
    const double thr = core::PerfModel::training_throughput(n, true);
    EXPECT_GT(thr, prev);
    EXPECT_LT(thr, n * core::PerfModel::training_throughput(1, true) * 1.01);
    prev = thr;
  }
  // Checkpointing beats no-checkpointing at every scale (bigger batch).
  for (int n : {1, 8, 32})
    EXPECT_GT(core::PerfModel::training_throughput(n, true),
              core::PerfModel::training_throughput(n, false));
  // Workflow time decreases as pass rate rises.
  EXPECT_GT(core::PerfModel::workflow_12day_seconds(0.5),
            core::PerfModel::workflow_12day_seconds(0.1));
}
