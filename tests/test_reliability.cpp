/// Fault-matrix tests for the reliability layer: the deterministic
/// fault-injection DSL, typed request failures (deadline, invalid input,
/// worker lost), bounded retry, circuit-breaker degradation and recovery,
/// the hung-worker watchdog, sharded single-rank failover, and the
/// no-fault bitwise + zero-allocation pins with every reliability feature
/// armed.  The chaos pin at the end runs the ISSUE's mixed schedule
/// against a client burst and asserts 100% request completion.

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <future>
#include <limits>
#include <span>
#include <thread>
#include <vector>

#include "core/rollout.hpp"
#include "core/workflow.hpp"
#include "data/dataset.hpp"
#include "data/normalization.hpp"
#include "ocean/archive.hpp"
#include "ocean/bathymetry.hpp"
#include "serve/reliability.hpp"
#include "serve/server.hpp"
#include "serve/shard.hpp"
#include "tensor/storage.hpp"
#include "tensor/tensor.hpp"
#include "util/check.hpp"
#include "util/fault.hpp"
#include "test_helpers.hpp"

namespace core = coastal::core;
namespace data = coastal::data;
namespace ocean = coastal::ocean;
namespace serve = coastal::serve;
namespace tensor = coastal::tensor;
namespace util = coastal::util;
using coastal::util::Rng;

namespace {

/// Every fault test disarms the injector on exit, pass or fail — a
/// leaked schedule would silently poison every later test in the binary.
struct FaultGuard {
  ~FaultGuard() { util::FaultInjector::instance().clear(); }
};

core::SurrogateConfig model_config(const data::SampleSpec& spec) {
  core::SurrogateConfig mcfg;
  mcfg.H = spec.H;
  mcfg.W = spec.W;
  mcfg.D = spec.D;
  mcfg.T = spec.T;
  mcfg.patch_h = 5;
  mcfg.patch_w = 5;
  mcfg.patch_d = 2;
  mcfg.embed_dim = 8;
  mcfg.stages = 3;
  mcfg.heads = {2, 4, 8};
  return mcfg;
}

/// Same world as test_serve's: simulated archive + normalizer +
/// untrained surrogate.  Reliability is control flow around the episode
/// code, so model skill is irrelevant; determinism is everything.
struct ReliabilityWorld {
  ocean::Grid grid{20, 20, 6, 400.0, 400.0};
  ocean::TidalForcing tides = ocean::TidalForcing::gulf_coast_default();
  ocean::PhysicsParams params;
  std::vector<data::CenterFields> fields;       // denormalized
  std::vector<data::CenterFields> fields_norm;  // normalized
  data::Normalizer norm;
  data::SampleSpec spec;
  std::unique_ptr<core::SurrogateModel> model;

  ReliabilityWorld() {
    params.dt = 10.0;
    ocean::generate_estuary(grid, ocean::EstuaryParams{}, 42);
    ocean::ArchiveConfig acfg;
    acfg.spinup_seconds = 3600.0;
    acfg.duration_seconds = 10 * 3600.0;
    acfg.interval_seconds = 1800.0;
    auto snaps = ocean::simulate_archive(grid, tides, params, acfg);
    fields = data::center_archive(grid, snaps);
    for (const auto& f : fields) norm.accumulate(f);
    norm.freeze();
    fields_norm = fields;
    for (auto& f : fields_norm) norm.normalize_fields(f);
    spec = data::make_spec(20, 20, 6, /*T=*/3, /*multiple_hw=*/4,
                           /*multiple_d=*/2);
    Rng rng(7);
    model = std::make_unique<core::SurrogateModel>(model_config(spec), rng);
  }

  static ReliabilityWorld& instance() {
    static ReliabilityWorld w;
    return w;
  }

  serve::ForecastRequest request(size_t start, int64_t timeout_us = 0) const {
    serve::ForecastRequest r;
    r.model_id = 0;
    r.timeout_us = timeout_us;
    r.window.assign(fields_norm.begin() + static_cast<ptrdiff_t>(start),
                    fields_norm.begin() + static_cast<ptrdiff_t>(start) + 4);
    return r;
  }

  /// Serial reference; call only with the injector disarmed (the episode
  /// path itself carries the rollout.step fault site).
  std::vector<data::CenterFields> serial_episode(size_t start) {
    tensor::NoGradGuard ng;
    tensor::ArenaScope arena;
    model->set_training(false);
    std::span<const data::CenterFields> window(fields_norm.data() + start, 4);
    return core::forecast_episode(*model, spec, norm, window, nullptr);
  }
};

void expect_frames_bitwise(const std::vector<data::CenterFields>& a,
                           const std::vector<data::CenterFields>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t t = 0; t < a.size(); ++t) {
    ASSERT_EQ(a[t].u.size(), b[t].u.size());
    for (size_t i = 0; i < a[t].u.size(); ++i) {
      ASSERT_EQ(a[t].u[i], b[t].u[i]) << "u frame " << t << " idx " << i;
      ASSERT_EQ(a[t].v[i], b[t].v[i]);
      ASSERT_EQ(a[t].w[i], b[t].w[i]);
    }
    for (size_t i = 0; i < a[t].zeta.size(); ++i) {
      ASSERT_EQ(a[t].zeta[i], b[t].zeta[i]) << "zeta frame " << t;
    }
  }
}

serve::ServerConfig reliable_config(ReliabilityWorld& w) {
  serve::ServerConfig cfg;
  cfg.workers = 1;
  cfg.batch.max_batch = 1;
  cfg.batch.max_wait_us = 0;
  cfg.threshold = 10.0;  // verification passes any finite forecast
  cfg.snapshot_dt = 1800.0;
  cfg.fallback = serve::FallbackContext{w.tides, w.params};
  return cfg;
}

}  // namespace

TEST(FaultInjection, ScheduleIsDeterministicPerSeed) {
  FaultGuard guard;
  auto& inj = util::FaultInjector::instance();
  constexpr int kHits = 256;

  auto run = [&](uint64_t seed) {
    inj.install("site.a:drop@"
                "0.3",
                seed);
    std::vector<int> pattern;
    pattern.reserve(kHits);
    for (int i = 0; i < kHits; ++i) {
      pattern.push_back(
          util::fault_point("site.a") == util::FaultAction::kDrop ? 1 : 0);
    }
    return pattern;
  };

  const auto p1 = run(123);
  const auto st = inj.site_stats("site.a");
  EXPECT_EQ(st.hits, static_cast<uint64_t>(kHits));
  // ~30% of 256 — a loose band, but any schedule bug lands far outside.
  EXPECT_GT(st.fires, 30u);
  EXPECT_LT(st.fires, 130u);
  EXPECT_EQ(p1, run(123)) << "same seed must replay the same firing set";
  EXPECT_NE(p1, run(999)) << "a different seed must draw differently";
}

TEST(FaultInjection, MaxFiresCapAndDisarm) {
  FaultGuard guard;
  auto& inj = util::FaultInjector::instance();
  inj.install("s:drop@1x3");
  int fired = 0;
  for (int i = 0; i < 10; ++i) {
    const auto a = util::fault_point("s");
    if (a == util::FaultAction::kDrop) ++fired;
    // Deterministic: at probability 1 the first three hits fire, no more.
    EXPECT_EQ(a, i < 3 ? util::FaultAction::kDrop : util::FaultAction::kNone);
  }
  EXPECT_EQ(fired, 3);
  const auto st = inj.site_stats("s");
  EXPECT_EQ(st.hits, 10u);
  EXPECT_EQ(st.fires, 3u);

  inj.clear();
  EXPECT_FALSE(util::fault_armed());
  EXPECT_EQ(util::fault_point("s"), util::FaultAction::kNone);
  EXPECT_EQ(inj.site_stats("s").hits, 0u) << "clear() resets counters";
}

TEST(FaultInjection, MalformedSchedulesAreRejected) {
  FaultGuard guard;
  auto& inj = util::FaultInjector::instance();
  EXPECT_THROW(inj.install("noaction"), util::CheckError);
  EXPECT_THROW(inj.install("s:frobnicate"), util::CheckError);
  EXPECT_THROW(inj.install("s:throw@7"), util::CheckError);
  EXPECT_THROW(inj.install("s:delay@0.5"), util::CheckError);  // no duration
  EXPECT_THROW(inj.install("s:throw=5ms"), util::CheckError);  // stray value
  EXPECT_THROW(inj.install("s:drop@1x0"), util::CheckError);
  EXPECT_FALSE(inj.armed()) << "a rejected schedule must not arm anything";
}

TEST(FaultInjection, DelayActionSleepsForTheScheduledDuration) {
  FaultGuard guard;
  util::FaultInjector::instance().install("slow:delay=50ms@1x1");
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(util::fault_point("slow"), util::FaultAction::kDelay);
  const auto first = std::chrono::steady_clock::now() - t0;
  EXPECT_GE(first, std::chrono::milliseconds(45));
  // Fires are capped at one: the next hit is a no-op.
  EXPECT_EQ(util::fault_point("slow"), util::FaultAction::kNone);
}

TEST(Reliability, RetryRecoversFromTransientFaultsBitwise) {
  auto& w = ReliabilityWorld::instance();
  const auto serial = w.serial_episode(0);  // reference before arming

  FaultGuard guard;
  util::FaultInjector::instance().install("serve.forward:throw@1x2");
  serve::ServerConfig cfg = reliable_config(w);
  cfg.reliability.retry.max_attempts = 3;
  cfg.reliability.retry.backoff_us = 200;
  serve::ForecastServer server({{w.model.get(), w.spec}}, w.norm, &w.grid,
                               cfg);
  auto f = server.submit(w.request(0));
  ASSERT_TRUE(f.has_value());
  serve::ForecastResult r = f->get();
  // Two injected throws burned attempts 1 and 2; attempt 3 succeeded and
  // the result is the exact frames a fault-free run produces.
  EXPECT_FALSE(r.fallback);
  EXPECT_FALSE(r.degraded);
  EXPECT_TRUE(r.verified);
  expect_frames_bitwise(r.frames, serial);

  const auto stats = server.stats();
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_EQ(stats.served, 1u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(util::FaultInjector::instance().site_stats("serve.forward").fires,
            2u);
}

TEST(Reliability, DecodeNanRoutesToVerifiedFallback) {
  auto& w = ReliabilityWorld::instance();
  FaultGuard guard;
  util::FaultInjector::instance().install("rollout.step:nan@1x1");
  // threshold 10 passes any *finite* forecast (see reliable_config), so a
  // fallback here is attributable to the injected NaN alone: the poisoned
  // frame's NaN residual fails `mean_residual < threshold`.
  serve::ServerConfig cfg = reliable_config(w);
  serve::ForecastServer server({{w.model.get(), w.spec}}, w.norm, &w.grid,
                               cfg);
  auto f = server.submit(w.request(0));
  ASSERT_TRUE(f.has_value());
  serve::ForecastResult r = f->get();
  // The poisoned surrogate frames failed verification; the numerical
  // model recomputed the episode, so the client still gets finite physics.
  EXPECT_TRUE(r.verified);
  EXPECT_TRUE(r.fallback);
  EXPECT_FALSE(r.degraded);
  ASSERT_EQ(r.frames.size(), 3u);
  for (const auto& fr : r.frames) {
    for (float v : fr.zeta) ASSERT_TRUE(std::isfinite(v));
    for (float v : fr.u) ASSERT_TRUE(std::isfinite(v));
  }
  EXPECT_EQ(server.stats().fallbacks, 1u);
  EXPECT_EQ(server.stats().served, 1u);
}

TEST(Reliability, ExpiredDeadlineFailsWithTypedError) {
  auto& w = ReliabilityWorld::instance();
  FaultGuard guard;
  // Stall batch assembly well past the 1 ms deadline, deterministically.
  util::FaultInjector::instance().install("serve.worker:delay=30ms@1");
  serve::ServerConfig cfg = reliable_config(w);
  serve::ForecastServer server({{w.model.get(), w.spec}}, w.norm, &w.grid,
                               cfg);
  auto f = server.submit(w.request(0, /*timeout_us=*/1000));
  ASSERT_TRUE(f.has_value());
  try {
    f->get();
    FAIL() << "expired request must not resolve with a value";
  } catch (const serve::ForecastError& e) {
    EXPECT_EQ(e.code(), serve::ForecastErrorCode::kDeadlineExceeded);
  }
  const auto stats = server.stats();
  EXPECT_EQ(stats.deadline_expired, 1u);
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.served, 0u);
}

TEST(Reliability, SubmitScreensNonFiniteWindows) {
  auto& w = ReliabilityWorld::instance();
  serve::ServerConfig cfg = reliable_config(w);
  serve::ForecastServer server({{w.model.get(), w.spec}}, w.norm, &w.grid,
                               cfg);
  serve::ForecastRequest bad = w.request(0);
  bad.window[2].u[5] = std::numeric_limits<float>::quiet_NaN();
  auto f = server.submit(std::move(bad));
  ASSERT_TRUE(f.has_value()) << "screening resolves the future, not submit";
  try {
    f->get();
    FAIL() << "non-finite window must be refused";
  } catch (const serve::ForecastError& e) {
    EXPECT_EQ(e.code(), serve::ForecastErrorCode::kInvalidInput);
    EXPECT_NE(std::string(e.what()).find("frame 2"), std::string::npos);
  }
  EXPECT_EQ(server.stats().invalid, 1u);
  EXPECT_EQ(server.stats().served, 0u);

  // A clean request on the same server still serves normally.
  auto ok = server.submit(w.request(0));
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->get().frames.size(), 3u);
}

TEST(Reliability, BreakerTripsDegradesAndRecoversViaProbe) {
  auto& w = ReliabilityWorld::instance();
  FaultGuard guard;
  // Exactly two forward failures (no retries), then the slot is healthy
  // again — the breaker, not the fault, decides everything after that.
  util::FaultInjector::instance().install("serve.forward:throw@1x2");
  serve::ServerConfig cfg = reliable_config(w);
  cfg.reliability.retry.max_attempts = 1;
  cfg.reliability.breaker.window = 4;
  cfg.reliability.breaker.min_samples = 2;
  cfg.reliability.breaker.trip_rate = 0.5;
  cfg.reliability.breaker.cooldown_us = 3'000'000;
  serve::ForecastServer server({{w.model.get(), w.spec}}, w.norm, &w.grid,
                               cfg);
  auto serve_one = [&](size_t start) {
    auto f = server.submit(w.request(start));
    EXPECT_TRUE(f.has_value());
    return f->get();
  };

  // Failures 1 and 2: forward throws, the batch is salvaged numerically.
  for (size_t i = 0; i < 2; ++i) {
    serve::ForecastResult r = serve_one(i);
    EXPECT_TRUE(r.fallback);
    EXPECT_FALSE(r.degraded) << "salvage is not breaker degradation";
  }
  EXPECT_EQ(server.stats().breaker_trips, 1u);
  EXPECT_EQ(server.stats().breaker_open_slots, 1);

  // Open circuit, cooldown pending: served degraded, surrogate untouched.
  const uint64_t forwards_before =
      util::FaultInjector::instance().site_stats("serve.forward").hits;
  serve::ForecastResult degraded = serve_one(2);
  EXPECT_TRUE(degraded.degraded);
  EXPECT_TRUE(degraded.fallback);
  EXPECT_TRUE(degraded.verified);
  EXPECT_EQ(util::FaultInjector::instance().site_stats("serve.forward").hits,
            forwards_before)
      << "degraded mode must bypass the surrogate forward";

  // After the cooldown, one probe batch runs the (now healthy) surrogate
  // and closes the circuit.
  std::this_thread::sleep_for(std::chrono::milliseconds(3300));
  serve::ForecastResult probe = serve_one(3);
  EXPECT_FALSE(probe.degraded);
  EXPECT_FALSE(probe.fallback);
  serve::ForecastResult after = serve_one(4);
  EXPECT_FALSE(after.degraded);
  EXPECT_FALSE(after.fallback);

  const auto stats = server.stats();
  EXPECT_EQ(stats.degraded, 1u);
  EXPECT_EQ(stats.breaker_trips, 1u);
  EXPECT_EQ(stats.breaker_open_slots, 0);
  EXPECT_EQ(stats.served, 5u);
}

TEST(Reliability, WatchdogReplacesHungWorkerAndFailsItsBatch) {
  auto& w = ReliabilityWorld::instance();
  FaultGuard guard;
  util::FaultInjector::instance().install("serve.worker:hang@1x1");
  serve::ServerConfig cfg = reliable_config(w);
  cfg.reliability.watchdog.hang_timeout_ms = 1000;
  cfg.reliability.watchdog.poll_ms = 25;
  cfg.reliability.watchdog.max_restarts = 2;
  serve::ForecastServer server({{w.model.get(), w.spec}}, w.norm, &w.grid,
                               cfg);

  // The single worker pops this request and parks at serve.worker.
  auto hung = server.submit(w.request(0));
  ASSERT_TRUE(hung.has_value());
  ASSERT_EQ(hung->wait_for(std::chrono::seconds(30)),
            std::future_status::ready)
      << "the watchdog must fail a hung batch";
  try {
    hung->get();
    FAIL() << "a hung batch must resolve with kWorkerLost";
  } catch (const serve::ForecastError& e) {
    EXPECT_EQ(e.code(), serve::ForecastErrorCode::kWorkerLost);
  }

  // Queued work carries over: the replacement worker serves new traffic
  // while the hung thread is still parked.
  auto next = server.submit(w.request(1));
  ASSERT_TRUE(next.has_value());
  ASSERT_EQ(next->wait_for(std::chrono::seconds(30)),
            std::future_status::ready);
  EXPECT_EQ(next->get().frames.size(), 3u);

  const auto stats = server.stats();
  EXPECT_EQ(stats.worker_lost, 1u);
  EXPECT_EQ(stats.worker_restarts, 1u);
  EXPECT_EQ(stats.served, 1u);
  EXPECT_GE(util::FaultInjector::instance().parked(), 1)
      << "the retired worker is still parked until shutdown releases it";
  // Destructor shutdown releases the parked thread and joins everything.
}

TEST(ShardedForecast, CommFaultFailsOverToSingleRank) {
  auto& w = ReliabilityWorld::instance();
  serve::ShardConfig cfg;
  cfg.ranks = 2;
  cfg.halo = 1;
  cfg.multiple_hw = 20;
  cfg.multiple_d = 2;
  cfg.verify = true;
  cfg.threshold = 10.0;
  cfg.snapshot_dt = 1800.0;
  const auto specs = serve::sharded_tile_specs(w.spec, cfg);
  ASSERT_EQ(specs.size(), 2u);
  std::vector<std::unique_ptr<core::SurrogateModel>> tile_models;
  std::vector<core::SurrogateModel*> ptrs;
  for (size_t r = 0; r < specs.size(); ++r) {
    Rng rng(100 + static_cast<uint64_t>(r));
    tile_models.push_back(
        std::make_unique<core::SurrogateModel>(model_config(specs[r]), rng));
    ptrs.push_back(tile_models.back().get());
  }
  const int episodes = 2;
  std::span<const data::CenterFields> truth(
      w.fields_norm.data(), static_cast<size_t>(episodes * 3 + 1));
  const auto reference =
      core::rollout(*w.model, w.spec, w.norm, truth, episodes);

  FaultGuard guard;
  util::FaultInjector::instance().install("comm.send:throw@1x1");
  auto sharded = serve::run_sharded_forecast(ptrs, w.spec, w.norm, &w.grid,
                                             truth, episodes, cfg,
                                             /*failover_model=*/w.model.get());
  EXPECT_TRUE(sharded.failed_over);
  EXPECT_EQ(sharded.attempted_ranks, 2);
  EXPECT_EQ(sharded.process_grid[0] * sharded.process_grid[1], 1);
  // Single-rank failover on the global model is exactly a serial run.
  expect_frames_bitwise(sharded.frames, reference);
  EXPECT_TRUE(sharded.verified);
  EXPECT_TRUE(sharded.verdict.pass);

  // Without a failover model the fault propagates instead.
  util::FaultInjector::instance().install("comm.send:throw@1x1");
  EXPECT_THROW(serve::run_sharded_forecast(ptrs, w.spec, w.norm, &w.grid,
                                           truth, episodes, cfg),
               util::FaultInjectedError);
}

TEST(ShardedForecast, DroppedHaloTimesOutAndFailsOver) {
  auto& w = ReliabilityWorld::instance();
  serve::ShardConfig cfg;
  cfg.ranks = 2;
  cfg.halo = 1;
  cfg.multiple_hw = 20;
  cfg.multiple_d = 2;
  cfg.verify = false;
  cfg.snapshot_dt = 1800.0;
  cfg.exchange_timeout_us = 150000;  // a dropped message must not block
  const auto specs = serve::sharded_tile_specs(w.spec, cfg);
  std::vector<std::unique_ptr<core::SurrogateModel>> tile_models;
  std::vector<core::SurrogateModel*> ptrs;
  for (size_t r = 0; r < specs.size(); ++r) {
    Rng rng(100 + static_cast<uint64_t>(r));
    tile_models.push_back(
        std::make_unique<core::SurrogateModel>(model_config(specs[r]), rng));
    ptrs.push_back(tile_models.back().get());
  }
  const int episodes = 1;
  std::span<const data::CenterFields> truth(
      w.fields_norm.data(), static_cast<size_t>(episodes * 3 + 1));
  const auto reference =
      core::rollout(*w.model, w.spec, w.norm, truth, episodes);

  FaultGuard guard;
  // The message is silently lost; only the receiver's timeout notices.
  util::FaultInjector::instance().install("comm.send:drop@1x1");
  auto sharded = serve::run_sharded_forecast(ptrs, w.spec, w.norm, nullptr,
                                             truth, episodes, cfg,
                                             /*failover_model=*/w.model.get());
  EXPECT_TRUE(sharded.failed_over);
  EXPECT_EQ(sharded.attempted_ranks, 2);
  expect_frames_bitwise(sharded.frames, reference);
}

TEST(Reliability, NoFaultPathStaysBitwiseAndAllocationFree) {
  auto& w = ReliabilityWorld::instance();
  ASSERT_FALSE(util::fault_armed());
  std::vector<std::vector<data::CenterFields>> serial(4);
  for (size_t i = 0; i < 4; ++i) serial[i] = w.serial_episode(i);

  // Every reliability feature armed — screening, retries, breaker,
  // watchdog — but no schedule installed: pure control-flow overhead.
  serve::ServerConfig cfg = reliable_config(w);
  cfg.workers = 1;
  cfg.batch.max_batch = 4;
  cfg.batch.max_wait_us = 100000;
  cfg.reliability.watchdog.hang_timeout_ms = 5000;
  cfg.reliability.watchdog.poll_ms = 50;
  serve::ForecastServer server({{w.model.get(), w.spec}}, w.norm, &w.grid,
                               cfg);
  auto round = [&](bool compare) {
    std::vector<std::future<serve::ForecastResult>> futures;
    for (size_t i = 0; i < 4; ++i) {
      auto f = server.submit(w.request(i));
      ASSERT_TRUE(f.has_value());
      futures.push_back(std::move(*f));
    }
    for (size_t i = 0; i < 4; ++i) {
      serve::ForecastResult r = futures[i].get();
      EXPECT_FALSE(r.fallback);
      EXPECT_FALSE(r.degraded);
      if (compare) expect_frames_bitwise(r.frames, serial[i]);
    }
  };
  round(true);
  round(true);
  if (tensor::pool_enabled()) {
    const uint64_t before = tensor::alloc_stats().total_allocs;
    round(false);
    round(false);
    const uint64_t after = tensor::alloc_stats().total_allocs;
    EXPECT_EQ(after, before)
        << "reliability machinery must not break the zero-alloc pin";
  }
  const auto stats = server.stats();
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.degraded, 0u);
  EXPECT_EQ(stats.worker_lost, 0u);
  EXPECT_EQ(stats.breaker_trips, 0u);
}

TEST(Reliability, ChaosBurstCompletesEveryRequest) {
  auto& w = ReliabilityWorld::instance();
  FaultGuard guard;
  // The ISSUE's chaos pin: 5% forward throws, 1% decode NaNs, and one
  // worker hang, against an 8-client burst.  Every future must resolve;
  // everything the watchdog didn't write off must succeed.
  util::FaultInjector::instance().install(
      "serve.forward:throw@"
      "0.05;rollout.step:nan@"
      "0.01;serve.worker:hang@1x1",
      2026);
  serve::ServerConfig cfg = reliable_config(w);
  cfg.workers = 2;
  cfg.batch.max_batch = 4;
  cfg.batch.max_wait_us = 2000;
  // reliable_config's threshold (10) passes finite forecasts, so only
  // NaN-poisoned entries take the numerical fallback route.
  cfg.reliability.retry.max_attempts = 4;
  cfg.reliability.retry.backoff_us = 200;
  cfg.reliability.watchdog.hang_timeout_ms = 2500;
  cfg.reliability.watchdog.poll_ms = 50;
  cfg.reliability.watchdog.max_restarts = 2;
  serve::ForecastServer server({{w.model.get(), w.spec}}, w.norm, &w.grid,
                               cfg);

  constexpr size_t kClients = 8, kRounds = 3;
  std::vector<std::future<serve::ForecastResult>> futures;
  for (size_t r = 0; r < kRounds; ++r) {
    for (size_t c = 0; c < kClients; ++c) {
      auto f = server.submit(w.request(c));
      ASSERT_TRUE(f.has_value());
      futures.push_back(std::move(*f));
    }
  }

  size_t ok = 0, lost = 0;
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(120)),
              std::future_status::ready)
        << "every accepted request must resolve under chaos";
    try {
      serve::ForecastResult r = f.get();
      EXPECT_EQ(r.frames.size(), 3u);
      ++ok;
    } catch (const serve::ForecastError& e) {
      EXPECT_EQ(e.code(), serve::ForecastErrorCode::kWorkerLost)
          << "with a fallback configured, only the hung batch may fail";
      ++lost;
    }
  }
  EXPECT_EQ(ok + lost, kClients * kRounds);
  EXPECT_GE(lost, 1u) << "the scheduled hang fires on the first batch";
  EXPECT_LE(lost, 4u) << "blast radius is one batch";

  const auto stats = server.stats();
  EXPECT_EQ(stats.worker_restarts, 1u);
  EXPECT_EQ(stats.served, ok);
  EXPECT_EQ(stats.worker_lost, lost);
  // The hung thread stays parked until shutdown; it must not have served.
  EXPECT_GE(util::FaultInjector::instance().parked(), 1);
}

TEST(Reliability, WarmCacheChaosBurstNeverServesPoisonedEntries) {
  auto& w = ReliabilityWorld::instance();
  FaultGuard guard;
  serve::ServerConfig cfg = reliable_config(w);
  cfg.workers = 2;
  cfg.batch.max_batch = 4;
  cfg.batch.max_wait_us = 2000;
  cfg.reliability.retry.max_attempts = 4;
  cfg.reliability.retry.backoff_us = 200;
  // Keep the breaker out of the way: degraded mode bypasses the cache by
  // design (its own pin lives in test_cache), and this test is about what
  // the chaos run is allowed to *admit*.
  cfg.reliability.breaker.enabled = false;
  serve::ForecastServer server({{w.model.get(), w.spec}}, w.norm, &w.grid,
                               cfg);

  // Clean serial references for every window, then warm the cache with
  // the first kWarm of them — all with the injector disarmed.
  constexpr size_t kWindows = 10, kWarm = 5;
  std::vector<std::vector<data::CenterFields>> ref(kWindows);
  for (size_t c = 0; c < kWindows; ++c) ref[c] = w.serial_episode(c);
  for (size_t c = 0; c < kWarm; ++c) {
    auto f = server.submit(w.request(c));
    ASSERT_TRUE(f.has_value());
    serve::ForecastResult r = f->get();
    EXPECT_FALSE(r.fallback);
    expect_frames_bitwise(r.frames, ref[c]);
  }
  ASSERT_EQ(server.stats().cache_inserts, kWarm);

  // Chaos burst against the warm cache: heavy NaN poisoning plus
  // transient forward throws, over duplicates of the warm windows and
  // never-seen cold windows alike.  No hang is scheduled, so with the
  // fallback configured every single future must resolve with a value.
  util::FaultInjector::instance().install(
      "serve.forward:throw@0.1;rollout.step:nan@0.3", 7);
  constexpr size_t kRounds = 4;
  std::vector<std::future<serve::ForecastResult>> futures;
  std::vector<size_t> starts;
  for (size_t round = 0; round < kRounds; ++round) {
    for (size_t c = 0; c < kWindows; ++c) {
      auto f = server.submit(w.request(c));
      ASSERT_TRUE(f.has_value());
      futures.push_back(std::move(*f));
      starts.push_back(c);
    }
  }
  size_t hits = 0;
  for (size_t i = 0; i < futures.size(); ++i) {
    ASSERT_EQ(futures[i].wait_for(std::chrono::seconds(120)),
              std::future_status::ready)
        << "every request must complete under cache + chaos";
    serve::ForecastResult r = futures[i].get();
    ASSERT_EQ(r.frames.size(), 3u);
    for (const auto& fr : r.frames) {
      for (float v : fr.zeta) ASSERT_TRUE(std::isfinite(v));
      for (float v : fr.u) ASSERT_TRUE(std::isfinite(v));
    }
    if (r.cache_hit) {
      // A hit bypasses every fault site, so it must be the clean bytes;
      // a poisoned admission could only surface right here.
      EXPECT_FALSE(r.fallback);
      expect_frames_bitwise(r.frames, ref[starts[i]]);
      ++hits;
    }
  }
  // The warm windows' duplicates never touch the surrogate at all.
  EXPECT_GE(hits, kRounds * kWarm);
  EXPECT_EQ(server.stats().failed, 0u);

  // Post-chaos, every window — whether it was cached cleanly mid-chaos or
  // fell back and was (correctly) never admitted — serves the clean
  // reference bytes.
  util::FaultInjector::instance().clear();
  for (size_t c = 0; c < kWindows; ++c) {
    auto f = server.submit(w.request(c));
    ASSERT_TRUE(f.has_value());
    serve::ForecastResult r = f->get();
    EXPECT_FALSE(r.fallback);
    expect_frames_bitwise(r.frames, ref[c]);
  }
}
