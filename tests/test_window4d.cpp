/// Tests for 4-D window partitioning, cyclic shifts, and shifted-window
/// attention masks.

#include <gtest/gtest.h>

#include "core/window4d.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace core = coastal::core;
namespace ct = coastal::tensor;
using coastal::core::FeatureDims;
using coastal::core::Window4d;
using coastal::tensor::Tensor;
using coastal::testing::expect_tensor_near;

TEST(Window4d, PartitionShape) {
  coastal::util::Rng rng(1);
  Tensor x = Tensor::randn({2, 3, 4, 4, 2, 2}, rng);
  Tensor tokens = core::window_partition(x, {2, 2, 2, 2});
  // nW = 2*2*1*1 = 4; N = 16.
  EXPECT_EQ(tokens.shape(), (ct::Shape{2 * 4, 16, 3}));
}

TEST(Window4d, PartitionReverseRoundTrip) {
  coastal::util::Rng rng(2);
  Tensor x = Tensor::randn({1, 5, 4, 6, 2, 4}, rng);
  const Window4d w{2, 3, 2, 2};
  Tensor tokens = core::window_partition(x, w);
  Tensor back = core::window_reverse(tokens, FeatureDims::of(x), w);
  expect_tensor_near(back, x, 0.0);
}

TEST(Window4d, RejectsIndivisibleWindow) {
  Tensor x = Tensor::zeros({1, 2, 5, 4, 2, 2});
  EXPECT_THROW(core::window_partition(x, {2, 2, 2, 2}),
               coastal::util::CheckError);
}

TEST(Window4d, WindowContentIsSpatiallyContiguous) {
  // Build a tensor whose value encodes its (h, w, d, t) coordinate and
  // check that one window holds exactly one contiguous block.
  const int64_t H = 4, W = 4, D = 2, T = 2;
  Tensor x = Tensor::zeros({1, 1, H, W, D, T});
  for (int64_t h = 0; h < H; ++h)
    for (int64_t w = 0; w < W; ++w)
      for (int64_t d = 0; d < D; ++d)
        for (int64_t t = 0; t < T; ++t)
          x.set({0, 0, h, w, d, t},
                static_cast<float>(((h * W + w) * D + d) * T + t));
  Tensor tokens = core::window_partition(x, {2, 2, 2, 2});
  // First window = h in [0,2), w in [0,2), all d, t.
  // Its first token is (0,0,0,0) -> 0; last is (1,1,1,1).
  EXPECT_EQ(tokens.at({0, 0, 0}), 0.0f);
  EXPECT_EQ(tokens.at({0, 15, 0}),
            static_cast<float>(((1 * W + 1) * D + 1) * T + 1));
}

TEST(Window4d, CyclicShiftRoundTrip) {
  coastal::util::Rng rng(3);
  Tensor x = Tensor::randn({1, 2, 4, 4, 2, 4}, rng);
  const Window4d s{1, 2, 1, 1};
  expect_tensor_near(core::cyclic_unshift(core::cyclic_shift(x, s), s), x,
                     0.0);
}

TEST(Window4d, MaskZeroWhenNoShift) {
  FeatureDims d{1, 8, 4, 4, 2, 2};
  Tensor m = core::shifted_window_mask(d, {2, 2, 2, 2}, {0, 0, 0, 0});
  for (float v : m.data()) EXPECT_EQ(v, 0.0f);
}

TEST(Window4d, MaskShape) {
  FeatureDims d{1, 8, 4, 4, 2, 2};
  Tensor m = core::shifted_window_mask(d, {2, 2, 2, 2}, {1, 1, 0, 0});
  // nW = (4/2) * (4/2) * (2/2) * (2/2) = 4; N = 16.
  EXPECT_EQ(m.shape(), (ct::Shape{4, 16, 16}));
}

TEST(Window4d, MaskIsSymmetricAndZeroDiagonal) {
  FeatureDims d{1, 8, 8, 4, 2, 4};
  Tensor m = core::shifted_window_mask(d, {4, 4, 2, 2}, {2, 2, 1, 1});
  const int64_t nW = m.shape()[0], N = m.shape()[1];
  for (int64_t b = 0; b < nW; ++b)
    for (int64_t i = 0; i < N; ++i) {
      EXPECT_EQ(m.at({b, i, i}), 0.0f);
      for (int64_t j = i + 1; j < N; ++j)
        EXPECT_EQ(m.at({b, i, j}), m.at({b, j, i}));
    }
}

TEST(Window4d, OnlyBoundaryWindowsAreMasked) {
  // 1-D-like case: shift only along H.  Windows not touching the wrap
  // boundary must be fully open.
  FeatureDims d{1, 4, 8, 2, 2, 2};
  Tensor m = core::shifted_window_mask(d, {2, 2, 2, 2}, {1, 0, 0, 0});
  const int64_t N = m.shape()[1];
  // Window layout: (wh, ww, wd, wt) row-major with wh slowest; windows
  // with wh < 3 are interior along H.  Per wh group there are
  // nw * nd * nt windows.
  const int64_t windows_per_h = (2 / 2) * (2 / 2) * (2 / 2);
  for (int64_t b = 0; b < 3 * windows_per_h; ++b)
    for (int64_t i = 0; i < N; ++i)
      for (int64_t j = 0; j < N; ++j)
        ASSERT_EQ(m.at({b, i, j}), 0.0f) << "window " << b;
  // The last row of windows (wrap boundary) must mask something.
  double masked = 0;
  for (int64_t b = 3 * windows_per_h; b < m.shape()[0]; ++b)
    for (int64_t i = 0; i < N; ++i)
      for (int64_t j = 0; j < N; ++j)
        if (m.at({b, i, j}) < -1.0f) ++masked;
  EXPECT_GT(masked, 0);
}

TEST(Window4d, ShiftedAttentionRespectsOriginalNeighborhoods) {
  // End-to-end semantic check of the Swin trick in 1-D (H only):
  // after shifting by s and masking, a token may only see tokens that were
  // within the same shifted window in the *original* sequence.
  const int64_t H = 8;
  FeatureDims d{1, 1, H, 2, 2, 2};
  const Window4d win{4, 2, 2, 2};
  const Window4d shift{2, 0, 0, 0};
  Tensor mask = core::shifted_window_mask(d, win, shift);

  // Token h of the rolled grid corresponds to original position
  // (h + shift) mod H.  Within the last window, original positions from
  // the tail may not attend to wrapped-around head positions.
  const int64_t N = win[0] * win[1] * win[2] * win[3];
  const int64_t per_h = 2 * 2 * 2;  // tokens per h within a window
  const int64_t last_win = mask.shape()[0] - 1;
  // rolled h = 4..7 -> original 6, 7, 0, 1.
  auto blocked = [&](int64_t hi, int64_t hj) {
    return mask.at({last_win, hi * per_h, hj * per_h}) < -1.0f;
  };
  EXPECT_FALSE(blocked(0, 1));  // orig 6 <-> 7: neighbours
  EXPECT_FALSE(blocked(2, 3));  // orig 0 <-> 1: neighbours
  EXPECT_TRUE(blocked(0, 2));   // orig 6 <-> 0: wrapped, must be masked
  EXPECT_TRUE(blocked(1, 3));   // orig 7 <-> 1: wrapped
  (void)N;
}
