/// Serving-subsystem tests: micro-batched results bitwise-equal to serial
/// execution, grouped BatchNorm statistics, backpressure and shutdown
/// semantics, the numerical fallback through the server, domain-sharded
/// execution (1-rank bitwise equality, multi-rank halo coupling and
/// verdict reduction), and the steady-state zero-allocation pin.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <future>
#include <span>
#include <thread>

#include "core/rollout.hpp"
#include "core/workflow.hpp"
#include "data/dataset.hpp"
#include "data/normalization.hpp"
#include "nn/layers.hpp"
#include "ocean/archive.hpp"
#include "ocean/bathymetry.hpp"
#include "serve/server.hpp"
#include "serve/shard.hpp"
#include "tensor/storage.hpp"
#include "tensor/tensor.hpp"
#include "test_helpers.hpp"

namespace core = coastal::core;
namespace data = coastal::data;
namespace nn = coastal::nn;
namespace ocean = coastal::ocean;
namespace serve = coastal::serve;
namespace tensor = coastal::tensor;
using coastal::util::Rng;

namespace {

core::SurrogateConfig model_config(const data::SampleSpec& spec) {
  core::SurrogateConfig mcfg;
  mcfg.H = spec.H;
  mcfg.W = spec.W;
  mcfg.D = spec.D;
  mcfg.T = spec.T;
  mcfg.patch_h = 5;
  mcfg.patch_w = 5;
  mcfg.patch_d = 2;
  mcfg.embed_dim = 8;
  mcfg.stages = 3;
  mcfg.heads = {2, 4, 8};
  return mcfg;
}

/// Shared world: simulated archive + normalizer + (untrained) surrogate.
/// Serving correctness is about data movement and scheduling, not skill,
/// so no training is needed; the fallback tests force failure with an
/// impossible threshold exactly as test_workflow does.
struct ServeWorld {
  ocean::Grid grid{20, 20, 6, 400.0, 400.0};
  ocean::TidalForcing tides = ocean::TidalForcing::gulf_coast_default();
  ocean::PhysicsParams params;
  std::vector<data::CenterFields> fields;       // denormalized
  std::vector<data::CenterFields> fields_norm;  // normalized
  data::Normalizer norm;
  data::SampleSpec spec;
  std::unique_ptr<core::SurrogateModel> model;
  double t0 = 0.0;

  ServeWorld() {
    params.dt = 10.0;
    ocean::generate_estuary(grid, ocean::EstuaryParams{}, 42);
    ocean::ArchiveConfig acfg;
    acfg.spinup_seconds = 3600.0;
    acfg.duration_seconds = 10 * 3600.0;
    acfg.interval_seconds = 1800.0;
    auto snaps = ocean::simulate_archive(grid, tides, params, acfg);
    t0 = snaps.front().time;
    fields = data::center_archive(grid, snaps);
    for (const auto& f : fields) norm.accumulate(f);
    norm.freeze();
    fields_norm = fields;
    for (auto& f : fields_norm) norm.normalize_fields(f);

    spec = data::make_spec(20, 20, 6, /*T=*/3, /*multiple_hw=*/4,
                           /*multiple_d=*/2);
    Rng rng(7);
    model = std::make_unique<core::SurrogateModel>(model_config(spec), rng);
  }

  static ServeWorld& instance() {
    static ServeWorld w;
    return w;
  }

  /// Request whose episode starts at archive frame `start`.
  serve::ForecastRequest request(size_t start, int model_id = 0) const {
    serve::ForecastRequest r;
    r.model_id = model_id;
    r.window.assign(fields_norm.begin() + static_cast<ptrdiff_t>(start),
                    fields_norm.begin() + static_cast<ptrdiff_t>(start) + 4);
    return r;
  }

  /// Serial one-request-at-a-time reference for the same episode.
  std::vector<data::CenterFields> serial_episode(size_t start) {
    tensor::NoGradGuard ng;
    tensor::ArenaScope arena;
    model->set_training(false);
    std::span<const data::CenterFields> window(fields_norm.data() + start, 4);
    return core::forecast_episode(*model, spec, norm, window, nullptr);
  }
};

void expect_frames_bitwise(const std::vector<data::CenterFields>& a,
                           const std::vector<data::CenterFields>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t t = 0; t < a.size(); ++t) {
    ASSERT_EQ(a[t].u.size(), b[t].u.size());
    for (size_t i = 0; i < a[t].u.size(); ++i) {
      ASSERT_EQ(a[t].u[i], b[t].u[i]) << "u frame " << t << " idx " << i;
      ASSERT_EQ(a[t].v[i], b[t].v[i]);
      ASSERT_EQ(a[t].w[i], b[t].w[i]);
    }
    for (size_t i = 0; i < a[t].zeta.size(); ++i) {
      ASSERT_EQ(a[t].zeta[i], b[t].zeta[i]) << "zeta frame " << t;
    }
  }
}

}  // namespace

TEST(BatchStatScope, GroupedEvalMatchesPerSampleBitwise) {
  // An eval-mode BatchNorm (batch stats) over two stacked samples with
  // BatchStatScope(2) must reproduce each sample's standalone output
  // bitwise — the property that makes micro-batching invisible.
  Rng rng(3);
  nn::BatchNorm bn(5, 1e-5f, 0.1f, /*use_batch_stats_in_eval=*/true);
  bn.set_training(false);
  tensor::NoGradGuard ng;
  tensor::Tensor a = tensor::Tensor::randn({1, 5, 7}, rng);
  tensor::Tensor b = tensor::Tensor::randn({1, 5, 7}, rng);
  tensor::Tensor ya = bn.forward(a);
  tensor::Tensor yb = bn.forward(b);
  tensor::Tensor stacked = tensor::concat({a, b}, 0);

  // Whole-batch stats mix the two samples: outputs differ.
  tensor::Tensor mixed = bn.forward(stacked);
  double max_mix = 0.0;
  for (int64_t i = 0; i < ya.numel(); ++i) {
    max_mix = std::max(max_mix,
                       std::abs(static_cast<double>(mixed.raw()[i]) -
                                ya.raw()[i]));
  }
  EXPECT_GT(max_mix, 1e-4) << "stacking should change whole-batch stats";

  nn::BatchStatScope scope(2);
  tensor::Tensor grouped = bn.forward(stacked);
  for (int64_t i = 0; i < ya.numel(); ++i) {
    ASSERT_EQ(grouped.raw()[i], ya.raw()[i]) << "entry 0 idx " << i;
    ASSERT_EQ(grouped.raw()[ya.numel() + i], yb.raw()[i])
        << "entry 1 idx " << i;
  }
}

TEST(ForecastServer, BatchedMatchesSerialBitwise) {
  auto& w = ServeWorld::instance();
  constexpr size_t kRequests = 8;

  std::vector<std::vector<data::CenterFields>> serial(kRequests);
  for (size_t i = 0; i < kRequests; ++i) serial[i] = w.serial_episode(i);

  serve::ServerConfig cfg;
  cfg.workers = 2;
  cfg.batch.max_batch = 4;
  cfg.batch.max_wait_us = 200000;  // generous window: batches form
  cfg.threshold = 10.0;            // verification passes everything
  serve::ForecastServer server({{w.model.get(), w.spec}}, w.norm, &w.grid,
                               cfg);
  std::vector<std::future<serve::ForecastResult>> futures;
  for (size_t i = 0; i < kRequests; ++i) {
    auto f = server.submit(w.request(i));
    ASSERT_TRUE(f.has_value());
    futures.push_back(std::move(*f));
  }
  int max_batch_seen = 0;
  for (size_t i = 0; i < kRequests; ++i) {
    serve::ForecastResult r = futures[i].get();
    ASSERT_EQ(r.frames.size(), 3u);
    EXPECT_TRUE(r.verified);
    EXPECT_TRUE(r.verdict.pass);
    max_batch_seen = std::max(max_batch_seen, r.batch_size);
    expect_frames_bitwise(r.frames, serial[i]);
  }
  EXPECT_GT(max_batch_seen, 1) << "no micro-batch formed despite the window";

  auto stats = server.stats();
  EXPECT_EQ(stats.served, kRequests);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_GT(stats.batches, 0u);
  EXPECT_GT(stats.p50_ms, 0.0);
  EXPECT_GE(stats.p99_ms, stats.p50_ms);
}

TEST(ForecastServer, IdenticalEpisodesCoalesceIntoOneEntry) {
  auto& w = ServeWorld::instance();
  constexpr size_t kClients = 8, kDistinct = 2;

  std::vector<std::vector<data::CenterFields>> serial(kDistinct);
  for (size_t i = 0; i < kDistinct; ++i) serial[i] = w.serial_episode(i);

  serve::ServerConfig cfg;
  cfg.workers = 1;
  cfg.batch.max_batch = static_cast<int>(kClients);
  cfg.batch.max_wait_us = 200000;
  cfg.threshold = 10.0;
  serve::ForecastServer server({{w.model.get(), w.spec}}, w.norm, &w.grid,
                               cfg);
  std::vector<std::future<serve::ForecastResult>> futures;
  for (size_t i = 0; i < kClients; ++i) {
    auto f = server.submit(w.request(i % kDistinct));  // 4 clients/episode
    ASSERT_TRUE(f.has_value());
    futures.push_back(std::move(*f));
  }
  int max_sharers = 0;
  for (size_t i = 0; i < kClients; ++i) {
    serve::ForecastResult r = futures[i].get();
    // Fan-out results are the exact frames a standalone run produces.
    expect_frames_bitwise(r.frames, serial[i % kDistinct]);
    EXPECT_LE(r.batch_size, static_cast<int>(kDistinct))
        << "distinct episodes per forward must not exceed the trace's";
    max_sharers = std::max(max_sharers, r.sharers);
  }
  EXPECT_GT(max_sharers, 1) << "duplicates should share one batch entry";
  EXPECT_GT(server.stats().coalesced, 0u);
  EXPECT_EQ(server.stats().served, kClients);
}

TEST(ForecastServer, RejectPolicyBoundsTheQueue) {
  auto& w = ServeWorld::instance();
  serve::ServerConfig cfg;
  cfg.workers = 1;
  cfg.queue_capacity = 2;
  cfg.overflow = serve::ServerConfig::Overflow::kReject;
  cfg.batch.max_batch = 1;
  cfg.batch.max_wait_us = 0;
  cfg.verify = false;
  serve::ForecastServer server({{w.model.get(), w.spec}}, w.norm, nullptr,
                               cfg);
  // Flood far beyond capacity: some must be rejected, every accepted one
  // must complete.
  std::vector<std::future<serve::ForecastResult>> accepted;
  size_t rejected = 0;
  for (int i = 0; i < 24; ++i) {
    auto f = server.submit(w.request(static_cast<size_t>(i % 4)));
    if (f.has_value()) {
      accepted.push_back(std::move(*f));
    } else {
      ++rejected;
    }
  }
  for (auto& f : accepted) {
    auto r = f.get();
    EXPECT_EQ(r.frames.size(), 3u);
    EXPECT_FALSE(r.verified);
  }
  auto stats = server.stats();
  EXPECT_EQ(stats.rejected, rejected);
  EXPECT_EQ(stats.served, accepted.size());
  // A 1-deep service pipeline against a 24-burst: the bound must bite.
  EXPECT_GT(rejected, 0u);
}

TEST(ForecastServer, BlockPolicyServesEverything) {
  auto& w = ServeWorld::instance();
  serve::ServerConfig cfg;
  cfg.workers = 2;
  cfg.queue_capacity = 2;  // tiny: submitters must block, not fail
  cfg.overflow = serve::ServerConfig::Overflow::kBlock;
  cfg.batch.max_batch = 2;
  cfg.batch.max_wait_us = 1000;
  cfg.verify = false;
  serve::ForecastServer server({{w.model.get(), w.spec}}, w.norm, nullptr,
                               cfg);
  std::vector<std::future<serve::ForecastResult>> futures;
  for (int i = 0; i < 12; ++i) {
    auto f = server.submit(w.request(static_cast<size_t>(i % 4)));
    ASSERT_TRUE(f.has_value());
    futures.push_back(std::move(*f));
  }
  for (auto& f : futures) EXPECT_EQ(f.get().frames.size(), 3u);
  EXPECT_EQ(server.stats().served, 12u);
  EXPECT_EQ(server.stats().rejected, 0u);
}

TEST(ForecastServer, ShutdownDrainsAndRejectsLateSubmits) {
  auto& w = ServeWorld::instance();
  serve::ServerConfig cfg;
  cfg.workers = 1;
  cfg.batch.max_batch = 4;
  cfg.batch.max_wait_us = 0;
  cfg.verify = false;
  auto server = std::make_unique<serve::ForecastServer>(
      std::vector<serve::ModelSlot>{{w.model.get(), w.spec}}, w.norm,
      nullptr, cfg);
  std::vector<std::future<serve::ForecastResult>> futures;
  for (int i = 0; i < 6; ++i) {
    auto f = server->submit(w.request(static_cast<size_t>(i % 4)));
    ASSERT_TRUE(f.has_value());
    futures.push_back(std::move(*f));
  }
  server->shutdown();  // must drain all six
  for (auto& f : futures) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(0)), std::future_status::ready);
    EXPECT_EQ(f.get().frames.size(), 3u);
  }
  EXPECT_FALSE(server->submit(w.request(0)).has_value());
  server.reset();  // double-shutdown via destructor: no hang, no throw
}

TEST(ForecastServer, StrictThresholdRoutesThroughRomsFallback) {
  auto& w = ServeWorld::instance();
  serve::ServerConfig cfg;
  cfg.workers = 1;
  cfg.batch.max_batch = 2;
  cfg.batch.max_wait_us = 50000;
  cfg.threshold = 1e-9;  // impossible: every episode falls back
  cfg.snapshot_dt = 1800.0;
  cfg.fallback = serve::FallbackContext{w.tides, w.params};
  serve::ForecastServer server({{w.model.get(), w.spec}}, w.norm, &w.grid,
                               cfg);
  auto f = server.submit(w.request(0));
  ASSERT_TRUE(f.has_value());
  serve::ForecastResult r = f->get();
  EXPECT_TRUE(r.verified);
  EXPECT_FALSE(r.verdict.pass);
  EXPECT_TRUE(r.fallback);
  ASSERT_EQ(r.frames.size(), 3u);
  // The fallback frames are the numerical model's — they satisfy
  // conservation at the usual bound even though the verdict failed.
  core::MassVerifier verifier(w.grid, 5e-4);
  std::vector<data::CenterFields> seq;
  seq.push_back(w.fields[0]);
  for (const auto& fr : r.frames) seq.push_back(fr);
  EXPECT_LT(verifier.check_sequence(seq, 1800.0).mean_residual, 5e-4);
  EXPECT_GT(server.stats().fallbacks, 0u);
}

TEST(ShardedForecast, OneRankMatchesRolloutBitwise) {
  auto& w = ServeWorld::instance();
  serve::ShardConfig cfg;
  cfg.ranks = 1;
  cfg.multiple_hw = 4;
  cfg.multiple_d = 2;
  cfg.verify = true;
  cfg.threshold = 10.0;
  cfg.snapshot_dt = 1800.0;
  const auto specs = serve::sharded_tile_specs(w.spec, cfg);
  ASSERT_EQ(specs.size(), 1u);
  EXPECT_EQ(specs[0], w.spec);

  const int episodes = 2;
  std::span<const data::CenterFields> truth(w.fields_norm.data(),
                                            static_cast<size_t>(episodes * 3 + 1));
  auto reference =
      core::rollout(*w.model, w.spec, w.norm, truth, episodes);

  core::SurrogateModel* models[] = {w.model.get()};
  auto sharded = serve::run_sharded_forecast(models, w.spec, w.norm, &w.grid,
                                             truth, episodes, cfg);
  ASSERT_EQ(sharded.frames.size(), reference.size());
  expect_frames_bitwise(sharded.frames, reference);
  EXPECT_EQ(sharded.process_grid[0] * sharded.process_grid[1], 1);
  EXPECT_EQ(sharded.halo_bytes, 0u);  // one tile: no ring to exchange
  EXPECT_TRUE(sharded.verified);
  EXPECT_TRUE(sharded.verdict.pass);
}

TEST(ShardedForecast, TwoRanksCoupleThroughHalosAndReduceOneVerdict) {
  auto& w = ServeWorld::instance();
  serve::ShardConfig cfg;
  cfg.ranks = 2;
  cfg.halo = 1;
  cfg.multiple_hw = 20;  // tile W must stay patchable by 5 with 3 stages
  cfg.multiple_d = 2;
  cfg.verify = true;
  cfg.threshold = 10.0;
  cfg.snapshot_dt = 1800.0;
  const auto specs = serve::sharded_tile_specs(w.spec, cfg);
  ASSERT_EQ(specs.size(), 2u);

  std::vector<std::unique_ptr<core::SurrogateModel>> tile_models;
  std::vector<core::SurrogateModel*> ptrs;
  for (size_t r = 0; r < specs.size(); ++r) {
    Rng rng(100 + static_cast<uint64_t>(r));
    tile_models.push_back(std::make_unique<core::SurrogateModel>(
        model_config(specs[r]), rng));
    ptrs.push_back(tile_models.back().get());
  }

  const int episodes = 2;
  std::span<const data::CenterFields> truth(w.fields_norm.data(),
                                            static_cast<size_t>(episodes * 3 + 1));
  auto sharded = serve::run_sharded_forecast(ptrs, w.spec, w.norm, &w.grid,
                                             truth, episodes, cfg);

  EXPECT_EQ(sharded.process_grid[0] * sharded.process_grid[1], 2);
  ASSERT_EQ(sharded.frames.size(), static_cast<size_t>(episodes * 3));
  for (const auto& f : sharded.frames) {
    for (float v : f.zeta) ASSERT_TRUE(std::isfinite(v));
    for (float v : f.u) ASSERT_TRUE(std::isfinite(v));
  }
  // Ring traffic flowed: per frame, each rank sends one strip of
  // (3*nz + 1) * ny floats to its single neighbour.
  EXPECT_GT(sharded.halo_bytes, 0u);
  EXPECT_GT(sharded.halo_messages, 0u);

  // The allreduce-reduced verdict must agree with a serial verification
  // of the stitched chain: same stencil, double accumulation end to end
  // (Comm's double allreduce), so only cross-rank summation association
  // differs.
  ASSERT_TRUE(sharded.verified);
  core::MassVerifier verifier(w.grid, cfg.threshold);
  std::vector<data::CenterFields> chain;
  chain.push_back(w.fields[0]);
  for (const auto& f : sharded.frames) chain.push_back(f);
  const auto serial = verifier.check_sequence(chain, cfg.snapshot_dt);
  EXPECT_EQ(sharded.verdict.pass, serial.pass);
  EXPECT_NEAR(sharded.verdict.mean_residual, serial.mean_residual,
              std::max(1e-15, serial.mean_residual * 1e-7));
  EXPECT_NEAR(sharded.verdict.max_residual, serial.max_residual,
              std::max(1e-15, serial.max_residual * 1e-7));
}

TEST(BatchedInput, DirectPackMatchesConcatOfSamplesBitwise) {
  // The serving fix pinned here: writing the stacked batch tensors
  // directly (make_batched_input) must produce exactly the bytes the old
  // per-request make_sample + concat path produced — same packers, same
  // offsets, no target tensors.
  auto& w = ServeWorld::instance();
  constexpr size_t kB = 3;
  std::vector<std::span<const data::CenterFields>> windows;
  for (size_t b = 0; b < kB; ++b) {
    windows.emplace_back(w.fields_norm.data() + b, 4);
  }
  const data::BatchedInput batched = data::make_batched_input(
      w.spec, windows);

  std::vector<tensor::Tensor> vols, surfs;
  for (size_t b = 0; b < kB; ++b) {
    data::Sample s = data::make_sample(w.spec, windows[b]);
    tensor::Shape vs = s.volume.shape(), ss = s.surface.shape();
    tensor::Shape bvs{1}, bss{1};
    bvs.insert(bvs.end(), vs.begin(), vs.end());
    bss.insert(bss.end(), ss.begin(), ss.end());
    vols.push_back(s.volume.reshape(bvs));
    surfs.push_back(s.surface.reshape(bss));
  }
  const tensor::Tensor vol = tensor::concat(vols, 0);
  const tensor::Tensor surf = tensor::concat(surfs, 0);

  ASSERT_EQ(batched.volume.shape(), vol.shape());
  ASSERT_EQ(batched.surface.shape(), surf.shape());
  for (int64_t i = 0; i < vol.numel(); ++i) {
    ASSERT_EQ(batched.volume.data()[static_cast<size_t>(i)],
              vol.data()[static_cast<size_t>(i)])
        << "volume idx " << i;
  }
  for (int64_t i = 0; i < surf.numel(); ++i) {
    ASSERT_EQ(batched.surface.data()[static_cast<size_t>(i)],
              surf.data()[static_cast<size_t>(i)])
        << "surface idx " << i;
  }
}

TEST(ForecastServer, RandomizedCacheSchedulerFuzzBitwiseSerial) {
  // Randomized scheduler + cache interleaving: seeded request streams mix
  // duplicates, prefix-extensions, and two model slots with different
  // episode lengths.  Whatever batches form and whatever the cache hits,
  // every response must be bitwise equal to a serial no-cache replay
  // (computed up front via core::rollout).
  auto& w = ServeWorld::instance();
  data::SampleSpec spec2 =
      data::make_spec(20, 20, 6, /*T=*/2, /*multiple_hw=*/4, /*multiple_d=*/2);
  Rng mrng(11);
  core::SurrogateModel model2(model_config(spec2), mrng);

  struct Kind {
    int slot;
    size_t start;
    int episodes;
  };
  // Slot 0 chains extend slot-0 singles at the same start (prefix reuse);
  // slot 1 exercises a different T so mixed specs never share a batch.
  const std::vector<Kind> kinds = {
      {0, 0, 1}, {0, 1, 1}, {0, 2, 1}, {0, 0, 2}, {0, 1, 2},
      {1, 0, 1}, {1, 3, 1}, {1, 0, 2}, {1, 2, 3},
  };
  std::vector<std::vector<data::CenterFields>> refs(kinds.size());
  for (size_t k = 0; k < kinds.size(); ++k) {
    const Kind& kd = kinds[k];
    const data::SampleSpec& spec = kd.slot == 0 ? w.spec : spec2;
    core::SurrogateModel& model = kd.slot == 0 ? *w.model : model2;
    std::span<const data::CenterFields> window(
        w.fields_norm.data() + kd.start,
        static_cast<size_t>(kd.episodes * spec.T) + 1);
    refs[k] = core::rollout(model, spec, w.norm, window, kd.episodes);
  }

  for (uint64_t seed = 1; seed <= 3; ++seed) {
    SCOPED_TRACE(::testing::Message() << "failing fuzz seed: " << seed);
    Rng rng(seed);
    serve::ServerConfig cfg;
    cfg.workers = 2;
    cfg.batch.max_batch = 4;
    cfg.batch.max_wait_us = static_cast<int64_t>(rng.uniform_index(3000));
    cfg.threshold = 10.0;
    serve::ForecastServer server({{w.model.get(), w.spec}, {&model2, spec2}},
                                 w.norm, &w.grid, cfg);
    std::vector<std::pair<size_t, std::future<serve::ForecastResult>>>
        inflight;
    for (int i = 0; i < 48; ++i) {
      const size_t k = rng.uniform_index(kinds.size());
      const Kind& kd = kinds[k];
      serve::ForecastRequest r;
      r.model_id = kd.slot;
      const data::SampleSpec& spec = kd.slot == 0 ? w.spec : spec2;
      const size_t frames = static_cast<size_t>(kd.episodes * spec.T) + 1;
      r.window.assign(
          w.fields_norm.begin() + static_cast<ptrdiff_t>(kd.start),
          w.fields_norm.begin() + static_cast<ptrdiff_t>(kd.start + frames));
      auto f = server.submit(std::move(r));
      ASSERT_TRUE(f.has_value());
      inflight.emplace_back(k, std::move(*f));
      // Occasionally let the queue drain so later duplicates hit the
      // cache instead of coalescing in flight.
      if (rng.uniform() < 0.25) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    }
    for (auto& [k, f] : inflight) {
      serve::ForecastResult r = f.get();
      EXPECT_TRUE(r.verified);
      EXPECT_FALSE(r.fallback);
      expect_frames_bitwise(r.frames, refs[k]);
    }
    const auto stats = server.stats();
    EXPECT_EQ(stats.served, 48u);
    EXPECT_EQ(stats.failed, 0u);
  }
}

TEST(ForecastServer, SteadyStateServingAllocatesNothing) {
  if (!tensor::pool_enabled()) {
    GTEST_SKIP() << "pool disabled (COASTAL_DISABLE_POOL): every tensor is "
                    "a real allocation by design";
  }
  auto& w = ServeWorld::instance();
  serve::ServerConfig cfg;
  cfg.workers = 1;
  cfg.batch.max_batch = 4;
  cfg.batch.max_wait_us = 100000;
  cfg.threshold = 10.0;
  // This pin measures the *forward* path; with the cache on, repeated
  // rounds would be served from cache instead (that path has its own
  // zero-alloc pin in test_cache.cpp).
  cfg.cache.enabled = false;
  serve::ForecastServer server({{w.model.get(), w.spec}}, w.norm, &w.grid,
                               cfg);
  auto round = [&] {
    std::vector<std::future<serve::ForecastResult>> futures;
    for (size_t i = 0; i < 4; ++i) {
      auto f = server.submit(w.request(i));
      ASSERT_TRUE(f.has_value());
      futures.push_back(std::move(*f));
    }
    for (auto& f : futures) f.get();
  };
  // Warm the pool, the arenas, and the per-thread workspaces.
  round();
  round();
  const uint64_t before = tensor::alloc_stats().total_allocs;
  round();
  round();
  round();
  const uint64_t after = tensor::alloc_stats().total_allocs;
  EXPECT_EQ(after, before)
      << "steady-state served episodes must not touch the heap";
}
