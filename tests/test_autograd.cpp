/// Numeric gradient checks for every differentiable tensor op, plus
/// graph-mechanics tests (accumulation, detach, no-grad mode).

#include <gtest/gtest.h>

#include "tensor/kernels.hpp"
#include "tensor/tensor.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace ct = coastal::tensor;
using coastal::tensor::Tensor;
using coastal::testing::gradcheck;

namespace {
Tensor rand_tensor(const ct::Shape& shape, uint64_t seed, float scale = 1.0f) {
  coastal::util::Rng rng(seed);
  return Tensor::randn(shape, rng, scale);
}
}  // namespace

TEST(Autograd, AddBroadcast) {
  Tensor b = rand_tensor({3}, 2);
  gradcheck([&](const Tensor& x) { return x.add(b).sum(); },
            rand_tensor({2, 3}, 1));
  // And gradient w.r.t. the broadcast side.
  Tensor a = rand_tensor({2, 3}, 1);
  gradcheck([&](const Tensor& x) { return a.add(x).mul(a).sum(); },
            rand_tensor({3}, 2));
}

TEST(Autograd, SubMulDiv) {
  Tensor b = rand_tensor({2, 3}, 5).add_scalar(3.0f);  // keep away from 0
  gradcheck([&](const Tensor& x) { return x.sub(b).mul(x).sum(); },
            rand_tensor({2, 3}, 6));
  gradcheck([&](const Tensor& x) { return x.div(b).sum(); },
            rand_tensor({2, 3}, 7));
  Tensor a = rand_tensor({2, 3}, 8);
  gradcheck([&](const Tensor& x) { return a.div(x.add_scalar(4.0f)).sum(); },
            rand_tensor({2, 3}, 9));
}

TEST(Autograd, UnaryOps) {
  gradcheck([](const Tensor& x) { return x.exp().sum(); },
            rand_tensor({8}, 10, 0.5f));
  gradcheck([](const Tensor& x) { return x.add_scalar(3.0f).log().sum(); },
            rand_tensor({8}, 11, 0.3f));
  gradcheck([](const Tensor& x) { return x.add_scalar(4.0f).sqrt().sum(); },
            rand_tensor({8}, 12, 0.5f));
  gradcheck([](const Tensor& x) { return x.tanh().sum(); },
            rand_tensor({8}, 13));
  gradcheck([](const Tensor& x) { return x.sigmoid().sum(); },
            rand_tensor({8}, 14));
  gradcheck([](const Tensor& x) { return x.gelu().sum(); },
            rand_tensor({8}, 15));
  gradcheck([](const Tensor& x) { return x.neg().mul(x).sum(); },
            rand_tensor({8}, 16));
}

TEST(Autograd, PowScalar) {
  gradcheck([](const Tensor& x) { return x.add_scalar(3.0f).pow_scalar(2.5f).sum(); },
            rand_tensor({6}, 17, 0.4f));
}

TEST(Autograd, ReluSubgradientAwayFromKink) {
  // Shift values away from 0 so finite differences are valid.
  Tensor x = Tensor::from_vector({4}, {-2.0f, -1.0f, 1.0f, 2.0f});
  gradcheck([](const Tensor& t) { return t.relu().sum(); }, x);
}

TEST(Autograd, AbsAwayFromKink) {
  Tensor x = Tensor::from_vector({4}, {-2.0f, -1.0f, 1.0f, 2.0f});
  gradcheck([](const Tensor& t) { return t.abs().sum(); }, x);
}

TEST(Autograd, Reductions) {
  gradcheck([](const Tensor& x) { return x.mean(); }, rand_tensor({3, 4}, 18));
  gradcheck([](const Tensor& x) { return x.sum_axis(0).mul(x.sum_axis(0)).sum(); },
            rand_tensor({3, 4}, 19));
  gradcheck([](const Tensor& x) { return x.mean_axis(1, true).mul(x).sum(); },
            rand_tensor({3, 4}, 20));
}

TEST(Autograd, MaxAxisRoutesGradientToArgmax) {
  Tensor x = Tensor::from_vector({2, 3}, {1, 5, 3, 6, 2, 4});
  x.set_requires_grad(true);
  x.max_axis(1).sum().backward();
  Tensor g = x.grad();
  EXPECT_EQ(g.at({0, 0}), 0.0f);
  EXPECT_EQ(g.at({0, 1}), 1.0f);
  EXPECT_EQ(g.at({1, 0}), 1.0f);
  EXPECT_EQ(g.at({1, 2}), 0.0f);
}

TEST(Autograd, Matmul) {
  Tensor b = rand_tensor({4, 2}, 22);
  gradcheck([&](const Tensor& x) { return x.matmul(b).sum(); },
            rand_tensor({3, 4}, 21));
  Tensor a = rand_tensor({3, 4}, 23);
  gradcheck([&](const Tensor& x) { return a.matmul(x).mul(a.matmul(x)).sum(); },
            rand_tensor({4, 2}, 24));
}

TEST(Autograd, MatmulBatchedWithBroadcast) {
  Tensor b = rand_tensor({4, 2}, 26);
  gradcheck([&](const Tensor& x) { return x.matmul(b).sum(); },
            rand_tensor({2, 3, 4}, 25));
  Tensor a = rand_tensor({2, 3, 4}, 27);
  gradcheck([&](const Tensor& x) { return a.matmul(x).sum(); },
            rand_tensor({4, 2}, 28));
}

TEST(Autograd, ShapeOps) {
  gradcheck([](const Tensor& x) {
    return x.reshape({6}).mul(Tensor::arange(6)).sum();
  }, rand_tensor({2, 3}, 29));
  gradcheck([](const Tensor& x) {
    return x.permute({1, 0}).mul(rand_tensor({3, 2}, 30)).sum();
  }, rand_tensor({2, 3}, 31));
  gradcheck([](const Tensor& x) { return x.slice(1, 1, 2).sum(); },
            rand_tensor({2, 4}, 32));
  gradcheck([](const Tensor& x) {
    return x.pad_axis(0, 1, 1).mul(rand_tensor({4, 2}, 33)).sum();
  }, rand_tensor({2, 2}, 34));
  gradcheck([](const Tensor& x) {
    return x.roll(1, 2).mul(rand_tensor({2, 5}, 35)).sum();
  }, rand_tensor({2, 5}, 36));
}

TEST(Autograd, Concat) {
  Tensor b = rand_tensor({2, 2}, 37);
  Tensor w = rand_tensor({2, 5}, 38);
  gradcheck([&](const Tensor& x) {
    return ct::concat({x, b}, 1).mul(w).sum();
  }, rand_tensor({2, 3}, 39));
}

TEST(Autograd, Softmax) {
  Tensor w = rand_tensor({3, 5}, 40);
  gradcheck([&](const Tensor& x) {
    return x.softmax_lastdim().mul(w).sum();
  }, rand_tensor({3, 5}, 41));
}

TEST(Autograd, LayerNorm) {
  Tensor gamma = rand_tensor({6}, 42).add_scalar(1.5f);
  Tensor beta = rand_tensor({6}, 43);
  Tensor w = rand_tensor({4, 6}, 44);
  gradcheck([&](const Tensor& x) {
    return x.layer_norm(gamma, beta).mul(w).sum();
  }, rand_tensor({4, 6}, 45));
}

TEST(Autograd, LayerNormParamGrads) {
  Tensor x = rand_tensor({4, 6}, 46);
  Tensor w = rand_tensor({4, 6}, 47);
  Tensor beta = Tensor::zeros({6});
  gradcheck([&](const Tensor& gamma) {
    return x.layer_norm(gamma, beta).mul(w).sum();
  }, rand_tensor({6}, 48).add_scalar(1.0f));
  Tensor gamma = Tensor::ones({6});
  gradcheck([&](const Tensor& b) {
    return x.layer_norm(gamma, b).mul(w).sum();
  }, rand_tensor({6}, 49));
}

TEST(Autograd, MseAndL1Loss) {
  Tensor target = rand_tensor({3, 3}, 50);
  gradcheck([&](const Tensor& x) { return ct::mse_loss(x, target); },
            rand_tensor({3, 3}, 51));
  // Shift to avoid |.| kinks at equality.
  gradcheck([&](const Tensor& x) {
    return ct::l1_loss(x.add_scalar(5.0f), target);
  }, rand_tensor({3, 3}, 52));
}

TEST(Autograd, GradAccumulatesAcrossBackwards) {
  Tensor x = Tensor::ones({3});
  x.set_requires_grad(true);
  x.mul_scalar(2.0f).sum().backward();
  x.mul_scalar(3.0f).sum().backward();
  for (float g : x.grad().data()) EXPECT_FLOAT_EQ(g, 5.0f);
  x.zero_grad();
  EXPECT_FALSE(x.grad().defined());
}

TEST(Autograd, DiamondGraphSumsBothPaths) {
  // y = x*x + x*x should give dy/dx = 4x.
  Tensor x = Tensor::from_vector({2}, {3.0f, -1.0f});
  x.set_requires_grad(true);
  Tensor a = x.mul(x);
  a.add(a).sum().backward();
  EXPECT_FLOAT_EQ(x.grad().data()[0], 12.0f);
  EXPECT_FLOAT_EQ(x.grad().data()[1], -4.0f);
}

TEST(Autograd, ReusedTensorAccumulates) {
  Tensor x = Tensor::from_vector({1}, {2.0f});
  x.set_requires_grad(true);
  // y = x^3 expressed as x*x*x.
  x.mul(x).mul(x).sum().backward();
  EXPECT_NEAR(x.grad().item(), 12.0f, 1e-4);
}

TEST(Autograd, NoGradGuardBlocksRecording) {
  Tensor x = Tensor::ones({2});
  x.set_requires_grad(true);
  ct::NoGradGuard ng;
  Tensor y = x.mul_scalar(2.0f);
  EXPECT_FALSE(y.has_grad_fn());
}

TEST(Autograd, DetachCutsGraph) {
  Tensor x = Tensor::ones({2});
  x.set_requires_grad(true);
  Tensor y = x.mul_scalar(2.0f).detach();
  EXPECT_FALSE(y.has_grad_fn());
  y.mul_scalar(3.0f).sum().backward();  // must not reach x
  EXPECT_FALSE(x.grad().defined());
}

TEST(Autograd, BackwardOnLeafAccumulatesSeed) {
  Tensor x = Tensor::ones({3});
  x.set_requires_grad(true);
  x.backward();
  for (float g : x.grad().data()) EXPECT_FLOAT_EQ(g, 1.0f);
}

TEST(Autograd, RequiresGradOnNonLeafThrows) {
  Tensor x = Tensor::ones({2});
  x.set_requires_grad(true);
  Tensor y = x.mul_scalar(2.0f);
  EXPECT_THROW(y.set_requires_grad(true), coastal::util::CheckError);
}

TEST(Autograd, CustomOpBackward) {
  // A custom "times 3" op with a hand-written backward.
  Tensor x = Tensor::from_vector({2}, {1.0f, 2.0f});
  x.set_requires_grad(true);
  std::vector<float> data{3.0f, 6.0f};
  Tensor y = ct::custom_op({2}, std::move(data), "times3", {x},
                           [](const Tensor& g) -> std::vector<Tensor> {
                             return {g.mul_scalar(3.0f)};
                           });
  y.sum().backward();
  EXPECT_FLOAT_EQ(x.grad().data()[0], 3.0f);
  EXPECT_FLOAT_EQ(x.grad().data()[1], 3.0f);
}

// The softmax / layer-norm kernels are parallel and cache-blocked; their
// gradients must be unchanged when the parallel path is forced (chunked
// dispatch across rows) — a regression guard for the kernel-layer rewrite.
TEST(Autograd, SoftmaxAndLayerNormGradsUnchangedUnderParallelKernels) {
  coastal::testing::KernelConfigOverride guard;
  ct::kernels::config().num_threads = 8;
  ct::kernels::config().parallel_grain = 1;

  Tensor w = rand_tensor({6, 9}, 31);
  gradcheck([&](const Tensor& x) { return x.softmax_lastdim().mul(w).sum(); },
            rand_tensor({6, 9}, 32));
  Tensor gamma = rand_tensor({9}, 33);
  Tensor beta = rand_tensor({9}, 34);
  gradcheck(
      [&](const Tensor& x) {
        return x.layer_norm(gamma, beta).mul(w).sum();
      },
      rand_tensor({6, 9}, 35));
  gradcheck(
      [&](const Tensor& g) {
        return rand_tensor({6, 9}, 36).layer_norm(g, beta).mul(w).sum();
      },
      gamma);
}
