/// Tests for the 4-D Swin surrogate model: configuration validation,
/// forward shapes, gradient flow, checkpoint equivalence, learning on a
/// tiny problem, and parameter (de)serialization.

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "core/surrogate.hpp"
#include "nn/optimizer.hpp"
#include "nn/serialize.hpp"
#include "test_helpers.hpp"

namespace core = coastal::core;
namespace ct = coastal::tensor;
using coastal::core::SurrogateConfig;
using coastal::core::SurrogateModel;
using coastal::tensor::Tensor;
using coastal::testing::expect_tensor_near;
using coastal::util::Rng;

namespace {

SurrogateConfig mini_config() {
  SurrogateConfig cfg;
  cfg.H = 20;
  cfg.W = 20;
  cfg.D = 6;
  cfg.T = 3;
  cfg.patch_h = 5;
  cfg.patch_w = 5;
  cfg.patch_d = 2;
  cfg.embed_dim = 8;
  cfg.stages = 3;
  cfg.heads = {2, 4, 8};
  return cfg;
}

struct Inputs {
  Tensor volume, surface;
};

Inputs mini_inputs(uint64_t seed) {
  Rng rng(seed);
  return {Tensor::randn({1, 3, 20, 20, 6, 4}, rng),
          Tensor::randn({1, 1, 20, 20, 4}, rng)};
}

}  // namespace

TEST(SurrogateConfig, ValidatesGeometry) {
  SurrogateConfig cfg = mini_config();
  cfg.validate();  // fine
  cfg.H = 21;      // not divisible by patch 5
  EXPECT_THROW(cfg.validate(), coastal::util::CheckError);
  cfg = mini_config();
  cfg.heads = {2, 4};  // wrong stage count
  EXPECT_THROW(cfg.validate(), coastal::util::CheckError);
}

TEST(Surrogate, ForwardShapes) {
  Rng rng(1);
  SurrogateModel model(mini_config(), rng);
  auto in = mini_inputs(2);
  auto out = model.forward(in.volume, in.surface);
  EXPECT_EQ(out.volume.shape(), (ct::Shape{1, 3, 20, 20, 6, 3}));
  EXPECT_EQ(out.surface.shape(), (ct::Shape{1, 1, 20, 20, 3}));
}

TEST(Surrogate, RejectsWrongTimeLength) {
  Rng rng(3);
  SurrogateModel model(mini_config(), rng);
  Rng drng(4);
  Tensor vol = Tensor::randn({1, 3, 20, 20, 6, 5}, drng);
  Tensor surf = Tensor::randn({1, 1, 20, 20, 5}, drng);
  EXPECT_THROW(model.forward(vol, surf), coastal::util::CheckError);
}

TEST(Surrogate, ParameterCountIsReasonable) {
  Rng rng(5);
  SurrogateModel model(mini_config(), rng);
  const int64_t n = model.num_parameters();
  EXPECT_GT(n, 10'000);
  EXPECT_LT(n, 5'000'000);
}

TEST(Surrogate, GradientReachesEveryParameter) {
  Rng rng(6);
  SurrogateModel model(mini_config(), rng);
  auto in = mini_inputs(7);
  auto out = model.forward(in.volume, in.surface);
  out.volume.sum().add(out.surface.sum()).backward();
  size_t missing = 0;
  for (auto& [name, p] : model.named_parameters()) {
    if (!p.grad().defined()) {
      ADD_FAILURE() << "no gradient for " << name;
      ++missing;
    }
  }
  EXPECT_EQ(missing, 0u);
}

TEST(Surrogate, CheckpointedForwardMatches) {
  Rng rng(8);
  SurrogateModel model(mini_config(), rng);
  model.set_training(false);  // freeze BatchNorm stats for comparability
  auto in = mini_inputs(9);
  ct::NoGradGuard ng;
  auto plain = model.forward(in.volume, in.surface, /*use_checkpoint=*/false);
  auto ckpt = model.forward(in.volume, in.surface, /*use_checkpoint=*/true);
  expect_tensor_near(ckpt.volume, plain.volume, 1e-5);
  expect_tensor_near(ckpt.surface, plain.surface, 1e-5);
}

TEST(Surrogate, CheckpointedGradsMatch) {
  Rng rng(10);
  SurrogateConfig cfg = mini_config();
  SurrogateModel model(cfg, rng);
  model.set_training(false);  // BatchNorm running stats must not drift
  auto in = mini_inputs(11);

  auto loss_of = [&](bool ckpt) {
    model.zero_grad();
    auto out = model.forward(in.volume, in.surface, ckpt);
    out.volume.mul(out.volume).sum().add(out.surface.mul(out.surface).sum())
        .backward();
    std::vector<float> grads;
    for (auto& p : model.parameters()) {
      auto g = p.grad();
      EXPECT_TRUE(g.defined());
      if (g.defined())
        grads.insert(grads.end(), g.data().begin(), g.data().end());
    }
    return grads;
  };
  std::vector<float> g_plain = loss_of(false);
  std::vector<float> g_ckpt = loss_of(true);
  ASSERT_EQ(g_plain.size(), g_ckpt.size());
  double worst = 0;
  for (size_t i = 0; i < g_plain.size(); ++i)
    worst = std::max(worst, std::abs(static_cast<double>(g_plain[i]) - g_ckpt[i]));
  EXPECT_LT(worst, 1e-4);
}

TEST(Surrogate, CheckpointReducesPeakActivationMemory) {
  Rng rng(12);
  SurrogateModel model(mini_config(), rng);
  auto in = mini_inputs(13);

  auto peak_of = [&](bool ckpt) {
    model.zero_grad();
    ct::reset_peak_bytes();
    auto out = model.forward(in.volume, in.surface, ckpt);
    const uint64_t peak = ct::alloc_stats().peak_bytes;
    out.volume.sum().backward();  // finish the graph so buffers release
    return peak;
  };
  const uint64_t peak_plain = peak_of(false);
  const uint64_t peak_ckpt = peak_of(true);
  EXPECT_LT(peak_ckpt, peak_plain);
}

TEST(Surrogate, LearnsIdentityLikeMapping) {
  // A few Adam steps on one sample must reduce the loss substantially —
  // the sanity bar for the whole model + autograd stack.
  Rng rng(14);
  SurrogateConfig cfg = mini_config();
  SurrogateModel model(cfg, rng);
  auto in = mini_inputs(15);
  Rng trng(16);
  Tensor target_vol = Tensor::randn({1, 3, 20, 20, 6, 3}, trng, 0.1f);
  Tensor target_surf = Tensor::randn({1, 1, 20, 20, 3}, trng, 0.1f);

  coastal::nn::Adam opt(model.parameters(), 3e-3f);
  double first = -1, last = -1;
  for (int step = 0; step < 12; ++step) {
    opt.zero_grad();
    auto out = model.forward(in.volume, in.surface);
    Tensor loss = ct::mse_loss(out.volume, target_vol)
                      .add(ct::mse_loss(out.surface, target_surf));
    if (first < 0) first = loss.item();
    last = loss.item();
    loss.backward();
    opt.step();
  }
  EXPECT_LT(last, first * 0.6) << "loss failed to drop: " << first << " -> "
                               << last;
}

TEST(Surrogate, SaveLoadReproducesOutputs) {
  Rng rng1(17), rng2(18);
  SurrogateModel a(mini_config(), rng1);
  SurrogateModel b(mini_config(), rng2);  // different init
  a.set_training(false);
  b.set_training(false);
  auto in = mini_inputs(19);
  ct::NoGradGuard ng;

  const std::string path =
      (std::filesystem::temp_directory_path() / "surrogate.bin").string();
  coastal::nn::save_parameters(a, path);
  coastal::nn::load_parameters(b, path);
  auto oa = a.forward(in.volume, in.surface);
  auto ob = b.forward(in.volume, in.surface);
  expect_tensor_near(ob.volume, oa.volume, 0.0);
  expect_tensor_near(ob.surface, oa.surface, 0.0);
  std::remove(path.c_str());
}

TEST(Surrogate, DeterministicForSeed) {
  auto in = mini_inputs(20);
  ct::NoGradGuard ng;
  Rng r1(21), r2(21);
  SurrogateModel a(mini_config(), r1), b(mini_config(), r2);
  a.set_training(false);
  b.set_training(false);
  auto oa = a.forward(in.volume, in.surface);
  auto ob = b.forward(in.volume, in.surface);
  expect_tensor_near(oa.volume, ob.volume, 0.0);
}
