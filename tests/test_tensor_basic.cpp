/// Unit tests for tensor creation, accessors, and shape ops (no autograd).

#include <gtest/gtest.h>

#include "tensor/tensor.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace ct = coastal::tensor;
using coastal::tensor::Tensor;
using coastal::testing::expect_tensor_near;

TEST(TensorBasic, ZerosOnesFull) {
  Tensor z = Tensor::zeros({2, 3});
  EXPECT_EQ(z.numel(), 6);
  for (float v : z.data()) EXPECT_EQ(v, 0.0f);
  Tensor o = Tensor::ones({4});
  for (float v : o.data()) EXPECT_EQ(v, 1.0f);
  Tensor f = Tensor::full({2, 2}, 3.5f);
  for (float v : f.data()) EXPECT_EQ(v, 3.5f);
}

TEST(TensorBasic, FromVectorAndAt) {
  Tensor t = Tensor::from_vector({2, 3}, {1, 2, 3, 4, 5, 6});
  EXPECT_EQ(t.at({0, 0}), 1.0f);
  EXPECT_EQ(t.at({0, 2}), 3.0f);
  EXPECT_EQ(t.at({1, 0}), 4.0f);
  EXPECT_EQ(t.at({1, 2}), 6.0f);
  t.set({1, 1}, 42.0f);
  EXPECT_EQ(t.at({1, 1}), 42.0f);
}

TEST(TensorBasic, FromVectorRejectsWrongSize) {
  EXPECT_THROW(Tensor::from_vector({2, 2}, {1, 2, 3}),
               coastal::util::CheckError);
}

TEST(TensorBasic, ItemRequiresScalar) {
  EXPECT_THROW(Tensor::zeros({2}).item(), coastal::util::CheckError);
  EXPECT_EQ(Tensor::full({1}, 7.0f).item(), 7.0f);
}

TEST(TensorBasic, Arange) {
  Tensor t = Tensor::arange(5);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(t.data()[static_cast<size_t>(i)], i);
}

TEST(TensorBasic, RandnStatistics) {
  coastal::util::Rng rng(7);
  Tensor t = Tensor::randn({10000}, rng, 2.0f);
  double mean = 0;
  for (float v : t.data()) mean += v;
  mean /= 10000;
  double var = 0;
  for (float v : t.data()) var += (v - mean) * (v - mean);
  var /= 10000;
  EXPECT_NEAR(mean, 0.0, 0.1);
  EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(TensorBasic, ReshapeInfersDim) {
  Tensor t = Tensor::arange(12).reshape({3, -1});
  EXPECT_EQ(t.shape(), (ct::Shape{3, 4}));
  EXPECT_EQ(t.at({2, 3}), 11.0f);
}

TEST(TensorBasic, ReshapeRejectsBadNumel) {
  EXPECT_THROW(Tensor::arange(12).reshape({5, 3}), coastal::util::CheckError);
}

TEST(TensorBasic, PermuteTransposes) {
  Tensor t = Tensor::from_vector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor p = t.permute({1, 0});
  EXPECT_EQ(p.shape(), (ct::Shape{3, 2}));
  EXPECT_EQ(p.at({0, 0}), 1.0f);
  EXPECT_EQ(p.at({0, 1}), 4.0f);
  EXPECT_EQ(p.at({2, 1}), 6.0f);
}

TEST(TensorBasic, Permute3d) {
  Tensor t = Tensor::arange(24).reshape({2, 3, 4});
  Tensor p = t.permute({2, 0, 1});
  EXPECT_EQ(p.shape(), (ct::Shape{4, 2, 3}));
  // p[d, a, b] == t[a, b, d]
  EXPECT_EQ(p.at({1, 1, 2}), t.at({1, 2, 1}));
  EXPECT_EQ(p.at({3, 0, 0}), t.at({0, 0, 3}));
}

TEST(TensorBasic, SliceMiddleAxis) {
  Tensor t = Tensor::arange(24).reshape({2, 3, 4});
  Tensor s = t.slice(1, 1, 2);
  EXPECT_EQ(s.shape(), (ct::Shape{2, 2, 4}));
  EXPECT_EQ(s.at({0, 0, 0}), t.at({0, 1, 0}));
  EXPECT_EQ(s.at({1, 1, 3}), t.at({1, 2, 3}));
}

TEST(TensorBasic, SliceNegativeAxis) {
  Tensor t = Tensor::arange(6).reshape({2, 3});
  Tensor s = t.slice(-1, 0, 1);
  EXPECT_EQ(s.shape(), (ct::Shape{2, 1}));
  EXPECT_EQ(s.at({1, 0}), 3.0f);
}

TEST(TensorBasic, SliceOutOfRangeThrows) {
  EXPECT_THROW(Tensor::arange(6).reshape({2, 3}).slice(1, 2, 2),
               coastal::util::CheckError);
}

TEST(TensorBasic, PadAxisZeroFills) {
  Tensor t = Tensor::from_vector({2, 2}, {1, 2, 3, 4});
  Tensor p = t.pad_axis(1, 1, 2);
  EXPECT_EQ(p.shape(), (ct::Shape{2, 5}));
  EXPECT_EQ(p.at({0, 0}), 0.0f);
  EXPECT_EQ(p.at({0, 1}), 1.0f);
  EXPECT_EQ(p.at({0, 2}), 2.0f);
  EXPECT_EQ(p.at({0, 3}), 0.0f);
  EXPECT_EQ(p.at({1, 4}), 0.0f);
}

TEST(TensorBasic, RollWrapsAround) {
  Tensor t = Tensor::arange(4);
  Tensor r = t.roll(0, 1);
  EXPECT_EQ(r.data()[0], 3.0f);
  EXPECT_EQ(r.data()[1], 0.0f);
  EXPECT_EQ(r.data()[3], 2.0f);
  // Negative shift inverts.
  expect_tensor_near(r.roll(0, -1), t, 0.0);
}

TEST(TensorBasic, RollOnAxis0Of2d) {
  Tensor t = Tensor::from_vector({3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor r = t.roll(0, 1);
  EXPECT_EQ(r.at({0, 0}), 5.0f);
  EXPECT_EQ(r.at({1, 0}), 1.0f);
  EXPECT_EQ(r.at({2, 1}), 4.0f);
}

TEST(TensorBasic, ConcatAxis0) {
  Tensor a = Tensor::from_vector({1, 2}, {1, 2});
  Tensor b = Tensor::from_vector({2, 2}, {3, 4, 5, 6});
  Tensor c = ct::concat({a, b}, 0);
  EXPECT_EQ(c.shape(), (ct::Shape{3, 2}));
  EXPECT_EQ(c.at({0, 1}), 2.0f);
  EXPECT_EQ(c.at({2, 0}), 5.0f);
}

TEST(TensorBasic, ConcatLastAxis) {
  Tensor a = Tensor::from_vector({2, 1}, {1, 2});
  Tensor b = Tensor::from_vector({2, 2}, {3, 4, 5, 6});
  Tensor c = ct::concat({a, b}, -1);
  EXPECT_EQ(c.shape(), (ct::Shape{2, 3}));
  EXPECT_EQ(c.at({0, 0}), 1.0f);
  EXPECT_EQ(c.at({0, 1}), 3.0f);
  EXPECT_EQ(c.at({1, 2}), 6.0f);
}

TEST(TensorBasic, ConcatShapeMismatchThrows) {
  Tensor a = Tensor::zeros({2, 2});
  Tensor b = Tensor::zeros({3, 3});
  EXPECT_THROW(ct::concat({a, b}, 0), coastal::util::CheckError);
}

TEST(TensorBasic, BroadcastAdd) {
  Tensor a = Tensor::from_vector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::from_vector({3}, {10, 20, 30});
  Tensor c = a.add(b);
  EXPECT_EQ(c.at({0, 0}), 11.0f);
  EXPECT_EQ(c.at({1, 2}), 36.0f);
}

TEST(TensorBasic, BroadcastIncompatibleThrows) {
  Tensor a = Tensor::zeros({2, 3});
  Tensor b = Tensor::zeros({2, 4});
  EXPECT_THROW(a.add(b), coastal::util::CheckError);
}

TEST(TensorBasic, SumToReducesBroadcastAxes) {
  Tensor g = Tensor::ones({2, 3});
  Tensor r = g.sum_to({3});
  EXPECT_EQ(r.shape(), (ct::Shape{3}));
  for (float v : r.data()) EXPECT_EQ(v, 2.0f);
  Tensor r2 = g.sum_to({2, 1});
  EXPECT_EQ(r2.shape(), (ct::Shape{2, 1}));
  for (float v : r2.data()) EXPECT_EQ(v, 3.0f);
}

TEST(TensorBasic, Matmul2d) {
  Tensor a = Tensor::from_vector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::from_vector({3, 2}, {7, 8, 9, 10, 11, 12});
  Tensor c = a.matmul(b);
  EXPECT_EQ(c.shape(), (ct::Shape{2, 2}));
  EXPECT_EQ(c.at({0, 0}), 58.0f);
  EXPECT_EQ(c.at({0, 1}), 64.0f);
  EXPECT_EQ(c.at({1, 0}), 139.0f);
  EXPECT_EQ(c.at({1, 1}), 154.0f);
}

TEST(TensorBasic, MatmulBatchBroadcast) {
  // [2, 2, 3] x [3, 2] broadcasts the second operand over the batch.
  Tensor a = Tensor::arange(12).reshape({2, 2, 3});
  Tensor b = Tensor::from_vector({3, 2}, {1, 0, 0, 1, 1, 1});
  Tensor c = a.matmul(b);
  EXPECT_EQ(c.shape(), (ct::Shape{2, 2, 2}));
  // Row [0,1,2] -> [0+2, 1+2]
  EXPECT_EQ(c.at({0, 0, 0}), 2.0f);
  EXPECT_EQ(c.at({0, 0, 1}), 3.0f);
  // Row [9,10,11] -> [9+11, 10+11]
  EXPECT_EQ(c.at({1, 1, 0}), 20.0f);
  EXPECT_EQ(c.at({1, 1, 1}), 21.0f);
}

TEST(TensorBasic, MatmulInnerMismatchThrows) {
  EXPECT_THROW(Tensor::zeros({2, 3}).matmul(Tensor::zeros({4, 2})),
               coastal::util::CheckError);
}

TEST(TensorBasic, SumAxisAndKeepdim) {
  Tensor t = Tensor::arange(6).reshape({2, 3});
  Tensor s0 = t.sum_axis(0);
  EXPECT_EQ(s0.shape(), (ct::Shape{3}));
  EXPECT_EQ(s0.data()[0], 3.0f);
  EXPECT_EQ(s0.data()[2], 7.0f);
  Tensor s1k = t.sum_axis(1, true);
  EXPECT_EQ(s1k.shape(), (ct::Shape{2, 1}));
  EXPECT_EQ(s1k.data()[0], 3.0f);
  EXPECT_EQ(s1k.data()[1], 12.0f);
}

TEST(TensorBasic, MeanAndMaxAxis) {
  Tensor t = Tensor::from_vector({2, 3}, {1, 5, 3, 4, 2, 6});
  EXPECT_FLOAT_EQ(t.mean_axis(1).data()[0], 3.0f);
  EXPECT_FLOAT_EQ(t.mean_axis(1).data()[1], 4.0f);
  Tensor m = t.max_axis(1);
  EXPECT_FLOAT_EQ(m.data()[0], 5.0f);
  EXPECT_FLOAT_EQ(m.data()[1], 6.0f);
}

TEST(TensorBasic, SoftmaxRowsSumToOne) {
  coastal::util::Rng rng(3);
  Tensor t = Tensor::randn({4, 7}, rng, 3.0f);
  Tensor s = t.softmax_lastdim();
  for (int r = 0; r < 4; ++r) {
    double sum = 0;
    for (int c = 0; c < 7; ++c) sum += s.at({r, c});
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(TensorBasic, SoftmaxIsShiftInvariant) {
  Tensor t = Tensor::from_vector({1, 3}, {1, 2, 3});
  Tensor shifted = t.add_scalar(100.0f);
  expect_tensor_near(t.softmax_lastdim(), shifted.softmax_lastdim(), 1e-6);
}

TEST(TensorBasic, TransposeLast) {
  Tensor t = Tensor::arange(6).reshape({1, 2, 3});
  Tensor tt = t.transpose_last();
  EXPECT_EQ(tt.shape(), (ct::Shape{1, 3, 2}));
  EXPECT_EQ(tt.at({0, 2, 1}), t.at({0, 1, 2}));
}

TEST(TensorBasic, AllocStatsTrackPeak) {
  const auto before = ct::alloc_stats();
  {
    Tensor big = Tensor::zeros({1024, 1024});  // 4 MB
    const auto during = ct::alloc_stats();
    EXPECT_GE(during.current_bytes, before.current_bytes + 4 * 1024 * 1024);
  }
  const auto after = ct::alloc_stats();
  EXPECT_LT(after.current_bytes, before.current_bytes + 4 * 1024 * 1024);
  EXPECT_GE(after.peak_bytes, before.current_bytes + 4 * 1024 * 1024);
}
