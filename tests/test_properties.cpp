/// Parameterized property suites (TEST_P) over configuration grids:
/// invariants that must hold for *every* point of the swept space.

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "core/window4d.hpp"
#include "ocean/bathymetry.hpp"
#include "ocean/parallel_driver.hpp"
#include "tensor/half.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace ct = coastal::tensor;
namespace core = coastal::core;
namespace ocean = coastal::ocean;
using coastal::tensor::Tensor;

// ---------------------------------------------------------------------------
// Window partition/reverse is the identity for every (dims, window) combo.
// ---------------------------------------------------------------------------

using WindowCase = std::tuple<int64_t, int64_t, int64_t, int64_t,  // H W D T
                              int64_t, int64_t, int64_t, int64_t>; // window

class WindowRoundTrip : public ::testing::TestWithParam<WindowCase> {};

TEST_P(WindowRoundTrip, PartitionReverseIdentity) {
  auto [H, W, D, T, mh, mw, md, mt] = GetParam();
  coastal::util::Rng rng(static_cast<uint64_t>(H * 131 + mh));
  Tensor x = Tensor::randn({2, 3, H, W, D, T}, rng);
  const core::Window4d win{mh, mw, md, mt};
  Tensor back = core::window_reverse(core::window_partition(x, win),
                                     core::FeatureDims::of(x), win);
  coastal::testing::expect_tensor_near(back, x, 0.0);
}

TEST_P(WindowRoundTrip, ShiftMaskIsBlockStructured) {
  auto [H, W, D, T, mh, mw, md, mt] = GetParam();
  const core::FeatureDims dims{1, 1, H, W, D, T};
  const core::Window4d win{mh, mw, md, mt};
  const core::Window4d shift{mh / 2, mw / 2, md / 2, mt / 2};
  Tensor m = core::shifted_window_mask(dims, win, shift);
  // Every entry is 0 or -1e9, diagonal always 0.
  const int64_t N = m.shape()[1];
  for (int64_t b = 0; b < m.shape()[0]; ++b)
    for (int64_t i = 0; i < N; ++i) {
      ASSERT_EQ(m.at({b, i, i}), 0.0f);
      for (int64_t j = 0; j < N; ++j) {
        const float v = m.at({b, i, j});
        ASSERT_TRUE(v == 0.0f || v == -1e9f);
      }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, WindowRoundTrip,
    ::testing::Values(WindowCase{4, 4, 2, 2, 2, 2, 2, 2},
                      WindowCase{8, 4, 4, 2, 4, 2, 2, 2},
                      WindowCase{6, 6, 2, 4, 3, 2, 1, 2},
                      WindowCase{4, 8, 2, 4, 4, 4, 2, 2},
                      WindowCase{2, 2, 2, 2, 2, 2, 2, 2},
                      WindowCase{8, 8, 4, 4, 2, 4, 2, 4}));

// ---------------------------------------------------------------------------
// FP16 round-trip properties over magnitude decades.
// ---------------------------------------------------------------------------

class HalfProperty : public ::testing::TestWithParam<double> {};

TEST_P(HalfProperty, RelativeErrorWithinUlp) {
  const double scale = GetParam();
  coastal::util::Rng rng(static_cast<uint64_t>(scale * 1000) + 3);
  for (int i = 0; i < 500; ++i) {
    const float v = static_cast<float>(rng.normal(0.0, scale));
    const float r = ct::half_to_float(ct::float_to_half(v));
    // half has 11 significand bits -> rel err <= 2^-11.
    EXPECT_NEAR(r, v, std::abs(v) * 4.9e-4 + 6.0e-8) << v;
  }
}

TEST_P(HalfProperty, RoundTripIsIdempotent) {
  const double scale = GetParam();
  coastal::util::Rng rng(static_cast<uint64_t>(scale * 1000) + 7);
  for (int i = 0; i < 200; ++i) {
    const float v = static_cast<float>(rng.normal(0.0, scale));
    const ct::half_t h1 = ct::float_to_half(v);
    const ct::half_t h2 = ct::float_to_half(ct::half_to_float(h1));
    EXPECT_EQ(h1, h2);
  }
}

INSTANTIATE_TEST_SUITE_P(Decades, HalfProperty,
                         ::testing::Values(1e-3, 1e-1, 1.0, 10.0, 1e3));

// ---------------------------------------------------------------------------
// Decomposition equivalence across rank counts and meshes.
// ---------------------------------------------------------------------------

using DecompCase = std::tuple<int, int, int>;  // nx, ny, ranks

class DecompEquivalence : public ::testing::TestWithParam<DecompCase> {};

TEST_P(DecompEquivalence, MatchesSingleRankBitwise) {
  auto [nx, ny, ranks] = GetParam();
  ocean::Grid g(nx, ny, 2, 350.0, 350.0);
  ocean::generate_estuary(g, ocean::EstuaryParams{}, 11);
  auto tides = ocean::TidalForcing::gulf_coast_default();
  ocean::PhysicsParams p;
  p.dt = 12.0;
  const int nsteps = 300;
  auto ref = ocean::run_decomposed(g, tides, p, 1, nsteps);
  auto par = ocean::run_decomposed(g, tides, p, ranks, nsteps);
  ASSERT_EQ(ref.zeta.size(), par.zeta.size());
  for (size_t i = 0; i < ref.zeta.size(); ++i)
    ASSERT_EQ(ref.zeta[i], par.zeta[i]) << "zeta[" << i << "]";
  for (size_t i = 0; i < ref.ubar.size(); ++i)
    ASSERT_EQ(ref.ubar[i], par.ubar[i]) << "ubar[" << i << "]";
  for (size_t i = 0; i < ref.vbar.size(); ++i)
    ASSERT_EQ(ref.vbar[i], par.vbar[i]) << "vbar[" << i << "]";
}

INSTANTIATE_TEST_SUITE_P(Meshes, DecompEquivalence,
                         ::testing::Values(DecompCase{24, 18, 2},
                                           DecompCase{24, 18, 3},
                                           DecompCase{16, 20, 5},
                                           DecompCase{30, 12, 4}));

// ---------------------------------------------------------------------------
// Roll/pad/slice algebra on random shapes.
// ---------------------------------------------------------------------------

class ShapeAlgebra : public ::testing::TestWithParam<int64_t> {};

TEST_P(ShapeAlgebra, RollComposesAdditively) {
  const int64_t n = GetParam();
  coastal::util::Rng rng(static_cast<uint64_t>(n));
  Tensor x = Tensor::randn({n, 3}, rng);
  Tensor once = x.roll(0, 2).roll(0, 3);
  Tensor combined = x.roll(0, 5);
  coastal::testing::expect_tensor_near(once, combined, 0.0);
}

TEST_P(ShapeAlgebra, SliceOfPadIsIdentity) {
  const int64_t n = GetParam();
  coastal::util::Rng rng(static_cast<uint64_t>(n) + 5);
  Tensor x = Tensor::randn({3, n}, rng);
  Tensor back = x.pad_axis(1, 2, 4).slice(1, 2, n);
  coastal::testing::expect_tensor_near(back, x, 0.0);
}

TEST_P(ShapeAlgebra, PermuteInverseIsIdentity) {
  const int64_t n = GetParam();
  coastal::util::Rng rng(static_cast<uint64_t>(n) + 9);
  Tensor x = Tensor::randn({2, n, 3, 2}, rng);
  Tensor back = x.permute({2, 0, 3, 1}).permute({1, 3, 0, 2});
  coastal::testing::expect_tensor_near(back, x, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Sizes, ShapeAlgebra,
                         ::testing::Values(4, 7, 12, 31));
