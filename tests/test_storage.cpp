/// Tests for the memory layer (storage.hpp): the size-bucketed storage
/// pool, per-thread workspaces, and episode arenas.
///
/// The load-bearing invariants:
///  * recycled (dirty) pool blocks never change results — every op fully
///    initializes what it reads, so pool reuse is bitwise invisible;
///  * steady-state fused inference inside an ArenaScope performs zero
///    heap allocations (the PR 4 acceptance pin);
///  * a tensor outliving its arena is a loud, diagnosable error;
///  * COASTAL_DISABLE_POOL degrades everything to one-real-allocation-
///    per-tensor so ASan/valgrind stay byte-precise.

#include <gtest/gtest.h>

#include <cstring>
#include <limits>

#include "core/surrogate.hpp"
#include "nn/attention.hpp"
#include "tensor/kernels.hpp"
#include "tensor/storage.hpp"
#include "tensor/tensor.hpp"
#include "test_helpers.hpp"
#include "util/check.hpp"

using namespace coastal;
using tensor::Tensor;
namespace ct = coastal::tensor;
namespace ker = coastal::tensor::kernels;

namespace {

/// RAII restore of the pool-enabled flag (tests flip it).
struct PoolEnabledOverride {
  bool saved = ct::pool_enabled();
  ~PoolEnabledOverride() { ct::set_pool_enabled(saved); }
};

}  // namespace

TEST(StoragePool, FreeListReuseIsCountedAndSkipsTheHeap) {
  if (!ct::pool_enabled()) GTEST_SKIP() << "pool disabled via env";
  ct::pool_trim();
  const auto s0 = ct::alloc_stats();
  {
    Tensor a = Tensor::zeros({1024});
    const auto live = ct::alloc_stats();
    EXPECT_GE(live.current_bytes, s0.current_bytes + 1024 * sizeof(float));
  }
  const auto s1 = ct::alloc_stats();
  EXPECT_GE(s1.pool_misses, s0.pool_misses + 1);  // trimmed pool: cold
  EXPECT_EQ(s1.current_bytes, s0.current_bytes);  // liveness accounting
  {
    Tensor b = Tensor::zeros({1000});  // same power-of-two bucket as 1024
  }
  const auto s2 = ct::alloc_stats();
  EXPECT_GE(s2.pool_hits, s1.pool_hits + 1);
  EXPECT_EQ(s2.total_allocs, s1.total_allocs)
      << "a pool hit must not touch the heap";
}

TEST(StoragePool, ZerosAreZeroAfterDirtyReuse) {
  if (!ct::pool_enabled()) GTEST_SKIP() << "pool disabled via env";
  { Tensor t = Tensor::full({512}, 7.5f); }
  // Same bucket: zeros() must scrub the recycled block.
  Tensor z = Tensor::zeros({512});
  for (int64_t i = 0; i < 512; ++i) ASSERT_EQ(z.raw()[i], 0.0f) << i;
}

TEST(StoragePool, BitwiseIdenticalAcrossReuseAndThreadCounts) {
  // Pool reuse hands ops recycled, dirty buffers; results must be bitwise
  // identical to a cold-pool run, under any thread count — the PR 1
  // determinism invariant extended to the memory layer.
  util::Rng rng(77);
  nn::MultiHeadSelfAttention attn(24, 4, rng);
  Tensor x = Tensor::randn({4, 40, 24}, rng);
  tensor::NoGradGuard ng;
  coastal::testing::KernelConfigOverride guard;
  ker::config().attn_fused_min_n = 1;  // fused path: workspace-heavy
  ker::config().num_threads = 1;
  ct::pool_trim();
  Tensor cold = attn.forward(x);
  Tensor warm = attn.forward(x);  // every buffer now recycled
  ker::config().num_threads = 8;
  ker::config().parallel_grain = 1;  // force chunked dispatch
  Tensor par = attn.forward(x);
  const size_t bytes = static_cast<size_t>(cold.numel()) * sizeof(float);
  ASSERT_EQ(cold.shape(), warm.shape());
  ASSERT_EQ(cold.shape(), par.shape());
  EXPECT_EQ(std::memcmp(cold.raw(), warm.raw(), bytes), 0)
      << "pool reuse changed results";
  EXPECT_EQ(std::memcmp(cold.raw(), par.raw(), bytes), 0)
      << "thread count changed results on recycled buffers";
}

TEST(Workspace, RetainsScratchAcrossCallsAndReleases) {
  ct::workspace().release();
  EXPECT_EQ(ct::workspace().bytes(), 0u);
  util::Rng rng(3);
  Tensor a = Tensor::randn({64, 64}, rng);
  Tensor b = Tensor::randn({64, 64}, rng);
  tensor::NoGradGuard ng;
  (void)a.matmul(b);  // packs panels + offset tables into the workspace
  EXPECT_GT(ct::workspace().bytes(), 0u);
  ct::workspace().release();
  EXPECT_EQ(ct::workspace().bytes(), 0u);
}

TEST(StorageArena, NestedScopesBumpAndBulkRelease) {
  if (!ct::pool_enabled()) GTEST_SKIP() << "pool disabled via env";
  EXPECT_FALSE(ct::ArenaScope::active());
  const auto s0 = ct::alloc_stats();
  {
    ct::ArenaScope outer;
    EXPECT_TRUE(ct::ArenaScope::active());
    Tensor a = Tensor::zeros({256});
    {
      ct::ArenaScope inner;
      Tensor b = Tensor::ones({256});
      Tensor c = a.add(b);
      EXPECT_EQ(c.raw()[0], 1.0f);
    }  // inner tensors die first, then the inner scope — no error
    EXPECT_TRUE(ct::ArenaScope::active());
  }
  EXPECT_FALSE(ct::ArenaScope::active());
  const auto s1 = ct::alloc_stats();
  EXPECT_GE(s1.arena_allocs, s0.arena_allocs + 3);
  EXPECT_EQ(s1.current_bytes, s0.current_bytes) << "arena leaked liveness";
}

TEST(StorageArena, EscapingTensorIsALoudError) {
  if (!ct::pool_enabled()) GTEST_SKIP() << "pool disabled via env";
  Tensor escaped;
  EXPECT_THROW(
      {
        ct::ArenaScope arena;
        escaped = Tensor::full({64}, 3.0f);
      },
      util::CheckError);
  // Diagnosable, not a use-after-free: the escapee keeps the arena state
  // (and its chunks) alive, so its data is still intact.
  ASSERT_TRUE(escaped.defined());
  EXPECT_EQ(escaped.raw()[0], 3.0f);
  EXPECT_EQ(escaped.raw()[63], 3.0f);
  escaped = Tensor();  // last reference: chunks return to the pool
}

TEST(StorageArena, AdoptedVectorsMaySafelyOutliveTheScope) {
  if (!ct::pool_enabled()) GTEST_SKIP() << "pool disabled via env";
  // from_vector wraps the caller's buffer and is never arena-backed —
  // the rule that makes lazily-built caches (e.g. the Swin window-mask
  // cache) safe to create inside an episode arena.
  Tensor kept;
  {
    ct::ArenaScope arena;
    kept = Tensor::from_vector({4}, {1, 2, 3, 4});
  }  // no throw
  EXPECT_EQ(kept.raw()[3], 4.0f);
}

TEST(StorageArena, FusedInferenceStepZeroHeapAllocs) {
  // The PR 4 acceptance pin: a steady-state fused-attention forecast step
  // inside an ArenaScope performs ZERO heap allocations — every tensor
  // buffer is bump-allocated from recycled arena chunks.
  if (!ct::pool_enabled()) GTEST_SKIP() << "pool disabled via env";
  util::Rng rng(5);
  nn::MultiHeadSelfAttention attn(32, 4, rng);
  Tensor x = Tensor::randn({8, 64, 32}, rng);
  tensor::NoGradGuard ng;
  coastal::testing::KernelConfigOverride guard;
  ker::config().attn_fused_min_n = 1;  // force the fused inference path
  for (int i = 0; i < 2; ++i) {  // warm: pool chunks + workspace scratch
    ct::ArenaScope arena;
    (void)attn.forward(x);
  }
  const auto before = ct::alloc_stats();
  {
    ct::ArenaScope arena;
    (void)attn.forward(x);
  }
  const auto after = ct::alloc_stats();
  EXPECT_EQ(after.total_allocs, before.total_allocs)
      << "steady-state fused inference hit the heap";
  EXPECT_GT(after.arena_allocs, before.arena_allocs);
}

TEST(StorageArena, SurrogateEpisodeStepAllocBudget) {
  // Same pin at full-model scale: one forward of the miniature surrogate
  // (the BM_TrainStep model) in an episode arena — after warmup, the
  // per-episode heap-allocation budget is exactly zero.  Warmup builds
  // the window-mask caches (vector-backed) and sizes the pool chunks.
  if (!ct::pool_enabled()) GTEST_SKIP() << "pool disabled via env";
  util::Rng rng(10);
  core::SurrogateConfig cfg;
  cfg.H = 20;
  cfg.W = 20;
  cfg.D = 6;
  cfg.T = 3;
  cfg.patch_h = 5;
  cfg.patch_w = 5;
  cfg.patch_d = 2;
  cfg.embed_dim = 8;
  cfg.stages = 3;
  cfg.heads = {2, 4, 8};
  core::SurrogateModel model(cfg, rng);
  util::Rng drng(11);
  Tensor volume = Tensor::randn({1, 3, 20, 20, 6, 4}, drng);
  Tensor surface = Tensor::randn({1, 1, 20, 20, 4}, drng);
  tensor::NoGradGuard ng;
  coastal::testing::KernelConfigOverride guard;
  ker::config().attn_fused_min_n = 1;  // fused attention end to end
  for (int i = 0; i < 2; ++i) {
    ct::ArenaScope arena;
    (void)model.forward(volume, surface);
  }
  const auto before = ct::alloc_stats();
  {
    ct::ArenaScope arena;
    (void)model.forward(volume, surface);
  }
  const auto after = ct::alloc_stats();
  EXPECT_EQ(after.total_allocs, before.total_allocs)
      << "steady-state surrogate episode hit the heap";
}

TEST(StorageDisabledPool, EscapeHatchMakesEveryAllocationReal) {
  PoolEnabledOverride restore;
  ct::set_pool_enabled(false);
  const auto s0 = ct::alloc_stats();
  {
    ct::ArenaScope arena;  // inert in debugging mode
    EXPECT_FALSE(ct::ArenaScope::active());
    Tensor t = Tensor::zeros({128});
    const auto s1 = ct::alloc_stats();
    EXPECT_EQ(s1.total_allocs, s0.total_allocs + 1)
        << "disabled pool must heap-allocate every storage";
    EXPECT_EQ(s1.pool_hits, s0.pool_hits);
    EXPECT_EQ(s1.arena_allocs, s0.arena_allocs);
  }  // no escape error either: nothing is arena-backed
  const auto s2 = ct::alloc_stats();
  EXPECT_EQ(s2.current_bytes, s0.current_bytes);
}
