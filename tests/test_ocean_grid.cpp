/// Tests for the grid, bathymetry generator, and tidal forcing.

#include <gtest/gtest.h>

#include <cmath>

#include "ocean/bathymetry.hpp"
#include "ocean/grid.hpp"
#include "ocean/tides.hpp"

using namespace coastal::ocean;

TEST(Grid, IndexingRoundTrips) {
  Grid g(8, 6, 4, 100.0, 100.0);
  EXPECT_EQ(g.rho_index(0, 0), 0u);
  EXPECT_EQ(g.rho_index(7, 0), 7u);
  EXPECT_EQ(g.rho_index(0, 1), 8u);
  EXPECT_EQ(g.u_index(8, 0), 8u);      // nx+1 faces per row
  EXPECT_EQ(g.u_index(0, 1), 9u);
  EXPECT_EQ(g.v_index(0, 6), 48u);     // ny+1 rows of faces
}

TEST(Grid, SigmaLayersPartitionUnitColumn) {
  Grid g(8, 6, 5, 100.0, 100.0);
  double total = 0.0;
  for (double d : g.sigma_thickness()) total += d;
  EXPECT_NEAR(total, 1.0, 1e-12);
  // Midpoints ascend and live in (-1, 0).
  for (size_t k = 0; k < g.sigma().size(); ++k) {
    EXPECT_GT(g.sigma()[k], -1.0);
    EXPECT_LT(g.sigma()[k], 0.0);
    if (k > 0) EXPECT_GT(g.sigma()[k], g.sigma()[k - 1]);
  }
}

TEST(Grid, MaskControlsFaceOpenness) {
  Grid g(6, 6, 2, 100.0, 100.0);
  g.set_wet(2, 2, false);
  EXPECT_FALSE(g.u_face_interior_open(2, 2));  // face west of the dry cell
  EXPECT_FALSE(g.u_face_interior_open(3, 2));  // face east of it
  EXPECT_TRUE(g.u_face_interior_open(2, 3));
  EXPECT_FALSE(g.v_face_interior_open(2, 2));
  EXPECT_FALSE(g.v_face_interior_open(2, 3));
  // Domain edges are never "interior open".
  EXPECT_FALSE(g.u_face_interior_open(0, 0));
  EXPECT_FALSE(g.u_face_interior_open(6, 0));
  EXPECT_FALSE(g.v_face_interior_open(0, 0));
}

TEST(Grid, NonUniformSpacingValidated) {
  Grid g(4, 4, 2, 100.0, 100.0);
  EXPECT_THROW(g.set_spacing({1, 2, 3}, {1, 2, 3, 4}),
               coastal::util::CheckError);
  EXPECT_THROW(g.set_spacing({1, 2, -3, 4}, {1, 2, 3, 4}),
               coastal::util::CheckError);
  g.set_spacing({100, 200, 300, 400}, {50, 50, 50, 50});
  EXPECT_EQ(g.dx(2), 300.0);
  EXPECT_EQ(g.area(1, 0), 200.0 * 50.0);
}

TEST(Bathymetry, GeneratesMixedLandAndWater) {
  Grid g(48, 32, 4, 500.0, 500.0);
  generate_estuary(g, EstuaryParams{}, 42);
  const size_t wet = g.wet_count();
  EXPECT_GT(wet, g.cells() / 4);       // a substantial water body
  EXPECT_LT(wet, g.cells());           // but some land
  // Western edge fully wet (open boundary).
  for (int iy = 0; iy < g.ny(); ++iy) EXPECT_TRUE(g.wet(0, iy));
  // Depths positive on water.
  for (int iy = 0; iy < g.ny(); ++iy)
    for (int ix = 0; ix < g.nx(); ++ix)
      if (g.wet(ix, iy)) EXPECT_GT(g.h(ix, iy), 0.0f);
}

TEST(Bathymetry, DeterministicForSeed) {
  Grid a(32, 24, 4, 500.0, 500.0), b(32, 24, 4, 500.0, 500.0);
  generate_estuary(a, EstuaryParams{}, 7);
  generate_estuary(b, EstuaryParams{}, 7);
  EXPECT_EQ(a.h_field(), b.h_field());
  EXPECT_EQ(a.mask(), b.mask());
}

TEST(Bathymetry, RefinedSpacingNearInlets) {
  Grid g(48, 32, 4, 500.0, 500.0);
  EstuaryParams p;
  generate_estuary(g, p, 1);
  double dmin = 1e18, dmax = 0;
  for (int i = 0; i < g.nx(); ++i) {
    dmin = std::min(dmin, g.dx(i));
    dmax = std::max(dmax, g.dx(i));
  }
  EXPECT_LT(dmin, dmax);                     // non-uniform
  EXPECT_NEAR(dmax, p.base_dx, 1e-6);        // coarsest = base
  EXPECT_LT(dmin, p.base_dx / 1.5);          // refined band
}

TEST(Bathymetry, WaterIsConnectedAcrossInlets) {
  // There must be at least one wet path column through the barrier,
  // otherwise tides cannot reach the harbor.
  Grid g(48, 32, 4, 500.0, 500.0);
  generate_estuary(g, EstuaryParams{}, 9);
  int wet_columns = 0;
  for (int iy = 0; iy < g.ny(); ++iy) {
    bool full_row = true;
    for (int ix = 0; ix < g.nx() / 2; ++ix)
      if (!g.wet(ix, iy)) full_row = false;
    if (full_row) ++wet_columns;
  }
  EXPECT_GT(wet_columns, 0);
}

TEST(Tides, ConstituentSuperposition) {
  TidalForcing tide({{"M2", 1.0, 12.0, 0.0}, {"K1", 0.5, 24.0, 0.0}});
  EXPECT_NEAR(tide.elevation(0.0), 1.5, 1e-12);
  // After half an M2 period the M2 term flips sign.
  const double t = 6.0 * 3600.0;
  EXPECT_NEAR(tide.elevation(t), -1.0 + 0.5 * std::cos(M_PI / 2), 1e-9);
}

TEST(Tides, PeriodicityOfSingleConstituent) {
  TidalForcing tide({{"M2", 0.3, 12.4206, 1.1}});
  const double T = 12.4206 * 3600.0;
  for (double t0 : {0.0, 1234.5, 7.5 * 3600.0}) {
    EXPECT_NEAR(tide.elevation(t0), tide.elevation(t0 + T), 1e-9);
  }
}

TEST(Tides, DefaultSetIsMixed) {
  auto tide = TidalForcing::gulf_coast_default();
  bool has_semidiurnal = false, has_diurnal = false;
  for (const auto& c : tide.constituents()) {
    if (c.period_hours < 14) has_semidiurnal = true;
    if (c.period_hours > 20) has_diurnal = true;
  }
  EXPECT_TRUE(has_semidiurnal);
  EXPECT_TRUE(has_diurnal);
}
