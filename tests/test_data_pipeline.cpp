/// Tests for the data pipeline: stagger->center interpolation, z-score
/// normalization, sample packing, FP16 store round trip, device
/// simulation, and the prefetching loader.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "util/timer.hpp"

#include "data/dataset.hpp"
#include "data/loader.hpp"
#include "ocean/archive.hpp"
#include "ocean/bathymetry.hpp"
#include "tensor/half.hpp"
#include "test_helpers.hpp"

namespace data = coastal::data;
namespace ocean = coastal::ocean;
namespace ct = coastal::tensor;
using coastal::tensor::Tensor;

namespace {

ocean::Grid small_grid() {
  ocean::Grid g(20, 20, 6, 400.0, 400.0);
  ocean::generate_estuary(g, ocean::EstuaryParams{}, 42);
  return g;
}

std::vector<ocean::Snapshot> small_archive(const ocean::Grid& g,
                                           int hours = 6) {
  auto tide = ocean::TidalForcing::gulf_coast_default();
  ocean::PhysicsParams p;
  p.dt = 10.0;
  ocean::ArchiveConfig cfg;
  cfg.spinup_seconds = 3600.0;
  cfg.duration_seconds = hours * 3600.0;
  cfg.interval_seconds = 1800.0;
  return ocean::simulate_archive(g, tide, p, cfg);
}

std::string temp_dir(const std::string& name) {
  auto p = std::filesystem::temp_directory_path() / name;
  std::filesystem::remove_all(p);
  return p.string();
}

}  // namespace

TEST(Half, RoundTripSpecialValues) {
  for (float v : {0.0f, -0.0f, 1.0f, -1.0f, 0.5f, 65504.0f, 6.103515625e-5f}) {
    EXPECT_EQ(ct::half_to_float(ct::float_to_half(v)), v) << v;
  }
  EXPECT_TRUE(std::isinf(ct::half_to_float(ct::float_to_half(1e10f))));
  EXPECT_TRUE(std::isnan(ct::half_to_float(
      ct::float_to_half(std::numeric_limits<float>::quiet_NaN()))));
}

TEST(Half, RelativeErrorBounded) {
  coastal::util::Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    const float v = static_cast<float>(rng.normal(0.0, 3.0));
    const float r = ct::half_to_float(ct::float_to_half(v));
    EXPECT_NEAR(r, v, std::abs(v) * 1e-3 + 1e-7) << v;
  }
}

TEST(Half, SubnormalsPreserved) {
  const float tiny = 3.0e-6f;  // below half's normal range
  const float r = ct::half_to_float(ct::float_to_half(tiny));
  EXPECT_NEAR(r, tiny, tiny * 0.05f);
}

TEST(CenterFields, InterpolationAveragesFaces) {
  ocean::Grid g = small_grid();
  auto snaps = small_archive(g, 2);
  const auto& snap = snaps.back();
  auto f = data::center_from_snapshot(g, snap);
  // Spot-check a wet interior cell on each layer.
  for (int k = 0; k < g.nz(); ++k) {
    for (int iy = 2; iy < g.ny() - 2; iy += 5) {
      for (int ix = 2; ix < g.nx() - 2; ix += 5) {
        const float expected_u =
            0.5f * (snap.u3d[static_cast<size_t>(k)][g.u_index(ix, iy)] +
                    snap.u3d[static_cast<size_t>(k)][g.u_index(ix + 1, iy)]);
        EXPECT_FLOAT_EQ(f.u[f.cell3(k, iy, ix)], expected_u);
        const float expected_v =
            0.5f * (snap.v3d[static_cast<size_t>(k)][g.v_index(ix, iy)] +
                    snap.v3d[static_cast<size_t>(k)][g.v_index(ix, iy + 1)]);
        EXPECT_FLOAT_EQ(f.v[f.cell3(k, iy, ix)], expected_v);
      }
    }
  }
  EXPECT_EQ(f.zeta, snap.zeta);
}

TEST(Normalizer, ZScoreStatistics) {
  ocean::Grid g = small_grid();
  auto fields = data::center_archive(g, small_archive(g, 4));
  data::Normalizer norm;
  for (const auto& f : fields) norm.accumulate(f);
  norm.freeze();
  // Normalized training data must have ~zero mean, ~unit variance.
  coastal::util::RunningStats check;
  for (auto f : fields) {
    norm.normalize_fields(f);
    check.add(std::span<const float>(f.zeta));
  }
  EXPECT_NEAR(check.mean(), 0.0, 0.05);
  EXPECT_NEAR(check.stddev(), 1.0, 0.05);
}

TEST(Normalizer, RoundTripAndWScaleTiny) {
  ocean::Grid g = small_grid();
  auto fields = data::center_archive(g, small_archive(g, 3));
  data::Normalizer norm;
  for (const auto& f : fields) norm.accumulate(f);
  norm.freeze();
  // w has a much smaller scale than u — the per-variable statistics must
  // reflect that (this is why the paper normalizes per variable).
  EXPECT_LT(norm.stddev(data::kW), norm.stddev(data::kU) * 0.1);
  // normalize then denormalize restores values.
  auto f = fields[0];
  const float orig = f.zeta[50];
  norm.normalize_fields(f);
  norm.denormalize(f.zeta, data::kZeta);
  EXPECT_NEAR(f.zeta[50], orig, 1e-4);
}

TEST(Normalizer, RejectsUseBeforeFreeze) {
  data::Normalizer norm;
  data::CenterFields f;
  f.nx = f.ny = f.nz = 1;
  f.u = f.v = f.w = {0.1f};
  f.zeta = {0.2f};
  EXPECT_THROW(norm.normalize_fields(f), coastal::util::CheckError);
}

TEST(SampleSpec, PadsToMultiples) {
  auto spec = data::make_spec(19, 22, 5, 4, 10, 2);
  EXPECT_EQ(spec.H, 20);
  EXPECT_EQ(spec.W, 30);
  EXPECT_EQ(spec.D, 6);
  EXPECT_EQ(spec.src_ny, 19);
}

TEST(Sample, PackingSemantics) {
  ocean::Grid g = small_grid();
  auto fields = data::center_archive(g, small_archive(g, 4));
  data::Normalizer norm;
  for (const auto& f : fields) norm.accumulate(f);
  norm.freeze();
  for (auto& f : fields) norm.normalize_fields(f);

  auto spec = data::make_spec(g.ny(), g.nx(), g.nz(), 3, 4, 2);
  std::span<const data::CenterFields> window(fields.data(), 4);
  auto s = data::make_sample(spec, window);

  EXPECT_EQ(s.volume.shape(), (ct::Shape{3, spec.H, spec.W, spec.D, 4}));
  EXPECT_EQ(s.surface.shape(), (ct::Shape{1, spec.H, spec.W, 4}));

  // t=0 carries the full initial condition.
  const auto& f0 = fields[0];
  EXPECT_FLOAT_EQ(s.surface.at({0, 5, 7, 0}), f0.zeta[f0.cell2(5, 7)]);
  EXPECT_FLOAT_EQ(s.volume.at({0, 5, 7, 2, 0}), f0.u[f0.cell3(2, 5, 7)]);

  // t>=1: interior zeroed, boundary ring kept.
  const auto& f1 = fields[1];
  EXPECT_FLOAT_EQ(s.surface.at({0, 5, 7, 1}), 0.0f);             // interior
  EXPECT_FLOAT_EQ(s.surface.at({0, 0, 7, 1}), f1.zeta[f1.cell2(0, 7)]);
  EXPECT_FLOAT_EQ(s.surface.at({0, 5, 0, 1}), f1.zeta[f1.cell2(5, 0)]);
  EXPECT_FLOAT_EQ(
      s.surface.at({0, static_cast<int64_t>(g.ny() - 1), 7, 2}),
      fields[2].zeta[fields[2].cell2(g.ny() - 1, 7)]);

  // Targets carry full frames at t=1..T.
  EXPECT_FLOAT_EQ(s.target_surface.at({0, 5, 7, 0}),
                  f1.zeta[f1.cell2(5, 7)]);
  EXPECT_FLOAT_EQ(s.target_volume.at({1, 5, 7, 3, 2}),
                  fields[3].v[fields[3].cell3(3, 5, 7)]);

  // Padding region stays zero everywhere.
  if (spec.W > g.nx()) {
    EXPECT_FLOAT_EQ(s.surface.at({0, 0, spec.W - 1, 0}), 0.0f);
    EXPECT_FLOAT_EQ(s.target_surface.at({0, 0, spec.W - 1, 0}), 0.0f);
  }
}

TEST(Sample, ValidMaskMarksOriginalMesh) {
  auto spec = data::make_spec(19, 22, 5, 2, 10, 2);
  Tensor m = data::valid_mask(spec);
  EXPECT_EQ(m.shape(), (ct::Shape{20, 30}));
  EXPECT_EQ(m.at({18, 21}), 1.0f);
  EXPECT_EQ(m.at({19, 0}), 0.0f);
  EXPECT_EQ(m.at({0, 22}), 0.0f);
}

TEST(Store, Fp16RoundTripAccuracy) {
  ocean::Grid g = small_grid();
  auto fields = data::center_archive(g, small_archive(g, 3));
  data::Normalizer norm;
  for (const auto& f : fields) norm.accumulate(f);
  norm.freeze();
  for (auto& f : fields) norm.normalize_fields(f);
  auto spec = data::make_spec(g.ny(), g.nx(), g.nz(), 2, 4, 2);
  auto sample =
      data::make_sample(spec, {fields.data(), 3});

  data::SampleStore store(temp_dir("coastal_store_test"), spec);
  store.write(0, sample);
  auto loaded = store.read(0);
  // FP16 storage: relative error ~1e-3; normalized values reach several
  // sigma, so the absolute bound is ~1e-2.
  EXPECT_LT(coastal::testing::max_abs_diff(loaded.volume, sample.volume),
            2e-2);
  EXPECT_LT(coastal::testing::max_abs_diff(loaded.target_surface,
                                           sample.target_surface),
            2e-2);
}

TEST(Store, CountsAndRejectsCorruptFiles) {
  auto spec = data::make_spec(8, 8, 2, 2, 4, 2);
  data::SampleStore store(temp_dir("coastal_store_count"), spec);
  EXPECT_EQ(store.count(), 0u);
  data::CenterFields f;
  f.nx = 8;
  f.ny = 8;
  f.nz = 2;
  const size_t n3 = 2 * 8 * 8, n2 = 8 * 8;
  f.u.assign(n3, 0.1f);
  f.v.assign(n3, 0.2f);
  f.w.assign(n3, 0.0f);
  f.zeta.assign(n2, 0.3f);
  std::vector<data::CenterFields> frames(3, f);
  store.write(0, data::make_sample(spec, frames));
  EXPECT_EQ(store.count(), 1u);
  // Corrupt magic.
  {
    std::ofstream bad(store.path_for(1), std::ios::binary);
    bad << "garbage";
  }
  EXPECT_THROW(store.read(1), coastal::util::CheckError);
}

TEST(DeviceSim, TransferTimesFollowBandwidth) {
  data::DeviceSimConfig cfg;
  cfg.ssd_bandwidth = 10e6;         // 10 MB/s -> 1 MB = 100 ms
  cfg.h2d_paged_bandwidth = 20e6;
  cfg.h2d_pinned_bandwidth = 80e6;  // 4x faster pinned
  data::DeviceSim dev(cfg);

  coastal::util::Timer t1;
  dev.ssd_read(1'000'000);
  EXPECT_NEAR(t1.seconds(), 0.1, 0.05);

  coastal::util::Timer t2;
  dev.h2d_copy(1'000'000, /*pinned=*/false);
  const double paged = t2.seconds();
  coastal::util::Timer t3;
  dev.h2d_copy(1'000'000, /*pinned=*/true);
  const double pinned = t3.seconds();
  EXPECT_GT(paged, pinned * 2.0);
  EXPECT_EQ(dev.ssd_bytes(), 1'000'000u);
  EXPECT_EQ(dev.h2d_bytes(), 2'000'000u);
}

TEST(DeviceSim, DisabledIsInstantaneous) {
  data::DeviceSim dev(data::DeviceSimConfig::instantaneous());
  coastal::util::Timer t;
  dev.ssd_read(100'000'000);
  EXPECT_LT(t.seconds(), 0.01);
}

TEST(Dataset, BuildSplitsChronologically) {
  ocean::Grid g = small_grid();
  auto fields = data::center_archive(g, small_archive(g, 8));
  data::DatasetConfig cfg;
  cfg.T = 3;
  cfg.stride = 2;
  cfg.dir = temp_dir("coastal_ds_build");
  auto ds = data::build_dataset(fields, cfg);
  EXPECT_GT(ds.train_indices.size(), 0u);
  EXPECT_GT(ds.val_indices.size(), 0u);
  // Validation indices strictly after training ones (chronological split).
  EXPECT_GT(ds.val_indices.front(), ds.train_indices.back());
  EXPECT_EQ(ds.store().count(),
            ds.train_indices.size() + ds.val_indices.size());
}

TEST(Dataset, ReusesTestNormalizer) {
  ocean::Grid g = small_grid();
  auto train_fields = data::center_archive(g, small_archive(g, 6));
  data::DatasetConfig cfg;
  cfg.T = 3;
  cfg.stride = 3;
  cfg.dir = temp_dir("coastal_ds_train");
  auto train = data::build_dataset(train_fields, cfg);

  cfg.dir = temp_dir("coastal_ds_test");
  auto test = data::build_dataset(train_fields, cfg, &train.normalizer, 0.0);
  EXPECT_EQ(test.normalizer.mean(data::kZeta),
            train.normalizer.mean(data::kZeta));
  EXPECT_TRUE(test.val_indices.empty());
}

TEST(Loader, PreservesEpochOrder) {
  ocean::Grid g = small_grid();
  auto fields = data::center_archive(g, small_archive(g, 8));
  data::DatasetConfig cfg;
  cfg.T = 2;
  cfg.stride = 1;
  cfg.dir = temp_dir("coastal_ds_loader");
  auto ds = data::build_dataset(fields, cfg);
  auto store = ds.store();

  data::LoaderConfig lc;
  lc.num_workers = 3;
  lc.prefetch_factor = 2;
  lc.shuffle = false;
  data::DataLoader loader(store, ds.train_indices, lc, nullptr);
  // Workers race, but delivery must follow index order: compare each
  // delivered sample against a direct read.
  size_t n = 0;
  while (auto s = loader.next()) {
    auto direct = store.read(ds.train_indices[n]);
    ASSERT_EQ(
        coastal::testing::max_abs_diff(s->volume, direct.volume), 0.0);
    ++n;
  }
  EXPECT_EQ(n, ds.train_indices.size());
}

TEST(Loader, ShuffleIsSeededPermutation) {
  ocean::Grid g = small_grid();
  auto fields = data::center_archive(g, small_archive(g, 8));
  data::DatasetConfig cfg;
  cfg.T = 2;
  cfg.stride = 1;
  cfg.dir = temp_dir("coastal_ds_shuffle");
  auto ds = data::build_dataset(fields, cfg);
  auto store = ds.store();

  data::LoaderConfig lc;
  lc.num_workers = 0;
  lc.shuffle = true;
  lc.shuffle_seed = 7;
  auto collect = [&] {
    data::DataLoader loader(store, ds.train_indices, lc, nullptr);
    std::vector<float> firsts;
    while (auto s = loader.next()) firsts.push_back(s->surface.data()[0]);
    return firsts;
  };
  auto a = collect();
  auto b = collect();
  EXPECT_EQ(a, b);  // deterministic for the seed
  EXPECT_EQ(a.size(), ds.train_indices.size());
}

TEST(Loader, SynchronousModeMatchesWorkers) {
  ocean::Grid g = small_grid();
  auto fields = data::center_archive(g, small_archive(g, 6));
  data::DatasetConfig cfg;
  cfg.T = 2;
  cfg.stride = 2;
  cfg.dir = temp_dir("coastal_ds_sync");
  auto ds = data::build_dataset(fields, cfg);
  auto store = ds.store();

  data::LoaderConfig sync;
  sync.num_workers = 0;
  data::LoaderConfig par;
  par.num_workers = 2;
  data::DataLoader a(store, ds.train_indices, sync, nullptr);
  data::DataLoader b(store, ds.train_indices, par, nullptr);
  while (true) {
    auto sa = a.next();
    auto sb = b.next();
    ASSERT_EQ(sa.has_value(), sb.has_value());
    if (!sa) break;
    ASSERT_EQ(coastal::testing::max_abs_diff(sa->volume, sb->volume), 0.0);
  }
}

TEST(Loader, PinFlagPropagates) {
  ocean::Grid g = small_grid();
  auto fields = data::center_archive(g, small_archive(g, 4));
  data::DatasetConfig cfg;
  cfg.T = 2;
  cfg.stride = 2;
  cfg.dir = temp_dir("coastal_ds_pin");
  auto ds = data::build_dataset(fields, cfg);
  auto store = ds.store();
  data::LoaderConfig lc;
  lc.num_workers = 1;
  lc.pin_memory = false;
  data::DataLoader loader(store, ds.train_indices, lc, nullptr);
  auto s = loader.next();
  ASSERT_TRUE(s.has_value());
  EXPECT_FALSE(s->pinned);
}
