/// Table III: MAE and RMSE of the surrogate for u, v, w, zeta on held-out
/// test data, at the short horizon (one episode — the paper's "12 hours")
/// and the long horizon (dual-model rollout — the paper's "12 days").
///
/// Expected shape (matches the paper): w errors orders of magnitude below
/// u/v (vertical velocity is tiny), zeta errors the largest in absolute
/// units, and long-horizon errors comparable to short-horizon ones because
/// boundary conditions keep the rollout anchored.

#include "bench_common.hpp"
#include "core/rollout.hpp"
#include "core/trainer.hpp"
#include "util/stats.hpp"

using namespace coastal;

int main() {
  bench::print_header("Table III — surrogate MAE / RMSE per variable");
  auto w = bench::make_mini_world("table3", /*train_model=*/true,
                                  /*train_hours=*/36, /*test_hours=*/16);

  // ---- short horizon: single-episode forecasts on non-overlapping test
  // windows (the paper's 12-hour row).
  auto short_metrics =
      core::evaluate(*w.model, w.test_set, w.test_set.train_indices);

  // ---- long horizon: autoregressive rollout across the whole test span
  // (the paper's 12-day row).
  const int T = w.train_set.spec.T;
  const int episodes =
      (static_cast<int>(w.test_fields_norm.size()) - 1) / T;
  auto pred = core::rollout(*w.model, w.train_set.spec,
                            w.train_set.normalizer, w.test_fields_norm,
                            episodes);
  util::ErrorStats err[data::kNumVariables];
  for (size_t t = 0; t < pred.size(); ++t) {
    const auto& truth = w.test_fields[t + 1];
    err[data::kU].add(pred[t].u, truth.u);
    err[data::kV].add(pred[t].v, truth.v);
    err[data::kW].add(pred[t].w, truth.w);
    err[data::kZeta].add(pred[t].zeta, truth.zeta);
  }

  util::CsvWriter csv(bench::results_dir() + "/table3_accuracy.csv",
                      {"horizon", "variable", "mae", "rmse"});
  std::printf("%-16s %-8s %12s %12s\n", "horizon", "variable", "MAE", "RMSE");
  const char* units[] = {"[m/s]", "[m/s]", "[m/s]", "[m]"};
  for (int v = 0; v < data::kNumVariables; ++v) {
    std::printf("%-16s %-2s %-5s %12.3e %12.3e\n", "short (1 episode)",
                data::variable_name(v), units[v], short_metrics.mae[v],
                short_metrics.rmse[v]);
    csv.row("short", data::variable_name(v), short_metrics.mae[v],
            short_metrics.rmse[v]);
  }
  for (int v = 0; v < data::kNumVariables; ++v) {
    std::printf("%-16s %-2s %-5s %12.3e %12.3e\n", "long (rollout)",
                data::variable_name(v), units[v], err[v].mae(),
                err[v].rmse());
    csv.row("long", data::variable_name(v), err[v].mae(), err[v].rmse());
  }

  std::printf("\npaper (12h):  u 1.80e-2  v 1.73e-2  w 9.60e-5  zeta 4.58e-2 "
              "(MAE)\n");
  std::printf("paper (12d):  u 1.49e-2  v 1.40e-2  w 8.27e-5  zeta 4.79e-2 "
              "(MAE)\n");
  std::printf("shape check:  w << u,v and long-horizon ~ short-horizon — "
              "compare rows above.\n");
  return 0;
}
