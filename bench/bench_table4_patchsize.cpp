/// Table IV: sensitivity to patch size — parameter count, inference time
/// per instance, and per-variable MAE/RMSE.
///
/// Expected shape (matches the paper): the smallest patch has the best
/// accuracy; larger patches shrink the attention-path parameters but grow
/// the decoder's transposed-conv parameters; inference time varies only
/// mildly.

#include "bench_common.hpp"
#include "core/trainer.hpp"
#include "util/timer.hpp"

using namespace coastal;

int main() {
  bench::print_header("Table IV — patch-size sensitivity");
  auto w = bench::make_mini_world("table4", /*train_model=*/false,
                                  /*train_hours=*/24, /*test_hours=*/10);

  util::CsvWriter csv(
      bench::results_dir() + "/table4_patchsize.csv",
      {"patch", "params_m", "time_per_instance_s", "mae_u", "mae_v", "mae_w",
       "mae_zeta", "rmse_u", "rmse_v", "rmse_w", "rmse_zeta"});
  std::printf("%-6s %10s %12s %11s %11s %11s %11s\n", "patch", "params",
              "time/inst", "MAE u", "MAE v", "MAE w", "MAE zeta");

  // Two-stage models so every patch size tiles the 20x20 mini mesh.
  for (int64_t patch : {2, 5, 10}) {
    core::SurrogateConfig cfg;
    cfg.H = w.train_set.spec.H;
    cfg.W = w.train_set.spec.W;
    cfg.D = w.train_set.spec.D;
    cfg.T = w.train_set.spec.T;
    cfg.patch_h = patch;
    cfg.patch_w = patch;
    cfg.patch_d = 2;
    cfg.embed_dim = 8;
    cfg.stages = 2;
    cfg.heads = {2, 4};
    util::Rng rng(7);
    core::SurrogateModel model(cfg, rng);

    core::TrainConfig tcfg;
    tcfg.epochs = 2;
    tcfg.lr = 2e-3f;
    tcfg.loader.num_workers = 1;
    core::train(model, w.train_set, tcfg);

    // Inference time per instance (median of a few runs).
    auto store = w.test_set.store();
    auto sample = store.read(w.test_set.train_indices[0]);
    model.set_training(false);
    double best = 1e18;
    {
      tensor::NoGradGuard ng;
      for (int rep = 0; rep < 3; ++rep) {
        util::Timer t;
        model.forward_sample(sample);
        best = std::min(best, t.seconds());
      }
    }
    model.set_training(true);

    auto m = core::evaluate(model, w.test_set, w.test_set.train_indices);
    const double params_m =
        static_cast<double>(model.num_parameters()) / 1e6;
    std::printf("%-6ld %9.3fM %11.3fs %11.3e %11.3e %11.3e %11.3e\n", patch,
                params_m, best, m.mae[0], m.mae[1], m.mae[2], m.mae[3]);
    csv.row(patch, params_m, best, m.mae[0], m.mae[1], m.mae[2], m.mae[3],
            m.rmse[0], m.rmse[1], m.rmse[2], m.rmse[3]);
  }

  std::printf("\npaper: patch 5 -> 3.39M params, 0.888 s, best MAE; patches "
              "15/25 -> fewer attention params, worse accuracy.\n");
  std::printf("shape notes: the parameter trend reproduces (decoder "
              "transposed-conv params grow with patch size).  The paper's "
              "accuracy advantage of small patches comes from sub-patch "
              "coastal structure on the 898x598 mesh; on this 20x20 "
              "miniature the tidal field is smooth at patch scale, so the "
              "accuracy ordering need not reproduce — see DESIGN.md.\n");
  return 0;
}
