/// Fig. 5: spatial maps of ROMS vs AI surrogate vs difference for the
/// surface-layer u, v and for zeta, after a multi-episode forecast.
/// Emits one CSV per panel under bench_results/ plus a terminal summary
/// (field ranges and difference statistics) and an ASCII rendering of
/// zeta for quick inspection.

#include "bench_common.hpp"
#include "core/rollout.hpp"
#include "io/field_io.hpp"
#include "util/stats.hpp"

using namespace coastal;

namespace {

/// Surface-layer (k = nz-1) slice of a layered field.
std::vector<float> surface_layer(const data::CenterFields& f) {
  const size_t n2 = static_cast<size_t>(f.ny) * f.nx;
  const size_t off = static_cast<size_t>(f.nz - 1) * n2;
  return {f.u.begin() + static_cast<ptrdiff_t>(off),
          f.u.begin() + static_cast<ptrdiff_t>(off + n2)};
}

std::vector<float> diff(const std::vector<float>& a,
                        const std::vector<float>& b) {
  std::vector<float> d(a.size());
  for (size_t i = 0; i < a.size(); ++i) d[i] = a[i] - b[i];
  return d;
}

void report(const char* name, const std::vector<float>& roms,
            const std::vector<float>& ai, const ocean::Grid& grid) {
  util::RunningStats rs, as, ds;
  for (int iy = 0; iy < grid.ny(); ++iy)
    for (int ix = 0; ix < grid.nx(); ++ix) {
      if (!grid.wet(ix, iy)) continue;
      const size_t i = static_cast<size_t>(iy) * grid.nx() + ix;
      rs.add(roms[i]);
      as.add(ai[i]);
      ds.add(std::abs(roms[i] - ai[i]));
    }
  std::printf("%-6s ROMS [%+.3f, %+.3f]  AI [%+.3f, %+.3f]  |diff| mean "
              "%.4f max %.4f\n",
              name, rs.min(), rs.max(), as.min(), as.max(), ds.mean(),
              ds.max());
}

}  // namespace

int main() {
  bench::print_header("Fig. 5 — spatial maps: ROMS vs AI vs difference");
  auto w = bench::make_mini_world("fig5", true, 30, 12);

  // Forecast 4 episodes ahead (the paper's panel is ~6 days into a
  // 12-day forecast).
  const int episodes = 4;
  auto pred = core::rollout(*w.model, w.train_set.spec,
                            w.train_set.normalizer, w.test_fields_norm,
                            episodes);
  const auto& ai = pred.back();
  const auto& roms = w.test_fields[pred.size()];  // truth at the same time

  const std::string dir = bench::results_dir();
  struct Panel {
    const char* name;
    std::vector<float> roms, ai;
  };
  // u surface slice comes from .u; v from .v; zeta is 2-D already.
  Panel panels[3];
  panels[0] = {"u", surface_layer(roms), surface_layer(ai)};
  {
    data::CenterFields rv = roms, av = ai;
    std::swap(rv.u, rv.v);
    std::swap(av.u, av.v);
    panels[1] = {"v", surface_layer(rv), surface_layer(av)};
  }
  panels[2] = {"zeta", roms.zeta, ai.zeta};

  for (auto& p : panels) {
    io::write_field_csv(dir + "/fig5_" + p.name + "_roms.csv", p.roms,
                        w.grid.nx(), w.grid.ny(), &w.grid);
    io::write_field_csv(dir + "/fig5_" + p.name + "_ai.csv", p.ai,
                        w.grid.nx(), w.grid.ny(), &w.grid);
    io::write_field_csv(dir + "/fig5_" + p.name + "_diff.csv",
                        diff(p.ai, p.roms), w.grid.nx(), w.grid.ny(),
                        &w.grid);
    report(p.name, p.roms, p.ai, w.grid);
  }

  std::printf("\nzeta, ROMS (left) vs AI surrogate (right):\n");
  auto left = io::ascii_field(roms.zeta, w.grid.nx(), w.grid.ny(), -0.4f,
                              0.4f, &w.grid);
  auto right = io::ascii_field(ai.zeta, w.grid.nx(), w.grid.ny(), -0.4f,
                               0.4f, &w.grid);
  // Interleave rows side by side.
  size_t l = 0, r = 0;
  while (l < left.size() && r < right.size()) {
    const size_t le = left.find('\n', l), re = right.find('\n', r);
    std::printf("%s   %s\n", left.substr(l, le - l).c_str(),
                right.substr(r, re - r).c_str());
    l = le + 1;
    r = re + 1;
  }
  std::printf("\nCSV panels written to %s/fig5_*.csv\n", dir.c_str());
  return 0;
}
