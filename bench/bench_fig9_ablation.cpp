/// Fig. 9: training-throughput ablation of the three system
/// optimizations — activation checkpointing (enables batch 2), pinned
/// memory (fast H2D path), and prefetch workers (overlap simulated SSD
/// reads with compute).
///
/// The simulated device hierarchy (DeviceSim) supplies the bandwidth
/// ratios of the DGX (SSD << PCIe paged < PCIe pinned); the compute is
/// real.  Expected shape, as in the paper: full config fastest; removing
/// prefetch hurts most, then pinning, then checkpointing.

#include "bench_common.hpp"
#include "core/trainer.hpp"

using namespace coastal;

namespace {

struct Config {
  const char* label;
  bool checkpoint;
  bool pin;
  int workers;
};

}  // namespace

int main() {
  bench::print_header("Fig. 9 — training-throughput ablation");
  auto w = bench::make_mini_world("fig9", /*train_model=*/false,
                                  /*train_hours=*/16, /*test_hours=*/6);

  const Config configs[] = {
      {"our method", true, true, 2},
      {"w/o activation ckpt", false, true, 2},
      {"w/o pin memory", true, false, 2},
      {"w/o prefetch", true, true, 0},
  };

  util::CsvWriter csv(bench::results_dir() + "/fig9_ablation.csv",
                      {"config", "throughput_inst_per_s", "paper_value"});
  const double paper[] = {1.36, 0.81, 0.74, 0.45};
  std::printf("%-24s %16s %12s\n", "configuration", "measured[inst/s]",
              "paper");

  int i = 0;
  for (const auto& c : configs) {
    // Fresh device sim per config so accounting does not mix.  Bandwidths
    // are scaled so the miniature sample's stage times keep the DGX
    // ratios: SSD read ~1.5x one sample's compute, paged H2D ~0.3x,
    // pinned H2D ~0.1x.
    data::DeviceSimConfig dcfg;
    dcfg.ssd_bandwidth = 3.5e6;
    dcfg.h2d_paged_bandwidth = 18e6;
    dcfg.h2d_pinned_bandwidth = 72e6;
    data::DeviceSim device(dcfg);

    core::SurrogateConfig mcfg = w.model->config();
    util::Rng rng(7);
    core::SurrogateModel model(mcfg, rng);

    core::TrainConfig tcfg;
    tcfg.epochs = 1;
    tcfg.lr = 1e-3f;
    tcfg.use_checkpoint = c.checkpoint;
    tcfg.batch_size = c.checkpoint ? 2 : 1;  // ckpt frees room for batch 2
    tcfg.enforce_memory_limit = true;
    tcfg.loader.num_workers = c.workers;
    tcfg.loader.pin_memory = c.pin;
    auto stats = core::train(model, w.train_set, tcfg, &device);

    std::printf("%-24s %16.3f %12.2f\n", c.label, stats.throughput,
                paper[i]);
    csv.row(c.label, stats.throughput, paper[i]);
    ++i;
  }

  std::printf("\nshape check (paper): our method > w/o ckpt > w/o pin > "
              "w/o prefetch.\n");
  std::printf("caveat: the prefetch and pin effects reproduce here (they "
              "are I/O-overlap properties carried by DeviceSim); the ckpt "
              "benefit does not, because it comes from A100 batching "
              "efficiency (batch 2 in < 2x batch-1 time) — on a CPU, "
              "recompute only adds cost.  See DESIGN.md.\n");
  return 0;
}
