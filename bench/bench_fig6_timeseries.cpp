/// Fig. 6: zeta time series at three selected wet locations over the full
/// long-horizon forecast — ROMS (truth) vs AI surrogate, with per-station
/// RMSE and correlation printed and a CSV for plotting.

#include <cmath>

#include "bench_common.hpp"
#include "core/rollout.hpp"
#include "io/field_io.hpp"

using namespace coastal;

int main() {
  bench::print_header("Fig. 6 — zeta time series at three stations");
  auto w = bench::make_mini_world("fig6", true, 36, 16);

  const int T = w.train_set.spec.T;
  const int episodes =
      (static_cast<int>(w.test_fields_norm.size()) - 1) / T;
  auto pred = core::rollout(*w.model, w.train_set.spec,
                            w.train_set.normalizer, w.test_fields_norm,
                            episodes);

  // Three stations spanning boundary-near shelf, inlet, and inner harbor —
  // the same sampling logic as the paper's three locations.
  struct Station {
    const char* name;
    int ix, iy;
  };
  Station stations[] = {
      {"shelf", 3, w.grid.ny() / 2},
      {"inlet", w.grid.nx() / 4 + 1, w.grid.ny() / 3},
      {"harbor", w.grid.nx() * 2 / 3, w.grid.ny() / 2},
  };
  // Nudge any station that landed on land to the nearest wet cell in +x.
  for (auto& s : stations)
    while (!w.grid.wet(s.ix, s.iy) && s.ix + 1 < w.grid.nx()) ++s.ix;

  std::vector<std::string> names;
  std::vector<std::vector<float>> series;
  std::printf("%-8s %6s %10s %12s %12s\n", "station", "cell", "range[m]",
              "RMSE[m]", "corr");
  for (const auto& s : stations) {
    std::vector<float> truth_z, ai_z;
    for (size_t t = 0; t < pred.size(); ++t) {
      truth_z.push_back(
          w.test_fields[t + 1].zeta[w.test_fields[t + 1].cell2(s.iy, s.ix)]);
      ai_z.push_back(pred[t].zeta[pred[t].cell2(s.iy, s.ix)]);
    }
    // Metrics.
    double se = 0, mr = 0, ma = 0;
    for (size_t i = 0; i < truth_z.size(); ++i) {
      se += (truth_z[i] - ai_z[i]) * (truth_z[i] - ai_z[i]);
      mr += truth_z[i];
      ma += ai_z[i];
    }
    const double n = static_cast<double>(truth_z.size());
    mr /= n;
    ma /= n;
    double cov = 0, vr = 0, va = 0, zmin = 1e9, zmax = -1e9;
    for (size_t i = 0; i < truth_z.size(); ++i) {
      cov += (truth_z[i] - mr) * (ai_z[i] - ma);
      vr += (truth_z[i] - mr) * (truth_z[i] - mr);
      va += (ai_z[i] - ma) * (ai_z[i] - ma);
      zmin = std::min(zmin, static_cast<double>(truth_z[i]));
      zmax = std::max(zmax, static_cast<double>(truth_z[i]));
    }
    const double corr = cov / (std::sqrt(vr * va) + 1e-30);
    std::printf("%-8s (%2d,%2d) %10.3f %12.4f %12.3f\n", s.name, s.ix, s.iy,
                zmax - zmin, std::sqrt(se / n), corr);
    names.push_back(std::string(s.name) + "_roms");
    series.push_back(truth_z);
    names.push_back(std::string(s.name) + "_ai");
    series.push_back(ai_z);
  }
  io::write_series_csv(bench::results_dir() + "/fig6_timeseries.csv", names,
                       series);
  std::printf("\n%zu forecast steps written to "
              "bench_results/fig6_timeseries.csv\n",
              pred.size());
  std::printf("shape check (paper): AI tracks the ROMS tidal oscillation "
              "across the whole horizon — correlation near 1.\n");
  return 0;
}
