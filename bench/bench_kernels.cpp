/// Micro-benchmarks (google-benchmark) for the hot kernels underlying the
/// system: tensor matmul/softmax/layernorm, 4-D window partitioning,
/// attention forward/backward, the shallow-water step, halo exchange, and
/// FP16 conversion.  These are the knobs the ablations in DESIGN.md call
/// out; tracking them catches performance regressions.

#include <benchmark/benchmark.h>

#include <limits>
#include <span>

#include "bench_common.hpp"
#include "core/rollout.hpp"
#include "core/surrogate.hpp"
#include "core/window4d.hpp"
#include "nn/attention.hpp"
#include "nn/optimizer.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "ocean/bathymetry.hpp"
#include "ocean/solver.hpp"
#include "parallel/decomposition.hpp"
#include "serve/server.hpp"
#include "tensor/half.hpp"
#include "tensor/kernels.hpp"
#include "tensor/tensor.hpp"
#include "util/fault.hpp"

using namespace coastal;
using tensor::Tensor;

namespace {

/// The seed repo's scalar GEMM, kept verbatim (including the NaN-dropping
/// `a == 0.0f` skip) as the speedup baseline for the blocked kernel.
void seed_gemm_acc(const float* A, const float* B, float* C, int64_t m,
                   int64_t k, int64_t n) {
  for (int64_t i = 0; i < m; ++i) {
    float* crow = C + i * n;
    const float* arow = A + i * k;
    for (int64_t kk = 0; kk < k; ++kk) {
      const float a = arow[kk];
      if (a == 0.0f) continue;
      const float* brow = B + kk * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += a * brow[j];
    }
  }
}

}  // namespace

static void BM_Matmul(benchmark::State& state) {
  const int64_t n = state.range(0);
  util::Rng rng(1);
  Tensor a = Tensor::randn({n, n}, rng);
  Tensor b = Tensor::randn({n, n}, rng);
  tensor::NoGradGuard ng;
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.matmul(b).raw());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Matmul)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

static void BM_MatmulSeedScalar(benchmark::State& state) {
  const int64_t n = state.range(0);
  util::Rng rng(1);
  Tensor a = Tensor::randn({n, n}, rng);
  Tensor b = Tensor::randn({n, n}, rng);
  std::vector<float> c(static_cast<size_t>(n * n));
  for (auto _ : state) {
    std::fill(c.begin(), c.end(), 0.0f);
    seed_gemm_acc(a.raw(), b.raw(), c.data(), n, n, n);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_MatmulSeedScalar)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

static void BM_TransposeLast(benchmark::State& state) {
  const int64_t n = state.range(0);
  util::Rng rng(8);
  Tensor x = Tensor::randn({8, n, n}, rng);
  tensor::NoGradGuard ng;
  for (auto _ : state) benchmark::DoNotOptimize(x.transpose_last().raw());
  state.SetBytesProcessed(state.iterations() * 8 * n * n * sizeof(float));
}
BENCHMARK(BM_TransposeLast)->Arg(64)->Arg(256);

static void BM_BroadcastAdd(benchmark::State& state) {
  const int64_t n = state.range(0);
  util::Rng rng(9);
  Tensor x = Tensor::randn({16, n, n}, rng);
  Tensor bias = Tensor::randn({n}, rng);
  tensor::NoGradGuard ng;
  for (auto _ : state) benchmark::DoNotOptimize(x.add(bias).raw());
  state.SetBytesProcessed(state.iterations() * 16 * n * n * sizeof(float));
}
BENCHMARK(BM_BroadcastAdd)->Arg(128);

static void BM_SoftmaxLastDim(benchmark::State& state) {
  util::Rng rng(2);
  Tensor x = Tensor::randn({256, state.range(0)}, rng);
  tensor::NoGradGuard ng;
  for (auto _ : state) benchmark::DoNotOptimize(x.softmax_lastdim().raw());
}
BENCHMARK(BM_SoftmaxLastDim)->Arg(64)->Arg(256);

static void BM_LayerNorm(benchmark::State& state) {
  util::Rng rng(3);
  Tensor x = Tensor::randn({512, state.range(0)}, rng);
  Tensor g = Tensor::ones({state.range(0)});
  Tensor b = Tensor::zeros({state.range(0)});
  tensor::NoGradGuard ng;
  for (auto _ : state) benchmark::DoNotOptimize(x.layer_norm(g, b).raw());
}
BENCHMARK(BM_LayerNorm)->Arg(32)->Arg(128);

static void BM_WindowPartition(benchmark::State& state) {
  util::Rng rng(4);
  Tensor x = Tensor::randn({1, 16, 8, 8, 4, 4}, rng);
  tensor::NoGradGuard ng;
  for (auto _ : state)
    benchmark::DoNotOptimize(core::window_partition(x, {4, 4, 2, 2}).raw());
}
BENCHMARK(BM_WindowPartition);

static void BM_AttentionForward(benchmark::State& state) {
  util::Rng rng(5);
  nn::MultiHeadSelfAttention attn(32, 4, rng);
  Tensor x = Tensor::randn({8, state.range(0), 32}, rng);
  tensor::NoGradGuard ng;
  for (auto _ : state) benchmark::DoNotOptimize(attn.forward(x).raw());
  state.SetLabel("tokens=" + std::to_string(state.range(0)));
}
BENCHMARK(BM_AttentionForward)->Arg(16)->Arg(64);

namespace {

/// Fused-vs-unfused attention forward at Swin-realistic window volumes
/// (4^4 = 256 tokens and neighbors).  Same module and input; only the
/// `attn_fused_min_n` gate differs, so the delta is purely the flash-style
/// epilogue vs the materialized [B, h, N, N] score round-trip.
void attention_forward_bench(benchmark::State& state, bool fused) {
  const int64_t n = state.range(0);
  util::Rng rng(5);
  nn::MultiHeadSelfAttention attn(32, 4, rng);
  Tensor x = Tensor::randn({8, n, 32}, rng);
  tensor::NoGradGuard ng;
  // RAII so a throwing iteration can't leak the pinned gate into the
  // benchmarks that run after this one.
  struct ConfigGuard {
    tensor::kernels::KernelConfig saved = tensor::kernels::config();
    ~ConfigGuard() { tensor::kernels::config() = saved; }
  } guard;
  tensor::kernels::config().attn_fused_min_n =
      fused ? 1 : std::numeric_limits<int64_t>::max();
  for (auto _ : state) benchmark::DoNotOptimize(attn.forward(x).raw());
  state.SetLabel("tokens=" + std::to_string(n));
}

}  // namespace

static void BM_AttentionFused(benchmark::State& state) {
  attention_forward_bench(state, /*fused=*/true);
}
BENCHMARK(BM_AttentionFused)->Arg(64)->Arg(256)->Arg(512);

static void BM_AttentionUnfused(benchmark::State& state) {
  attention_forward_bench(state, /*fused=*/false);
}
BENCHMARK(BM_AttentionUnfused)->Arg(64)->Arg(256)->Arg(512);

namespace {

/// Full training step of the attention module (forward + backward) with
/// the fused flash-style path against the unfused reference path.  The
/// fused variant records only [B, h, N] row statistics and re-streams K/V
/// blocks in the backward; the unfused variant materializes the
/// [B, h, N, N] score/attn tensors and their gradients.
void attention_backward_bench(benchmark::State& state, bool fused) {
  const int64_t n = state.range(0);
  util::Rng rng(6);
  nn::MultiHeadSelfAttention attn(32, 4, rng);
  Tensor x = Tensor::randn({8, n, 32}, rng);
  struct ConfigGuard {
    tensor::kernels::KernelConfig saved = tensor::kernels::config();
    ~ConfigGuard() { tensor::kernels::config() = saved; }
  } guard;
  tensor::kernels::config().attn_fused_min_n =
      fused ? 1 : std::numeric_limits<int64_t>::max();
  for (auto _ : state) {
    attn.zero_grad();
    attn.forward(x).sum().backward();
  }
  state.SetLabel("tokens=" + std::to_string(n));
}

}  // namespace

static void BM_AttentionBackward(benchmark::State& state) {
  attention_backward_bench(state, /*fused=*/true);
}
BENCHMARK(BM_AttentionBackward)->Arg(64)->Arg(256)->Arg(512);

static void BM_AttentionBackwardUnfused(benchmark::State& state) {
  attention_backward_bench(state, /*fused=*/false);
}
BENCHMARK(BM_AttentionBackwardUnfused)->Arg(64)->Arg(256)->Arg(512);

static void BM_TrainStep(benchmark::State& state) {
  // One optimizer step of the paper's surrogate at miniature scale:
  // forward + backward + Adam update.  This is the end-to-end number the
  // attention-backward fusion moves; window volumes (64 tokens at stage 1)
  // sit above attn_fused_min_n, so training runs the fused kernels.
  util::Rng rng(10);
  core::SurrogateConfig cfg;
  cfg.H = 20;
  cfg.W = 20;
  cfg.D = 6;
  cfg.T = 3;
  cfg.patch_h = 5;
  cfg.patch_w = 5;
  cfg.patch_d = 2;
  cfg.embed_dim = 8;
  cfg.stages = 3;
  cfg.heads = {2, 4, 8};
  core::SurrogateModel model(cfg, rng);
  nn::Adam opt(model.parameters(), 1e-3f);
  util::Rng drng(11);
  Tensor volume = Tensor::randn({1, 3, 20, 20, 6, 4}, drng);
  Tensor surface = Tensor::randn({1, 1, 20, 20, 4}, drng);
  Tensor vt = Tensor::randn({1, 3, 20, 20, 6, 3}, drng);
  Tensor st = Tensor::randn({1, 1, 20, 20, 3}, drng);
  for (auto _ : state) {
    model.zero_grad();
    auto out = model.forward(volume, surface);
    tensor::mse_loss(out.volume, vt)
        .add(tensor::mse_loss(out.surface, st))
        .backward();
    opt.step();
  }
}
BENCHMARK(BM_TrainStep);

static void BM_AllocChurn(benchmark::State& state) {
  // Allocation-dominated elementwise chain at Swin-window-ish shapes:
  // measures the storage layer (pool + episode arena), not the math.  The
  // pre-pool engine was bimodal here — every op's std::vector landed on
  // the glibc brk/mmap crossover — while the pooled steady state performs
  // zero heap allocations per iteration (each iteration is one arena
  // "episode", the core::rollout pattern).
  const int64_t n = state.range(0);
  util::Rng rng(12);
  Tensor x = Tensor::randn({n, n}, rng);
  Tensor y = Tensor::randn({n, n}, rng);
  tensor::NoGradGuard ng;
  for (auto _ : state) {
    tensor::ArenaScope arena;
    Tensor t = x.add(y).mul(x).relu().add_scalar(1.0f).sqrt();
    benchmark::DoNotOptimize(t.raw());
  }
  state.SetItemsProcessed(state.iterations() * 5);  // tensors allocated
}
BENCHMARK(BM_AllocChurn)->Arg(64)->Arg(256);

namespace {

/// Shared fixture for the serving benches: the miniature surrogate plus a
/// synthetic trace of episode requests (normalized random fields — serving
/// throughput is about scheduling and kernels, not forecast skill).
struct ServeBenchWorld {
  data::SampleSpec spec = data::make_spec(20, 20, 6, 3, 4, 2);
  data::Normalizer norm;
  std::unique_ptr<core::SurrogateModel> model;
  std::vector<data::CenterFields> trace;  // kTrace request windows x (T+1)

  static constexpr int kTrace = 8;  ///< concurrent clients per iteration
  /// Distinct episodes among them — 4 clients per episode.  Public
  /// forecast traffic duplicates far more heavily than this (every user
  /// of a region asks for the same current window); 2 distinct windows
  /// keeps the serial baseline honest while the collapse win stays
  /// conservative.
  static constexpr int kDistinct = 2;

  ServeBenchWorld() {
    util::Rng rng(21);
    core::SurrogateConfig mcfg;
    mcfg.H = spec.H;
    mcfg.W = spec.W;
    mcfg.D = spec.D;
    mcfg.T = spec.T;
    mcfg.patch_h = 5;
    mcfg.patch_w = 5;
    mcfg.patch_d = 2;
    mcfg.embed_dim = 8;
    mcfg.stages = 3;
    mcfg.heads = {2, 4, 8};
    model = std::make_unique<core::SurrogateModel>(mcfg, rng);
    util::Rng drng(22);
    const size_t n3 = 6u * 20 * 20, n2 = 20u * 20;
    trace.resize(static_cast<size_t>(kDistinct) * 4);
    for (auto& f : trace) {
      f.nx = 20;
      f.ny = 20;
      f.nz = 6;
      f.u.resize(n3);
      f.v.resize(n3);
      f.w.resize(n3);
      f.zeta.resize(n2);
      for (auto& x : f.u) x = static_cast<float>(drng.normal());
      for (auto& x : f.v) x = static_cast<float>(drng.normal());
      for (auto& x : f.w) x = static_cast<float>(drng.normal());
      for (auto& x : f.zeta) x = static_cast<float>(drng.normal());
      norm.accumulate(f);
    }
    norm.freeze();
  }

  /// Client i's episode window.  Clients round-robin over kDistinct
  /// distinct episodes — the public-forecast traffic shape, where many
  /// concurrent clients ask for the *same* current forecast (here 4
  /// clients per episode).
  std::span<const data::CenterFields> window(int client) const {
    return {trace.data() + static_cast<size_t>(client % kDistinct) * 4, 4};
  }

  static ServeBenchWorld& instance() {
    static ServeBenchWorld w;
    return w;
  }
};

}  // namespace

static void BM_ServeSerial(benchmark::State& state) {
  // The one-request-at-a-time baseline: each of the 8 queued clients is
  // served by its own B = 1 episode (the pre-serving workflow pattern).
  auto& w = ServeBenchWorld::instance();
  w.model->set_training(false);
  tensor::NoGradGuard ng;
  for (auto _ : state) {
    for (int i = 0; i < ServeBenchWorld::kTrace; ++i) {
      tensor::ArenaScope arena;
      auto frames =
          core::forecast_episode(*w.model, w.spec, w.norm, w.window(i),
                                 nullptr);
      benchmark::DoNotOptimize(frames.data());
    }
  }
  state.SetItemsProcessed(state.iterations() * ServeBenchWorld::kTrace);
}
BENCHMARK(BM_ServeSerial);

static void BM_ServeThroughput(benchmark::State& state) {
  // Requests/s through the micro-batching server for the same 8-client
  // burst BM_ServeSerial grinds through one episode at a time; the JSON
  // key encodes (workers, max_batch) as workers*100 + max_batch, so 101
  // disables coalescing entirely (1-deep batches), 108 = 1 worker with
  // 8-way coalescing, 408 = 4 workers.  Two effects separate the
  // configurations: identical-episode collapse (the 4x duplication in
  // the trace is removed outright — this carries the win on any host,
  // including 1-core) and batch-dimension amortization of kernel fan-out
  // (visible with multi-core kernels).  Results stay bitwise identical
  // to serial execution throughout (tests/test_serve.cpp).
  auto& w = ServeBenchWorld::instance();
  serve::ServerConfig cfg;
  cfg.workers = static_cast<int>(state.range(0) / 100);
  cfg.batch.max_batch = static_cast<int>(state.range(0) % 100);
  cfg.batch.max_wait_us = 20000;
  cfg.queue_capacity = 64;
  cfg.verify = false;
  // The forecast cache would serve every iteration after the first from
  // memory; keep it out so this stays a forward-path schedule benchmark
  // (the cache has its own figure, BM_ServeCached).
  cfg.cache.enabled = false;
  serve::ForecastServer server({{w.model.get(), w.spec}}, w.norm, nullptr,
                               cfg);
  std::vector<std::future<serve::ForecastResult>> futures;
  futures.reserve(ServeBenchWorld::kTrace);
  for (auto _ : state) {
    futures.clear();
    for (int i = 0; i < ServeBenchWorld::kTrace; ++i) {
      serve::ForecastRequest req;
      const auto win = w.window(i);
      req.window.assign(win.begin(), win.end());
      auto f = server.submit(std::move(req));
      if (f) futures.push_back(std::move(*f));
    }
    for (auto& f : futures) benchmark::DoNotOptimize(f.get());
  }
  state.SetItemsProcessed(state.iterations() * ServeBenchWorld::kTrace);
}
BENCHMARK(BM_ServeThroughput)
    ->Arg(101)
    ->Arg(108)
    ->Arg(208)
    ->Arg(408)
    ->UseRealTime();

static void BM_ServeFaulty(benchmark::State& state) {
  // BM_ServeThroughput/108 with chaos turned on: 5% of forwards throw and
  // the retry layer absorbs them.  The number quantifies the cost of the
  // reliability machinery under fire; it is reported but never gated
  // (bench_diff --ignore) — the injected faults make the figure a
  // schedule property, not a kernel one.  The delta between this and a
  // no-fault 108 run is the price of a 5% transient-failure rate.
  auto& w = ServeBenchWorld::instance();
  util::FaultInjector::instance().install(
      "serve.forward:throw@"
      "0.05",
      2026);
  serve::ServerConfig cfg;
  cfg.workers = 1;
  cfg.batch.max_batch = 8;
  cfg.batch.max_wait_us = 20000;
  cfg.queue_capacity = 64;
  cfg.verify = false;
  cfg.cache.enabled = false;  // measure the retry path, not cache hits
  cfg.reliability.retry.max_attempts = 4;
  cfg.reliability.retry.backoff_us = 100;
  {
    serve::ForecastServer server({{w.model.get(), w.spec}}, w.norm, nullptr,
                                 cfg);
    std::vector<std::future<serve::ForecastResult>> futures;
    futures.reserve(ServeBenchWorld::kTrace);
    for (auto _ : state) {
      futures.clear();
      for (int i = 0; i < ServeBenchWorld::kTrace; ++i) {
        serve::ForecastRequest req;
        const auto win = w.window(i);
        req.window.assign(win.begin(), win.end());
        auto f = server.submit(std::move(req));
        if (f) futures.push_back(std::move(*f));
      }
      for (auto& f : futures) {
        // A run of max_attempts consecutive fires fails the request
        // (there is no fallback here); that is a valid serving outcome,
        // not a bench failure.
        try {
          benchmark::DoNotOptimize(f.get());
        } catch (const serve::ForecastError&) {
        }
      }
    }
  }
  util::FaultInjector::instance().clear();
  state.SetItemsProcessed(state.iterations() * ServeBenchWorld::kTrace);
}
BENCHMARK(BM_ServeFaulty)->UseRealTime();

static void BM_ServeCached(benchmark::State& state, int mode) {
  // Requests/s through the content-addressed forecast cache
  // (docs/caching.md), 8 clients per iteration like BM_ServeThroughput:
  //   cold   — every window is new: probe misses, full forward, insert.
  //            The delta vs BM_ServeThroughput/108 is the keying +
  //            admission overhead on the miss path.
  //   warm   — every window repeats: exact hits, zero forwards.  The
  //            cache's headline figure; expected orders of magnitude
  //            above cold (gated at >= 2x in the JSON refresh).
  //   prefix — 2-episode chains whose 1-episode prefix stays cached while
  //            the second episode's boundary frames change every
  //            iteration: each request resumes the chain from the cached
  //            prefix and computes one episode instead of two.
  // Cold/prefix mutate one boundary float per request to mint fresh keys;
  // hit/miss composition is what is being measured, so the mutation cost
  // (one float store) is noise.
  auto& w = ServeBenchWorld::instance();
  serve::ServerConfig cfg;
  cfg.workers = 1;
  cfg.batch.max_batch = 8;
  cfg.batch.max_wait_us = 20000;
  cfg.queue_capacity = 64;
  cfg.verify = false;
  serve::ForecastServer server({{w.model.get(), w.spec}}, w.norm, nullptr,
                               cfg);
  const int episodes = mode == 2 ? 2 : 1;
  const size_t frames = static_cast<size_t>(episodes) * 3 + 1;
  auto make_request = [&](int i, float salt) {
    serve::ForecastRequest req;
    req.window.reserve(frames);
    const auto win = w.window(i);
    req.window.assign(win.begin(), win.end());
    for (size_t t = req.window.size(); t < frames; ++t)
      req.window.push_back(w.trace[t % w.trace.size()]);
    if (salt != 0.0f) req.window.back().u[0] = salt;
    return req;
  };
  if (mode != 0) {
    // Warm the cache: the exact windows (warm) / their 1-episode
    // prefixes (prefix) the timed loop will probe for.
    std::vector<std::future<serve::ForecastResult>> warmup;
    for (int i = 0; i < ServeBenchWorld::kTrace; ++i) {
      serve::ForecastRequest req;
      const auto win = w.window(i);
      req.window.assign(win.begin(), win.end());
      auto f = server.submit(std::move(req));
      if (f) warmup.push_back(std::move(*f));
    }
    for (auto& f : warmup) f.get();
  }
  float salt = 1.0f;
  std::vector<std::future<serve::ForecastResult>> futures;
  futures.reserve(ServeBenchWorld::kTrace);
  for (auto _ : state) {
    futures.clear();
    for (int i = 0; i < ServeBenchWorld::kTrace; ++i) {
      // warm: repeat the cached windows verbatim.  cold/prefix: a fresh
      // key per request (cold salts a 1-episode window outright; prefix
      // salts only the second episode's boundary, keeping the prefix).
      const bool fresh = mode != 1;
      auto f = server.submit(
          make_request(i, fresh ? (salt += 1.0f) : 0.0f));
      if (f) futures.push_back(std::move(*f));
    }
    for (auto& f : futures) benchmark::DoNotOptimize(f.get());
  }
  state.SetItemsProcessed(state.iterations() * ServeBenchWorld::kTrace);
}
BENCHMARK_CAPTURE(BM_ServeCached, cold, 0)->UseRealTime();
BENCHMARK_CAPTURE(BM_ServeCached, warm, 1)->UseRealTime();
BENCHMARK_CAPTURE(BM_ServeCached, prefix, 2)->UseRealTime();

static void BM_ServeObserved(benchmark::State& state, bool obs_on) {
  // BM_ServeThroughput/108 with the observability layer armed (stage
  // profiler + full-rate tracing + registry counters) vs disarmed — the
  // pairing quantifies the instrumentation overhead on the serving hot
  // path.  Budget: /on must stay within 2% of /off (docs/observability.md);
  // both variants are bench_diff --ignore'd because the pairing itself,
  // not the trajectory, is the assertion.
  auto& w = ServeBenchWorld::instance();
  serve::ServerConfig cfg;
  cfg.workers = 1;
  cfg.batch.max_batch = 8;
  cfg.batch.max_wait_us = 20000;
  cfg.queue_capacity = 64;
  cfg.verify = false;
  cfg.cache.enabled = false;  // forward path, as in BM_ServeThroughput
  cfg.obs.profile_stages = obs_on;
  cfg.obs.trace.enabled = obs_on;
  cfg.obs.trace.sample_rate = 1.0;
  {
    serve::ForecastServer server({{w.model.get(), w.spec}}, w.norm, nullptr,
                                 cfg);
    std::vector<std::future<serve::ForecastResult>> futures;
    futures.reserve(ServeBenchWorld::kTrace);
    for (auto _ : state) {
      futures.clear();
      for (int i = 0; i < ServeBenchWorld::kTrace; ++i) {
        serve::ForecastRequest req;
        const auto win = w.window(i);
        req.window.assign(win.begin(), win.end());
        auto f = server.submit(std::move(req));
        if (f) futures.push_back(std::move(*f));
      }
      for (auto& f : futures) benchmark::DoNotOptimize(f.get());
    }
  }
  // Disarm the process-wide profiler/recorder so later benches measure
  // their own configuration, not this one's.
  coastal::obs::StageProfiler::instance().set_enabled(false);
  coastal::obs::TraceRecorder::instance().configure(coastal::obs::TraceConfig{});
  coastal::obs::TraceRecorder::instance().clear();
  state.SetItemsProcessed(state.iterations() * ServeBenchWorld::kTrace);
}
BENCHMARK_CAPTURE(BM_ServeObserved, off, false)->UseRealTime();
BENCHMARK_CAPTURE(BM_ServeObserved, on, true)->UseRealTime();

static void BM_SolverStep(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  ocean::Grid grid(n, n, 4, 400.0, 400.0);
  ocean::generate_estuary(grid, ocean::EstuaryParams{}, 1);
  auto tides = ocean::TidalForcing::gulf_coast_default();
  ocean::PhysicsParams p;
  p.dt = 10.0;
  ocean::TidalModel model(grid, tides, p);
  for (auto _ : state) model.step();
  state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_SolverStep)->Arg(32)->Arg(64)->Arg(128);

static void BM_HaloExchange(benchmark::State& state) {
  // Two ranks trading one ghost ring via the in-process communicator.
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    par::World world(2);
    world.run([&](par::Comm& comm) {
      auto tile = par::make_tile(comm.rank(), 1, 2, n, n, 1);
      std::vector<float> field(
          static_cast<size_t>(tile.nx_padded()) * tile.ny_padded(), 1.0f);
      for (int i = 0; i < 50; ++i) par::exchange_halo(comm, tile, field);
    });
  }
}
BENCHMARK(BM_HaloExchange)->Arg(64);

static void BM_HalfConversion(benchmark::State& state) {
  util::Rng rng(7);
  std::vector<float> xs(65536);
  for (auto& x : xs) x = static_cast<float>(rng.normal());
  for (auto _ : state) {
    auto h = tensor::to_half(xs);
    benchmark::DoNotOptimize(tensor::to_float(h).data());
  }
  state.SetBytesProcessed(state.iterations() * 65536 * sizeof(float));
}
BENCHMARK(BM_HalfConversion);

namespace {

/// Console output as usual, plus every run recorded into a
/// BenchJsonWriter so the binary emits machine-readable results.
class JsonCaptureReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
#ifdef COASTAL_BENCHMARK_SKIPPED_API  // google-benchmark >= 1.8
      if (run.skipped) continue;
#else
      if (run.error_occurred) continue;
#endif
      // One record per (op, size): skip aggregate rows (mean/median/...)
      // and all but the first repetition, whose suffixed names would parse
      // to duplicate keys.
      if (run.run_type != Run::RT_Iteration || run.repetition_index > 0)
        continue;
      // Key = (op, size).  Numeric path segments are the size (Arg
      // benches); non-numeric ones — BENCHMARK_CAPTURE labels like
      // BM_ServeCached/warm — stay part of the op so capture variants
      // don't collapse onto one key.  The real_time/process_time
      // suffixes UseRealTime appends are modifiers, not identity.
      const std::string full = run.benchmark_name();
      std::string op;
      int64_t size = 0;
      bool have_size = false;
      size_t pos = 0;
      while (pos <= full.size()) {
        size_t slash = full.find('/', pos);
        if (slash == std::string::npos) slash = full.size();
        const std::string seg = full.substr(pos, slash - pos);
        const bool numeric =
            !seg.empty() &&
            seg.find_first_not_of("0123456789") == std::string::npos;
        if (numeric && !have_size) {
          size = std::strtoll(seg.c_str(), nullptr, 10);
          have_size = true;
        } else if (seg != "real_time" && seg != "process_time") {
          if (!op.empty()) op += '/';
          op += seg;
        }
        pos = slash + 1;
      }
      double items_per_s = 0.0;
      const auto it = run.counters.find("items_per_second");
      if (it != run.counters.end()) items_per_s = it->second;
      writer.add(op, size, run.GetAdjustedRealTime(), items_per_s);
    }
  }

  bench::BenchJsonWriter writer;
};

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  JsonCaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  const std::string out = "BENCH_kernels.json";
  if (!reporter.writer.empty() && reporter.writer.write(out)) {
    std::printf("\nwrote %s\n", out.c_str());
  }
  return 0;
}
